package strudel

// Integration tests: classify hand-written realistic verbose CSV files from
// testdata/ with a model trained on the synthetic corpora, and check the
// end-to-end behavior — dialect detection, line classification, derived
// detection, and relational extraction — on files the generator never saw.

import (
	"path/filepath"
	"sync"
	"testing"
)

// integrationModel trains once per test binary on a cross-domain mix.
var integrationModel = struct {
	once sync.Once
	m    *Model
	err  error
}{}

func getIntegrationModel(t *testing.T) *Model {
	t.Helper()
	integrationModel.once.Do(func() {
		var files []*Table
		for _, name := range []string{"saus", "govuk", "cius"} {
			fs, err := GenerateCorpus(name, 0.4)
			if err != nil {
				integrationModel.err = err
				return
			}
			files = append(files, fs...)
		}
		integrationModel.m, integrationModel.err = Train(files, TrainOptions{
			Trees: 40, Seed: 123, MaxCellsPerFile: 400,
		})
	})
	if integrationModel.err != nil {
		t.Fatal(integrationModel.err)
	}
	return integrationModel.m
}

func TestIntegrationEnergyMultiTable(t *testing.T) {
	m := getIntegrationModel(t)
	tbl, d, err := LoadFile(filepath.Join("testdata", "energy_multi.csv"), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Delimiter != ',' {
		t.Errorf("dialect = %v", d)
	}
	ann := m.Annotate(tbl)

	// The two header lines ("Region,Coal,...") are at rows 3 and 10.
	if ann.Lines[3] != ClassHeader {
		t.Errorf("line 4 = %v, want header", ann.Lines[3])
	}
	// Data rows dominate the body.
	dataCount := 0
	for _, r := range []int{4, 5, 6, 11, 12, 13} {
		if ann.Lines[r] == ClassData {
			dataCount++
		}
	}
	if dataCount < 5 {
		t.Errorf("only %d/6 body lines classified data: %v", dataCount, ann.Lines)
	}
	// The anchored grand total line must be detected as derived arithmetic.
	derived := DetectDerivedCells(tbl)
	anyDerived := false
	for c := 1; c < tbl.Width(); c++ {
		if derived[7][c] {
			anyDerived = true
		}
	}
	if !anyDerived {
		t.Error("grand total line not arithmetically detected")
	}
	// Extraction yields two relations (one per stacked table).
	rels := ExtractTables(tbl, ann)
	if len(rels) < 1 {
		t.Fatalf("extracted %d relations", len(rels))
	}
	totalRows := 0
	for _, rel := range rels {
		totalRows += len(rel.Rows)
	}
	if totalRows < 5 {
		t.Errorf("extracted %d data rows across relations", totalRows)
	}
}

func TestIntegrationCrimeGroupsSemicolon(t *testing.T) {
	m := getIntegrationModel(t)
	tbl, d, err := LoadFile(filepath.Join("testdata", "crime_groups.csv"), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Delimiter != ';' {
		t.Fatalf("dialect = %v, want semicolon", d)
	}
	ann := m.Annotate(tbl)

	// Group labels at rows 3 and 8 (0-indexed after crop: file starts at
	// title row 0, blank row dropped? Crop removes only marginal empties).
	groupsSeen := 0
	for r := 0; r < tbl.Height(); r++ {
		first := tbl.Cell(r, 0)
		if first == "Violent crime:" || first == "Property crime:" {
			if ann.Lines[r] == ClassGroup {
				groupsSeen++
			}
		}
	}
	if groupsSeen == 0 {
		t.Error("no group label recognized")
	}
	// Both anchored per-group totals detected by Algorithm 2.
	derived := DetectDerivedCells(tbl)
	detected := 0
	for r := 0; r < tbl.Height(); r++ {
		if tbl.Cell(r, 0) == "Total" && derived[r][1] {
			detected++
		}
	}
	if detected < 2 {
		t.Errorf("detected %d/2 total lines arithmetically", detected)
	}
}

func TestIntegrationTabSurvey(t *testing.T) {
	m := getIntegrationModel(t)
	tbl, d, err := LoadFile(filepath.Join("testdata", "survey_tabs.csv"), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Delimiter != '\t' {
		t.Fatalf("dialect = %v, want tab", d)
	}
	ann := m.Annotate(tbl)
	// Three data lines in the middle.
	dataCount := 0
	for r := 0; r < tbl.Height(); r++ {
		if ann.Lines[r] == ClassData {
			dataCount++
		}
	}
	if dataCount < 2 {
		t.Errorf("data lines = %d, want >= 2 (%v)", dataCount, ann.Lines)
	}
	header, rows := ExtractData(tbl, ann)
	if len(rows) < 2 {
		t.Errorf("extracted %d rows", len(rows))
	}
	_ = header
}

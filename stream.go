package strudel

import (
	"context"
	"fmt"
	"io"
	"os"

	"strudel/internal/dialect"
	"strudel/internal/ingest"
	"strudel/internal/obs"
	"strudel/internal/pipeline"
	"strudel/internal/table"
)

// Streaming defaults. The window is deliberately much larger than every
// feature neighborhood (the ±5 neighbor window, the 8-cell profiles, block
// flood fill within a window) so the approximation from chunking only
// touches a thin seam per window; the margin provides left context and
// lookahead across that seam.
const (
	// DefaultStreamWindowLines is the number of rows classified and emitted
	// per sliding window.
	DefaultStreamWindowLines = 4096
	// DefaultStreamMarginLines is the left-context / lookahead overlap kept
	// around each window's core.
	DefaultStreamMarginLines = 64
	// DefaultDialectSniffBytes is how much normalized text dialect
	// detection sees in streaming mode. Files smaller than this get the
	// exact whole-file detection.
	DefaultDialectSniffBytes = 64 << 10
)

// StreamOptions configures AnnotateStream.
type StreamOptions struct {
	// Load carries the ingest guards, dialect policy, and observation
	// hooks, exactly as for LoadBytes. One deliberate difference: a zero
	// Ingest.MaxBytes means unlimited here (streaming exists for files the
	// in-memory 64 MiB default would reject); set it explicitly to keep a
	// cap.
	Load LoadOptions
	// WindowLines is the number of rows classified and emitted per window
	// (0 = DefaultStreamWindowLines).
	WindowLines int
	// MarginLines is the overlap kept on both sides of a window's core as
	// context (0 = DefaultStreamMarginLines; negative = no margin).
	MarginLines int
	// DialectSniffBytes bounds the normalized-text prefix dialect
	// detection runs on (0 = DefaultDialectSniffBytes). Inputs that end
	// inside the prefix get whole-file detection, identical to LoadBytes.
	DialectSniffBytes int
}

func (o StreamOptions) window() int {
	if o.WindowLines <= 0 {
		return DefaultStreamWindowLines
	}
	return o.WindowLines
}

func (o StreamOptions) margin() int {
	if o.MarginLines == 0 {
		return DefaultStreamMarginLines
	}
	if o.MarginLines < 0 {
		return 0
	}
	return o.MarginLines
}

func (o StreamOptions) dialectSniff() int {
	if o.DialectSniffBytes <= 0 {
		return DefaultDialectSniffBytes
	}
	return o.DialectSniffBytes
}

// LineAnnotation is one classified line of a streaming annotation. Row
// counts annotated lines from 0 in emission order (matching the line index
// of the in-memory Annotation for the same input). The slices are freshly
// allocated per line; callers may retain them.
type LineAnnotation struct {
	// Row is the line's index among the annotated lines.
	Row int
	// Class is the predicted line class.
	Class Class
	// Cells holds the predicted class per cell of the line.
	Cells []Class
	// Probabilities is the Strudel^L per-class confidence vector.
	Probabilities []float64
	// Fields holds the parsed cells of the line (post table padding).
	Fields []string
}

// StreamSummary reports what one AnnotateStream run did.
type StreamSummary struct {
	// Lines is how many line annotations were emitted.
	Lines int
	// Windows is how many sliding windows were classified (1 for any input
	// that fit in a single window).
	Windows int
	// Dialect is the dialect the stream was parsed under.
	Dialect Dialect
	// Provenance records ingestion and dialect-selection outcomes.
	Provenance *Provenance
	// Degraded lists why the annotation is best-effort (ingest repairs,
	// dialect fallback); empty for pristine input.
	Degraded []string
}

// AnnotateStream classifies a verbose CSV stream of unbounded size in
// bounded memory, calling emit once per annotated line in order. Ingestion,
// parsing, and classification all run incrementally: the input is never
// materialized, and peak memory is proportional to the window configuration
// (WindowLines + 2*MarginLines buffered rows), not the input size.
//
// Inputs small enough to fit in one window (fewer than WindowLines +
// MarginLines parsed rows — every committed test fixture, for example) are
// classified on the exact in-memory path: the emitted classes,
// probabilities, and provenance are byte-identical to LoadBytes followed by
// Annotate. Larger inputs are classified window by window; the window-local
// features (line position, word-amount normalization, block sizes) then
// describe each window rather than the whole file, and marginal empty
// columns are not cropped — the documented "identical modulo chunking"
// contract. Dialect detection always runs on a bounded prefix.
//
// A non-nil error from emit aborts the stream and is returned unwrapped.
// Errors from the input reject the whole stream with the same taxonomy as
// LoadBytes; lines already emitted should be discarded by the caller.
func (m *Model) AnnotateStream(ctx context.Context, r io.Reader, opts StreamOptions, emit func(LineAnnotation) error) (*StreamSummary, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	h := opts.Load.Obs
	streamStart := h.SpanStart(obs.StageStream)
	defer func() { h.SpanEnd(obs.StageStream, streamStart) }()
	h.Count(obs.MStreamFiles, 1)

	w, margin := opts.window(), opts.margin()
	sc := ingest.NewScanner(r, opts.Load.ingestOptions())

	// Phase 1: dialect selection over a bounded prefix of normalized lines.
	// The lines are kept and replayed into the splitter below, so nothing
	// is read twice.
	var prefix []string
	prefixBytes := 0
	sniffCap := opts.dialectSniff()
	for prefixBytes < sniffCap && sc.Scan() {
		prefix = append(prefix, sc.Line())
		prefixBytes += len(sc.Line()) + 1
	}
	atEOF := !sc.Scan() // consumes one line when false was not yet returned
	var pending string  // the extra line consumed by the EOF probe
	havePending := false
	if !atEOF {
		pending, havePending = sc.Line(), true
	} else if err := sc.Err(); err != nil {
		return nil, err
	}
	sniffText := joinLines(prefix, atEOF && sc.FinalNewline() || !atEOF)

	var dialectProv Provenance // staging; merged into the final provenance
	d, err := chooseDialect(sniffText, opts.Load, &dialectProv)
	if err != nil {
		return nil, err
	}

	// Phase 2: incremental split → sliding window → per-window classify.
	maxCells := opts.Load.maxCells()
	sp := dialect.NewSplitter(d, maxCells)
	win := pipeline.NewWindow(w + 2*margin + 2)

	summary := &StreamSummary{Dialect: d}
	emitted := 0       // annotated lines emitted so far
	started := false   // first non-empty row seen (leading crop)
	lastNonEmpty := -1 // absolute index of the last non-empty row
	fillStart := h.SpanStart(obs.StageStreamFill)

	// finalProvenance assembles the complete provenance once the scanner
	// has finished, merging the staged dialect outcome in the same guard
	// order buildTable produces.
	finalProvenance := func() *Provenance {
		p := sc.Provenance()
		p.Dialect = dialectProv.Dialect
		p.DialectScore = dialectProv.DialectScore
		p.DialectMargin = dialectProv.DialectMargin
		if dialectProv.DialectFallback {
			p.DialectFallback = true
			p.Trip(ingest.GuardDialectScore)
		}
		if n := sp.Dropped(); n > 0 {
			p.CellsDropped = n
			p.Trip(ingest.GuardCellsDropped)
		}
		return &p
	}

	// classify runs the shared annotate body over one window's table,
	// behind the same fault barrier batch annotation uses.
	classify := func(t *table.Table) (*Annotation, error) {
		h.SpanEnd(obs.StageStreamFill, fillStart)
		winStart := h.SpanStart(obs.StageStreamWindow)
		var ann *Annotation
		err := pipeline.Safely(func() {
			a := pipeline.New(t)
			a.Obs = h
			ann = m.annotate(a)
		})
		h.SpanEnd(obs.StageStreamWindow, winStart)
		fillStart = h.SpanStart(obs.StageStreamFill)
		if err != nil {
			return nil, fmt.Errorf("strudel: stream annotation failed: %w", err)
		}
		summary.Windows++
		h.Count(obs.MStreamWindows, 1)
		return ann, nil
	}

	// emitRange sends the annotations for absolute rows [lo, hi), where the
	// table's row 0 corresponds to absolute row tblBase.
	emitRange := func(t *table.Table, ann *Annotation, tblBase, lo, hi int) error {
		for abs := lo; abs < hi; abs++ {
			r := abs - tblBase
			la := LineAnnotation{
				Row:           abs,
				Class:         ann.Lines[r],
				Cells:         append([]Class(nil), ann.Cells[r]...),
				Probabilities: append([]float64(nil), ann.LineProbabilities[r]...),
				Fields:        append([]string(nil), t.Row(r)...),
			}
			if err := emit(la); err != nil {
				return err
			}
		}
		n := hi - lo
		emitted += n
		summary.Lines += n
		h.Count(obs.MStreamLines, int64(n))
		return nil
	}

	// flushWindow classifies the buffered rows and emits the core region
	// [emitted, emitted+w), keeping margin rows of left context.
	flushWindow := func() error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("strudel: stream: %w", err)
		}
		t := table.FromRows(win.Slice(win.Base(), win.End()))
		ann, err := classify(t)
		if err != nil {
			return err
		}
		if err := emitRange(t, ann, win.Base(), emitted, emitted+w); err != nil {
			return err
		}
		evicted := win.EvictTo(emitted - margin)
		h.Count(obs.MStreamRowsEvict, int64(evicted))
		h.GaugeSet(obs.MStreamBufferRows, int64(win.Len()))
		return nil
	}

	// accept admits one parsed row into the window, skipping leading empty
	// rows (the streaming half of Crop) and flushing full windows.
	accept := func(row []string) error {
		empty := rowIsEmpty(row)
		if !started {
			if empty {
				return nil
			}
			started = true
		}
		if !empty {
			lastNonEmpty = win.End()
		}
		win.Push(row)
		h.Count(obs.MStreamRowsFilled, 1)
		h.GaugeSet(obs.MStreamBufferRows, int64(win.Len()))
		if win.End()-emitted >= w+margin {
			return flushWindow()
		}
		return nil
	}

	drain := func() error {
		for {
			row, ok := sp.Next()
			if !ok {
				break
			}
			if err := accept(row); err != nil {
				return err
			}
		}
		if opts.Load.Ingest.Strict && sp.Dropped() > 0 {
			return errTooManyCells(sp.Dropped(), maxCells)
		}
		return nil
	}

	// feed replays one normalized line into the splitter. The line's
	// newline is written with it: every line but the last is newline-
	// terminated, and the last line's newline depends on FinalNewline —
	// hence the one-line lag below.
	var prev string
	havePrev := false
	feed := func(line string) error {
		if havePrev {
			sp.Write(prev)
			sp.Write("\n")
		}
		prev, havePrev = line, true
		return drain()
	}

	for _, line := range prefix {
		if err := feed(line); err != nil {
			return summary, err
		}
	}
	if havePending {
		if err := feed(pending); err != nil {
			return summary, err
		}
	}
	lines := 0
	for sc.Scan() {
		if err := feed(sc.Line()); err != nil {
			return summary, err
		}
		if lines++; lines%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return summary, fmt.Errorf("strudel: stream: %w", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return summary, err
	}
	if havePrev {
		sp.Write(prev)
		if sc.FinalNewline() {
			sp.Write("\n")
		}
	}
	sp.Flush()
	if err := drain(); err != nil {
		return summary, err
	}

	prov := finalProvenance()
	summary.Provenance = prov
	summary.Degraded = prov.DegradedReasons()

	if summary.Windows == 0 {
		// The whole input fit in one window: classify it on the exact
		// in-memory path — FromRows + Crop + provenance, then the shared
		// annotate body — so output is byte-identical to LoadBytes +
		// Annotate.
		t := table.FromRows(win.Slice(win.Base(), win.End())).Crop()
		t.Provenance = prov
		ann, err := classify(t)
		if err != nil {
			return summary, err
		}
		return summary, emitRange(t, ann, 0, 0, t.Height())
	}

	// Final partial window: everything unemitted up to the last non-empty
	// row (the streaming half of Crop's trailing-line rule).
	if end := lastNonEmpty + 1; end > emitted {
		t := table.FromRows(win.Slice(win.Base(), end))
		ann, err := classify(t)
		if err != nil {
			return summary, err
		}
		if err := emitRange(t, ann, win.Base(), emitted, end); err != nil {
			return summary, err
		}
	}
	return summary, nil
}

// AnnotateFileStream is AnnotateStream over the file at path.
func (m *Model) AnnotateFileStream(ctx context.Context, path string, opts StreamOptions, emit func(LineAnnotation) error) (*StreamSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only descriptor; close cannot lose data
	sum, err := m.AnnotateStream(ctx, f, opts, emit)
	if err != nil {
		return sum, fmt.Errorf("strudel: %s: %w", path, err)
	}
	return sum, nil
}

// rowIsEmpty reports whether every cell of a parsed row is empty, matching
// the table-level empty-line rule Crop applies.
func rowIsEmpty(row []string) bool {
	for _, c := range row {
		if !table.IsEmpty(c) {
			return false
		}
	}
	return true
}

// joinLines reassembles normalized lines into the text the in-memory path
// would hand to dialect detection, with a trailing newline when the source
// text had one (or when the prefix was cut mid-file, where the last
// included line was necessarily newline-terminated).
func joinLines(lines []string, finalNL bool) string {
	n := 0
	for _, l := range lines {
		n += len(l) + 1
	}
	b := make([]byte, 0, n)
	for i, l := range lines {
		if i > 0 {
			b = append(b, '\n')
		}
		b = append(b, l...)
	}
	if finalNL {
		b = append(b, '\n')
	}
	return string(b)
}

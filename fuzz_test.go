package strudel

import (
	"errors"
	"testing"
)

// FuzzTableParse drives arbitrary bytes through the hardened front door
// (LoadBytes: ingest → dialect detection → guarded split → crop) and
// asserts the structural contract every downstream stage relies on: a
// loaded table is rectangular, its dimensions are non-negative, and
// failures are typed — never panics.
func FuzzTableParse(f *testing.F) {
	f.Add([]byte(sampleCSV))
	f.Add([]byte("a;b;c\n1;2;3\n"))
	f.Add([]byte("x\ty\n1\t2\n"))
	f.Add([]byte("\"unclosed,\n1,2\n"))
	f.Add([]byte("a,b,c\n1\n2,3\n4,5,6,7\n"))
	f.Add([]byte("\xEF\xBB\xBFk,v\n1,2\n"))
	f.Add([]byte{0xFF, 0xFE, 'a', 0, ',', 0, 'b', 0})
	f.Add([]byte("r\xe9gion;caf\xe9\n1;2\n"))
	f.Add([]byte(",,,\n,,,\n"))
	f.Add([]byte("\n\n\n"))

	taxonomy := []error{ErrTooLarge, ErrBadEncoding, ErrEmptyInput,
		ErrLineTooLong, ErrTooManyLines, ErrTooManyCells}

	f.Fuzz(func(t *testing.T, data []byte) {
		opts := LoadOptions{Ingest: IngestOptions{
			MaxBytes: 1 << 20, MaxLineBytes: 1 << 12, MaxLines: 1 << 10, MaxCellsPerLine: 1 << 8,
		}}
		tbl, _, err := LoadBytes(data, opts)
		if err != nil {
			for _, sentinel := range taxonomy {
				if errors.Is(err, sentinel) {
					return
				}
			}
			t.Fatalf("untyped error: %v", err)
		}
		h, w := tbl.Height(), tbl.Width()
		if h < 0 || w < 0 {
			t.Fatalf("negative dimensions %dx%d", h, w)
		}
		if h > 0 && w > 1<<8 {
			t.Fatalf("width %d exceeds the %d cells-per-line guard", w, 1<<8)
		}
		for r := 0; r < h; r++ {
			if got := len(tbl.Row(r)); got != w {
				t.Fatalf("row %d has %d cells in a width-%d table", r, got, w)
			}
			for c := 0; c < w; c++ {
				_ = tbl.Cell(r, c) // must not panic anywhere in range
			}
		}
		// Cropping an already-cropped table must be a no-op on shape.
		again := tbl.Crop()
		if again.Height() != h || again.Width() != w {
			t.Fatalf("Crop is not idempotent: %dx%d -> %dx%d", h, w, again.Height(), again.Width())
		}
		if tbl.Provenance == nil {
			t.Fatal("loaded table has no provenance")
		}
	})
}

package strudel

// Tests for the PR 10 model-format redesign: the binary container must
// round-trip against JSON bit-exactly, reject truncated/forged artifacts
// with typed errors, and the compiled inference engines every constructed
// model carries must be float-identical to the pointer-walking forests
// over the real testdata corpus at one worker and at every CPU.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"runtime"
	"testing"

	"strudel/internal/core"
	"strudel/internal/ml/forest"
)

// saveBytes renders m in the given format.
func saveBytes(t *testing.T, m *Model, format Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf, format); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// columnModel trains a model whose cell forest also carries the optional
// column classifier, covering the third forest slot of the container.
func columnModel(t *testing.T) *Model {
	t.Helper()
	files, err := GenerateCorpus("saus", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultCellTrainOptions()
	opts.Forest.NumTrees = 5
	opts.Forest.Seed = 9
	opts.MaxCellsPerFile = 120
	opts.UseColumnProbs = true
	cm, err := core.TrainCell(files, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &Model{line: cm.Line, cell: cm}
}

// TestModelBinaryRoundTripBitExact proves JSON → binary → JSON is the
// identity on the serialized bytes, for a plain line+cell model and for
// one carrying the optional column forest.
func TestModelBinaryRoundTripBitExact(t *testing.T) {
	for _, tc := range []struct {
		name  string
		model func(*testing.T) *Model
	}{
		{"line_cell", trainedModel},
		{"with_column_forest", columnModel},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.model(t)
			wantJSON := saveBytes(t, m, FormatJSON)
			bin := saveBytes(t, m, FormatBinary)
			loaded, err := LoadModel(bytes.NewReader(bin))
			if err != nil {
				t.Fatalf("binary load failed: %v", err)
			}
			if gotJSON := saveBytes(t, loaded, FormatJSON); !bytes.Equal(wantJSON, gotJSON) {
				t.Error("binary round trip changed the JSON rendering")
			}
			// And the binary rendering itself is stable across a round trip.
			if gotBin := saveBytes(t, loaded, FormatBinary); !bytes.Equal(bin, gotBin) {
				t.Error("binary rendering not stable across a load/save cycle")
			}
		})
	}
}

// TestLoadModelAutoDetect loads the same model through both serializations
// and demands byte-identical annotations.
func TestLoadModelAutoDetect(t *testing.T) {
	m := trainedModel(t)
	fromJSON, err := LoadModel(bytes.NewReader(saveBytes(t, m, FormatJSON)))
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := LoadModel(bytes.NewReader(saveBytes(t, m, FormatBinary)))
	if err != nil {
		t.Fatal(err)
	}
	var files []*Table
	for _, p := range testdataPaths(t) {
		tbl, _, err := LoadFile(p, LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, tbl)
	}
	serialize := func(m *Model) []byte {
		b, err := json.Marshal(m.AnnotateAll(files, BatchOptions{Parallelism: 1}))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b, c := serialize(m), serialize(fromJSON), serialize(fromBin)
	if !bytes.Equal(a, b) {
		t.Error("JSON-loaded model annotates differently from the trained one")
	}
	if !bytes.Equal(a, c) {
		t.Error("binary-loaded model annotates differently from the trained one")
	}
}

// TestModelBinaryRejection drives the typed rejection paths of the binary
// container: truncation at every region boundary, forged magic, and an
// unsupported container version.
func TestModelBinaryRejection(t *testing.T) {
	m := trainedModel(t)
	bin := saveBytes(t, m, FormatBinary)

	t.Run("truncated", func(t *testing.T) {
		// Cut inside the fixed header, inside the JSON header, and inside
		// the forest blobs.
		for _, n := range []int{0, 3, 8, 11, 40, len(bin) / 2, len(bin) - 1} {
			if _, err := LoadModel(bytes.NewReader(bin[:n])); !errors.Is(err, ErrInvalidModel) {
				t.Errorf("truncation at %d bytes returned %v, want ErrInvalidModel", n, err)
			}
		}
	})
	t.Run("trailing_garbage", func(t *testing.T) {
		grown := append(append([]byte(nil), bin...), 0xAB)
		if _, err := LoadModel(bytes.NewReader(grown)); !errors.Is(err, ErrInvalidModel) {
			t.Errorf("trailing bytes returned %v, want ErrInvalidModel", err)
		}
	})
	t.Run("bad_version", func(t *testing.T) {
		forged := append([]byte(nil), bin...)
		forged[4] = 0xEE
		if _, err := LoadModel(bytes.NewReader(forged)); !errors.Is(err, forest.ErrBadVersion) {
			t.Errorf("forged container version returned %v, want ErrBadVersion", err)
		}
	})
	t.Run("corrupt_forest_blob", func(t *testing.T) {
		forged := append([]byte(nil), bin...)
		// The first forest blob starts right after the fixed header and the
		// JSON header; smashing its magic must surface as a corrupt model.
		headerLen := binary.LittleEndian.Uint32(forged[8:12])
		forged[12+headerLen] ^= 0xFF
		if _, err := LoadModel(bytes.NewReader(forged)); !errors.Is(err, ErrInvalidModel) {
			t.Errorf("corrupted forest blob returned %v, want ErrInvalidModel", err)
		}
	})
}

// TestCompiledMatchesPointerAcrossCorpus is the tentpole's float-identity
// proof: annotations from the compiled engines must be byte-identical
// (through JSON serialization, which renders every float exactly) to the
// pointer-walking forests across the full testdata corpus, at Parallelism
// 1 and NumCPU, on both the batch and streaming paths.
func TestCompiledMatchesPointerAcrossCorpus(t *testing.T) {
	m := trainedModel(t)
	var files []*Table
	for _, p := range testdataPaths(t) {
		tbl, _, err := LoadFile(p, LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, tbl)
	}
	serialize := func(workers int) []byte {
		b, err := json.Marshal(m.AnnotateAll(files, BatchOptions{Parallelism: workers}))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	compiledSerial := serialize(1)
	compiledParallel := serialize(runtime.NumCPU())

	// Drop the compiled engines: predictions fall back to pointer walking.
	m.line.ClearCompiled()
	if m.cell != nil {
		m.cell.ClearCompiled()
	}
	pointerSerial := serialize(1)
	pointerParallel := serialize(runtime.NumCPU())

	if !bytes.Equal(compiledSerial, pointerSerial) {
		t.Error("serial: compiled annotations differ from pointer-path annotations")
	}
	if !bytes.Equal(compiledSerial, compiledParallel) {
		t.Error("compiled path differs between 1 worker and NumCPU")
	}
	if !bytes.Equal(pointerSerial, pointerParallel) {
		t.Error("pointer path differs between 1 worker and NumCPU")
	}
}

// TestCompiledMatchesPointerStreaming extends the identity proof to the
// windowed streaming path, which funnels through the same predictors via
// Model.annotate per window.
func TestCompiledMatchesPointerStreaming(t *testing.T) {
	m := trainedModel(t)
	data := bytes.Repeat([]byte("name,count,city\nalice,3,berlin\nbob,5,paris\n,,\ntotal,8,\n"), 200)
	collect := func() []byte {
		var anns []LineAnnotation
		_, err := m.AnnotateStream(context.Background(), bytes.NewReader(data), StreamOptions{},
			func(a LineAnnotation) error { anns = append(anns, a); return nil })
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(anns)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	compiled := collect()
	m.line.ClearCompiled()
	if m.cell != nil {
		m.cell.ClearCompiled()
	}
	pointer := collect()
	if !bytes.Equal(compiled, pointer) {
		t.Error("streaming annotations differ between compiled and pointer engines")
	}
}

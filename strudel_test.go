package strudel

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleCSV = `Employment by Sector 2020,,,
,,,
Sector,Q1,Q2,Q3
Manufacturing,120,130,125
Construction,80,85,90
Retail,200,210,205
Total,400,425,420
,,,
Source: labour force survey,,,
`

func trainedModel(t *testing.T) *Model {
	t.Helper()
	files, err := GenerateCorpus("saus", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(files, TrainOptions{Trees: 15, Seed: 1, MaxCellsPerFile: 200})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLoadAndParse(t *testing.T) {
	tbl, d, err := LoadReader(strings.NewReader(sampleCSV), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Delimiter != ',' {
		t.Errorf("dialect = %v", d)
	}
	if tbl.Height() != 9 || tbl.Width() != 4 {
		t.Errorf("dims = %dx%d", tbl.Height(), tbl.Width())
	}
	if tbl.Cell(2, 0) != "Sector" {
		t.Errorf("cell(2,0) = %q", tbl.Cell(2, 0))
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sample.csv")
	if err := os.WriteFile(path, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	tbl, _, err := LoadFile(path, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name != path {
		t.Errorf("Name = %q", tbl.Name)
	}
	if _, _, err := LoadFile(filepath.Join(dir, "missing.csv"), LoadOptions{}); err == nil {
		t.Error("missing file should error")
	}
}

func TestTrainAnnotateEndToEnd(t *testing.T) {
	m := trainedModel(t)
	tbl, _, err := LoadReader(strings.NewReader(sampleCSV), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ann := m.Annotate(tbl)
	if len(ann.Lines) != tbl.Height() {
		t.Fatalf("lines = %d", len(ann.Lines))
	}
	// The bulk of the body must be recognized as data.
	dataLines := 0
	for r := 3; r <= 5; r++ {
		if ann.Lines[r] == ClassData {
			dataLines++
		}
	}
	if dataLines < 2 {
		t.Errorf("only %d of 3 body lines classified data: %v", dataLines, ann.Lines)
	}
	if ann.Lines[2] != ClassHeader {
		t.Errorf("header line = %v", ann.Lines[2])
	}
	// Empty separator lines stay empty.
	if ann.Lines[1] != ClassEmpty {
		t.Errorf("separator = %v", ann.Lines[1])
	}
	if !m.HasCellModel() {
		t.Error("full training should produce a cell model")
	}
	if len(ann.Cells) != tbl.Height() || len(ann.Cells[0]) != tbl.Width() {
		t.Error("cell annotation shape wrong")
	}
	if len(ann.LineProbabilities) != tbl.Height() {
		t.Error("line probabilities shape wrong")
	}
}

func TestLineOnlyModel(t *testing.T) {
	files, err := GenerateCorpus("saus", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(files, TrainOptions{Trees: 10, Seed: 2, LineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.HasCellModel() {
		t.Error("LineOnly model should not have a cell model")
	}
	tbl, _, _ := LoadReader(strings.NewReader(sampleCSV), LoadOptions{})
	cells := m.ClassifyCells(tbl) // falls back to Line^C
	lines := m.ClassifyLines(tbl)
	for r := range cells {
		for c := range cells[r] {
			if !tbl.IsEmptyCell(r, c) && cells[r][c] != lines[r] {
				t.Fatal("Line^C fallback must extend line classes")
			}
		}
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf, FormatJSON); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _, _ := LoadReader(strings.NewReader(sampleCSV), LoadOptions{})
	a1 := m.Annotate(tbl)
	a2 := m2.Annotate(tbl)
	for r := range a1.Lines {
		if a1.Lines[r] != a2.Lines[r] {
			t.Fatalf("line %d differs after round trip", r)
		}
		for c := range a1.Cells[r] {
			if a1.Cells[r][c] != a2.Cells[r][c] {
				t.Fatalf("cell (%d,%d) differs after round trip", r, c)
			}
		}
	}
}

func TestModelSaveLoadFile(t *testing.T) {
	files, _ := GenerateCorpus("saus", 0.2)
	m, err := Train(files, TrainOptions{Trees: 5, Seed: 3, LineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.model")
	if err := m.SaveFile(path, FormatJSON); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(path + ".missing"); err == nil {
		t.Error("missing model file should error")
	}
}

func TestLoadModelCorrupt(t *testing.T) {
	if _, err := LoadModel(bytes.NewBufferString("{}")); err == nil {
		t.Error("empty model should fail")
	}
	if _, err := LoadModel(bytes.NewBufferString(`{"version":99}`)); err == nil {
		t.Error("bad version should fail")
	}
	if _, err := LoadModel(bytes.NewBufferString(`{"version":1}`)); !errors.Is(err, ErrInvalidModel) {
		t.Error("model without a line model should wrap ErrInvalidModel")
	}
	if _, err := LoadModel(bytes.NewBufferString(`{"version":1,`)); !errors.Is(err, ErrInvalidModel) {
		t.Error("truncated JSON should wrap ErrInvalidModel")
	}
}

// TestLoadModelRejectsInconsistentForest pins the load-time validation
// path: a model whose serialized bytes encode a structurally broken forest
// (here, a split feature index beyond NumFeats) must fail to load with
// ErrInvalidModel — the bug this guards against is Load accepting the
// artifact and panicking (or silently mispredicting) at first Annotate.
func TestLoadModelRejectsInconsistentForest(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf, FormatJSON); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	// Point every split at an out-of-range feature index. Leaves encode
	// "f":-1, so only non-negative (split) features are rewritten.
	line := regexp.MustCompile(`"f":(\d)`).ReplaceAllString(string(raw["line"]), `"f":99999$1`)
	raw["line"] = json.RawMessage(line)
	corrupted, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	_, err = LoadModel(bytes.NewReader(corrupted))
	if !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("corrupted forest: err = %v, want ErrInvalidModel", err)
	}
	if !strings.Contains(err.Error(), "line") {
		t.Errorf("error %q does not locate the defective forest", err)
	}
}

func TestGenerateCorpusNames(t *testing.T) {
	for _, name := range CorpusNames() {
		scale := 0.05
		files, err := GenerateCorpus(name, scale)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(files) == 0 {
			t.Errorf("%s: empty corpus", name)
		}
		if !files[0].Annotated() {
			t.Errorf("%s: corpus not annotated", name)
		}
	}
	if _, err := GenerateCorpus("nope", 1); err == nil {
		t.Error("unknown corpus should error")
	}
}

func TestExtractData(t *testing.T) {
	m := trainedModel(t)
	tbl, _, _ := LoadReader(strings.NewReader(sampleCSV), LoadOptions{})
	ann := m.Annotate(tbl)
	header, rows := ExtractData(tbl, ann)
	if header == nil {
		t.Fatal("no header extracted")
	}
	if header[0] != "Sector" {
		t.Errorf("header = %v", header)
	}
	if len(rows) < 2 {
		t.Errorf("extracted %d data rows", len(rows))
	}
	for _, row := range rows {
		if row[0] == "Total" {
			t.Log("note: derived line leaked into extracted data (model-dependent)")
		}
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	c, err := ParseClass("derived")
	if err != nil || c != ClassDerived {
		t.Errorf("ParseClass(derived) = %v, %v", c, err)
	}
}

func TestDetectDialectSemicolon(t *testing.T) {
	text := "a;b;c\n1;2;3\n4;5;6\n7;8;9\n"
	d, err := DetectDialect(text)
	if err != nil {
		t.Fatal(err)
	}
	if d.Delimiter != ';' {
		t.Errorf("delimiter = %q", d.Delimiter)
	}
	tbl := Parse(text, d)
	if tbl.Width() != 3 {
		t.Errorf("width = %d", tbl.Width())
	}
}

func TestExtractTables(t *testing.T) {
	m := trainedModel(t)
	input := `Production Report,,,
,,,
Item,Q1,Q2,Q3
Widgets,10,20,30
Gears,5,5,5
Total,15,25,35
,,,
Shipments,,,
Item,Q1,Q2,Q3
Widgets,8,18,28
Gears,4,4,4
`
	tbl, _, err := LoadReader(strings.NewReader(input), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ann := m.Annotate(tbl)
	rels := ExtractTables(tbl, ann)
	if len(rels) == 0 {
		t.Fatal("no relations extracted")
	}
	total := 0
	for _, rel := range rels {
		total += len(rel.Rows)
		for _, row := range rel.Rows {
			if row[0] == "Total" {
				t.Error("derived row leaked into extraction")
			}
		}
	}
	if total < 3 {
		t.Errorf("extracted only %d data rows", total)
	}
}

func TestExtractProse(t *testing.T) {
	m := trainedModel(t)
	tbl, _, err := LoadReader(strings.NewReader(sampleCSV), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ann := m.Annotate(tbl)
	notes := ExtractProse(tbl, ann, "notes")
	meta := ExtractProse(tbl, ann, "metadata")
	if len(notes)+len(meta) == 0 {
		t.Error("no prose extracted from a file with metadata and notes")
	}
}

func TestDetectDerivedCellsFacade(t *testing.T) {
	tbl, _, err := LoadReader(strings.NewReader(sampleCSV), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := DetectDerivedCells(tbl)
	if len(d) != tbl.Height() {
		t.Fatalf("grid height = %d", len(d))
	}
	// The Total row (index 6 after crop) should be detected.
	found := false
	for c := 0; c < tbl.Width(); c++ {
		if d[6][c] {
			found = true
		}
	}
	if !found {
		t.Error("anchored total row not detected")
	}
}

func TestContainsAggregationWordFacade(t *testing.T) {
	if !ContainsAggregationWord("Grand Total") || ContainsAggregationWord("subtotaling") {
		t.Error("facade keyword check wrong")
	}
}

func TestTrainNoData(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Error("training with no files should error")
	}
	un := Parse("a,b\n1,2\n", DefaultDialect) // unannotated
	if _, err := Train([]*Table{un}, TrainOptions{}); err == nil {
		t.Error("training on unannotated tables should error")
	}
}

func TestAnnotationLineProbsMatchClasses(t *testing.T) {
	m := trainedModel(t)
	tbl, _, _ := LoadReader(strings.NewReader(sampleCSV), LoadOptions{})
	ann := m.Annotate(tbl)
	for r := 0; r < tbl.Height(); r++ {
		if tbl.IsEmptyLine(r) {
			continue
		}
		best, bestP := 0, 0.0
		for i, p := range ann.LineProbabilities[r] {
			if p > bestP {
				best, bestP = i, p
			}
		}
		if Classes[best] != ann.Lines[r] {
			t.Fatalf("line %d: argmax prob class %v != predicted %v",
				r, Classes[best], ann.Lines[r])
		}
	}
}

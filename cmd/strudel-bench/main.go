// Command strudel-bench regenerates the paper's tables and figures on the
// synthetic corpora.
//
// Usage:
//
//	strudel-bench -exp table6-line          # one experiment
//	strudel-bench -exp all                  # the whole evaluation section
//	strudel-bench -exp table6-cell -paper   # full 10x10 CV, full corpora
//
// Experiments: table3 table4 table5 table6-line table6-cell figure3 table7
// table8 figure4 scale ablate-clf ablate-feat.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"strudel/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment name or 'all'")
		paper   = flag.Bool("paper", false, "use the paper's full protocol (10x10 CV, full corpora, 100 trees)")
		scale   = flag.Float64("scale", 0, "corpus scale override")
		folds   = flag.Int("folds", 0, "CV folds override")
		repeats = flag.Int("repeats", 0, "CV repeats override")
		trees   = flag.Int("trees", 0, "forest size override")
		seed    = flag.Int64("seed", 1, "random seed")
		list    = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}

	cfg := experiments.Default()
	if *paper {
		cfg = experiments.Paper()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *folds > 0 {
		cfg.Folds = *folds
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	if *trees > 0 {
		cfg.Trees = *trees
	}
	cfg.Seed = *seed
	cfg.Out = os.Stdout

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		fmt.Printf("=== %s ===\n", name)
		start := time.Now()
		if err := experiments.Run(name, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "strudel-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v ---\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

package main

import (
	"strings"
	"testing"
)

// snap builds a snapshot with the three gated throughput metrics.
func snap(serial, parallel, stream float64) *snapshot {
	var s snapshot
	s.AnnotateAllSerial.FilesPerSec = serial
	s.AnnotateAllParallel.FilesPerSec = parallel
	s.AnnotateStream.MBPerSec = stream
	return &s
}

func TestCompareSnapshotsPassesWithinTolerance(t *testing.T) {
	base := snap(100, 200, 10)
	for _, cur := range []*snapshot{
		snap(100, 200, 10),  // identical
		snap(95, 190, 9.5),  // -5%: inside the 10% band
		snap(91, 181, 9.01), // -9%: still inside
		snap(150, 300, 15),  // faster is never a regression
	} {
		if regs := compareSnapshots(cur, base, 0.10); len(regs) != 0 {
			t.Errorf("compareSnapshots(%+v) = %v, want none", cur.AnnotateAllSerial, regs)
		}
	}
}

func TestCompareSnapshotsCatchesRegression(t *testing.T) {
	base := snap(100, 200, 10)

	regs := compareSnapshots(snap(85, 200, 10), base, 0.10)
	if len(regs) != 1 {
		t.Fatalf("one regressed metric: got %v", regs)
	}
	if !strings.Contains(regs[0], "annotate_all_serial") {
		t.Errorf("regression %q does not name the metric", regs[0])
	}

	// All three down 20%: three findings, each naming its metric.
	regs = compareSnapshots(snap(80, 160, 8), base, 0.10)
	if len(regs) != 3 {
		t.Fatalf("three regressed metrics: got %v", regs)
	}
}

func TestCompareSnapshotsSkipsAbsentBaselineMetrics(t *testing.T) {
	// An older baseline without a metric (zero value) must not gate it.
	base := snap(100, 0, 10)
	if regs := compareSnapshots(snap(95, 50, 9.5), base, 0.10); len(regs) != 0 {
		t.Errorf("absent baseline metric was gated: %v", regs)
	}
}

func TestPercentile(t *testing.T) {
	durs := []int64{50, 10, 40, 30, 20, 60, 70, 80, 90, 100}
	if got := percentile(durs, 50); got != 60 {
		t.Errorf("p50 = %d, want 60", got)
	}
	if got := percentile(durs, 99); got != 100 {
		t.Errorf("p99 = %d, want 100", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %d, want 0", got)
	}
	// The input must not be reordered.
	if durs[0] != 50 || durs[1] != 10 {
		t.Error("percentile mutated its input")
	}
}

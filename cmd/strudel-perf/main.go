// Command strudel-perf captures a machine-readable performance snapshot of
// the two annotation paths — in-memory batch (Model.AnnotateAll) and
// bounded-memory streaming (Model.AnnotateStream) — as one JSON document.
// The repo commits these snapshots (BENCH_<n>.json) so the performance
// trajectory of the pipeline is visible in history.
//
// Usage:
//
//	strudel-perf [-out BENCH_6.json] [-stream-size 8M]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"strudel"
	"strudel/internal/datagen"
)

type pathResult struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	FilesPerSec float64 `json:"files_per_sec,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

type snapshot struct {
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Config pins what was measured so snapshots stay comparable.
	Config struct {
		Trees       int    `json:"trees"`
		BatchCorpus string `json:"batch_corpus"`
		BatchFiles  int    `json:"batch_files"`
		StreamBytes int64  `json:"stream_bytes"`
		WindowLines int    `json:"window_lines"`
		MarginLines int    `json:"margin_lines"`
	} `json:"config"`
	AnnotateAllSerial   pathResult `json:"annotate_all_serial"`
	AnnotateAllParallel pathResult `json:"annotate_all_parallel"`
	AnnotateStream      pathResult `json:"annotate_stream"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_6.json", "output path")
		streamSize = flag.String("stream-size", "8M", "bytes of stacked CSV the streaming benchmark annotates per op")
	)
	flag.Parse()
	if err := run(*out, *streamSize); err != nil {
		fmt.Fprintln(os.Stderr, "strudel-perf:", err)
		os.Exit(1)
	}
}

func run(out, streamSize string) error {
	target, err := datagen.ParseSize(streamSize)
	if err != nil || target <= 0 {
		return fmt.Errorf("bad -stream-size %q", streamSize)
	}

	// Mirror the committed benchmarks: benchModel's training corpus and the
	// BenchmarkAnnotateAll batch corpus, so numbers line up with
	// `go test -bench`.
	files, err := strudel.GenerateCorpus("saus", 0.2)
	if err != nil {
		return err
	}
	model, err := strudel.Train(files, strudel.TrainOptions{Trees: 20, Seed: 1, MaxCellsPerFile: 300})
	if err != nil {
		return err
	}
	corpus, err := strudel.GenerateCorpus("govuk", 0.25)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if _, _, err := datagen.WriteSized(&buf, datagen.Mendeley(), target); err != nil {
		return err
	}
	data := buf.Bytes()

	var snap snapshot
	snap.GoVersion = runtime.Version()
	snap.NumCPU = runtime.NumCPU()
	snap.Config.Trees = 20
	snap.Config.BatchCorpus = "govuk@0.25"
	snap.Config.BatchFiles = len(corpus)
	snap.Config.StreamBytes = int64(len(data))
	snap.Config.WindowLines = strudel.DefaultStreamWindowLines
	snap.Config.MarginLines = strudel.DefaultStreamMarginLines

	batch := func(workers int) pathResult {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				model.AnnotateAll(corpus, strudel.BatchOptions{Parallelism: workers})
			}
		})
		pr := toResult(r)
		pr.FilesPerSec = float64(len(corpus)) / (float64(pr.NsPerOp) / 1e9)
		return pr
	}
	snap.AnnotateAllSerial = batch(1)
	snap.AnnotateAllParallel = batch(0)

	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := model.AnnotateStream(context.Background(), bytes.NewReader(data),
				strudel.StreamOptions{}, func(strudel.LineAnnotation) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	pr := toResult(r)
	pr.MBPerSec = float64(len(data)) / 1e6 / (float64(pr.NsPerOp) / 1e9)
	snap.AnnotateStream = pr

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(snap)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Printf("batch serial %.1f files/s, parallel %.1f files/s; stream %.2f MB/s -> %s\n",
		snap.AnnotateAllSerial.FilesPerSec, snap.AnnotateAllParallel.FilesPerSec,
		snap.AnnotateStream.MBPerSec, out)
	return nil
}

func toResult(r testing.BenchmarkResult) pathResult {
	return pathResult{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// Command strudel-perf captures a machine-readable performance snapshot of
// the two annotation paths — in-memory batch (Model.AnnotateAll) and
// bounded-memory streaming (Model.AnnotateStream) — as one JSON document.
// The repo commits these snapshots (BENCH_<n>.json) so the performance
// trajectory of the pipeline is visible in history.
//
// Usage:
//
//	strudel-perf [-out BENCH_10.json] [-stream-size 8M] [-best 3]
//	strudel-perf -compare BENCH_10.json
//
// With -compare, the freshly measured snapshot is judged against the given
// baseline instead of written: any throughput metric (batch files/s,
// stream MB/s) more than 10% below the baseline fails the run with exit
// status 1. This is the regression gate `make check` and CI run; -best
// keeps it stable by measuring each path N times and scoring the best run,
// so a one-off scheduling hiccup does not fail the build.
//
// Besides the per-op benchmark numbers, each snapshot records the p50/p99
// single-file annotation latency over the batch corpus — the tail metric a
// serving tier would put in an SLO — plus two inference-layer metrics: the
// raw predict-path throughput of both forest engines (compiled flattened
// vs pointer-walking) over one staged feature block, and the model
// deserialization cost in both encodings (JSON interchange vs compact
// binary), the number that dominates serving cold start.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"
	"testing"
	"time"

	"strudel"
	"strudel/internal/datagen"
	"strudel/internal/ml"
	"strudel/internal/ml/forest"
)

type pathResult struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	FilesPerSec float64 `json:"files_per_sec,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

type snapshot struct {
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Config pins what was measured so snapshots stay comparable.
	Config struct {
		Trees       int    `json:"trees"`
		BatchCorpus string `json:"batch_corpus"`
		BatchFiles  int    `json:"batch_files"`
		StreamBytes int64  `json:"stream_bytes"`
		WindowLines int    `json:"window_lines"`
		MarginLines int    `json:"margin_lines"`
	} `json:"config"`
	AnnotateAllSerial   pathResult `json:"annotate_all_serial"`
	AnnotateAllParallel pathResult `json:"annotate_all_parallel"`
	AnnotateStream      pathResult `json:"annotate_stream"`
	// PerFileLatency is the single-file annotation latency distribution
	// over the batch corpus (serial, one file per Annotate call).
	PerFileLatency struct {
		P50Ns int64 `json:"p50_ns"`
		P99Ns int64 `json:"p99_ns"`
	} `json:"per_file_latency"`
	// PredictPath is the raw classifier-kernel throughput over one staged
	// feature block (PredictProbaMatrix rows per second), for the compiled
	// flattened engine and the pointer-walking forest. Zero in snapshots
	// taken before the compiled engine existed; the gate skips absent
	// metrics.
	PredictPath struct {
		Rows               int     `json:"rows"`
		CompiledRowsPerSec float64 `json:"compiled_rows_per_sec,omitempty"`
		PointerRowsPerSec  float64 `json:"pointer_rows_per_sec,omitempty"`
	} `json:"predict_path,omitempty"`
	// ModelLoad is the full-model deserialization cost per encoding — the
	// serving cold-start number — measured by decoding the benchmark model
	// from memory.
	ModelLoad struct {
		JSONNsPerOp   int64 `json:"json_ns_per_op,omitempty"`
		BinaryNsPerOp int64 `json:"binary_ns_per_op,omitempty"`
		JSONBytes     int   `json:"json_bytes,omitempty"`
		BinaryBytes   int   `json:"binary_bytes,omitempty"`
	} `json:"model_load,omitempty"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_10.json", "output path (ignored under -compare unless set explicitly)")
		streamSize = flag.String("stream-size", "8M", "bytes of stacked CSV the streaming benchmark annotates per op")
		compare    = flag.String("compare", "", "baseline snapshot to gate against instead of writing a new one")
		best       = flag.Int("best", 3, "measure each path N times and keep the best run")
	)
	flag.Parse()
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})
	if *compare != "" && !outSet {
		*out = ""
	}
	// Ctrl-C/SIGTERM cancels between measurement phases: a long perf run
	// stops promptly without writing a half-measured snapshot.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *out, *streamSize, *compare, *best); err != nil {
		fmt.Fprintln(os.Stderr, "strudel-perf:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, out, streamSize, comparePath string, best int) error {
	target, err := datagen.ParseSize(streamSize)
	if err != nil || target <= 0 {
		return fmt.Errorf("bad -stream-size %q", streamSize)
	}
	if best < 1 {
		best = 1
	}

	snap, err := measure(ctx, target, best)
	if err != nil {
		return err
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		werr := enc.Encode(snap)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	fmt.Printf("batch serial %.1f files/s, parallel %.1f files/s; stream %.2f MB/s; per-file p50 %s p99 %s\n",
		snap.AnnotateAllSerial.FilesPerSec, snap.AnnotateAllParallel.FilesPerSec,
		snap.AnnotateStream.MBPerSec,
		time.Duration(snap.PerFileLatency.P50Ns), time.Duration(snap.PerFileLatency.P99Ns))
	fmt.Printf("predict compiled %.0f rows/s, pointer %.0f rows/s; model load json %s binary %s\n",
		snap.PredictPath.CompiledRowsPerSec, snap.PredictPath.PointerRowsPerSec,
		time.Duration(snap.ModelLoad.JSONNsPerOp), time.Duration(snap.ModelLoad.BinaryNsPerOp))

	if comparePath == "" {
		return nil
	}
	raw, err := os.ReadFile(comparePath)
	if err != nil {
		return err
	}
	var base snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", comparePath, err)
	}
	regs := compareSnapshots(snap, &base, 0.10)
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "strudel-perf: REGRESSION:", r)
		}
		return fmt.Errorf("%d throughput regression(s) against %s", len(regs), comparePath)
	}
	fmt.Printf("no regression against %s\n", comparePath)
	return nil
}

// measure trains the benchmark model once and measures every path
// best-of-N, checking ctx between phases so an interrupt stops the run at
// the next phase boundary.
func measure(ctx context.Context, streamBytes int64, best int) (*snapshot, error) {
	// Mirror the committed benchmarks: benchModel's training corpus and the
	// BenchmarkAnnotateAll batch corpus, so numbers line up with
	// `go test -bench`.
	files, err := strudel.GenerateCorpus("saus", 0.2)
	if err != nil {
		return nil, err
	}
	model, err := strudel.TrainContext(ctx, files, strudel.TrainOptions{Trees: 20, Seed: 1, MaxCellsPerFile: 300})
	if err != nil {
		return nil, err
	}
	corpus, err := strudel.GenerateCorpus("govuk", 0.25)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, _, err := datagen.WriteSized(&buf, datagen.Mendeley(), streamBytes); err != nil {
		return nil, err
	}
	data := buf.Bytes()

	var snap snapshot
	snap.GoVersion = runtime.Version()
	snap.NumCPU = runtime.NumCPU()
	snap.Config.Trees = 20
	snap.Config.BatchCorpus = "govuk@0.25"
	snap.Config.BatchFiles = len(corpus)
	snap.Config.StreamBytes = int64(len(data))
	snap.Config.WindowLines = strudel.DefaultStreamWindowLines
	snap.Config.MarginLines = strudel.DefaultStreamMarginLines

	batch := func(workers int) pathResult {
		pr := bestOf(best, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				model.AnnotateAll(corpus, strudel.BatchOptions{Parallelism: workers})
			}
		})
		pr.FilesPerSec = float64(len(corpus)) / (float64(pr.NsPerOp) / 1e9)
		return pr
	}
	snap.AnnotateAllSerial = batch(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	snap.AnnotateAllParallel = batch(0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	pr := bestOf(best, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := model.AnnotateStream(ctx, bytes.NewReader(data),
				strudel.StreamOptions{}, func(strudel.LineAnnotation) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	pr.MBPerSec = float64(len(data)) / 1e6 / (float64(pr.NsPerOp) / 1e9)
	snap.AnnotateStream = pr

	// Tail latency: each file annotated alone, serially, timed individually.
	durs := make([]int64, 0, len(corpus))
	one := make([]*strudel.Table, 1)
	for _, f := range corpus {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		one[0] = f
		start := time.Now()
		model.AnnotateAll(one, strudel.BatchOptions{Parallelism: 1})
		durs = append(durs, time.Since(start).Nanoseconds())
	}
	snap.PerFileLatency.P50Ns = percentile(durs, 50)
	snap.PerFileLatency.P99Ns = percentile(durs, 99)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := measurePredict(&snap, best); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := measureModelLoad(&snap, model, best); err != nil {
		return nil, err
	}
	return &snap, nil
}

// measurePredict benchmarks the two forest engines' matrix kernels on one
// staged feature block of synthetic rows. A dedicated synthetic forest
// (fixed seed, fixed shape) keeps this metric independent of the pipeline
// corpus, so it isolates the inference layer: staging cost excluded, walk
// cost only.
func measurePredict(snap *snapshot, best int) error {
	const (
		nTrain  = 1500
		feats   = 32
		classes = 6
		rows    = 4096
	)
	rng := rand.New(rand.NewSource(11))
	X := make([][]float64, nTrain)
	y := make([]int, nTrain)
	for i := range X {
		x := make([]float64, feats)
		c := i % classes
		for j := range x {
			x[j] = rng.NormFloat64() + float64(c)*0.5
		}
		X[i], y[i] = x, c
	}
	f, err := forest.Fit(X, y, classes, forest.Options{NumTrees: 20, Seed: 11})
	if err != nil {
		return err
	}
	c, err := f.Compile()
	if err != nil {
		return err
	}
	m := ml.NewMatrix(rows, feats)
	for r := 0; r < rows; r++ {
		m.SetRow(r, X[r%nTrain])
	}
	out := make([]float64, rows*classes)
	rowsPerSec := func(p forest.Predictor) float64 {
		pr := bestOf(best, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.PredictProbaMatrix(m, out)
			}
		})
		return float64(rows) / (float64(pr.NsPerOp) / 1e9)
	}
	snap.PredictPath.Rows = rows
	snap.PredictPath.CompiledRowsPerSec = rowsPerSec(c)
	snap.PredictPath.PointerRowsPerSec = rowsPerSec(f)
	return nil
}

// measureModelLoad benchmarks full-model deserialization from memory in
// both encodings — the cold-start cost a serving tier pays before its
// first annotation (LoadModel also compiles the flattened engines, so that
// cost is included).
func measureModelLoad(snap *snapshot, model *strudel.Model, best int) error {
	var jbuf, bbuf bytes.Buffer
	if err := model.Save(&jbuf, strudel.FormatJSON); err != nil {
		return err
	}
	if err := model.Save(&bbuf, strudel.FormatBinary); err != nil {
		return err
	}
	load := func(data []byte) (int64, error) {
		var lerr error
		pr := bestOf(best, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := strudel.LoadModel(bytes.NewReader(data)); err != nil {
					lerr = err
					b.FailNow()
				}
			}
		})
		return pr.NsPerOp, lerr
	}
	var err error
	if snap.ModelLoad.JSONNsPerOp, err = load(jbuf.Bytes()); err != nil {
		return err
	}
	if snap.ModelLoad.BinaryNsPerOp, err = load(bbuf.Bytes()); err != nil {
		return err
	}
	snap.ModelLoad.JSONBytes = jbuf.Len()
	snap.ModelLoad.BinaryBytes = bbuf.Len()
	return nil
}

// bestOf runs a benchmark n times and keeps the fastest run (lowest
// ns/op): the least-disturbed measurement, which is what a regression gate
// should score so scheduler noise fails nothing.
func bestOf(n int, fn func(*testing.B)) pathResult {
	var bestRun pathResult
	for i := 0; i < n; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		pr := pathResult{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if i == 0 || pr.NsPerOp < bestRun.NsPerOp {
			bestRun = pr
		}
	}
	return bestRun
}

// percentile returns the q-th percentile (nearest-rank) of durations in
// nanoseconds; 0 for an empty slice.
func percentile(durs []int64, q int) int64 {
	if len(durs) == 0 {
		return 0
	}
	sorted := make([]int64, len(durs))
	copy(sorted, durs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * q / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// compareSnapshots returns one description per throughput metric of cur
// that fell more than tolerance (fractional, e.g. 0.10) below base. Only
// throughput is gated: allocation counts and latency shift with corpus
// tweaks and are trajectory data, not pass/fail contracts.
func compareSnapshots(cur, base *snapshot, tolerance float64) []string {
	var regs []string
	check := func(name string, got, want float64) {
		if want <= 0 {
			return // metric absent from the baseline: nothing to gate
		}
		if got < want*(1-tolerance) {
			regs = append(regs, fmt.Sprintf("%s: %.2f vs baseline %.2f (-%.1f%%, tolerance %.0f%%)",
				name, got, want, (1-got/want)*100, tolerance*100))
		}
	}
	check("annotate_all_serial files/s", cur.AnnotateAllSerial.FilesPerSec, base.AnnotateAllSerial.FilesPerSec)
	check("annotate_all_parallel files/s", cur.AnnotateAllParallel.FilesPerSec, base.AnnotateAllParallel.FilesPerSec)
	check("annotate_stream MB/s", cur.AnnotateStream.MBPerSec, base.AnnotateStream.MBPerSec)
	check("predict_path compiled rows/s", cur.PredictPath.CompiledRowsPerSec, base.PredictPath.CompiledRowsPerSec)
	check("predict_path pointer rows/s", cur.PredictPath.PointerRowsPerSec, base.PredictPath.PointerRowsPerSec)
	// Load cost is gated as a rate so "higher is better" holds like the
	// other metrics; ns==0 (pre-PR-10 baselines) maps to an absent metric.
	persec := func(ns int64) float64 {
		if ns <= 0 {
			return 0
		}
		return 1e9 / float64(ns)
	}
	check("model_load json loads/s", persec(cur.ModelLoad.JSONNsPerOp), persec(base.ModelLoad.JSONNsPerOp))
	check("model_load binary loads/s", persec(cur.ModelLoad.BinaryNsPerOp), persec(base.ModelLoad.BinaryNsPerOp))
	return regs
}

// Command strudel-stream-diff checks the streaming-equivalence contract on
// a real file: it annotates the file twice — in memory (LoadFile +
// Annotate) and through the bounded-memory streaming pipeline
// (AnnotateFileStream) — and diffs the results.
//
// Usage:
//
//	strudel-stream-diff model.file input.csv
//
// Parsing must agree exactly: same line count, byte-identical cells per
// line. Classification must agree exactly when the file fits in one window;
// for larger files the windowed features are window-local ("identical
// modulo chunking"), so classes may differ on a thin seam — the tool
// reports the agreement rate and fails below 90%. Exit status 0 means the
// contract holds.
package main

import (
	"context"
	"fmt"
	"os"
	"reflect"

	"strudel"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: strudel-stream-diff model.file input.csv")
		os.Exit(2)
	}
	if err := run(os.Args[1], os.Args[2]); err != nil {
		fmt.Fprintln(os.Stderr, "strudel-stream-diff:", err)
		os.Exit(1)
	}
}

func run(modelPath, input string) error {
	model, err := strudel.LoadModelFile(modelPath)
	if err != nil {
		return err
	}

	// Lift MaxLines symmetrically: the diff must cover the whole file on
	// both paths, however tall it is. (MaxBytes stays defaulted in memory;
	// a file too big to load in memory cannot be diffed against it.)
	load := strudel.LoadOptions{Ingest: strudel.IngestOptions{MaxLines: -1}}
	tbl, _, err := strudel.LoadFile(input, load)
	if err != nil {
		return fmt.Errorf("in-memory load: %w", err)
	}
	ann := model.Annotate(tbl)

	var lines []strudel.LineAnnotation
	sum, err := model.AnnotateFileStream(context.Background(), input,
		strudel.StreamOptions{Load: load}, func(la strudel.LineAnnotation) error {
			lines = append(lines, la)
			return nil
		})
	if err != nil {
		return fmt.Errorf("streaming: %w", err)
	}

	if len(lines) != tbl.Height() {
		return fmt.Errorf("parse mismatch: stream emitted %d lines, in-memory table has %d", len(lines), tbl.Height())
	}
	agree := 0
	for i, la := range lines {
		if !reflect.DeepEqual(la.Fields, tbl.Row(i)) {
			return fmt.Errorf("parse mismatch at line %d: stream %q vs memory %q", i, la.Fields, tbl.Row(i))
		}
		if la.Class == ann.Lines[i] {
			agree++
		}
	}
	total := len(lines)
	if total == 0 {
		return fmt.Errorf("empty annotation")
	}
	rate := float64(agree) / float64(total)
	fmt.Printf("%s: %d lines, %d windows; parse identical; class agreement %d/%d (%.2f%%)\n",
		input, total, sum.Windows, agree, total, 100*rate)
	if sum.Windows <= 1 && agree != total {
		return fmt.Errorf("single-window stream must be byte-identical; %d lines disagree", total-agree)
	}
	if rate < 0.90 {
		return fmt.Errorf("class agreement %.2f%% below the 90%% floor", 100*rate)
	}
	return nil
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDir returns the absolute path of the golden fixture module.
func fixtureDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestGoldenJSON pins the machine-readable output contract: stable
// check-then-position ordering, module-relative slash-separated paths, and
// a byte-identical encoding. Regenerate testdata/golden.json with
//
//	go run ./cmd/strudel-lint -json ./... > golden.json   (from testdata/src)
//
// after deliberate output-format or analyzer-message changes.
func TestGoldenJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./..."}, fixtureDir(t), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	want, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("JSON output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", stdout.Bytes(), want)
	}
	if strings.Contains(stdout.String(), fixtureDir(t)) {
		t.Error("JSON output leaks absolute paths")
	}
}

// TestTextOutputModuleRelative checks the human-readable mode uses the same
// module-relative paths.
func TestTextOutputModuleRelative(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-checks", "panicpath", "./..."}, fixtureDir(t), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	line := strings.SplitN(stdout.String(), "\n", 2)[0]
	if !strings.HasPrefix(line, "internal/demo/demo.go:") {
		t.Errorf("text finding %q is not module-relative", line)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("text mode did not summarize findings on stderr: %q", stderr.String())
	}
}

func TestRunCleanPackage(t *testing.T) {
	// The repo's own ml/tree package must lint clean from any working dir.
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./internal/ml/tree"}, root, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output: %s", stdout.String())
	}
}

func TestRunUnknownCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "nosuch"}, fixtureDir(t), &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown check") {
		t.Errorf("stderr = %q, want unknown-check message", stderr.String())
	}
	// The message must teach the valid vocabulary, not just reject.
	for _, name := range []string{"nondeterminism", "ctxflow", "errflow", "hotalloc"} {
		if !strings.Contains(stderr.String(), name) {
			t.Errorf("unknown-check message does not list valid check %q: %q", name, stderr.String())
		}
	}
}

// TestGraphDump exercises the -graph debugging mode: deterministic,
// module-scoped, and annotated with edge kinds.
func TestGraphDump(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-graph", "./..."}, fixtureDir(t), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "(*lintfixture/internal/ingest.Scanner).Scan") {
		t.Errorf("-graph output missing the Scan node:\n%s", out)
	}
	if !strings.Contains(out, "lintfixture/internal/demo.Fanout") {
		t.Errorf("-graph output missing the Fanout node:\n%s", out)
	}
	// Determinism: a second run must render byte-identically.
	var second bytes.Buffer
	if code := run([]string{"-graph", "./..."}, fixtureDir(t), &second, &stderr); code != 0 {
		t.Fatalf("second -graph run failed (stderr: %s)", stderr.String())
	}
	if out != second.String() {
		t.Error("-graph output is not deterministic across runs")
	}
}

func TestModelsCorruptCorpus(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-models", "testdata/models/corrupt_*.json"}, root, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	for _, invariant := range []string{
		"feature index out of range",
		"class dimension mismatch",
		"broken tree links",
		"bad leaf probabilities",
		"ensemble has no trees",
	} {
		if !strings.Contains(out, invariant) {
			t.Errorf("-models output does not name invariant %q", invariant)
		}
	}
	if strings.Contains(out, root) {
		t.Error("-models output leaks absolute paths")
	}
}

func TestModelsValidCorpus(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-models", "testdata/models/valid_*.json"}, root, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestModelsNoMatch(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-models", "no_such_dir/*.json"}, t.TempDir(), &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

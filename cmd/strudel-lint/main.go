// Command strudel-lint runs the project's static-analysis suite
// (internal/analysis) over module packages, enforcing the determinism and
// feature-parity contracts the annotation pipeline depends on.
//
// Usage:
//
//	strudel-lint [flags] [packages...]
//
// Packages default to ./... and accept the shapes ./..., ./dir/..., ./dir,
// or module import paths. Exit status: 0 clean, 1 findings, 2 usage or
// load failure.
//
// Flags:
//
//	-json          emit findings as a JSON array instead of file:line text
//	-checks list   comma-separated check names to run (default: all)
//	-list          print the registered checks and exit
//
// Findings are silenced at the offending line (or the line above) with
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory, and stale or unknown suppressions are themselves
// reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"strudel/internal/analysis"
)

func main() {
	var (
		asJSON = flag.Bool("json", false, "emit findings as JSON")
		checks = flag.String("checks", "", "comma-separated check names to run (default: all)")
		list   = flag.Bool("list", false, "list registered checks and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All
	if *checks != "" {
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a := analysis.Lookup(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "strudel-lint: unknown check %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath, err := analysis.FindModule(cwd)
	if err != nil {
		fatal(err)
	}
	loader := analysis.NewLoader(root, modPath)
	paths, err := loader.Expand(flag.Args())
	if err != nil {
		fatal(err)
	}

	diags, err := analysis.Run(loader, paths, analyzers)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(rel(root, d))
		}
	}
	if len(diags) > 0 {
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "strudel-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// rel shortens absolute diagnostic paths to module-relative ones for
// readable terminal output.
func rel(root string, d analysis.Diagnostic) string {
	file := d.File
	if r, ok := strings.CutPrefix(file, root+string(os.PathSeparator)); ok {
		file = r
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", file, d.Line, d.Col, d.Check, d.Message)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "strudel-lint:", err)
	os.Exit(2)
}

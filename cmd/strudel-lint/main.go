// Command strudel-lint runs the project's static-analysis suite
// (internal/analysis) over module packages, enforcing the determinism,
// concurrency, and feature-parity contracts the annotation pipeline
// depends on, and verifies serialized model artifacts against the
// structural invariants prediction relies on.
//
// Usage:
//
//	strudel-lint [flags] [packages...]
//	strudel-lint -models <glob> [globs...]
//
// Packages default to ./... and accept the shapes ./..., ./dir/..., ./dir,
// or module import paths. With -models, arguments are artifact glob
// patterns instead of packages. Exit status: 0 clean, 1 findings, 2 usage
// or load failure.
//
// Flags:
//
//	-json          emit findings as a JSON array instead of file:line text
//	-checks list   comma-separated check names to run (default: all)
//	-list          print the registered checks and exit
//	-models glob   verify model artifact files matching the glob(s)
//	-graph         dump the module-wide call graph instead of linting
//
// Reported paths are module-relative and slash-separated in both output
// modes, so results are stable across machines and checkouts.
//
// Findings are silenced at the offending line (or the line above) with
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory, and stale or unknown suppressions are themselves
// reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"strudel/internal/analysis"
	"strudel/internal/analysis/modelcheck"
)

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel-lint:", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], cwd, os.Stdout, os.Stderr))
}

// run is the testable entry point: args are the command-line arguments
// (without the program name), dir is the working directory patterns
// resolve against, and the return value is the process exit code.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("strudel-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		asJSON = fs.Bool("json", false, "emit findings as JSON")
		checks = fs.String("checks", "", "comma-separated check names to run (default: all)")
		list   = fs.Bool("list", false, "list registered checks and exit")
		models = fs.String("models", "", "verify model artifact files matching this glob (positional args add more globs)")
		graph  = fs.Bool("graph", false, "dump the module-wide call graph for the selected packages and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All {
			_, _ = fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	if *models != "" {
		return runModels(append([]string{*models}, fs.Args()...), dir, *asJSON, stdout, stderr)
	}

	analyzers := analysis.All
	if *checks != "" {
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a := analysis.Lookup(name)
			if a == nil {
				_, _ = fmt.Fprintf(stderr, "strudel-lint: unknown check %q; valid checks: %s\n", name, strings.Join(analysis.Names(), ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, modPath, err := analysis.FindModule(dir)
	if err != nil {
		return fatal(stderr, err)
	}
	loader := analysis.NewLoader(root, modPath)
	paths, err := loader.Expand(resolvePatterns(fs.Args(), dir))
	if err != nil {
		return fatal(stderr, err)
	}

	if *graph {
		return dumpGraph(loader, paths, stdout, stderr)
	}

	diags, err := analysis.Run(loader, paths, analyzers)
	if err != nil {
		return fatal(stderr, err)
	}

	// Module-relative, slash-separated paths in every output mode: the
	// JSON feed must compare bytewise across machines and checkouts.
	for i := range diags {
		diags[i].File = moduleRel(root, diags[i].File)
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			return fatal(stderr, err)
		}
	} else {
		for _, d := range diags {
			_, _ = fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*asJSON {
			_, _ = fmt.Fprintf(stderr, "strudel-lint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// dumpGraph loads the selected packages and prints the module-wide call
// graph in deterministic order: one line per function, indented lines per
// edge, with once/callback edge kinds and hairy-node reasons annotated.
// The dump is the debugging companion to the reachability-based checks —
// when a finding's witness looks wrong, this is the ground truth it was
// derived from.
func dumpGraph(loader *analysis.Loader, paths []string, stdout, stderr io.Writer) int {
	for _, path := range paths {
		if _, err := loader.Load(path); err != nil {
			return fatal(stderr, err)
		}
	}
	loader.CallGraph().Nodes(func(n *analysis.CallNode) {
		_, _ = fmt.Fprintln(stdout, n.Func.FullName())
		if n.Hairy {
			_, _ = fmt.Fprintf(stdout, "  ~ incomplete: %s\n", n.HairyReason)
		}
		for _, e := range n.Callees {
			kind := ""
			switch {
			case e.Once && e.Callback:
				kind = " (once, callback)"
			case e.Once:
				kind = " (once)"
			case e.Callback:
				kind = " (callback)"
			}
			_, _ = fmt.Fprintf(stdout, "  -> %s%s\n", e.Callee.Func.FullName(), kind)
		}
	})
	return 0
}

// runModels verifies model artifacts matching the glob patterns. A shell
// that expands the -models glob itself leaves only the first match bound to
// the flag, so the positional remainder is folded in as extra patterns.
func runModels(patterns []string, dir string, asJSON bool, stdout, stderr io.Writer) int {
	for i, p := range patterns {
		if !filepath.IsAbs(p) {
			patterns[i] = filepath.Join(dir, p)
		}
	}
	findings, err := modelcheck.VerifyGlobs(patterns)
	if err != nil {
		return fatal(stderr, err)
	}
	for i := range findings {
		findings[i].File = moduleRel(dir, findings[i].File)
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return fatal(stderr, err)
		}
	} else {
		for _, f := range findings {
			_, _ = fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !asJSON {
			_, _ = fmt.Fprintf(stderr, "strudel-lint: %d invalid artifact finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// resolvePatterns anchors relative package patterns at dir, so run() is
// independent of the process working directory.
func resolvePatterns(patterns []string, dir string) []string {
	out := make([]string, len(patterns))
	for i, pat := range patterns {
		rest, recursive := strings.CutSuffix(pat, "/...")
		if rest == "" || rest == "." {
			rest = dir
		}
		switch {
		case filepath.IsAbs(rest):
			// Already anchored.
		case rest == "." || strings.HasPrefix(rest, "./") || strings.HasPrefix(rest, "../"):
			rest = filepath.Join(dir, rest)
		default:
			// A bare module import path: leave it for the loader.
			out[i] = pat
			continue
		}
		if recursive {
			rest += "/..."
		}
		out[i] = rest
	}
	return out
}

// moduleRel shortens an absolute path under root to a root-relative,
// slash-separated one; paths outside root pass through unchanged.
func moduleRel(root, path string) string {
	if r, ok := strings.CutPrefix(path, root+string(os.PathSeparator)); ok {
		return filepath.ToSlash(r)
	}
	return path
}

func fatal(stderr io.Writer, err error) int {
	_, _ = fmt.Fprintln(stderr, "strudel-lint:", err)
	return 2
}

// Package demo is the golden-output fixture for strudel-lint's JSON mode:
// a library package with one stable finding per representative check, kept
// deliberately tiny so cmd/strudel-lint/testdata/golden.json stays
// readable.
package demo

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"
)

// Stamp reads the wall clock in library code (nondeterminism) and
// panics on bad input (panicpath).
func Stamp(path string) string {
	if path == "" {
		panic("empty path")
	}
	return time.Now().String()
}

// Touch discards the error from os.Remove (errcheck).
func Touch(path string) {
	os.Remove(path)
}

var hits int

// Record writes package state from an exported function (sharedwrite) and
// leaks a mutex on the early return (lockcheck).
func Record(mu *sync.Mutex, skip bool) {
	mu.Lock()
	if skip {
		return
	}
	hits++
	mu.Unlock()
}

// Fanout captures the loop variable in a goroutine (goroutinecapture) and
// spawns one goroutine per element with no bound (goroleak).
func Fanout(xs []int) {
	for _, x := range xs {
		go func() {
			fmt.Println(x)
		}()
	}
}

// Annotate mints a fresh context although it already receives one (ctxflow)
// and matches a sentinel with == (errflow).
func Annotate(ctx context.Context, err error) error {
	_ = context.Background()
	if err == os.ErrNotExist {
		return nil
	}
	_ = ctx
	return nil
}

// Size forgets to close the file on the success path (rescleak).
func Size(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Wait drops the cancel function on the slow path (lostcancel).
func Wait(ctx context.Context, slow bool) {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	if slow {
		return
	}
	cancel()
	_ = ctx
}

// Package ingest gives the golden fixture a hotalloc hot root:
// Scanner.Scan matches the analyzer's root table by package, receiver, and
// method name.
package ingest

import "fmt"

type Scanner struct{ n int }

// Scan allocates a formatted string per call (hotalloc).
func (s *Scanner) Scan() string {
	s.n++
	return fmt.Sprintf("row %d", s.n)
}

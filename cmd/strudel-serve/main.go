// Command strudel-serve runs the annotation service: an HTTP daemon that
// classifies uploaded (or path-referenced) CSV files with a trained model,
// built to stay up under overload, hostile inputs, and partial failure.
//
// Usage:
//
//	strudel-serve -addr localhost:8080 -model strudel.model [flags]
//
// Endpoints:
//
//	POST /v1/annotate             annotate the request body
//	  ?timeout=5s                 per-request deadline (clamped to -max-timeout)
//	  ?cells=1                    include per-cell classes
//	  ?format=ndjson              stream line annotations as NDJSON
//	  ?dialect=';'                force a delimiter instead of detecting
//	  ?path=rel/file.csv          annotate a file under -root instead of the body
//	GET  /healthz                 liveness probe
//	GET  /readyz                  readiness: not draining, queue below high water
//	GET  /debug/obs               observability snapshot (also /debug/vars, /debug/pprof)
//
// Every failure maps to a deterministic status via the typed ingest
// taxonomy: 413 too_large, 422 bad_encoding/line_too_long/too_many_lines/
// too_many_cells, 400 empty_input, 429 queue_full (with Retry-After),
// 503 draining, 504 timeout, 500 panic (isolated to the request).
//
// SIGINT/SIGTERM drain gracefully: accepting stops, in-flight requests
// finish or hit their deadlines, and the process exits 0 on a clean drain.
//
// Flags:
//
//	-addr a           listen address (default localhost:8080; port 0 picks one)
//	-model path       load a model saved by strudel-train (default: train built-in)
//	-workers n        concurrent annotations (0 = all CPUs)
//	-queue n          admission queue depth before shedding 429s (0 = 4x workers)
//	-timeout d        default per-request deadline (default 10s)
//	-max-timeout d    ceiling for client-requested deadlines (default 60s)
//	-drain-timeout d  shutdown drain budget (default 15s)
//	-max-bytes n      reject uploads larger than n bytes (0 = 64MiB default)
//	-strict           reject damaged files instead of repairing them
//	-root dir         enable ?path= refs for files under dir
//	-cache n          coalescing LRU entries (0 = 128, negative disables)
//	-stats            print an observability snapshot (JSON) to stderr at exit
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strudel"
	"strudel/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "localhost:8080", "listen address")
		modelPath    = flag.String("model", "", "path to a trained model (default: train a small built-in model)")
		workers      = flag.Int("workers", 0, "concurrent annotations (0 = all CPUs)")
		queue        = flag.Int("queue", 0, "admission queue depth before shedding (0 = 4x workers)")
		timeout      = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 60*time.Second, "ceiling for client-requested deadlines")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "shutdown drain budget")
		maxBytes     = flag.Int64("max-bytes", 0, "reject uploads larger than this many bytes (0 = 64MiB default)")
		strict       = flag.Bool("strict", false, "reject damaged files instead of repairing them")
		root         = flag.String("root", "", "enable ?path= refs for files under this directory")
		cache        = flag.Int("cache", 0, "coalescing LRU entries (0 = 128, negative disables)")
		stats        = flag.Bool("stats", false, "print an observability snapshot (JSON) to stderr at exit")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: strudel-serve [flags] (no positional arguments)")
		flag.PrintDefaults()
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	model, err := loadOrTrainModel(ctx, *modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel-serve:", err)
		return 1
	}

	registry := strudel.NewObsRegistry()
	if *stats {
		defer func() {
			if err := registry.Snapshot().WriteJSON(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "strudel-serve: stats:", err)
			}
		}()
	}

	srv, err := serve.New(serve.Config{
		Model:          model,
		Load:           strudel.LoadOptions{Ingest: strudel.IngestOptions{MaxBytes: *maxBytes, Strict: *strict}},
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DrainTimeout:   *drainTimeout,
		CacheEntries:   *cache,
		PathRoot:       *root,
		Registry:       registry,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel-serve:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel-serve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "strudel-serve: listening on http://%s/ (POST /v1/annotate)\n", ln.Addr())

	if err := srv.Serve(ctx, ln); err != nil {
		fmt.Fprintln(os.Stderr, "strudel-serve:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "strudel-serve: drained cleanly")
	return 0
}

// loadOrTrainModel loads a saved model, or trains the small built-in one
// (interruptible: Ctrl-C during the startup training exits promptly).
func loadOrTrainModel(ctx context.Context, path string) (*strudel.Model, error) {
	if path != "" {
		return strudel.LoadModelFile(path)
	}
	fmt.Fprintln(os.Stderr, "strudel-serve: no -model; training a small built-in model...")
	var files []*strudel.Table
	for _, name := range []string{"govuk", "saus"} {
		fs, err := strudel.GenerateCorpus(name, 0.5)
		if err != nil {
			return nil, err
		}
		files = append(files, fs...)
	}
	return strudel.TrainContext(ctx, files, strudel.TrainOptions{Trees: 20, Seed: 1, MaxCellsPerFile: 300})
}

// Command strudel-eval scores a trained model against an annotated corpus
// directory (as written by strudel-datagen), reporting per-class F1,
// accuracy, and macro average for both the line and the cell task.
//
// Usage:
//
//	strudel-eval -model strudel.model -dir corpus/troy
//
// With -stats the batch's observability snapshot (per-stage timings, pool
// utilization, file outcomes) is printed to stderr after the scores; with
// -debug-addr the /debug/obs, /debug/vars, and /debug/pprof endpoints are
// served for the duration of the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"strudel"
	"strudel/internal/corpusio"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		modelPath = flag.String("model", "strudel.model", "trained model path")
		dir       = flag.String("dir", "", "annotated corpus directory")
		cells     = flag.Bool("cells", true, "also score the cell task")
		workers   = flag.Int("workers", 0, "files annotated concurrently (0 = all CPUs)")
		timeout   = flag.Duration("timeout", 0, "per-file annotation deadline, e.g. 30s (0 = none)")
		statsFlag = flag.Bool("stats", false, "print an observability snapshot (JSON) to stderr at exit")
		debugAddr = flag.String("debug-addr", "", "serve /debug/obs, /debug/vars, /debug/pprof on this address")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: strudel-eval -model m -dir corpus/name")
		return 2
	}

	var hooks *strudel.ObsHooks
	if *statsFlag || *debugAddr != "" {
		registry := strudel.NewObsRegistry()
		hooks = strudel.NewObsHooks(registry)
		if *debugAddr != "" {
			srv, err := strudel.ServeObsDebug(*debugAddr, registry)
			if err != nil {
				return fatal(err)
			}
			defer func() { _ = srv.Close() }()
			fmt.Fprintf(os.Stderr, "strudel-eval: debug endpoints on http://%s/debug/\n", srv.Addr())
		}
		if *statsFlag {
			defer func() {
				if err := registry.Snapshot().WriteJSON(os.Stderr); err != nil {
					fmt.Fprintln(os.Stderr, "strudel-eval: stats:", err)
				}
			}()
		}
	}

	model, err := strudel.LoadModelFile(*modelPath)
	if err != nil {
		return fatal(err)
	}
	files, err := corpusio.ReadCorpus(*dir)
	if err != nil {
		return fatal(err)
	}
	if len(files) == 0 {
		return fatal(fmt.Errorf("no .csv files in %s", *dir))
	}

	for _, f := range files {
		if !f.Annotated() {
			return fatal(fmt.Errorf("%s has no annotations", f.Name))
		}
	}

	// Annotate the whole corpus through the batch pipeline (line and cell
	// predictions share one artifact per file), then score sequentially.
	// Per-file failures (timeouts, recovered panics) are excluded from the
	// score with a warning instead of crashing the evaluation.
	anns := model.AnnotateAllContext(context.Background(), files, strudel.BatchOptions{
		Parallelism: *workers,
		FileTimeout: *timeout,
		Obs:         hooks,
	})

	skipped := 0
	var lineStats, cellStats stats
	for i, f := range files {
		ann := anns[i]
		if ann.Err != nil {
			fmt.Fprintf(os.Stderr, "strudel-eval: warning: %v (excluded from scores)\n", ann.Err)
			skipped++
			continue
		}
		for r := 0; r < f.Height(); r++ {
			lineStats.add(ann.Lines[r], f.LineClasses[r])
		}
		if *cells {
			for r := 0; r < f.Height(); r++ {
				for c := 0; c < f.Width(); c++ {
					if !f.IsEmptyCell(r, c) {
						cellStats.add(ann.Cells[r][c], f.CellClasses[r][c])
					}
				}
			}
		}
	}

	fmt.Printf("evaluated %d files from %s", len(files)-skipped, *dir)
	if skipped > 0 {
		fmt.Printf(" (%d skipped)", skipped)
	}
	fmt.Print("\n\n")
	fmt.Println("line task:")
	lineStats.print()
	if *cells {
		fmt.Println("\ncell task:")
		cellStats.print()
	}
	return 0
}

// stats accumulates per-class true positives and errors.
type stats struct {
	tp, fp, fn [strudel.NumClasses]int
	correct    int
	total      int
}

func (s *stats) add(pred, gold strudel.Class) {
	g := gold.Index()
	if g < 0 {
		return
	}
	s.total++
	if pred == gold {
		s.correct++
		s.tp[g]++
		return
	}
	s.fn[g]++
	if p := pred.Index(); p >= 0 {
		s.fp[p]++
	}
}

func (s *stats) print() {
	fmt.Printf("  %-10s %10s %10s %10s %10s\n", "class", "precision", "recall", "F1", "support")
	macro, n := 0.0, 0
	for i, cls := range strudel.Classes {
		tp, fp, fn := float64(s.tp[i]), float64(s.fp[i]), float64(s.fn[i])
		var p, r, f1 float64
		if tp+fp > 0 {
			p = tp / (tp + fp)
		}
		if tp+fn > 0 {
			r = tp / (tp + fn)
		}
		if p+r > 0 {
			f1 = 2 * p * r / (p + r)
		}
		support := s.tp[i] + s.fn[i]
		if support > 0 {
			macro += f1
			n++
		}
		fmt.Printf("  %-10s %10.3f %10.3f %10.3f %10d\n", cls, p, r, f1, support)
	}
	acc := 0.0
	if s.total > 0 {
		acc = float64(s.correct) / float64(s.total)
	}
	if n > 0 {
		macro /= float64(n)
	}
	fmt.Printf("  %-10s %32.3f\n", "accuracy", acc)
	fmt.Printf("  %-10s %32.3f\n", "macro-F1", macro)
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "strudel-eval:", err)
	return 1
}

// Command strudel classifies the lines and cells of verbose CSV files.
//
// Usage:
//
//	strudel -model strudel.model [flags] file.csv|dir...
//
// Inputs may be files, directories (every *.csv inside is classified), or
// "-" for standard input. Files are annotated concurrently via the batch
// pipeline (strudel.Model.AnnotateAll); output order always follows input
// order. Without -model, a small model is trained on the synthetic
// GovUK+SAUS corpora at startup (slower, but zero-setup).
//
// Every input passes through the hardened ingestion layer: encodings are
// sniffed and repaired, NULs stripped, line endings normalized, and
// resource guards applied. A file that cannot be ingested is reported to
// stderr and skipped — it never aborts the rest of the batch — and the
// exit status becomes 1. Repaired files are annotated anyway, with the
// repairs listed as "degraded" notes.
//
// Flags:
//
//	-model path    load a model saved by strudel-train
//	-cells         also print per-cell classes
//	-extract       print the extracted relational table (header + data)
//	-json          machine-readable output
//	-dialect d     force a delimiter instead of detecting (e.g. ';' or 'tab')
//	-workers n     files annotated concurrently (0 = all CPUs)
//	-max-bytes n   reject files larger than n bytes (0 = 64MiB default)
//	-timeout d     per-file annotation deadline, e.g. 30s (0 = none)
//	-strict        reject damaged files instead of repairing them
//	-stats         print an observability snapshot (JSON) to stderr at exit
//	-debug-addr a  serve /debug/obs, /debug/vars, /debug/pprof on a (e.g. localhost:6060)
//	-stream        annotate through the bounded-memory streaming pipeline
//	-stream-threshold s  files at or above this size stream automatically (default 32M, 0 = never)
//
// Streaming (-stream, or any file at or above -stream-threshold) annotates
// through Model.AnnotateStream: bounded memory regardless of file size, with
// results printed line by line as windows complete. With -json, streamed
// files emit NDJSON — one object per annotated line, then a closing summary
// object — rather than a single document. -extract needs the whole table in
// memory and is incompatible with -stream.
//
// Interrupting a run (Ctrl-C) cancels the batch cooperatively: in-flight
// files finish, undispatched files come back with their Err set, and the
// exit status is 1.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"

	"strudel"
	"strudel/internal/datagen"
)

func main() {
	// All work happens in run so deferred cleanup — the stats snapshot and
	// the debug-server shutdown — survives the explicit exit codes.
	os.Exit(run())
}

func run() int {
	var (
		modelPath = flag.String("model", "", "path to a trained model (default: train a small built-in model)")
		showCells = flag.Bool("cells", false, "print per-cell classes")
		extract   = flag.Bool("extract", false, "print the extracted relational table")
		asJSON    = flag.Bool("json", false, "emit JSON")
		delimFlag = flag.String("dialect", "", "force delimiter: ',', ';', '|', 'tab', ...")
		workers   = flag.Int("workers", 0, "files annotated concurrently (0 = all CPUs)")
		maxBytes  = flag.Int64("max-bytes", 0, "reject files larger than this many bytes (0 = 64MiB default)")
		timeout   = flag.Duration("timeout", 0, "per-file annotation deadline, e.g. 30s (0 = none)")
		strict    = flag.Bool("strict", false, "reject damaged files instead of repairing them")
		stats     = flag.Bool("stats", false, "print an observability snapshot (JSON) to stderr at exit")
		debugAddr = flag.String("debug-addr", "", "serve /debug/obs, /debug/vars, /debug/pprof on this address")
		stream    = flag.Bool("stream", false, "annotate through the bounded-memory streaming pipeline")
		streamThr = flag.String("stream-threshold", "32M", "files at or above this size stream automatically (0 = never)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: strudel [flags] file.csv|dir...")
		flag.PrintDefaults()
		return 2
	}
	if *stream && *extract {
		fmt.Fprintln(os.Stderr, "strudel: -extract needs the whole table in memory; drop -stream")
		return 2
	}
	threshold, err := datagen.ParseSize(*streamThr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "strudel: bad -stream-threshold %q\n", *streamThr)
		return 2
	}
	if *extract {
		threshold = 0 // -extract forces the in-memory path for every file
	}

	// Observability is opt-in: without -stats or -debug-addr the hooks stay
	// nil and the pipeline runs unobserved.
	var hooks *strudel.ObsHooks
	if *stats || *debugAddr != "" {
		registry := strudel.NewObsRegistry()
		hooks = strudel.NewObsHooks(registry)
		if *debugAddr != "" {
			srv, err := strudel.ServeObsDebug(*debugAddr, registry)
			if err != nil {
				fmt.Fprintln(os.Stderr, "strudel:", err)
				return 1
			}
			defer func() { _ = srv.Close() }()
			fmt.Fprintf(os.Stderr, "strudel: debug endpoints on http://%s/debug/\n", srv.Addr())
		}
		if *stats {
			defer func() {
				if err := registry.Snapshot().WriteJSON(os.Stderr); err != nil {
					fmt.Fprintln(os.Stderr, "strudel: stats:", err)
				}
			}()
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	model, err := loadOrTrainModel(*modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel:", err)
		return 1
	}

	paths, err := expandInputs(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel:", err)
		return 1
	}

	opts := strudel.LoadOptions{
		Ingest: strudel.IngestOptions{MaxBytes: *maxBytes, Strict: *strict},
		Obs:    hooks,
	}
	if *delimFlag != "" {
		d := strudel.DefaultDialect
		d.Delimiter = parseDelim(*delimFlag)
		opts.ForceDialect = &d
	}

	// Per-file ingestion failures are reported and skipped; one hostile file
	// must not abort the batch. Files at or above the streaming threshold
	// (or every file under -stream) bypass in-memory loading entirely and
	// are annotated incrementally at print time, so output order still
	// follows input order.
	failed := false
	var tables []*strudel.Table
	var dialects []strudel.Dialect
	batchIdx := make(map[string]int, len(paths)) // path -> index into tables
	streamed := make(map[string]bool, len(paths))
	for _, path := range paths {
		if *stream || autoStream(path, threshold) {
			streamed[path] = true
			continue
		}
		tbl, d, err := loadInput(path, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "strudel: %s: skipped: %v\n", path, err)
			failed = true
			continue
		}
		batchIdx[path] = len(tables)
		tables = append(tables, tbl)
		dialects = append(dialects, d)
	}

	anns := model.AnnotateAllContext(ctx, tables, strudel.BatchOptions{
		Parallelism: *workers,
		FileTimeout: *timeout,
		Obs:         hooks,
	})
	streamOpts := strudel.StreamOptions{Load: opts}
	for _, path := range paths {
		if streamed[path] {
			if err := streamPrint(ctx, model, path, streamOpts, *showCells, *asJSON); err != nil {
				fmt.Fprintf(os.Stderr, "strudel: %s: %v\n", path, err)
				failed = true
			}
			continue
		}
		i, ok := batchIdx[path]
		if !ok {
			continue // skipped during loading
		}
		if anns[i].Err != nil {
			fmt.Fprintf(os.Stderr, "strudel: %v\n", anns[i].Err)
			failed = true
			continue
		}
		if err := printFile(path, dialects[i], tables[i], anns[i], *showCells, *extract, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "strudel:", err)
			return 1
		}
	}
	if failed {
		return 1
	}
	return 0
}

// autoStream reports whether path should take the streaming pipeline
// because its size meets the threshold. Stdin never auto-streams (its size
// is unknown); pass -stream to stream it.
func autoStream(path string, threshold int64) bool {
	if threshold <= 0 || path == "-" {
		return false
	}
	info, err := os.Stat(path)
	return err == nil && info.Size() >= threshold
}

// streamPrint annotates one input through the streaming pipeline, printing
// each line as its window completes. With asJSON the output is NDJSON: one
// object per line, then a summary object.
func streamPrint(ctx context.Context, m *strudel.Model, path string, opts strudel.StreamOptions, showCells, asJSON bool) error {
	enc := json.NewEncoder(os.Stdout)
	if !asJSON {
		fmt.Printf("# %s (streaming)\n", path)
	}
	emit := func(la strudel.LineAnnotation) error {
		if asJSON {
			rec := struct {
				File   string   `json:"file"`
				Row    int      `json:"row"`
				Class  string   `json:"class"`
				Cells  []string `json:"cells,omitempty"`
				Fields []string `json:"fields"`
			}{File: path, Row: la.Row, Class: la.Class.String(), Fields: la.Fields}
			if showCells {
				for _, c := range la.Cells {
					rec.Cells = append(rec.Cells, c.String())
				}
			}
			return enc.Encode(rec)
		}
		line := strings.Join(la.Fields, "|")
		if len(line) > 70 {
			line = line[:67] + "..."
		}
		fmt.Printf("%4d  %-9s %s\n", la.Row+1, la.Class, line)
		if showCells && len(la.Cells) > 0 {
			var cells []string
			for _, c := range la.Cells {
				cells = append(cells, c.String())
			}
			fmt.Printf("      cells:   %s\n", strings.Join(cells, ","))
		}
		return nil
	}
	var sum *strudel.StreamSummary
	var err error
	if path == "-" {
		sum, err = m.AnnotateStream(ctx, os.Stdin, opts, emit)
	} else {
		sum, err = m.AnnotateFileStream(ctx, path, opts, emit)
	}
	if err != nil {
		return err
	}
	if asJSON {
		rec := struct {
			File     string              `json:"file"`
			Summary  bool                `json:"summary"`
			Lines    int                 `json:"lines"`
			Windows  int                 `json:"windows"`
			Dialect  string              `json:"dialect"`
			Degraded []string            `json:"degraded,omitempty"`
			Prov     *strudel.Provenance `json:"provenance,omitempty"`
		}{File: path, Summary: true, Lines: sum.Lines, Windows: sum.Windows,
			Dialect: sum.Dialect.String(), Degraded: sum.Degraded, Prov: sum.Provenance}
		return enc.Encode(rec)
	}
	if len(sum.Degraded) > 0 {
		fmt.Printf("# degraded: %s\n", strings.Join(sum.Degraded, ", "))
	}
	return nil
}

func loadOrTrainModel(path string) (*strudel.Model, error) {
	if path != "" {
		m, err := strudel.LoadModelFile(path)
		if errors.Is(err, strudel.ErrInvalidModel) {
			return nil, fmt.Errorf("%w\n(the file is structurally invalid, not just missing — inspect it with strudel-lint -models %s, or retrain)", err, path)
		}
		return m, err
	}
	fmt.Fprintln(os.Stderr, "strudel: no -model given; training a small built-in model...")
	var files []*strudel.Table
	for _, name := range []string{"govuk", "saus"} {
		fs, err := strudel.GenerateCorpus(name, 0.5)
		if err != nil {
			return nil, err
		}
		files = append(files, fs...)
	}
	return strudel.Train(files, strudel.TrainOptions{Trees: 40, Seed: 1, MaxCellsPerFile: 500})
}

// expandInputs resolves the argument list: directories expand to their
// *.csv files (sorted), everything else passes through untouched.
func expandInputs(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if arg != "-" && err == nil && info.IsDir() {
			matches, err := filepath.Glob(filepath.Join(arg, "*.csv"))
			if err != nil {
				return nil, err
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("no .csv files in directory %s", arg)
			}
			sort.Strings(matches)
			out = append(out, matches...)
			continue
		}
		out = append(out, arg)
	}
	return out, nil
}

// loadInput parses one input path ("-" = stdin) through the hardened
// ingestion layer.
func loadInput(path string, opts strudel.LoadOptions) (*strudel.Table, strudel.Dialect, error) {
	if path == "-" {
		tbl, d, err := strudel.LoadReader(os.Stdin, opts)
		if err != nil {
			return nil, strudel.Dialect{}, err
		}
		tbl.Name = "stdin"
		return tbl, d, nil
	}
	return strudel.LoadFile(path, opts)
}

func printFile(path string, d strudel.Dialect, tbl *strudel.Table, ann *strudel.Annotation, showCells, extract, asJSON bool) error {
	if asJSON {
		return printJSON(path, d, ann, showCells)
	}
	fmt.Printf("# %s (%s, %dx%d)\n", path, d, tbl.Height(), tbl.Width())
	if len(ann.Degraded) > 0 {
		fmt.Printf("# degraded: %s\n", strings.Join(ann.Degraded, ", "))
	}
	for r := 0; r < tbl.Height(); r++ {
		line := strings.Join(tbl.Row(r), "|")
		if len(line) > 70 {
			line = line[:67] + "..."
		}
		fmt.Printf("%4d  %-9s %s\n", r+1, ann.Lines[r], line)
		if showCells && !tbl.IsEmptyLine(r) {
			var cells []string
			for c := 0; c < tbl.Width(); c++ {
				cells = append(cells, ann.Cells[r][c].String())
			}
			fmt.Printf("      cells:   %s\n", strings.Join(cells, ","))
		}
	}
	if extract {
		header, rows := strudel.ExtractData(tbl, ann)
		fmt.Println("\n# extracted relational table")
		fmt.Println(strings.Join(header, ","))
		for _, row := range rows {
			fmt.Println(strings.Join(row, ","))
		}
	}
	return nil
}

func printJSON(path string, d strudel.Dialect, ann *strudel.Annotation, showCells bool) error {
	out := struct {
		File       string              `json:"file"`
		Dialect    string              `json:"dialect"`
		Degraded   []string            `json:"degraded,omitempty"`
		Provenance *strudel.Provenance `json:"provenance,omitempty"`
		Lines      []string            `json:"lines"`
		Cells      [][]string          `json:"cells,omitempty"`
	}{File: path, Dialect: d.String(), Degraded: ann.Degraded, Provenance: ann.Provenance}
	for _, c := range ann.Lines {
		out.Lines = append(out.Lines, c.String())
	}
	if showCells {
		for _, row := range ann.Cells {
			var names []string
			for _, c := range row {
				names = append(names, c.String())
			}
			out.Cells = append(out.Cells, names)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func parseDelim(s string) rune {
	switch strings.ToLower(s) {
	case "tab", "\\t":
		return '\t'
	case "space":
		return ' '
	default:
		return []rune(s)[0]
	}
}

// Command strudel classifies the lines and cells of verbose CSV files.
//
// Usage:
//
//	strudel -model strudel.model [flags] file.csv|dir...
//
// Inputs may be files, directories (every *.csv inside is classified), or
// "-" for standard input. Files are annotated concurrently via the batch
// pipeline (strudel.Model.AnnotateAll); output order always follows input
// order. Without -model, a small model is trained on the synthetic
// GovUK+SAUS corpora at startup (slower, but zero-setup).
//
// Every input passes through the hardened ingestion layer: encodings are
// sniffed and repaired, NULs stripped, line endings normalized, and
// resource guards applied. A file that cannot be ingested is reported to
// stderr and skipped — it never aborts the rest of the batch — and the
// exit status becomes 1. Repaired files are annotated anyway, with the
// repairs listed as "degraded" notes.
//
// Flags:
//
//	-model path    load a model saved by strudel-train
//	-cells         also print per-cell classes
//	-extract       print the extracted relational table (header + data)
//	-json          machine-readable output
//	-dialect d     force a delimiter instead of detecting (e.g. ';' or 'tab')
//	-workers n     files annotated concurrently (0 = all CPUs)
//	-max-bytes n   reject files larger than n bytes (0 = 64MiB default)
//	-timeout d     per-file annotation deadline, e.g. 30s (0 = none)
//	-strict        reject damaged files instead of repairing them
//	-stats         print an observability snapshot (JSON) to stderr at exit
//	-debug-addr a  serve /debug/obs, /debug/vars, /debug/pprof on a (e.g. localhost:6060)
//
// Interrupting a run (Ctrl-C) cancels the batch cooperatively: in-flight
// files finish, undispatched files come back with their Err set, and the
// exit status is 1.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"

	"strudel"
)

func main() {
	// All work happens in run so deferred cleanup — the stats snapshot and
	// the debug-server shutdown — survives the explicit exit codes.
	os.Exit(run())
}

func run() int {
	var (
		modelPath = flag.String("model", "", "path to a trained model (default: train a small built-in model)")
		showCells = flag.Bool("cells", false, "print per-cell classes")
		extract   = flag.Bool("extract", false, "print the extracted relational table")
		asJSON    = flag.Bool("json", false, "emit JSON")
		delimFlag = flag.String("dialect", "", "force delimiter: ',', ';', '|', 'tab', ...")
		workers   = flag.Int("workers", 0, "files annotated concurrently (0 = all CPUs)")
		maxBytes  = flag.Int64("max-bytes", 0, "reject files larger than this many bytes (0 = 64MiB default)")
		timeout   = flag.Duration("timeout", 0, "per-file annotation deadline, e.g. 30s (0 = none)")
		strict    = flag.Bool("strict", false, "reject damaged files instead of repairing them")
		stats     = flag.Bool("stats", false, "print an observability snapshot (JSON) to stderr at exit")
		debugAddr = flag.String("debug-addr", "", "serve /debug/obs, /debug/vars, /debug/pprof on this address")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: strudel [flags] file.csv|dir...")
		flag.PrintDefaults()
		return 2
	}

	// Observability is opt-in: without -stats or -debug-addr the hooks stay
	// nil and the pipeline runs unobserved.
	var hooks *strudel.ObsHooks
	if *stats || *debugAddr != "" {
		registry := strudel.NewObsRegistry()
		hooks = strudel.NewObsHooks(registry)
		if *debugAddr != "" {
			srv, err := strudel.ServeObsDebug(*debugAddr, registry)
			if err != nil {
				fmt.Fprintln(os.Stderr, "strudel:", err)
				return 1
			}
			defer func() { _ = srv.Close() }()
			fmt.Fprintf(os.Stderr, "strudel: debug endpoints on http://%s/debug/\n", srv.Addr())
		}
		if *stats {
			defer func() {
				if err := registry.Snapshot().WriteJSON(os.Stderr); err != nil {
					fmt.Fprintln(os.Stderr, "strudel: stats:", err)
				}
			}()
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	model, err := loadOrTrainModel(*modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel:", err)
		return 1
	}

	paths, err := expandInputs(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel:", err)
		return 1
	}

	opts := strudel.LoadOptions{
		Ingest: strudel.IngestOptions{MaxBytes: *maxBytes, Strict: *strict},
		Obs:    hooks,
	}
	if *delimFlag != "" {
		d := strudel.DefaultDialect
		d.Delimiter = parseDelim(*delimFlag)
		opts.ForceDialect = &d
	}

	// Per-file ingestion failures are reported and skipped; one hostile file
	// must not abort the batch.
	failed := false
	var tables []*strudel.Table
	var dialects []strudel.Dialect
	var kept []string
	for _, path := range paths {
		tbl, d, err := loadInput(path, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "strudel: %s: skipped: %v\n", path, err)
			failed = true
			continue
		}
		tables = append(tables, tbl)
		dialects = append(dialects, d)
		kept = append(kept, path)
	}

	anns := model.AnnotateAllContext(ctx, tables, strudel.BatchOptions{
		Parallelism: *workers,
		FileTimeout: *timeout,
		Obs:         hooks,
	})
	for i := range kept {
		if anns[i].Err != nil {
			fmt.Fprintf(os.Stderr, "strudel: %v\n", anns[i].Err)
			failed = true
			continue
		}
		if err := printFile(kept[i], dialects[i], tables[i], anns[i], *showCells, *extract, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "strudel:", err)
			return 1
		}
	}
	if failed {
		return 1
	}
	return 0
}

func loadOrTrainModel(path string) (*strudel.Model, error) {
	if path != "" {
		m, err := strudel.LoadModelFile(path)
		if errors.Is(err, strudel.ErrInvalidModel) {
			return nil, fmt.Errorf("%w\n(the file is structurally invalid, not just missing — inspect it with strudel-lint -models %s, or retrain)", err, path)
		}
		return m, err
	}
	fmt.Fprintln(os.Stderr, "strudel: no -model given; training a small built-in model...")
	var files []*strudel.Table
	for _, name := range []string{"govuk", "saus"} {
		fs, err := strudel.GenerateCorpus(name, 0.5)
		if err != nil {
			return nil, err
		}
		files = append(files, fs...)
	}
	return strudel.Train(files, strudel.TrainOptions{Trees: 40, Seed: 1, MaxCellsPerFile: 500})
}

// expandInputs resolves the argument list: directories expand to their
// *.csv files (sorted), everything else passes through untouched.
func expandInputs(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if arg != "-" && err == nil && info.IsDir() {
			matches, err := filepath.Glob(filepath.Join(arg, "*.csv"))
			if err != nil {
				return nil, err
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("no .csv files in directory %s", arg)
			}
			sort.Strings(matches)
			out = append(out, matches...)
			continue
		}
		out = append(out, arg)
	}
	return out, nil
}

// loadInput parses one input path ("-" = stdin) through the hardened
// ingestion layer.
func loadInput(path string, opts strudel.LoadOptions) (*strudel.Table, strudel.Dialect, error) {
	if path == "-" {
		tbl, d, err := strudel.LoadReader(os.Stdin, opts)
		if err != nil {
			return nil, strudel.Dialect{}, err
		}
		tbl.Name = "stdin"
		return tbl, d, nil
	}
	return strudel.LoadFile(path, opts)
}

func printFile(path string, d strudel.Dialect, tbl *strudel.Table, ann *strudel.Annotation, showCells, extract, asJSON bool) error {
	if asJSON {
		return printJSON(path, d, ann, showCells)
	}
	fmt.Printf("# %s (%s, %dx%d)\n", path, d, tbl.Height(), tbl.Width())
	if len(ann.Degraded) > 0 {
		fmt.Printf("# degraded: %s\n", strings.Join(ann.Degraded, ", "))
	}
	for r := 0; r < tbl.Height(); r++ {
		line := strings.Join(tbl.Row(r), "|")
		if len(line) > 70 {
			line = line[:67] + "..."
		}
		fmt.Printf("%4d  %-9s %s\n", r+1, ann.Lines[r], line)
		if showCells && !tbl.IsEmptyLine(r) {
			var cells []string
			for c := 0; c < tbl.Width(); c++ {
				cells = append(cells, ann.Cells[r][c].String())
			}
			fmt.Printf("      cells:   %s\n", strings.Join(cells, ","))
		}
	}
	if extract {
		header, rows := strudel.ExtractData(tbl, ann)
		fmt.Println("\n# extracted relational table")
		fmt.Println(strings.Join(header, ","))
		for _, row := range rows {
			fmt.Println(strings.Join(row, ","))
		}
	}
	return nil
}

func printJSON(path string, d strudel.Dialect, ann *strudel.Annotation, showCells bool) error {
	out := struct {
		File       string              `json:"file"`
		Dialect    string              `json:"dialect"`
		Degraded   []string            `json:"degraded,omitempty"`
		Provenance *strudel.Provenance `json:"provenance,omitempty"`
		Lines      []string            `json:"lines"`
		Cells      [][]string          `json:"cells,omitempty"`
	}{File: path, Dialect: d.String(), Degraded: ann.Degraded, Provenance: ann.Provenance}
	for _, c := range ann.Lines {
		out.Lines = append(out.Lines, c.String())
	}
	if showCells {
		for _, row := range ann.Cells {
			var names []string
			for _, c := range row {
				names = append(names, c.String())
			}
			out.Cells = append(out.Cells, names)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func parseDelim(s string) rune {
	switch strings.ToLower(s) {
	case "tab", "\\t":
		return '\t'
	case "space":
		return ' '
	default:
		return []rune(s)[0]
	}
}

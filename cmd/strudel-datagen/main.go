// Command strudel-datagen writes synthetic annotated verbose CSV corpora to
// disk: plain .csv files plus .labels sidecars readable by strudel-train.
//
// Usage:
//
//	strudel-datagen -out corpus/ [-datasets saus,cius] [-scale 1.0] [-seed N]
//	strudel-datagen -out corpus/ -profile my_profile.json
//	strudel-datagen -out big/ -datasets mendeley -size 100M
//
// A -profile file holds a JSON-encoded datagen.Profile, letting users
// synthesize corpora with custom structural statistics.
//
// With -size, each dataset is written as ONE large CSV (files stacked with
// blank-line separators) of at least the given byte size — the input shape
// strudel's streaming annotation exists for. Generation streams to disk, so
// targets far beyond memory are fine.
//
// Interrupting a run (Ctrl-C or SIGTERM) stops cooperatively: a -size
// stream aborts at the next write (removing the partial file) and no
// further datasets start; the exit status is 1.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"strudel/internal/corpusio"
	"strudel/internal/datagen"
	"strudel/internal/ingest"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out      = flag.String("out", "corpus", "output directory (one subdirectory per dataset)")
		datasets = flag.String("datasets", "govuk,saus,cius,deex,mendeley,troy", "comma-separated dataset names")
		scale    = flag.Float64("scale", 1.0, "file-count scale factor")
		seed     = flag.Int64("seed", 0, "override the per-dataset default seeds (0 = keep defaults)")
		profile  = flag.String("profile", "", "JSON file with a custom datagen profile (overrides -datasets)")
		size     = flag.String("size", "", "byte-size target (e.g. 100M, 1G): write each dataset as one large stacked CSV instead of a corpus")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var sizeTarget int64
	if *size != "" {
		var err error
		if sizeTarget, err = datagen.ParseSize(*size); err != nil || sizeTarget == 0 {
			fmt.Fprintf(os.Stderr, "strudel-datagen: bad -size %q\n", *size)
			return 1
		}
	}

	if *profile != "" {
		if err := generateCustom(*profile, *out, *scale, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "strudel-datagen:", err)
			return 1
		}
		return 0
	}

	profiles := datagen.Profiles()
	for _, name := range strings.Split(*datasets, ",") {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "strudel-datagen: interrupted")
			return 1
		}
		name = strings.TrimSpace(strings.ToLower(name))
		p, ok := profiles[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "strudel-datagen: unknown dataset %q\n", name)
			return 1
		}
		//lint:ignore floatcmp exact compare against the flag default 1.0, which is representable
		if *scale != 1.0 {
			p = p.Scale(*scale)
		}
		if *seed != 0 {
			p.Seed = *seed
		}
		if sizeTarget > 0 {
			err := writeSized(ctx, *out, p, sizeTarget)
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "strudel-datagen: interrupted; partial file removed")
				return 1
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "strudel-datagen:", err)
				return 1
			}
			continue
		}
		c := datagen.Generate(p)
		dir := filepath.Join(*out, name)
		if err := corpusio.WriteCorpus(dir, c.Files); err != nil {
			fmt.Fprintln(os.Stderr, "strudel-datagen:", err)
			return 1
		}
		s := c.Summarize()
		fmt.Printf("%-10s %4d files %8d lines %10d cells -> %s\n",
			name, s.Files, s.Lines, s.Cells, dir)
	}
	return 0
}

// writerFunc adapts a closure to io.Writer (the closure captures the
// request context, keeping it out of any struct).
type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// writeSized streams one stacked CSV of at least target bytes for profile p
// into out/<name>.csv. Cancellation makes the next write fail with the
// context's error, aborting the stream and removing the partial file.
func writeSized(ctx context.Context, out string, p datagen.Profile, target int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	path := filepath.Join(out, p.Name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cw := writerFunc(func(b []byte) (int, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return f.Write(b)
	})
	n, files, werr := datagen.WriteSized(cw, p, target)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		if errors.Is(werr, context.Canceled) || errors.Is(werr, context.DeadlineExceeded) {
			_ = os.Remove(path) // best-effort cleanup of the partial stream
			return werr
		}
		return fmt.Errorf("%s: %w", path, werr)
	}
	fmt.Printf("%-10s %4d files stacked, %d bytes -> %s\n", p.Name, files, n, path)
	return nil
}

// generateCustom loads a JSON profile and writes its corpus. The profile
// passes through the hardened ingestion layer, so a BOM or an exotic
// encoding on a hand-written JSON file is repaired rather than fatal.
func generateCustom(path, out string, scale float64, seed int64) error {
	res, err := ingest.ReadFile(path, ingest.Options{})
	if err != nil {
		return err
	}
	var p datagen.Profile
	if err := json.Unmarshal([]byte(res.Text), &p); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if p.Name == "" {
		return fmt.Errorf("%s: profile needs a Name", path)
	}
	if p.Files <= 0 {
		return fmt.Errorf("%s: profile needs Files > 0", path)
	}
	//lint:ignore floatcmp exact compare against the flag default 1.0, which is representable
	if scale != 1.0 {
		p = p.Scale(scale)
	}
	if seed != 0 {
		p.Seed = seed
	}
	c := datagen.Generate(p)
	dir := filepath.Join(out, p.Name)
	if err := corpusio.WriteCorpus(dir, c.Files); err != nil {
		return err
	}
	s := c.Summarize()
	fmt.Printf("%-10s %4d files %8d lines %10d cells -> %s\n",
		p.Name, s.Files, s.Lines, s.Cells, dir)
	return nil
}

// Command strudel-datagen writes synthetic annotated verbose CSV corpora to
// disk: plain .csv files plus .labels sidecars readable by strudel-train.
//
// Usage:
//
//	strudel-datagen -out corpus/ [-datasets saus,cius] [-scale 1.0] [-seed N]
//	strudel-datagen -out corpus/ -profile my_profile.json
//	strudel-datagen -out big/ -datasets mendeley -size 100M
//
// A -profile file holds a JSON-encoded datagen.Profile, letting users
// synthesize corpora with custom structural statistics.
//
// With -size, each dataset is written as ONE large CSV (files stacked with
// blank-line separators) of at least the given byte size — the input shape
// strudel's streaming annotation exists for. Generation streams to disk, so
// targets far beyond memory are fine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"strudel/internal/corpusio"
	"strudel/internal/datagen"
	"strudel/internal/ingest"
)

func main() {
	var (
		out      = flag.String("out", "corpus", "output directory (one subdirectory per dataset)")
		datasets = flag.String("datasets", "govuk,saus,cius,deex,mendeley,troy", "comma-separated dataset names")
		scale    = flag.Float64("scale", 1.0, "file-count scale factor")
		seed     = flag.Int64("seed", 0, "override the per-dataset default seeds (0 = keep defaults)")
		profile  = flag.String("profile", "", "JSON file with a custom datagen profile (overrides -datasets)")
		size     = flag.String("size", "", "byte-size target (e.g. 100M, 1G): write each dataset as one large stacked CSV instead of a corpus")
	)
	flag.Parse()

	var sizeTarget int64
	if *size != "" {
		var err error
		if sizeTarget, err = datagen.ParseSize(*size); err != nil || sizeTarget == 0 {
			fmt.Fprintf(os.Stderr, "strudel-datagen: bad -size %q\n", *size)
			os.Exit(1)
		}
	}

	if *profile != "" {
		if err := generateCustom(*profile, *out, *scale, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "strudel-datagen:", err)
			os.Exit(1)
		}
		return
	}

	profiles := datagen.Profiles()
	for _, name := range strings.Split(*datasets, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		p, ok := profiles[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "strudel-datagen: unknown dataset %q\n", name)
			os.Exit(1)
		}
		//lint:ignore floatcmp exact compare against the flag default 1.0, which is representable
		if *scale != 1.0 {
			p = p.Scale(*scale)
		}
		if *seed != 0 {
			p.Seed = *seed
		}
		if sizeTarget > 0 {
			if err := writeSized(*out, p, sizeTarget); err != nil {
				fmt.Fprintln(os.Stderr, "strudel-datagen:", err)
				os.Exit(1)
			}
			continue
		}
		c := datagen.Generate(p)
		dir := filepath.Join(*out, name)
		if err := corpusio.WriteCorpus(dir, c.Files); err != nil {
			fmt.Fprintln(os.Stderr, "strudel-datagen:", err)
			os.Exit(1)
		}
		s := c.Summarize()
		fmt.Printf("%-10s %4d files %8d lines %10d cells -> %s\n",
			name, s.Files, s.Lines, s.Cells, dir)
	}
}

// writeSized streams one stacked CSV of at least target bytes for profile p
// into out/<name>.csv.
func writeSized(out string, p datagen.Profile, target int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	path := filepath.Join(out, p.Name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, files, werr := datagen.WriteSized(f, p, target)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("%s: %w", path, werr)
	}
	fmt.Printf("%-10s %4d files stacked, %d bytes -> %s\n", p.Name, files, n, path)
	return nil
}

// generateCustom loads a JSON profile and writes its corpus. The profile
// passes through the hardened ingestion layer, so a BOM or an exotic
// encoding on a hand-written JSON file is repaired rather than fatal.
func generateCustom(path, out string, scale float64, seed int64) error {
	res, err := ingest.ReadFile(path, ingest.Options{})
	if err != nil {
		return err
	}
	var p datagen.Profile
	if err := json.Unmarshal([]byte(res.Text), &p); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if p.Name == "" {
		return fmt.Errorf("%s: profile needs a Name", path)
	}
	if p.Files <= 0 {
		return fmt.Errorf("%s: profile needs Files > 0", path)
	}
	//lint:ignore floatcmp exact compare against the flag default 1.0, which is representable
	if scale != 1.0 {
		p = p.Scale(scale)
	}
	if seed != 0 {
		p.Seed = seed
	}
	c := datagen.Generate(p)
	dir := filepath.Join(out, p.Name)
	if err := corpusio.WriteCorpus(dir, c.Files); err != nil {
		return err
	}
	s := c.Summarize()
	fmt.Printf("%-10s %4d files %8d lines %10d cells -> %s\n",
		p.Name, s.Files, s.Lines, s.Cells, dir)
	return nil
}

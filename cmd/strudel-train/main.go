// Command strudel-train fits a Strudel model and saves it to disk.
//
// Training data comes either from annotated corpus directories written by
// strudel-datagen (-dir, repeatable via comma separation) or from built-in
// synthetic corpora (-corpora).
//
// Usage:
//
//	strudel-train -corpora saus,cius,deex -out strudel.model
//	strudel-train -dir corpus/saus,corpus/cius -out strudel.model
//
// Interrupting a run (Ctrl-C or SIGTERM) cancels training cooperatively:
// workers stop at the next file or tree boundary and the process exits 1
// without writing a partial model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"strudel"
	"strudel/internal/corpusio"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		corpora  = flag.String("corpora", "", "built-in synthetic corpora to train on (e.g. saus,cius,deex)")
		dirs     = flag.String("dir", "", "annotated corpus directories (comma-separated)")
		out      = flag.String("out", "strudel.model", "output model path")
		trees    = flag.Int("trees", 100, "forest size")
		seed     = flag.Int64("seed", 1, "training seed")
		scale    = flag.Float64("scale", 1.0, "scale factor for built-in corpora")
		maxCells = flag.Int("max-cells", 2000, "per-file training cell cap (0 = unlimited)")
		lineOnly = flag.Bool("line-only", false, "train only the line model")
		format   = flag.String("model-format", "json", "model serialization format: json (interchange) or binary (fast cold start)")
	)
	flag.Parse()
	modelFormat, err := strudel.ParseFormat(*format)
	if err != nil {
		return fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var files []*strudel.Table
	for _, name := range splitList(*corpora) {
		fs, err := strudel.GenerateCorpus(name, *scale)
		if err != nil {
			return fatal(err)
		}
		files = append(files, fs...)
		fmt.Printf("generated %-10s %4d files\n", name, len(fs))
	}
	for _, dir := range splitList(*dirs) {
		fs, err := corpusio.ReadCorpus(dir)
		if err != nil {
			return fatal(err)
		}
		for _, f := range fs {
			if !f.Annotated() {
				return fatal(fmt.Errorf("%s/%s has no .labels sidecar", dir, f.Name))
			}
			files = append(files, f)
		}
		fmt.Printf("loaded    %-10s %4d files\n", dir, len(fs))
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "strudel-train: no training data; pass -corpora or -dir")
		return 2
	}

	start := time.Now()
	model, err := strudel.TrainContext(ctx, files, strudel.TrainOptions{
		Trees:           *trees,
		Seed:            *seed,
		MaxCellsPerFile: *maxCells,
		LineOnly:        *lineOnly,
	})
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "strudel-train: interrupted; no model written")
		return 1
	}
	if err != nil {
		return fatal(err)
	}
	fmt.Printf("trained on %d files in %v\n", len(files), time.Since(start).Round(time.Millisecond))
	if err := model.SaveFile(*out, modelFormat); err != nil {
		return fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		return fatal(err)
	}
	fmt.Printf("saved %s (%s, %.1f MB)\n", *out, modelFormat, float64(info.Size())/1e6)
	return 0
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "strudel-train:", err)
	return 1
}

package strudel

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"strudel/internal/core"
	"strudel/internal/datagen"
	"strudel/internal/dialect"
	"strudel/internal/extract"
	"strudel/internal/features"
	"strudel/internal/ingest"
	"strudel/internal/obs"
	"strudel/internal/pipeline"
	"strudel/internal/table"
)

// Class is one of the six semantic element classes (plus ClassEmpty for
// empty lines and cells).
type Class = table.Class

// The element classes, re-exported in canonical order.
const (
	ClassEmpty    = table.ClassEmpty
	ClassMetadata = table.ClassMetadata
	ClassHeader   = table.ClassHeader
	ClassGroup    = table.ClassGroup
	ClassData     = table.ClassData
	ClassDerived  = table.ClassDerived
	ClassNotes    = table.ClassNotes

	// NumClasses is the number of semantic classes.
	NumClasses = table.NumClasses
)

// Classes lists the semantic classes in canonical order.
var Classes = table.Classes[:]

// ParseClass converts a class name back to a Class.
func ParseClass(name string) (Class, error) { return table.ParseClass(name) }

// Table is a parsed verbose CSV file: a rectangular grid of cells with
// optional line and cell annotations.
type Table = table.Table

// Dialect describes how a delimited file is tokenized.
type Dialect = dialect.Dialect

// DefaultDialect is the RFC 4180 dialect (comma, double quote).
var DefaultDialect = dialect.Default

// Detection is a detected dialect together with its consistency score and
// margin over the runner-up.
type Detection = dialect.Detection

// DetectDialect finds the most consistent dialect for raw file text, using
// the data-consistency measure of van den Burg et al. (2019), the same
// preprocessing the paper applies before classification.
func DetectDialect(text string) (Dialect, error) { return dialect.Detect(text) }

// DetectDialectBest is DetectDialect with the winner's score and margin.
func DetectDialectBest(text string) (Detection, error) { return dialect.DetectBest(text) }

// Parse splits raw text under the given dialect into a Table. Marginal
// empty lines and columns are cropped, as in the paper's data preparation.
func Parse(text string, d Dialect) *Table {
	return table.FromRows(dialect.Split(text, d)).Crop()
}

// IngestOptions configures the hardened byte-ingestion layer: encoding
// repair policy plus the resource guards (max file size, max line length,
// max lines, max cells per line). The zero value applies generous defaults.
type IngestOptions = ingest.Options

// Provenance records what ingestion and dialect detection did to a file:
// the encoding detected, bytes repaired, guards tripped, and the dialect
// confidence. It rides on the Table and the resulting Annotation.
type Provenance = ingest.Provenance

// The ingest error taxonomy, re-exported so callers can dispatch with
// errors.Is without importing internal packages. ErrTooLarge,
// ErrBadEncoding, and ErrEmptyInput reject a file outright; the remaining
// guards repair the input by default (recording the repair in Provenance)
// and only reject under IngestOptions.Strict.
var (
	ErrTooLarge     = ingest.ErrTooLarge
	ErrBadEncoding  = ingest.ErrBadEncoding
	ErrEmptyInput   = ingest.ErrEmptyInput
	ErrLineTooLong  = ingest.ErrLineTooLong
	ErrTooManyLines = ingest.ErrTooManyLines
	ErrTooManyCells = ingest.ErrTooManyCells
	// ErrCancelled classifies reads aborted by context cancellation or a
	// deadline; the chain also satisfies errors.Is against the original
	// context error (context.Canceled or context.DeadlineExceeded).
	ErrCancelled = ingest.ErrCancelled
)

// ObsRegistry aggregates observability metrics: monotonic counters, gauges
// with high-water marks, and fixed-bucket latency histograms. A registry is
// safe for concurrent use; Snapshot renders its state as deterministic JSON
// (names sorted, field order fixed). See NewObsRegistry.
type ObsRegistry = obs.Registry

// ObsHooks is the observation carrier threaded through loading and
// annotation via LoadOptions.Obs and BatchOptions.Obs. A nil *ObsHooks is
// the disabled observer: every hook degrades to a nil check, and the hot
// path never reads the clock.
type ObsHooks = obs.Hooks

// ObsSnapshot is a point-in-time copy of a registry's metrics.
type ObsSnapshot = obs.Snapshot

// ObsDebugServer is the opt-in diagnostics endpoint started by
// ServeObsDebug; Close shuts it down.
type ObsDebugServer = obs.DebugServer

// NewObsRegistry returns an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewObsHooks returns hooks that record spans, counters, and gauges into r.
// Pass the result via LoadOptions.Obs and BatchOptions.Obs; pass nil hooks
// (or simply leave the fields unset) to disable observation.
func NewObsHooks(r *ObsRegistry) *ObsHooks { return obs.NewHooks(r) }

// ServeObsDebug starts the opt-in HTTP diagnostics server on addr, exposing
// the registry snapshot (/debug/obs), expvar (/debug/vars), and the standard
// pprof profile endpoints (/debug/pprof/...). Nothing is mounted unless this
// is called. The strudel and strudel-eval commands expose it as -debug-addr.
func ServeObsDebug(addr string, r *ObsRegistry) (*ObsDebugServer, error) {
	return obs.ServeDebug(addr, r)
}

// DefaultMinDialectScore is the confidence floor under which dialect
// detection is considered unreliable: the winner is discarded, the file is
// parsed under the comma dialect, and the annotation is marked degraded.
// The value sits well below the scores clean machine-written CSV achieves
// (≥0.3 in practice) but above the near-zero scores of prose and noise.
const DefaultMinDialectScore = 0.02

// LoadOptions configures the hardened loaders.
type LoadOptions struct {
	// Ingest holds the byte-level guards; the zero value uses defaults.
	Ingest IngestOptions
	// MinDialectScore is the dialect-confidence floor (0 = the package
	// default; negative disables the floor entirely).
	MinDialectScore float64
	// ForceDialect skips detection and parses under the given dialect.
	ForceDialect *Dialect
	// Obs observes loading — ingestion bytes/repairs/guard trips, the
	// dialect-detection span and score histogram, fallback and forced
	// counters. Nil disables observation at no cost.
	Obs *ObsHooks
}

// ingestOptions is the ingest configuration with the loader's hooks pushed
// down, so one LoadOptions.Obs observes both layers. An explicitly set
// Ingest.Obs wins.
func (o LoadOptions) ingestOptions() ingest.Options {
	in := o.Ingest
	if in.Obs == nil {
		in.Obs = o.Obs
	}
	return in
}

func (o LoadOptions) minScore() float64 {
	//lint:ignore floatcmp exact compare against the zero-value default, which is representable
	if o.MinDialectScore == 0 {
		return DefaultMinDialectScore
	}
	if o.MinDialectScore < 0 {
		return 0
	}
	return o.MinDialectScore
}

// LoadBytes runs raw bytes through the full hardened front door: encoding
// sniffing and normalization, resource guards, dialect detection with a
// confidence floor, and guarded parsing. The returned table carries a
// Provenance describing every repair; errors wrap the ingest taxonomy
// (ErrTooLarge, ErrBadEncoding, ErrEmptyInput, ...).
func LoadBytes(data []byte, opts LoadOptions) (*Table, Dialect, error) {
	res, err := ingest.Normalize(data, opts.ingestOptions())
	if err != nil {
		return nil, Dialect{}, err
	}
	return buildTable(res, opts)
}

// buildTable finishes loading normalized text: dialect selection, guarded
// splitting, cropping, and provenance attachment.
func buildTable(res ingest.Result, opts LoadOptions) (*Table, Dialect, error) {
	prov := res.Provenance
	d, err := chooseDialect(res.Text, opts, &prov)
	if err != nil {
		return nil, Dialect{}, err
	}

	maxCells := opts.maxCells()
	rows, dropped := dialect.SplitLimit(res.Text, d, maxCells)
	if dropped > 0 {
		if opts.Ingest.Strict {
			return nil, Dialect{}, errTooManyCells(dropped, maxCells)
		}
		prov.CellsDropped = dropped
		prov.Trip(ingest.GuardCellsDropped)
	}
	t := table.FromRows(rows).Crop()
	t.Provenance = &prov
	return t, d, nil
}

// chooseDialect picks the parse dialect for normalized text under opts,
// recording score, margin, fallback, and the final dialect string into prov.
// It is shared by the in-memory loaders (full text) and the streaming
// driver (bounded prefix) so both apply the same confidence floor.
func chooseDialect(text string, opts LoadOptions, prov *ingest.Provenance) (Dialect, error) {
	var d Dialect
	switch {
	case opts.ForceDialect != nil:
		d = *opts.ForceDialect
		opts.Obs.Count(obs.MDialectForced, 1)
	default:
		det, err := dialect.DetectBestObs(text, opts.Obs)
		if err != nil {
			return Dialect{}, fmt.Errorf("strudel: %w", err)
		}
		prov.DialectScore, prov.DialectMargin = det.Score, det.Margin
		if det.Score < opts.minScore() {
			// Low-confidence winner: produce a predictable comma parse and
			// say so, instead of silently committing to a garbage dialect.
			d = DefaultDialect
			prov.DialectFallback = true
			prov.Trip(ingest.GuardDialectScore)
			opts.Obs.Count(obs.MDialectFallbacks, 1)
		} else {
			d = det.Dialect
		}
	}
	prov.Dialect = d.String()
	return d, nil
}

// maxCells resolves the per-row cell cap (0 = package default, negative =
// unlimited, matching the ingest guard convention).
func (o LoadOptions) maxCells() int {
	if o.Ingest.MaxCellsPerLine == 0 {
		return ingest.DefaultMaxCellsPerLine
	}
	return o.Ingest.MaxCellsPerLine
}

// errTooManyCells is the Strict-mode rejection for rows over the cell cap,
// formatted identically on the in-memory and streaming paths.
func errTooManyCells(dropped, maxCells int) error {
	return fmt.Errorf("strudel: %w (%d cells beyond the per-line limit %d)",
		ErrTooManyCells, dropped, maxCells)
}

// LoadReader reads a verbose CSV file from r through the full hardened
// front door (see LoadBytes). The reader is capped at the ingest size
// guard, so an unbounded stream cannot exhaust memory.
func LoadReader(r io.Reader, opts LoadOptions) (*Table, Dialect, error) {
	res, err := ingest.Read(r, opts.ingestOptions())
	if err != nil {
		return nil, Dialect{}, err
	}
	return buildTable(res, opts)
}

// LoadFile reads and parses the file at path; the table's Name is set to
// the path. Pass LoadOptions{} for the defaults.
func LoadFile(path string, opts LoadOptions) (*Table, Dialect, error) {
	res, err := ingest.ReadFile(path, opts.ingestOptions())
	if err != nil {
		return nil, Dialect{}, err
	}
	t, d, err := buildTable(res, opts)
	if err != nil {
		return nil, Dialect{}, fmt.Errorf("strudel: %s: %w", path, err)
	}
	t.Name = path
	return t, d, nil
}

// Load reads a verbose CSV file from r with default options.
//
// Deprecated: Use LoadReader(r, LoadOptions{}). Load predates the
// consolidated load family (LoadBytes / LoadReader / LoadFile, each taking
// LoadOptions) and is kept only for source compatibility.
func Load(r io.Reader) (*Table, Dialect, error) {
	return LoadReader(r, LoadOptions{})
}

// LoadFileOptions is the old name for LoadFile with explicit options.
//
// Deprecated: Use LoadFile(path, opts), which now takes the options
// directly.
func LoadFileOptions(path string, opts LoadOptions) (*Table, Dialect, error) {
	return LoadFile(path, opts)
}

// Annotation is the result of classifying a table: one class per line and
// per cell (ClassEmpty for empty elements).
type Annotation struct {
	Lines []Class
	Cells [][]Class
	// LineProbabilities holds the Strudel^L per-class confidence for every
	// line (all zeros for empty lines).
	LineProbabilities [][]float64

	// Provenance records how the file's bytes were ingested and which
	// guards fired, when the table was loaded through Load/LoadBytes/
	// LoadFile. Nil for tables built directly from rows.
	Provenance *Provenance `json:"provenance,omitempty"`
	// Degraded lists why this annotation is best-effort rather than exact:
	// ingestion repairs (latin-1 fallback, truncated lines, stripped NULs)
	// and dialect fallback. Empty for pristine input.
	Degraded []string `json:"degraded,omitempty"`
	// Err is the per-file failure of a batch run — a recovered panic, a
	// per-file timeout, or batch cancellation. When Err is non-nil the
	// other fields are zero. Errors never escape AnnotateAll as panics.
	Err error `json:"-"`
}

// Model bundles a trained Strudel^L line classifier and Strudel^C cell
// classifier.
type Model struct {
	line *core.LineModel
	cell *core.CellModel
}

// TrainOptions configures Train. The zero value reproduces the paper's
// setup (100-tree forests over the full feature sets).
type TrainOptions struct {
	// Trees is the forest size; 0 means 100.
	Trees int
	// Seed makes training deterministic.
	Seed int64
	// MaxCellsPerFile caps per-file cell sampling for the cell model
	// (0 = use every cell). Large corpora train considerably faster with a
	// cap of a few thousand; minority-class cells are always kept.
	MaxCellsPerFile int
	// LineOnly skips the cell model; ClassifyCells then falls back to the
	// Line^C extension of line predictions.
	LineOnly bool
	// Parallelism bounds the worker pool extracting per-file training
	// features (0 = all CPUs). The trained model is byte-identical at
	// every setting, so this is purely a throughput knob.
	Parallelism int
}

// Train fits a model on annotated tables (tables where LineClasses and
// CellClasses are populated, e.g. from GenerateCorpus or hand labeling).
func Train(files []*Table, opts TrainOptions) (*Model, error) {
	// context.Background is never cancelled, so this is plain training.
	return TrainContext(context.Background(), files, opts)
}

// TrainContext is Train with cooperative cancellation: feature extraction
// stops dispatching files and the forests stop growing trees once ctx is
// cancelled, and ctx's error is returned (so a Ctrl-C during a long
// training run exits promptly instead of finishing the corpus). A nil ctx
// behaves like context.Background.
func TrainContext(ctx context.Context, files []*Table, opts TrainOptions) (*Model, error) {
	lopts := core.DefaultLineTrainOptions()
	if opts.Trees > 0 {
		lopts.Forest.NumTrees = opts.Trees
	}
	lopts.Forest.Seed = opts.Seed
	lopts.Parallelism = opts.Parallelism

	if opts.LineOnly {
		lm, err := core.TrainLineContext(ctx, files, lopts)
		if err != nil {
			return nil, err
		}
		return &Model{line: lm}, nil
	}

	copts := core.DefaultCellTrainOptions()
	if opts.Trees > 0 {
		copts.Forest.NumTrees = opts.Trees
		copts.Line.Forest.NumTrees = opts.Trees
	}
	copts.Forest.Seed = opts.Seed
	copts.MaxCellsPerFile = opts.MaxCellsPerFile
	copts.Parallelism = opts.Parallelism
	cm, err := core.TrainCellContext(ctx, files, copts)
	if err != nil {
		return nil, err
	}
	return &Model{line: cm.Line, cell: cm}, nil
}

// ClassifyLines predicts one class per line.
func (m *Model) ClassifyLines(t *Table) []Class { return m.line.Classify(t) }

// LineProbabilities returns the Strudel^L per-line class probabilities.
func (m *Model) LineProbabilities(t *Table) [][]float64 { return m.line.Probabilities(t) }

// ClassifyCells predicts one class per cell. Models trained with LineOnly
// fall back to the Line^C baseline (extending line predictions to cells).
func (m *Model) ClassifyCells(t *Table) [][]Class {
	if m.cell == nil {
		return m.line.ClassifyCells(t)
	}
	return m.cell.Classify(t)
}

// Annotate classifies both granularities in one call. The line and cell
// stages share one pipeline artifact, so line features are extracted and
// the Strudel^L forest consulted exactly once per file (the cell model's
// LineClassProbability features and the returned confidences reuse the
// same vectors).
func (m *Model) Annotate(t *Table) *Annotation {
	return m.annotate(pipeline.New(t))
}

func (m *Model) annotate(a *pipeline.Artifacts) *Annotation {
	if hook := annotateTestHook.Load(); hook != nil {
		(*hook)(a.Table)
	}
	// The staging block never outlives the stages (probabilities are
	// written to fresh slabs), so it can go back to the pool as soon as
	// every stage has run.
	defer a.ReleaseScratch()
	lines := m.line.ClassifyWithArtifacts(a)
	var cells [][]Class
	// The cell_classify span covers the whole cell stage, so the nested
	// cell_features span (a cache miss inside ClassifyWithArtifacts) is a
	// sub-interval of it, not a sibling.
	cellStart := a.Obs.SpanStart(obs.StageCellClassify)
	if m.cell == nil {
		cells = m.line.ClassifyCellsWithArtifacts(a)
	} else {
		cells = m.cell.ClassifyWithArtifacts(a)
	}
	a.Obs.SpanEnd(obs.StageCellClassify, cellStart)
	ann := &Annotation{
		Lines:             lines,
		Cells:             cells,
		LineProbabilities: m.line.ProbabilitiesWithArtifacts(a),
	}
	if p := a.Table.Provenance; p != nil {
		ann.Provenance = p
		ann.Degraded = p.DegradedReasons()
	}
	return ann
}

// annotateTestHook, when set, runs at the start of every annotate call. It
// exists so tests can force a panic for a chosen file and prove the batch
// fault barrier isolates it. Atomic because a timed-out annotation is
// abandoned, not stopped — the orphaned goroutine may still load the hook
// after the test has cleared it.
var annotateTestHook atomic.Pointer[func(*table.Table)]

// BatchOptions configures AnnotateAll.
type BatchOptions struct {
	// Parallelism is the number of files annotated concurrently
	// (0 = all CPUs). Output is deterministic at every setting: the i-th
	// annotation always describes the i-th input file, and the predicted
	// classes and probabilities are byte-identical to a serial run.
	Parallelism int
	// FileTimeout caps the wall-clock time spent annotating any single
	// file (0 = no cap). A file that exceeds it gets an Annotation with
	// Err set (wrapping context.DeadlineExceeded); the rest of the batch
	// is unaffected.
	FileTimeout time.Duration
	// Obs observes the batch: per-stage pipeline timings, worker-pool
	// queue depth and utilization, per-file end-to-end latency, and file
	// outcome counters (ok / failed / timeout / panic-recovered /
	// cancelled). Nil disables observation at no cost.
	Obs *ObsHooks
}

// AnnotateAll classifies a corpus of tables, fanning the per-file work
// (which is fully independent) out over a bounded worker pool. The result
// has one annotation per input, in input order. Per-file failures —
// including panics, which the fault barrier converts to errors — surface
// on the file's own Annotation.Err; one poisoned file never affects the
// others.
func (m *Model) AnnotateAll(files []*Table, opts BatchOptions) []*Annotation {
	return m.AnnotateAllContext(context.Background(), files, opts)
}

// AnnotateAllContext is AnnotateAll with cooperative cancellation. Once ctx
// is cancelled, no further files start; their slots come back with Err set
// to the context's error. In-flight files run to completion (or to their
// FileTimeout), so the returned slice always has one non-nil entry per
// input.
func (m *Model) AnnotateAllContext(ctx context.Context, files []*Table, opts BatchOptions) []*Annotation {
	if ctx == nil {
		ctx = context.Background()
	}
	h := opts.Obs
	batchStart := h.SpanStart(obs.StageBatch)
	h.Count(obs.MBatchBatches, 1)
	h.Count(obs.MBatchFiles, int64(len(files)))
	out := make([]*Annotation, len(files))
	err := pipeline.ForEachContextObs(ctx, len(files), opts.Parallelism, h, func(i int) {
		out[i] = m.annotateGuarded(ctx, files[i], opts.FileTimeout, h)
	})
	for i, a := range out {
		if a == nil { // never dispatched: the batch was cancelled first
			cause := err
			if cause == nil {
				cause = context.Canceled
			}
			out[i] = &Annotation{Err: fmt.Errorf("strudel: %s: batch aborted: %w", nameOf(files[i]), cause)}
		}
	}
	h.SpanEnd(obs.StageBatch, batchStart)
	if h.Active() {
		for _, a := range out {
			h.Count(batchOutcome(a.Err), 1)
		}
	}
	return out
}

// batchOutcome maps one per-file batch result onto its outcome counter.
// Timeouts and cancellations are recognized through the error chain, so the
// classification survives the "strudel: <name>: ..." wrapping; a recovered
// panic keeps its *pipeline.PanicError identity the same way.
func batchOutcome(err error) string {
	switch {
	case err == nil:
		return obs.MBatchFilesOK
	case errors.Is(err, context.DeadlineExceeded):
		return obs.MBatchFilesTimeout
	case errors.Is(err, context.Canceled):
		return obs.MBatchFilesCancelled
	}
	var pe *pipeline.PanicError
	if errors.As(err, &pe) {
		return obs.MBatchFilesPanic
	}
	return obs.MBatchFilesFailed
}

// annotateGuarded is the fault-isolated per-file unit of batch work: it
// runs one Annotate inside a recover barrier and, when asked, under a
// per-file deadline. When h is active the whole unit is timed as the
// annotate_file span — on the timeout path that is the latency the batch
// observed (the deadline), not the runtime of the abandoned goroutine.
func (m *Model) annotateGuarded(ctx context.Context, t *Table, timeout time.Duration, h *obs.Hooks) *Annotation {
	fileStart := h.SpanStart(obs.StageAnnotateFile)
	ann := m.annotateGuardedInner(ctx, t, timeout, h)
	h.SpanEnd(obs.StageAnnotateFile, fileStart)
	return ann
}

func (m *Model) annotateGuardedInner(ctx context.Context, t *Table, timeout time.Duration, h *obs.Hooks) *Annotation {
	if err := ctx.Err(); err != nil {
		return &Annotation{Err: fmt.Errorf("strudel: %s: batch aborted: %w", nameOf(t), err)}
	}
	run := func() *Annotation {
		var ann *Annotation
		if err := pipeline.Safely(func() {
			a := pipeline.New(t)
			a.Obs = h
			ann = m.annotate(a)
		}); err != nil {
			return &Annotation{Err: fmt.Errorf("strudel: %s: annotation failed: %w", nameOf(t), err)}
		}
		return ann
	}
	if timeout <= 0 && ctx.Done() == nil {
		return run()
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	// The unit itself is CPU-bound with no internal checkpoints, so the
	// deadline is enforced by abandonment: the worker goroutine finishes on
	// its own and the buffered channel lets it exit without a receiver.
	ch := make(chan *Annotation, 1)
	go func() { ch <- run() }()
	select {
	case ann := <-ch:
		return ann
	case <-ctx.Done():
		return &Annotation{Err: fmt.Errorf("strudel: %s: %w", nameOf(t), ctx.Err())}
	}
}

func nameOf(t *Table) string {
	if t == nil || t.Name == "" {
		return "(unnamed table)"
	}
	return t.Name
}

// HasCellModel reports whether the model carries a trained Strudel^C.
func (m *Model) HasCellModel() bool { return m.cell != nil }

// GenerateCorpus synthesizes one of the paper-shaped annotated corpora:
// "govuk", "saus", "cius", "deex", "mendeley", or "troy". scale multiplies
// the default file count (use 1 for the standard size). The returned tables
// carry gold line and cell classes and can be passed straight to Train.
func GenerateCorpus(name string, scale float64) ([]*Table, error) {
	c, err := datagen.GenerateDataset(name, scale)
	if err != nil {
		return nil, err
	}
	return c.Files, nil
}

// CorpusNames lists the available synthetic corpora.
func CorpusNames() []string {
	return []string{"govuk", "saus", "cius", "deex", "mendeley", "troy"}
}

// DetectDerivedCells runs the paper's Algorithm 2 on a table: it returns a
// boolean grid marking the numeric cells whose values are aggregations
// (sums or means) of neighboring cells, anchored by aggregation keywords
// such as "Total". Useful on its own for auditing report arithmetic.
func DetectDerivedCells(t *Table) [][]bool {
	return features.DetectDerived(t, features.DefaultDerivedOptions())
}

// ContainsAggregationWord reports whether a cell value contains one of the
// aggregation keywords of Section 4 (total, sum, average, ...).
func ContainsAggregationWord(v string) bool {
	return features.ContainsAggregationWord(v)
}

// Relation is a relational table reconstructed from a classified verbose
// CSV file: merged header, data tuples, group labels denormalized into a
// leading column, derived rows dropped.
type Relation = extract.Relation

// ExtractTables reconstructs every table region of t under the predicted
// line classes: multi-line headers are merged, group labels become a
// leading column, and derived rows are dropped. Compared to ExtractData it
// handles files with several stacked tables.
func ExtractTables(t *Table, ann *Annotation) []Relation {
	return extract.Tables(t, ann.Lines)
}

// ExtractProse collects the metadata (kind "metadata") or footnote text
// (kind "notes") of a classified file, one string per contiguous block.
func ExtractProse(t *Table, ann *Annotation, kind string) []string {
	k := extract.RegionMetadata
	if kind == "notes" {
		k = extract.RegionNotes
	}
	return extract.Prose(t, ann.Lines, k)
}

// ExtractData pulls the clean relational content out of an annotated
// table: the first header line becomes the header row, and every data line
// contributes its cells (group labels and derived lines are skipped). This
// is the "make it machine-readable" step motivating the paper.
func ExtractData(t *Table, ann *Annotation) (header []string, rows [][]string) {
	for r := 0; r < t.Height(); r++ {
		switch ann.Lines[r] {
		case ClassHeader:
			if header == nil {
				header = append([]string(nil), t.Row(r)...)
			}
		case ClassData:
			rows = append(rows, append([]string(nil), t.Row(r)...))
		}
	}
	return header, rows
}

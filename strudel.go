package strudel

import (
	"fmt"
	"io"
	"os"
	"strings"

	"strudel/internal/core"
	"strudel/internal/datagen"
	"strudel/internal/dialect"
	"strudel/internal/extract"
	"strudel/internal/features"
	"strudel/internal/pipeline"
	"strudel/internal/table"
)

// Class is one of the six semantic element classes (plus ClassEmpty for
// empty lines and cells).
type Class = table.Class

// The element classes, re-exported in canonical order.
const (
	ClassEmpty    = table.ClassEmpty
	ClassMetadata = table.ClassMetadata
	ClassHeader   = table.ClassHeader
	ClassGroup    = table.ClassGroup
	ClassData     = table.ClassData
	ClassDerived  = table.ClassDerived
	ClassNotes    = table.ClassNotes

	// NumClasses is the number of semantic classes.
	NumClasses = table.NumClasses
)

// Classes lists the semantic classes in canonical order.
var Classes = table.Classes[:]

// ParseClass converts a class name back to a Class.
func ParseClass(name string) (Class, error) { return table.ParseClass(name) }

// Table is a parsed verbose CSV file: a rectangular grid of cells with
// optional line and cell annotations.
type Table = table.Table

// Dialect describes how a delimited file is tokenized.
type Dialect = dialect.Dialect

// DefaultDialect is the RFC 4180 dialect (comma, double quote).
var DefaultDialect = dialect.Default

// DetectDialect finds the most consistent dialect for raw file text, using
// the data-consistency measure of van den Burg et al. (2019), the same
// preprocessing the paper applies before classification.
func DetectDialect(text string) (Dialect, error) { return dialect.Detect(text) }

// Parse splits raw text under the given dialect into a Table. Marginal
// empty lines and columns are cropped, as in the paper's data preparation.
func Parse(text string, d Dialect) *Table {
	return table.FromRows(dialect.Split(text, d)).Crop()
}

// Load reads a verbose CSV file from r, detects its dialect, and parses it.
func Load(r io.Reader) (*Table, Dialect, error) {
	var b strings.Builder
	if _, err := io.Copy(&b, r); err != nil {
		return nil, Dialect{}, fmt.Errorf("strudel: read: %w", err)
	}
	d, err := dialect.Detect(b.String())
	if err != nil {
		return nil, Dialect{}, err
	}
	return Parse(b.String(), d), d, nil
}

// LoadFile reads and parses the file at path.
func LoadFile(path string) (*Table, Dialect, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Dialect{}, err
	}
	defer f.Close()
	t, d, err := Load(f)
	if err != nil {
		return nil, Dialect{}, fmt.Errorf("strudel: %s: %w", path, err)
	}
	t.Name = path
	return t, d, nil
}

// Annotation is the result of classifying a table: one class per line and
// per cell (ClassEmpty for empty elements).
type Annotation struct {
	Lines []Class
	Cells [][]Class
	// LineProbabilities holds the Strudel^L per-class confidence for every
	// line (all zeros for empty lines).
	LineProbabilities [][]float64
}

// Model bundles a trained Strudel^L line classifier and Strudel^C cell
// classifier.
type Model struct {
	line *core.LineModel
	cell *core.CellModel
}

// TrainOptions configures Train. The zero value reproduces the paper's
// setup (100-tree forests over the full feature sets).
type TrainOptions struct {
	// Trees is the forest size; 0 means 100.
	Trees int
	// Seed makes training deterministic.
	Seed int64
	// MaxCellsPerFile caps per-file cell sampling for the cell model
	// (0 = use every cell). Large corpora train considerably faster with a
	// cap of a few thousand; minority-class cells are always kept.
	MaxCellsPerFile int
	// LineOnly skips the cell model; ClassifyCells then falls back to the
	// Line^C extension of line predictions.
	LineOnly bool
	// Parallelism bounds the worker pool extracting per-file training
	// features (0 = all CPUs). The trained model is byte-identical at
	// every setting, so this is purely a throughput knob.
	Parallelism int
}

// Train fits a model on annotated tables (tables where LineClasses and
// CellClasses are populated, e.g. from GenerateCorpus or hand labeling).
func Train(files []*Table, opts TrainOptions) (*Model, error) {
	lopts := core.DefaultLineTrainOptions()
	if opts.Trees > 0 {
		lopts.Forest.NumTrees = opts.Trees
	}
	lopts.Forest.Seed = opts.Seed
	lopts.Parallelism = opts.Parallelism

	if opts.LineOnly {
		lm, err := core.TrainLine(files, lopts)
		if err != nil {
			return nil, err
		}
		return &Model{line: lm}, nil
	}

	copts := core.DefaultCellTrainOptions()
	if opts.Trees > 0 {
		copts.Forest.NumTrees = opts.Trees
		copts.Line.Forest.NumTrees = opts.Trees
	}
	copts.Forest.Seed = opts.Seed
	copts.MaxCellsPerFile = opts.MaxCellsPerFile
	copts.Parallelism = opts.Parallelism
	cm, err := core.TrainCell(files, copts)
	if err != nil {
		return nil, err
	}
	return &Model{line: cm.Line, cell: cm}, nil
}

// ClassifyLines predicts one class per line.
func (m *Model) ClassifyLines(t *Table) []Class { return m.line.Classify(t) }

// LineProbabilities returns the Strudel^L per-line class probabilities.
func (m *Model) LineProbabilities(t *Table) [][]float64 { return m.line.Probabilities(t) }

// ClassifyCells predicts one class per cell. Models trained with LineOnly
// fall back to the Line^C baseline (extending line predictions to cells).
func (m *Model) ClassifyCells(t *Table) [][]Class {
	if m.cell == nil {
		return m.line.ClassifyCells(t)
	}
	return m.cell.Classify(t)
}

// Annotate classifies both granularities in one call. The line and cell
// stages share one pipeline artifact, so line features are extracted and
// the Strudel^L forest consulted exactly once per file (the cell model's
// LineClassProbability features and the returned confidences reuse the
// same vectors).
func (m *Model) Annotate(t *Table) *Annotation {
	return m.annotate(pipeline.New(t))
}

func (m *Model) annotate(a *pipeline.Artifacts) *Annotation {
	lines := m.line.ClassifyWithArtifacts(a)
	var cells [][]Class
	if m.cell == nil {
		cells = m.line.ClassifyCellsWithArtifacts(a)
	} else {
		cells = m.cell.ClassifyWithArtifacts(a)
	}
	return &Annotation{
		Lines:             lines,
		Cells:             cells,
		LineProbabilities: m.line.ProbabilitiesWithArtifacts(a),
	}
}

// BatchOptions configures AnnotateAll.
type BatchOptions struct {
	// Parallelism is the number of files annotated concurrently
	// (0 = all CPUs). Output is deterministic at every setting: the i-th
	// annotation always describes the i-th input file, and the predicted
	// classes and probabilities are byte-identical to a serial run.
	Parallelism int
}

// AnnotateAll classifies a corpus of tables, fanning the per-file work
// (which is fully independent) out over a bounded worker pool. The result
// has one annotation per input, in input order.
func (m *Model) AnnotateAll(files []*Table, opts BatchOptions) []*Annotation {
	out := make([]*Annotation, len(files))
	pipeline.ForEach(len(files), opts.Parallelism, func(i int) {
		out[i] = m.Annotate(files[i])
	})
	return out
}

// HasCellModel reports whether the model carries a trained Strudel^C.
func (m *Model) HasCellModel() bool { return m.cell != nil }

// GenerateCorpus synthesizes one of the paper-shaped annotated corpora:
// "govuk", "saus", "cius", "deex", "mendeley", or "troy". scale multiplies
// the default file count (use 1 for the standard size). The returned tables
// carry gold line and cell classes and can be passed straight to Train.
func GenerateCorpus(name string, scale float64) ([]*Table, error) {
	c, err := datagen.GenerateDataset(name, scale)
	if err != nil {
		return nil, err
	}
	return c.Files, nil
}

// CorpusNames lists the available synthetic corpora.
func CorpusNames() []string {
	return []string{"govuk", "saus", "cius", "deex", "mendeley", "troy"}
}

// DetectDerivedCells runs the paper's Algorithm 2 on a table: it returns a
// boolean grid marking the numeric cells whose values are aggregations
// (sums or means) of neighboring cells, anchored by aggregation keywords
// such as "Total". Useful on its own for auditing report arithmetic.
func DetectDerivedCells(t *Table) [][]bool {
	return features.DetectDerived(t, features.DefaultDerivedOptions())
}

// ContainsAggregationWord reports whether a cell value contains one of the
// aggregation keywords of Section 4 (total, sum, average, ...).
func ContainsAggregationWord(v string) bool {
	return features.ContainsAggregationWord(v)
}

// Relation is a relational table reconstructed from a classified verbose
// CSV file: merged header, data tuples, group labels denormalized into a
// leading column, derived rows dropped.
type Relation = extract.Relation

// ExtractTables reconstructs every table region of t under the predicted
// line classes: multi-line headers are merged, group labels become a
// leading column, and derived rows are dropped. Compared to ExtractData it
// handles files with several stacked tables.
func ExtractTables(t *Table, ann *Annotation) []Relation {
	return extract.Tables(t, ann.Lines)
}

// ExtractProse collects the metadata (kind "metadata") or footnote text
// (kind "notes") of a classified file, one string per contiguous block.
func ExtractProse(t *Table, ann *Annotation, kind string) []string {
	k := extract.RegionMetadata
	if kind == "notes" {
		k = extract.RegionNotes
	}
	return extract.Prose(t, ann.Lines, k)
}

// ExtractData pulls the clean relational content out of an annotated
// table: the first header line becomes the header row, and every data line
// contributes its cells (group labels and derived lines are skipped). This
// is the "make it machine-readable" step motivating the paper.
func ExtractData(t *Table, ann *Annotation) (header []string, rows [][]string) {
	for r := 0; r < t.Height(); r++ {
		switch ann.Lines[r] {
		case ClassHeader:
			if header == nil {
				header = append([]string(nil), t.Row(r)...)
			}
		case ClassData:
			rows = append(rows, append([]string(nil), t.Row(r)...))
		}
	}
	return header, rows
}

#!/usr/bin/env bash
# Smoke test for the strudel-serve daemon, exercising the full service
# lifecycle from the outside: build the binary, train a small model, start
# on an ephemeral port, health-check, round-trip an annotation, verify the
# deterministic 413 mapping, then SIGTERM and require a clean drain
# (exit 0). Run via `make serve-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve-smoke: building strudel-serve and training a smoke model"
go build -o "$workdir/strudel-serve" ./cmd/strudel-serve
go run ./cmd/strudel-train -corpora saus -scale 0.2 -trees 10 -line-only \
    -out "$workdir/smoke.model" > /dev/null

"$workdir/strudel-serve" -addr 127.0.0.1:0 -model "$workdir/smoke.model" \
    -max-bytes 65536 2> "$workdir/serve.log" &
pid=$!

# The daemon prints its ephemeral address to stderr once listening.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*listening on http://\([^/]*\)/.*#\1#p' "$workdir/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "serve-smoke: server died at startup"; cat "$workdir/serve.log"; exit 1; }
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-smoke: server never reported an address"
    cat "$workdir/serve.log"
    exit 1
fi
echo "serve-smoke: serving on $addr"

curl -fsS "http://$addr/healthz" > /dev/null
curl -fsS "http://$addr/readyz" > /dev/null

printf 'Quarterly Report,,\nName,Q1,Q2\nalpha,1,2\nbeta,3,4\nTotal,4,6\n' > "$workdir/in.csv"
curl -fsS --data-binary @"$workdir/in.csv" "http://$addr/v1/annotate" > "$workdir/out.json"
grep -q '"lines"' "$workdir/out.json" || { echo "serve-smoke: annotation response missing lines"; cat "$workdir/out.json"; exit 1; }
echo "serve-smoke: annotation round-trip ok"

# Deterministic failure mapping: an upload over -max-bytes must be 413.
head -c 100000 /dev/zero | tr '\0' 'x' > "$workdir/big.csv"
status=$(curl -s -o /dev/null -w '%{http_code}' --data-binary @"$workdir/big.csv" "http://$addr/v1/annotate")
if [ "$status" != "413" ]; then
    echo "serve-smoke: oversized upload returned $status, want 413"
    exit 1
fi
echo "serve-smoke: oversized upload shed with 413"

# SIGTERM must drain gracefully and exit 0.
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" != "0" ]; then
    echo "serve-smoke: SIGTERM drain exited $rc, want 0"
    cat "$workdir/serve.log"
    exit 1
fi
grep -q "drained cleanly" "$workdir/serve.log" || { echo "serve-smoke: no clean-drain message"; cat "$workdir/serve.log"; exit 1; }
echo "serve-smoke: clean SIGTERM drain — all good"

package strudel

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// streamResult captures everything one streaming annotation produced, for
// comparison against the in-memory path.
type streamResult struct {
	lines   []LineAnnotation
	summary *StreamSummary
	err     error
}

func streamFile(m *Model, path string, opts StreamOptions) streamResult {
	var res streamResult
	res.summary, res.err = m.AnnotateFileStream(context.Background(), path, opts, func(la LineAnnotation) error {
		res.lines = append(res.lines, la)
		return nil
	})
	return res
}

// assertStreamMatchesMemory is the byte-identical equivalence oracle: the
// streaming annotation of path must agree with LoadFile + Annotate in every
// observable — classes, cell classes, probability vectors, dialect,
// provenance, degraded reasons — or both must fail with the same sentinel.
func assertStreamMatchesMemory(t *testing.T, m *Model, path string, res streamResult) {
	t.Helper()
	tbl, d, memErr := LoadFile(path, LoadOptions{})
	if memErr != nil || res.err != nil {
		if (memErr == nil) != (res.err == nil) {
			t.Errorf("%s: error mismatch: memory %v vs stream %v", path, memErr, res.err)
			return
		}
		for _, s := range []error{ErrTooLarge, ErrBadEncoding, ErrEmptyInput, ErrLineTooLong, ErrTooManyLines, ErrTooManyCells} {
			if errors.Is(memErr, s) != errors.Is(res.err, s) {
				t.Errorf("%s: sentinel mismatch: memory %v vs stream %v", path, memErr, res.err)
			}
		}
		return
	}
	ann := m.Annotate(tbl)
	if res.summary.Dialect != d {
		t.Errorf("%s: dialect: stream %v vs memory %v", path, res.summary.Dialect, d)
	}
	if len(res.lines) != tbl.Height() {
		t.Errorf("%s: %d streamed lines vs height %d", path, len(res.lines), tbl.Height())
		return
	}
	for i, la := range res.lines {
		if la.Row != i {
			t.Errorf("%s: line %d has Row %d", path, i, la.Row)
		}
		if la.Class != ann.Lines[i] {
			t.Errorf("%s: line %d class %v vs %v", path, i, la.Class, ann.Lines[i])
		}
		if !reflect.DeepEqual(la.Cells, append([]Class(nil), ann.Cells[i]...)) {
			t.Errorf("%s: line %d cells %v vs %v", path, i, la.Cells, ann.Cells[i])
		}
		if !reflect.DeepEqual(la.Probabilities, append([]float64(nil), ann.LineProbabilities[i]...)) {
			t.Errorf("%s: line %d probabilities differ", path, i)
		}
		if !reflect.DeepEqual(la.Fields, append([]string(nil), tbl.Row(i)...)) {
			t.Errorf("%s: line %d fields %q vs %q", path, i, la.Fields, tbl.Row(i))
		}
	}
	sp, mp := res.summary.Provenance, ann.Provenance
	if sp == nil || mp == nil {
		t.Errorf("%s: provenance missing: stream %v, memory %v", path, sp, mp)
		return
	}
	if !reflect.DeepEqual(*sp, *mp) {
		t.Errorf("%s: provenance:\n stream %+v\n memory %+v", path, *sp, *mp)
	}
	if !reflect.DeepEqual(res.summary.Degraded, ann.Degraded) {
		t.Errorf("%s: degraded: stream %v vs memory %v", path, res.summary.Degraded, ann.Degraded)
	}
}

// corpusFiles returns every committed testdata file (including hostile/).
func corpusFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.Walk("testdata", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && !strings.HasSuffix(path, ".json") && !strings.HasSuffix(path, ".labels") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("only %d corpus files found", len(files))
	}
	return files
}

func TestAnnotateStreamMatchesInMemoryCorpus(t *testing.T) {
	m := trainedModel(t)
	files := corpusFiles(t)
	for _, workers := range []int{1, runtime.NumCPU()} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			jobs := make(chan string)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for path := range jobs {
						res := streamFile(m, path, StreamOptions{})
						assertStreamMatchesMemory(t, m, path, res)
					}
				}()
			}
			for _, path := range files {
				jobs <- path
			}
			close(jobs)
			wg.Wait()
		})
	}
}

// TestAnnotateStreamMultiWindow forces the chunked path on a file large
// enough for several windows and checks the streaming invariants: every
// line emitted exactly once in order, deterministic across runs, and the
// seam rows agreeing with the in-memory annotation away from the seams.
func TestAnnotateStreamMultiWindow(t *testing.T) {
	m := trainedModel(t)
	var b strings.Builder
	b.WriteString("Region Report,,\n,,\n")
	b.WriteString("region,units,revenue\n")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b, "area-%03d,%d,%d.50\n", i, 10+i, 100*i)
	}
	b.WriteString("Total,,\nSource: synthetic,,\n")
	path := filepath.Join(t.TempDir(), "multiwindow.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	opts := StreamOptions{WindowLines: 64, MarginLines: 16}
	first := streamFile(m, path, opts)
	if first.err != nil {
		t.Fatal(first.err)
	}
	if first.summary.Windows < 3 {
		t.Fatalf("expected >= 3 windows, got %d", first.summary.Windows)
	}
	tbl, _, err := LoadFile(path, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.lines) != tbl.Height() {
		t.Fatalf("emitted %d lines, table height %d", len(first.lines), tbl.Height())
	}
	for i, la := range first.lines {
		if la.Row != i {
			t.Fatalf("line %d emitted with Row %d", i, la.Row)
		}
	}

	second := streamFile(m, path, opts)
	if second.err != nil {
		t.Fatal(second.err)
	}
	if !reflect.DeepEqual(first.lines, second.lines) {
		t.Error("streaming annotation is not deterministic across runs")
	}

	// Away from window seams the chunked features match the whole-file
	// ones closely; the body of this file is uniform data rows, so the
	// interior of every window must classify like the in-memory run.
	ann := m.Annotate(tbl)
	agree := 0
	for i := 5; i < len(first.lines)-5; i++ {
		if first.lines[i].Class == ann.Lines[i] {
			agree++
		}
	}
	total := len(first.lines) - 10
	if agree*10 < total*9 {
		t.Errorf("windowed classes agree on %d/%d interior lines; want >= 90%%", agree, total)
	}
}

func TestAnnotateStreamEmitErrorAborts(t *testing.T) {
	m := trainedModel(t)
	sentinel := errors.New("sink full")
	calls := 0
	_, err := m.AnnotateStream(context.Background(), strings.NewReader(sampleCSV), StreamOptions{}, func(LineAnnotation) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("emit error not propagated: %v", err)
	}
	if calls != 2 {
		t.Fatalf("emit called %d times after error", calls)
	}
}

func TestAnnotateStreamContextCancelled(t *testing.T) {
	m := trainedModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var b strings.Builder
	b.WriteString("a,b,c\n")
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&b, "%d,%d,%d\n", i, i, i)
	}
	_, err := m.AnnotateStream(ctx, strings.NewReader(b.String()), StreamOptions{WindowLines: 64, MarginLines: 8}, func(LineAnnotation) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream returned %v", err)
	}
}

func TestAnnotateStreamObsCounters(t *testing.T) {
	m := trainedModel(t)
	reg := NewObsRegistry()
	opts := StreamOptions{
		Load:        LoadOptions{Obs: NewObsHooks(reg)},
		WindowLines: 32,
		MarginLines: 8,
	}
	var b strings.Builder
	b.WriteString("h1,h2\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i, i*2)
	}
	sum, err := m.AnnotateStream(context.Background(), strings.NewReader(b.String()), opts, func(LineAnnotation) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["stream/files"] != 1 {
		t.Errorf("stream/files = %d", counters["stream/files"])
	}
	if counters["stream/windows"] != int64(sum.Windows) || sum.Windows < 2 {
		t.Errorf("stream/windows = %d, summary %d", counters["stream/windows"], sum.Windows)
	}
	if counters["stream/lines"] != int64(sum.Lines) || sum.Lines != 201 {
		t.Errorf("stream/lines = %d, summary %d", counters["stream/lines"], sum.Lines)
	}
	if counters["stream/rows_evicted"] == 0 {
		t.Error("no rows evicted on a multi-window stream")
	}
	if counters["ingest/files"] != 1 {
		t.Errorf("ingest/files = %d (scanner finalize not recorded)", counters["ingest/files"])
	}
}

// TestAnnotateStreamStrictCells mirrors the in-memory Strict cells guard.
func TestAnnotateStreamStrictCells(t *testing.T) {
	m := trainedModel(t)
	in := "a,b,c,d,e\n1,2,3,4,5\n"
	opts := StreamOptions{Load: LoadOptions{Ingest: IngestOptions{MaxCellsPerLine: 3, Strict: true}}}
	_, err := m.AnnotateStream(context.Background(), strings.NewReader(in), opts, func(LineAnnotation) error { return nil })
	if !errors.Is(err, ErrTooManyCells) {
		t.Fatalf("strict cell cap not enforced: %v", err)
	}
}

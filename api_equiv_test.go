package strudel

// Equivalence tests for the consolidated public API: the deprecated
// wrappers (Load, LoadFileOptions) must be observably identical to the new
// spellings (LoadReader, LoadFile), and every batch entry point — the
// AnnotateAll convenience wrapper, the context-first form, and the observed
// form — must produce byte-identical annotations on the real files under
// testdata/ at one worker and at every CPU. These tests are the migration
// safety net: the wrappers can only be dropped once nothing distinguishes
// them.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
)

// testdataPaths lists the real CSV fixtures.
func testdataPaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no CSV files under testdata/")
	}
	return paths
}

// TestDeprecatedLoadersMatchConsolidatedAPI proves the deprecated wrappers
// are pure renames: same table, same dialect, same provenance, file by file.
func TestDeprecatedLoadersMatchConsolidatedAPI(t *testing.T) {
	for _, p := range testdataPaths(t) {
		newT, newD, err := LoadFile(p, LoadOptions{})
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", p, err)
		}
		oldT, oldD, err := LoadFileOptions(p, LoadOptions{})
		if err != nil {
			t.Fatalf("LoadFileOptions(%s): %v", p, err)
		}
		if newD != oldD {
			t.Errorf("%s: LoadFile dialect %v, LoadFileOptions dialect %v", p, newD, oldD)
		}
		if !reflect.DeepEqual(newT, oldT) {
			t.Errorf("%s: LoadFile and LoadFileOptions built different tables", p)
		}

		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		readerT, readerD, err := LoadReader(bytes.NewReader(data), LoadOptions{})
		if err != nil {
			t.Fatalf("LoadReader(%s): %v", p, err)
		}
		loadT, loadD, err := Load(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("Load(%s): %v", p, err)
		}
		bytesT, bytesD, err := LoadBytes(data, LoadOptions{})
		if err != nil {
			t.Fatalf("LoadBytes(%s): %v", p, err)
		}
		if readerD != loadD || readerD != bytesD {
			t.Errorf("%s: dialects diverge: LoadReader %v, Load %v, LoadBytes %v", p, readerD, loadD, bytesD)
		}
		if !reflect.DeepEqual(readerT, loadT) {
			t.Errorf("%s: Load and LoadReader built different tables", p)
		}
		if !reflect.DeepEqual(readerT, bytesT) {
			t.Errorf("%s: LoadBytes and LoadReader built different tables", p)
		}
	}
}

// TestBatchEntryPointsEquivalent proves AnnotateAll, AnnotateAllContext,
// and the observed batch produce byte-identical annotations on testdata/ at
// Parallelism 1 and NumCPU. Passing live hooks must never perturb output —
// observation is strictly read-only with respect to the predictions.
func TestBatchEntryPointsEquivalent(t *testing.T) {
	var files []*Table
	for _, p := range testdataPaths(t) {
		tbl, _, err := LoadFile(p, LoadOptions{})
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		files = append(files, tbl)
	}
	m := trainedModel(t)
	serialize := func(anns []*Annotation) []byte {
		b, err := json.Marshal(anns)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	base := serialize(m.AnnotateAll(files, BatchOptions{Parallelism: 1}))
	for _, workers := range []int{1, runtime.NumCPU()} {
		wrapper := serialize(m.AnnotateAll(files, BatchOptions{Parallelism: workers}))
		if !bytes.Equal(base, wrapper) {
			t.Errorf("AnnotateAll with %d workers differs from the serial baseline", workers)
		}
		ctxForm := serialize(m.AnnotateAllContext(context.Background(), files, BatchOptions{Parallelism: workers}))
		if !bytes.Equal(base, ctxForm) {
			t.Errorf("AnnotateAllContext with %d workers differs from the serial baseline", workers)
		}
		observed := serialize(m.AnnotateAllContext(context.Background(), files, BatchOptions{
			Parallelism: workers,
			Obs:         NewObsHooks(NewObsRegistry()),
		}))
		if !bytes.Equal(base, observed) {
			t.Errorf("observed batch with %d workers differs from the serial baseline", workers)
		}
	}
}

// TestSaveJSONShimMatchesSave proves the deprecated SaveJSON entry point
// is byte-identical to the consolidated Save with FormatJSON, so callers
// can migrate without artifact churn.
func TestSaveJSONShimMatchesSave(t *testing.T) {
	m := trainedModel(t)
	var viaShim, viaSave bytes.Buffer
	if err := m.SaveJSON(&viaShim); err != nil { //nolint:staticcheck // deprecated shim under test
		t.Fatal(err)
	}
	if err := m.Save(&viaSave, FormatJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaShim.Bytes(), viaSave.Bytes()) {
		t.Error("SaveJSON shim output differs from Save(FormatJSON)")
	}
}

package strudel

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"strudel/internal/core"
	"strudel/internal/ml/forest"
)

// ErrInvalidModel is the root of the model-artifact error taxonomy: every
// structural defect LoadModel detects — undecodable JSON, missing forests,
// broken tree links, dimension mismatches, malformed leaf probabilities —
// satisfies errors.Is(err, ErrInvalidModel). See internal/ml/tree for the
// finer-grained sentinels and strudel-lint -models for the offline
// verifier over the same invariants.
var ErrInvalidModel = forest.ErrInvalidModel

// modelFile is the on-disk model format. The cell model's embedded line
// model is stored once, in the Line field, and re-attached on load.
type modelFile struct {
	Version int             `json:"version"`
	Line    *core.LineModel `json:"line"`
	Cell    *core.CellModel `json:"cell,omitempty"`
}

const modelVersion = 1

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	mf := modelFile{Version: modelVersion, Line: m.line}
	if m.cell != nil {
		cell := *m.cell
		cell.Line = nil // stored once via mf.Line
		mf.Cell = &cell
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&mf)
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel reads a model written by Save. Every embedded forest is
// validated against the structural invariants prediction relies on (see
// forest.Validate); a defective artifact fails here, wrapped in
// ErrInvalidModel, instead of mispredicting or panicking at first use.
func LoadModel(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("strudel: decode model: %w: %w", ErrInvalidModel, err)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("strudel: unsupported model version %d", mf.Version)
	}
	if mf.Line == nil {
		return nil, fmt.Errorf("strudel: corrupt model: %w: missing line model", ErrInvalidModel)
	}
	if err := validateModelForest("line", mf.Line.Forest); err != nil {
		return nil, err
	}
	m := &Model{line: mf.Line}
	if mf.Cell != nil {
		if err := validateModelForest("cell", mf.Cell.Forest); err != nil {
			return nil, err
		}
		if mf.Cell.Column != nil {
			if err := validateModelForest("cell.Column", mf.Cell.Column.Forest); err != nil {
				return nil, err
			}
		}
		mf.Cell.Line = mf.Line
		m.cell = mf.Cell
	}
	return m, nil
}

// validateModelForest checks one embedded forest, naming its location in
// the model file on failure.
func validateModelForest(path string, f *forest.Forest) error {
	if f == nil {
		return fmt.Errorf("strudel: corrupt model: %w: missing %s forest", ErrInvalidModel, path)
	}
	if err := f.Validate(); err != nil {
		return fmt.Errorf("strudel: corrupt model: %s: %w", path, err)
	}
	return nil
}

// LoadModelFile reads a model from a file.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := LoadModel(f)
	if err != nil {
		return nil, fmt.Errorf("strudel: %s: %w", path, err)
	}
	return m, nil
}

package strudel

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"strudel/internal/core"
	"strudel/internal/ml/forest"
)

// ErrInvalidModel is the root of the model-artifact error taxonomy: every
// structural defect LoadModel detects — undecodable JSON, missing forests,
// broken tree links, dimension mismatches, malformed leaf probabilities,
// and for binary artifacts bad magic/version/truncation — satisfies
// errors.Is(err, ErrInvalidModel). See internal/ml/tree for the
// finer-grained sentinels and strudel-lint -models for the offline
// verifier over the same invariants.
var ErrInvalidModel = forest.ErrInvalidModel

// Format selects a model serialization format for Model.Save.
type Format int

const (
	// FormatJSON is the interchange format: human-inspectable, stable,
	// what strudel-lint -models verifies offline.
	FormatJSON Format = iota
	// FormatBinary is the compact cold-start format: a magic+version
	// header, the JSON metadata header, then each forest as a flat binary
	// blob. Loading skips JSON tokenization of the tree payloads entirely;
	// the same structural verifier still runs on every load.
	FormatBinary
)

// String returns "json" or "binary".
func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatBinary:
		return "binary"
	}
	return fmt.Sprintf("format(%d)", int(f))
}

// ParseFormat converts a CLI-style format name ("json" or "binary") to a
// Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "json":
		return FormatJSON, nil
	case "binary":
		return FormatBinary, nil
	}
	return 0, fmt.Errorf("strudel: unknown model format %q (want json or binary)", s)
}

// modelFile is the on-disk model metadata. The cell model's embedded line
// model is stored once, in the Line field, and re-attached on load. In the
// binary format the same structure serves as the JSON header with every
// Forest field nil; the forests follow as binary blobs in line, cell,
// cell.Column order.
type modelFile struct {
	Version int             `json:"version"`
	Line    *core.LineModel `json:"line"`
	Cell    *core.CellModel `json:"cell,omitempty"`
}

const modelVersion = 1

// Save writes the model to w in the given format.
func (m *Model) Save(w io.Writer, format Format) error {
	switch format {
	case FormatJSON:
		return m.saveJSON(w)
	case FormatBinary:
		return m.saveBinary(w)
	}
	return fmt.Errorf("strudel: save: unknown model format %v", format)
}

// SaveJSON writes the model as JSON.
//
// Deprecated: Use Save with FormatJSON, which produces byte-identical
// output; this shim remains for callers of the pre-Format signature.
func (m *Model) SaveJSON(w io.Writer) error { return m.saveJSON(w) }

func (m *Model) saveJSON(w io.Writer) error {
	mf := modelFile{Version: modelVersion, Line: m.line}
	if m.cell != nil {
		cell := *m.cell
		cell.Line = nil // stored once via mf.Line
		mf.Cell = &cell
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&mf)
}

// SaveFile writes the model to a file in the given format.
func (m *Model) SaveFile(path string, format Format) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel reads a model written by Save in either format, auto-detecting
// binary artifacts by their leading magic (JSON cannot begin with those
// bytes). Every embedded forest is validated against the structural
// invariants prediction relies on (see forest.Validate); a defective
// artifact fails here, wrapped in ErrInvalidModel, instead of
// mispredicting or panicking at first use. The loaded model's forests are
// compiled eagerly into their flattened inference form, so the first
// annotation after LoadModel already runs the fast path.
func LoadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	if head, err := br.Peek(len(ModelMagic)); err == nil && bytes.Equal(head, ModelMagic[:]) {
		return loadModelBinary(br)
	}
	return loadModelJSON(br)
}

func loadModelJSON(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("strudel: decode model: %w: %w", ErrInvalidModel, err)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("strudel: unsupported model version %d", mf.Version)
	}
	if mf.Line == nil {
		return nil, fmt.Errorf("strudel: corrupt model: %w: missing line model", ErrInvalidModel)
	}
	if err := validateModelForest("line", mf.Line.Forest); err != nil {
		return nil, err
	}
	m := &Model{line: mf.Line}
	if mf.Cell != nil {
		if err := validateModelForest("cell", mf.Cell.Forest); err != nil {
			return nil, err
		}
		if mf.Cell.Column != nil {
			if err := validateModelForest("cell.Column", mf.Cell.Column.Forest); err != nil {
				return nil, err
			}
		}
		mf.Cell.Line = mf.Line
		m.cell = mf.Cell
	}
	if err := m.compile(); err != nil {
		return nil, err
	}
	return m, nil
}

// compile builds the flattened inference engines for every forest in the
// model. Train and LoadModel both end here, so a constructed Model always
// predicts through the compiled path.
func (m *Model) compile() error {
	if err := m.line.Compile(); err != nil {
		return fmt.Errorf("strudel: compile line model: %w", err)
	}
	if m.cell != nil {
		if err := m.cell.Compile(); err != nil {
			return fmt.Errorf("strudel: compile cell model: %w", err)
		}
	}
	return nil
}

// validateModelForest checks one embedded forest, naming its location in
// the model file on failure.
func validateModelForest(path string, f *forest.Forest) error {
	if f == nil {
		return fmt.Errorf("strudel: corrupt model: %w: missing %s forest", ErrInvalidModel, path)
	}
	if err := f.Validate(); err != nil {
		return fmt.Errorf("strudel: corrupt model: %s: %w", path, err)
	}
	return nil
}

// LoadModelFile reads a model from a file (either format; see LoadModel).
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := LoadModel(f)
	if err != nil {
		return nil, fmt.Errorf("strudel: %s: %w", path, err)
	}
	return m, nil
}

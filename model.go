package strudel

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"strudel/internal/core"
)

// modelFile is the on-disk model format. The cell model's embedded line
// model is stored once, in the Line field, and re-attached on load.
type modelFile struct {
	Version int             `json:"version"`
	Line    *core.LineModel `json:"line"`
	Cell    *core.CellModel `json:"cell,omitempty"`
}

const modelVersion = 1

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	mf := modelFile{Version: modelVersion, Line: m.line}
	if m.cell != nil {
		cell := *m.cell
		cell.Line = nil // stored once via mf.Line
		mf.Cell = &cell
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&mf)
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel reads a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("strudel: decode model: %w", err)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("strudel: unsupported model version %d", mf.Version)
	}
	if mf.Line == nil || mf.Line.Forest == nil || len(mf.Line.Forest.Trees) == 0 {
		return nil, errors.New("strudel: corrupt model: missing line forest")
	}
	m := &Model{line: mf.Line}
	if mf.Cell != nil {
		if mf.Cell.Forest == nil || len(mf.Cell.Forest.Trees) == 0 {
			return nil, errors.New("strudel: corrupt model: missing cell forest")
		}
		mf.Cell.Line = mf.Line
		m.cell = mf.Cell
	}
	return m, nil
}

// LoadModelFile reads a model from a file.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := LoadModel(f)
	if err != nil {
		return nil, fmt.Errorf("strudel: %s: %w", path, err)
	}
	return m, nil
}

// Package strudel detects the structure of verbose CSV files.
//
// A verbose CSV file mixes content of different purposes — titles, column
// headers, group labels, data, aggregates, footnotes — in one
// comma-separated grid. Strudel (EDBT 2021) classifies every line and every
// cell of such a file into one of six semantic classes using a multi-class
// random forest over content, contextual, and computational features.
//
// The typical flow is: load a file (dialect detection included), train a
// model on an annotated corpus or load a pre-trained one, and annotate:
//
//	tbl, _, err := strudel.LoadFile("report.csv")
//	if err != nil { ... }
//	model, err := strudel.LoadModelFile("strudel.model")
//	if err != nil { ... }
//	ann := model.Annotate(tbl)
//	for r, class := range ann.Lines { ... }
//
// Annotated training corpora can be synthesized with GenerateCorpus, which
// reproduces the structural statistics of the paper's six evaluation
// datasets.
package strudel

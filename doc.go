// Package strudel detects the structure of verbose CSV files.
//
// A verbose CSV file mixes content of different purposes — titles, column
// headers, group labels, data, aggregates, footnotes — in one
// comma-separated grid. Strudel (EDBT 2021) classifies every line and every
// cell of such a file into one of six semantic classes using a multi-class
// random forest over content, contextual, and computational features.
//
// The typical flow is: load a file (dialect detection included), train a
// model on an annotated corpus or load a pre-trained one, and annotate:
//
//	tbl, _, err := strudel.LoadFile("report.csv", strudel.LoadOptions{})
//	if err != nil { ... }
//	model, err := strudel.LoadModelFile("strudel.model")
//	if err != nil { ... }
//	ann := model.Annotate(tbl)
//	for r, class := range ann.Lines { ... }
//
// Annotated training corpora can be synthesized with GenerateCorpus, which
// reproduces the structural statistics of the paper's six evaluation
// datasets.
//
// The hardened loaders come in three symmetric forms — LoadBytes,
// LoadReader, LoadFile — all taking LoadOptions (encoding repair, resource
// guards, dialect confidence floor). Corpora are annotated in batch with
// AnnotateAllContext (AnnotateAll is its context.Background shorthand):
// per-file work fans out over a bounded pool with deterministic output,
// fault isolation, optional per-file timeouts, and cooperative
// cancellation.
//
// Files too large to hold in memory stream instead: AnnotateStream and
// AnnotateFileStream run the same ingest → dialect → classify pipeline over
// a sliding window of rows, emitting one LineAnnotation per line in order
// with O(window) live heap regardless of file size. Inputs that fit in a
// single window are annotated byte-identically to the in-memory path;
// larger inputs parse identically and classify window-locally. The strudel
// CLI exposes this as -stream (NDJSON output) with a size threshold that
// picks the mode automatically.
//
// Both layers accept optional observability hooks (LoadOptions.Obs,
// BatchOptions.Obs): counters, gauges, and latency histograms recorded
// into an ObsRegistry whose Snapshot renders deterministic JSON, with an
// opt-in debug server (ServeObsDebug) exposing expvar and pprof. Nil hooks
// — the default — cost one nil check per site. The deprecated Load and
// LoadFileOptions wrappers remain for source compatibility only.
package strudel

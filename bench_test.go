package strudel

// One benchmark per table and figure of the paper's evaluation section,
// driving the same code as `strudel-bench`. Each iteration regenerates the
// experiment at a reduced scale so `go test -bench=.` completes in minutes;
// run `strudel-bench -paper` for the full protocol. Micro-benchmarks for
// the hot paths (dialect detection, feature extraction, Algorithms 1 and 2,
// forest training and prediction) follow.

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"strudel/internal/datagen"
	"strudel/internal/experiments"
	"strudel/internal/features"
	"strudel/internal/ml/forest"
	"strudel/internal/table"
)

// benchConfig is the reduced experiment configuration used by benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.Default()
	cfg.Scale = 0.25
	cfg.Folds = 3
	cfg.Repeats = 1
	cfg.Trees = 20
	cfg.MaxCellsPerFile = 300
	return cfg
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Diversity regenerates Table 3 (cell-class diversity
// degrees per dataset).
func BenchmarkTable3Diversity(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4CorpusSummary regenerates Table 4 (corpus sizes).
func BenchmarkTable4CorpusSummary(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5ClassDistribution regenerates Table 5 (elements per class).
func BenchmarkTable5ClassDistribution(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6LineClassification regenerates Table 6 top: CRF^L vs
// Pytheas^L vs Strudel^L under file-grouped cross-validation.
func BenchmarkTable6LineClassification(b *testing.B) { runExperiment(b, "table6-line") }

// BenchmarkTable6CellClassification regenerates Table 6 bottom: Line^C vs
// RNN^C vs Strudel^C.
func BenchmarkTable6CellClassification(b *testing.B) { runExperiment(b, "table6-cell") }

// BenchmarkFigure3ConfusionMatrices regenerates Figure 3 (ensemble
// confusion matrices for Strudel^L and Strudel^C).
func BenchmarkFigure3ConfusionMatrices(b *testing.B) { runExperiment(b, "figure3") }

// BenchmarkTable7OutOfDomain regenerates Table 7 (train SAUS+CIUS+DeEx,
// test Troy).
func BenchmarkTable7OutOfDomain(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkTable8PlainText regenerates Table 8 (test on Mendeley
// plain-text files).
func BenchmarkTable8PlainText(b *testing.B) { runExperiment(b, "table8") }

// BenchmarkFigure4FeatureImportance regenerates Figure 4 (one-vs-rest
// permutation feature importance).
func BenchmarkFigure4FeatureImportance(b *testing.B) { runExperiment(b, "figure4") }

// BenchmarkScalability regenerates the Section 6.3.4 runtime-vs-size
// measurement.
func BenchmarkScalability(b *testing.B) { runExperiment(b, "scale") }

// BenchmarkAblationClassifiers regenerates the Section 6.1.2 backbone
// bake-off (NB / KNN / SVM / forest).
func BenchmarkAblationClassifiers(b *testing.B) { runExperiment(b, "ablate-clf") }

// BenchmarkAblationFeatureGroups regenerates the feature-group ablation
// (Strudel^L minus content / contextual / computational features).
func BenchmarkAblationFeatureGroups(b *testing.B) { runExperiment(b, "ablate-feat") }

// BenchmarkAblationAggregations measures Algorithm 2 under sum-only,
// sum+mean, and extended (min/max) aggregation sets.
func BenchmarkAblationAggregations(b *testing.B) { runExperiment(b, "ablate-agg") }

// BenchmarkAblationPostProcess compares Strudel^C with and without the
// Koci-style misclassification repair.
func BenchmarkAblationPostProcess(b *testing.B) { runExperiment(b, "ablate-post") }

// BenchmarkAblationColumns compares Strudel^C with and without
// column-probability features (the paper's future-work question iii).
func BenchmarkAblationColumns(b *testing.B) { runExperiment(b, "ablate-col") }

// BenchmarkActiveLearning runs the uncertainty-vs-random active learning
// comparison.
func BenchmarkActiveLearning(b *testing.B) { runExperiment(b, "active") }

// BenchmarkImportanceComparison contrasts Gini and permutation feature
// importance (the Section 6.3.5 methodological choice).
func BenchmarkImportanceComparison(b *testing.B) { runExperiment(b, "importance") }

// BenchmarkExtraction measures downstream relational extraction quality
// under predicted vs gold line classes.
func BenchmarkExtraction(b *testing.B) { runExperiment(b, "extraction") }

// BenchmarkHardCases reproduces the Section 6.3.6 difficult-case analysis
// from the ensemble confusion matrices.
func BenchmarkHardCases(b *testing.B) { runExperiment(b, "hardcases") }

// BenchmarkBoundary evaluates table-boundary discovery (Pytheas's native
// task) for both approaches.
func BenchmarkBoundary(b *testing.B) { runExperiment(b, "boundary") }

// BenchmarkAblationContext compares closest-non-empty-neighbor context
// against strict physical adjacency.
func BenchmarkAblationContext(b *testing.B) { runExperiment(b, "ablate-ctx") }

// --- micro-benchmarks ------------------------------------------------------

func benchTable() *table.Table {
	p := datagen.SAUS()
	p.Files = 1
	p.DataRows = [2]int{40, 40}
	return datagen.Generate(p).Files[0]
}

func BenchmarkDialectDetection(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("Region;Year;Count;Rate\n")
	for i := 0; i < 200; i++ {
		sb.WriteString("North;2019;1234;5,6\n")
	}
	text := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetectDialect(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLineFeatureExtraction(b *testing.B) {
	t := benchTable()
	opts := features.DefaultLineOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.LineFeatures(t, opts)
	}
}

func BenchmarkCellFeatureExtraction(b *testing.B) {
	t := benchTable()
	opts := features.DefaultCellOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.CellFeatures(t, nil, opts)
	}
}

func BenchmarkBlockSizeAlgorithm1(b *testing.B) {
	t := benchTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.BlockSizes(t)
	}
}

func BenchmarkDerivedDetectionAlgorithm2(b *testing.B) {
	t := benchTable()
	opts := features.DefaultDerivedOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.DetectDerived(t, opts)
	}
}

func BenchmarkForestTrain(b *testing.B) {
	files, err := GenerateCorpus("saus", 0.2)
	if err != nil {
		b.Fatal(err)
	}
	var X [][]float64
	var y []int
	lopts := features.DefaultLineOptions()
	for _, t := range files {
		fs := features.LineFeatures(t, lopts)
		for r := 0; r < t.Height(); r++ {
			if idx := t.LineClasses[r].Index(); idx >= 0 && !t.IsEmptyLine(r) {
				X = append(X, fs[r])
				y = append(y, idx)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forest.Fit(X, y, table.NumClasses, forest.Options{NumTrees: 20, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchModel trains a small model once for the annotate benchmarks.
func benchModel(b *testing.B) *Model {
	b.Helper()
	files, err := GenerateCorpus("saus", 0.2)
	if err != nil {
		b.Fatal(err)
	}
	m, err := Train(files, TrainOptions{Trees: 20, Seed: 1, MaxCellsPerFile: 300})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAnnotate measures the single-file annotate path. The single-pass
// pipeline shares one artifact between the line stage, the cell stage's
// LineClassProbability features, and the confidence report, so each line
// feature extraction and Strudel^L forest batch runs exactly once per call
// (previously three times).
func BenchmarkAnnotate(b *testing.B) {
	m := benchModel(b)
	t := benchTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Annotate(t)
	}
}

// BenchmarkAnnotateAll measures corpus-level batch annotation on a
// synthetic GovUK corpus, serial vs parallel, so the multi-core scaling of
// the per-file fan-out is visible in the bench trajectory.
func BenchmarkAnnotateAll(b *testing.B) {
	m := benchModel(b)
	corpus, err := GenerateCorpus("govuk", 0.25)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.AnnotateAll(corpus, BatchOptions{Parallelism: bc.workers})
			}
		})
	}
}

// BenchmarkAnnotateAllObs measures the observability overhead on the batch
// path: "nil" runs with hooks disabled (the nil-check-only contract — this
// must stay within 2% of BenchmarkAnnotateAll/serial) and "active" runs
// with a live registry recording every span, counter, and gauge. Compare
// the two with `make bench-obs`.
func BenchmarkAnnotateAllObs(b *testing.B) {
	m := benchModel(b)
	corpus, err := GenerateCorpus("govuk", 0.25)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name  string
		hooks *ObsHooks
	}{{"nil", nil}, {"active", NewObsHooks(NewObsRegistry())}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.AnnotateAll(corpus, BatchOptions{Parallelism: 1, Obs: bc.hooks})
			}
		})
	}
}

// BenchmarkAnnotateStream measures the bounded-memory streaming path end to
// end — incremental scan, split, sliding window, per-window classification —
// over a stacked multi-file input, reporting MB/s via SetBytes. Compare
// against BenchmarkAnnotateAll to see what the windowing costs.
func BenchmarkAnnotateStream(b *testing.B) {
	m := benchModel(b)
	var buf bytes.Buffer
	if _, _, err := datagen.WriteSized(&buf, datagen.Mendeley(), 4<<20); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := m.AnnotateStream(context.Background(), bytes.NewReader(data), StreamOptions{},
			func(LineAnnotation) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelLoad measures cold-start model deserialization for both
// serializations of the same trained model — the number strudel-serve pays
// on every restart. The binary container skips the JSON tree decode
// entirely, so its time is dominated by the structural re-validation and
// the eager forest compilation.
func BenchmarkModelLoad(b *testing.B) {
	m := benchModel(b)
	var jsonBuf, binBuf bytes.Buffer
	if err := m.Save(&jsonBuf, FormatJSON); err != nil {
		b.Fatal(err)
	}
	if err := m.Save(&binBuf, FormatBinary); err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		data []byte
	}{{"json", jsonBuf.Bytes()}, {"binary", binBuf.Bytes()}} {
		b.Run(bc.name, func(b *testing.B) {
			b.SetBytes(int64(len(bc.data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := LoadModel(bytes.NewReader(bc.data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

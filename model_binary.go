package strudel

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"strudel/internal/ml/forest"
)

// Binary model container. Layout (integers little-endian):
//
//	magic   "SBM1" (4 bytes)
//	u32     container version (binaryModelVersion)
//	u32     header length
//	bytes   header: the modelFile metadata as JSON with every Forest nil
//	blobs   each forest in forest binary encoding (self-delimiting),
//	        in fixed order: line, cell (if present), cell.Column (if
//	        present)
//
// Keeping the metadata as a JSON header means the container never needs a
// schema migration when model options grow a field; only the bulky tree
// payloads — the part JSON decodes slowly — move to the flat binary form.

// ModelMagic is the 4-byte prefix of a binary model artifact, the
// counterpart of forest.ForestMagic one container level up. Exported so
// offline tooling (strudel-lint -models) can sniff the encoding the same
// way LoadModel does.
var ModelMagic = [4]byte{'S', 'B', 'M', '1'}

const binaryModelVersion = 1

// maxModelHeaderLen bounds the declared JSON header size (the options
// metadata is tiny; forests live outside the header), so a hostile length
// field cannot force a giant allocation.
const maxModelHeaderLen = 1 << 20

func (m *Model) saveBinary(w io.Writer) error {
	mf := modelFile{Version: modelVersion}
	lineCopy := *m.line
	lineCopy.Forest = nil
	mf.Line = &lineCopy
	if m.cell != nil {
		cellCopy := *m.cell
		cellCopy.Forest = nil
		cellCopy.Line = nil // stored once via mf.Line
		if cellCopy.Column != nil {
			colCopy := *cellCopy.Column
			colCopy.Forest = nil
			cellCopy.Column = &colCopy
		}
		mf.Cell = &cellCopy
	}
	header, err := json.Marshal(&mf)
	if err != nil {
		return err
	}
	pre := make([]byte, 0, len(ModelMagic)+8+len(header))
	pre = append(pre, ModelMagic[:]...)
	pre = binary.LittleEndian.AppendUint32(pre, binaryModelVersion)
	pre = binary.LittleEndian.AppendUint32(pre, uint32(len(header)))
	pre = append(pre, header...)
	if _, err := w.Write(pre); err != nil {
		return err
	}
	if err := m.line.Forest.EncodeBinary(w); err != nil {
		return err
	}
	if m.cell != nil {
		if err := m.cell.Forest.EncodeBinary(w); err != nil {
			return err
		}
		if m.cell.Column != nil {
			if err := m.cell.Column.Forest.EncodeBinary(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func loadModelBinary(r io.Reader) (*Model, error) {
	var fixed [12]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("strudel: decode model: %w: %w", forest.ErrTruncated, err)
	}
	if [4]byte(fixed[:4]) != ModelMagic {
		return nil, fmt.Errorf("strudel: decode model: %w", forest.ErrBadMagic)
	}
	if v := binary.LittleEndian.Uint32(fixed[4:8]); v != binaryModelVersion {
		return nil, fmt.Errorf("strudel: decode model: %w: got container version %d", forest.ErrBadVersion, v)
	}
	headerLen := binary.LittleEndian.Uint32(fixed[8:12])
	if headerLen > maxModelHeaderLen {
		return nil, fmt.Errorf("strudel: decode model: %w: %d-byte header exceeds the %d limit",
			ErrInvalidModel, headerLen, maxModelHeaderLen)
	}
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("strudel: decode model: %w: %w", forest.ErrTruncated, err)
	}
	var mf modelFile
	if err := json.Unmarshal(header, &mf); err != nil {
		return nil, fmt.Errorf("strudel: decode model header: %w: %w", ErrInvalidModel, err)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("strudel: unsupported model version %d", mf.Version)
	}
	if mf.Line == nil {
		return nil, fmt.Errorf("strudel: corrupt model: %w: missing line model", ErrInvalidModel)
	}
	blobs, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("strudel: decode model: %w", err)
	}
	if mf.Line.Forest, blobs, err = decodeModelForest("line", blobs); err != nil {
		return nil, err
	}
	m := &Model{line: mf.Line}
	if mf.Cell != nil {
		if mf.Cell.Forest, blobs, err = decodeModelForest("cell", blobs); err != nil {
			return nil, err
		}
		if mf.Cell.Column != nil {
			if mf.Cell.Column.Forest, blobs, err = decodeModelForest("cell.Column", blobs); err != nil {
				return nil, err
			}
		}
		mf.Cell.Line = mf.Line
		m.cell = mf.Cell
	}
	if len(blobs) != 0 {
		return nil, fmt.Errorf("strudel: decode model: %w: %d trailing bytes", ErrInvalidModel, len(blobs))
	}
	if err := m.compile(); err != nil {
		return nil, err
	}
	return m, nil
}

// decodeModelForest decodes (and structurally validates) one forest blob,
// naming its location in the model file on failure.
func decodeModelForest(path string, blobs []byte) (*forest.Forest, []byte, error) {
	f, rest, err := forest.DecodeBinaryBytes(blobs)
	if err != nil {
		return nil, nil, fmt.Errorf("strudel: corrupt model: %s: %w", path, err)
	}
	return f, rest, nil
}

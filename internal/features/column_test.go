package features

import (
	"testing"

	"strudel/internal/table"
	"strudel/internal/types"
)

func columnTestTable() *table.Table {
	return table.FromRows([][]string{
		{"Item", "2019", "2020", "Total"},
		{"Manufacturing", "10", "20", "30"},
		{"Retail", "5", "15", "20"},
		{"", "3", "7", "10"},
	})
}

func TestColumnFeaturesShapes(t *testing.T) {
	tb := columnTestTable()
	fs := ColumnFeatures(tb, DefaultCellOptions())
	if len(fs) != tb.Width() {
		t.Fatalf("%d vectors for width %d", len(fs), tb.Width())
	}
	for c, f := range fs {
		if len(f) != NumColumnFeatures {
			t.Fatalf("column %d has %d features, want %d", c, len(f), NumColumnFeatures)
		}
	}
}

func TestColumnFeatureSemantics(t *testing.T) {
	tb := columnTestTable()
	fs := ColumnFeatures(tb, DefaultCellOptions())
	idx := func(name string) int { return featureIndex(t, ColumnFeatureNames, name) }

	// Column 0 ("Item" labels) has one empty cell out of four.
	if got := fs[0][idx("ColumnEmptyCellRatio")]; got != 0.25 {
		t.Errorf("empty ratio col 0 = %v, want 0.25", got)
	}
	// Column 3 carries the aggregation keyword "Total".
	if fs[3][idx("ColumnHasAggKeyword")] != 1 || fs[1][idx("ColumnHasAggKeyword")] != 0 {
		t.Error("ColumnHasAggKeyword wrong")
	}
	// Column 3's numeric cells are all derived (row sums anchored by the
	// header keyword).
	if got := fs[3][idx("DerivedColumnCoverage")]; got != 1 {
		t.Errorf("derived coverage col 3 = %v, want 1", got)
	}
	if got := fs[1][idx("DerivedColumnCoverage")]; got != 0 {
		t.Errorf("derived coverage col 1 = %v, want 0", got)
	}
	// Column positions span [0, 1].
	if fs[0][idx("ColumnPosition")] != 0 || fs[3][idx("ColumnPosition")] != 1 {
		t.Error("ColumnPosition wrong")
	}
	// Value columns: header is numeric (a year), so no type mismatch; the
	// label column's first cell is a string over strings (no mismatch).
	if got := fs[0][idx("HeaderTypeMismatch")]; got != 0 {
		t.Errorf("label column mismatch = %v, want 0", got)
	}
	// Dominant type of value columns is Int.
	if got := fs[1][idx("DominantType")]; got != float64(types.Int) {
		t.Errorf("dominant type col 1 = %v, want int", got)
	}
	if got := fs[1][idx("TypeHomogeneity")]; got != 1 {
		t.Errorf("homogeneity col 1 = %v, want 1", got)
	}
}

func TestColumnFeaturesHeaderMismatch(t *testing.T) {
	tb := table.FromRows([][]string{
		{"Count"},
		{"5"},
		{"7"},
	})
	fs := ColumnFeatures(tb, DefaultCellOptions())
	i := featureIndex(t, ColumnFeatureNames, "HeaderTypeMismatch")
	if fs[0][i] != 1 {
		t.Error("string header over int column should flag a mismatch")
	}
	j := featureIndex(t, ColumnFeatureNames, "FirstCellIsString")
	if fs[0][j] != 1 {
		t.Error("FirstCellIsString wrong")
	}
}

func TestColumnFeaturesEmptyTable(t *testing.T) {
	fs := ColumnFeatures(table.New(0, 0), DefaultCellOptions())
	if len(fs) != 0 {
		t.Errorf("len = %d", len(fs))
	}
}

package features

import (
	"strudel/internal/table"
	"strudel/internal/types"
)

// Shared memoizes the per-table precomputation that the line, cell, and
// column extractors all rebuild from scratch when called directly: the cell
// type grid, the Algorithm 1 block-size grid, and the Algorithm 2 derived-
// cell grids (keyed by their options, which differ between stage configs).
// The full pipeline runs two or three extractors over the same table, and
// these grids are its single most expensive shared input — profiling the
// annotation hot path shows type inference and derived-cell detection
// duplicated across stages costing more than the classifier walks
// themselves.
//
// Each extractor is available as a method on Shared; the free functions
// (LineFeatures, CellFeatures, ColumnFeatures) remain as one-shot wrappers
// that build a private memo. Like pipeline.Artifacts — which caches one
// Shared per table — a Shared value is NOT safe for concurrent use.
type Shared struct {
	t        *table.Table
	typeGrid [][]types.Type
	blocks   [][]float64
	derived  map[DerivedOptions][][]bool
}

// NewShared returns an empty memo for t. Grids are computed lazily on
// first use.
func NewShared(t *table.Table) *Shared { return &Shared{t: t} }

// Table returns the table the memo describes.
func (s *Shared) Table() *table.Table { return s.t }

// TypeGrid returns the inferred type of every cell, computed once.
func (s *Shared) TypeGrid() [][]types.Type {
	if s.typeGrid == nil {
		h := s.t.Height()
		s.typeGrid = make([][]types.Type, h)
		for r := 0; r < h; r++ {
			s.typeGrid[r] = types.RowTypes(s.t.Row(r))
		}
	}
	return s.typeGrid
}

// BlockSizes returns the Algorithm 1 block-size grid, computed once.
func (s *Shared) BlockSizes() [][]float64 {
	if s.blocks == nil {
		s.blocks = BlockSizes(s.t)
	}
	return s.blocks
}

// Derived returns the Algorithm 2 derived-cell grid for opts. Results are
// cached per distinct option set, so stages configured identically (the
// default) share one detection pass.
func (s *Shared) Derived(opts DerivedOptions) [][]bool {
	if d, ok := s.derived[opts]; ok {
		return d
	}
	d := DetectDerived(s.t, opts)
	if s.derived == nil {
		s.derived = make(map[DerivedOptions][][]bool, 1)
	}
	s.derived[opts] = d
	return d
}

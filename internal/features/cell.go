package features

import (
	"strudel/internal/table"
	"strudel/internal/types"
)

// CellFeatureNames lists the Strudel^C features of Table 2, in vector order.
// The LineClassProbability feature contributes six components (one per
// class) and the neighbor profile contributes eight value-length and eight
// data-type features, one per surrounding cell.
var CellFeatureNames = buildCellFeatureNames()

// NumCellFeatures is the length of a cell feature vector.
var NumCellFeatures = len(CellFeatureNames)

// neighborOffsets enumerates the eight surrounding cells in reading order.
var neighborOffsets = [8][2]int{
	{-1, -1}, {-1, 0}, {-1, 1},
	{0, -1}, {0, 1},
	{1, -1}, {1, 0}, {1, 1},
}

var neighborNames = [8]string{"NW", "N", "NE", "W", "E", "SW", "S", "SE"}

func buildCellFeatureNames() []string {
	names := []string{
		// Content features.
		"ValueLength",
		"DataType",
		"HasDerivedKeywords",
		"RowHasDerivedKeywords",
		"ColumnHasDerivedKeywords",
		"RowPosition",
		"ColumnPosition",
	}
	for _, c := range table.Classes {
		names = append(names, "LineClassProbability_"+c.String())
	}
	names = append(names,
		// Contextual features.
		"IsEmptyRowBefore",
		"IsEmptyRowAfter",
		"IsEmptyColumnLeft",
		"IsEmptyColumnRight",
		"RowEmptyCellRatio",
		"ColumnEmptyCellRatio",
		"BlockSize",
	)
	for _, n := range neighborNames {
		names = append(names, "NeighborValueLength_"+n)
	}
	for _, n := range neighborNames {
		names = append(names, "NeighborDataType_"+n)
	}
	// Computational feature.
	names = append(names, "IsAggregation")
	return names
}

// Feature-group index sets for the cell ablation experiments.
var (
	CellContentFeatures       = indexRange(0, 7)
	CellLineProbFeatures      = indexRange(7, 13)
	CellContextualFeatures    = indexRange(13, 13+7+16)
	CellComputationalFeatures = []int{NumCellFeatures - 1}
)

func indexRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// CellOptions configures cell feature extraction.
type CellOptions struct {
	// Derived configures the Algorithm 2 run backing IsAggregation.
	Derived DerivedOptions
}

// DefaultCellOptions returns the paper's configuration.
func DefaultCellOptions() CellOptions {
	return CellOptions{Derived: DefaultDerivedOptions()}
}

// CellFeatures extracts one feature vector per cell of t. lineProbs, when
// non-nil, must hold one six-component class probability vector per line
// (the Strudel^L output, Section 5.4); nil leaves the LineClassProbability
// components at zero. The result is indexed [row][col][feature].
func CellFeatures(t *table.Table, lineProbs [][]float64, opts CellOptions) [][][]float64 {
	return NewShared(t).CellFeatures(lineProbs, opts)
}

// CellFeatures is the memoized form: the type grid, block sizes, and
// derived-cell grid come from the shared per-table cache.
func (s *Shared) CellFeatures(lineProbs [][]float64, opts CellOptions) [][][]float64 {
	t := s.t
	h, w := t.Height(), t.Width()
	out := make([][][]float64, h)
	for r := range out {
		out[r] = make([][]float64, w)
		backing := make([]float64, w*NumCellFeatures)
		for c := range out[r] {
			out[r][c], backing = backing[:NumCellFeatures:NumCellFeatures], backing[NumCellFeatures:]
		}
	}
	if h == 0 || w == 0 {
		return out
	}

	// Per-table precomputation shared across cells (and, via the memo,
	// across extractors).
	typeGrid := s.TypeGrid()
	maxLen := 1
	for r := 0; r < h; r++ {
		for _, v := range t.Row(r) {
			if len(v) > maxLen {
				maxLen = len(v)
			}
		}
	}
	blocks := s.BlockSizes()
	derived := s.Derived(opts.Derived)

	rowHasKw := make([]bool, h)
	colHasKw := make([]bool, w)
	rowEmpty := make([]float64, h)
	colEmptyCount := make([]int, w)
	for r := 0; r < h; r++ {
		e := 0
		for c := 0; c < w; c++ {
			if typeGrid[r][c] == types.Empty {
				e++
				colEmptyCount[c]++
				continue
			}
			if ContainsAggregationWord(t.Cell(r, c)) {
				rowHasKw[r] = true
				colHasKw[c] = true
			}
		}
		rowEmpty[r] = float64(e) / float64(w)
	}
	colEmpty := make([]float64, w)
	colAllEmpty := make([]bool, w)
	for c := 0; c < w; c++ {
		colEmpty[c] = float64(colEmptyCount[c]) / float64(h)
		colAllEmpty[c] = colEmptyCount[c] == h
	}
	lineEmpty := make([]bool, h)
	for r := 0; r < h; r++ {
		lineEmpty[r] = t.IsEmptyLine(r)
	}

	emptyRowAt := func(r int) float64 {
		if r < 0 || r >= h || lineEmpty[r] {
			return 1
		}
		return 0
	}
	emptyColAt := func(c int) float64 {
		if c < 0 || c >= w || colAllEmpty[c] {
			return 1
		}
		return 0
	}

	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			f := out[r][c]
			i := 0
			// Content features.
			f[i] = float64(len(t.Cell(r, c))) / float64(maxLen)
			i++
			f[i] = float64(typeGrid[r][c])
			i++
			if typeGrid[r][c] != types.Empty && ContainsAggregationWord(t.Cell(r, c)) {
				f[i] = 1
			}
			i++
			if rowHasKw[r] {
				f[i] = 1
			}
			i++
			if colHasKw[c] {
				f[i] = 1
			}
			i++
			if h > 1 {
				f[i] = float64(r) / float64(h-1)
			}
			i++
			if w > 1 {
				f[i] = float64(c) / float64(w-1)
			}
			i++
			// Line class probabilities.
			if lineProbs != nil {
				copy(f[i:i+table.NumClasses], lineProbs[r])
			}
			i += table.NumClasses
			// Contextual features.
			f[i] = emptyRowAt(r - 1)
			i++
			f[i] = emptyRowAt(r + 1)
			i++
			f[i] = emptyColAt(c - 1)
			i++
			f[i] = emptyColAt(c + 1)
			i++
			f[i] = rowEmpty[r]
			i++
			f[i] = colEmpty[c]
			i++
			f[i] = blocks[r][c]
			i++
			// Neighbor profile: value lengths then data types, with -1 for
			// cells beyond the margins (Section 5.3).
			for _, d := range neighborOffsets {
				nr, nc := r+d[0], c+d[1]
				if !t.InBounds(nr, nc) {
					f[i] = -1
				} else {
					f[i] = float64(len(t.Cell(nr, nc))) / float64(maxLen)
				}
				i++
			}
			for _, d := range neighborOffsets {
				nr, nc := r+d[0], c+d[1]
				if !t.InBounds(nr, nc) {
					f[i] = -1
				} else {
					f[i] = float64(typeGrid[nr][nc])
				}
				i++
			}
			// Computational feature.
			if derived[r][c] {
				f[i] = 1
			}
		}
	}
	return out
}

package features

import (
	"math"

	"strudel/internal/table"
	"strudel/internal/types"
)

// DerivedOptions configures the derived cell detection of Algorithm 2.
type DerivedOptions struct {
	// Delta is the aggregation slack d: a candidate matches when the
	// accumulated aggregate is within Delta (relatively, with an absolute
	// floor of Delta itself) of the candidate's value. Paper default 0.1.
	Delta float64
	// Coverage is the threshold c: the fraction of candidates that must
	// match before the whole candidate set is marked derived. Paper
	// default 0.5.
	Coverage float64
	// MaxSpan bounds how far from the anchor the accumulation walks. The
	// paper walks to the table edge; 0 keeps that behavior. A positive
	// value trades a little recall for speed on very tall files.
	MaxSpan int
	// DetectMean also tests the mean aggregation function alongside sum
	// (observation iii in Section 5.5: sum and mean dominate).
	DetectMean bool
	// DetectMinMax additionally tests min and max aggregations — the
	// "recognizing more aggregation functions" extension the paper's
	// conclusion proposes as future work.
	DetectMinMax bool
}

// DefaultDerivedOptions returns the configuration used in the paper's
// experiments (d = 0.1, c = 0.5, sum and mean).
func DefaultDerivedOptions() DerivedOptions {
	return DerivedOptions{Delta: 0.1, Coverage: 0.5, DetectMean: true}
}

// ExtendedDerivedOptions enables every supported aggregation function
// (sum, mean, min, max).
func ExtendedDerivedOptions() DerivedOptions {
	o := DefaultDerivedOptions()
	o.DetectMinMax = true
	return o
}

// DetectDerived implements Algorithm 2: it returns a boolean grid marking
// the cells detected as derived (aggregations of neighboring numeric cells).
//
// Candidates are restricted to numeric cells sharing a row or column with an
// anchoring cell — a cell containing an aggregation keyword — and are tested
// against running sums (and optionally means) accumulated upwards,
// downwards, leftwards, and rightwards from the candidate line.
func DetectDerived(t *table.Table, opts DerivedOptions) [][]bool {
	h, w := t.Height(), t.Width()
	out := make([][]bool, h)
	backing := make([]bool, h*w)
	for r := range out {
		out[r], backing = backing[:w:w], backing[w:]
	}
	if h == 0 || w == 0 {
		return out
	}

	// Pre-parse the numeric grid once.
	vals := make([][]float64, h)
	isNum := make([][]bool, h)
	vb := make([]float64, h*w)
	nb := make([]bool, h*w)
	for r := range vals {
		vals[r], vb = vb[:w:w], vb[w:]
		isNum[r], nb = nb[:w:w], nb[w:]
		for c := 0; c < w; c++ {
			if v, ok := types.ParseNumber(t.Cell(r, c)); ok {
				vals[r][c], isNum[r][c] = v, true
			}
		}
	}

	// Line 2: getAnchoringCells — cells containing aggregation keywords.
	type pos struct{ r, c int }
	anchors := make([]pos, 0, h)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			if !t.IsEmptyCell(r, c) && ContainsAggregationWord(t.Cell(r, c)) {
				anchors = append(anchors, pos{r, c})
			}
		}
	}
	if len(anchors) == 0 {
		return out
	}

	// Rows and columns already expanded, to avoid re-walking per anchor.
	doneRow := make([]bool, h)
	doneCol := make([]bool, w)

	for _, a := range anchors {
		if !doneRow[a.r] {
			doneRow[a.r] = true
			detectRowCandidates(t, vals, isNum, a.r, opts, out)
		}
		if !doneCol[a.c] {
			doneCol[a.c] = true
			detectColCandidates(t, vals, isNum, a.c, opts, out)
		}
	}
	return out
}

// detectRowCandidates tests the numeric cells of row ia against vertical
// aggregations accumulated upwards and then downwards (lines 9-19 of
// Algorithm 2 and its mirrored repeat).
func detectRowCandidates(t *table.Table, vals [][]float64, isNum [][]bool, ia int, opts DerivedOptions, out [][]bool) {
	w := t.Width()
	cand := make([]float64, 0, w)
	cols := make([]int, 0, w)
	for c := 0; c < w; c++ {
		if isNum[ia][c] {
			cand = append(cand, vals[ia][c])
			cols = append(cols, c)
		}
	}
	if len(cand) == 0 {
		return
	}
	mark := func() {
		for _, c := range cols {
			out[ia][c] = true
		}
	}
	// One probe closure serves both directions; dir is rebound per pass so
	// the literal is allocated once, not per loop iteration.
	var dir int
	probe := func(step int, row []float64, present []bool) bool {
		r := ia + dir*step
		if r < 0 || r >= t.Height() {
			return false
		}
		for k, c := range cols {
			row[k], present[k] = vals[r][c], isNum[r][c]
		}
		return true
	}
	for _, d := range [2]int{-1, +1} {
		dir = d
		if scanAgg(len(cand), opts, probe, cand) {
			mark()
			break
		}
	}
}

// detectColCandidates mirrors detectRowCandidates for the numeric cells of
// column ja, accumulating leftwards then rightwards (lines 20-30).
func detectColCandidates(t *table.Table, vals [][]float64, isNum [][]bool, ja int, opts DerivedOptions, out [][]bool) {
	h := t.Height()
	cand := make([]float64, 0, h)
	rows := make([]int, 0, h)
	for r := 0; r < h; r++ {
		if isNum[r][ja] {
			cand = append(cand, vals[r][ja])
			rows = append(rows, r)
		}
	}
	if len(cand) == 0 {
		return
	}
	mark := func() {
		for _, r := range rows {
			out[r][ja] = true
		}
	}
	var dir int
	probe := func(step int, col []float64, present []bool) bool {
		c := ja + dir*step
		if c < 0 || c >= t.Width() {
			return false
		}
		for k, r := range rows {
			col[k], present[k] = vals[r][c], isNum[r][c]
		}
		return true
	}
	for _, d := range [2]int{-1, +1} {
		dir = d
		if scanAgg(len(cand), opts, probe, cand) {
			mark()
			break
		}
	}
}

// scanAgg drives the accumulation loop shared by the four directions. The
// fetch callback fills the values present at distance step (one slot per
// candidate) and reports whether the walk is still in bounds. scanAgg
// reports whether at any step the coverage of close-enough candidates
// exceeded the threshold under any enabled aggregation function.
func scanAgg(n int, opts DerivedOptions, fetch func(step int, vals []float64, present []bool) bool, cand []float64) bool {
	sum := make([]float64, n)
	mins := make([]float64, n)
	maxs := make([]float64, n)
	seen := make([]bool, n)
	row := make([]float64, n)
	present := make([]bool, n)
	for step := 1; ; step++ {
		if opts.MaxSpan > 0 && step > opts.MaxSpan {
			return false
		}
		if !fetch(step, row, present) {
			return false
		}
		for k := 0; k < n; k++ {
			if !present[k] {
				continue
			}
			sum[k] += row[k]
			if !seen[k] || row[k] < mins[k] {
				mins[k] = row[k]
			}
			if !seen[k] || row[k] > maxs[k] {
				maxs[k] = row[k]
			}
			seen[k] = true
		}
		if step < 2 {
			// A one-line "aggregation" is just a copy of the adjacent line;
			// requiring at least two contributing lines avoids marking
			// every repeated value as derived.
			continue
		}
		if coverage(cand, sum, 1, opts.Delta) > opts.Coverage {
			return true
		}
		if opts.DetectMean && coverage(cand, sum, float64(step), opts.Delta) > opts.Coverage {
			return true
		}
		if opts.DetectMinMax {
			if coverage(cand, mins, 1, opts.Delta) > opts.Coverage && distinct(mins, sum) {
				return true
			}
			if coverage(cand, maxs, 1, opts.Delta) > opts.Coverage && distinct(maxs, sum) {
				return true
			}
		}
	}
}

// distinct reports whether the aggregate vector differs from the running
// sum — a min/max that coincides with the sum carries no extra evidence
// (it happens when only one line contributed so far).
func distinct(agg, sum []float64) bool {
	for k := range agg {
		//lint:ignore floatcmp deliberate exact identity test: an aggregate equal to the running sum bit-for-bit carries no evidence
		if agg[k] != sum[k] {
			return true
		}
	}
	return false
}

// coverage returns the fraction of candidates whose value is within delta of
// sum[k]/div. Closeness is relative with an absolute floor: a candidate v
// matches when |v - agg| <= delta * max(1, |v|).
func coverage(cand, sum []float64, div, delta float64) float64 {
	match := 0
	for k, v := range cand {
		agg := sum[k] / div
		if math.Abs(v-agg) <= delta*math.Max(1, math.Abs(v)) {
			match++
		}
	}
	return float64(match) / float64(len(cand))
}

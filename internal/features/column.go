package features

import (
	"strudel/internal/table"
	"strudel/internal/types"
)

// ColumnFeatureNames lists the column classification features, in vector
// order. Column classification is the future-work direction the paper's
// conclusion raises ("whether column classification can help boost the
// classification quality"); these features mirror the line features of
// Table 1, transposed to the vertical axis.
var ColumnFeatureNames = []string{
	"ColumnEmptyCellRatio",
	"ColumnNumericRatio",
	"ColumnStringRatio",
	"ColumnPosition",
	"DominantType",
	"TypeHomogeneity",
	"ColumnHasAggKeyword",
	"DistinctValueRatio",
	"MeanValueLength",
	"DerivedColumnCoverage",
	"FirstCellIsString",
	"HeaderTypeMismatch",
}

// NumColumnFeatures is the length of a column feature vector.
var NumColumnFeatures = len(ColumnFeatureNames)

// ColumnFeatures extracts one feature vector per column of t.
func ColumnFeatures(t *table.Table, opts CellOptions) [][]float64 {
	return NewShared(t).ColumnFeatures(opts)
}

// ColumnFeatures is the memoized form: the type grid and derived-cell grid
// come from the shared per-table cache.
func (s *Shared) ColumnFeatures(opts CellOptions) [][]float64 {
	t := s.t
	h, w := t.Height(), t.Width()
	out := make([][]float64, w)
	backing := make([]float64, w*NumColumnFeatures)
	for c := range out {
		out[c], backing = backing[:NumColumnFeatures:NumColumnFeatures], backing[NumColumnFeatures:]
	}
	if h == 0 || w == 0 {
		return out
	}

	typeGrid := s.TypeGrid()
	maxLen := 1
	for r := 0; r < h; r++ {
		for _, v := range t.Row(r) {
			if len(v) > maxLen {
				maxLen = len(v)
			}
		}
	}
	derived := s.Derived(opts.Derived)

	for c := 0; c < w; c++ {
		f := out[c]
		var typeCounts [types.NumTypes]int
		empty, numeric, str := 0, 0, 0
		hasAgg := false
		lenSum, nonEmpty := 0, 0
		distinct := map[string]struct{}{}
		numDerived, numNumeric := 0, 0
		firstType := types.Empty
		for r := 0; r < h; r++ {
			ty := typeGrid[r][c]
			typeCounts[ty]++
			switch {
			case ty == types.Empty:
				empty++
				continue
			case ty.IsNumeric():
				numeric++
				numNumeric++
				if derived[r][c] {
					numDerived++
				}
			default:
				str++
			}
			if firstType == types.Empty {
				firstType = ty
			}
			nonEmpty++
			v := t.Cell(r, c)
			lenSum += len(v)
			distinct[v] = struct{}{}
			if !hasAgg && ContainsAggregationWord(v) {
				hasAgg = true
			}
		}
		fh := float64(h)
		f[0] = float64(empty) / fh
		f[1] = float64(numeric) / fh
		f[2] = float64(str) / fh
		if w > 1 {
			f[3] = float64(c) / float64(w-1)
		}
		// Dominant non-empty type and its share.
		domType, domCount := types.Empty, 0
		for ty := types.Int; ty <= types.String; ty++ {
			if typeCounts[ty] > domCount {
				domType, domCount = ty, typeCounts[ty]
			}
		}
		f[4] = float64(domType)
		if nonEmpty > 0 {
			f[5] = float64(domCount) / float64(nonEmpty)
			f[7] = float64(len(distinct)) / float64(nonEmpty)
			f[8] = float64(lenSum) / float64(nonEmpty) / float64(maxLen)
		}
		if hasAgg {
			f[6] = 1
		}
		if numNumeric > 0 {
			f[9] = float64(numDerived) / float64(numNumeric)
		}
		if firstType == types.String || firstType == types.Date {
			f[10] = 1
		}
		// HeaderTypeMismatch: the first non-empty cell's type differs from
		// the dominant type of the rest (a header sitting on the column).
		if firstType != types.Empty && domType != types.Empty && firstType != domType {
			f[11] = 1
		}
	}
	return out
}

package features

import "strudel/internal/table"

// BlockSizes implements Algorithm 1 of the paper: for every non-empty cell,
// the size of the connected component of non-empty cells containing it
// (4-adjacency), normalized to [0, 1] by the size of the file (height x
// width). Empty cells get 0.
//
// The returned grid has the same dimensions as t. The algorithm visits every
// non-empty cell exactly once and checks its four neighbors, so it runs in
// O(n) for n non-empty cells.
func BlockSizes(t *table.Table) [][]float64 {
	h, w := t.Height(), t.Width()
	out := make([][]float64, h)
	backing := make([]float64, h*w)
	for r := range out {
		out[r], backing = backing[:w:w], backing[w:]
	}
	if h == 0 || w == 0 {
		return out
	}

	visited := make([]bool, h*w)
	idx := func(r, c int) int { return r*w + c }
	norm := float64(h * w)

	// A component can cover the whole grid, so one up-front allocation
	// serves every flood-fill below.
	stack := make([][2]int, 0, h*w)
	block := make([][2]int, 0, h*w)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			if visited[idx(r, c)] || t.IsEmptyCell(r, c) {
				continue
			}
			// Flood-fill the connected component starting at (r, c).
			stack = append(stack[:0], [2]int{r, c})
			block = block[:0]
			visited[idx(r, c)] = true
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				block = append(block, cur)
				cr, cc := cur[0], cur[1]
				for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					nr, nc := cr+d[0], cc+d[1]
					if nr < 0 || nr >= h || nc < 0 || nc >= w {
						continue
					}
					if visited[idx(nr, nc)] || t.IsEmptyCell(nr, nc) {
						continue
					}
					visited[idx(nr, nc)] = true
					stack = append(stack, [2]int{nr, nc})
				}
			}
			bs := float64(len(block)) / norm
			for _, cell := range block {
				out[cell[0]][cell[1]] = bs
			}
		}
	}
	return out
}

package features

import (
	"math"

	"strudel/internal/table"
	"strudel/internal/types"
)

// LineFeatureNames lists the Strudel^L features of Table 1, in vector order.
// Contextual features marked '*' in the paper appear twice, once for the
// line above and once for the line below.
var LineFeatureNames = []string{
	// Content features.
	"EmptyCellRatio",
	"DiscountedCumulativeGain",
	"AggregationWord",
	"WordAmount",
	"NumericalCellRatio",
	"StringCellRatio",
	"LinePosition",
	// Contextual features (above, below).
	"DataTypeMatchingAbove",
	"DataTypeMatchingBelow",
	"EmptyNeighboringLinesAbove",
	"EmptyNeighboringLinesBelow",
	"CellLengthDifferenceAbove",
	"CellLengthDifferenceBelow",
	// Computational feature.
	"DerivedCoverage",
}

// NumLineFeatures is the length of a line feature vector.
var NumLineFeatures = len(LineFeatureNames)

// Indices of the three feature groups within a line feature vector, used by
// the feature-group ablation experiment.
var (
	LineContentFeatures       = []int{0, 1, 2, 3, 4, 5, 6}
	LineContextualFeatures    = []int{7, 8, 9, 10, 11, 12}
	LineComputationalFeatures = []int{13}
)

// LineOptions configures line feature extraction.
type LineOptions struct {
	// Derived configures the Algorithm 2 run backing DerivedCoverage.
	Derived DerivedOptions
	// NeighborWindow is the number of lines inspected above/below for the
	// EmptyNeighboringLines feature. The paper uses five.
	NeighborWindow int
	// StrictAdjacency makes the contextual features compare against the
	// physically adjacent lines instead of the closest non-empty ones.
	// The paper argues for skipping empty separator lines (Section 4,
	// DataTypeMatching); this switch exists to ablate that choice.
	StrictAdjacency bool
}

// DefaultLineOptions returns the paper's configuration.
func DefaultLineOptions() LineOptions {
	return LineOptions{Derived: DefaultDerivedOptions(), NeighborWindow: 5}
}

// LineFeatures extracts one feature vector per line of t (including empty
// lines, whose vectors are still well defined; callers typically classify
// only non-empty lines). The returned matrix has t.Height() rows of
// NumLineFeatures columns.
func LineFeatures(t *table.Table, opts LineOptions) [][]float64 {
	return NewShared(t).LineFeatures(opts)
}

// LineFeatures is the memoized form: the type grid and derived-cell grid
// come from the shared per-table cache instead of being recomputed.
func (s *Shared) LineFeatures(opts LineOptions) [][]float64 {
	t := s.t
	h, w := t.Height(), t.Width()
	out := make([][]float64, h)
	backing := make([]float64, h*NumLineFeatures)
	for r := range out {
		out[r], backing = backing[:NumLineFeatures:NumLineFeatures], backing[NumLineFeatures:]
	}
	if h == 0 || w == 0 {
		return out
	}

	typeGrid := s.TypeGrid()
	derived := s.Derived(opts.Derived)

	wordCounts := make([]float64, h)
	maxWords := 0.0
	minWords := math.Inf(1)
	for r := 0; r < h; r++ {
		n := 0.0
		for _, v := range t.Row(r) {
			n += float64(WordCount(v))
		}
		wordCounts[r] = n
		if n > maxWords {
			maxWords = n
		}
		if n < minWords {
			minWords = n
		}
	}

	window := opts.NeighborWindow
	if window <= 0 {
		window = 5
	}

	for r := 0; r < h; r++ {
		f := out[r]
		empty, numeric, str := 0, 0, 0
		hasAgg := false
		for c := 0; c < w; c++ {
			switch typeGrid[r][c] {
			case types.Empty:
				empty++
			case types.Int, types.Float:
				numeric++
			case types.String, types.Date:
				str++
			}
			if !hasAgg && typeGrid[r][c] != types.Empty && ContainsAggregationWord(t.Cell(r, c)) {
				hasAgg = true
			}
		}
		fw := float64(w)
		f[0] = float64(empty) / fw
		f[1] = dcg(typeGrid[r])
		if hasAgg {
			f[2] = 1
		}
		if maxWords > minWords {
			f[3] = (wordCounts[r] - minWords) / (maxWords - minWords)
		}
		f[4] = float64(numeric) / fw
		f[5] = float64(str) / fw
		if h > 1 {
			f[6] = float64(r) / float64(h-1)
		}

		above := t.ClosestNonEmptyLineAbove(r)
		below := t.ClosestNonEmptyLineBelow(r)
		if opts.StrictAdjacency {
			above, below = -1, -1
			if r > 0 {
				above = r - 1
			}
			if r < h-1 {
				below = r + 1
			}
		}
		f[7] = dataTypeMatching(typeGrid, r, above)
		f[8] = dataTypeMatching(typeGrid, r, below)
		f[9] = emptyNeighborRatio(t, r, -1, window)
		f[10] = emptyNeighborRatio(t, r, +1, window)
		f[11] = cellLengthDifference(t, r, above)
		f[12] = cellLengthDifference(t, r, below)

		nNum, nDer := 0, 0
		for c := 0; c < w; c++ {
			if typeGrid[r][c].IsNumeric() {
				nNum++
				if derived[r][c] {
					nDer++
				}
			}
		}
		if nNum > 0 {
			f[13] = float64(nDer) / float64(nNum)
		}
	}
	return out
}

// dcg computes the normalized discounted cumulative gain over the
// emptiness vector of a line: non-empty cells contribute 1/log2(pos+1),
// normalized by the all-non-empty ideal so the value lies in [0, 1]. Left
// positions weigh more, modeling left-to-right layout (Section 4).
func dcg(rowTypes []types.Type) float64 {
	if len(rowTypes) == 0 {
		return 0 // ideal would be zero only for a zero-width row
	}
	sum, ideal := 0.0, 0.0
	for i, ty := range rowTypes {
		gain := 1 / math.Log2(float64(i)+2)
		ideal += gain
		if ty != types.Empty {
			sum += gain
		}
	}
	return sum / ideal
}

// dataTypeMatching is the fraction of columns whose data type in line r
// equals the type in the closest non-empty neighbor line (index other, or
// -1 when none exists, which yields 0).
func dataTypeMatching(typeGrid [][]types.Type, r, other int) float64 {
	if other < 0 {
		return 0
	}
	w := len(typeGrid[r])
	if w == 0 {
		return 0
	}
	match := 0
	for c := 0; c < w; c++ {
		if typeGrid[r][c] == typeGrid[other][c] {
			match++
		}
	}
	return float64(match) / float64(w)
}

// emptyNeighborRatio is the fraction of empty lines among the `window` lines
// in direction dir from r. Lines beyond the file boundary count as empty,
// matching the intuition that the first and last lines have maximally
// "empty" surroundings.
func emptyNeighborRatio(t *table.Table, r, dir, window int) float64 {
	empty := 0
	for i := 1; i <= window; i++ {
		if t.IsEmptyLine(r + dir*i) {
			empty++
		}
	}
	return float64(empty) / float64(window)
}

// lengthBuckets are the histogram bucket upper bounds (inclusive) used by
// cellLengthDifference. The last bucket is open-ended.
var lengthBuckets = []int{0, 2, 5, 10, 20, 50}

// cellLengthDifference is the Bhattacharyya-based histogram difference
// between the cell-length sequences of line r and its closest non-empty
// neighbor (index other). Result in [0, 1]: 0 for identical length
// distributions, 1 for disjoint ones. Missing neighbors yield 1 (maximally
// different).
func cellLengthDifference(t *table.Table, r, other int) float64 {
	if other < 0 {
		return 1
	}
	p := lengthHistogram(t.Row(r))
	q := lengthHistogram(t.Row(other))
	bc := 0.0
	for i := range p {
		bc += math.Sqrt(p[i] * q[i])
	}
	if bc > 1 {
		bc = 1
	}
	return math.Sqrt(1 - bc) // Hellinger form of the Bhattacharyya difference
}

func lengthHistogram(row []string) []float64 {
	hist := make([]float64, len(lengthBuckets)+1)
	n := 0.0
	for _, v := range row {
		if table.IsEmpty(v) {
			continue
		}
		l := len(v)
		b := len(lengthBuckets)
		for i, ub := range lengthBuckets {
			if l <= ub {
				b = i
				break
			}
		}
		hist[b]++
		n++
	}
	if n > 0 {
		for i := range hist {
			hist[i] /= n
		}
	}
	return hist
}

package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"strudel/internal/table"
)

func TestContainsAggregationWord(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"Total", true},
		{"TOTAL", true},
		{"Grand total:", true},
		{"Sale/Manufacturing: total", true},
		{"Average income", true},
		{"avg", true},
		{"Mean value", true},
		{"median", true},
		{"All persons", true},
		{"totally", false}, // substring, not a word
		{"summary", false},
		{"overall", false}, // 'all' embedded in a word
		{"", false},
		{"12345", false},
	}
	for _, c := range cases {
		if got := ContainsAggregationWord(c.in); got != c.want {
			t.Errorf("ContainsAggregationWord(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWordCount(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"hello", 1},
		{"hello world", 2},
		{"a-b c_d", 4}, // '-' and '_' break words
		{"  x  ", 1},
		{"12 34", 2},
		{"Crime in the U.S. 2016", 6},
	}
	for _, c := range cases {
		if got := WordCount(c.in); got != c.want {
			t.Errorf("WordCount(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBlockSizes(t *testing.T) {
	// Two components: a 2x2 block (size 4) and a lone cell (size 1) in a
	// 3x4 grid (normalizer 12).
	tb := table.FromRows([][]string{
		{"a", "b", "", ""},
		{"c", "d", "", ""},
		{"", "", "", "x"},
	})
	bs := BlockSizes(tb)
	if got, want := bs[0][0], 4.0/12.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("block at (0,0) = %v, want %v", got, want)
	}
	if bs[0][0] != bs[1][1] || bs[0][0] != bs[0][1] || bs[0][0] != bs[1][0] {
		t.Error("all cells of a component must share one block size")
	}
	if got, want := bs[2][3], 1.0/12.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("lone cell block = %v, want %v", got, want)
	}
	if bs[0][2] != 0 {
		t.Error("empty cells must have block size 0")
	}
}

func TestBlockSizesDiagonalNotConnected(t *testing.T) {
	tb := table.FromRows([][]string{
		{"a", ""},
		{"", "b"},
	})
	bs := BlockSizes(tb)
	if bs[0][0] != 0.25 || bs[1][1] != 0.25 {
		t.Errorf("diagonal cells must be separate components: %v %v", bs[0][0], bs[1][1])
	}
}

func TestBlockSizesCoverAllNonEmpty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w := rng.Intn(8)+1, rng.Intn(8)+1
		tb := table.New(h, w)
		for r := 0; r < h; r++ {
			for c := 0; c < w; c++ {
				if rng.Intn(2) == 0 {
					tb.SetCell(r, c, "v")
				}
			}
		}
		bs := BlockSizes(tb)
		for r := 0; r < h; r++ {
			for c := 0; c < w; c++ {
				if tb.IsEmptyCell(r, c) != (bs[r][c] == 0) {
					return false
				}
				if bs[r][c] < 0 || bs[r][c] > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// sumTable builds a small table whose last line is a keyword-anchored sum of
// the data lines above it.
func sumTable() *table.Table {
	return table.FromRows([][]string{
		{"Item", "Q1", "Q2"},
		{"apples", "10", "20"},
		{"pears", "30", "40"},
		{"plums", "5", "5"},
		{"Total", "45", "65"},
	})
}

func TestDetectDerivedSumRow(t *testing.T) {
	tb := sumTable()
	d := DetectDerived(tb, DefaultDerivedOptions())
	if !d[4][1] || !d[4][2] {
		t.Fatalf("sum cells not detected: %v", d[4])
	}
	// Data cells must not be marked.
	for r := 1; r <= 3; r++ {
		for c := 1; c <= 2; c++ {
			if d[r][c] {
				t.Errorf("data cell (%d,%d) wrongly marked derived", r, c)
			}
		}
	}
}

func TestDetectDerivedMeanRow(t *testing.T) {
	tb := table.FromRows([][]string{
		{"Item", "V"},
		{"a", "10"},
		{"b", "20"},
		{"c", "30"},
		{"Average", "20"},
	})
	d := DetectDerived(tb, DefaultDerivedOptions())
	if !d[4][1] {
		t.Error("mean cell not detected")
	}
	opts := DefaultDerivedOptions()
	opts.DetectMean = false
	d = DetectDerived(tb, opts)
	if d[4][1] {
		t.Error("mean detection should be off")
	}
}

func TestDetectDerivedColumn(t *testing.T) {
	// The rightmost column sums the two value columns; the keyword sits in
	// the header of that column, anchoring column candidates.
	tb := table.FromRows([][]string{
		{"Item", "Q1", "Q2", "Total"},
		{"a", "10", "20", "30"},
		{"b", "5", "5", "10"},
		{"c", "1", "2", "3"},
	})
	d := DetectDerived(tb, DefaultDerivedOptions())
	for r := 1; r <= 3; r++ {
		if !d[r][3] {
			t.Errorf("derived column cell (%d,3) not detected", r)
		}
	}
}

func TestDetectDerivedNoAnchorsNoDetection(t *testing.T) {
	tb := table.FromRows([][]string{
		{"a", "10", "20"},
		{"b", "30", "40"},
		{"c", "40", "60"}, // a sum line, but unanchored
	})
	d := DetectDerived(tb, DefaultDerivedOptions())
	for r := range d {
		for c := range d[r] {
			if d[r][c] {
				t.Errorf("unanchored cell (%d,%d) marked derived", r, c)
			}
		}
	}
}

func TestDetectDerivedRespectsDelta(t *testing.T) {
	tb := table.FromRows([][]string{
		{"x", "100"},
		{"y", "100"},
		{"Total", "900"}, // way off: 100+100 = 200
	})
	d := DetectDerived(tb, DefaultDerivedOptions())
	if d[2][1] {
		t.Error("badly mismatched total must not be derived")
	}
}

func TestDetectDerivedMaxSpan(t *testing.T) {
	rows := [][]string{{"hdr", "v"}}
	for i := 0; i < 10; i++ {
		rows = append(rows, []string{"d", "1"})
	}
	rows = append(rows, []string{"Total", "10"})
	tb := table.FromRows(rows)
	opts := DefaultDerivedOptions()
	opts.MaxSpan = 3 // too short to accumulate the full sum
	d := DetectDerived(tb, opts)
	if d[11][1] {
		t.Error("MaxSpan should prevent detection")
	}
	opts.MaxSpan = 0
	d = DetectDerived(tb, opts)
	if !d[11][1] {
		t.Error("unbounded span should detect the sum")
	}
}

func TestLineFeaturesShapeAndRanges(t *testing.T) {
	tb := sumTable()
	fs := LineFeatures(tb, DefaultLineOptions())
	if len(fs) != tb.Height() {
		t.Fatalf("rows = %d, want %d", len(fs), tb.Height())
	}
	for r, f := range fs {
		if len(f) != NumLineFeatures {
			t.Fatalf("line %d: %d features, want %d", r, len(f), NumLineFeatures)
		}
		for i, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("line %d feature %s is %v", r, LineFeatureNames[i], v)
			}
			if v < -1 || v > 1+1e-9 {
				t.Errorf("line %d feature %s = %v out of range", r, LineFeatureNames[i], v)
			}
		}
	}
}

func TestLineFeatureSemantics(t *testing.T) {
	tb := table.FromRows([][]string{
		{"Report Title", "", "", ""},
		{"", "", "", ""},
		{"col1", "col2", "col3", "col4"},
		{"a", "1", "2", "3"},
		{"b", "4", "5", "6"},
		{"Total", "5", "7", "9"},
	})
	fs := LineFeatures(tb, DefaultLineOptions())
	idx := featureIndex(t, LineFeatureNames, "EmptyCellRatio")
	if got := fs[0][idx]; got != 0.75 {
		t.Errorf("EmptyCellRatio(line 0) = %v, want 0.75", got)
	}
	idx = featureIndex(t, LineFeatureNames, "AggregationWord")
	if fs[5][idx] != 1 || fs[3][idx] != 0 {
		t.Error("AggregationWord wrong")
	}
	idx = featureIndex(t, LineFeatureNames, "LinePosition")
	if fs[0][idx] != 0 || fs[5][idx] != 1 {
		t.Error("LinePosition must span [0,1]")
	}
	idx = featureIndex(t, LineFeatureNames, "NumericalCellRatio")
	if got := fs[3][idx]; got != 0.75 {
		t.Errorf("NumericalCellRatio(line 3) = %v, want 0.75", got)
	}
	idx = featureIndex(t, LineFeatureNames, "DerivedCoverage")
	if got := fs[5][idx]; got != 1 {
		t.Errorf("DerivedCoverage(total line) = %v, want 1", got)
	}
	if got := fs[3][idx]; got != 0 {
		t.Errorf("DerivedCoverage(data line) = %v, want 0", got)
	}
	// Data lines adjacent to data lines have high type matching.
	idx = featureIndex(t, LineFeatureNames, "DataTypeMatchingBelow")
	if got := fs[3][idx]; got != 1 {
		t.Errorf("DataTypeMatchingBelow(line 3) = %v, want 1", got)
	}
	// DataTypeMatching skips the empty separator line 1.
	idx = featureIndex(t, LineFeatureNames, "DataTypeMatchingAbove")
	if got := fs[2][idx]; got != 0.25 {
		t.Errorf("DataTypeMatchingAbove(line 2) = %v, want 0.25 (vs line 0)", got)
	}
}

func TestDCGFavorsLeft(t *testing.T) {
	left := table.FromRows([][]string{{"x", "", "", ""}})
	right := table.FromRows([][]string{{"", "", "", "x"}})
	fl := LineFeatures(left, DefaultLineOptions())
	fr := LineFeatures(right, DefaultLineOptions())
	i := featureIndex(nil, LineFeatureNames, "DiscountedCumulativeGain")
	if fl[0][i] <= fr[0][i] {
		t.Errorf("DCG(left)=%v should exceed DCG(right)=%v", fl[0][i], fr[0][i])
	}
}

func TestCellLengthDifferenceIdenticalLines(t *testing.T) {
	tb := table.FromRows([][]string{
		{"aa", "bb", "cc"},
		{"dd", "ee", "ff"},
	})
	fs := LineFeatures(tb, DefaultLineOptions())
	i := featureIndex(nil, LineFeatureNames, "CellLengthDifferenceBelow")
	if got := fs[0][i]; got > 1e-9 {
		t.Errorf("identical length profiles should differ by 0, got %v", got)
	}
}

func TestCellFeaturesShape(t *testing.T) {
	tb := sumTable()
	fs := CellFeatures(tb, nil, DefaultCellOptions())
	if len(fs) != tb.Height() || len(fs[0]) != tb.Width() {
		t.Fatalf("shape = %dx%d", len(fs), len(fs[0]))
	}
	for r := range fs {
		for c := range fs[r] {
			if len(fs[r][c]) != NumCellFeatures {
				t.Fatalf("cell (%d,%d): %d features, want %d", r, c, len(fs[r][c]), NumCellFeatures)
			}
			for i, v := range fs[r][c] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("cell (%d,%d) feature %s is %v", r, c, CellFeatureNames[i], v)
				}
			}
		}
	}
}

func TestCellFeatureSemantics(t *testing.T) {
	tb := sumTable()
	probs := make([][]float64, tb.Height())
	for r := range probs {
		probs[r] = []float64{0.1, 0.2, 0.3, 0.1, 0.2, 0.1}
	}
	fs := CellFeatures(tb, probs, DefaultCellOptions())

	i := featureIndex(t, CellFeatureNames, "IsAggregation")
	if fs[4][1][i] != 1 {
		t.Error("total cell should have IsAggregation=1")
	}
	if fs[1][1][i] != 0 {
		t.Error("data cell should have IsAggregation=0")
	}

	i = featureIndex(t, CellFeatureNames, "HasDerivedKeywords")
	if fs[4][0][i] != 1 || fs[1][0][i] != 0 {
		t.Error("HasDerivedKeywords wrong")
	}
	i = featureIndex(t, CellFeatureNames, "RowHasDerivedKeywords")
	if fs[4][2][i] != 1 || fs[1][2][i] != 0 {
		t.Error("RowHasDerivedKeywords wrong")
	}
	i = featureIndex(t, CellFeatureNames, "ColumnHasDerivedKeywords")
	if fs[1][0][i] != 1 { // column 0 contains "Total"
		t.Error("ColumnHasDerivedKeywords wrong")
	}

	i = featureIndex(t, CellFeatureNames, "LineClassProbability_group")
	if fs[2][1][i] != 0.3 {
		t.Errorf("line prob feature = %v, want 0.3", fs[2][1][i])
	}

	i = featureIndex(t, CellFeatureNames, "RowPosition")
	if fs[0][0][i] != 0 || fs[4][0][i] != 1 {
		t.Error("RowPosition wrong")
	}
	i = featureIndex(t, CellFeatureNames, "ColumnPosition")
	if fs[0][0][i] != 0 || fs[0][2][i] != 1 {
		t.Error("ColumnPosition wrong")
	}

	// Corner cell: NW neighbor does not exist -> -1 sentinel.
	i = featureIndex(t, CellFeatureNames, "NeighborValueLength_NW")
	if fs[0][0][i] != -1 {
		t.Errorf("missing neighbor sentinel = %v, want -1", fs[0][0][i])
	}
	i = featureIndex(t, CellFeatureNames, "NeighborDataType_E")
	if fs[0][0][i] < 0 {
		t.Error("existing neighbor should have a real type")
	}
}

func TestCellFeaturesNilProbsAreZero(t *testing.T) {
	tb := sumTable()
	fs := CellFeatures(tb, nil, DefaultCellOptions())
	i := featureIndex(t, CellFeatureNames, "LineClassProbability_metadata")
	for r := range fs {
		for c := range fs[r] {
			if fs[r][c][i] != 0 {
				t.Fatal("nil lineProbs must leave probability features at 0")
			}
		}
	}
}

func TestFeatureGroupIndicesPartitionLine(t *testing.T) {
	seen := map[int]bool{}
	for _, set := range [][]int{LineContentFeatures, LineContextualFeatures, LineComputationalFeatures} {
		for _, i := range set {
			if seen[i] {
				t.Fatalf("feature index %d in two groups", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != NumLineFeatures {
		t.Errorf("groups cover %d features, want %d", len(seen), NumLineFeatures)
	}
}

func TestFeatureGroupIndicesPartitionCell(t *testing.T) {
	seen := map[int]bool{}
	for _, set := range [][]int{CellContentFeatures, CellLineProbFeatures, CellContextualFeatures, CellComputationalFeatures} {
		for _, i := range set {
			if seen[i] {
				t.Fatalf("feature index %d in two groups", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != NumCellFeatures {
		t.Errorf("groups cover %d features, want %d", len(seen), NumCellFeatures)
	}
}

func featureIndex(t *testing.T, names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	if t != nil {
		t.Fatalf("feature %q not found", name)
	}
	panic("feature not found: " + name)
}

func TestDetectDerivedMinMax(t *testing.T) {
	tb := table.FromRows([][]string{
		{"Item", "V"},
		{"a", "10"},
		{"b", "25"},
		{"c", "40"},
		{"All, maximum", "40"},
	})
	// Not detected under the default sum+mean options...
	d := DetectDerived(tb, DefaultDerivedOptions())
	if d[4][1] {
		t.Error("max cell detected without DetectMinMax")
	}
	// ...but detected with the extended aggregation set.
	d = DetectDerived(tb, ExtendedDerivedOptions())
	if !d[4][1] {
		t.Error("max cell not detected with DetectMinMax")
	}
}

func TestDetectDerivedMin(t *testing.T) {
	tb := table.FromRows([][]string{
		{"Item", "A", "B"},
		{"x", "10", "7"},
		{"y", "25", "3"},
		{"z", "40", "9"},
		{"All, minimum", "10", "3"},
	})
	d := DetectDerived(tb, ExtendedDerivedOptions())
	if !d[4][1] || !d[4][2] {
		t.Errorf("min cells not detected: %v", d[4])
	}
}

// Package features extracts the Strudel feature sets: the line features of
// Table 1 and the cell features of Table 2, including the BlockSize
// computation (Algorithm 1) and the derived cell detection (Algorithm 2).
package features

import "strings"

// AggregationKeywords is the pre-made dictionary of terms associated with
// aggregation in tables (Section 4, AggregationWord feature). Matching is
// case-insensitive on word boundaries.
var AggregationKeywords = []string{
	"total", "all", "sum", "average", "avg", "mean", "median",
}

// ContainsAggregationWord reports whether v contains any aggregation keyword
// as a whole word, case-insensitively.
func ContainsAggregationWord(v string) bool {
	lower := strings.ToLower(v)
	for _, kw := range AggregationKeywords {
		idx := 0
		for {
			i := strings.Index(lower[idx:], kw)
			if i < 0 {
				break
			}
			start := idx + i
			end := start + len(kw)
			beforeOK := start == 0 || !isWordChar(lower[start-1])
			afterOK := end == len(lower) || !isWordChar(lower[end])
			if beforeOK && afterOK {
				return true
			}
			idx = start + 1
		}
	}
	return false
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// WordCount returns the number of words in v, where a word is a maximal
// sequence of alphanumeric characters (Section 4, WordAmount feature).
func WordCount(v string) int {
	n := 0
	in := false
	for i := 0; i < len(v); i++ {
		if isWordChar(v[i]) {
			if !in {
				n++
				in = true
			}
		} else {
			in = false
		}
	}
	return n
}

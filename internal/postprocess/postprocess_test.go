package postprocess

import (
	"testing"

	"strudel/internal/table"
)

// grid builds a table and a prediction grid from parallel specs: the cell
// values and the one-letter class codes (m h g d v n for metadata..notes,
// '.' for empty).
func grid(t *testing.T, values [][]string, codes []string) (*table.Table, [][]table.Class) {
	t.Helper()
	tb := table.FromRows(values)
	pred := make([][]table.Class, tb.Height())
	for r := range pred {
		pred[r] = make([]table.Class, tb.Width())
		for c, code := range codes[r] {
			pred[r][c] = classOf(t, byte(code))
		}
	}
	return tb, pred
}

func classOf(t *testing.T, code byte) table.Class {
	switch code {
	case 'm':
		return table.ClassMetadata
	case 'h':
		return table.ClassHeader
	case 'g':
		return table.ClassGroup
	case 'd':
		return table.ClassData
	case 'v':
		return table.ClassDerived
	case 'n':
		return table.ClassNotes
	case '.':
		return table.ClassEmpty
	}
	t.Fatalf("bad class code %c", code)
	return table.ClassEmpty
}

func TestIsolatedCellRepaired(t *testing.T) {
	tb, pred := grid(t,
		[][]string{
			{"1", "2", "3"},
			{"4", "5", "6"},
			{"7", "8", "9"},
		},
		[]string{"ddd", "dnd", "ddd"}, // lone notes cell in a data block
	)
	out := Repair(tb, pred, Options{})
	if out[1][1] != table.ClassData {
		t.Errorf("isolated cell = %v, want data", out[1][1])
	}
	// Input untouched.
	if pred[1][1] != table.ClassNotes {
		t.Error("Repair must not modify its input")
	}
}

func TestSingletonDissenterAdoptsMajority(t *testing.T) {
	tb, pred := grid(t,
		[][]string{{"a", "1", "2", "3", "4"}},
		[]string{"ddhdd"},
	)
	out := Repair(tb, pred, Options{})
	if out[0][2] != table.ClassData {
		t.Errorf("dissenter = %v, want data", out[0][2])
	}
}

func TestLeadingGroupCellSurvives(t *testing.T) {
	// The paper's expected arrangement: group label leading derived cells.
	tb, pred := grid(t,
		[][]string{{"Total", "10", "20", "30"}},
		[]string{"gvvv"},
	)
	out := Repair(tb, pred, Options{})
	if out[0][0] != table.ClassGroup {
		t.Errorf("leading group repaired to %v; must survive", out[0][0])
	}
}

func TestStrandedHeaderBecomesData(t *testing.T) {
	tb, pred := grid(t,
		[][]string{
			{"h1", "h2"},
			{"1", "2"},
			{"2001", "x"},
			{"3", "4"},
		},
		[]string{"hh", "dd", "hd", "dd"},
	)
	out := Repair(tb, pred, Options{})
	if out[2][0] != table.ClassData {
		t.Errorf("stranded header = %v, want data", out[2][0])
	}
	if out[0][0] != table.ClassHeader {
		t.Errorf("real header = %v, must stay header", out[0][0])
	}
}

func TestInteriorDerivedBecomesData(t *testing.T) {
	tb, pred := grid(t,
		[][]string{
			{"1", "2", "3"},
			{"4", "5", "6"},
			{"7", "8", "9"},
		},
		[]string{"ddd", "dvd", "ddd"},
	)
	out := Repair(tb, pred, Options{})
	if out[1][1] != table.ClassData {
		t.Errorf("interior derived = %v, want data", out[1][1])
	}
}

func TestMarginDerivedSurvives(t *testing.T) {
	tb, pred := grid(t,
		[][]string{
			{"a", "1", "2"},
			{"b", "3", "4"},
			{"Total", "4", "6"},
		},
		[]string{"ddd", "ddd", "gvv"},
	)
	out := Repair(tb, pred, Options{})
	if out[2][1] != table.ClassDerived || out[2][2] != table.ClassDerived {
		t.Errorf("margin derived repaired away: %v", out[2])
	}
}

func TestFloatingGroupBecomesLineMajority(t *testing.T) {
	tb, pred := grid(t,
		[][]string{{"a", "b", "c", "d"}},
		[]string{"ddgd"},
	)
	out := Repair(tb, pred, Options{})
	if out[0][2] != table.ClassData {
		t.Errorf("floating group = %v, want data", out[0][2])
	}
}

func TestGroupAfterEmptySurvives(t *testing.T) {
	// A group label separated by an empty cell is a legitimate layout.
	tb, pred := grid(t,
		[][]string{{"x", "", "Possession:", ""}},
		[]string{"d.g."},
	)
	out := Repair(tb, pred, Options{})
	if out[0][2] != table.ClassGroup {
		t.Errorf("group after empty cell = %v, must survive", out[0][2])
	}
}

func TestEmptyTableNoPanic(t *testing.T) {
	tb := table.New(0, 0)
	out := Repair(tb, nil, Options{})
	if len(out) != 0 {
		t.Errorf("len = %d", len(out))
	}
}

func TestConvergesWithinIterations(t *testing.T) {
	tb, pred := grid(t,
		[][]string{
			{"1", "2", "3", "4"},
			{"5", "6", "7", "8"},
		},
		[]string{"dndv", "hddd"},
	)
	a := Repair(tb, pred, Options{MaxIterations: 3})
	b := Repair(tb, pred, Options{MaxIterations: 10})
	for r := range a {
		for c := range a[r] {
			if a[r][c] != b[r][c] {
				t.Fatalf("not converged at (%d,%d): %v vs %v", r, c, a[r][c], b[r][c])
			}
		}
	}
}

func TestRepairRespectsMaxIterations(t *testing.T) {
	tb, pred := grid(t,
		[][]string{{"1", "2", "3"}},
		[]string{"dhd"},
	)
	out := Repair(tb, pred, Options{MaxIterations: 1})
	if out[0][1] != table.ClassData {
		t.Errorf("one pass should fix the dissenter, got %v", out[0][1])
	}
}

func TestStrandedHeaderAtEdgesUntouched(t *testing.T) {
	// Headers on the first and last lines are structurally legitimate.
	tb, pred := grid(t,
		[][]string{
			{"h1", "h2"},
			{"1", "2"},
			{"hx", "hy"},
		},
		[]string{"hh", "dd", "hh"},
	)
	out := Repair(tb, pred, Options{})
	if out[0][0] != table.ClassHeader || out[2][0] != table.ClassHeader {
		t.Errorf("edge headers must survive: %v / %v", out[0][0], out[2][0])
	}
}

func TestLineMajorityNoOtherCells(t *testing.T) {
	tb, pred := grid(t,
		[][]string{{"x", "Total"}},
		[]string{"dg"}, // group not leading, non-empty left neighbor
	)
	out := Repair(tb, pred, Options{})
	// Majority among remaining cells is data.
	if out[0][1] != table.ClassData {
		t.Errorf("floating group = %v, want data", out[0][1])
	}
}

func TestRepairSkipsEmptyCells(t *testing.T) {
	tb, pred := grid(t,
		[][]string{
			{"1", "", "3"},
			{"4", "", "6"},
		},
		[]string{"d.d", "d.d"},
	)
	out := Repair(tb, pred, Options{})
	if out[0][1] != table.ClassEmpty || out[1][1] != table.ClassEmpty {
		t.Error("empty cells must keep ClassEmpty")
	}
}

func TestTrailingDerivedColumnSurvives(t *testing.T) {
	// A derived row-total column inside data lines is a legitimate layout.
	tb, pred := grid(t,
		[][]string{
			{"a", "1", "2", "3"},
			{"b", "4", "5", "9"},
		},
		[]string{"dddv", "dddv"},
	)
	out := Repair(tb, pred, Options{})
	if out[0][3] != table.ClassDerived || out[1][3] != table.ClassDerived {
		t.Errorf("trailing derived column repaired away: %v / %v", out[0][3], out[1][3])
	}
}

// Package postprocess repairs cell classification results by detecting
// misclassification patterns, in the spirit of Koci et al. (2016), whose
// post-processing component the paper discusses in Section 2.2: certain
// spatial arrangements of predicted classes are strong hints that a
// prediction is wrong, and rewriting them improves the final labeling.
//
// Five patterns are detected and repaired:
//
//  1. Isolated cell: a non-empty cell whose non-empty 4-neighbors all agree
//     on a different class is relabeled to that class.
//  2. Singleton dissenter: a cell whose class appears exactly once in its
//     line while another class holds a clear majority (>= 2/3 of the
//     non-empty cells, at least three of them) adopts the majority class —
//     unless it is the leading group/derived cell arrangement the paper's
//     annotation scheme expects.
//  3. Stranded header: a header cell strictly below the first data line of
//     its column, with data above and below it, becomes data.
//  4. Interior derived: a derived cell with data cells on both vertical
//     sides and both horizontal sides (strictly interior to a data block)
//     becomes data; real derived cells live on block margins (Section 3.2).
//  5. Floating group: a group cell that is not the leading non-empty cell
//     of its line and has no empty cell to its left becomes the line
//     majority class.
package postprocess

import "strudel/internal/table"

// Options bounds the repair loop.
type Options struct {
	// MaxIterations caps how many full passes run; 0 means 3. Each pass
	// applies every pattern once; the loop stops early when a pass changes
	// nothing.
	MaxIterations int
}

// Repair returns a repaired copy of pred for table t. The input grid is not
// modified.
func Repair(t *table.Table, pred [][]table.Class, opts Options) [][]table.Class {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 3
	}
	h, w := t.Height(), t.Width()
	out := make([][]table.Class, h)
	for r := range out {
		out[r] = append([]table.Class(nil), pred[r]...)
	}
	if h == 0 || w == 0 {
		return out
	}

	for iter := 0; iter < opts.MaxIterations; iter++ {
		changed := 0
		changed += repairIsolated(t, out)
		changed += repairSingletonDissenter(t, out)
		changed += repairStrandedHeader(t, out)
		changed += repairInteriorDerived(t, out)
		changed += repairFloatingGroup(t, out)
		if changed == 0 {
			break
		}
	}
	return out
}

// repairIsolated implements pattern 1.
func repairIsolated(t *table.Table, cls [][]table.Class) int {
	h, w := t.Height(), t.Width()
	changed := 0
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			if t.IsEmptyCell(r, c) {
				continue
			}
			var neighbor table.Class
			agree := true
			n, horizontal := 0, 0
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nr, nc := r+d[0], c+d[1]
				if t.IsEmptyCell(nr, nc) {
					continue
				}
				n++
				if d[0] == 0 {
					horizontal++
				}
				if n == 1 {
					neighbor = cls[nr][nc]
				} else if cls[nr][nc] != neighbor {
					agree = false
					break
				}
			}
			// Vertical-only agreement is weak evidence: a lone group label
			// with data above and below is a legitimate layout, not a
			// misclassification. Require at least one horizontal witness.
			if agree && n >= 2 && horizontal >= 1 && neighbor != cls[r][c] && neighbor != table.ClassEmpty {
				cls[r][c] = neighbor
				changed++
			}
		}
	}
	return changed
}

// repairSingletonDissenter implements pattern 2.
func repairSingletonDissenter(t *table.Table, cls [][]table.Class) int {
	h, w := t.Height(), t.Width()
	changed := 0
	for r := 0; r < h; r++ {
		var counts [table.NumClasses]int
		nonEmpty := 0
		for c := 0; c < w; c++ {
			if t.IsEmptyCell(r, c) {
				continue
			}
			nonEmpty++
			if idx := cls[r][c].Index(); idx >= 0 {
				counts[idx]++
			}
		}
		if nonEmpty < 3 {
			continue
		}
		maj, majCount := -1, 0
		for i, n := range counts {
			if n > majCount {
				maj, majCount = i, n
			}
		}
		if maj < 0 || majCount*3 < nonEmpty*2 {
			continue
		}
		majClass := table.ClassAt(maj)
		for c := 0; c < w; c++ {
			if t.IsEmptyCell(r, c) {
				continue
			}
			cur := cls[r][c]
			if cur == majClass || cur.Index() < 0 || counts[cur.Index()] != 1 {
				continue
			}
			// Keep the expected mixed-line arrangements (Figure 1 of the
			// paper): a leading group label among derived or data cells,
			// and a trailing derived cell in a data line (a derived
			// row-total column).
			if cur == table.ClassGroup && isLeading(t, r, c) {
				continue
			}
			if cur == table.ClassDerived && isTrailing(t, r, c) {
				continue
			}
			cls[r][c] = majClass
			changed++
		}
	}
	return changed
}

// isTrailing reports whether (r, c) is the rightmost non-empty cell of
// line r.
func isTrailing(t *table.Table, r, c int) bool {
	for cc := c + 1; cc < t.Width(); cc++ {
		if !t.IsEmptyCell(r, cc) {
			return false
		}
	}
	return true
}

// isLeading reports whether (r, c) is the leftmost non-empty cell of line r.
func isLeading(t *table.Table, r, c int) bool {
	for cc := 0; cc < c; cc++ {
		if !t.IsEmptyCell(r, cc) {
			return false
		}
	}
	return true
}

// repairStrandedHeader implements pattern 3.
func repairStrandedHeader(t *table.Table, cls [][]table.Class) int {
	h, w := t.Height(), t.Width()
	changed := 0
	for c := 0; c < w; c++ {
		for r := 1; r < h-1; r++ {
			if cls[r][c] != table.ClassHeader || t.IsEmptyCell(r, c) {
				continue
			}
			above := closestClassAbove(t, cls, r, c)
			below := closestClassBelow(t, cls, r, c)
			if above == table.ClassData && below == table.ClassData {
				cls[r][c] = table.ClassData
				changed++
			}
		}
	}
	return changed
}

// repairInteriorDerived implements pattern 4.
func repairInteriorDerived(t *table.Table, cls [][]table.Class) int {
	h, w := t.Height(), t.Width()
	changed := 0
	for r := 1; r < h-1; r++ {
		for c := 1; c < w-1; c++ {
			if cls[r][c] != table.ClassDerived || t.IsEmptyCell(r, c) {
				continue
			}
			if cls[r-1][c] == table.ClassData && cls[r+1][c] == table.ClassData &&
				cls[r][c-1] == table.ClassData && cls[r][c+1] == table.ClassData {
				cls[r][c] = table.ClassData
				changed++
			}
		}
	}
	return changed
}

// repairFloatingGroup implements pattern 5.
func repairFloatingGroup(t *table.Table, cls [][]table.Class) int {
	h, w := t.Height(), t.Width()
	changed := 0
	for r := 0; r < h; r++ {
		for c := 1; c < w; c++ {
			if cls[r][c] != table.ClassGroup || t.IsEmptyCell(r, c) {
				continue
			}
			if isLeading(t, r, c) || t.IsEmptyCell(r, c-1) {
				continue
			}
			if maj := lineMajority(t, cls, r, c); maj != table.ClassEmpty {
				cls[r][c] = maj
				changed++
			}
		}
	}
	return changed
}

// lineMajority returns the majority class of line r excluding column skip,
// or ClassEmpty when the line has no other classified cells.
func lineMajority(t *table.Table, cls [][]table.Class, r, skip int) table.Class {
	var counts [table.NumClasses]int
	for c := 0; c < t.Width(); c++ {
		if c == skip || t.IsEmptyCell(r, c) {
			continue
		}
		if idx := cls[r][c].Index(); idx >= 0 {
			counts[idx]++
		}
	}
	best, bestN := -1, 0
	for i, n := range counts {
		if n > bestN {
			best, bestN = i, n
		}
	}
	if best < 0 {
		return table.ClassEmpty
	}
	return table.ClassAt(best)
}

func closestClassAbove(t *table.Table, cls [][]table.Class, r, c int) table.Class {
	for rr := r - 1; rr >= 0; rr-- {
		if !t.IsEmptyCell(rr, c) {
			return cls[rr][c]
		}
	}
	return table.ClassEmpty
}

func closestClassBelow(t *table.Table, cls [][]table.Class, r, c int) table.Class {
	for rr := r + 1; rr < t.Height(); rr++ {
		if !t.IsEmptyCell(rr, c) {
			return cls[rr][c]
		}
	}
	return table.ClassEmpty
}

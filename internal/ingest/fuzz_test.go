package ingest

import (
	"errors"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzIngest throws arbitrary bytes at the full normalization pipeline and
// asserts the output contract: every successful Normalize yields valid
// UTF-8 with no NULs and no carriage returns, within the configured
// guards; every failure is a typed taxonomy error. Panics fail the fuzz
// run by definition.
func FuzzIngest(f *testing.F) {
	f.Add([]byte("a,b\n1,2\n"))
	f.Add([]byte("\xEF\xBB\xBFh1,h2\r\nx,y\r\n"))
	f.Add([]byte{0xFF, 0xFE, 'a', 0, ',', 0, 'b', 0, '\n', 0})
	f.Add([]byte{0xFE, 0xFF, 0, 'a', 0, '\n'})
	f.Add([]byte{0xFF, 0xFE, 'a', 0, ','}) // torn UTF-16 unit
	f.Add([]byte("caf\xe9,r\xe9gion\n"))
	f.Add([]byte("a\x00b\x00\n"))
	f.Add([]byte("\"never closed\n1,2\n"))
	f.Add([]byte("\x89PNG\r\n\x1a\n\x01\x02\x03"))
	f.Add([]byte(strings.Repeat("wide,", 50) + "\n"))
	f.Add([]byte(""))
	f.Add([]byte("\r\r\r\n\n\r"))

	taxonomy := []error{ErrTooLarge, ErrBadEncoding, ErrEmptyInput,
		ErrLineTooLong, ErrTooManyLines, ErrTooManyCells}

	f.Fuzz(func(t *testing.T, data []byte) {
		opts := Options{MaxBytes: 1 << 20, MaxLineBytes: 1 << 12, MaxLines: 1 << 10}
		res, err := Normalize(data, opts)
		if err != nil {
			for _, sentinel := range taxonomy {
				if errors.Is(err, sentinel) {
					return
				}
			}
			t.Fatalf("untyped error: %v", err)
		}
		if res.Text == "" {
			t.Fatal("success with empty text; want ErrEmptyInput")
		}
		if !utf8.ValidString(res.Text) {
			t.Fatalf("output is not valid UTF-8 (input %q)", data)
		}
		if strings.ContainsRune(res.Text, 0) {
			t.Fatal("output contains NUL")
		}
		if strings.ContainsRune(res.Text, '\r') {
			t.Fatal("output contains CR")
		}
		for _, line := range strings.Split(res.Text, "\n") {
			if len(line) > 1<<12 {
				t.Fatalf("line of %d bytes survived a %d-byte guard", len(line), 1<<12)
			}
		}
		if n := strings.Count(res.Text, "\n"); n > 1<<10 {
			t.Fatalf("%d newlines survived a %d-line guard", n, 1<<10)
		}
		// Normalize must be idempotent: feeding its own output back through
		// changes nothing and trips no byte-repair guards.
		again, err := Normalize([]byte(res.Text), opts)
		if err != nil {
			t.Fatalf("re-normalizing clean output failed: %v", err)
		}
		if again.Text != res.Text {
			t.Fatal("Normalize is not idempotent")
		}
	})
}

package ingest

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chunkReader returns at most n bytes per Read, exercising every carry in
// the incremental decoder (split BOMs, split runes, split CRLF, split
// UTF-16 units).
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// scanAll drains a scanner, returning lines, the final-newline bit, the
// finalized provenance, and the terminal error.
func scanAll(r io.Reader, opts Options) ([]string, bool, Provenance, error) {
	sc := NewScanner(r, opts)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Line())
	}
	return lines, sc.FinalNewline(), sc.Provenance(), sc.Err()
}

// normalizeLines reproduces the line view of the in-memory result: the
// parse layer sees Result.Text, which the streaming driver reconstructs as
// join(lines, "\n") plus a trailing "\n" when FinalNewline reports one.
func normalizeLines(res Result) ([]string, bool) {
	text := res.Text
	finalNL := strings.HasSuffix(text, "\n")
	if finalNL {
		text = text[:len(text)-1]
	}
	return strings.Split(text, "\n"), finalNL
}

// equivalenceCases is the synthetic battery: every normalization feature
// and the interactions between them.
var equivalenceCases = map[string]string{
	"plain":             "a,b,c\n1,2,3\n",
	"no-final-newline":  "a,b,c\n1,2,3",
	"crlf":              "a,b\r\n1,2\r\n",
	"bare-cr":           "a,b\r1,2\r",
	"mixed-endings":     "a\r\nb\rc\nd",
	"empty-lines":       "\n\na,b\n\n1,2\n\n",
	"utf8-multibyte":    "α,β,γ\nδ,ε,ζ\n",
	"quoted-newline":    "a,\"b\nc\",d\n",
	"trailing-spaces":   "a,b  \n  1,2\n",
	"blank-mid":         "h1,h2\n\nv1,v2\n",
	"cr-at-eof":         "a,b\r",
	"crlf-split-pair":   "x\r\ny\r\nz",
	"single-cell":       "lonely\n",
	"unicode-bom-body":  "\ufeffид,имя\n1,тест\n",
	"tab-delimited":     "a\tb\tc\n1\t2\t3\n",
	"huge-field":        "a," + strings.Repeat("x", 5000) + ",c\n1,2,3\n",
	"many-empty-cells":  ",,,\n,,,\n1,2,3,4\n",
	"only-final-line":   "just one line no newline",
	"consecutive-crs":   "a\r\r\rb\n",
	"nul-sprinkled":     "a\x00,b\n1,\x002\n",
	"latin1-bytes":      "caf\xe9,n\xfamero\n1,2\n",
	"four-byte-runes":   "𝒜,𝔅\n😀,😁\n",
	"whitespace-only-x": "data,here\n   \t  \nmore,rows\n",
}

func TestScannerMatchesNormalizeSynthetic(t *testing.T) {
	for name, input := range equivalenceCases {
		for _, chunk := range []int{1, 2, 3, 7, 64, 1 << 20} {
			res, memErr := Normalize([]byte(input), Options{})
			lines, finalNL, prov, err := scanAll(&chunkReader{data: []byte(input), n: chunk}, Options{})
			assertEquivalent(t, name, chunk, res, memErr, lines, finalNL, prov, err)
		}
	}
}

func TestScannerMatchesNormalizeEncodings(t *testing.T) {
	base := "id,name\n1,alpha\n2,beta\n"
	cases := map[string][]byte{
		"utf8-bom":      append(append([]byte{}, bomUTF8...), base...),
		"utf16le-bom":   encodeUTF16(t, base, true, true),
		"utf16be-bom":   encodeUTF16(t, base, false, true),
		"utf16le-nobom": encodeUTF16(t, base, true, false),
		"utf16be-nobom": encodeUTF16(t, base, false, false),
		"utf16le-odd":   append(encodeUTF16(t, base, true, true), 0x41),
		"latin1":        {0x63, 0x61, 0x66, 0xe9, 0x2c, 0x78, 0x0a, 0x31, 0x2c, 0x32, 0x0a},
	}
	for name, input := range cases {
		for _, chunk := range []int{1, 3, 64, 1 << 20} {
			res, memErr := Normalize(input, Options{})
			lines, finalNL, prov, err := scanAll(&chunkReader{data: input, n: chunk}, Options{})
			assertEquivalent(t, name, chunk, res, memErr, lines, finalNL, prov, err)
		}
	}
}

func TestScannerMatchesNormalizeOnTestdata(t *testing.T) {
	root := filepath.Join("..", "..", "testdata")
	var files []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && !strings.HasSuffix(path, ".json") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk testdata: %v", err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata files found")
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		for _, chunk := range []int{5, 1 << 20} {
			res, memErr := Normalize(data, Options{})
			lines, finalNL, prov, scErr := scanAll(&chunkReader{data: data, n: chunk}, Options{})
			assertEquivalent(t, path, chunk, res, memErr, lines, finalNL, prov, scErr)
		}
	}
}

func TestScannerMatchesNormalizeGuards(t *testing.T) {
	longLine := "short,row\n" + strings.Repeat("y", 100) + "\nlast,row\n"
	manyLines := strings.Repeat("r,s\n", 20)
	cases := []struct {
		name  string
		input string
		opts  Options
	}{
		{"truncate-line", longLine, Options{MaxLineBytes: 32}},
		{"drop-lines", manyLines, Options{MaxLines: 5}},
		{"truncate-and-drop", longLine + manyLines, Options{MaxLineBytes: 32, MaxLines: 4}},
		{"truncate-multibyte", "aα" + strings.Repeat("β", 40) + "\nb,c\n", Options{MaxLineBytes: 16}},
	}
	for _, tc := range cases {
		for _, chunk := range []int{1, 9, 1 << 20} {
			res, memErr := Normalize([]byte(tc.input), tc.opts)
			lines, finalNL, prov, err := scanAll(&chunkReader{data: []byte(tc.input), n: chunk}, tc.opts)
			assertEquivalent(t, tc.name, chunk, res, memErr, lines, finalNL, prov, err)
		}
	}
}

func TestScannerRejectsLikeNormalize(t *testing.T) {
	binary := make([]byte, 256)
	for i := range binary {
		binary[i] = byte(i%7) + 1 // control-character soup
	}
	cases := map[string][]byte{
		"binary":     binary,
		"empty":      {},
		"whitespace": []byte("   \n\t\n  \n"),
	}
	for name, input := range cases {
		_, memErr := Normalize(input, Options{})
		if memErr == nil {
			t.Fatalf("%s: expected in-memory rejection", name)
		}
		_, _, _, scErr := scanAll(bytes.NewReader(input), Options{})
		if scErr == nil {
			t.Fatalf("%s: scanner accepted input Normalize rejects", name)
		}
		if !sameSentinel(memErr, scErr) {
			t.Errorf("%s: sentinel mismatch: memory %v vs stream %v", name, memErr, scErr)
		}
	}
}

func TestScannerStrictMatchesSentinels(t *testing.T) {
	cases := map[string]string{
		"nul":       "a\x00b\n",
		"long-line": strings.Repeat("z", 100) + "\n",
	}
	opts := Options{Strict: true, MaxLineBytes: 32}
	for name, input := range cases {
		_, memErr := Normalize([]byte(input), opts)
		_, _, _, scErr := scanAll(strings.NewReader(input), opts)
		if memErr == nil || scErr == nil {
			t.Fatalf("%s: expected strict rejection from both paths (mem %v, stream %v)", name, memErr, scErr)
		}
		if !sameSentinel(memErr, scErr) {
			t.Errorf("%s: sentinel mismatch: memory %v vs stream %v", name, memErr, scErr)
		}
	}
}

func TestScannerMaxBytesZeroMeansUnlimited(t *testing.T) {
	big := strings.Repeat("a,b,c\n", 64)
	lines, _, _, err := scanAll(strings.NewReader(big), Options{MaxBytes: 0})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(lines) != 64 {
		t.Fatalf("got %d lines, want 64", len(lines))
	}
	_, _, _, err = scanAll(strings.NewReader(big), Options{MaxBytes: 16})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("explicit MaxBytes not enforced: %v", err)
	}
}

func assertEquivalent(t *testing.T, name string, chunk int, res Result, memErr error, lines []string, finalNL bool, prov Provenance, scErr error) {
	t.Helper()
	if memErr != nil || scErr != nil {
		if (memErr == nil) != (scErr == nil) {
			t.Errorf("%s (chunk %d): error mismatch: memory %v vs stream %v", name, chunk, memErr, scErr)
			return
		}
		if !sameSentinel(memErr, scErr) {
			t.Errorf("%s (chunk %d): sentinel mismatch: memory %v vs stream %v", name, chunk, memErr, scErr)
		}
		return
	}
	wantLines, wantNL := normalizeLines(res)
	if len(lines) != len(wantLines) {
		t.Errorf("%s (chunk %d): got %d lines, want %d", name, chunk, len(lines), len(wantLines))
		return
	}
	for i := range lines {
		if lines[i] != wantLines[i] {
			t.Errorf("%s (chunk %d): line %d: got %q, want %q", name, chunk, i, lines[i], wantLines[i])
			return
		}
	}
	if finalNL != wantNL {
		t.Errorf("%s (chunk %d): final newline: got %v, want %v", name, chunk, finalNL, wantNL)
	}
	wp := res.Provenance
	if prov.Encoding != wp.Encoding || prov.BOM != wp.BOM ||
		prov.NULsStripped != wp.NULsStripped ||
		prov.LineEndingsNormalized != wp.LineEndingsNormalized ||
		prov.LinesTruncated != wp.LinesTruncated ||
		prov.LinesDropped != wp.LinesDropped ||
		prov.BytesIn != wp.BytesIn {
		t.Errorf("%s (chunk %d): provenance mismatch:\n stream %+v\n memory %+v", name, chunk, prov, wp)
	}
	if got, want := strings.Join(prov.Guards, ","), strings.Join(wp.Guards, ","); got != want {
		t.Errorf("%s (chunk %d): guards: got [%s], want [%s]", name, chunk, got, want)
	}
}

func sameSentinel(a, b error) bool {
	for _, s := range []error{ErrTooLarge, ErrBadEncoding, ErrEmptyInput, ErrLineTooLong, ErrTooManyLines, ErrTooManyCells} {
		if errors.Is(a, s) || errors.Is(b, s) {
			return errors.Is(a, s) && errors.Is(b, s)
		}
	}
	return true
}

func encodeUTF16(t *testing.T, s string, little, bom bool) []byte {
	t.Helper()
	var out []byte
	put := func(u uint16) {
		if little {
			out = append(out, byte(u), byte(u>>8))
		} else {
			out = append(out, byte(u>>8), byte(u))
		}
	}
	if bom {
		put(0xFEFF)
	}
	for _, r := range s {
		if r < 0x10000 {
			put(uint16(r))
			continue
		}
		r -= 0x10000
		put(uint16(0xD800 + (r >> 10)))
		put(uint16(0xDC00 + (r & 0x3FF)))
	}
	return out
}

package ingest

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"unicode/utf16"
)

// HostileFile is one synthetic adversarial input from the fault-injection
// generator: a named byte blob plus the failure mode it exercises.
type HostileFile struct {
	// Name is a stable identifier usable as a file name.
	Name string
	// Data is the raw bytes as they would arrive on disk.
	Data []byte
	// Desc explains which ingestion hazard the file reproduces.
	Desc string
}

// FaultOptions sizes the generated corpus.
type FaultOptions struct {
	// Seed drives the deterministic generator; the same seed always yields
	// byte-identical files.
	Seed int64
	// LongLineBytes is the length of the single-line stress file
	// (0 = 10 MiB, the size documented in the crash-corpus requirement).
	LongLineBytes int
	// ManyLines is the line count of the line-flood file (0 = 200_000).
	ManyLines int
	// ManyCells is the cell count of the wide-row file (0 = 100_000).
	ManyCells int
}

func (o FaultOptions) withDefaults() FaultOptions {
	if o.LongLineBytes == 0 {
		o.LongLineBytes = 10 << 20
	}
	if o.ManyLines == 0 {
		o.ManyLines = 200_000
	}
	if o.ManyCells == 0 {
		o.ManyCells = 100_000
	}
	return o
}

// GenerateHostile builds the fault-injection corpus: one file per hazard
// class documented for verbose CSV ingestion (mixed encodings, stray NULs,
// ragged quoting, megabyte lines, binary masquerade). Output is fully
// deterministic in the options, so tests over it are reproducible.
func GenerateHostile(opts FaultOptions) []HostileFile {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	sane := "name,region,value\nalpha,north,1\nbeta,south,2\ntotal,,3\n"

	var out []HostileFile
	add := func(name, desc string, data []byte) {
		out = append(out, HostileFile{Name: name, Data: data, Desc: desc})
	}

	add("empty.csv", "zero-byte file", nil)
	add("whitespace.csv", "only blank lines and spaces", []byte("  \n\t\n \n"))
	add("nul_ridden.csv", "NUL bytes interleaved with valid rows",
		[]byte(strings.ReplaceAll(sane, ",", ",\x00")))
	add("truncated_utf16.csv", "UTF-16LE BOM with an odd byte count",
		truncatedUTF16(sane))
	add("utf16_no_bom.csv", "UTF-16LE without a byte-order mark",
		utf16Bytes(sane, binary.LittleEndian))
	add("utf16_be.csv", "UTF-16BE with BOM",
		append([]byte{0xFE, 0xFF}, utf16Bytes(sane, binary.BigEndian)...))
	add("latin1.csv", "latin-1 accented bytes, invalid as UTF-8",
		[]byte("nom,r\xe9gion,valeur\ncaf\xe9,\xeele,1\n"))
	add("long_line.csv", "single line of several megabytes",
		longLine(rng, opts.LongLineBytes))
	add("many_lines.csv", "line flood", manyLines(opts.ManyLines))
	add("many_cells.csv", "single row with a flood of cells", manyCells(opts.ManyCells))
	add("unbalanced_quote.csv", "quote opened and never closed",
		[]byte("a,b\n\"unterminated,1\nc,d\n"))
	add("quote_storm.csv", "pathological nested quoting",
		quoteStorm(rng))
	add("binary_blob.csv", "PNG-like binary data renamed to .csv",
		binaryBlob(rng, 4096))
	add("mixed_endings.csv", "CR, LF and CRLF line endings in one file",
		[]byte("a,b\r\n1,2\rx,y\n3,4\r\n"))
	add("bom_utf8.csv", "UTF-8 BOM plus content",
		append([]byte{0xEF, 0xBB, 0xBF}, sane...))
	add("ragged.csv", "wildly ragged row widths",
		[]byte("a\nb,c,d,e,f,g,h\n\ni\nj,k\n"))
	return out
}

func truncatedUTF16(s string) []byte {
	b := append([]byte{0xFF, 0xFE}, utf16Bytes(s, binary.LittleEndian)...)
	return b[:len(b)-1] // chop the final byte: a torn download
}

func utf16Bytes(s string, order binary.ByteOrder) []byte {
	units := utf16.Encode([]rune(s))
	b := make([]byte, 2*len(units))
	for i, u := range units {
		order.PutUint16(b[2*i:], u)
	}
	return b
}

func longLine(rng *rand.Rand, n int) []byte {
	var b bytes.Buffer
	b.Grow(n + 16)
	b.WriteString("header\n")
	for b.Len() < n {
		b.WriteString("cell")
		b.WriteByte(byte('0' + rng.Intn(10)))
		b.WriteByte(',')
	}
	return b.Bytes()
}

func manyLines(n int) []byte {
	var b bytes.Buffer
	b.Grow(8 * n)
	b.WriteString("id,v\n")
	for i := 0; i < n; i++ {
		b.WriteString("1,2\n")
	}
	return b.Bytes()
}

func manyCells(n int) []byte {
	var b bytes.Buffer
	b.Grow(2*n + 16)
	b.WriteString("x")
	for i := 1; i < n; i++ {
		b.WriteString(",x")
	}
	b.WriteByte('\n')
	return b.Bytes()
}

func quoteStorm(rng *rand.Rand) []byte {
	var b bytes.Buffer
	for i := 0; i < 64; i++ {
		for j, n := 0, rng.Intn(7); j < n; j++ {
			b.WriteByte('"')
		}
		b.WriteString("v,")
	}
	b.WriteByte('\n')
	return b.Bytes()
}

func binaryBlob(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	copy(b, []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1A, '\n'})
	for i := 8; i < n; i++ {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

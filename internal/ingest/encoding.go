package ingest

import (
	"encoding/binary"
	"fmt"
	"unicode/utf16"
	"unicode/utf8"
)

// decode sniffs the encoding of raw bytes and converts them to UTF-8.
//
// The decision ladder, mirroring what spreadsheet exports actually produce:
//
//  1. UTF-32 or UTF-16 byte-order mark → decode that encoding.
//  2. UTF-8 BOM → strip it, require valid UTF-8 after it.
//  3. No BOM, but a strong alternating-zero-byte pattern → BOM-less UTF-16
//     (the classic "saved from Windows" CSV).
//  4. Valid UTF-8 → pass through.
//  5. Anything else → latin-1 fallback: every byte maps to the code point
//     of the same value, so no input is ever undecodable — at worst it is
//     mislabeled, which Provenance records.
//
// Under Options.Strict, any path other than clean UTF-8 (with or without
// BOM) returns ErrBadEncoding instead of repairing.
func decode(data []byte, opts Options, prov *Provenance) (string, error) {
	switch {
	case hasPrefix(data, bomUTF32LE):
		prov.Encoding, prov.BOM = "utf-32le", true
		return decodeUTF32(data[4:], binary.LittleEndian, opts, prov)
	case hasPrefix(data, bomUTF32BE):
		prov.Encoding, prov.BOM = "utf-32be", true
		return decodeUTF32(data[4:], binary.BigEndian, opts, prov)
	case hasPrefix(data, bomUTF16LE):
		prov.Encoding, prov.BOM = "utf-16le", true
		return decodeUTF16(data[2:], binary.LittleEndian, opts, prov)
	case hasPrefix(data, bomUTF16BE):
		prov.Encoding, prov.BOM = "utf-16be", true
		return decodeUTF16(data[2:], binary.BigEndian, opts, prov)
	case hasPrefix(data, bomUTF8):
		prov.Encoding, prov.BOM = "utf-8", true
		data = data[3:]
	}

	if !prov.BOM {
		if order, ok := sniffBOMlessUTF16(data); ok {
			prov.Encoding = "utf-16" + orderName(order)
			if opts.Strict {
				return "", fmt.Errorf("%w: BOM-less UTF-16 (%s)", ErrBadEncoding, prov.Encoding)
			}
			prov.Trip(GuardUTF16NoBOM)
			return decodeUTF16(data, order, opts, prov)
		}
	}

	if utf8.Valid(data) {
		if prov.Encoding == "" {
			prov.Encoding = "utf-8"
		}
		return string(data), nil
	}

	// Invalid UTF-8 (with or without a UTF-8 BOM): latin-1 fallback.
	prov.Encoding = "latin-1"
	if opts.Strict {
		return "", fmt.Errorf("%w: invalid UTF-8", ErrBadEncoding)
	}
	prov.Trip(GuardLatin1Fallback)
	runes := make([]rune, len(data))
	for i, b := range data {
		runes[i] = rune(b)
	}
	return string(runes), nil
}

var (
	bomUTF8    = []byte{0xEF, 0xBB, 0xBF}
	bomUTF16LE = []byte{0xFF, 0xFE}
	bomUTF16BE = []byte{0xFE, 0xFF}
	// The UTF-32 BOMs must be checked before UTF-16LE: FF FE 00 00 starts
	// with the UTF-16LE mark.
	bomUTF32LE = []byte{0xFF, 0xFE, 0x00, 0x00}
	bomUTF32BE = []byte{0x00, 0x00, 0xFE, 0xFF}
)

func hasPrefix(data, prefix []byte) bool {
	if len(data) < len(prefix) {
		return false
	}
	for i, b := range prefix {
		if data[i] != b {
			return false
		}
	}
	return true
}

func orderName(order binary.ByteOrder) string {
	if order == binary.ByteOrder(binary.BigEndian) {
		return "be"
	}
	return "le"
}

// decodeUTF16 converts UTF-16 payload bytes (BOM already consumed). A
// trailing odd byte — the truncated-download case — is dropped and recorded.
func decodeUTF16(data []byte, order binary.ByteOrder, opts Options, prov *Provenance) (string, error) {
	if len(data)%2 != 0 {
		if opts.Strict {
			return "", fmt.Errorf("%w: truncated UTF-16 (odd byte count %d)", ErrBadEncoding, len(data))
		}
		prov.Trip(GuardTruncatedUnit)
		data = data[:len(data)-1]
	}
	units := make([]uint16, len(data)/2)
	for i := range units {
		units[i] = order.Uint16(data[2*i:])
	}
	return string(utf16.Decode(units)), nil
}

// decodeUTF32 converts UTF-32 payload bytes (BOM already consumed).
// Trailing partial code units and out-of-range values become replacement
// characters or are dropped, and are recorded.
func decodeUTF32(data []byte, order binary.ByteOrder, opts Options, prov *Provenance) (string, error) {
	if rem := len(data) % 4; rem != 0 {
		if opts.Strict {
			return "", fmt.Errorf("%w: truncated UTF-32 (%d trailing bytes)", ErrBadEncoding, rem)
		}
		prov.Trip(GuardTruncatedUnit)
		data = data[:len(data)-rem]
	}
	runes := make([]rune, 0, len(data)/4)
	for i := 0; i+4 <= len(data); i += 4 {
		r := rune(order.Uint32(data[i:]))
		if !utf8.ValidRune(r) {
			r = utf8.RuneError
		}
		runes = append(runes, r)
	}
	return string(runes), nil
}

// sniffBOMlessUTF16 detects UTF-16 text saved without a byte-order mark by
// the alternating-zero-byte signature ASCII-heavy text leaves: in UTF-16LE
// the odd-indexed bytes are almost all zero, in UTF-16BE the even-indexed
// ones. It requires a strong one-sided pattern over a meaningful sample so
// genuine binary data (zeros everywhere) does not match.
func sniffBOMlessUTF16(data []byte) (binary.ByteOrder, bool) {
	const sample = 4096
	n := len(data)
	if n > sample {
		n = sample
	}
	if n < 16 {
		return nil, false
	}
	zeroEven, zeroOdd := 0, 0
	for i := 0; i < n; i++ {
		if data[i] == 0 {
			if i%2 == 0 {
				zeroEven++
			} else {
				zeroOdd++
			}
		}
	}
	pairs := n / 2
	// One side ≥60% zero, the other ≤5%: unambiguous UTF-16 of mostly
	// single-byte characters.
	switch {
	case zeroOdd*10 >= pairs*6 && zeroEven*20 <= pairs:
		return binary.LittleEndian, true
	case zeroEven*10 >= pairs*6 && zeroOdd*20 <= pairs:
		return binary.BigEndian, true
	}
	return nil, false
}

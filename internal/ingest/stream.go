package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"unicode/utf16"
	"unicode/utf8"

	"strudel/internal/obs"
)

// DefaultSniffBytes is the size of the raw prefix a Scanner inspects to
// commit to a source encoding. It is large enough that every file the
// in-memory path accepts whole (tests, fixtures, typical uploads) gets the
// exact same encoding decision, and small enough to keep the scanner's
// memory footprint independent of file size.
const DefaultSniffBytes = 64 << 10

// scanChunk is the raw read size of the incremental scanner.
const scanChunk = 64 << 10

// Scanner is the incremental form of Normalize: it turns an unbounded byte
// stream into the same clean, guarded, NUL-free, LF-separated UTF-8 lines —
// one line at a time, in memory bounded by the guards rather than the input
// size. It is the ingestion half of the streaming annotation pipeline.
//
// Semantics match Normalize exactly for every input whose encoding is
// decidable from the sniff prefix (Options.SniffBytes, default 64 KiB) —
// in particular for any input that fits inside the prefix. The one
// deliberate divergence: a file that is valid UTF-8 for the whole prefix
// but turns invalid later is repaired rune-by-rune via the latin-1 fallback
// from that point on (recorded in Provenance), where the in-memory path —
// which sees all bytes before emitting anything — re-decodes the entire
// file as latin-1. A single-pass reader cannot un-emit lines, so the
// repair is local rather than global.
//
// Unlike Normalize, a zero Options.MaxBytes disables the size guard
// entirely instead of applying the 64 MiB default: the scanner exists
// precisely to handle files the in-memory guard would reject. Set MaxBytes
// explicitly to keep a cap.
//
// Usage mirrors bufio.Scanner:
//
//	sc := ingest.NewScanner(r, opts)
//	for sc.Scan() {
//		use(sc.Line())
//	}
//	if err := sc.Err(); err != nil { ... }
//
// After Scan returns false, Provenance reports everything the scanner did
// to the bytes, with guard names in the same canonical order Normalize
// records them.
type Scanner struct {
	r    io.Reader
	opts Options // withDefaults applied, except MaxBytes (see above)

	maxBytes int64 // 0 = unlimited (deliberately not defaulted)

	// Decode state.
	kind     decodeKind
	order    binary.ByteOrder // utf16/utf32 byte order
	carry    []byte           // raw bytes not yet decodable (partial code unit)
	held     uint16           // held UTF-16 high surrogate
	heldSet  bool
	sniffed  bool
	eof      bool
	rawRead  int64
	latinTip bool // mid-stream latin-1 repair already recorded

	// Rune pipeline state.
	pendingCR bool
	sampleTot int // binary-rejection sample (first 4096 post-NUL runes)
	sampleCtl int
	binOK     bool // binary rejection resolved

	// Line assembly.
	cur      []byte // current partial line, capped at MaxLineBytes
	curLen   int    // true byte length of the current line
	queue    []string
	queuePos int
	line     string

	kept     int
	newlines int
	endNL    bool // normalized text ended with '\n'
	anyLong  bool // some line exceeded MaxLineBytes
	nonSpace bool // some kept line has non-whitespace content

	prov      Provenance
	guardSeen map[string]bool
	done      bool
	finished  bool
	err       error
}

type decodeKind int

const (
	decodeUTF8Kind decodeKind = iota
	decodeLatin1Kind
	decodeUTF16Kind
	decodeUTF32Kind
)

// NewScanner returns an incremental scanner over r under the guards of
// opts. Nothing is read until the first Scan call.
func NewScanner(r io.Reader, opts Options) *Scanner {
	maxBytes := opts.MaxBytes
	if maxBytes < 0 {
		maxBytes = 0
	}
	o := opts.withDefaults()
	return &Scanner{
		r:         r,
		opts:      o,
		maxBytes:  maxBytes,
		guardSeen: make(map[string]bool),
	}
}

// Scan advances to the next normalized line, reporting false at end of
// input or on the first terminal error (see Err).
func (s *Scanner) Scan() bool {
	if s.err != nil || s.done && s.queuePos >= len(s.queue) {
		s.finish()
		return false
	}
	for {
		if s.binOK && s.queuePos < len(s.queue) {
			s.line = s.queue[s.queuePos]
			s.queuePos++
			if s.queuePos == len(s.queue) {
				s.queue = s.queue[:0]
				s.queuePos = 0
			}
			return true
		}
		if s.done {
			s.finish()
			return false
		}
		if err := s.fill(); err != nil {
			s.err = err
			s.finish()
			return false
		}
	}
}

// Line returns the current line (no trailing newline). Valid until the
// next Scan call.
func (s *Scanner) Line() string { return s.line }

// Err returns the terminal error, if any, once Scan has returned false.
// Errors wrap the same taxonomy Normalize uses (ErrTooLarge,
// ErrBadEncoding, ErrEmptyInput, and the Strict-mode guard errors).
func (s *Scanner) Err() error { return s.err }

// BytesRead reports the raw input bytes consumed so far.
func (s *Scanner) BytesRead() int64 { return s.rawRead }

// FinalNewline reports whether the normalized text the in-memory path
// would hand to the parse layer ends with a newline. Normalize preserves a
// trailing newline only on its fast path (no line guard fired); callers
// reconstructing the exact parse-layer input need this bit for the final
// line. Valid once Scan has returned false.
func (s *Scanner) FinalNewline() bool {
	return s.endNL && !s.anyLong && s.prov.LinesTruncated == 0 &&
		(s.opts.MaxLines <= 0 || s.newlines < s.opts.MaxLines)
}

// Provenance returns the record of what scanning did to the bytes. The
// guard list is finalized — in the same canonical order Normalize uses —
// once Scan has returned false.
func (s *Scanner) Provenance() Provenance { return s.prov }

// trip records a guard for the canonical-order finalization.
func (s *Scanner) trip(name string) { s.guardSeen[name] = true }

// canonicalGuardOrder is the order Normalize's checks run in; the scanner
// discovers some conditions later (e.g. a truncated trailing code unit only
// surfaces at EOF) and re-canonicalizes at finish so Provenance.Guards is
// byte-identical between the two paths.
var canonicalGuardOrder = []string{
	GuardUTF16NoBOM,
	GuardTruncatedUnit,
	GuardLatin1Fallback,
	GuardNULsStripped,
	GuardLineEndings,
	GuardLineTruncated,
	GuardLinesDropped,
}

// finish finalizes provenance and records the ingest metrics, once.
func (s *Scanner) finish() {
	if s.finished {
		return
	}
	s.finished = true
	s.prov.BytesIn = int(s.rawRead)
	for _, g := range canonicalGuardOrder {
		if s.guardSeen[g] {
			s.prov.Trip(g)
		}
	}
	if s.err == nil && !s.nonSpace {
		s.err = fmt.Errorf("%w (after normalizing %d input bytes)", ErrEmptyInput, s.rawRead)
	}
	h := s.opts.Obs
	if h.Active() {
		h.Count(obs.MIngestFiles, 1)
		h.Count(obs.MIngestBytesIn, int64(s.prov.BytesIn))
		if s.prov.Encoding != "" {
			h.Count(obs.EncodingMetric(s.prov.Encoding), 1)
		}
		for _, g := range s.prov.Guards {
			h.Count(obs.GuardMetric(g), 1)
		}
		switch {
		case s.err != nil:
			h.Count(obs.MIngestRejected, 1)
		case s.prov.Degraded():
			h.Count(obs.MIngestRepaired, 1)
		}
	}
}

// fill reads and processes one chunk of raw input.
func (s *Scanner) fill() error {
	if !s.sniffed {
		return s.sniff()
	}
	buf := make([]byte, scanChunk)
	n, err := s.r.Read(buf)
	s.rawRead += int64(n)
	if s.maxBytes > 0 && s.rawRead > s.maxBytes {
		return &GuardError{Sentinel: ErrTooLarge, Limit: s.maxBytes, Actual: s.rawRead}
	}
	if n > 0 {
		s.carry = append(s.carry, buf[:n]...)
		if err := s.decodeCarry(false); err != nil {
			return err
		}
	}
	if errors.Is(err, io.EOF) {
		s.eof = true
		if err := s.decodeCarry(true); err != nil {
			return err
		}
		return s.finishInput()
	}
	if err != nil {
		return fmt.Errorf("ingest: read: %w", err)
	}
	return nil
}

// sniff reads the raw prefix and commits to an encoding, mirroring the
// decision ladder of decode().
func (s *Scanner) sniff() error {
	s.sniffed = true
	sniffLen := s.opts.SniffBytes
	if sniffLen <= 0 {
		sniffLen = DefaultSniffBytes
	}
	prefix := make([]byte, 0, sniffLen)
	for len(prefix) < sniffLen {
		buf := make([]byte, sniffLen-len(prefix))
		n, err := s.r.Read(buf)
		s.rawRead += int64(n)
		prefix = append(prefix, buf[:n]...)
		if s.maxBytes > 0 && s.rawRead > s.maxBytes {
			return &GuardError{Sentinel: ErrTooLarge, Limit: s.maxBytes, Actual: s.rawRead}
		}
		if errors.Is(err, io.EOF) {
			s.eof = true
			break
		}
		if err != nil {
			return fmt.Errorf("ingest: read: %w", err)
		}
	}

	prov := &s.prov
	data := prefix
	switch {
	case hasPrefix(data, bomUTF32LE):
		prov.Encoding, prov.BOM = "utf-32le", true
		s.kind, s.order, data = decodeUTF32Kind, binary.LittleEndian, data[4:]
	case hasPrefix(data, bomUTF32BE):
		prov.Encoding, prov.BOM = "utf-32be", true
		s.kind, s.order, data = decodeUTF32Kind, binary.BigEndian, data[4:]
	case hasPrefix(data, bomUTF16LE):
		prov.Encoding, prov.BOM = "utf-16le", true
		s.kind, s.order, data = decodeUTF16Kind, binary.LittleEndian, data[2:]
	case hasPrefix(data, bomUTF16BE):
		prov.Encoding, prov.BOM = "utf-16be", true
		s.kind, s.order, data = decodeUTF16Kind, binary.BigEndian, data[2:]
	case hasPrefix(data, bomUTF8):
		prov.Encoding, prov.BOM = "utf-8", true
		data = data[3:]
		s.kind = decodeUTF8Kind
	}

	if !prov.BOM {
		if order, ok := sniffBOMlessUTF16(data); ok {
			prov.Encoding = "utf-16" + orderName(order)
			if s.opts.Strict {
				return fmt.Errorf("%w: BOM-less UTF-16 (%s)", ErrBadEncoding, prov.Encoding)
			}
			s.trip(GuardUTF16NoBOM)
			s.kind, s.order = decodeUTF16Kind, order
		}
	}

	if s.kind == decodeUTF8Kind {
		// Validate the prefix as UTF-8, ignoring a split trailing rune
		// unless the prefix is the whole input.
		check := data
		if !s.eof {
			check = trimIncompleteRune(check)
		}
		if utf8.Valid(check) {
			if prov.Encoding == "" {
				prov.Encoding = "utf-8"
			}
		} else {
			prov.Encoding = "latin-1"
			if s.opts.Strict {
				return fmt.Errorf("%w: invalid UTF-8", ErrBadEncoding)
			}
			s.trip(GuardLatin1Fallback)
			s.kind = decodeLatin1Kind
		}
	}

	s.carry = append(s.carry, data...)
	if err := s.decodeCarry(s.eof); err != nil {
		return err
	}
	if s.eof {
		return s.finishInput()
	}
	return nil
}

// trimIncompleteRune drops a trailing truncated multi-byte UTF-8 sequence,
// so chunk boundaries never misreport invalidity. Complete-but-invalid
// bytes are kept: they are genuinely invalid, not an artifact of chunking.
func trimIncompleteRune(data []byte) []byte {
	end := len(data)
	for i := 1; i <= utf8.UTFMax && i <= end; i++ {
		b := data[end-i]
		if !utf8.RuneStart(b) {
			continue
		}
		// b leads a sequence occupying the last i bytes so far.
		if need := utf8SeqLen(b); need > i {
			return data[:end-i]
		}
		return data
	}
	return data
}

// utf8SeqLen returns the byte length the lead byte b announces, or 1 for a
// byte that cannot lead a sequence (invalid, not truncated).
func utf8SeqLen(b byte) int {
	switch {
	case b < 0x80:
		return 1
	case b&0xE0 == 0xC0:
		return 2
	case b&0xF0 == 0xE0:
		return 3
	case b&0xF8 == 0xF0:
		return 4
	}
	return 1
}

// decodeCarry decodes as much of the raw carry as the encoding allows and
// feeds the resulting text through the rune pipeline.
func (s *Scanner) decodeCarry(atEOF bool) error {
	if len(s.carry) == 0 && !(atEOF && s.heldSet) {
		return nil
	}
	var text string
	var err error
	switch s.kind {
	case decodeLatin1Kind:
		runes := make([]rune, len(s.carry))
		for i, b := range s.carry {
			runes[i] = rune(b)
		}
		text, s.carry = string(runes), s.carry[:0]
	case decodeUTF16Kind:
		text, err = s.decodeUTF16Carry(atEOF)
	case decodeUTF32Kind:
		text, err = s.decodeUTF32Carry(atEOF)
	default:
		text, err = s.decodeUTF8Carry(atEOF)
	}
	if err != nil {
		return err
	}
	return s.processText(text)
}

// decodeUTF8Carry passes valid UTF-8 through, repairing invalid sequences
// byte-by-byte as latin-1 (the streaming form of the whole-file fallback).
func (s *Scanner) decodeUTF8Carry(atEOF bool) (string, error) {
	data := s.carry
	if !atEOF {
		data = trimIncompleteRune(data)
	}
	rest := s.carry[len(data):]
	if utf8.Valid(data) {
		text := string(data)
		s.carry = append(s.carry[:0], rest...)
		return text, nil
	}
	if s.opts.Strict {
		return "", fmt.Errorf("%w: invalid UTF-8", ErrBadEncoding)
	}
	if !s.latinTip {
		s.latinTip = true
		s.trip(GuardLatin1Fallback)
	}
	var b strings.Builder
	b.Grow(len(data))
	for i := 0; i < len(data); {
		r, size := utf8.DecodeRune(data[i:])
		if r == utf8.RuneError && size == 1 {
			b.WriteRune(rune(data[i]))
			i++
			continue
		}
		b.WriteRune(r)
		i += size
	}
	s.carry = append(s.carry[:0], rest...)
	return b.String(), nil
}

func (s *Scanner) decodeUTF16Carry(atEOF bool) (string, error) {
	data := s.carry
	n := len(data) &^ 1
	units := make([]uint16, 0, n/2+1)
	if s.heldSet {
		units = append(units, s.held)
		s.heldSet = false
	}
	for i := 0; i+2 <= n; i += 2 {
		units = append(units, s.order.Uint16(data[i:]))
	}
	s.carry = append(s.carry[:0], data[n:]...)
	if !atEOF && len(units) > 0 {
		// Hold a trailing high surrogate: its pair may open the next chunk.
		if last := units[len(units)-1]; last >= 0xD800 && last < 0xDC00 {
			s.held, s.heldSet = last, true
			units = units[:len(units)-1]
		}
	}
	if atEOF && len(s.carry) > 0 {
		if s.opts.Strict {
			return "", fmt.Errorf("%w: truncated UTF-16 (odd byte count %d)", ErrBadEncoding, s.rawRead)
		}
		s.trip(GuardTruncatedUnit)
		s.carry = s.carry[:0]
	}
	return string(utf16.Decode(units)), nil
}

func (s *Scanner) decodeUTF32Carry(atEOF bool) (string, error) {
	data := s.carry
	n := len(data) &^ 3
	runes := make([]rune, 0, n/4)
	for i := 0; i+4 <= n; i += 4 {
		r := rune(s.order.Uint32(data[i:]))
		if !utf8.ValidRune(r) {
			r = utf8.RuneError
		}
		runes = append(runes, r)
	}
	s.carry = append(s.carry[:0], data[n:]...)
	if atEOF && len(s.carry) > 0 {
		if s.opts.Strict {
			return "", fmt.Errorf("%w: truncated UTF-32 (%d trailing bytes)", ErrBadEncoding, len(s.carry))
		}
		s.trip(GuardTruncatedUnit)
		s.carry = s.carry[:0]
	}
	return string(runes), nil
}

// processText runs decoded text through NUL stripping, the binary check,
// line-ending normalization, and line assembly.
func (s *Scanner) processText(text string) error {
	for _, r := range text {
		if r == 0 {
			if s.opts.Strict {
				return fmt.Errorf("%w: %d NUL bytes", ErrBadEncoding, s.prov.NULsStripped+1)
			}
			s.prov.NULsStripped++
			s.trip(GuardNULsStripped)
			continue
		}
		if !s.binOK {
			s.sampleTot++
			if isControl(r) {
				s.sampleCtl++
			}
			if s.sampleTot >= 4096 {
				if err := s.checkBinary(); err != nil {
					return err
				}
			}
		}
		if err := s.pushRune(r); err != nil {
			return err
		}
	}
	return nil
}

// checkBinary applies the control-character rejection rule over the sample
// collected so far (Normalize samples the first 4096 post-NUL runes).
func (s *Scanner) checkBinary() error {
	s.binOK = true
	if s.sampleTot >= 32 && s.sampleCtl*5 > s.sampleTot {
		return fmt.Errorf("%w: %d control characters in first %d runes (%s)",
			ErrBadEncoding, s.sampleCtl, s.sampleTot, s.prov.Encoding)
	}
	return nil
}

// pushRune applies CR/CRLF normalization and appends to the current line.
func (s *Scanner) pushRune(r rune) error {
	if s.pendingCR {
		s.pendingCR = false
		if err := s.breakLine(); err != nil {
			return err
		}
		if r == '\n' {
			return nil // CRLF collapses to one newline
		}
	}
	switch r {
	case '\r':
		s.prov.LineEndingsNormalized++
		s.trip(GuardLineEndings)
		s.pendingCR = true
		return nil
	case '\n':
		return s.breakLine()
	}
	n := utf8.RuneLen(r)
	if s.opts.MaxLineBytes <= 0 || len(s.cur)+n <= s.opts.MaxLineBytes {
		s.cur = utf8.AppendRune(s.cur, r)
	}
	s.curLen += n
	return nil
}

// breakLine finalizes the current line at a newline.
func (s *Scanner) breakLine() error {
	s.newlines++
	s.endNL = true
	return s.endLine()
}

// endLine applies the per-line guards and queues the line.
func (s *Scanner) endLine() error {
	defer func() { s.cur, s.curLen = s.cur[:0], 0 }()
	if s.opts.MaxLines > 0 && s.kept >= s.opts.MaxLines {
		if s.opts.Strict {
			return &GuardError{Sentinel: ErrTooManyLines, Limit: int64(s.opts.MaxLines), Actual: int64(s.kept + s.prov.LinesDropped + 1)}
		}
		s.prov.LinesDropped++
		s.trip(GuardLinesDropped)
		return nil
	}
	line := string(s.cur)
	if s.opts.MaxLineBytes > 0 && s.curLen > s.opts.MaxLineBytes {
		if s.opts.Strict {
			return &GuardError{Sentinel: ErrLineTooLong, Limit: int64(s.opts.MaxLineBytes), Actual: int64(s.curLen)}
		}
		line = truncateAtRune(line, s.opts.MaxLineBytes)
		s.anyLong = true
		s.prov.LinesTruncated++
		s.trip(GuardLineTruncated)
	}
	if !s.nonSpace && strings.TrimSpace(line) != "" {
		s.nonSpace = true
	}
	s.queue = append(s.queue, line)
	s.kept++
	return nil
}

// finishInput flushes the trailing partial line and marks the stream done.
func (s *Scanner) finishInput() error {
	if !s.binOK {
		// Inputs shorter than the binary-rejection sample are judged on
		// what there is, exactly as rejectBinary does.
		if err := s.checkBinary(); err != nil {
			return err
		}
	}
	if s.pendingCR {
		s.pendingCR = false
		if err := s.breakLine(); err != nil {
			return err
		}
	}
	if s.curLen > 0 {
		s.endNL = false
		if err := s.endLine(); err != nil {
			return err
		}
	}
	s.done = true
	return nil
}

package ingest

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unicode/utf8"
)

func mustNormalize(t *testing.T, data []byte, opts Options) Result {
	t.Helper()
	res, err := Normalize(data, opts)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	return res
}

// checkClean asserts the invariants every successful Normalize guarantees.
func checkClean(t *testing.T, res Result) {
	t.Helper()
	if !utf8.ValidString(res.Text) {
		t.Error("output is not valid UTF-8")
	}
	if strings.ContainsRune(res.Text, 0) {
		t.Error("output contains NUL")
	}
	if strings.ContainsRune(res.Text, '\r') {
		t.Error("output contains CR")
	}
}

func TestNormalizePlainUTF8(t *testing.T) {
	res := mustNormalize(t, []byte("a,b\n1,2\n"), Options{})
	checkClean(t, res)
	if res.Text != "a,b\n1,2\n" {
		t.Errorf("text = %q, want passthrough", res.Text)
	}
	if res.Provenance.Encoding != "utf-8" || res.Provenance.BOM {
		t.Errorf("provenance = %+v, want clean utf-8 without BOM", res.Provenance)
	}
	if res.Provenance.Degraded() {
		t.Errorf("clean input marked degraded: %v", res.Provenance.Guards)
	}
}

func TestNormalizeUTF8BOM(t *testing.T) {
	res := mustNormalize(t, []byte("\xEF\xBB\xBFa,b\n"), Options{})
	if res.Text != "a,b\n" {
		t.Errorf("text = %q, want BOM stripped", res.Text)
	}
	if !res.Provenance.BOM || res.Provenance.Encoding != "utf-8" {
		t.Errorf("provenance = %+v, want utf-8 with BOM", res.Provenance)
	}
}

func TestNormalizeUTF16(t *testing.T) {
	for _, tc := range []struct {
		name     string
		file     string
		encoding string
		bom      bool
	}{
		{"le-bom", "utf16_le", "utf-16le", true},
		{"be-bom", "utf16_be", "utf-16be", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var data []byte
			if tc.name == "le-bom" {
				data = []byte{0xFF, 0xFE, 'a', 0, ',', 0, 'b', 0, '\n', 0}
			} else {
				data = []byte{0xFE, 0xFF, 0, 'a', 0, ',', 0, 'b', 0, '\n'}
			}
			res := mustNormalize(t, data, Options{})
			checkClean(t, res)
			if res.Text != "a,b\n" {
				t.Errorf("text = %q, want a,b\\n", res.Text)
			}
			if res.Provenance.Encoding != tc.encoding || res.Provenance.BOM != tc.bom {
				t.Errorf("provenance = %+v", res.Provenance)
			}
		})
	}
}

func TestNormalizeTruncatedUTF16(t *testing.T) {
	data := []byte{0xFF, 0xFE, 'a', 0, ',', 0, 'b', 0, '\n', 0}
	data = data[:len(data)-1] // tear the final code unit
	res := mustNormalize(t, data, Options{})
	checkClean(t, res)
	if res.Text != "a,b" && res.Text != "a,b\n" {
		t.Errorf("text = %q", res.Text)
	}
	if !hasGuard(res.Provenance, GuardTruncatedUnit) {
		t.Errorf("guards = %v, want %s", res.Provenance.Guards, GuardTruncatedUnit)
	}
	if _, err := Normalize(data, Options{Strict: true}); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("strict truncated UTF-16: err = %v, want ErrBadEncoding", err)
	}
}

func TestNormalizeBOMlessUTF16(t *testing.T) {
	text := "name,value\nalpha,1\nbeta,2\n"
	le := make([]byte, 2*len(text))
	for i := 0; i < len(text); i++ {
		le[2*i] = text[i]
	}
	res := mustNormalize(t, le, Options{})
	checkClean(t, res)
	if res.Text != text {
		t.Errorf("text = %q, want %q", res.Text, text)
	}
	if res.Provenance.Encoding != "utf-16le" || !hasGuard(res.Provenance, GuardUTF16NoBOM) {
		t.Errorf("provenance = %+v, want heuristic utf-16le", res.Provenance)
	}
}

func TestNormalizeLatin1Fallback(t *testing.T) {
	res := mustNormalize(t, []byte("caf\xe9,r\xe9gion\n"), Options{})
	checkClean(t, res)
	if res.Text != "café,région\n" {
		t.Errorf("text = %q", res.Text)
	}
	if res.Provenance.Encoding != "latin-1" || !hasGuard(res.Provenance, GuardLatin1Fallback) {
		t.Errorf("provenance = %+v, want latin-1 fallback recorded", res.Provenance)
	}
	if _, err := Normalize([]byte("caf\xe9\n"), Options{Strict: true}); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("strict invalid UTF-8: err = %v, want ErrBadEncoding", err)
	}
}

func TestNormalizeNULStripping(t *testing.T) {
	res := mustNormalize(t, []byte("a\x00,b\x00\n1,2\n"), Options{})
	checkClean(t, res)
	if res.Text != "a,b\n1,2\n" {
		t.Errorf("text = %q", res.Text)
	}
	if res.Provenance.NULsStripped != 2 || !hasGuard(res.Provenance, GuardNULsStripped) {
		t.Errorf("provenance = %+v, want 2 NULs recorded", res.Provenance)
	}
	if _, err := Normalize([]byte("a\x00b\n"), Options{Strict: true}); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("strict NULs: err = %v, want ErrBadEncoding", err)
	}
}

func TestNormalizeLineEndings(t *testing.T) {
	res := mustNormalize(t, []byte("a,b\r\n1,2\rx,y\n"), Options{})
	checkClean(t, res)
	if res.Text != "a,b\n1,2\nx,y\n" {
		t.Errorf("text = %q", res.Text)
	}
	if res.Provenance.LineEndingsNormalized != 2 {
		t.Errorf("LineEndingsNormalized = %d, want 2", res.Provenance.LineEndingsNormalized)
	}
}

func TestSizeGuard(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 100)
	if _, err := Normalize(data, Options{MaxBytes: 64}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	var ge *GuardError
	_, err := Normalize(data, Options{MaxBytes: 64})
	if !errors.As(err, &ge) || ge.Limit != 64 || ge.Actual != 100 {
		t.Errorf("GuardError = %+v, want limit 64 actual 100", ge)
	}
	// Negative disables the guard.
	if _, err := Normalize(data, Options{MaxBytes: -1}); err != nil {
		t.Errorf("MaxBytes<0 should disable the guard: %v", err)
	}
}

func TestLineLengthGuard(t *testing.T) {
	long := strings.Repeat("wide,", 100) + "\nshort,1\n"
	res := mustNormalize(t, []byte(long), Options{MaxLineBytes: 64})
	checkClean(t, res)
	lines := strings.Split(res.Text, "\n")
	if len(lines[0]) > 64 {
		t.Errorf("line 0 is %d bytes, want ≤64", len(lines[0]))
	}
	if lines[1] != "short,1" {
		t.Errorf("line 1 = %q, want untouched", lines[1])
	}
	if res.Provenance.LinesTruncated != 1 || !hasGuard(res.Provenance, GuardLineTruncated) {
		t.Errorf("provenance = %+v, want 1 truncated line", res.Provenance)
	}
	if _, err := Normalize([]byte(long), Options{MaxLineBytes: 64, Strict: true}); !errors.Is(err, ErrLineTooLong) {
		t.Errorf("strict: err = %v, want ErrLineTooLong", err)
	}
}

func TestLineLengthGuardKeepsRuneBoundary(t *testing.T) {
	line := strings.Repeat("é", 40) // 2 bytes each
	res := mustNormalize(t, []byte(line+"\nx\n"), Options{MaxLineBytes: 33})
	checkClean(t, res)
}

func TestLineCountGuard(t *testing.T) {
	many := strings.Repeat("r,1\n", 50)
	res := mustNormalize(t, []byte(many), Options{MaxLines: 10})
	checkClean(t, res)
	if got := strings.Count(res.Text, "\n") + 1; got > 11 {
		t.Errorf("%d lines survive, want ≤11", got)
	}
	if res.Provenance.LinesDropped == 0 || !hasGuard(res.Provenance, GuardLinesDropped) {
		t.Errorf("provenance = %+v, want dropped lines recorded", res.Provenance)
	}
	if _, err := Normalize([]byte(many), Options{MaxLines: 10, Strict: true}); !errors.Is(err, ErrTooManyLines) {
		t.Errorf("strict: err = %v, want ErrTooManyLines", err)
	}
}

func TestEmptyInput(t *testing.T) {
	for _, data := range [][]byte{nil, []byte(""), []byte("   \n\t\n"), []byte("\x00\x00")} {
		if _, err := Normalize(data, Options{}); !errors.Is(err, ErrEmptyInput) && !errors.Is(err, ErrBadEncoding) {
			t.Errorf("Normalize(%q): err = %v, want ErrEmptyInput", data, err)
		}
	}
	if _, err := Normalize([]byte("  \n "), Options{}); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("whitespace-only: err = %v, want ErrEmptyInput", err)
	}
}

func TestBinaryRejected(t *testing.T) {
	files := GenerateHostile(FaultOptions{Seed: 1, LongLineBytes: 1 << 10})
	var blob []byte
	for _, f := range files {
		if f.Name == "binary_blob.csv" {
			blob = f.Data
		}
	}
	if blob == nil {
		t.Fatal("generator lost binary_blob.csv")
	}
	if _, err := Normalize(blob, Options{}); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("binary blob: err = %v, want ErrBadEncoding", err)
	}
}

func TestReadFileStatGuard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.csv")
	if err := os.WriteFile(path, bytes.Repeat([]byte("a"), 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path, Options{MaxBytes: 1024}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge from stat", err)
	}
	res, err := ReadFile(path, Options{})
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if res.Provenance.BytesIn != 4096 {
		t.Errorf("BytesIn = %d, want 4096", res.Provenance.BytesIn)
	}
}

func TestReadCapsStream(t *testing.T) {
	// A reader longer than MaxBytes must be rejected without reading it all.
	r := io_LimitlessReader{}
	if _, err := Read(r, Options{MaxBytes: 1 << 16}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

// io_LimitlessReader yields 'a' forever.
type io_LimitlessReader struct{}

func (io_LimitlessReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 'a'
	}
	return len(p), nil
}

func TestProvenanceCloneAndTrip(t *testing.T) {
	p := &Provenance{Encoding: "utf-8"}
	p.Trip("a")
	p.Trip("b")
	p.Trip("a") // dedup
	if len(p.Guards) != 2 {
		t.Errorf("Guards = %v, want deduplicated [a b]", p.Guards)
	}
	c := p.Clone()
	c.Trip("c")
	if len(p.Guards) != 2 || len(c.Guards) != 3 {
		t.Error("Clone shares the Guards slice")
	}
	if (*Provenance)(nil).Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
	reasons := p.DegradedReasons()
	reasons[0] = "mutated"
	if p.Guards[0] == "mutated" {
		t.Error("DegradedReasons aliases Guards")
	}
}

func TestGenerateHostileDeterministic(t *testing.T) {
	a := GenerateHostile(FaultOptions{Seed: 42, LongLineBytes: 1 << 12})
	b := GenerateHostile(FaultOptions{Seed: 42, LongLineBytes: 1 << 12})
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("corpus sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || !bytes.Equal(a[i].Data, b[i].Data) {
			t.Errorf("file %d (%s) differs across identically-seeded runs", i, a[i].Name)
		}
	}
}

// TestHostileCorpusNeverPanics is the package-level half of the crash-corpus
// requirement: every generated hostile file must normalize to clean text or
// a typed taxonomy error.
func TestHostileCorpusNeverPanics(t *testing.T) {
	files := GenerateHostile(FaultOptions{Seed: 7, LongLineBytes: 1 << 16, ManyLines: 5000, ManyCells: 5000})
	taxonomy := []error{ErrTooLarge, ErrBadEncoding, ErrEmptyInput, ErrLineTooLong, ErrTooManyLines, ErrTooManyCells}
	for _, f := range files {
		res, err := Normalize(f.Data, Options{})
		if err != nil {
			typed := false
			for _, sentinel := range taxonomy {
				if errors.Is(err, sentinel) {
					typed = true
					break
				}
			}
			if !typed {
				t.Errorf("%s: untyped error %v", f.Name, err)
			}
			continue
		}
		checkClean(t, res)
	}
}

func hasGuard(p Provenance, name string) bool {
	for _, g := range p.Guards {
		if g == name {
			return true
		}
	}
	return false
}

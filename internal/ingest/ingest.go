// Package ingest is the hardened front door for raw bytes entering the
// Strudel pipeline. Real-world verbose CSV files arrive in mixed encodings,
// with stray NUL bytes, megabyte-long lines, and the occasional binary blob
// renamed to .csv (van den Burg et al. 2019 catalogue the damage). Feeding
// such bytes straight into parsing either panics, silently produces garbage
// tables, or balloons memory. This package turns arbitrary bytes into clean,
// bounded, NUL-free, LF-terminated UTF-8 text — or a typed error explaining
// why the file was rejected — and records everything it did to the bytes in
// a Provenance value so downstream consumers can tell pristine input from
// repaired input.
//
// The error taxonomy distinguishes reject-the-file conditions (ErrTooLarge,
// ErrBadEncoding, ErrEmptyInput) from fix-it-up conditions (overlong lines,
// excess lines, NUL bytes) that are repaired in place and reported through
// Provenance. Setting Options.Strict promotes every fix-up to its typed
// error (ErrLineTooLong, ErrTooManyLines, ...), for callers that would
// rather refuse a damaged file than annotate a repaired one.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"unicode/utf8"

	"strudel/internal/obs"
)

// Sentinel errors of the ingest taxonomy. Every error returned by this
// package wraps exactly one of them, so callers dispatch with errors.Is.
var (
	// ErrTooLarge rejects input exceeding Options.MaxBytes. Always fatal:
	// truncating a file mid-structure silently drops tables.
	ErrTooLarge = errors.New("ingest: input exceeds size limit")
	// ErrBadEncoding rejects input that decodes to control-character soup
	// (binary data with a .csv extension), or, under Strict, input needing
	// any encoding repair at all.
	ErrBadEncoding = errors.New("ingest: undecodable or binary input")
	// ErrEmptyInput rejects input that is empty — or all whitespace — after
	// normalization.
	ErrEmptyInput = errors.New("ingest: empty input")
	// ErrLineTooLong is the Strict-mode form of the line-length guard.
	ErrLineTooLong = errors.New("ingest: line exceeds length limit")
	// ErrTooManyLines is the Strict-mode form of the line-count guard.
	ErrTooManyLines = errors.New("ingest: line count exceeds limit")
	// ErrTooManyCells is the Strict-mode form of the cells-per-line guard
	// (enforced by the parse layer, which splits cells; see Provenance.Trip).
	ErrTooManyCells = errors.New("ingest: cells per line exceed limit")
	// ErrCancelled classifies a read aborted by context cancellation or a
	// deadline (a request body whose client went away, a per-request
	// timeout firing mid-read). It wraps the context error that caused it,
	// so both errors.Is(err, ErrCancelled) and errors.Is(err,
	// context.Canceled) (or DeadlineExceeded) hold on the same chain.
	ErrCancelled = errors.New("ingest: read cancelled")
)

// A GuardError wraps a sentinel with the limit that tripped and the value
// observed, so error messages and logs carry both numbers. For sentinels
// without a numeric limit (ErrCancelled), Cause carries the underlying
// error instead and participates in the unwrap chain.
type GuardError struct {
	Sentinel error
	Limit    int64
	Actual   int64
	Cause    error
}

func (e *GuardError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("%v: %v", e.Sentinel, e.Cause)
	}
	return fmt.Sprintf("%v (limit %d, got %d)", e.Sentinel, e.Limit, e.Actual)
}

// Unwrap makes errors.Is(err, ErrTooLarge) etc. work through a GuardError —
// and, when a Cause is attached (ErrCancelled wrapping context.Canceled),
// lets errors.Is reach both the taxonomy sentinel and the original cause.
func (e *GuardError) Unwrap() []error {
	if e.Cause != nil {
		return []error{e.Sentinel, e.Cause}
	}
	return []error{e.Sentinel}
}

// IsCancellation reports whether err is (or wraps) a context cancellation
// or deadline.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// WrapCancelled maps a context cancellation or deadline surfaced by an I/O
// error onto the typed taxonomy: the result satisfies errors.Is for both
// ErrCancelled and the original context error. Non-context errors pass
// through unchanged.
func WrapCancelled(err error) error {
	if err == nil {
		return nil
	}
	if IsCancellation(err) {
		return &GuardError{Sentinel: ErrCancelled, Cause: err}
	}
	return err
}

// Default resource guards. They are deliberately generous: the point is to
// survive adversarial input, not to reject big-but-honest files.
const (
	DefaultMaxBytes        = 64 << 20 // 64 MiB per file
	DefaultMaxLineBytes    = 1 << 20  // 1 MiB per line
	DefaultMaxLines        = 1 << 20  // ~1M lines
	DefaultMaxCellsPerLine = 1 << 16  // 65536 cells per line
)

// Options configures the guards and repair policy. The zero value applies
// the package defaults; set a limit negative to disable it.
type Options struct {
	// MaxBytes caps total input size; exceeding it is always ErrTooLarge.
	MaxBytes int64
	// MaxLineBytes caps the UTF-8 byte length of a single normalized line.
	// Longer lines are truncated at a rune boundary (or rejected in Strict).
	MaxLineBytes int
	// MaxLines caps the number of lines kept; the rest are dropped (or the
	// file rejected in Strict).
	MaxLines int
	// MaxCellsPerLine caps cells per parsed row. Ingest itself does not
	// split cells; the parse layer reads this limit and records drops via
	// Provenance.Trip.
	MaxCellsPerLine int
	// Strict promotes every fix-up (encoding repair, NUL stripping, line
	// truncation) to a typed error instead of repairing and recording.
	Strict bool
	// SniffBytes caps the raw prefix a Scanner inspects before committing
	// to a source encoding (zero or negative applies DefaultSniffBytes).
	// Normalize ignores it: with the whole input in hand there is nothing
	// to sniff.
	SniffBytes int
	// Obs observes ingestion: bytes in, encoding repairs, guard trips,
	// rejections. Nil disables observation at no cost. The strudel loaders
	// fill this from LoadOptions.Obs; set it directly only when calling
	// ingest without the strudel layer.
	Obs *obs.Hooks
}

func (o Options) withDefaults() Options {
	if o.MaxBytes == 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.MaxLineBytes == 0 {
		o.MaxLineBytes = DefaultMaxLineBytes
	}
	if o.MaxLines == 0 {
		o.MaxLines = DefaultMaxLines
	}
	if o.MaxCellsPerLine == 0 {
		o.MaxCellsPerLine = DefaultMaxCellsPerLine
	}
	return o
}

// Provenance records what ingest (and the parse layer above it) did to a
// file's bytes. Guard names appear in Guards in the fixed order the checks
// run, so output is deterministic.
type Provenance struct {
	// Encoding is the detected source encoding: "utf-8", "utf-16le",
	// "utf-16be", "utf-32le", "utf-32be", or "latin-1" (the fallback for
	// invalid UTF-8).
	Encoding string `json:"encoding"`
	// BOM reports whether a byte-order mark led the file.
	BOM bool `json:"bom,omitempty"`
	// BytesIn is the raw input size before any normalization.
	BytesIn int `json:"bytes_in"`
	// NULsStripped counts NUL runes removed after decoding.
	NULsStripped int `json:"nuls_stripped,omitempty"`
	// LineEndingsNormalized counts CRLF/CR sequences rewritten to LF.
	LineEndingsNormalized int `json:"line_endings_normalized,omitempty"`
	// LinesTruncated counts lines cut at MaxLineBytes.
	LinesTruncated int `json:"lines_truncated,omitempty"`
	// LinesDropped counts lines discarded beyond MaxLines.
	LinesDropped int `json:"lines_dropped,omitempty"`
	// CellsDropped counts cells discarded beyond MaxCellsPerLine (recorded
	// by the parse layer).
	CellsDropped int `json:"cells_dropped,omitempty"`
	// Guards lists the names of guards and repairs that fired, in check
	// order, deduplicated.
	Guards []string `json:"guards,omitempty"`

	// The fields below are filled by the strudel layer after dialect
	// detection; ingest itself never touches them.

	// Dialect is the dialect the file was parsed under (Dialect.String form).
	Dialect string `json:"dialect,omitempty"`
	// DialectScore is the winning dialect's consistency score Q in [0, 1].
	DialectScore float64 `json:"dialect_score,omitempty"`
	// DialectMargin is the winner's score lead over the runner-up.
	DialectMargin float64 `json:"dialect_margin,omitempty"`
	// DialectFallback reports that detection scored below the confidence
	// floor and the comma dialect was substituted.
	DialectFallback bool `json:"dialect_fallback,omitempty"`
}

// Trip records that the named guard fired, keeping Guards deduplicated.
// The parse and strudel layers use it for the guards they own
// (cells-per-line, dialect fallback).
func (p *Provenance) Trip(name string) {
	for _, g := range p.Guards {
		if g == name {
			return
		}
	}
	p.Guards = append(p.Guards, name)
}

// Degraded reports whether any repair or fallback touched the file — i.e.
// the annotation downstream describes repaired bytes, not the original.
func (p *Provenance) Degraded() bool { return len(p.Guards) > 0 }

// DegradedReasons returns the guard names, aliased for callers that want to
// surface them verbatim (nil when the file passed through untouched).
func (p *Provenance) DegradedReasons() []string {
	if len(p.Guards) == 0 {
		return nil
	}
	return append([]string(nil), p.Guards...)
}

// Clone returns an independent copy.
func (p *Provenance) Clone() *Provenance {
	if p == nil {
		return nil
	}
	c := *p
	c.Guards = append([]string(nil), p.Guards...)
	return &c
}

// Guard and repair names recorded in Provenance.Guards.
const (
	GuardLatin1Fallback = "latin1-fallback"  // invalid UTF-8 decoded as latin-1
	GuardUTF16NoBOM     = "utf16-no-bom"     // UTF-16 detected heuristically
	GuardTruncatedUnit  = "truncated-unit"   // trailing partial UTF-16/32 code unit dropped
	GuardNULsStripped   = "nuls-stripped"    // NUL runes removed
	GuardLineEndings    = "line-endings"     // CR / CRLF rewritten to LF
	GuardLineTruncated  = "max-line-bytes"   // overlong line cut
	GuardLinesDropped   = "max-lines"        // excess lines discarded
	GuardCellsDropped   = "max-cells"        // excess cells per row discarded (parse layer)
	GuardDialectScore   = "dialect-fallback" // low-confidence dialect replaced by comma
)

// Result is normalized text plus the record of how it was produced.
type Result struct {
	// Text is clean parse-ready input: valid UTF-8, no NULs, no CR, every
	// line within the configured guards.
	Text string
	// Provenance records the repairs and guard trips.
	Provenance Provenance
}

// Normalize turns raw bytes into parse-ready text, applying the encoding
// and resource policy of opts. It is the single choke point every reader in
// this module funnels through — which also makes it the single point where
// ingestion is observed: when opts.Obs is set, Normalize records bytes in,
// the detected encoding, every guard trip, and the accept/reject/repair
// outcome, and times itself under obs.StageIngest.
func Normalize(data []byte, opts Options) (Result, error) {
	opts = opts.withDefaults()
	h := opts.Obs
	start := h.SpanStart(obs.StageIngest)
	res, err := normalize(data, opts)
	h.SpanEnd(obs.StageIngest, start)
	recordIngest(h, res, err)
	return res, err
}

// recordIngest translates one normalization outcome into metrics: the
// per-guard counters mirror Provenance.Guards name for name, so "degraded
// reasons by kind" is answerable straight from a snapshot.
func recordIngest(h *obs.Hooks, res Result, err error) {
	if !h.Active() {
		return
	}
	h.Count(obs.MIngestFiles, 1)
	h.Count(obs.MIngestBytesIn, int64(res.Provenance.BytesIn))
	if res.Provenance.Encoding != "" {
		h.Count(obs.EncodingMetric(res.Provenance.Encoding), 1)
	}
	for _, g := range res.Provenance.Guards {
		h.Count(obs.GuardMetric(g), 1)
	}
	switch {
	case err != nil:
		h.Count(obs.MIngestRejected, 1)
	case res.Provenance.Degraded():
		h.Count(obs.MIngestRepaired, 1)
	}
}

// normalize is the observation-free body of Normalize.
func normalize(data []byte, opts Options) (Result, error) {
	res := Result{Provenance: Provenance{BytesIn: len(data)}}
	prov := &res.Provenance

	if opts.MaxBytes > 0 && int64(len(data)) > opts.MaxBytes {
		return res, &GuardError{Sentinel: ErrTooLarge, Limit: opts.MaxBytes, Actual: int64(len(data))}
	}

	text, err := decode(data, opts, prov)
	if err != nil {
		return res, err
	}
	if text, err = stripNULs(text, opts, prov); err != nil {
		return res, err
	}
	if err := rejectBinary(text, prov); err != nil {
		return res, err
	}
	text = normalizeLineEndings(text, prov)
	if text, err = applyLineGuards(text, opts, prov); err != nil {
		return res, err
	}
	if strings.TrimSpace(text) == "" {
		return res, fmt.Errorf("%w (after normalizing %d input bytes)", ErrEmptyInput, len(data))
	}
	res.Text = text
	return res, nil
}

// stripNULs removes NUL runes, recording how many. NULs are stray bytes in
// practice (mis-spliced UTF-16, sensor padding); under Strict they reject.
func stripNULs(text string, opts Options, prov *Provenance) (string, error) {
	n := strings.Count(text, "\x00")
	if n == 0 {
		return text, nil
	}
	if opts.Strict {
		return "", fmt.Errorf("%w: %d NUL bytes", ErrBadEncoding, n)
	}
	prov.NULsStripped = n
	prov.Trip(GuardNULsStripped)
	return strings.ReplaceAll(text, "\x00", ""), nil
}

// rejectBinary refuses decoded text that is mostly control characters — the
// signature of binary data (images, archives, executables) renamed to .csv.
// The check runs after NUL stripping so NUL-padded but otherwise textual
// files survive.
func rejectBinary(text string, prov *Provenance) error {
	const sample = 4096
	controls, total := 0, 0
	for _, r := range text {
		if total >= sample {
			break
		}
		total++
		if isControl(r) {
			controls++
		}
	}
	if total >= 32 && controls*5 > total { // >20% control characters
		return fmt.Errorf("%w: %d control characters in first %d runes (%s)",
			ErrBadEncoding, controls, total, prov.Encoding)
	}
	return nil
}

// isControl reports C0/C1 control characters other than the text whitespace
// \t, \n, \r, plus the replacement character produced by decode errors.
func isControl(r rune) bool {
	switch r {
	case '\t', '\n', '\r':
		return false
	case utf8.RuneError:
		return true
	}
	return r < 0x20 || (r >= 0x7F && r <= 0x9F)
}

// normalizeLineEndings rewrites CRLF and bare CR to LF. This happens before
// parsing — including inside quoted fields, deliberately: provenance records
// the rewrite, and a single line-separator convention is what makes the
// line guards and the labels sidecar format well-defined.
func normalizeLineEndings(text string, prov *Provenance) string {
	n := strings.Count(text, "\r")
	if n == 0 {
		return text
	}
	prov.LineEndingsNormalized = n
	prov.Trip(GuardLineEndings)
	text = strings.ReplaceAll(text, "\r\n", "\n")
	return strings.ReplaceAll(text, "\r", "\n")
}

// applyLineGuards enforces MaxLineBytes and MaxLines on LF-separated text.
func applyLineGuards(text string, opts Options, prov *Provenance) (string, error) {
	// Fast path: no line longer than the cap and few enough newlines.
	if opts.MaxLineBytes <= 0 || !hasLongLine(text, opts.MaxLineBytes) {
		if opts.MaxLines <= 0 || strings.Count(text, "\n") < opts.MaxLines {
			return text, nil
		}
	}

	var b strings.Builder
	b.Grow(len(text))
	kept := 0
	for start := 0; start < len(text); {
		end := strings.IndexByte(text[start:], '\n')
		var line string
		if end < 0 {
			line, start = text[start:], len(text)
		} else {
			line, start = text[start:start+end], start+end+1
		}
		if opts.MaxLines > 0 && kept >= opts.MaxLines {
			prov.LinesDropped++
			continue
		}
		if opts.MaxLineBytes > 0 && len(line) > opts.MaxLineBytes {
			if opts.Strict {
				return "", &GuardError{Sentinel: ErrLineTooLong, Limit: int64(opts.MaxLineBytes), Actual: int64(len(line))}
			}
			line = truncateAtRune(line, opts.MaxLineBytes)
			prov.LinesTruncated++
			prov.Trip(GuardLineTruncated)
		}
		if kept > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(line)
		kept++
	}
	if prov.LinesDropped > 0 {
		if opts.Strict {
			return "", &GuardError{Sentinel: ErrTooManyLines, Limit: int64(opts.MaxLines), Actual: int64(kept + prov.LinesDropped)}
		}
		prov.Trip(GuardLinesDropped)
	}
	return b.String(), nil
}

// hasLongLine reports whether any LF-separated line exceeds max bytes.
func hasLongLine(text string, max int) bool {
	for start := 0; start < len(text); {
		end := strings.IndexByte(text[start:], '\n')
		if end < 0 {
			return len(text)-start > max
		}
		if end > max {
			return true
		}
		start += end + 1
	}
	return false
}

// truncateAtRune cuts s to at most max bytes without splitting a rune.
func truncateAtRune(s string, max int) string {
	if len(s) <= max {
		return s
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut]
}

// Read consumes r under the guards of opts and normalizes the bytes. The
// reader is capped at MaxBytes+1 so an adversarial stream cannot exhaust
// memory before the size guard fires.
func Read(r io.Reader, opts Options) (Result, error) {
	o := opts.withDefaults()
	var data []byte
	var err error
	if o.MaxBytes > 0 {
		data, err = io.ReadAll(io.LimitReader(r, o.MaxBytes+1))
	} else {
		data, err = io.ReadAll(r)
	}
	if err != nil {
		if IsCancellation(err) {
			return Result{}, WrapCancelled(err)
		}
		return Result{}, fmt.Errorf("ingest: read: %w", err)
	}
	return Normalize(data, opts)
}

// ReadFile loads and normalizes the file at path. Oversize files are
// rejected from their stat size, before any bytes are read.
func ReadFile(path string, opts Options) (Result, error) {
	o := opts.withDefaults()
	if o.MaxBytes > 0 {
		if info, err := os.Stat(path); err == nil && !info.IsDir() && info.Size() > o.MaxBytes {
			return Result{}, fmt.Errorf("ingest: %s: %w", path,
				&GuardError{Sentinel: ErrTooLarge, Limit: o.MaxBytes, Actual: info.Size()})
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return Result{}, err
	}
	defer func() { _ = f.Close() }() // read-only descriptor; close cannot lose data
	res, err := Read(f, opts)
	if err != nil {
		return res, fmt.Errorf("ingest: %s: %w", path, err)
	}
	return res, nil
}

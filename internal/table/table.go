// Package table provides the two-dimensional grid model shared by every
// component of Strudel: cells, lines, tables, and the six semantic element
// classes defined in Section 3 of the paper.
//
// A Table is a dense rectangular grid of string cells. Ragged input lines are
// padded with empty cells so that every line has the same width; this mirrors
// the preprocessing applied by the reference implementation after dialect
// detection. Annotations (line and cell classes) are stored alongside the
// grid so that annotated corpora, predictions, and gold labels all share one
// representation.
package table

import (
	"fmt"
	"strconv"
	"strings"

	"strudel/internal/ingest"
)

// Class is one of the six semantic element classes from Section 3.2 of the
// paper. Every non-empty line and cell of a verbose CSV file belongs to
// exactly one class. ClassEmpty is used internally for empty lines and cells,
// which carry no class of their own.
type Class uint8

// The element classes, in the canonical order used throughout the paper's
// tables and figures.
const (
	ClassEmpty Class = iota // empty line or cell; not a semantic class
	ClassMetadata
	ClassHeader
	ClassGroup
	ClassData
	ClassDerived
	ClassNotes

	// NumClasses is the number of semantic classes (excluding ClassEmpty).
	NumClasses = 6
)

// Classes lists the six semantic classes in canonical paper order.
var Classes = [NumClasses]Class{
	ClassMetadata, ClassHeader, ClassGroup, ClassData, ClassDerived, ClassNotes,
}

var classNames = [...]string{
	ClassEmpty:    "empty",
	ClassMetadata: "metadata",
	ClassHeader:   "header",
	ClassGroup:    "group",
	ClassData:     "data",
	ClassDerived:  "derived",
	ClassNotes:    "notes",
}

// String returns the lower-case class name used in the paper.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Index returns the position of c within Classes, or -1 for ClassEmpty and
// unknown values. It is the column/row index used by confusion matrices and
// probability vectors.
func (c Class) Index() int {
	if c >= ClassMetadata && c <= ClassNotes {
		return int(c) - 1
	}
	return -1
}

// ClassAt returns the class at canonical index i (inverse of Class.Index).
// It panics if i is out of range.
func ClassAt(i int) Class {
	if i < 0 || i >= NumClasses {
		//lint:ignore panicpath the index always comes from argMax over fixed NumClasses-length vectors; an out-of-range value is an internal invariant violation, never reachable from file input
		panic("table: class index " + strconv.Itoa(i) + " out of range")
	}
	return Classes[i]
}

// ParseClass converts a class name (as printed by Class.String) back to a
// Class. It reports an error for unknown names.
func ParseClass(name string) (Class, error) {
	for c, n := range classNames {
		if n == name {
			return Class(c), nil
		}
	}
	return ClassEmpty, fmt.Errorf("table: unknown class %q", name)
}

// Table is a dense rectangular grid of cells parsed from a verbose CSV file,
// together with optional line- and cell-level class annotations.
//
// The zero value is an empty table. Use New or FromRows to construct one.
type Table struct {
	// Name identifies the source file; used for grouping in cross-validation.
	Name string

	// Provenance, when non-nil, records how the file's raw bytes were
	// ingested and prepared (encoding detected, guards tripped, dialect
	// confidence). Tables built directly from rows carry none.
	Provenance *ingest.Provenance

	cells  [][]string // cells[row][col]; always rectangular
	width  int
	height int

	// LineClasses[r] is the class of line r (ClassEmpty for empty lines).
	// Nil when the table carries no line annotations.
	LineClasses []Class
	// CellClasses[r][c] is the class of cell (r, c). Nil when unannotated.
	CellClasses [][]Class
}

// New returns an empty table with the given dimensions. Negative dimensions
// are clamped to zero: degenerate sizes yield an empty table rather than a
// library panic, matching how Crop and FromRows treat degenerate input.
func New(height, width int) *Table {
	if height < 0 {
		height = 0
	}
	if width < 0 {
		width = 0
	}
	cells := make([][]string, height)
	backing := make([]string, height*width)
	for r := range cells {
		cells[r], backing = backing[:width:width], backing[width:]
	}
	return &Table{cells: cells, width: width, height: height}
}

// FromRows builds a table from possibly ragged rows, padding short rows with
// empty cells so the result is rectangular.
func FromRows(rows [][]string) *Table {
	width := 0
	for _, row := range rows {
		if len(row) > width {
			width = len(row)
		}
	}
	t := New(len(rows), width)
	for r, row := range rows {
		copy(t.cells[r], row)
	}
	return t
}

// Height returns the number of lines.
func (t *Table) Height() int { return t.height }

// Width returns the number of columns.
func (t *Table) Width() int { return t.width }

// Cell returns the value of cell (row, col). It panics if out of range.
func (t *Table) Cell(row, col int) string {
	return t.cells[row][col]
}

// SetCell sets the value of cell (row, col). It panics if out of range.
func (t *Table) SetCell(row, col int, v string) {
	t.cells[row][col] = v
}

// Row returns the cells of line row. The returned slice aliases the table;
// callers must not modify it.
func (t *Table) Row(row int) []string {
	return t.cells[row]
}

// InBounds reports whether (row, col) lies inside the grid.
func (t *Table) InBounds(row, col int) bool {
	return row >= 0 && row < t.height && col >= 0 && col < t.width
}

// IsEmptyCell reports whether cell (row, col) is empty after trimming
// whitespace. Out-of-bounds coordinates are treated as empty, which
// simplifies neighbor inspection at the margins.
func (t *Table) IsEmptyCell(row, col int) bool {
	if !t.InBounds(row, col) {
		return true
	}
	return IsEmpty(t.cells[row][col])
}

// IsEmptyLine reports whether every cell of line row is empty.
// Out-of-bounds rows are treated as empty.
func (t *Table) IsEmptyLine(row int) bool {
	if row < 0 || row >= t.height {
		return true
	}
	for _, v := range t.cells[row] {
		if !IsEmpty(v) {
			return false
		}
	}
	return true
}

// NonEmptyCellsInLine counts the non-empty cells of line row.
func (t *Table) NonEmptyCellsInLine(row int) int {
	n := 0
	for _, v := range t.cells[row] {
		if !IsEmpty(v) {
			n++
		}
	}
	return n
}

// NonEmptyLines counts lines with at least one non-empty cell.
func (t *Table) NonEmptyLines() int {
	n := 0
	for r := 0; r < t.height; r++ {
		if !t.IsEmptyLine(r) {
			n++
		}
	}
	return n
}

// NonEmptyCells counts all non-empty cells in the table.
func (t *Table) NonEmptyCells() int {
	n := 0
	for r := 0; r < t.height; r++ {
		n += t.NonEmptyCellsInLine(r)
	}
	return n
}

// IsEmpty reports whether a single cell value is empty after trimming
// whitespace. This is the shared notion of emptiness used by all features.
func IsEmpty(v string) bool {
	return strings.TrimSpace(v) == ""
}

// ClosestNonEmptyLineAbove returns the index of the closest non-empty line
// strictly above row, or -1 if none exists. Empty separator lines are
// skipped, as required by the contextual line features (Section 4).
func (t *Table) ClosestNonEmptyLineAbove(row int) int {
	for r := row - 1; r >= 0; r-- {
		if !t.IsEmptyLine(r) {
			return r
		}
	}
	return -1
}

// ClosestNonEmptyLineBelow returns the index of the closest non-empty line
// strictly below row, or -1 if none exists.
func (t *Table) ClosestNonEmptyLineBelow(row int) int {
	for r := row + 1; r < t.height; r++ {
		if !t.IsEmptyLine(r) {
			return r
		}
	}
	return -1
}

// EnsureAnnotations allocates (if needed) the LineClasses and CellClasses
// slices so the table can be annotated in place.
func (t *Table) EnsureAnnotations() {
	if t.LineClasses == nil {
		t.LineClasses = make([]Class, t.height)
	}
	if t.CellClasses == nil {
		t.CellClasses = make([][]Class, t.height)
		backing := make([]Class, t.height*t.width)
		for r := range t.CellClasses {
			t.CellClasses[r], backing = backing[:t.width:t.width], backing[t.width:]
		}
	}
}

// Annotated reports whether the table carries both line and cell labels.
func (t *Table) Annotated() bool {
	return t.LineClasses != nil && t.CellClasses != nil
}

// LineClassFromCells derives the class of line row by majority vote over the
// classes of its non-empty cells, breaking ties in favor of the rarer class
// (lower canonical index wins among non-data classes; data loses ties). This
// mirrors how the figure-1 caption describes line classes being determined.
func (t *Table) LineClassFromCells(row int) Class {
	if t.CellClasses == nil {
		return ClassEmpty
	}
	var counts [NumClasses]int
	for c := 0; c < t.width; c++ {
		cl := t.CellClasses[row][c]
		if idx := cl.Index(); idx >= 0 && !t.IsEmptyCell(row, c) {
			counts[idx]++
		}
	}
	best, bestCount := -1, 0
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if n > bestCount {
			best, bestCount = i, n
			continue
		}
		if n == bestCount {
			// Tie: prefer the non-data class; among non-data, keep the first.
			if ClassAt(best) == ClassData && ClassAt(i) != ClassData {
				best = i
			}
		}
	}
	if best < 0 {
		return ClassEmpty
	}
	return ClassAt(best)
}

// DiversityDegree returns the number of distinct non-empty cell classes in
// line row (the "cell class diversity degree" of Table 3 in the paper), or 0
// for lines without annotated non-empty cells.
func (t *Table) DiversityDegree(row int) int {
	if t.CellClasses == nil {
		return 0
	}
	var seen [NumClasses]bool
	n := 0
	for c := 0; c < t.width; c++ {
		cl := t.CellClasses[row][c]
		if idx := cl.Index(); idx >= 0 && !t.IsEmptyCell(row, c) && !seen[idx] {
			seen[idx] = true
			n++
		}
	}
	return n
}

// Crop removes marginal empty lines and columns (Section 6.1.1 data
// preparation: "we cropped each file by removing the marginal empty lines or
// columns"). Annotations, if present, are cropped consistently. The receiver
// is modified in place; the method returns the receiver for chaining.
func (t *Table) Crop() *Table {
	top, bottom := 0, t.height
	for top < bottom && t.IsEmptyLine(top) {
		top++
	}
	for bottom > top && t.IsEmptyLine(bottom-1) {
		bottom--
	}
	emptyCol := func(c int) bool {
		for r := top; r < bottom; r++ {
			if !IsEmpty(t.cells[r][c]) {
				return false
			}
		}
		return true
	}
	left, right := 0, t.width
	for left < right && emptyCol(left) {
		left++
	}
	for right > left && emptyCol(right-1) {
		right--
	}

	height, width := bottom-top, right-left
	cells := make([][]string, height)
	for r := 0; r < height; r++ {
		cells[r] = t.cells[top+r][left:right:right]
	}
	t.cells = cells
	// Annotations are cropped only when their shape matches the grid;
	// malformed hand-built annotations are dropped rather than letting a
	// slice-bounds panic escape library code on degenerate input.
	if t.LineClasses != nil {
		if len(t.LineClasses) >= bottom {
			t.LineClasses = t.LineClasses[top:bottom:bottom]
		} else {
			t.LineClasses = nil
		}
	}
	if t.CellClasses != nil {
		cls := make([][]Class, height)
		ok := len(t.CellClasses) >= bottom
		for r := 0; ok && r < height; r++ {
			if len(t.CellClasses[top+r]) < right {
				ok = false
				break
			}
			cls[r] = t.CellClasses[top+r][left:right:right]
		}
		if ok {
			t.CellClasses = cls
		} else {
			t.CellClasses = nil
		}
	}
	t.height, t.width = height, width
	return t
}

// Clone returns a deep copy of the table, including annotations and
// provenance.
func (t *Table) Clone() *Table {
	c := New(t.height, t.width)
	c.Name = t.Name
	c.Provenance = t.Provenance.Clone()
	for r := 0; r < t.height; r++ {
		copy(c.cells[r], t.cells[r])
	}
	if t.LineClasses != nil {
		c.LineClasses = append([]Class(nil), t.LineClasses...)
	}
	if t.CellClasses != nil {
		c.CellClasses = make([][]Class, t.height)
		backing := make([]Class, t.height*t.width)
		for r := range c.CellClasses {
			c.CellClasses[r], backing = backing[:t.width:t.width], backing[t.width:]
			copy(c.CellClasses[r], t.CellClasses[r])
		}
	}
	return c
}

// String renders the table with '|'-separated cells, one line per row.
// Intended for debugging and small examples, not round-tripping.
func (t *Table) String() string {
	var b strings.Builder
	for r := 0; r < t.height; r++ {
		b.WriteString(strings.Join(t.cells[r], "|"))
		b.WriteByte('\n')
	}
	return b.String()
}

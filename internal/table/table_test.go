package table

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		ClassEmpty:    "empty",
		ClassMetadata: "metadata",
		ClassHeader:   "header",
		ClassGroup:    "group",
		ClassData:     "data",
		ClassDerived:  "derived",
		ClassNotes:    "notes",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range Classes {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("ParseClass(%q) = %v, want %v", c.String(), got, c)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass(bogus) should fail")
	}
}

func TestClassIndexInverse(t *testing.T) {
	for i := 0; i < NumClasses; i++ {
		if got := ClassAt(i).Index(); got != i {
			t.Errorf("ClassAt(%d).Index() = %d", i, got)
		}
	}
	if ClassEmpty.Index() != -1 {
		t.Error("ClassEmpty.Index() should be -1")
	}
}

func TestFromRowsPadsRagged(t *testing.T) {
	tb := FromRows([][]string{{"a"}, {"b", "c", "d"}, {}})
	if tb.Height() != 3 || tb.Width() != 3 {
		t.Fatalf("dims = %dx%d, want 3x3", tb.Height(), tb.Width())
	}
	if tb.Cell(0, 1) != "" || tb.Cell(2, 0) != "" {
		t.Error("padding cells should be empty")
	}
	if tb.Cell(1, 2) != "d" {
		t.Errorf("Cell(1,2) = %q", tb.Cell(1, 2))
	}
}

func TestEmptiness(t *testing.T) {
	tb := FromRows([][]string{
		{"x", " ", ""},
		{"", "", ""},
		{"", "y", ""},
	})
	if !tb.IsEmptyCell(0, 1) {
		t.Error("whitespace-only cell should be empty")
	}
	if tb.IsEmptyCell(0, 0) {
		t.Error("cell 'x' should be non-empty")
	}
	if !tb.IsEmptyCell(-1, 0) || !tb.IsEmptyCell(0, 99) {
		t.Error("out-of-bounds cells should read as empty")
	}
	if !tb.IsEmptyLine(1) {
		t.Error("line 1 should be empty")
	}
	if tb.IsEmptyLine(2) {
		t.Error("line 2 should be non-empty")
	}
	if got := tb.NonEmptyLines(); got != 2 {
		t.Errorf("NonEmptyLines = %d, want 2", got)
	}
	if got := tb.NonEmptyCells(); got != 2 {
		t.Errorf("NonEmptyCells = %d, want 2", got)
	}
}

func TestClosestNonEmptyLines(t *testing.T) {
	tb := FromRows([][]string{
		{"a"}, {""}, {""}, {"b"}, {""}, {"c"},
	})
	if got := tb.ClosestNonEmptyLineAbove(3); got != 0 {
		t.Errorf("above(3) = %d, want 0", got)
	}
	if got := tb.ClosestNonEmptyLineBelow(3); got != 5 {
		t.Errorf("below(3) = %d, want 5", got)
	}
	if got := tb.ClosestNonEmptyLineAbove(0); got != -1 {
		t.Errorf("above(0) = %d, want -1", got)
	}
	if got := tb.ClosestNonEmptyLineBelow(5); got != -1 {
		t.Errorf("below(5) = %d, want -1", got)
	}
}

func TestCrop(t *testing.T) {
	tb := FromRows([][]string{
		{"", "", "", ""},
		{"", "a", "b", ""},
		{"", "", "c", ""},
		{"", "", "", ""},
	})
	tb.EnsureAnnotations()
	tb.LineClasses[1] = ClassHeader
	tb.CellClasses[1][1] = ClassHeader
	tb.Crop()
	if tb.Height() != 2 || tb.Width() != 2 {
		t.Fatalf("cropped dims = %dx%d, want 2x2", tb.Height(), tb.Width())
	}
	if tb.Cell(0, 0) != "a" || tb.Cell(1, 1) != "c" {
		t.Errorf("cropped contents wrong: %q %q", tb.Cell(0, 0), tb.Cell(1, 1))
	}
	if tb.LineClasses[0] != ClassHeader {
		t.Error("line annotations not cropped consistently")
	}
	if tb.CellClasses[0][0] != ClassHeader {
		t.Error("cell annotations not cropped consistently")
	}
}

func TestCropAllEmpty(t *testing.T) {
	tb := FromRows([][]string{{"", ""}, {"", ""}})
	tb.Crop()
	if tb.Height() != 0 {
		t.Errorf("all-empty table should crop to height 0, got %d", tb.Height())
	}
}

func TestCropIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w := rng.Intn(8)+1, rng.Intn(8)+1
		tb := New(h, w)
		for r := 0; r < h; r++ {
			for c := 0; c < w; c++ {
				if rng.Intn(3) == 0 {
					tb.SetCell(r, c, "v")
				}
			}
		}
		tb.Crop()
		h1, w1 := tb.Height(), tb.Width()
		tb.Crop()
		return tb.Height() == h1 && tb.Width() == w1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineClassFromCells(t *testing.T) {
	tb := FromRows([][]string{
		{"Total", "1", "2", "3"},
	})
	tb.EnsureAnnotations()
	tb.CellClasses[0][0] = ClassGroup
	tb.CellClasses[0][1] = ClassDerived
	tb.CellClasses[0][2] = ClassDerived
	tb.CellClasses[0][3] = ClassDerived
	if got := tb.LineClassFromCells(0); got != ClassDerived {
		t.Errorf("majority class = %v, want derived", got)
	}
}

func TestLineClassFromCellsTiePrefersNonData(t *testing.T) {
	tb := FromRows([][]string{{"Total", "5"}})
	tb.EnsureAnnotations()
	tb.CellClasses[0][0] = ClassGroup
	tb.CellClasses[0][1] = ClassData
	if got := tb.LineClassFromCells(0); got != ClassGroup {
		t.Errorf("tie-broken class = %v, want group", got)
	}
}

func TestLineClassFromCellsIgnoresEmptyCells(t *testing.T) {
	tb := FromRows([][]string{{"cap", "", ""}})
	tb.EnsureAnnotations()
	tb.CellClasses[0][0] = ClassMetadata
	tb.CellClasses[0][1] = ClassData // annotated but empty cell: ignored
	tb.CellClasses[0][2] = ClassData
	if got := tb.LineClassFromCells(0); got != ClassMetadata {
		t.Errorf("class = %v, want metadata", got)
	}
}

func TestDiversityDegree(t *testing.T) {
	tb := FromRows([][]string{
		{"Total", "1", "2"},
		{"a", "b", "c"},
		{"", "", ""},
	})
	tb.EnsureAnnotations()
	tb.CellClasses[0][0] = ClassGroup
	tb.CellClasses[0][1] = ClassDerived
	tb.CellClasses[0][2] = ClassDerived
	tb.CellClasses[1][0] = ClassData
	tb.CellClasses[1][1] = ClassData
	tb.CellClasses[1][2] = ClassData
	if got := tb.DiversityDegree(0); got != 2 {
		t.Errorf("diversity(0) = %d, want 2", got)
	}
	if got := tb.DiversityDegree(1); got != 1 {
		t.Errorf("diversity(1) = %d, want 1", got)
	}
	if got := tb.DiversityDegree(2); got != 0 {
		t.Errorf("diversity(2) = %d, want 0", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tb := FromRows([][]string{{"a", "b"}})
	tb.EnsureAnnotations()
	tb.LineClasses[0] = ClassData
	c := tb.Clone()
	c.SetCell(0, 0, "z")
	c.LineClasses[0] = ClassNotes
	c.CellClasses[0][1] = ClassNotes
	if tb.Cell(0, 0) != "a" || tb.LineClasses[0] != ClassData || tb.CellClasses[0][1] != ClassEmpty {
		t.Error("Clone shares state with original")
	}
}

func TestNewClampsNegativeDimensions(t *testing.T) {
	for _, dims := range [][2]int{{-1, 2}, {2, -1}, {-3, -3}} {
		tb := New(dims[0], dims[1])
		if tb.Height() < 0 || tb.Width() < 0 {
			t.Errorf("New(%d, %d) kept a negative dimension: %dx%d",
				dims[0], dims[1], tb.Height(), tb.Width())
		}
		if tb.Height() > 0 && tb.Width() > 0 {
			t.Errorf("New(%d, %d) = %dx%d, want an empty table",
				dims[0], dims[1], tb.Height(), tb.Width())
		}
	}
}

func TestStringRendering(t *testing.T) {
	tb := FromRows([][]string{{"a", "b"}, {"c", "d"}})
	if got := tb.String(); got != "a|b\nc|d\n" {
		t.Errorf("String() = %q", got)
	}
}

func TestNonEmptyCellsInLine(t *testing.T) {
	tb := FromRows([][]string{{"a", " ", "b", ""}})
	if got := tb.NonEmptyCellsInLine(0); got != 2 {
		t.Errorf("NonEmptyCellsInLine = %d, want 2", got)
	}
}

func TestClassAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ClassAt(99) should panic")
		}
	}()
	ClassAt(99)
}

func TestRowAliasesTable(t *testing.T) {
	tb := FromRows([][]string{{"x", "y"}})
	row := tb.Row(0)
	tb.SetCell(0, 1, "z")
	if row[1] != "z" {
		t.Error("Row must alias the table storage")
	}
}

func TestEnsureAnnotationsIdempotent(t *testing.T) {
	tb := FromRows([][]string{{"a"}})
	tb.EnsureAnnotations()
	tb.LineClasses[0] = ClassData
	tb.EnsureAnnotations() // must not reset existing annotations
	if tb.LineClasses[0] != ClassData {
		t.Error("EnsureAnnotations reset annotations")
	}
}

package experiments

import (
	"sort"

	"strudel/internal/core"
	"strudel/internal/eval"
	"strudel/internal/extract"
	"strudel/internal/features"
	"strudel/internal/ml/forest"
	"strudel/internal/table"
)

// HardCases reproduces the Section 6.3.6 analysis: from the ensemble
// confusion matrices of Strudel^L per dataset, list the misclassification
// pairs that exceed 10% of a class's instances (e.g. "derived as data"),
// which is exactly how the paper compiles its difficult-case list.
func HardCases(cfg Config) error {
	cfg.fill()
	cfg.printf("Difficult cases (Section 6.3.6): misclassification pairs over 10%%\n")
	cfg.printf("%-10s %-22s %8s\n", "dataset", "actual as predicted", "rate")
	for _, ds := range lineDatasets {
		files := corpus(ds, cfg.Scale).Files
		res, err := eval.CrossValidateLines(files, strudelLineTrainer(cfg), eval.CVOptions{
			Folds: cfg.Folds, Repeats: cfg.Repeats, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		norm := res.Confusion().Normalized()
		type pair struct {
			gold, pred int
			rate       float64
		}
		var pairs []pair
		for g := range norm {
			for p := range norm[g] {
				if g != p && norm[g][p] > 0.10 {
					pairs = append(pairs, pair{g, p, norm[g][p]})
				}
			}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].rate > pairs[b].rate })
		if len(pairs) == 0 {
			cfg.printf("%-10s %-22s %8s\n", ds, "(none over 10%)", "-")
			continue
		}
		for _, pr := range pairs {
			label := table.ClassAt(pr.gold).String() + " as " + table.ClassAt(pr.pred).String()
			cfg.printf("%-10s %-22s %7.1f%%\n", ds, label, pr.rate*100)
		}
	}
	return nil
}

// Boundary evaluates table-boundary discovery — Pytheas's native task —
// for both approaches: the table regions induced by predicted line classes
// are matched against gold regions, and a region counts as found when its
// line-range Jaccard overlap with a gold region exceeds 0.8.
func Boundary(cfg Config) error {
	cfg.fill()
	cfg.printf("Table boundary discovery (region Jaccard >= 0.8)\n")
	cfg.printf("%-10s %-10s %10s %10s %10s\n", "dataset", "approach", "precision", "recall", "F1")

	for _, ds := range []string{"govuk", "deex"} {
		files := corpus(ds, cfg.Scale).Files
		// Train once on the other corpora to keep this out-of-fold.
		var train []*table.Table
		for _, other := range []string{"saus", "cius"} {
			train = append(train, corpus(other, cfg.Scale).Files...)
		}
		lopts := core.DefaultLineTrainOptions()
		lopts.Forest = forest.Options{NumTrees: cfg.Trees, Seed: cfg.Seed}
		strudelM, err := core.TrainLine(train, lopts)
		if err != nil {
			return err
		}
		pytheasM := pytheasLineTrainerModel(train)

		for _, approach := range []struct {
			name     string
			classify func(f *table.Table) []table.Class
		}{
			{"Pytheas-L", pytheasM},
			{"Strudel-L", strudelM.Classify},
		} {
			var tp, fp, fn int
			for _, f := range files {
				gold := tableSpans(f.LineClasses)
				pred := tableSpans(approach.classify(f))
				matched := make([]bool, len(gold))
				for _, pr := range pred {
					hit := false
					for gi, g := range gold {
						if !matched[gi] && jaccard(pr, g) >= 0.8 {
							matched[gi] = true
							hit = true
							break
						}
					}
					if hit {
						tp++
					} else {
						fp++
					}
				}
				for _, m := range matched {
					if !m {
						fn++
					}
				}
			}
			p, r, f1 := prf(tp, fp, fn)
			cfg.printf("%-10s %-10s %10.3f %10.3f %10.3f\n", ds, approach.name, p, r, f1)
		}
	}
	return nil
}

// pytheasLineTrainerModel trains a Pytheas model and returns its classify
// function.
func pytheasLineTrainerModel(train []*table.Table) func(f *table.Table) []table.Class {
	trainer := pytheasLineTrainer()
	m, _ := trainer(train, 0) // Pytheas training cannot fail
	return m.Classify
}

// tableSpans lists the [top, bottom] line ranges of the table regions
// induced by a line classification.
func tableSpans(lines []table.Class) [][2]int {
	var out [][2]int
	for _, reg := range extract.Segment(lines) {
		if reg.Kind == extract.RegionTable {
			out = append(out, [2]int{reg.Top, reg.Bottom})
		}
	}
	return out
}

// jaccard is the overlap of two inclusive line ranges.
func jaccard(a, b [2]int) float64 {
	lo := maxI(a[0], b[0])
	hi := minI(a[1], b[1])
	inter := hi - lo + 1
	if inter <= 0 {
		return 0
	}
	union := maxI(a[1], b[1]) - minI(a[0], b[0]) + 1
	return float64(inter) / float64(union)
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// AblateContext compares the paper's closest-non-empty-neighbor context
// against strict physical adjacency for the Strudel^L contextual features
// (design choice 3 in DESIGN.md).
func AblateContext(cfg Config) error {
	cfg.fill()
	files := corpus("govuk", cfg.Scale).Files
	cfg.printf("Ablation A6: contextual neighbor selection (GovUK)\n")
	printHeader(cfg)
	for _, strict := range []bool{false, true} {
		name := "skip-empty"
		if strict {
			name = "strict-adj"
		}
		fopts := features.DefaultLineOptions()
		fopts.StrictAdjacency = strict
		trainer := func(train []*table.Table, seed int64) (eval.LineClassifier, error) {
			opts := core.DefaultLineTrainOptions()
			opts.Forest = forest.Options{NumTrees: cfg.Trees, Seed: seed}
			opts.Features = fopts
			return core.TrainLine(train, opts)
		}
		res, err := eval.CrossValidateLines(files, trainer, eval.CVOptions{
			Folds: cfg.Folds, Repeats: cfg.Repeats, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		printRow(cfg, "govuk", name, res.Scores())
	}
	return nil
}

package experiments

import (
	"sync"

	"strudel/internal/core"
	"strudel/internal/datagen"
	"strudel/internal/eval"
	"strudel/internal/features"
	"strudel/internal/ml/crf"
	"strudel/internal/ml/forest"
	"strudel/internal/ml/nn"
	"strudel/internal/pytheas"
	"strudel/internal/table"
)

// corpusCache memoizes generated corpora per (name, scale) within one
// process, since several experiments share them.
var corpusCache sync.Map

type corpusKey struct {
	name  string
	scale float64
}

func corpus(name string, scale float64) *datagen.Corpus {
	key := corpusKey{name, scale}
	if v, ok := corpusCache.Load(key); ok {
		return v.(*datagen.Corpus)
	}
	c, err := datagen.GenerateDataset(name, scale)
	if err != nil {
		//lint:ignore panicpath dataset names are compile-time constants in this package; GenerateDataset only fails on an unknown name
		panic(err)
	}
	corpusCache.Store(key, c)
	return c
}

// lineDatasets are the corpora of the line-classification half of Table 6.
var lineDatasets = []string{"govuk", "saus", "cius", "deex"}

// cellDatasets are the corpora of the cell-classification half of Table 6.
var cellDatasets = []string{"saus", "cius", "deex"}

// trainingTriple is the SAUS+CIUS+DeEx union used by Tables 7, 8 and
// Figure 4.
func trainingTriple(scale float64) []*table.Table {
	var out []*table.Table
	for _, name := range []string{"saus", "cius", "deex"} {
		out = append(out, corpus(name, scale).Files...)
	}
	return out
}

// --- trainers -------------------------------------------------------------

func strudelLineTrainer(cfg Config) eval.LineTrainer {
	return func(train []*table.Table, seed int64) (eval.LineClassifier, error) {
		opts := core.DefaultLineTrainOptions()
		opts.Forest = forest.Options{NumTrees: cfg.Trees, Seed: seed}
		return core.TrainLine(train, opts)
	}
}

func crfLineTrainer(cfg Config) eval.LineTrainer {
	return func(train []*table.Table, seed int64) (eval.LineClassifier, error) {
		return core.TrainCRFLine(train, features.DefaultLineOptions(),
			crf.Options{Epochs: 15, Seed: seed})
	}
}

// pytheasAdapter exposes pytheas.Model through the eval.LineClassifier
// interface.
type pytheasAdapter struct{ m *pytheas.Model }

func (a pytheasAdapter) Classify(t *table.Table) []table.Class {
	return a.m.ClassifyLines(t)
}

func pytheasLineTrainer() eval.LineTrainer {
	return func(train []*table.Table, seed int64) (eval.LineClassifier, error) {
		return pytheasAdapter{pytheas.Train(train)}, nil
	}
}

// defaultCellOpts builds the standard Strudel^C training options for a
// fold seed.
func defaultCellOpts(cfg Config, seed int64) core.CellTrainOptions {
	opts := core.DefaultCellTrainOptions()
	opts.Forest = forest.Options{NumTrees: cfg.Trees, Seed: seed}
	opts.Line.Forest = forest.Options{NumTrees: cfg.Trees, Seed: seed}
	opts.MaxCellsPerFile = cfg.MaxCellsPerFile
	return opts
}

// trainCell adapts core.TrainCell to the eval.CellClassifier interface.
func trainCell(train []*table.Table, opts core.CellTrainOptions) (eval.CellClassifier, error) {
	return core.TrainCell(train, opts)
}

func strudelCellTrainer(cfg Config) eval.CellTrainer {
	return func(train []*table.Table, seed int64) (eval.CellClassifier, error) {
		return trainCell(train, defaultCellOpts(cfg, seed))
	}
}

// lineCellAdapter exposes a line model's Line^C extension as a cell
// classifier.
type lineCellAdapter struct{ m *core.LineModel }

func (a lineCellAdapter) Classify(t *table.Table) [][]table.Class {
	return a.m.ClassifyCells(t)
}

func lineCBaselineTrainer(cfg Config) eval.CellTrainer {
	return func(train []*table.Table, seed int64) (eval.CellClassifier, error) {
		opts := core.DefaultLineTrainOptions()
		opts.Forest = forest.Options{NumTrees: cfg.Trees, Seed: seed}
		m, err := core.TrainLine(train, opts)
		if err != nil {
			return nil, err
		}
		return lineCellAdapter{m}, nil
	}
}

func rnnCellTrainer(cfg Config) eval.CellTrainer {
	return func(train []*table.Table, seed int64) (eval.CellClassifier, error) {
		return core.TrainRNNCell(train, features.DefaultCellOptions(),
			nn.Options{Hidden: 24, Epochs: 8, Seed: seed})
	}
}

// altLineTrainer wraps the NB/KNN/SVM backbones for the A1 ablation.
func altLineTrainer(kind string) eval.LineTrainer {
	return func(train []*table.Table, seed int64) (eval.LineClassifier, error) {
		return core.TrainAltLine(train, kind, features.DefaultLineOptions(), seed)
	}
}

// maskedLineTrainer trains Strudel^L on a feature subset (A2 ablation).
func maskedLineTrainer(cfg Config, mask []int) eval.LineTrainer {
	return func(train []*table.Table, seed int64) (eval.LineClassifier, error) {
		opts := core.DefaultLineTrainOptions()
		opts.Forest = forest.Options{NumTrees: cfg.Trees, Seed: seed}
		opts.FeatureMask = mask
		return core.TrainLine(train, opts)
	}
}

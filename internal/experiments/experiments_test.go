package experiments

import (
	"strings"
	"testing"

	"strudel/internal/table"
)

// tinyConfig keeps every experiment fast enough for unit tests.
func tinyConfig(buf *strings.Builder) Config {
	return Config{
		Scale: 0.15, Folds: 3, Repeats: 1,
		Trees: 10, Seed: 1, MaxCellsPerFile: 150,
		Out: buf,
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("Names() returned %d, registry has %d", len(names), len(registry))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if err := Run("nope", Config{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestStatisticsExperiments(t *testing.T) {
	for _, name := range []string{"table3", "table4", "table5"} {
		var buf strings.Builder
		if err := Run(name, tinyConfig(&buf)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

func TestTable6LineShape(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	results, err := Table6LineResults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4*3 {
		t.Fatalf("results = %d, want 12 (4 datasets x 3 approaches)", len(results))
	}
	// Pytheas never scores derived lines (they are excluded).
	for _, r := range results {
		if r.Approach == "Pytheas-L" && r.Scores.Support[table.ClassDerived.Index()] != 0 {
			t.Error("Pytheas scoring should exclude derived gold lines")
		}
		if r.Scores.Accuracy <= 0.5 {
			t.Errorf("%s on %s: implausible accuracy %v", r.Approach, r.Dataset, r.Scores.Accuracy)
		}
	}
}

func TestTable6CellShape(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	cfg.Scale = 0.12
	results, err := Table6CellResults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3*3 {
		t.Fatalf("results = %d, want 9", len(results))
	}
	// Strudel-C should beat the Line-C baseline on macro average for at
	// least two of the three datasets even at tiny scale.
	wins := 0
	for _, ds := range []string{"saus", "cius", "deex"} {
		var lineC, strudelC float64
		for _, r := range results {
			if r.Dataset != ds {
				continue
			}
			switch r.Approach {
			case "Line-C":
				lineC = r.Scores.MacroF1
			case "Strudel-C":
				strudelC = r.Scores.MacroF1
			}
		}
		if strudelC >= lineC {
			wins++
		}
	}
	if wins < 2 {
		t.Errorf("Strudel-C won macro on only %d/3 datasets", wins)
	}
}

func TestTransferAndFigures(t *testing.T) {
	for _, name := range []string{"table7", "table8", "figure3"} {
		var buf strings.Builder
		cfg := tinyConfig(&buf)
		cfg.Scale = 0.12
		if err := Run(name, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "Strudel") {
			t.Errorf("%s output lacks approach rows:\n%s", name, buf.String())
		}
	}
}

func TestAblationsAndExtensions(t *testing.T) {
	for _, name := range []string{"ablate-clf", "ablate-feat", "ablate-agg", "ablate-post", "ablate-col", "ablate-ctx", "importance", "extraction", "hardcases", "boundary"} {
		var buf strings.Builder
		cfg := tinyConfig(&buf)
		cfg.Scale = 0.12
		if err := Run(name, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

func TestActiveAndScale(t *testing.T) {
	for _, name := range []string{"active", "scale"} {
		var buf strings.Builder
		cfg := tinyConfig(&buf)
		cfg.Scale = 0.4 // active learning needs a reasonable pool
		if err := Run(name, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFigure4Importance(t *testing.T) {
	var buf strings.Builder
	cfg := tinyConfig(&buf)
	cfg.Scale = 0.12
	if err := Run("figure4", cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "NeighborValueLength") || !strings.Contains(out, "IsAggregation") {
		t.Errorf("figure4 output missing grouped features:\n%s", out)
	}
}

func TestCorpusCacheReuses(t *testing.T) {
	a := corpus("saus", 0.15)
	b := corpus("saus", 0.15)
	if a != b {
		t.Error("corpus cache should return the same pointer")
	}
	c := corpus("saus", 0.2)
	if a == c {
		t.Error("different scales must not share cache entries")
	}
}

package experiments

import (
	"strudel/internal/core"
	"strudel/internal/eval"
	"strudel/internal/features"
	"strudel/internal/ml/forest"
	"strudel/internal/table"
)

// Figure3 produces the per-dataset confusion matrices of Strudel^L (top)
// and Strudel^C (bottom), built from ensemble majority votes over the
// repeated cross-validation predictions, normalized per actual class —
// exactly the construction of Section 6.3.1.
func Figure3(cfg Config) error {
	cfg.fill()
	cfg.printf("Figure 3 (top): Strudel-L confusion matrices\n")
	for _, ds := range lineDatasets {
		files := corpus(ds, cfg.Scale).Files
		res, err := eval.CrossValidateLines(files, strudelLineTrainer(cfg), eval.CVOptions{
			Folds: cfg.Folds, Repeats: cfg.Repeats, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		cfg.printf("\n[%s]\n%s", ds, res.Confusion())
	}
	cfg.printf("\nFigure 3 (bottom): Strudel-C confusion matrices\n")
	for _, ds := range cellDatasets {
		files := corpus(ds, cfg.Scale).Files
		res, err := eval.CrossValidateCells(files, strudelCellTrainer(cfg), eval.CVOptions{
			Folds: cfg.Folds, Repeats: cfg.Repeats, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		cfg.printf("\n[%s]\n%s", ds, res.Confusion())
	}
	return nil
}

// Figure4 computes per-class permutation feature importance for Strudel^L
// and Strudel^C trained on SAUS+CIUS+DeEx, with neighbor-profile features
// grouped as in the paper's plot.
func Figure4(cfg Config) error {
	cfg.fill()
	train := trainingTriple(cfg.Scale)

	// --- line model ---
	var X [][]float64
	var y []int
	lopts := features.DefaultLineOptions()
	for _, t := range train {
		fs := features.LineFeatures(t, lopts)
		for r := 0; r < t.Height(); r++ {
			if idx := t.LineClasses[r].Index(); idx >= 0 && !t.IsEmptyLine(r) {
				X = append(X, fs[r])
				y = append(y, idx)
			}
		}
	}
	impOpts := eval.DefaultImportanceOptions()
	impOpts.Forest.NumTrees = cfg.Trees / 2
	impOpts.Seed = cfg.Seed
	imp, err := eval.PermutationImportance(X, y, impOpts)
	if err != nil {
		return err
	}
	printImportance(cfg, "Figure 4 (top): Strudel-L permutation feature importance",
		features.LineFeatureNames, eval.NormalizeImportance(imp))

	// --- cell model (uses the line model's probabilities, as at inference) ---
	lineModel, err := trainLineOnTriple(cfg, train)
	if err != nil {
		return err
	}
	var cX [][]float64
	var cy []int
	copts := features.DefaultCellOptions()
	budget := cfg.MaxCellsPerFile
	for _, t := range train {
		probs := lineModel.Probabilities(t)
		fs := features.CellFeatures(t, probs, copts)
		n := 0
		for r := 0; r < t.Height(); r++ {
			for c := 0; c < t.Width(); c++ {
				idx := t.CellClasses[r][c].Index()
				if idx < 0 || t.IsEmptyCell(r, c) {
					continue
				}
				if budget > 0 && n >= budget && idx == table.ClassData.Index() {
					continue // keep minority classes, cap the data flood
				}
				cX = append(cX, fs[r][c])
				cy = append(cy, idx)
				n++
			}
		}
	}
	cImp, err := eval.PermutationImportance(cX, cy, impOpts)
	if err != nil {
		return err
	}
	groups := map[string][]int{}
	for i, name := range features.CellFeatureNames {
		switch {
		case hasPrefix(name, "NeighborValueLength_"):
			groups["NeighborValueLength"] = append(groups["NeighborValueLength"], i)
		case hasPrefix(name, "NeighborDataType_"):
			groups["NeighborDataType"] = append(groups["NeighborDataType"], i)
		}
	}
	gNames, gImp := eval.GroupImportance(cImp, features.CellFeatureNames, groups)
	printImportance(cfg, "Figure 4 (bottom): Strudel-C permutation feature importance",
		gNames, eval.NormalizeImportance(gImp))
	return nil
}

func trainLineOnTriple(cfg Config, train []*table.Table) (*core.LineModel, error) {
	opts := core.DefaultLineTrainOptions()
	opts.Forest = forest.Options{NumTrees: cfg.Trees, Seed: cfg.Seed}
	return core.TrainLine(train, opts)
}

func printImportance(cfg Config, title string, names []string, imp [][]float64) {
	cfg.printf("\n%s\n", title)
	cfg.printf("%-28s", "feature")
	for _, cl := range table.Classes {
		cfg.printf("%10s", cl)
	}
	cfg.printf("\n")
	for f, name := range names {
		cfg.printf("%-28s", name)
		for c := range imp {
			cfg.printf("%9.1f%%", imp[c][f]*100)
		}
		cfg.printf("\n")
	}
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic corpora: the comparative line and
// cell classification results (Table 6), the corpus statistics (Tables 3,
// 4, 5), the confusion matrices (Figure 3), the out-of-domain and
// plain-text transfers (Tables 7, 8), the permutation feature importance
// (Figure 4), the scalability measurement (Section 6.3.4), and the
// classifier / feature-group ablations (Sections 6.1.2 and 4).
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Config controls experiment size and determinism. The paper's full
// protocol is 10-fold cross-validation repeated 10 times on the full
// corpora; the default here is scaled down so the whole suite runs in
// minutes. Pass Paper() for the full protocol.
type Config struct {
	// Scale multiplies the per-corpus file counts.
	Scale float64
	// Folds and Repeats control cross-validation.
	Folds, Repeats int
	// Trees is the random forest size.
	Trees int
	// Seed drives every random choice.
	Seed int64
	// MaxCellsPerFile caps per-file cell sampling during training.
	MaxCellsPerFile int
	// Out receives the report; defaults to io.Discard when nil.
	Out io.Writer
}

// Default returns the quick configuration used by `go test -bench` and the
// CLI default: scaled-down corpora, 5x2 cross-validation, 50-tree forests.
func Default() Config {
	return Config{
		Scale: 0.5, Folds: 5, Repeats: 2,
		Trees: 50, Seed: 1, MaxCellsPerFile: 800,
	}
}

// Paper returns the paper's full protocol (10-fold, 10 repeats, 100 trees,
// full-size corpora). Expect a long run.
func Paper() Config {
	return Config{
		Scale: 1, Folds: 10, Repeats: 10,
		Trees: 100, Seed: 1, MaxCellsPerFile: 0,
	}
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 0.5
	}
	if c.Folds <= 0 {
		c.Folds = 5
	}
	if c.Repeats <= 0 {
		c.Repeats = 2
	}
	if c.Trees <= 0 {
		c.Trees = 50
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
}

func (c *Config) printf(format string, args ...any) {
	// Report output is best-effort: a failing writer must not abort an
	// experiment run, so the error is discarded deliberately.
	_, _ = fmt.Fprintf(c.Out, format, args...)
}

// runner is an experiment entry point.
type runner func(Config) error

var registry = map[string]runner{
	"table3":      Table3,
	"table4":      Table4,
	"table5":      Table5,
	"table6-line": Table6Line,
	"table6-cell": Table6Cell,
	"figure3":     Figure3,
	"table7":      Table7,
	"table8":      Table8,
	"figure4":     Figure4,
	"scale":       Scalability,
	"ablate-clf":  AblateClassifiers,
	"ablate-feat": AblateFeatures,
	"ablate-agg":  AblateAggregations,
	"ablate-post": AblatePostProcess,
	"ablate-col":  AblateColumns,
	"active":      ActiveLearning,
	"importance":  ImportanceComparison,
	"extraction":  Extraction,
	"hardcases":   HardCases,
	"boundary":    Boundary,
	"ablate-ctx":  AblateContext,
}

// Names lists the available experiment identifiers, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by name.
func Run(name string, cfg Config) error {
	r, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(cfg)
}

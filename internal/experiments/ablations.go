package experiments

import (
	"time"

	"strudel/internal/core"
	"strudel/internal/dialect"
	"strudel/internal/eval"
	"strudel/internal/features"
	"strudel/internal/ml/forest"
)

// AblateClassifiers reproduces the backbone bake-off of Section 6.1.2:
// naive Bayes, KNN, linear SVM, and random forest, all on the identical
// Strudel^L feature pipeline, cross-validated on SAUS. The paper reports
// that random forest consistently won; this experiment shows the same
// ordering on the synthetic corpus.
func AblateClassifiers(cfg Config) error {
	cfg.fill()
	files := corpus("saus", cfg.Scale).Files
	cfg.printf("Ablation A1: classifier backbones on the line task (SAUS)\n")
	printHeader(cfg)
	approaches := []struct {
		name    string
		trainer eval.LineTrainer
	}{
		{"NaiveBayes", altLineTrainer("naive")},
		{"KNN", altLineTrainer("knn")},
		{"SVM", altLineTrainer("svm")},
		{"Forest", strudelLineTrainer(cfg)},
	}
	for _, a := range approaches {
		res, err := eval.CrossValidateLines(files, a.trainer, eval.CVOptions{
			Folds: cfg.Folds, Repeats: cfg.Repeats, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		printRow(cfg, "saus", a.name, res.Scores())
	}
	return nil
}

// AblateFeatures drops one feature group of Table 1 at a time (content,
// contextual, computational) and reruns Strudel^L, quantifying each
// group's contribution — the design-choice analysis DESIGN.md calls out.
func AblateFeatures(cfg Config) error {
	cfg.fill()
	files := corpus("saus", cfg.Scale).Files
	cfg.printf("Ablation A2: Strudel-L minus one feature group (SAUS)\n")
	printHeader(cfg)

	all := make([]int, features.NumLineFeatures)
	for i := range all {
		all[i] = i
	}
	variants := []struct {
		name string
		drop []int
	}{
		{"full", nil},
		{"-content", features.LineContentFeatures},
		{"-context", features.LineContextualFeatures},
		{"-comput", features.LineComputationalFeatures},
	}
	for _, v := range variants {
		mask := complement(all, v.drop)
		res, err := eval.CrossValidateLines(files, maskedLineTrainer(cfg, mask), eval.CVOptions{
			Folds: cfg.Folds, Repeats: cfg.Repeats, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		printRow(cfg, "saus", v.name, res.Scores())
	}
	return nil
}

// complement returns all \ drop (nil drop returns all).
func complement(all, drop []int) []int {
	if len(drop) == 0 {
		out := make([]int, len(all))
		copy(out, all)
		return out
	}
	dropped := map[int]bool{}
	for _, i := range drop {
		dropped[i] = true
	}
	var out []int
	for _, i := range all {
		if !dropped[i] {
			out = append(out, i)
		}
	}
	return out
}

// Scalability measures end-to-end classification time (dialect detection,
// feature creation, prediction) against file size, reproducing the
// linear-runtime observation of Section 6.3.4.
func Scalability(cfg Config) error {
	cfg.fill()
	// Train once on a small corpus.
	train := corpus("saus", 0.3).Files
	opts := core.DefaultCellTrainOptions()
	opts.Forest = forest.Options{NumTrees: cfg.Trees, Seed: cfg.Seed}
	opts.Line.Forest = opts.Forest
	opts.MaxCellsPerFile = 500
	model, err := core.TrainCell(train, opts)
	if err != nil {
		return err
	}

	cfg.printf("Scalability (Section 6.3.4): end-to-end cell classification time vs file size\n")
	cfg.printf("%10s %12s %12s %14s\n", "lines", "bytes", "time", "us/line")
	p := mendeleyAt(400)
	for _, lines := range []int{200, 400, 800, 1600} {
		p.DataRows = [2]int{lines, lines}
		p.Files = 1
		f := generateOne(p)
		raw := renderCSV(f)

		//lint:ignore nondeterminism wall-clock duration is the measured quantity of the scalability experiment
		start := time.Now()
		d, err := dialect.Detect(raw)
		if err != nil {
			return err
		}
		t := parseAndCrop(raw, d)
		_ = model.Classify(t)
		elapsed := time.Since(start)

		cfg.printf("%10d %12d %12s %14.1f\n",
			t.Height(), len(raw), elapsed.Round(time.Millisecond),
			float64(elapsed.Microseconds())/float64(t.Height()))
	}
	return nil
}

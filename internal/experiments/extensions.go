package experiments

import (
	"sort"

	"strudel/internal/active"
	"strudel/internal/eval"
	"strudel/internal/features"
	"strudel/internal/ml/forest"
	"strudel/internal/table"
)

// AblateAggregations measures Algorithm 2 directly against the gold
// derived cells of each corpus under three configurations: sum only,
// sum+mean (the paper's setting), and sum+mean+min/max (the future-work
// extension). Precision and recall are over non-empty numeric derived
// cells.
func AblateAggregations(cfg Config) error {
	cfg.fill()
	cfg.printf("Ablation A3: Algorithm 2 aggregation functions (derived cell detection)\n")
	cfg.printf("%-10s %-12s %10s %10s %10s\n", "dataset", "functions", "precision", "recall", "F1")
	variants := []struct {
		name string
		opts features.DerivedOptions
	}{
		{"sum", func() features.DerivedOptions {
			o := features.DefaultDerivedOptions()
			o.DetectMean = false
			return o
		}()},
		{"sum+mean", features.DefaultDerivedOptions()},
		{"all", features.ExtendedDerivedOptions()},
	}
	for _, ds := range []string{"saus", "cius", "deex", "troy"} {
		files := corpus(ds, cfg.Scale).Files
		for _, v := range variants {
			tp, fp, fn := 0, 0, 0
			for _, f := range files {
				det := features.DetectDerived(f, v.opts)
				for r := 0; r < f.Height(); r++ {
					for c := 0; c < f.Width(); c++ {
						if f.IsEmptyCell(r, c) {
							continue
						}
						gold := f.CellClasses[r][c] == table.ClassDerived
						switch {
						case det[r][c] && gold:
							tp++
						case det[r][c] && !gold:
							fp++
						case !det[r][c] && gold:
							fn++
						}
					}
				}
			}
			p, rec, f1 := prf(tp, fp, fn)
			cfg.printf("%-10s %-12s %10.3f %10.3f %10.3f\n", ds, v.name, p, rec, f1)
		}
	}
	return nil
}

func prf(tp, fp, fn int) (p, r, f1 float64) {
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return p, r, f1
}

// AblatePostProcess compares Strudel^C with and without the Koci-style
// misclassification repair (Section 2.2 related work, implemented in
// internal/postprocess).
func AblatePostProcess(cfg Config) error {
	cfg.fill()
	files := corpus("saus", cfg.Scale).Files
	cfg.printf("Ablation A4: Strudel-C with and without misclassification repair (SAUS)\n")
	printHeader(cfg)
	for _, post := range []bool{false, true} {
		name := "Strudel-C"
		if post {
			name = "+repair"
		}
		trainer := cellTrainerWith(cfg, post, false)
		res, err := eval.CrossValidateCells(files, trainer, eval.CVOptions{
			Folds: cfg.Folds, Repeats: cfg.Repeats, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		printRow(cfg, "saus", name, res.Scores())
	}
	return nil
}

// AblateColumns compares Strudel^C with and without the column-probability
// features — the future-work question (iii) of the paper's conclusion.
func AblateColumns(cfg Config) error {
	cfg.fill()
	files := corpus("saus", cfg.Scale).Files
	cfg.printf("Ablation A5: Strudel-C with and without column classification features (SAUS)\n")
	printHeader(cfg)
	for _, cols := range []bool{false, true} {
		name := "Strudel-C"
		if cols {
			name = "+columns"
		}
		trainer := cellTrainerWith(cfg, false, cols)
		res, err := eval.CrossValidateCells(files, trainer, eval.CVOptions{
			Folds: cfg.Folds, Repeats: cfg.Repeats, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		printRow(cfg, "saus", name, res.Scores())
	}
	return nil
}

// ActiveLearning runs the file-level active learning loop (uncertainty vs
// random selection) on GovUK and reports the accuracy progression — the
// Chen et al. style extension of Section 2.2.
func ActiveLearning(cfg Config) error {
	cfg.fill()
	files := corpus("govuk", cfg.Scale).Files
	if len(files) < 10 {
		files = corpus("govuk", 1).Files
	}
	split := len(files) * 3 / 4
	pool, test := files[:split], files[split:]

	cfg.printf("Active learning: line accuracy vs labeled files (GovUK)\n")
	cfg.printf("%-12s", "strategy")
	opts := active.Options{
		InitialFiles: 3, Rounds: 5, PerRound: 2,
		Trees: cfg.Trees, Seed: cfg.Seed,
	}
	var results []*active.Result
	for _, s := range []active.Strategy{active.Uncertainty, active.Margin, active.Random} {
		res, err := active.Run(pool, test, s, opts)
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	for _, n := range results[0].LabeledCounts {
		cfg.printf("%8d", n)
	}
	cfg.printf("  (labeled files)\n")
	for _, res := range results {
		cfg.printf("%-12s", res.Strategy)
		for _, a := range res.Accuracy {
			cfg.printf("%8.3f", a)
		}
		cfg.printf("\n")
	}
	return nil
}

// ImportanceComparison contrasts Gini (mean decrease in impurity) and
// permutation feature importance on the Strudel^L task — the methodological
// choice Section 6.3.5 explains ("permutation ... does not favor high
// cardinality features").
func ImportanceComparison(cfg Config) error {
	cfg.fill()
	train := trainingTriple(cfg.Scale)

	var X [][]float64
	var y []int
	lopts := features.DefaultLineOptions()
	for _, t := range train {
		fs := features.LineFeatures(t, lopts)
		for r := 0; r < t.Height(); r++ {
			if idx := t.LineClasses[r].Index(); idx >= 0 && !t.IsEmptyLine(r) {
				X = append(X, fs[r])
				y = append(y, idx)
			}
		}
	}
	f, err := forest.Fit(X, y, table.NumClasses, forest.Options{NumTrees: cfg.Trees, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	gini := f.GiniImportance()

	impOpts := eval.DefaultImportanceOptions()
	impOpts.Forest.NumTrees = cfg.Trees / 2
	impOpts.Seed = cfg.Seed
	perClass, err := eval.PermutationImportance(X, y, impOpts)
	if err != nil {
		return err
	}
	// Collapse permutation importance over classes for a single ranking.
	perm := make([]float64, len(gini))
	for _, row := range perClass {
		for i, v := range row {
			perm[i] += v
		}
	}
	normalize(perm)

	cfg.printf("Importance comparison on Strudel-L features (SAUS+CIUS+DeEx)\n")
	cfg.printf("%-28s %10s %14s\n", "feature", "gini", "permutation")
	order := rankDesc(gini)
	for _, i := range order {
		cfg.printf("%-28s %9.1f%% %13.1f%%\n", features.LineFeatureNames[i], gini[i]*100, perm[i]*100)
	}
	return nil
}

func normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x
	}
	//lint:ignore floatcmp sum of non-negative weights; exact zero is the nothing-to-normalize sentinel
	if s == 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}

func rankDesc(v []float64) []int {
	order := make([]int, len(v))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return v[order[a]] > v[order[b]] })
	return order
}

// cellTrainerWith builds a Strudel^C trainer with the extension toggles.
func cellTrainerWith(cfg Config, post, cols bool) eval.CellTrainer {
	return func(train []*table.Table, seed int64) (eval.CellClassifier, error) {
		opts := defaultCellOpts(cfg, seed)
		opts.PostProcess = post
		opts.UseColumnProbs = cols
		return trainCell(train, opts)
	}
}

package experiments

import (
	"strudel/internal/core"
	"strudel/internal/extract"
	"strudel/internal/ml/forest"
	"strudel/internal/table"
)

// Extraction measures the downstream task that motivates the paper: how
// much of the clean relational content survives extraction when the line
// classes are predicted rather than gold. For every test file we extract
// relations under (a) gold line classes and (b) Strudel^L predictions, and
// compare the recovered data tuples. Reported per corpus:
//
//	row recall    — gold data rows present in the predicted extraction
//	row precision — predicted rows that are real data rows
//	purity        — predicted rows free of derived/prose contamination
func Extraction(cfg Config) error {
	cfg.fill()
	cfg.printf("Downstream extraction quality (train on SAUS+CIUS+DeEx)\n")
	cfg.printf("%-10s %12s %12s %12s\n", "dataset", "row recall", "row precision", "purity")

	train := trainingTriple(cfg.Scale)
	opts := core.DefaultLineTrainOptions()
	opts.Forest = forest.Options{NumTrees: cfg.Trees, Seed: cfg.Seed}
	model, err := core.TrainLine(train, opts)
	if err != nil {
		return err
	}

	for _, ds := range []string{"govuk", "troy"} {
		files := corpus(ds, cfg.Scale).Files
		var recallHit, recallTotal, precHit, precTotal, pure int
		for _, f := range files {
			goldRows := rowSet(extract.Tables(f, f.LineClasses))
			pred := model.Classify(f)
			predRels := extract.Tables(f, pred)
			predRows := rowSet(predRels)

			for line := range goldRows {
				recallTotal++
				if predRows[line] {
					recallHit++
				}
			}
			for line := range predRows {
				precTotal++
				if goldRows[line] {
					precHit++
				}
			}
			for line := range predRows {
				if f.LineClasses[line] == table.ClassData {
					pure++
				}
			}
		}
		recall := ratio(recallHit, recallTotal)
		precision := ratio(precHit, precTotal)
		purity := ratio(pure, precTotal)
		cfg.printf("%-10s %12.3f %12.3f %12.3f\n", ds, recall, precision, purity)
	}
	return nil
}

// rowSet collects the source line indices of every extracted data row.
func rowSet(rels []extract.Relation) map[int]bool {
	out := map[int]bool{}
	for _, rel := range rels {
		for _, line := range rel.SourceLines {
			out[line] = true
		}
	}
	return out
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

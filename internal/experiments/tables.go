package experiments

import (
	"strudel/internal/core"
	"strudel/internal/datagen"
	"strudel/internal/eval"
	"strudel/internal/ml/forest"
	"strudel/internal/table"
)

// Table3 reports the cell-class diversity degree distribution per dataset
// (paper Table 3: most lines carry a single cell class).
func Table3(cfg Config) error {
	cfg.fill()
	cfg.printf("Table 3: percentage of lines per cell-class diversity degree\n")
	cfg.printf("%-10s", "dataset")
	for d := 1; d <= table.NumClasses; d++ {
		cfg.printf("%8d", d)
	}
	cfg.printf("\n")
	for _, name := range cellDatasets {
		dist := datagen.DiversityDistribution(corpus(name, cfg.Scale))
		cfg.printf("%-10s", name)
		for _, v := range dist {
			cfg.printf("%7.1f%%", v*100)
		}
		cfg.printf("\n")
	}
	return nil
}

// Table4 reports the per-corpus summary (paper Table 4: files, non-empty
// lines, non-empty cells).
func Table4(cfg Config) error {
	cfg.fill()
	cfg.printf("Table 4: corpus summary (synthetic, scale %.2f)\n", cfg.Scale)
	cfg.printf("%-10s %8s %10s %12s\n", "dataset", "#files", "#lines", "#cells")
	for _, name := range []string{"govuk", "saus", "cius", "deex", "mendeley", "troy"} {
		s := corpus(name, cfg.Scale).Summarize()
		cfg.printf("%-10s %8d %10d %12d\n", name, s.Files, s.Lines, s.Cells)
	}
	return nil
}

// Table5 reports the class distribution over SAUS+CIUS+DeEx (paper Table 5).
func Table5(cfg Config) error {
	cfg.fill()
	cc := datagen.CountClasses(
		corpus("saus", cfg.Scale), corpus("cius", cfg.Scale), corpus("deex", cfg.Scale))
	cfg.printf("Table 5: lines and cells per class (SAUS + CIUS + DeEx)\n")
	cfg.printf("%-10s %10s %12s %12s\n", "class", "#lines", "#cells", "cells/line")
	for i, cl := range table.Classes {
		cfg.printf("%-10s %10d %12d %12.2f\n", cl, cc.Lines[i], cc.Cells[i], cc.CellsPerLine(i))
	}
	cfg.printf("%-10s %10d %12d\n", "overall", cc.TotalLines(), cc.TotalCells())
	return nil
}

// LineComparisonResult holds one approach's cross-validation scores on one
// dataset, for programmatic inspection by tests and benchmarks.
type LineComparisonResult struct {
	Dataset, Approach string
	Scores            eval.Scores
}

// Table6Line runs the line classification comparison (paper Table 6 top):
// CRF^L vs Pytheas^L vs Strudel^L with file-grouped repeated k-fold CV.
// Derived gold lines are excluded from Pytheas^L scoring, as in the paper.
func Table6Line(cfg Config) error {
	_, err := Table6LineResults(cfg)
	return err
}

// Table6LineResults runs the comparison and returns the scores.
func Table6LineResults(cfg Config) ([]LineComparisonResult, error) {
	cfg.fill()
	cfg.printf("Table 6 (top): line classification F1 (%d-fold CV x%d)\n", cfg.Folds, cfg.Repeats)
	printHeader(cfg)
	var out []LineComparisonResult
	for _, ds := range lineDatasets {
		files := corpus(ds, cfg.Scale).Files
		approaches := []struct {
			name    string
			trainer eval.LineTrainer
			skip    []table.Class
		}{
			{"CRF-L", crfLineTrainer(cfg), nil},
			{"Pytheas-L", pytheasLineTrainer(), []table.Class{table.ClassDerived}},
			{"Strudel-L", strudelLineTrainer(cfg), nil},
		}
		for _, a := range approaches {
			res, err := eval.CrossValidateLines(files, a.trainer, eval.CVOptions{
				Folds: cfg.Folds, Repeats: cfg.Repeats, Seed: cfg.Seed,
				SkipGoldClasses: a.skip,
			})
			if err != nil {
				return nil, err
			}
			s := res.Scores()
			printRow(cfg, ds, a.name, s)
			out = append(out, LineComparisonResult{ds, a.name, s})
		}
	}
	return out, nil
}

// Table6Cell runs the cell classification comparison (paper Table 6
// bottom): Line^C vs RNN^C vs Strudel^C.
func Table6Cell(cfg Config) error {
	_, err := Table6CellResults(cfg)
	return err
}

// Table6CellResults runs the comparison and returns the scores.
func Table6CellResults(cfg Config) ([]LineComparisonResult, error) {
	cfg.fill()
	cfg.printf("Table 6 (bottom): cell classification F1 (%d-fold CV x%d)\n", cfg.Folds, cfg.Repeats)
	printHeader(cfg)
	var out []LineComparisonResult
	for _, ds := range cellDatasets {
		files := corpus(ds, cfg.Scale).Files
		approaches := []struct {
			name    string
			trainer eval.CellTrainer
		}{
			{"Line-C", lineCBaselineTrainer(cfg)},
			{"RNN-C", rnnCellTrainer(cfg)},
			{"Strudel-C", strudelCellTrainer(cfg)},
		}
		for _, a := range approaches {
			res, err := eval.CrossValidateCells(files, a.trainer, eval.CVOptions{
				Folds: cfg.Folds, Repeats: cfg.Repeats, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			s := res.Scores()
			printRow(cfg, ds, a.name, s)
			out = append(out, LineComparisonResult{ds, a.name, s})
		}
	}
	return out, nil
}

// Table7 trains on SAUS+CIUS+DeEx and tests on the unseen Troy corpus
// (paper Table 7: out-of-domain generalization; derived suffers because
// Troy's aggregation lines are mostly unanchored).
func Table7(cfg Config) error {
	return transferExperiment(cfg, "troy", "Table 7: out-of-domain (train SAUS+CIUS+DeEx, test Troy)")
}

// Table8 trains on SAUS+CIUS+DeEx and tests on Mendeley plain-text files
// (paper Table 8: tall data files with the delimiter dilemma).
func Table8(cfg Config) error {
	return transferExperiment(cfg, "mendeley", "Table 8: plain-text files (train SAUS+CIUS+DeEx, test Mendeley)")
}

func transferExperiment(cfg Config, testCorpus, title string) error {
	cfg.fill()
	train := trainingTriple(cfg.Scale)
	test := corpus(testCorpus, cfg.Scale).Files

	cfg.printf("%s\n", title)
	printHeader(cfg)

	lopts := core.DefaultLineTrainOptions()
	lopts.Forest = forest.Options{NumTrees: cfg.Trees, Seed: cfg.Seed}
	lm, err := core.TrainLine(train, lopts)
	if err != nil {
		return err
	}
	printRow(cfg, testCorpus, "Strudel-L", eval.EvaluateLinesOn(lm, test))

	copts := core.DefaultCellTrainOptions()
	copts.Forest = forest.Options{NumTrees: cfg.Trees, Seed: cfg.Seed}
	copts.Line.Forest = copts.Forest
	copts.MaxCellsPerFile = cfg.MaxCellsPerFile
	cm, err := core.TrainCell(train, copts)
	if err != nil {
		return err
	}
	printRow(cfg, testCorpus, "Strudel-C", eval.EvaluateCellsOn(cm, test))
	return nil
}

func printHeader(cfg Config) {
	cfg.printf("%-10s %-10s", "dataset", "approach")
	for _, cl := range table.Classes {
		cfg.printf("%9s", cl)
	}
	cfg.printf("%9s %9s\n", "accuracy", "macro")
}

func printRow(cfg Config, ds, approach string, s eval.Scores) {
	cfg.printf("%-10s %-10s", ds, approach)
	for i := range s.F1 {
		if s.Support[i] == 0 {
			cfg.printf("%9s", "-")
			continue
		}
		cfg.printf("%9.3f", s.F1[i])
	}
	cfg.printf("%9.3f %9.3f\n", s.Accuracy, s.MacroF1)
}

package experiments

import (
	"strudel/internal/datagen"
	"strudel/internal/dialect"
	"strudel/internal/table"
)

// mendeleyAt returns the Mendeley profile pinned to a fixed data-row count,
// used to grow files for the scalability measurement.
func mendeleyAt(rows int) datagen.Profile {
	p := datagen.Mendeley()
	p.DataRows = [2]int{rows, rows}
	p.PMultiTable = 0
	p.PGroups = 0
	return p
}

// generateOne renders the first file of a one-file corpus.
func generateOne(p datagen.Profile) *table.Table {
	p.Files = 1
	return datagen.Generate(p).Files[0]
}

// renderCSV serializes a table back to RFC 4180 text, as a stand-in for a
// raw input file.
func renderCSV(t *table.Table) string {
	rows := make([][]string, t.Height())
	for r := range rows {
		rows[r] = t.Row(r)
	}
	return dialect.Join(rows, dialect.Default)
}

// parseAndCrop runs the standard preprocessing: split under the detected
// dialect, build the grid, crop the margins.
func parseAndCrop(raw string, d dialect.Dialect) *table.Table {
	return table.FromRows(dialect.Split(raw, d)).Crop()
}

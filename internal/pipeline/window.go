package pipeline

// Window is the sliding row buffer behind streaming annotation: a ring of
// parsed rows indexed by their absolute position in the (leading-crop
// adjusted) file, supporting append at the tail and eviction from the head.
// The streaming driver keeps [emitted-margin, emitted+window+margin) rows
// buffered — left context, core, and lookahead — so feature extraction sees
// a bounded neighborhood regardless of file size.
//
// The ring grows on demand (windows are configured, not adversarial) but
// never shrinks; with a fixed window configuration the buffer reaches its
// steady-state size once and stays there, which is what makes streaming
// memory O(window), not O(file).
//
// A Window is owned by one goroutine; it is not safe for concurrent use.
type Window struct {
	rows  [][]string
	head  int // ring slot of the row at absolute index base
	count int
	base  int // absolute index of the oldest buffered row
}

// NewWindow returns a window with capacity for at least capHint rows before
// its first growth. A non-positive hint gets a small default.
func NewWindow(capHint int) *Window {
	if capHint <= 0 {
		capHint = 64
	}
	return &Window{rows: make([][]string, capHint)}
}

// Push appends a row at absolute index End().
func (w *Window) Push(row []string) {
	if w.count == len(w.rows) {
		w.grow()
	}
	w.rows[(w.head+w.count)%len(w.rows)] = row
	w.count++
}

// grow doubles the ring, re-laying the live rows out from slot 0.
func (w *Window) grow() {
	bigger := make([][]string, 2*len(w.rows))
	for i := 0; i < w.count; i++ {
		bigger[i] = w.rows[(w.head+i)%len(w.rows)]
	}
	w.rows = bigger
	w.head = 0
}

// Len returns how many rows are buffered.
func (w *Window) Len() int { return w.count }

// Base returns the absolute index of the oldest buffered row.
func (w *Window) Base() int { return w.base }

// End returns one past the absolute index of the newest buffered row.
func (w *Window) End() int { return w.base + w.count }

// At returns the row at absolute index abs, which must be in [Base, End).
func (w *Window) At(abs int) []string {
	if abs < w.base || abs >= w.base+w.count {
		//lint:ignore panicpath indices come from the streaming driver's own emitted/evicted bookkeeping, never from file input; out of range is a driver bug, like slice indexing
		panic("pipeline: window index out of range")
	}
	return w.rows[(w.head+abs-w.base)%len(w.rows)]
}

// Slice copies out the row references in [lo, hi), both absolute and within
// [Base, End]. The backing rows are shared, not cloned: callers hand them to
// table construction, which copies cells itself.
func (w *Window) Slice(lo, hi int) [][]string {
	if lo < w.base || hi > w.base+w.count || lo > hi {
		//lint:ignore panicpath bounds come from the streaming driver's own emitted/evicted bookkeeping, never from file input; out of range is a driver bug, like slice indexing
		panic("pipeline: window slice out of range")
	}
	out := make([][]string, hi-lo)
	for i := range out {
		out[i] = w.rows[(w.head+lo+i-w.base)%len(w.rows)]
	}
	return out
}

// EvictTo releases every row below absolute index abs, returning how many
// were dropped. Evicting past End empties the buffer; evicting below Base
// is a no-op.
func (w *Window) EvictTo(abs int) int {
	n := abs - w.base
	if n <= 0 {
		return 0
	}
	if n > w.count {
		n = w.count
	}
	for i := 0; i < n; i++ {
		w.rows[(w.head+i)%len(w.rows)] = nil // release for GC
	}
	w.head = (w.head + n) % len(w.rows)
	w.base += n
	w.count -= n
	return n
}

package pipeline

import (
	"fmt"
	"testing"
)

func rowFor(i int) []string { return []string{fmt.Sprintf("r%d", i)} }

func TestWindowPushAtEvict(t *testing.T) {
	w := NewWindow(4) // force several growths
	const total = 100
	next := 0
	evicted := 0
	for next < total {
		// Push a burst, then evict to keep ~8 rows buffered, like the
		// streaming driver's steady state.
		for i := 0; i < 7 && next < total; i++ {
			w.Push(rowFor(next))
			next++
		}
		if w.End() != next || w.Base() != evicted || w.Len() != next-evicted {
			t.Fatalf("bounds: base=%d end=%d len=%d, want %d %d %d",
				w.Base(), w.End(), w.Len(), evicted, next, next-evicted)
		}
		for abs := w.Base(); abs < w.End(); abs++ {
			if got := w.At(abs)[0]; got != rowFor(abs)[0] {
				t.Fatalf("At(%d) = %s, want %s", abs, got, rowFor(abs)[0])
			}
		}
		if keep := w.End() - 8; keep > w.Base() {
			n := w.EvictTo(keep)
			evicted += n
			if w.Base() != keep {
				t.Fatalf("after EvictTo(%d): base=%d", keep, w.Base())
			}
		}
	}
}

func TestWindowSlice(t *testing.T) {
	w := NewWindow(2)
	for i := 0; i < 10; i++ {
		w.Push(rowFor(i))
	}
	w.EvictTo(3)
	got := w.Slice(4, 8)
	if len(got) != 4 {
		t.Fatalf("slice len %d, want 4", len(got))
	}
	for i, row := range got {
		if row[0] != rowFor(4 + i)[0] {
			t.Fatalf("slice[%d] = %s, want %s", i, row[0], rowFor(4 + i)[0])
		}
	}
}

func TestWindowEvictEdges(t *testing.T) {
	w := NewWindow(4)
	for i := 0; i < 5; i++ {
		w.Push(rowFor(i))
	}
	if n := w.EvictTo(0); n != 0 {
		t.Fatalf("evict below base dropped %d", n)
	}
	if n := w.EvictTo(100); n != 5 {
		t.Fatalf("evict past end dropped %d, want 5", n)
	}
	if w.Len() != 0 || w.Base() != 5 {
		t.Fatalf("after drain: len=%d base=%d", w.Len(), w.Base())
	}
	w.Push(rowFor(5))
	if w.At(5)[0] != "r5" || w.End() != 6 {
		t.Fatalf("push after drain: at(5)=%v end=%d", w.At(5), w.End())
	}
}

func TestWindowPanicsOutOfRange(t *testing.T) {
	w := NewWindow(4)
	w.Push(rowFor(0))
	for name, fn := range map[string]func(){
		"at-low":    func() { w.At(-1) },
		"at-high":   func() { w.At(1) },
		"slice-bad": func() { w.Slice(0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Package pipeline holds the shared per-table artifact object that the
// Strudel classification stages thread through. The cell classifier is
// defined on top of the line classifier's probability vectors (Section 5.4
// of the paper), so a naive call graph recomputes line features and line
// probabilities once per entry point. An Artifacts value memoizes those
// intermediate products so each is computed exactly once per table, no
// matter how many stages (line classification, cell classification,
// probability reporting, column features) consume it.
//
// The package sits below internal/core: it depends only on the feature
// extractors and the table model, and core's *WithArtifacts methods fill
// and read the caches. An Artifacts value is NOT safe for concurrent use;
// create one per table per goroutine (they are cheap).
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"strudel/internal/features"
	"strudel/internal/ml"
	"strudel/internal/obs"
	"strudel/internal/table"
)

// Artifacts caches the intermediate products of the Strudel pipeline for a
// single table: the line feature matrix, the Strudel^L probability vectors,
// the cell feature tensor, and optional column probabilities. Caches that
// depend on a trained model (probabilities, cell features) are keyed by an
// owner token — normally the model pointer — so an artifact accidentally
// shared between two different models recomputes instead of returning
// stale vectors.
type Artifacts struct {
	// Table is the parsed file the artifacts describe.
	Table *table.Table

	// Obs observes the stage computations: each cache miss is timed as a
	// span (line_features, line_probs, cell_features, column_probs). Nil
	// disables observation at the cost of one nil check per stage. Like
	// the Artifacts itself, the field is set once before use and read by
	// one goroutine.
	Obs *obs.Hooks

	lineFeats     [][]float64
	lineOpts      features.LineOptions
	haveLineFeats bool

	lineProbs      [][]float64
	lineProbsOwner any

	cellFeats      [][][]float64
	cellFeatsOwner any

	colProbs      [][]float64
	colProbsOwner any

	// scratch is the reusable staging block the prediction stages fill
	// before calling PredictProbaMatrix; see FeatureMatrix. It is drawn
	// from a package-level pool on first use and handed back by
	// ReleaseScratch, so the annotate loop recycles one backing array
	// across files instead of growing a fresh one per table.
	scratch *ml.Matrix

	// shared memoizes the per-table grids (types, block sizes, derived
	// cells) the feature extractors all need; see Shared.
	shared *features.Shared
}

// New returns an empty artifact object for t.
func New(t *table.Table) *Artifacts { return &Artifacts{Table: t} }

// Shared returns the per-table feature precomputation memo, creating it on
// first use. Stages extract through it (a.Shared().CellFeatures(...)) so
// the type grid and derived-cell detection are computed once per table
// instead of once per extractor.
func (a *Artifacts) Shared() *features.Shared {
	if a.shared == nil {
		a.shared = features.NewShared(a.Table)
	}
	return a.shared
}

// LineFeatures returns the memoized line feature matrix, extracting it on
// first use. A call with different options than the cached extraction
// recomputes (distinct models disagreeing on options should not share one
// artifact, but correctness is preserved if they do).
func (a *Artifacts) LineFeatures(opts features.LineOptions) [][]float64 {
	if !a.haveLineFeats || a.lineOpts != opts {
		start := a.Obs.SpanStart(obs.StageLineFeatures)
		a.lineFeats = a.Shared().LineFeatures(opts)
		a.Obs.SpanEnd(obs.StageLineFeatures, start)
		a.lineOpts = opts
		a.haveLineFeats = true
		counters.LineFeatures.Add(1)
	}
	return a.lineFeats
}

// LineProbabilities returns the cached Strudel^L probability matrix if it
// was produced by owner, and otherwise computes and caches it via compute.
// Callers must treat the result as read-only.
func (a *Artifacts) LineProbabilities(owner any, compute func(*Artifacts) [][]float64) [][]float64 {
	if a.lineProbs == nil || a.lineProbsOwner != owner {
		start := a.Obs.SpanStart(obs.StageLineProbs)
		a.lineProbs = compute(a)
		a.Obs.SpanEnd(obs.StageLineProbs, start)
		a.lineProbsOwner = owner
		counters.LineProbabilities.Add(1)
	}
	return a.lineProbs
}

// CellFeatures returns the cached cell feature tensor if it was produced by
// owner, and otherwise computes and caches it via compute. Callers must
// treat the result as read-only.
func (a *Artifacts) CellFeatures(owner any, compute func(*Artifacts) [][][]float64) [][][]float64 {
	if a.cellFeats == nil || a.cellFeatsOwner != owner {
		start := a.Obs.SpanStart(obs.StageCellFeatures)
		a.cellFeats = compute(a)
		a.Obs.SpanEnd(obs.StageCellFeatures, start)
		a.cellFeatsOwner = owner
		counters.CellFeatures.Add(1)
	}
	return a.cellFeats
}

// ColumnProbabilities returns the cached per-column probability matrix if
// it was produced by owner, and otherwise computes and caches it via
// compute. Callers must treat the result as read-only.
func (a *Artifacts) ColumnProbabilities(owner any, compute func(*Artifacts) [][]float64) [][]float64 {
	if a.colProbs == nil || a.colProbsOwner != owner {
		start := a.Obs.SpanStart(obs.StageColumnProbs)
		a.colProbs = compute(a)
		a.Obs.SpanEnd(obs.StageColumnProbs, start)
		a.colProbsOwner = owner
		counters.ColumnProbabilities.Add(1)
	}
	return a.colProbs
}

// scratchPool recycles staging blocks across Artifacts. Pool identity
// never influences outputs: every stage overwrites the block completely
// before reading it.
var scratchPool = sync.Pool{New: func() any { return new(ml.Matrix) }}

// FeatureMatrix returns the artifact's reusable staging block, resized to
// rows×cols. Its contents on return are unspecified and transient: each
// prediction stage (line, cell, column) overwrites it completely in turn,
// so a stage must finish its PredictProbaMatrix call before the next stage
// fills it. Probability outputs never alias the block — they are written
// into fresh slabs — so the memoized artifact caches stay valid across
// reuse. Like the Artifacts itself, the block is single-goroutine.
func (a *Artifacts) FeatureMatrix(rows, cols int) *ml.Matrix {
	if a.scratch == nil {
		a.scratch = scratchPool.Get().(*ml.Matrix)
	}
	a.scratch.Reset(rows, cols)
	return a.scratch
}

// ReleaseScratch hands the staging block back to the package pool. The
// annotate loop calls it once per table after all stages finish; skipping
// the call is harmless (the block is then simply collected).
func (a *Artifacts) ReleaseScratch() {
	if a.scratch != nil {
		scratchPool.Put(a.scratch)
		a.scratch = nil
	}
}

// Counters tallies how often each expensive pipeline stage actually ran
// (cache misses, not lookups). It exists as a test hook so single-pass
// guarantees — e.g. "Annotate extracts line features exactly once" — are
// assertable; it is not part of the stable API.
type Counters struct {
	LineFeatures        atomic.Int64
	LineProbabilities   atomic.Int64
	CellFeatures        atomic.Int64
	ColumnProbabilities atomic.Int64
}

var counters Counters

// CounterValues is a plain snapshot of the stage counters.
type CounterValues struct {
	LineFeatures        int64
	LineProbabilities   int64
	CellFeatures        int64
	ColumnProbabilities int64
}

// Counts snapshots the global stage counters.
func Counts() CounterValues {
	return CounterValues{
		LineFeatures:        counters.LineFeatures.Load(),
		LineProbabilities:   counters.LineProbabilities.Load(),
		CellFeatures:        counters.CellFeatures.Load(),
		ColumnProbabilities: counters.ColumnProbabilities.Load(),
	}
}

// ResetCounts zeroes the global stage counters (test hook).
func ResetCounts() {
	counters.LineFeatures.Store(0)
	counters.LineProbabilities.Store(0)
	counters.CellFeatures.Store(0)
	counters.ColumnProbabilities.Store(0)
}

// ForEach runs fn(i) for every i in [0, n) on a bounded worker pool of the
// given size (0 or negative means GOMAXPROCS). It returns when every call
// has finished. Work is per-index independent, so callers that write only
// to slot i of a pre-sized result slice get output identical to a serial
// loop regardless of the parallelism setting — the corpus-level concurrency
// contract used by training, batch annotation, and cross-validation.
func ForEach(n, parallelism int, fn func(int)) {
	// context.Background is never cancelled, so this cannot return an error.
	_ = ForEachContext(context.Background(), n, parallelism, fn)
}

// ForEachContext is ForEach with cooperative cancellation: once ctx is
// cancelled no further indices are dispatched, in-flight calls finish, and
// the context's error is returned. Indices that were never dispatched are
// simply skipped — the caller decides what an unfilled result slot means.
// A nil ctx behaves like context.Background. With a non-cancellable context
// the behavior (and determinism contract) is identical to ForEach.
func ForEachContext(ctx context.Context, n, parallelism int, fn func(int)) error {
	return ForEachContextObs(ctx, n, parallelism, nil, fn)
}

// ForEachContextObs is ForEachContext with the worker pool under
// observation: h (nil is free) receives the dispatched-item counter, the
// queue-depth gauge (items not yet handed to a worker), the busy-workers
// gauge with its high-water mark, and one utilization observation per
// worker (busy time over pool wall time) when the pool drains. Dispatch
// order, determinism, and cancellation semantics are identical to
// ForEachContext at every setting.
func ForEachContextObs(ctx context.Context, n, parallelism int, h *obs.Hooks, fn func(int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	h.GaugeSet(obs.MPoolQueueDepth, int64(n))
	done := ctx.Done()
	if workers <= 1 {
		wallStart := h.Now()
		var busy time.Duration
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				observeUtilization(h, busy, wallStart)
				return err
			}
			itemStart := startItem(h)
			fn(i)
			busy += endItem(h, itemStart)
		}
		observeUtilization(h, busy, wallStart)
		return ctx.Err()
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			wallStart := h.Now()
			var busy time.Duration
			for i := range next {
				itemStart := startItem(h)
				fn(i)
				busy += endItem(h, itemStart)
			}
			observeUtilization(h, busy, wallStart)
		}()
	}
feed:
	for i := 0; i < n; i++ {
		// Poll cancellation first: a select with both channels ready picks
		// randomly, which would keep dispatching work after cancellation.
		select {
		case <-done:
			break feed
		default:
		}
		select {
		case next <- i:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}

// startItem records one item leaving the queue for a worker and returns the
// moment it started. Each worker goroutine calls it only for its own items,
// so the returned time never crosses goroutines.
func startItem(h *obs.Hooks) time.Time {
	if !h.Active() {
		return time.Time{}
	}
	h.Count(obs.MPoolItems, 1)
	h.GaugeAdd(obs.MPoolQueueDepth, -1)
	h.GaugeAdd(obs.MPoolBusyWorkers, 1)
	return h.Now()
}

// endItem closes out one item and returns how long the worker was busy on it.
func endItem(h *obs.Hooks, start time.Time) time.Duration {
	if !h.Active() {
		return 0
	}
	h.GaugeAdd(obs.MPoolBusyWorkers, -1)
	return h.Since(start)
}

// observeUtilization records one worker's busy/wall ratio when it exits the
// pool. A worker that never saw the clock (nil hooks) records nothing.
func observeUtilization(h *obs.Hooks, busy time.Duration, wallStart time.Time) {
	if !h.Active() {
		return
	}
	wall := h.Since(wallStart)
	if wall <= 0 {
		return
	}
	h.Observe(obs.MPoolWorkerUtilization, busy.Seconds()/wall.Seconds(), obs.UnitBuckets)
}

// A PanicError is a recovered per-file panic, converted into an ordinary
// error so one poisoned input cannot take down a whole batch. The stack is
// captured at recovery time for diagnosis.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack at the recovery point.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Safely runs fn, converting a panic into a *PanicError. It is the fault
// barrier batch workers wrap around each per-file unit of work.
func Safely(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

package pipeline

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"strudel/internal/features"
	"strudel/internal/table"
)

func sampleTable() *table.Table {
	return table.FromRows([][]string{
		{"Report 2020", "", ""},
		{"", "", ""},
		{"Region", "Q1", "Q2"},
		{"North", "10", "20"},
		{"South", "30", "40"},
		{"Total", "40", "60"},
	})
}

func TestLineFeaturesMemoized(t *testing.T) {
	a := New(sampleTable())
	opts := features.DefaultLineOptions()
	first := a.LineFeatures(opts)
	second := a.LineFeatures(opts)
	if &first[0][0] != &second[0][0] {
		t.Error("repeated LineFeatures with equal options recomputed the matrix")
	}

	// Different options must not serve the stale matrix.
	opts.StrictAdjacency = true
	third := a.LineFeatures(opts)
	if &first[0][0] == &third[0][0] {
		t.Error("LineFeatures with different options returned the cached matrix")
	}
}

func TestOwnerKeyedCaches(t *testing.T) {
	a := New(sampleTable())
	ownerA, ownerB := new(int), new(int)
	var computes int
	compute := func(*Artifacts) [][]float64 {
		computes++
		return [][]float64{{float64(computes)}}
	}

	p1 := a.LineProbabilities(ownerA, compute)
	p2 := a.LineProbabilities(ownerA, compute)
	if computes != 1 || &p1[0][0] != &p2[0][0] {
		t.Errorf("same owner recomputed: %d computes", computes)
	}
	a.LineProbabilities(ownerB, compute)
	if computes != 2 {
		t.Errorf("different owner did not recompute: %d computes", computes)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, par := range []int{-1, 0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		ForEach(n, par, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallelism %d: index %d visited %d times", par, i, got)
			}
		}
	}
	// Zero work must not deadlock.
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
}

func TestForEachContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		var calls atomic.Int32
		err := ForEachContext(ctx, 50, par, func(int) { calls.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallelism %d: err = %v, want context.Canceled", par, err)
		}
		// The parallel path may dispatch up to one index per worker before
		// observing the cancellation; it must not run the whole range.
		if got := calls.Load(); got > int32(par) {
			t.Errorf("parallelism %d: %d calls after pre-cancellation, want ≤%d", par, got, par)
		}
	}
}

func TestForEachContextCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	err := ForEachContext(ctx, 1000, 2, func(i int) {
		if calls.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got >= 1000 {
		t.Errorf("all %d indices ran despite mid-batch cancellation", got)
	}
}

func TestForEachContextNilContext(t *testing.T) {
	var calls atomic.Int32
	if err := ForEachContext(nil, 10, 3, func(int) { calls.Add(1) }); err != nil {
		t.Errorf("nil ctx: err = %v", err)
	}
	if calls.Load() != 10 {
		t.Errorf("nil ctx ran %d of 10 indices", calls.Load())
	}
}

func TestSafelyConvertsPanics(t *testing.T) {
	if err := Safely(func() {}); err != nil {
		t.Errorf("clean fn: err = %v", err)
	}
	err := Safely(func() { panic("poisoned file") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "poisoned file" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {Value: %v, stack %d bytes}, want original value and a stack", pe.Value, len(pe.Stack))
	}
	// A panic(nil) in fn still counts as a fault on modern Go runtimes
	// (panic(nil) is converted to a *runtime.PanicNilError); either way the
	// barrier must not re-panic.
	_ = Safely(func() {
		defer func() { _ = recover() }()
		panic("inner recovery stays inner")
	})
}

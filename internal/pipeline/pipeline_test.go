package pipeline

import (
	"sync/atomic"
	"testing"

	"strudel/internal/features"
	"strudel/internal/table"
)

func sampleTable() *table.Table {
	return table.FromRows([][]string{
		{"Report 2020", "", ""},
		{"", "", ""},
		{"Region", "Q1", "Q2"},
		{"North", "10", "20"},
		{"South", "30", "40"},
		{"Total", "40", "60"},
	})
}

func TestLineFeaturesMemoized(t *testing.T) {
	a := New(sampleTable())
	opts := features.DefaultLineOptions()
	first := a.LineFeatures(opts)
	second := a.LineFeatures(opts)
	if &first[0][0] != &second[0][0] {
		t.Error("repeated LineFeatures with equal options recomputed the matrix")
	}

	// Different options must not serve the stale matrix.
	opts.StrictAdjacency = true
	third := a.LineFeatures(opts)
	if &first[0][0] == &third[0][0] {
		t.Error("LineFeatures with different options returned the cached matrix")
	}
}

func TestOwnerKeyedCaches(t *testing.T) {
	a := New(sampleTable())
	ownerA, ownerB := new(int), new(int)
	var computes int
	compute := func(*Artifacts) [][]float64 {
		computes++
		return [][]float64{{float64(computes)}}
	}

	p1 := a.LineProbabilities(ownerA, compute)
	p2 := a.LineProbabilities(ownerA, compute)
	if computes != 1 || &p1[0][0] != &p2[0][0] {
		t.Errorf("same owner recomputed: %d computes", computes)
	}
	a.LineProbabilities(ownerB, compute)
	if computes != 2 {
		t.Errorf("different owner did not recompute: %d computes", computes)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, par := range []int{-1, 0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		ForEach(n, par, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallelism %d: index %d visited %d times", par, i, got)
			}
		}
	}
	// Zero work must not deadlock.
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
}

// Package obs is the pipeline's observability layer: monotonic counters,
// gauges, and fixed-bucket histograms behind a Registry, plus the Hooks
// carrier that threads them through the annotation hot path (see hooks.go).
//
// The package is deliberately zero-dependency (standard library only) and
// allocation-conscious: every metric is a plain struct over sync/atomic, a
// disabled observer (nil *Hooks) costs a single nil check per
// instrumentation point, and Snapshot is the only operation that allocates
// proportionally to the number of metrics.
//
// Concurrency ownership: all metric mutation goes through atomic operations
// on values that are never moved after creation; the Registry's maps are
// guarded by its mutex and only grow. No package-level metric state exists —
// callers own their Registry — so concurrent batches with separate
// registries never share anything, and the sharedwrite analyzer contract
// ("exported API mutates no globals") holds by construction.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing count. The zero value is ready to
// use and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta (negative deltas are ignored: a
// counter only goes up).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is an instantaneous value that can move both ways (queue depth,
// busy workers). It additionally tracks the high-water mark it ever
// reached. The zero value is ready to use and safe for concurrent use.
type Gauge struct{ v, max atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.raiseMax(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	g.raiseMax(g.v.Add(delta))
}

func (g *Gauge) raiseMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the highest value the gauge ever held.
func (g *Gauge) Max() int64 { return g.max.Load() }

// atomicFloat64 accumulates a float64 with compare-and-swap on its bits.
type atomicFloat64 struct{ bits atomic.Uint64 }

func (f *atomicFloat64) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat64) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// A Histogram counts observations into fixed buckets chosen at
// construction. Buckets are defined by their inclusive upper bounds in
// ascending order; observations above the last bound land in an overflow
// bucket. Recording is lock-free and concurrent-safe; the bounds slice is
// immutable after construction.
type Histogram struct {
	bounds   []float64
	counts   []atomic.Int64 // len(bounds)+1; the last slot is the overflow
	observed atomic.Int64
	sum      atomicFloat64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// The bounds slice is copied; an empty bounds list yields a histogram that
// only tracks count and sum.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: its bucket
	h.counts[i].Add(1)
	h.observed.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.observed.Load() }

// Sum returns the running sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// DefaultLatencyBuckets are the upper bounds (in seconds) used for every
// stage-latency histogram: exponential-ish coverage from 100µs to 10s.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// UnitBuckets are the upper bounds used for values confined to [0, 1]
// (dialect consistency scores, worker utilization): twenty 0.05-wide bins.
var UnitBuckets = []float64{
	0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
	0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00,
}

// A Registry is a named collection of metrics. Metrics are created on first
// use and live for the registry's lifetime; creation is guarded by the
// registry mutex, mutation is atomic on the metric itself. The zero value
// is NOT usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. A later call with different bounds returns the existing
// histogram unchanged: the first creation wins, so concurrent recorders
// always share one bucket layout.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// CounterValue is one counter in a Snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a Snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// BucketValue is one histogram bucket: the count of observations at or
// below the upper bound (non-cumulative).
type BucketValue struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramValue is one histogram in a Snapshot. Overflow counts the
// observations above the last bucket bound.
type HistogramValue struct {
	Name     string        `json:"name"`
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	Buckets  []BucketValue `json:"buckets,omitempty"`
	Overflow int64         `json:"overflow"`
}

// A Snapshot is a point-in-time copy of every metric in a registry, sorted
// by name within each kind, so its JSON encoding is deterministic for a
// given sequence of recorded values.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot copies the current value of every metric. Concurrent recording
// during the copy is safe; each individual metric is read atomically.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make([]CounterValue, 0, len(r.counters)),
		Gauges:     make([]GaugeValue, 0, len(r.gauges)),
		Histograms: make([]HistogramValue, 0, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value(), Max: g.Max()})
	}
	for name, h := range r.histograms {
		hv := HistogramValue{Name: name, Count: h.Count(), Sum: h.Sum()}
		for i, bound := range h.bounds {
			hv.Buckets = append(hv.Buckets, BucketValue{UpperBound: bound, Count: h.counts[i].Load()})
		}
		hv.Overflow = h.counts[len(h.bounds)].Load()
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns the value of the named counter and whether it exists.
func (s Snapshot) Counter(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram value and whether it exists.
func (s Snapshot) Histogram(name string) (HistogramValue, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// Gauge returns the named gauge value and whether it exists.
func (s Snapshot) Gauge(name string) (GaugeValue, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g, true
		}
	}
	return GaugeValue{}, false
}

// WriteJSON writes the snapshot as indented JSON. The encoding is
// deterministic: fixed field order, name-sorted metrics.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

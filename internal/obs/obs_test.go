package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketing pins the bucket semantics: an observation lands in
// the first bucket whose upper bound is >= the value, values above the last
// bound land in the overflow slot, and count/sum track every observation.
func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 2, 10, 11, 1000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2} // (..0.1] (0.1..1] (1..10]
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
	if got := h.counts[3].Load(); got != 2 {
		t.Errorf("overflow count = %d, want 2", got)
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+1+2+10+11+1000; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

// TestHistogramUnsortedBounds: NewHistogram sorts the bounds it is given.
func TestHistogramUnsortedBounds(t *testing.T) {
	h := NewHistogram([]float64{10, 0.1, 1})
	h.Observe(0.5)
	if got := h.counts[1].Load(); got != 1 {
		t.Errorf("0.5 landed in the wrong bucket (counts[1] = %d, want 1)", got)
	}
}

// TestSnapshotDeterministic: two snapshots of the same registry state must
// encode to byte-identical JSON, regardless of metric creation order.
func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z/second").Add(2)
	r.Counter("a/first").Inc()
	r.Gauge("m/depth").Set(7)
	r.Histogram("lat/x", DefaultLatencyBuckets).Observe(0.003)
	r.Histogram("lat/a", UnitBuckets).Observe(0.5)

	var one, two bytes.Buffer
	if err := r.Snapshot().WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", one.String(), two.String())
	}

	s := r.Snapshot()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name >= s.Counters[i].Name {
			t.Errorf("counters not sorted: %q before %q", s.Counters[i-1].Name, s.Counters[i].Name)
		}
	}
	for i := 1; i < len(s.Histograms); i++ {
		if s.Histograms[i-1].Name >= s.Histograms[i].Name {
			t.Errorf("histograms not sorted: %q before %q", s.Histograms[i-1].Name, s.Histograms[i].Name)
		}
	}
	if v, ok := s.Counter("a/first"); !ok || v != 1 {
		t.Errorf("Counter(a/first) = %d, %v; want 1, true", v, ok)
	}
	if g, ok := s.Gauge("m/depth"); !ok || g.Value != 7 || g.Max != 7 {
		t.Errorf("Gauge(m/depth) = %+v, %v; want value 7 max 7", g, ok)
	}
	if h, ok := s.Histogram("lat/a"); !ok || h.Count != 1 {
		t.Errorf("Histogram(lat/a) = %+v, %v; want count 1", h, ok)
	}
}

// TestConcurrentRecording hammers one registry from many goroutines; the
// final totals must be exact. Run under -race this also proves the
// ownership story (atomics on metrics, mutex on the maps).
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Gauge("g").Add(-1)
				r.Histogram("h", UnitBuckets).Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := r.Gauge("g").Max(); got < 1 || got > workers {
		t.Errorf("gauge max = %d, want within [1, %d]", got, workers)
	}
	if got := r.Histogram("h", UnitBuckets).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestCounterMonotonic: negative deltas are ignored.
func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5 (negative add must be ignored)", c.Value())
	}
}

// TestNilHooks: every Hooks method must be a safe no-op on a nil receiver —
// that is the disabled-observer contract the hot path relies on.
func TestNilHooks(t *testing.T) {
	var h *Hooks
	if h.Active() {
		t.Error("nil hooks report Active")
	}
	start := h.SpanStart(StageIngest)
	if !start.IsZero() {
		t.Error("nil SpanStart read the clock")
	}
	h.SpanEnd(StageIngest, start)
	h.Count(MIngestFiles, 1)
	h.Observe(MDialectScore, 0.5, UnitBuckets)
	h.GaugeAdd(MPoolBusyWorkers, 1)
	h.GaugeSet(MPoolQueueDepth, 3)
	if !h.Now().IsZero() {
		t.Error("nil Now read the clock")
	}
	if h.Since(time.Time{}) != 0 {
		t.Error("nil Since returned nonzero")
	}
}

// TestHooksRecording: an active Hooks records spans, counters, and events
// into its registry and fires the callbacks.
func TestHooksRecording(t *testing.T) {
	r := NewRegistry()
	var events []string
	var spans []Stage
	h := &Hooks{
		Registry:    r,
		OnSpanStart: func(s Stage) { spans = append(spans, s) },
		OnSpanEnd:   func(s Stage, d time.Duration) { spans = append(spans, s) },
		OnEvent:     func(name string, delta int64) { events = append(events, name) },
	}
	start := h.SpanStart(StageLineFeatures)
	h.SpanEnd(StageLineFeatures, start)
	h.Count(MIngestFiles, 2)

	s := r.Snapshot()
	if v, ok := s.Counter(MIngestFiles); !ok || v != 2 {
		t.Errorf("counter = %d, %v; want 2, true", v, ok)
	}
	if hv, ok := s.Histogram(StageLineFeatures.MetricName()); !ok || hv.Count != 1 {
		t.Errorf("span histogram = %+v, %v; want one observation", hv, ok)
	}
	if len(spans) != 2 || spans[0] != StageLineFeatures || spans[1] != StageLineFeatures {
		t.Errorf("span callbacks = %v", spans)
	}
	if len(events) != 1 || events[0] != MIngestFiles {
		t.Errorf("event callbacks = %v", events)
	}
}

// TestStageMetricNames: every declared stage has a pre-built metric name
// (the default concatenation is only for ad-hoc stages).
func TestStageMetricNames(t *testing.T) {
	for _, s := range []Stage{
		StageIngest, StageDialect, StageLineFeatures, StageLineProbs,
		StageCellFeatures, StageCellClassify, StageColumnProbs,
		StageAnnotateFile, StageBatch,
	} {
		want := "stage/" + string(s) + "_seconds"
		if got := s.MetricName(); got != want {
			t.Errorf("Stage(%s).MetricName() = %q, want %q", s, got, want)
		}
	}
}

// TestServeDebug boots the opt-in diagnostics server on an ephemeral port
// and checks the three endpoint families respond.
func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter(MIngestFiles).Add(3)
	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/debug/obs")), &snap); err != nil {
		t.Fatalf("/debug/obs is not snapshot JSON: %v", err)
	}
	if v, ok := snap.Counter(MIngestFiles); !ok || v != 3 {
		t.Errorf("/debug/obs counter = %d, %v; want 3", v, ok)
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, `"strudel"`) {
		t.Error("/debug/vars does not include the published strudel snapshot")
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "profile") {
		t.Error("/debug/pprof/ index looks wrong")
	}
	if err := ServeDebugNilRegistry(); err == nil {
		t.Error("ServeDebug accepted a nil registry")
	}
}

// ServeDebugNilRegistry isolates the nil-registry error path.
func ServeDebugNilRegistry() error {
	_, err := ServeDebug("127.0.0.1:0", nil)
	return err
}

package obs

import "time"

// A Stage names one instrumented phase of the annotation pipeline, in the
// order the paper defines them: ingest and dialect detection prepare the
// table, then line features → Strudel^L probabilities → cell features →
// cell classification produce the annotation. Composite stages
// (annotate_file, batch) wrap the others, so their spans nest.
type Stage string

const (
	// StageIngest covers ingest.Normalize: decoding, repair, guards.
	StageIngest Stage = "ingest"
	// StageDialect covers dialect detection over the normalized text.
	StageDialect Stage = "dialect_detect"
	// StageLineFeatures covers the Table 1 line feature extraction.
	StageLineFeatures Stage = "line_features"
	// StageLineProbs covers the Strudel^L forest probability batch.
	StageLineProbs Stage = "line_probs"
	// StageCellFeatures covers the Table 2 cell feature extraction.
	StageCellFeatures Stage = "cell_features"
	// StageCellClassify covers cell classification (includes the nested
	// cell-feature extraction on a cold artifact).
	StageCellClassify Stage = "cell_classify"
	// StageColumnProbs covers the column-probability extension.
	StageColumnProbs Stage = "column_probs"
	// StageAnnotateFile covers one file's end-to-end annotation.
	StageAnnotateFile Stage = "annotate_file"
	// StageBatch covers one whole AnnotateAll batch.
	StageBatch Stage = "batch"
	// StageStream covers one end-to-end streaming annotation.
	StageStream Stage = "stream_annotate"
	// StageStreamWindow covers classifying one sliding window.
	StageStreamWindow Stage = "stream_window"
	// StageStreamFill covers filling one window's lookahead from the input
	// — the lookahead-stall histogram: time annotation spent waiting on
	// ingest rather than classifying.
	StageStreamFill Stage = "stream_fill"
	// StageServeRequest covers one HTTP annotation request end to end:
	// admission wait, annotation, and response encoding.
	StageServeRequest Stage = "serve_request"
)

// MetricName returns the latency-histogram name a stage records under.
// The common stages return pre-built constants so span bookkeeping does not
// allocate on the hot path.
func (s Stage) MetricName() string {
	switch s {
	case StageIngest:
		return "stage/ingest_seconds"
	case StageDialect:
		return "stage/dialect_detect_seconds"
	case StageLineFeatures:
		return "stage/line_features_seconds"
	case StageLineProbs:
		return "stage/line_probs_seconds"
	case StageCellFeatures:
		return "stage/cell_features_seconds"
	case StageCellClassify:
		return "stage/cell_classify_seconds"
	case StageColumnProbs:
		return "stage/column_probs_seconds"
	case StageAnnotateFile:
		return "stage/annotate_file_seconds"
	case StageBatch:
		return "stage/batch_seconds"
	case StageStream:
		return "stage/stream_annotate_seconds"
	case StageStreamWindow:
		return "stage/stream_window_seconds"
	case StageStreamFill:
		return "stage/stream_fill_seconds"
	case StageServeRequest:
		return "stage/serve_request_seconds"
	}
	return "stage/" + string(s) + "_seconds"
}

// Metric names recorded by the instrumented layers. Dynamic families
// (per-guard, per-encoding) are built with GuardMetric and EncodingMetric.
const (
	MIngestFiles    = "ingest/files"    // normalization attempts
	MIngestBytesIn  = "ingest/bytes_in" // raw bytes entering Normalize
	MIngestRejected = "ingest/rejected" // files refused with a typed error
	MIngestRepaired = "ingest/repaired" // files that needed any repair

	MDialectDetections = "dialect/detections" // detection runs
	MDialectFallbacks  = "dialect/fallbacks"  // confidence floor fired
	MDialectForced     = "dialect/forced"     // detection skipped (ForceDialect)
	MDialectScore      = "dialect/score"      // winner score histogram (UnitBuckets)

	MPoolItems             = "pool/items"              // work items dispatched
	MPoolQueueDepth        = "pool/queue_depth"        // items not yet dispatched
	MPoolBusyWorkers       = "pool/busy_workers"       // workers currently in fn
	MPoolWorkerUtilization = "pool/worker_utilization" // busy/wall per worker (UnitBuckets)

	MBatchBatches        = "batch/batches"         // AnnotateAll* calls
	MBatchFiles          = "batch/files"           // files entering a batch
	MBatchFilesOK        = "batch/files_ok"        // clean annotations
	MBatchFilesFailed    = "batch/files_failed"    // non-timeout, non-panic errors
	MBatchFilesTimeout   = "batch/files_timeout"   // per-file deadline exceeded
	MBatchFilesPanic     = "batch/files_panic"     // recovered panics
	MBatchFilesCancelled = "batch/files_cancelled" // batch cancelled before dispatch

	MServeRequests   = "serve/requests"    // annotation requests received
	MServeAccepted   = "serve/accepted"    // requests admitted to the queue
	MServeShed       = "serve/shed"        // requests refused with 429 (queue full)
	MServeCoalesced  = "serve/coalesced"   // requests served by another request's work
	MServeTimeout    = "serve/timeout"     // requests that hit their deadline (504)
	MServePanic      = "serve/panic"       // recovered per-request panics (500)
	MServeCancelled  = "serve/cancelled"   // requests whose client went away mid-flight
	MServeDrained    = "serve/drained"     // requests refused because the server is draining (503)
	MServeQueueDepth = "serve/queue_depth" // gauge: requests admitted but not yet running
	MServeInflight   = "serve/inflight"    // gauge: requests currently annotating

	MStreamFiles      = "stream/files"        // streaming annotations started
	MStreamLines      = "stream/lines"        // line annotations emitted
	MStreamWindows    = "stream/windows"      // sliding windows classified
	MStreamRowsFilled = "stream/rows_filled"  // rows entering the window buffer
	MStreamRowsEvict  = "stream/rows_evicted" // rows released after emission
	MStreamBufferRows = "stream/buffer_rows"  // gauge: buffered rows (high-water = peak)
)

// GuardMetric returns the counter name for one ingest guard or repair (the
// Provenance guard names, e.g. "latin1-fallback", "max-lines").
func GuardMetric(guard string) string { return "ingest/guard/" + guard }

// EncodingMetric returns the counter name for one detected source encoding.
func EncodingMetric(enc string) string { return "ingest/encoding/" + enc }

// now is the observability layer's single wall-clock read. Timing metrics
// never feed back into annotation output, so the read is safe to the
// byte-identical-output contract; keeping it in one place keeps that
// argument auditable.
func now() time.Time {
	//lint:ignore nondeterminism observability timestamps measure stages; they never influence annotation output
	return time.Now()
}

// Hooks carries the observer through the pipeline. It is passed by pointer
// and every method is safe (and free) on a nil receiver, so un-instrumented
// call paths cost one nil check per site. Carry a Hooks value through the
// options of the public API (LoadOptions.Obs, BatchOptions.Obs) rather than
// any global.
//
// A Hooks with only Registry set records metrics; the On* callbacks add
// tracing-style notifications for callers that want them. Callbacks must be
// safe for concurrent use: batch annotation invokes them from worker
// goroutines.
type Hooks struct {
	// Registry receives counters, gauges, and histograms. Nil disables
	// metric recording (callbacks still fire).
	Registry *Registry

	// OnSpanStart fires when an instrumented stage begins.
	OnSpanStart func(stage Stage)
	// OnSpanEnd fires when an instrumented stage finishes.
	OnSpanEnd func(stage Stage, d time.Duration)
	// OnEvent fires for every named counter increment.
	OnEvent func(name string, delta int64)
}

// NewHooks returns hooks that record into r.
func NewHooks(r *Registry) *Hooks { return &Hooks{Registry: r} }

// Active reports whether the receiver observes anything (non-nil).
func (h *Hooks) Active() bool { return h != nil }

// Now returns the current time for span bookkeeping, or the zero time on a
// nil receiver (so disabled observers never read the clock).
func (h *Hooks) Now() time.Time {
	if h == nil {
		return time.Time{}
	}
	return now()
}

// Since returns the time elapsed since start, or zero on a nil receiver.
func (h *Hooks) Since(start time.Time) time.Duration {
	if h == nil || start.IsZero() {
		return 0
	}
	return now().Sub(start)
}

// SpanStart marks the beginning of a stage and returns the start time to
// hand back to SpanEnd. On a nil receiver it returns the zero time and
// reads no clock.
func (h *Hooks) SpanStart(stage Stage) time.Time {
	if h == nil {
		return time.Time{}
	}
	if h.OnSpanStart != nil {
		h.OnSpanStart(stage)
	}
	return now()
}

// SpanEnd closes a stage span opened by SpanStart, recording its duration
// into the stage's latency histogram and firing OnSpanEnd. A zero start
// (from a nil-receiver SpanStart) is ignored.
func (h *Hooks) SpanEnd(stage Stage, start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	d := now().Sub(start)
	if h.OnSpanEnd != nil {
		h.OnSpanEnd(stage, d)
	}
	if h.Registry != nil {
		h.Registry.Histogram(stage.MetricName(), DefaultLatencyBuckets).Observe(d.Seconds())
	}
}

// Count adds delta to the named counter and fires OnEvent.
func (h *Hooks) Count(name string, delta int64) {
	if h == nil {
		return
	}
	if h.OnEvent != nil {
		h.OnEvent(name, delta)
	}
	if h.Registry != nil {
		h.Registry.Counter(name).Add(delta)
	}
}

// Observe records one value into the named histogram, creating it with the
// given bounds on first use.
func (h *Hooks) Observe(name string, v float64, bounds []float64) {
	if h == nil || h.Registry == nil {
		return
	}
	h.Registry.Histogram(name, bounds).Observe(v)
}

// GaugeAdd moves the named gauge by delta.
func (h *Hooks) GaugeAdd(name string, delta int64) {
	if h == nil || h.Registry == nil {
		return
	}
	h.Registry.Gauge(name).Add(delta)
}

// GaugeSet sets the named gauge.
func (h *Hooks) GaugeSet(name string, v int64) {
	if h == nil || h.Registry == nil {
		return
	}
	h.Registry.Gauge(name).Set(v)
}

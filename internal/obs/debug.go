package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// A DebugServer is the opt-in diagnostics endpoint started by ServeDebug.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the address the server is listening on (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// expvarRegistry is the registry exposed through the process-global expvar
// namespace. expvar.Publish is once-per-name for the process lifetime, so
// the published Func indirects through this pointer: the most recent
// ServeDebug registry wins (one registry per process is the expected use).
var (
	expvarOnce     sync.Once
	expvarRegistry atomic.Pointer[Registry]
)

func publishExpvar(r *Registry) {
	expvarRegistry.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("strudel", expvar.Func(func() any {
			if reg := expvarRegistry.Load(); reg != nil {
				return reg.Snapshot()
			}
			return nil
		}))
	})
}

// RegisterDebug mounts the diagnostics endpoints on mux:
//
//	/debug/obs    the registry snapshot as deterministic JSON
//	/debug/vars   the expvar namespace (includes the snapshot under "strudel")
//	/debug/pprof  the standard net/http/pprof profile endpoints
//
// ServeDebug uses it for the standalone debug server; the serve daemon
// mounts the same endpoints on its own private mux.
func RegisterDebug(mux *http.ServeMux, r *Registry) {
	publishExpvar(r)
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w) // best-effort: a dropped client connection loses nothing
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeDebug starts an HTTP diagnostics server on addr exposing the
// RegisterDebug endpoints on its own mux — nothing is mounted on
// http.DefaultServeMux, so the endpoints exist only when a caller opts in.
// The server runs until Close.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	if r == nil {
		return nil, fmt.Errorf("obs: ServeDebug needs a non-nil registry")
	}
	mux := http.NewServeMux()
	RegisterDebug(mux, r)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }() // returns http.ErrServerClosed on Close
	return &DebugServer{ln: ln, srv: srv}, nil
}

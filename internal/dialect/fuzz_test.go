package dialect

import (
	"testing"
	"unicode/utf8"
)

// FuzzSplit checks that arbitrary input never panics the parser and that
// Join∘Split is width-stable for delimiter-free content.
func FuzzSplit(f *testing.F) {
	f.Add("a,b,c\n1,2,3\n")
	f.Add(`"quoted,cell",x`)
	f.Add("\ufeffbom,line\r\nnext,row")
	f.Add(`"unterminated`)
	f.Add("\"say \"\"hi\"\"\",x\n")
	f.Add(";;;\n|||")
	f.Fuzz(func(t *testing.T, text string) {
		if !utf8.ValidString(text) {
			t.Skip()
		}
		rows := Split(text, Default)
		// Rows must round-trip through Join/Split with identical shape.
		again := Split(Join(rows, Default), Default)
		if len(again) != len(rows) {
			t.Fatalf("round trip changed row count: %d -> %d", len(rows), len(again))
		}
		for r := range rows {
			if len(again[r]) != len(rows[r]) {
				t.Fatalf("row %d width changed: %d -> %d", r, len(rows[r]), len(again[r]))
			}
			for c := range rows[r] {
				if again[r][c] != rows[r][c] {
					t.Fatalf("cell (%d,%d) changed: %q -> %q", r, c, rows[r][c], again[r][c])
				}
			}
		}
	})
}

package dialect

import "strings"

// Splitter is the incremental form of SplitLimit: push text in any number
// of Write calls, pull completed rows with Next, and Flush at end of input.
// The concatenation of everything written, processed by one Splitter, yields
// exactly the rows SplitLimit returns for the same text — SplitLimit itself
// is implemented over a Splitter, so there is a single tokenizing state
// machine to test. Writes must not split a rune across calls (callers feed
// whole normalized lines, so this holds by construction).
//
// The zero value is not usable; construct with NewSplitter.
type Splitter struct {
	d        Dialect
	maxCells int

	row      []string
	cell     strings.Builder
	inQuotes bool

	// One rune of lookahead: the escape and doubled-quote rules act on the
	// pair (current, next), and the final rune's behavior changes when no
	// next rune exists (an escape character ending the text is literal).
	pend    rune
	pendSet bool

	first   bool // leading BOM strip still pending
	dropped int

	rows [][]string
	head int
}

// NewSplitter returns a Splitter tokenizing under dialect d with rows capped
// at maxCells cells (0 = unlimited), the same guard SplitLimit applies.
func NewSplitter(d Dialect, maxCells int) *Splitter {
	return &Splitter{d: d, maxCells: maxCells, first: true}
}

// Write feeds more text into the tokenizer. Completed rows accumulate until
// drained with Next.
func (s *Splitter) Write(text string) {
	if s.first && text != "" {
		// SplitLimit strips one leading BOM from the whole text; here that
		// is the front of the first non-empty write.
		text = strings.TrimPrefix(text, "\ufeff")
		s.first = false
	}
	for _, c := range text {
		if !s.pendSet {
			s.pend, s.pendSet = c, true
			continue
		}
		if s.step(s.pend, c, true) {
			s.pendSet = false // the pending rune consumed c as its lookahead
		} else {
			s.pend = c
		}
	}
}

// Flush ends the input: the held rune is processed with no lookahead and a
// trailing unterminated row, if any, is completed. Mirrors SplitLimit's
// final-flush rule (emit iff the last row has any content).
func (s *Splitter) Flush() {
	if s.pendSet {
		s.pendSet = false
		s.step(s.pend, 0, false)
	}
	if s.cell.Len() > 0 || len(s.row) > 0 {
		s.flushRow()
	}
}

// Next pops the oldest completed row, reporting false when none is buffered.
func (s *Splitter) Next() ([]string, bool) {
	if s.head >= len(s.rows) {
		return nil, false
	}
	row := s.rows[s.head]
	s.head++
	if s.head == len(s.rows) {
		s.rows = s.rows[:0]
		s.head = 0
	}
	return row, true
}

// Dropped reports how many cells beyond the per-row cap were discarded.
func (s *Splitter) Dropped() int { return s.dropped }

// step processes one rune with optional lookahead, returning whether the
// lookahead rune was consumed. The case order is exactly SplitLimit's.
func (s *Splitter) step(c, next rune, hasNext bool) bool {
	d := s.d
	switch {
	case d.Escape != 0 && c == d.Escape && s.inQuotes && hasNext:
		s.cell.WriteRune(next)
		return true
	case d.Quote != 0 && c == d.Quote:
		if s.inQuotes {
			// Doubled quote inside a quoted field is a literal quote.
			if d.Escape == 0 && hasNext && next == d.Quote {
				s.cell.WriteRune(d.Quote)
				return true
			}
			s.inQuotes = false
		} else if s.cell.Len() == 0 {
			s.inQuotes = true
		} else {
			s.cell.WriteRune(c)
		}
	case c == d.Delimiter && !s.inQuotes:
		s.flushCell()
	case c == '\r' && !s.inQuotes:
		// swallow; \n handles the row break
	case c == '\n' && !s.inQuotes:
		s.flushRow()
	default:
		s.cell.WriteRune(c)
	}
	return false
}

func (s *Splitter) flushCell() {
	if s.maxCells > 0 && len(s.row) >= s.maxCells {
		s.dropped++
	} else {
		s.row = append(s.row, s.cell.String())
	}
	s.cell.Reset()
}

func (s *Splitter) flushRow() {
	s.flushCell()
	s.rows = append(s.rows, s.row)
	s.row = nil
}

// Package dialect detects and applies CSV dialects.
//
// Verbose CSV files rarely announce their dialect (delimiter, quote
// character, escape character). The paper preprocesses every input with the
// data-consistency approach of van den Burg et al. (2019): enumerate
// candidate dialects, parse the file under each, and score the result by the
// product of a pattern score (how regular the row-pattern abstraction is)
// and a type score (what fraction of resulting cells have a recognizable
// data type). This package re-implements that scheme and provides a parser
// that turns raw text into rows under a chosen dialect.
package dialect

import (
	"bufio"
	"errors"
	"io"
	"math"
	"sort"
	"strings"

	"strudel/internal/obs"
	"strudel/internal/types"
)

// Dialect describes how a delimited text file is tokenized.
type Dialect struct {
	// Delimiter separates cells within a line.
	Delimiter rune
	// Quote is the quoting character, or 0 for no quoting.
	Quote rune
	// Escape is the escape character inside quoted fields, or 0 when quotes
	// are escaped by doubling (the RFC 4180 convention).
	Escape rune
}

// Default is the RFC 4180 dialect: comma-delimited, double-quoted,
// quote-doubling escapes.
var Default = Dialect{Delimiter: ',', Quote: '"'}

// String renders the dialect compactly, e.g. `delim=',' quote='"'`.
func (d Dialect) String() string {
	var b strings.Builder
	b.WriteString("delim=")
	writeRune(&b, d.Delimiter)
	b.WriteString(" quote=")
	writeRune(&b, d.Quote)
	if d.Escape != 0 {
		b.WriteString(" escape=")
		writeRune(&b, d.Escape)
	}
	return b.String()
}

func writeRune(b *strings.Builder, r rune) {
	if r == 0 {
		b.WriteString("none")
		return
	}
	b.WriteByte('\'')
	switch r {
	case '\t':
		b.WriteString(`\t`)
	default:
		b.WriteRune(r)
	}
	b.WriteByte('\'')
}

// candidateDelimiters are the delimiters enumerated during detection,
// following the potential-dialect construction of van den Burg et al.
var candidateDelimiters = []rune{',', ';', '\t', '|', ':', ' ', '#', '~', '^'}

// candidateQuotes are the quote characters enumerated during detection.
var candidateQuotes = []rune{'"', '\'', 0}

// Detection is the outcome of dialect detection: the winning dialect plus
// the evidence behind it, so callers can apply a confidence floor instead
// of trusting a garbage winner.
type Detection struct {
	// Dialect is the highest-scoring candidate.
	Dialect Dialect
	// Score is the winner's consistency score Q(d) in [0, 1].
	Score float64
	// Margin is the winner's lead over the best other delimiter (0 when
	// only one candidate was enumerable).
	Margin float64
}

// Detect parses the text under every candidate dialect and returns the one
// with the highest consistency score. It returns an error for empty input.
func Detect(text string) (Dialect, error) {
	det, err := DetectBest(text)
	return det.Dialect, err
}

// DetectBestObs is DetectBest under observation: the detection is timed as
// obs.StageDialect, counted under obs.MDialectDetections, and the winning
// score lands in the obs.MDialectScore histogram. A nil h is free; the
// detection result itself is identical to DetectBest.
func DetectBestObs(text string, h *obs.Hooks) (Detection, error) {
	start := h.SpanStart(obs.StageDialect)
	det, err := DetectBest(text)
	h.SpanEnd(obs.StageDialect, start)
	if h.Active() && err == nil {
		h.Count(obs.MDialectDetections, 1)
		h.Observe(obs.MDialectScore, det.Score, obs.UnitBuckets)
	}
	return det, err
}

// DetectBest is Detect with the winner's score and margin attached. The
// margin compares against the best candidate using a different delimiter,
// since quote-only variants of the winner are near-duplicates.
func DetectBest(text string) (Detection, error) {
	if strings.TrimSpace(text) == "" {
		return Detection{}, errors.New("dialect: empty input")
	}
	best, bestScore := Default, math.Inf(-1)
	// Best score per delimiter, for the margin computation.
	perDelim := make([]float64, 0, len(candidateDelimiters))
	for _, delim := range candidateDelimiters {
		if !strings.ContainsRune(text, delim) && delim != ',' {
			continue // a delimiter that never occurs cannot win
		}
		delimBest := math.Inf(-1)
		for _, quote := range candidateQuotes {
			d := Dialect{Delimiter: delim, Quote: quote}
			score := ConsistencyScore(text, d)
			if score > delimBest {
				delimBest = score
			}
			if score > bestScore {
				best, bestScore = d, score
			}
		}
		perDelim = append(perDelim, delimBest)
	}
	margin := 0.0
	if len(perDelim) > 1 {
		runnerUp := math.Inf(-1)
		for _, s := range perDelim {
			if s < bestScore && s > runnerUp {
				runnerUp = s
			}
		}
		if !math.IsInf(runnerUp, -1) {
			margin = bestScore - runnerUp
		}
	}
	return Detection{Dialect: best, Score: bestScore, Margin: margin}, nil
}

// ConsistencyScore computes the data-consistency measure Q(d) = P(d) * T(d)
// for parsing text under dialect d, where P is the pattern score and T is
// the type score.
func ConsistencyScore(text string, d Dialect) float64 {
	rows := Split(text, d)
	return patternScore(rows) * typeScore(rows)
}

// patternScore measures row-pattern regularity. Each row is abstracted to
// its cell count; the score rewards patterns that are frequent and wide:
//
//	P = sum over distinct patterns k of N_k/N * (L_k - 1) / L_k'
//
// where N_k is how many rows have pattern k, L_k the number of cells in the
// pattern, and the (L_k - 1) term penalizes the trivial single-cell pattern,
// following eq. (2) of van den Burg et al. (simplified to cell counts, since
// verbose files have no per-cell pattern variation after splitting).
func patternScore(rows [][]string) float64 {
	if len(rows) == 0 {
		return 0
	}
	counts := map[int]int{}
	widths := make([]int, 0, 8)
	for _, row := range rows {
		if counts[len(row)] == 0 {
			widths = append(widths, len(row))
		}
		counts[len(row)]++
	}
	// Accumulate in sorted width order: float summation order must not
	// depend on map iteration, or scores (and tie-breaks between dialect
	// candidates) drift by an ulp between runs.
	sort.Ints(widths)
	n := float64(len(rows))
	score := 0.0
	for _, width := range widths {
		c := counts[width]
		if width == 0 {
			continue
		}
		lk := float64(width)
		alpha := (lk - 1) / lk
		if width == 1 {
			alpha = 0.5 / lk // small non-zero weight for single-cell rows
		}
		score += float64(c) / n * alpha * float64(c) / n
	}
	return score
}

// typeScore is the fraction of non-empty cells whose inferred type is not
// plain free text, smoothed so that an all-string parse still gets a small
// positive score (eq. (3) of van den Burg et al. uses type recognition the
// same way).
func typeScore(rows [][]string) float64 {
	total, typed := 0, 0
	for _, row := range rows {
		for _, cell := range row {
			v := strings.TrimSpace(cell)
			if v == "" {
				continue
			}
			total++
			switch types.Infer(v) {
			case types.Int, types.Float, types.Date:
				typed++
			default:
				if looksClean(v) {
					typed++ // short clean tokens count as well-typed
				}
			}
		}
	}
	if total == 0 {
		return 1e-3
	}
	return math.Max(float64(typed)/float64(total), 1e-3)
}

// looksClean reports whether a string cell looks like a well-formed field
// (short, no stray delimiters or unbalanced quotes) rather than a fragment
// of an incorrectly split sentence.
func looksClean(v string) bool {
	if len(v) > 64 {
		return false
	}
	if strings.Count(v, `"`)%2 != 0 || strings.Count(v, `'`)%2 != 0 {
		return false
	}
	// A field still containing one of the rarer candidate delimiters is
	// probably an under-split fragment, not a clean value.
	if strings.ContainsAny(v, ";|\t^~") {
		return false
	}
	return strings.Count(v, " ") <= 4
}

// Split parses text into rows of cells under dialect d. Lines are separated
// by \n (with \r\n tolerated); newlines inside quoted fields are preserved.
// A leading UTF-8 byte-order mark is dropped, as spreadsheet exports often
// carry one.
func Split(text string, d Dialect) [][]string {
	rows, _ := SplitLimit(text, d, 0)
	return rows
}

// SplitLimit is Split with a resource guard: rows are capped at maxCells
// cells (0 = unlimited); the content of cells beyond the cap is discarded
// and counted in dropped. It exists so an adversarial single-line file
// cannot allocate an unbounded cell slice.
//
// It is a thin wrapper over the incremental Splitter: whole-file and
// streaming parsing share one tokenizing state machine by construction.
func SplitLimit(text string, d Dialect, maxCells int) (rows [][]string, dropped int) {
	sp := NewSplitter(d, maxCells)
	sp.Write(text)
	sp.Flush()
	return sp.rows, sp.dropped
}

// Join renders rows back to text under dialect d, quoting cells that contain
// the delimiter, the quote character, or a newline. It is the inverse of
// Split for round-trippable content.
func Join(rows [][]string, d Dialect) string {
	var b strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteRune(d.Delimiter)
			}
			writeCell(&b, cell, d)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func writeCell(b *strings.Builder, cell string, d Dialect) {
	needsQuote := strings.ContainsRune(cell, d.Delimiter) ||
		strings.ContainsAny(cell, "\r\n") ||
		(d.Quote != 0 && strings.ContainsRune(cell, d.Quote)) ||
		// A leading BOM would be eaten by Split's BOM stripping when the
		// cell opens the file; quoting protects it.
		strings.HasPrefix(cell, "\ufeff")
	if !needsQuote || d.Quote == 0 {
		b.WriteString(cell)
		return
	}
	b.WriteRune(d.Quote)
	for _, r := range cell {
		if r == d.Quote {
			if d.Escape != 0 {
				b.WriteRune(d.Escape)
			} else {
				b.WriteRune(d.Quote)
			}
		}
		b.WriteRune(r)
	}
	b.WriteRune(d.Quote)
}

// ReadAll reads everything from r and splits it under dialect d.
func ReadAll(r io.Reader, d Dialect) ([][]string, error) {
	br := bufio.NewReader(r)
	var b strings.Builder
	if _, err := io.Copy(&b, br); err != nil {
		return nil, err
	}
	return Split(b.String(), d), nil
}

package dialect

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitBasic(t *testing.T) {
	rows := Split("a,b,c\n1,2,3\n", Default)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0][1] != "b" || rows[1][2] != "3" {
		t.Errorf("unexpected cells: %v", rows)
	}
}

func TestSplitQuoted(t *testing.T) {
	rows := Split(`"a,b",c`+"\n", Default)
	if len(rows) != 1 || len(rows[0]) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "a,b" {
		t.Errorf("quoted cell = %q, want %q", rows[0][0], "a,b")
	}
}

func TestSplitDoubledQuote(t *testing.T) {
	rows := Split(`"say ""hi""",x`+"\n", Default)
	if rows[0][0] != `say "hi"` {
		t.Errorf("cell = %q", rows[0][0])
	}
}

func TestSplitEscapeChar(t *testing.T) {
	d := Dialect{Delimiter: ',', Quote: '"', Escape: '\\'}
	rows := Split(`"a\"b",c`+"\n", d)
	if rows[0][0] != `a"b` {
		t.Errorf("cell = %q", rows[0][0])
	}
}

func TestSplitNewlineInQuotes(t *testing.T) {
	rows := Split("\"line1\nline2\",x\n", Default)
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if rows[0][0] != "line1\nline2" {
		t.Errorf("cell = %q", rows[0][0])
	}
}

func TestSplitCRLF(t *testing.T) {
	rows := Split("a,b\r\nc,d\r\n", Default)
	if len(rows) != 2 || rows[0][1] != "b" || rows[1][0] != "c" {
		t.Errorf("rows = %v", rows)
	}
}

func TestSplitNoTrailingNewline(t *testing.T) {
	rows := Split("a,b\nc,d", Default)
	if len(rows) != 2 || rows[1][1] != "d" {
		t.Errorf("rows = %v", rows)
	}
}

func TestSplitSemicolon(t *testing.T) {
	d := Dialect{Delimiter: ';', Quote: '"'}
	rows := Split("a;b\n1,5;2,5\n", d)
	if rows[1][0] != "1,5" {
		t.Errorf("cell = %q, want 1,5", rows[1][0])
	}
}

func TestJoinSplitRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b c", "1,2", `q"q`, "", "x\ny", "42"}
		nrows := rng.Intn(5) + 1
		rows := make([][]string, nrows)
		for r := range rows {
			ncols := rng.Intn(4) + 1
			rows[r] = make([]string, ncols)
			for c := range rows[r] {
				rows[r][c] = alphabet[rng.Intn(len(alphabet))]
			}
		}
		got := Split(Join(rows, Default), Default)
		if len(got) != len(rows) {
			return false
		}
		for r := range rows {
			if len(got[r]) != len(rows[r]) {
				return false
			}
			for c := range rows[r] {
				if got[r][c] != rows[r][c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDetectComma(t *testing.T) {
	text := "name,year,count\nalpha,2001,5\nbeta,2002,7\ngamma,2003,9\n"
	d, err := Detect(text)
	if err != nil {
		t.Fatal(err)
	}
	if d.Delimiter != ',' {
		t.Errorf("delimiter = %q, want ','", d.Delimiter)
	}
}

func TestDetectSemicolonWithDecimalCommas(t *testing.T) {
	text := "name;v1;v2\na;1,5;2,5\nb;3,5;4,5\nc;5,5;6,5\nd;7,5;8,5\n"
	d, err := Detect(text)
	if err != nil {
		t.Fatal(err)
	}
	if d.Delimiter != ';' {
		t.Errorf("delimiter = %q, want ';'", d.Delimiter)
	}
}

func TestDetectTab(t *testing.T) {
	var b strings.Builder
	b.WriteString("id\tvalue\tdate\n")
	for i := 0; i < 8; i++ {
		b.WriteString("7\t8.5\t2020-01-02\n")
	}
	d, err := Detect(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if d.Delimiter != '\t' {
		t.Errorf("delimiter = %q, want tab", d.Delimiter)
	}
}

func TestDetectPipe(t *testing.T) {
	text := "a|b|c\n1|2|3\n4|5|6\n7|8|9\n"
	d, err := Detect(text)
	if err != nil {
		t.Fatal(err)
	}
	if d.Delimiter != '|' {
		t.Errorf("delimiter = %q, want '|'", d.Delimiter)
	}
}

func TestDetectEmptyInput(t *testing.T) {
	if _, err := Detect("   \n "); err == nil {
		t.Error("Detect on blank input should fail")
	}
}

func TestDetectPrefersConsistentWidth(t *testing.T) {
	// Commas appear but only as prose; semicolons give a consistent grid.
	text := "title; note about a, b, and c\n1;2\n3;4\n5;6\n7;8\n9;10\n"
	d, err := Detect(text)
	if err != nil {
		t.Fatal(err)
	}
	if d.Delimiter != ';' {
		t.Errorf("delimiter = %q, want ';'", d.Delimiter)
	}
}

func TestConsistencyScoreOrdering(t *testing.T) {
	text := "a,b,c\n1,2,3\n4,5,6\n"
	good := ConsistencyScore(text, Default)
	bad := ConsistencyScore(text, Dialect{Delimiter: ';', Quote: '"'})
	if good <= bad {
		t.Errorf("score(comma)=%v should beat score(semicolon)=%v", good, bad)
	}
}

func TestDetectBestScoresAndMargin(t *testing.T) {
	det, err := DetectBest("a,b,c\n1,2,3\n4,5,6\n7,8,9\n")
	if err != nil {
		t.Fatal(err)
	}
	if det.Dialect.Delimiter != ',' {
		t.Errorf("delimiter = %q, want ','", det.Dialect.Delimiter)
	}
	if det.Score <= 0 || det.Score > 1 {
		t.Errorf("score = %v, want in (0, 1]", det.Score)
	}
	if det.Margin < 0 || det.Margin > det.Score {
		t.Errorf("margin = %v with score %v, want 0 ≤ margin ≤ score", det.Margin, det.Score)
	}
	// Detect must stay a thin wrapper over DetectBest.
	d, err := Detect("a,b,c\n1,2,3\n4,5,6\n7,8,9\n")
	if err != nil {
		t.Fatal(err)
	}
	if d != det.Dialect {
		t.Errorf("Detect = %v, DetectBest = %v", d, det.Dialect)
	}
}

func TestSplitLimitDropsExcessCells(t *testing.T) {
	rows, dropped := SplitLimit("a,b,c,d,e\n1,2\n", Default, 3)
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	if len(rows[0]) != 3 || rows[0][2] != "c" {
		t.Errorf("row 0 = %v, want first 3 cells kept", rows[0])
	}
	if len(rows[1]) != 2 {
		t.Errorf("row 1 = %v, want untouched", rows[1])
	}
	// Zero means unlimited and must match plain Split.
	unlimited, dropped := SplitLimit("a,b,c,d,e\n", Default, 0)
	if dropped != 0 || len(unlimited[0]) != 5 {
		t.Errorf("unlimited: rows=%v dropped=%d", unlimited, dropped)
	}
}

func TestReadAll(t *testing.T) {
	rows, err := ReadAll(strings.NewReader("x,y\n1,2\n"), Default)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][1] != "2" {
		t.Errorf("rows = %v", rows)
	}
}

func TestDialectString(t *testing.T) {
	s := Dialect{Delimiter: '\t', Quote: '"', Escape: '\\'}.String()
	if !strings.Contains(s, `\t`) || !strings.Contains(s, "escape") {
		t.Errorf("String() = %q", s)
	}
	s2 := Dialect{Delimiter: ','}.String()
	if !strings.Contains(s2, "none") {
		t.Errorf("String() = %q, want quote=none", s2)
	}
}

func TestSplitStripsBOM(t *testing.T) {
	rows := Split("\ufeffa,b\n1,2\n", Default)
	if rows[0][0] != "a" {
		t.Errorf("BOM not stripped: %q", rows[0][0])
	}
}

func TestDetectWithBOM(t *testing.T) {
	d, err := Detect("\ufeffx;y\n1;2\n3;4\n5;6\n")
	if err != nil {
		t.Fatal(err)
	}
	if d.Delimiter != ';' {
		t.Errorf("delimiter = %q, want ';'", d.Delimiter)
	}
}

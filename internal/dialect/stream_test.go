package dialect

import (
	"reflect"
	"strings"
	"testing"
)

// splitterCases covers every state-machine transition: quoting, doubled
// quotes, escapes (including an escape as the final rune, which is literal),
// embedded newlines, CR swallowing, BOM stripping, and the cell cap.
var splitterCases = []struct {
	name string
	text string
	d    Dialect
	max  int
}{
	{"plain", "a,b,c\n1,2,3\n", Default, 0},
	{"no-final-newline", "a,b\n1,2", Default, 0},
	{"quoted-delim", "\"a,b\",c\n", Default, 0},
	{"quoted-newline", "a,\"x\ny\",b\nn,o,p\n", Default, 0},
	{"doubled-quote", "\"he said \"\"hi\"\"\",b\n", Default, 0},
	{"unbalanced-quote", "a,\"open\nstill,inside\n", Default, 0},
	{"unbalanced-with-tail-nl", "a,\"open\nstill,inside", Default, 0},
	{"quote-mid-cell", "ab\"cd,e\n", Default, 0},
	{"empty-cells", ",,,\n,,\n", Default, 0},
	{"bom", "\ufeffa,b\n", Default, 0},
	{"bom-quoted", "\"\ufeff\",b\n", Default, 0},
	{"cr-swallow", "a,b\r\n1,2\r\n", Default, 0},
	{"cr-in-quotes", "\"a\r\nb\",c\n", Default, 0},
	{"escape", "\"a\\\"b\",c\n", Dialect{Delimiter: ',', Quote: '"', Escape: '\\'}, 0},
	{"escape-at-eof", "\"ab\\", Dialect{Delimiter: ',', Quote: '"', Escape: '\\'}, 0},
	{"escape-consumes-newline", "\"a\\\nb\",c\n", Dialect{Delimiter: ',', Quote: '"', Escape: '\\'}, 0},
	{"quote-at-eof", "a,\"b", Default, 0},
	{"semicolon", "x;y;z\n1;2;3\n", Dialect{Delimiter: ';', Quote: '"'}, 0},
	{"no-quote-dialect", "a,\"b\",c\n", Dialect{Delimiter: ','}, 0},
	{"cell-cap", "a,b,c,d,e,f\n1,2,3,4,5,6\n", Default, 3},
	{"cell-cap-quoted", "\"a\",\"b\",\"c\",\"d\"\n", Default, 2},
	{"multibyte", "α,β\n\"γ,δ\",ε\n", Default, 0},
	{"empty", "", Default, 0},
	{"lone-newline", "\n", Default, 0},
	{"single-quote-dialect", "'a,b',c\n", Dialect{Delimiter: ',', Quote: '\''}, 0},
}

// drain collects every completed row from the splitter.
func drain(sp *Splitter, into [][]string) [][]string {
	for {
		row, ok := sp.Next()
		if !ok {
			return into
		}
		into = append(into, row)
	}
}

func TestSplitterMatchesSplitLimit(t *testing.T) {
	for _, tc := range splitterCases {
		want, wantDropped := SplitLimit(tc.text, tc.d, tc.max)

		// Feed the same text in several chunkings: whole, rune-by-rune, and
		// line-by-line (the shape the streaming driver uses).
		chunkings := map[string][]string{
			"whole": {tc.text},
			"runes": splitRunes(tc.text),
			"lines": strings.SplitAfter(tc.text, "\n"),
		}
		for mode, chunks := range chunkings {
			sp := NewSplitter(tc.d, tc.max)
			var got [][]string
			for _, ch := range chunks {
				sp.Write(ch)
				got = drain(sp, got)
			}
			sp.Flush()
			got = drain(sp, got)
			if !sameRows(got, want) {
				t.Errorf("%s (%s): rows mismatch\n got  %q\n want %q", tc.name, mode, got, want)
			}
			if sp.Dropped() != wantDropped {
				t.Errorf("%s (%s): dropped %d, want %d", tc.name, mode, sp.Dropped(), wantDropped)
			}
		}
	}
}

func TestSplitterNextInterleaved(t *testing.T) {
	// One rune of lookahead means a row completes once the rune after its
	// newline is seen (or at Flush) — the final rune's meaning can depend
	// on what follows it.
	sp := NewSplitter(Default, 0)
	sp.Write("a,b\n")
	if _, ok := sp.Next(); ok {
		t.Fatal("row available before its lookahead rune arrived")
	}
	sp.Write("c,d\ne,f\n")
	if row, ok := sp.Next(); !ok || !reflect.DeepEqual(row, []string{"a", "b"}) {
		t.Fatalf("first row: got %q ok=%v", row, ok)
	}
	sp.Flush()
	got := drain(sp, nil)
	want := [][]string{{"c", "d"}, {"e", "f"}}
	if !sameRows(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func splitRunes(s string) []string {
	out := make([]string, 0, len(s))
	for _, r := range s {
		out = append(out, string(r))
	}
	return out
}

func sameRows(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

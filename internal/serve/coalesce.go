package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"strudel/internal/ingest"
)

// A cachedResult is one fully rendered response: status plus the encoded
// JSON body. Results are immutable after creation, so one value is safely
// shared between the coalesced requests and the LRU cache.
type cachedResult struct {
	status int
	body   []byte
}

// resultCache is a small LRU of rendered annotation responses keyed by
// content hash + option fingerprint. Only successful (200) results enter
// it; error responses are cheap to recompute and must re-observe the
// current queue state anyway.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *cachedResult
}

func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		capacity = 0
	}
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

func (c *resultCache) get(key string) (*cachedResult, bool) {
	if c.cap == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(key string, res *cachedResult) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results (tests and the readiness probe).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flight coalesces concurrent identical requests: the first caller for a
// key becomes the leader and runs fn; everyone else waits for the leader's
// result (bounded by their own context). A follower whose leader died of
// the leader's own cancellation — not the follower's — retries, becoming
// the new leader, so one impatient client never poisons the result for the
// patient ones.
type flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  *cachedResult
	err  error
}

func newFlight() *flight {
	return &flight{calls: make(map[string]*flightCall)}
}

// join returns the in-flight call for key, or registers a new one and
// reports the caller as its leader.
func (f *flight) join(key string) (*flightCall, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.calls[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	return c, true
}

// finish publishes the leader's result and wakes every follower.
func (f *flight) finish(key string, c *flightCall) {
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.done)
}

// do runs fn once per key among concurrent callers. The second return
// reports whether this caller shared another caller's work (the
// serve/coalesced counter).
func (f *flight) do(ctx context.Context, key string, fn func() (*cachedResult, error)) (*cachedResult, bool, error) {
	for {
		c, leader := f.join(key)
		if leader {
			c.res, c.err = fn()
			f.finish(key, c)
			return c.res, false, c.err
		}
		select {
		case <-c.done:
			if c.err != nil && isCancelErr(c.err) && ctx.Err() == nil {
				continue // the leader's client gave up, not ours: re-run
			}
			return c.res, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
}

// isCancelErr reports whether err is a cancellation or deadline of any
// flavor the pipeline produces.
func isCancelErr(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ingest.ErrCancelled)
}

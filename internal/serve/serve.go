// Package serve is the fault-tolerant HTTP annotation service: a
// robustness envelope around the strudel batch and streaming entry points
// that stays correct under overload, hostile inputs, and partial failure.
//
// The envelope, outside in:
//
//   - slow-client protection: header/read/write timeouts on the HTTP
//     server, and the ingest MaxBytes guard enforced while the body is
//     read, before anything is buffered beyond the cap;
//   - admission control: a bounded queue in front of a bounded worker
//     pool. When the queue is full the request is shed immediately with
//     429 + Retry-After — backpressure, never unbounded buffering;
//   - per-request deadlines: a server default, overridable per request and
//     clamped to a maximum, mapped onto context cancellation and the batch
//     layer's FileTimeout. A deadline that fires returns 504 and the
//     worker abandons the file exactly as AnnotateAllContext does;
//   - coalescing: identical concurrent uploads (content hash + options)
//     share one annotation via an in-package singleflight, and recent
//     results are kept in a small LRU;
//   - panic isolation: every request runs inside pipeline.Safely barriers
//     (the batch layer's per-file barrier plus a handler-level one), so a
//     poisoned file returns a structured 500 while the process keeps
//     serving;
//   - typed failure mapping: every error surfaces through the PR 3 ingest
//     taxonomy and maps to a deterministic HTTP status (see classify);
//   - graceful drain: Serve stops accepting on context cancellation,
//     lets in-flight requests finish or deadline-out, and bounds the whole
//     drain with a timeout.
//
// Readiness (/readyz) reflects the admission queue: the service reports
// not-ready when the queue sits above its high-water mark or the server is
// draining, so load balancers steer traffic away before requests shed.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"strudel"
	"strudel/internal/ingest"
	"strudel/internal/obs"
	"strudel/internal/pipeline"
)

// Sentinels for serve-layer request failures outside the ingest taxonomy.
var (
	errPathRefDisabled = errors.New("serve: path-ref annotation is disabled (start with -root to enable)")
	errPathOutsideRoot = errors.New("serve: path escapes the configured root")
	errPathNotFound    = errors.New("serve: no such file under the configured root")
	errBodyRead        = errors.New("serve: reading request body failed")
)

// minRequestTimeout is the lowest deadline a client may request; anything
// smaller would expire during admission and only measure queue latency.
const minRequestTimeout = time.Millisecond

// Config configures a Server. The zero value of every field except Model
// applies a sensible default.
type Config struct {
	// Model is the trained model annotations run against. Required: the
	// service refuses to construct without one, which is what makes
	// "/readyz implies the model is loaded" true by construction.
	Model *strudel.Model
	// Load carries the ingest guards and dialect policy applied to every
	// request (MaxBytes is also enforced while reading the body). The Obs
	// field is overridden with the server's own hooks.
	Load strudel.LoadOptions
	// Workers bounds concurrent annotations (0 = all CPUs).
	Workers int
	// QueueDepth bounds requests waiting for a worker; beyond it requests
	// shed with 429 (0 = 4x Workers).
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the client does not
	// pass ?timeout= (0 = 10s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines (0 = 60s).
	MaxTimeout time.Duration
	// DrainTimeout bounds the graceful drain on shutdown (0 = 15s).
	DrainTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses (0 = 1s).
	RetryAfter time.Duration
	// CacheEntries sizes the coalescing LRU of rendered results
	// (0 = 128, negative disables caching).
	CacheEntries int
	// ReadyHighWater is the queue depth at which /readyz starts reporting
	// not-ready (0 = 3/4 of QueueDepth).
	ReadyHighWater int
	// PathRoot enables path-ref annotation (?path=rel/file.csv) for files
	// under this directory. Empty disables it.
	PathRoot string
	// ReadHeaderTimeout, ReadTimeout, WriteTimeout protect against slow
	// clients (0 = 5s / MaxTimeout+30s / MaxTimeout+30s).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	// Registry receives the serve metrics; one is created when nil.
	Registry *obs.Registry
}

// Server is the annotation service. Create one with New; it is safe for
// concurrent use by the HTTP stack.
type Server struct {
	cfg    Config
	model  *strudel.Model
	reg    *obs.Registry
	hooks  *obs.Hooks
	adm    *admission
	cache  *resultCache
	flight *flight
	mux    *http.ServeMux

	draining atomic.Bool

	// testHookAnnotate, when set, runs with a worker slot held before the
	// real annotation. The fault-injection suite uses it to stall (it
	// blocks until the request context is done) or to panic, proving the
	// deadline and isolation machinery without a pathological input.
	testHookAnnotate func(ctx context.Context) error
}

// New validates cfg, applies defaults, and builds the service.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, errors.New("serve: Config.Model is required; load or train a model before starting the service")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	if cfg.DefaultTimeout > cfg.MaxTimeout {
		cfg.DefaultTimeout = cfg.MaxTimeout
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 15 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	switch {
	case cfg.CacheEntries == 0:
		cfg.CacheEntries = 128
	case cfg.CacheEntries < 0:
		cfg.CacheEntries = 0
	}
	if cfg.ReadyHighWater <= 0 {
		cfg.ReadyHighWater = 3 * cfg.QueueDepth / 4
		if cfg.ReadyHighWater < 1 {
			cfg.ReadyHighWater = 1
		}
	}
	if cfg.PathRoot != "" {
		abs, err := filepath.Abs(cfg.PathRoot)
		if err != nil {
			return nil, fmt.Errorf("serve: resolve root %q: %w", cfg.PathRoot, err)
		}
		cfg.PathRoot = abs
	}
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 5 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = cfg.MaxTimeout + 30*time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = cfg.MaxTimeout + 30*time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	hooks := obs.NewHooks(reg)

	s := &Server{
		cfg:    cfg,
		model:  cfg.Model,
		reg:    reg,
		hooks:  hooks,
		adm:    newAdmission(cfg.QueueDepth, cfg.Workers, hooks),
		cache:  newResultCache(cfg.CacheEntries),
		flight: newFlight(),
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/annotate", s.protect(s.handleAnnotate))
	s.mux.HandleFunc("GET /v1/annotate", s.protect(s.handleAnnotate))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	obs.RegisterDebug(s.mux, reg)
	s.mux.HandleFunc("/", s.handleNotFound)
	return s, nil
}

// Registry returns the metric registry the service records into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// QueueDepth returns the number of requests admitted but not yet running.
func (s *Server) QueueDepth() int64 { return s.adm.depth() }

// Draining reports whether the server has stopped accepting work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service's HTTP handler (annotation endpoints, health
// probes, and the /debug diagnostics), for callers that embed the service
// in their own server. Serve wires it up with slow-client protection.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until ctx is cancelled, then drains:
// accepting stops, requests already in flight finish (or hit their own
// deadlines), and the whole drain is bounded by Config.DrainTimeout. A
// clean drain returns nil; a drain that had to force-close connections
// returns the shutdown error.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if ctx == nil {
		ctx = context.Background()
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
		IdleTimeout:       60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	// The drain deadline must outlive the (already cancelled) serve
	// context, so it is derived from it without its cancellation.
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.cfg.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		_ = srv.Close() // bound the drain: force-close what remains
		return fmt.Errorf("serve: drain exceeded %s: %w", s.cfg.DrainTimeout, err)
	}
	return nil
}

// protect is the handler-level panic barrier: a panic anywhere in request
// handling becomes a structured 500 and the process keeps serving.
func (s *Server) protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := pipeline.Safely(func() { h(w, r) }); err != nil {
			s.hooks.Count(obs.MServePanic, 1)
			writeAPIError(w, classify(err))
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n") // best-effort probe response
}

// handleReadyz reports readiness: the model is loaded (by construction),
// the server is not draining, and the admission queue sits below its
// high-water mark. Load balancers should steer traffic away on 503.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	depth := s.adm.depth()
	ready := !s.draining.Load() && depth < int64(s.cfg.ReadyHighWater)
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(struct { // best-effort probe response
		Ready      bool  `json:"ready"`
		Draining   bool  `json:"draining"`
		QueueDepth int64 `json:"queue_depth"`
		HighWater  int   `json:"high_water"`
	}{ready, s.draining.Load(), depth, s.cfg.ReadyHighWater})
}

func (s *Server) handleNotFound(w http.ResponseWriter, _ *http.Request) {
	writeAPIError(w, apiError{Status: http.StatusNotFound, Kind: "not_found",
		Message: "unknown endpoint; see /v1/annotate, /healthz, /readyz, /debug/obs"})
}

// reqParams are the per-request knobs parsed from the URL and headers.
type reqParams struct {
	timeout time.Duration
	cells   bool
	ndjson  bool
	path    string
	name    string
	dialect *strudel.Dialect
}

func (s *Server) parseParams(r *http.Request) (reqParams, *apiError) {
	q := r.URL.Query()
	p := reqParams{timeout: s.cfg.DefaultTimeout, name: "upload"}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return p, &apiError{Status: http.StatusBadRequest, Kind: "bad_timeout",
				Message: fmt.Sprintf("timeout %q is not a positive Go duration", v)}
		}
		if d < minRequestTimeout {
			d = minRequestTimeout
		}
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		p.timeout = d
	}
	switch v := q.Get("cells"); v {
	case "", "0", "false":
	case "1", "true":
		p.cells = true
	default:
		return p, &apiError{Status: http.StatusBadRequest, Kind: "bad_param",
			Message: fmt.Sprintf("cells %q is not a boolean", v)}
	}
	switch v := q.Get("format"); v {
	case "", "json":
	case "ndjson":
		p.ndjson = true
	default:
		return p, &apiError{Status: http.StatusBadRequest, Kind: "bad_param",
			Message: fmt.Sprintf("format %q is neither json nor ndjson", v)}
	}
	if r.Header.Get("Accept") == "application/x-ndjson" {
		p.ndjson = true
	}
	if p.path = q.Get("path"); p.path != "" {
		p.name = p.path
	}
	if v := q.Get("dialect"); v != "" {
		d := strudel.DefaultDialect
		d.Delimiter = parseDelim(v)
		p.dialect = &d
	}
	return p, nil
}

// handleAnnotate is the annotation endpoint: upload body or path-ref in,
// annotation JSON (or NDJSON stream) out, with the whole robustness
// envelope applied.
func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	h := s.hooks
	h.Count(obs.MServeRequests, 1)
	start := h.SpanStart(obs.StageServeRequest)
	defer h.SpanEnd(obs.StageServeRequest, start)

	if s.draining.Load() {
		h.Count(obs.MServeDrained, 1)
		writeAPIError(w, apiError{Status: http.StatusServiceUnavailable, Kind: "draining",
			Message: "server is draining; retry against another instance"})
		return
	}
	p, ae := s.parseParams(r)
	if ae != nil {
		writeAPIError(w, *ae)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), p.timeout)
	defer cancel()

	if p.ndjson {
		s.annotateNDJSON(ctx, w, r, p)
		return
	}
	data, err := s.readInput(ctx, r, p)
	if err != nil {
		s.fail(w, err)
		return
	}
	key := requestKey(data, p)
	if res, ok := s.cache.get(key); ok {
		h.Count(obs.MServeCoalesced, 1)
		writeResult(w, res, "cache")
		return
	}
	res, shared, err := s.flight.do(ctx, key, func() (*cachedResult, error) {
		return s.annotateOnce(ctx, data, p)
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	source := "fresh"
	if shared {
		h.Count(obs.MServeCoalesced, 1)
		source = "flight"
	} else if res.status == http.StatusOK {
		s.cache.put(key, res)
	}
	writeResult(w, res, source)
}

// annotateOnce is the admitted unit of work: wait for a worker slot, run
// the (possibly injected) annotation inside a panic barrier, render the
// response. It runs at most once per coalescing key among concurrent
// requests.
func (s *Server) annotateOnce(ctx context.Context, data []byte, p reqParams) (*cachedResult, error) {
	release, err := s.adm.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if err := s.runTestHook(ctx); err != nil {
		return nil, err
	}
	var res *cachedResult
	var aerr error
	if perr := pipeline.Safely(func() { res, aerr = s.annotateRender(ctx, data, p) }); perr != nil {
		s.hooks.Count(obs.MServePanic, 1)
		return nil, perr
	}
	return res, aerr
}

// runTestHook executes the fault-injection hook (if any) inside its own
// panic barrier, so an injected panic takes the same recovery path a
// poisoned file would.
func (s *Server) runTestHook(ctx context.Context) error {
	hook := s.testHookAnnotate
	if hook == nil {
		return nil
	}
	var herr error
	if perr := pipeline.Safely(func() { herr = hook(ctx) }); perr != nil {
		s.hooks.Count(obs.MServePanic, 1)
		return perr
	}
	return herr
}

// annotateRender loads the bytes through the hardened front door and
// annotates them under the request deadline, returning the rendered JSON.
func (s *Server) annotateRender(ctx context.Context, data []byte, p reqParams) (*cachedResult, error) {
	tbl, d, err := strudel.LoadBytes(data, s.loadOptions(p))
	if err != nil {
		return nil, err // typed ingest taxonomy: deterministic status
	}
	tbl.Name = p.name
	anns := s.model.AnnotateAllContext(ctx, []*strudel.Table{tbl}, strudel.BatchOptions{
		Parallelism: 1,
		FileTimeout: p.timeout,
		Obs:         s.hooks,
	})
	ann := anns[0]
	if ann.Err != nil {
		var pe *pipeline.PanicError
		if errors.As(ann.Err, &pe) {
			s.hooks.Count(obs.MServePanic, 1)
		}
		return nil, ann.Err
	}
	body, err := renderAnnotation(p, d, ann)
	if err != nil {
		return nil, err
	}
	return &cachedResult{status: http.StatusOK, body: body}, nil
}

// loadOptions is the per-request load configuration: the server's guards
// and hooks plus the request's dialect override.
func (s *Server) loadOptions(p reqParams) strudel.LoadOptions {
	opts := s.cfg.Load
	opts.Obs = s.hooks
	if p.dialect != nil {
		opts.ForceDialect = p.dialect
	}
	return opts
}

// maxBytes is the effective per-request size cap.
func (s *Server) maxBytes() int64 {
	if s.cfg.Load.Ingest.MaxBytes != 0 {
		return s.cfg.Load.Ingest.MaxBytes
	}
	return ingest.DefaultMaxBytes
}

// readInput produces the raw bytes to annotate: the upload body (capped at
// MaxBytes while reading, before buffering beyond the limit) or a path-ref
// under the configured root.
func (s *Server) readInput(ctx context.Context, r *http.Request, p reqParams) ([]byte, error) {
	if p.path != "" {
		return s.readPathRef(p.path)
	}
	max := s.maxBytes()
	data, err := io.ReadAll(io.LimitReader(r.Body, max+1))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, ingest.WrapCancelled(cerr)
		}
		if ingest.IsCancellation(err) {
			return nil, ingest.WrapCancelled(err)
		}
		return nil, fmt.Errorf("%w: %w", errBodyRead, err)
	}
	if int64(len(data)) > max {
		return nil, &ingest.GuardError{Sentinel: ingest.ErrTooLarge, Limit: max, Actual: int64(len(data))}
	}
	return data, nil
}

// resolvePathRef maps a client path-ref onto a file under the configured
// root, refusing escapes.
func (s *Server) resolvePathRef(ref string) (string, error) {
	if s.cfg.PathRoot == "" {
		return "", errPathRefDisabled
	}
	full := filepath.Join(s.cfg.PathRoot, filepath.Clean("/"+ref))
	rel, err := filepath.Rel(s.cfg.PathRoot, full)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", errPathOutsideRoot
	}
	return full, nil
}

func (s *Server) readPathRef(ref string) ([]byte, error) {
	full, err := s.resolvePathRef(ref)
	if err != nil {
		return nil, err
	}
	info, err := os.Stat(full)
	if err != nil || info.IsDir() {
		return nil, errPathNotFound
	}
	max := s.maxBytes()
	if info.Size() > max {
		return nil, &ingest.GuardError{Sentinel: ingest.ErrTooLarge, Limit: max, Actual: info.Size()}
	}
	data, err := os.ReadFile(full)
	if err != nil {
		return nil, errPathNotFound
	}
	return data, nil
}

// annotateNDJSON streams the annotation: the upload body (or path-ref)
// goes straight through AnnotateStream and each classified line is written
// and flushed as its window completes — bounded memory on both sides.
// Streaming responses are not coalesced (the body is never buffered, so
// there is no content hash to coalesce on).
func (s *Server) annotateNDJSON(ctx context.Context, w http.ResponseWriter, r *http.Request, p reqParams) {
	release, err := s.adm.admit(ctx)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()
	if err := s.runTestHook(ctx); err != nil {
		s.fail(w, err)
		return
	}

	opts := strudel.StreamOptions{Load: s.loadOptions(p)}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	wrote := false
	emit := func(la strudel.LineAnnotation) error {
		rec := struct {
			Row    int      `json:"row"`
			Class  string   `json:"class"`
			Cells  []string `json:"cells,omitempty"`
			Fields []string `json:"fields"`
		}{Row: la.Row, Class: la.Class.String(), Fields: la.Fields}
		if p.cells {
			for _, c := range la.Cells {
				rec.Cells = append(rec.Cells, c.String())
			}
		}
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
		wrote = true
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	var sum *strudel.StreamSummary
	var serr error
	if perr := pipeline.Safely(func() {
		if p.path != "" {
			var full string
			if full, serr = s.resolvePathRef(p.path); serr == nil {
				sum, serr = s.model.AnnotateFileStream(ctx, full, opts, emit)
			}
		} else {
			sum, serr = s.model.AnnotateStream(ctx, r.Body, opts, emit)
		}
	}); perr != nil {
		s.hooks.Count(obs.MServePanic, 1)
		serr = perr
	}
	if serr != nil {
		if cerr := ctx.Err(); cerr != nil {
			serr = ingest.WrapCancelled(cerr)
		}
		if !wrote {
			s.fail(w, serr)
			return
		}
		ae := classify(serr)
		s.countOutcome(ae)
		_ = enc.Encode(struct { // trailer on an already-started stream
			Error apiError `json:"error"`
		}{ae})
		return
	}
	_ = enc.Encode(struct { // best-effort closing summary
		Summary  bool                `json:"summary"`
		Lines    int                 `json:"lines"`
		Windows  int                 `json:"windows"`
		Dialect  string              `json:"dialect"`
		Degraded []string            `json:"degraded,omitempty"`
		Prov     *strudel.Provenance `json:"provenance,omitempty"`
	}{true, sum.Lines, sum.Windows, sum.Dialect.String(), sum.Degraded, sum.Provenance})
}

// fail classifies err, records its outcome counter, and writes the
// structured error response.
func (s *Server) fail(w http.ResponseWriter, err error) {
	ae := classify(err)
	if ae.Status == http.StatusTooManyRequests {
		ae.RetryAfter = int(s.cfg.RetryAfter.Seconds())
		if ae.RetryAfter < 1 {
			ae.RetryAfter = 1
		}
	}
	s.countOutcome(ae)
	writeAPIError(w, ae)
}

// countOutcome records the per-request outcome counters. Panics are
// counted at their recovery sites (events, not requests), and sheds are
// counted inside admission, so neither appears here.
func (s *Server) countOutcome(ae apiError) {
	switch ae.Status {
	case http.StatusGatewayTimeout:
		s.hooks.Count(obs.MServeTimeout, 1)
	case statusClientClosedRequest:
		s.hooks.Count(obs.MServeCancelled, 1)
	}
}

// requestKey is the coalescing key: content hash plus every option that
// changes the rendered result — including the display name, so a path-ref
// and a byte-identical upload never share a response body.
func requestKey(data []byte, p reqParams) string {
	sum := sha256.Sum256(data)
	var d string
	if p.dialect != nil {
		d = p.dialect.String()
	}
	return fmt.Sprintf("%x|cells=%t|dialect=%s|name=%s", sum, p.cells, d, p.name)
}

// writeResult sends a rendered annotation; source says how it was
// produced ("fresh", "flight" = coalesced with a concurrent request,
// "cache" = LRU hit).
func writeResult(w http.ResponseWriter, res *cachedResult, source string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Strudel-Source", source)
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body) // best-effort: the client may be gone
}

// renderAnnotation encodes one successful annotation as the response body.
func renderAnnotation(p reqParams, d strudel.Dialect, ann *strudel.Annotation) ([]byte, error) {
	out := struct {
		File       string              `json:"file,omitempty"`
		Dialect    string              `json:"dialect"`
		Lines      []string            `json:"lines"`
		Cells      [][]string          `json:"cells,omitempty"`
		Degraded   []string            `json:"degraded,omitempty"`
		Provenance *strudel.Provenance `json:"provenance,omitempty"`
	}{Dialect: d.String(), Degraded: ann.Degraded, Provenance: ann.Provenance}
	if p.path != "" {
		out.File = p.path
	}
	out.Lines = make([]string, 0, len(ann.Lines))
	for _, c := range ann.Lines {
		out.Lines = append(out.Lines, c.String())
	}
	if p.cells {
		out.Cells = make([][]string, 0, len(ann.Cells))
		for _, row := range ann.Cells {
			names := make([]string, 0, len(row))
			for _, c := range row {
				names = append(names, c.String())
			}
			out.Cells = append(out.Cells, names)
		}
	}
	body, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("serve: encode annotation: %w", err)
	}
	return append(body, '\n'), nil
}

// parseDelim mirrors the strudel CLI's delimiter spelling ("tab", ";", ...).
func parseDelim(s string) rune {
	switch strings.ToLower(s) {
	case "tab", "\\t":
		return '\t'
	case "space":
		return ' '
	default:
		return []rune(s)[0]
	}
}

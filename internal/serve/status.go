package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"strudel/internal/ingest"
	"strudel/internal/pipeline"
)

// statusClientClosedRequest is the nginx-convention status recorded for
// requests whose client disconnected before a response could be written.
// It is never sent on the wire (the connection is gone); it exists so the
// outcome counters and logs name the condition deterministically.
const statusClientClosedRequest = 499

// An apiError is the structured error payload every non-2xx response
// carries. Kind is a stable snake_case name; Taxonomy names the Go sentinel
// of the PR 3 error taxonomy when one classified the failure, so clients
// and tests can dispatch without parsing prose.
type apiError struct {
	Status     int    `json:"status"`
	Kind       string `json:"kind"`
	Taxonomy   string `json:"taxonomy,omitempty"`
	Message    string `json:"message"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
}

// errQueueFull is the admission-control shed signal, mapped to 429.
var errQueueFull = errors.New("serve: admission queue full")

// classify maps one error onto its deterministic HTTP status via the typed
// taxonomy: every ingest sentinel, the context errors, recovered panics,
// and the admission shed each have a fixed status, so the same fault always
// produces the same response.
func classify(err error) apiError {
	var pe *pipeline.PanicError
	switch {
	case errors.Is(err, errQueueFull):
		return apiError{Status: http.StatusTooManyRequests, Kind: "queue_full",
			Message: "admission queue full; retry later"}
	case errors.Is(err, context.DeadlineExceeded):
		return apiError{Status: http.StatusGatewayTimeout, Kind: "timeout",
			Taxonomy: "ErrCancelled", Message: "request deadline exceeded before annotation finished"}
	case errors.Is(err, context.Canceled):
		return apiError{Status: statusClientClosedRequest, Kind: "cancelled",
			Taxonomy: "ErrCancelled", Message: "client went away before annotation finished"}
	case errors.Is(err, ingest.ErrCancelled):
		// A cancellation surfaced through the ingest taxonomy without a
		// live context error underneath (should not happen; keep it typed).
		return apiError{Status: statusClientClosedRequest, Kind: "cancelled",
			Taxonomy: "ErrCancelled", Message: err.Error()}
	case errors.Is(err, ingest.ErrTooLarge):
		return apiError{Status: http.StatusRequestEntityTooLarge, Kind: "too_large",
			Taxonomy: "ErrTooLarge", Message: err.Error()}
	case errors.Is(err, ingest.ErrBadEncoding):
		return apiError{Status: http.StatusUnprocessableEntity, Kind: "bad_encoding",
			Taxonomy: "ErrBadEncoding", Message: err.Error()}
	case errors.Is(err, ingest.ErrEmptyInput):
		return apiError{Status: http.StatusBadRequest, Kind: "empty_input",
			Taxonomy: "ErrEmptyInput", Message: err.Error()}
	case errors.Is(err, ingest.ErrLineTooLong):
		return apiError{Status: http.StatusUnprocessableEntity, Kind: "line_too_long",
			Taxonomy: "ErrLineTooLong", Message: err.Error()}
	case errors.Is(err, ingest.ErrTooManyLines):
		return apiError{Status: http.StatusUnprocessableEntity, Kind: "too_many_lines",
			Taxonomy: "ErrTooManyLines", Message: err.Error()}
	case errors.Is(err, ingest.ErrTooManyCells):
		return apiError{Status: http.StatusUnprocessableEntity, Kind: "too_many_cells",
			Taxonomy: "ErrTooManyCells", Message: err.Error()}
	case errors.As(err, &pe):
		return apiError{Status: http.StatusInternalServerError, Kind: "panic",
			Taxonomy: "PanicError", Message: "annotation panicked; the fault was isolated to this request"}
	case errors.Is(err, errPathRefDisabled):
		return apiError{Status: http.StatusForbidden, Kind: "path_ref_disabled", Message: err.Error()}
	case errors.Is(err, errPathOutsideRoot):
		return apiError{Status: http.StatusForbidden, Kind: "path_outside_root", Message: err.Error()}
	case errors.Is(err, errPathNotFound):
		return apiError{Status: http.StatusNotFound, Kind: "not_found", Message: err.Error()}
	case errors.Is(err, errBodyRead):
		return apiError{Status: http.StatusBadRequest, Kind: "body_read", Message: err.Error()}
	}
	return apiError{Status: http.StatusInternalServerError, Kind: "internal", Message: err.Error()}
}

// writeAPIError sends ae as the structured JSON error body, with the
// status-specific headers (Retry-After on 429, Connection: close on 503).
// Writes are best-effort: the client may already be gone.
func writeAPIError(w http.ResponseWriter, ae apiError) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if ae.Status == http.StatusTooManyRequests && ae.RetryAfter > 0 {
		h.Set("Retry-After", fmt.Sprintf("%d", ae.RetryAfter))
	}
	if ae.Status == http.StatusServiceUnavailable {
		h.Set("Connection", "close")
	}
	w.WriteHeader(ae.Status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(struct {
		Error apiError `json:"error"`
	}{ae}) // best-effort: a dropped client connection loses nothing
}

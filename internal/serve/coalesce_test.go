package serve

import (
	"fmt"
	"testing"
)

// res builds a distinct cachedResult so tests can tell entries apart by
// pointer identity and body.
func res(s string) *cachedResult {
	return &cachedResult{status: 200, body: []byte(s)}
}

// TestResultCacheEvictsAtExactCapacity fills the cache to its capacity,
// then inserts one more key: the least recently used entry — and only
// that one — must leave, and the length must stay pinned at capacity.
func TestResultCacheEvictsAtExactCapacity(t *testing.T) {
	const capacity = 3
	c := newResultCache(capacity)
	for i := 0; i < capacity; i++ {
		c.put(fmt.Sprintf("k%d", i), res(fmt.Sprintf("v%d", i)))
	}
	if got := c.len(); got != capacity {
		t.Fatalf("len after filling to capacity = %d, want %d", got, capacity)
	}

	// Touch k0 so k1 becomes the LRU entry, then overflow by one.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing before overflow")
	}
	c.put("k3", res("v3"))

	if got := c.len(); got != capacity {
		t.Errorf("len after overflow = %d, want %d (exactly one eviction)", got, capacity)
	}
	if _, ok := c.get("k1"); ok {
		t.Error("k1 survived eviction; it was the least recently used entry")
	}
	for _, key := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(key); !ok {
			t.Errorf("%s evicted; only the LRU entry should leave", key)
		}
	}
}

// TestResultCacheReinsertAfterEvict re-inserts a key that was previously
// evicted: it must be stored fresh (new value visible), count as the most
// recently used entry, and push out the current LRU instead of tripping
// over any stale bookkeeping from its first life.
func TestResultCacheReinsertAfterEvict(t *testing.T) {
	c := newResultCache(2)
	c.put("a", res("a1"))
	c.put("b", res("b1"))
	c.put("c", res("c1")) // evicts a

	if _, ok := c.get("a"); ok {
		t.Fatal("a still cached after overflow; expected it evicted")
	}

	// Re-insert the evicted key with a new value: b is now LRU and must go.
	c.put("a", res("a2"))
	if got := c.len(); got != 2 {
		t.Errorf("len after re-insert = %d, want 2", got)
	}
	if _, ok := c.get("b"); ok {
		t.Error("b survived; re-inserting a should have evicted the LRU entry b")
	}
	got, ok := c.get("a")
	if !ok {
		t.Fatal("re-inserted a missing")
	}
	if string(got.body) != "a2" {
		t.Errorf("re-inserted a returned body %q, want %q (fresh value, not a stale entry)", got.body, "a2")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c evicted; it was more recently used than b")
	}
}

// TestResultCacheUpdateExistingKeyDoesNotEvict overwrites a resident key:
// the value must change in place with no eviction side effects.
func TestResultCacheUpdateExistingKeyDoesNotEvict(t *testing.T) {
	c := newResultCache(2)
	c.put("a", res("a1"))
	c.put("b", res("b1"))
	c.put("a", res("a2"))

	if got := c.len(); got != 2 {
		t.Errorf("len after in-place update = %d, want 2", got)
	}
	got, ok := c.get("a")
	if !ok {
		t.Fatal("a missing after update")
	}
	if string(got.body) != "a2" {
		t.Errorf("a returned body %q after update, want %q", got.body, "a2")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("updating a resident key evicted b")
	}
}

// TestResultCacheZeroCapacity pins the disabled-cache mode: puts are
// dropped and gets always miss.
func TestResultCacheZeroCapacity(t *testing.T) {
	c := newResultCache(0)
	c.put("a", res("a1"))
	if got := c.len(); got != 0 {
		t.Errorf("len = %d for zero-capacity cache, want 0", got)
	}
	if _, ok := c.get("a"); ok {
		t.Error("zero-capacity cache returned a hit")
	}
}

package serve

import (
	"context"
	"sync/atomic"

	"strudel/internal/obs"
)

// admission is the bounded front door of the annotation service: a request
// first takes a queue position (shed with errQueueFull — HTTP 429 — when
// the queue is at capacity, so waiting work is always bounded), then blocks
// for one of the worker slots. The caller's context bounds the wait: a
// deadline or client disconnect while queued abandons the position
// immediately instead of occupying it until a slot frees.
//
// Memory is bounded by construction: at most QueueDepth handler goroutines
// wait and at most Workers annotate; everything beyond that is refused at
// the door with backpressure, never buffered.
type admission struct {
	queued   atomic.Int64  // requests admitted but not yet holding a slot
	maxQueue int64         // shed threshold
	slots    chan struct{} // one token per concurrent annotation
	hooks    *obs.Hooks
}

func newAdmission(queueDepth, workers int, h *obs.Hooks) *admission {
	if queueDepth < 1 {
		queueDepth = 1
	}
	if workers < 1 {
		workers = 1
	}
	return &admission{
		maxQueue: int64(queueDepth),
		slots:    make(chan struct{}, workers),
		hooks:    h,
	}
}

// depth returns the number of requests currently queued (admitted, waiting
// for a worker slot). The readiness probe compares it to the high-water
// mark.
func (a *admission) depth() int64 { return a.queued.Load() }

// admit takes a queue position and waits for a worker slot. It returns a
// release function to call when the request's work is done, or an error:
// errQueueFull when the queue is at capacity (counted as serve/shed), or
// ctx.Err() when the caller's deadline or disconnect fired while queued.
func (a *admission) admit(ctx context.Context) (release func(), err error) {
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.hooks.Count(obs.MServeShed, 1)
		return nil, errQueueFull
	}
	a.hooks.GaugeAdd(obs.MServeQueueDepth, 1)
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		a.hooks.GaugeAdd(obs.MServeQueueDepth, -1)
		a.hooks.Count(obs.MServeAccepted, 1)
		a.hooks.GaugeAdd(obs.MServeInflight, 1)
		return a.release, nil
	case <-ctx.Done():
		a.queued.Add(-1)
		a.hooks.GaugeAdd(obs.MServeQueueDepth, -1)
		return nil, ctx.Err()
	}
}

func (a *admission) release() {
	<-a.slots
	a.hooks.GaugeAdd(obs.MServeInflight, -1)
}

package serve

// The fault-injection suite: every fault the service is designed to absorb
// — injected panics, stalled annotators, queue saturation, client
// disconnects mid-request, shutdown under load, and the hostile ingest
// corpus — driven through real HTTP, asserting that each produces its
// deterministic status and that the process keeps serving afterwards.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"strudel"
	"strudel/internal/ingest"
	"strudel/internal/obs"
	"strudel/internal/pipeline"
)

const sampleCSV = `Employment by Sector 2020,,,
,,,
Sector,Q1,Q2,Q3
Manufacturing,120,130,125
Construction,80,85,90
Retail,200,210,205
Total,400,425,420
,,,
Source: labour force survey,,,
`

var tm struct {
	once sync.Once
	m    *strudel.Model
	err  error
}

func testModel(t *testing.T) *strudel.Model {
	t.Helper()
	tm.once.Do(func() {
		files, err := strudel.GenerateCorpus("saus", 0.2)
		if err != nil {
			tm.err = err
			return
		}
		tm.m, tm.err = strudel.Train(files, strudel.TrainOptions{Trees: 5, Seed: 3, LineOnly: true})
	})
	if tm.err != nil {
		t.Fatal(tm.err)
	}
	return tm.m
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Model: testModel(t), Workers: 2, QueueDepth: 8, DefaultTimeout: 5 * time.Second}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postCSV(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// errKind extracts the structured error body's kind field.
func errKind(t *testing.T, body []byte) string {
	t.Helper()
	var out struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("error body %q is not structured JSON: %v", body, err)
	}
	return out.Error.Kind
}

func waitCounter(t *testing.T, reg *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter(name).Value() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("counter %s never reached %d (at %d)", name, want, reg.Counter(name).Value())
}

func TestClassifyTaxonomy(t *testing.T) {
	panicErr := pipeline.Safely(func() { panic("poisoned file") })
	cases := []struct {
		err    error
		status int
		kind   string
	}{
		{errQueueFull, http.StatusTooManyRequests, "queue_full"},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, "timeout"},
		{context.Canceled, statusClientClosedRequest, "cancelled"},
		{&ingest.GuardError{Sentinel: ingest.ErrCancelled, Cause: context.Canceled}, statusClientClosedRequest, "cancelled"},
		{&ingest.GuardError{Sentinel: ingest.ErrCancelled, Cause: context.DeadlineExceeded}, http.StatusGatewayTimeout, "timeout"},
		{&ingest.GuardError{Sentinel: ingest.ErrTooLarge}, http.StatusRequestEntityTooLarge, "too_large"},
		{&ingest.GuardError{Sentinel: ingest.ErrBadEncoding}, http.StatusUnprocessableEntity, "bad_encoding"},
		{&ingest.GuardError{Sentinel: ingest.ErrEmptyInput}, http.StatusBadRequest, "empty_input"},
		{&ingest.GuardError{Sentinel: ingest.ErrLineTooLong}, http.StatusUnprocessableEntity, "line_too_long"},
		{&ingest.GuardError{Sentinel: ingest.ErrTooManyLines}, http.StatusUnprocessableEntity, "too_many_lines"},
		{&ingest.GuardError{Sentinel: ingest.ErrTooManyCells}, http.StatusUnprocessableEntity, "too_many_cells"},
		{panicErr, http.StatusInternalServerError, "panic"},
		{fmt.Errorf("wrapped: %w", panicErr), http.StatusInternalServerError, "panic"},
		{errPathRefDisabled, http.StatusForbidden, "path_ref_disabled"},
		{errPathOutsideRoot, http.StatusForbidden, "path_outside_root"},
		{errPathNotFound, http.StatusNotFound, "not_found"},
		{errors.New("unclassified"), http.StatusInternalServerError, "internal"},
	}
	for _, c := range cases {
		got := classify(c.err)
		if got.Status != c.status || got.Kind != c.kind {
			t.Errorf("classify(%v) = %d/%s, want %d/%s", c.err, got.Status, got.Kind, c.status, c.kind)
		}
		// Determinism: the same fault classifies identically every time.
		if again := classify(c.err); again != got {
			t.Errorf("classify(%v) not deterministic: %+v then %+v", c.err, got, again)
		}
	}
}

func TestAnnotateRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := postCSV(t, ts.URL+"/v1/annotate", sampleCSV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Strudel-Source"); got != "fresh" {
		t.Errorf("source = %q, want fresh", got)
	}
	var out struct {
		Dialect string   `json:"dialect"`
		Lines   []string `json:"lines"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Lines) != 9 {
		t.Errorf("lines = %d, want 9", len(out.Lines))
	}
}

// TestInjectedPanicIsolated proves per-request panic isolation: a request
// whose annotation panics gets a structured 500 and the process keeps
// serving subsequent requests on the same worker pool.
func TestInjectedPanicIsolated(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.testHookAnnotate = func(context.Context) error { panic("injected fault") }
	resp, body := postCSV(t, ts.URL+"/v1/annotate", sampleCSV)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if kind := errKind(t, body); kind != "panic" {
		t.Errorf("kind = %q, want panic", kind)
	}
	if got := s.Registry().Counter(obs.MServePanic).Value(); got < 1 {
		t.Errorf("serve/panic = %d, want >= 1", got)
	}

	s.testHookAnnotate = nil
	resp, body = postCSV(t, ts.URL+"/v1/annotate", sampleCSV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("process did not survive the panic: status = %d, body %s", resp.StatusCode, body)
	}
}

// TestQueueSaturationSheds proves admission control: with one worker
// stalled and the one queue position taken, the next request is shed
// immediately with 429 + Retry-After instead of buffering, and the stalled
// requests still complete once the fault clears.
func TestQueueSaturationSheds(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, func(cfg *Config) {
		cfg.Workers = 1
		cfg.QueueDepth = 1
		cfg.CacheEntries = -1
	})
	s.testHookAnnotate = func(ctx context.Context) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	// Distinct bodies so coalescing cannot merge the requests.
	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	post := func(body string) {
		resp, data := postCSV(t, ts.URL+"/v1/annotate", body)
		results <- result{resp.StatusCode, data}
	}
	go post(sampleCSV + "A,1,2,3\n")
	waitCounter(t, s.Registry(), obs.MServeAccepted, 1) // A holds the worker slot
	go post(sampleCSV + "B,4,5,6\n")
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() < 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond) // B takes the queue position
	}
	if s.QueueDepth() < 1 {
		t.Fatal("second request never queued")
	}

	resp, body := postCSV(t, ts.URL+"/v1/annotate", sampleCSV+"C,7,8,9\n")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue returned %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if kind := errKind(t, body); kind != "queue_full" {
		t.Errorf("kind = %q, want queue_full", kind)
	}
	if got := s.Registry().Counter(obs.MServeShed).Value(); got != 1 {
		t.Errorf("serve/shed = %d, want 1", got)
	}

	close(gate) // clear the fault: both stalled requests must complete
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Errorf("stalled request finished with %d, body %s", r.status, r.body)
		}
	}
}

// TestDeadlineCancelsCooperatively proves the per-request deadline: a
// stalled annotation observes context cancellation, the client gets 504,
// and the timeout counter records it.
func TestDeadlineCancelsCooperatively(t *testing.T) {
	observed := make(chan struct{}, 1)
	s, ts := newTestServer(t, nil)
	s.testHookAnnotate = func(ctx context.Context) error {
		<-ctx.Done() // the stall: never finishes on its own
		observed <- struct{}{}
		return ctx.Err()
	}
	resp, body := postCSV(t, ts.URL+"/v1/annotate?timeout=50ms", sampleCSV)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if kind := errKind(t, body); kind != "timeout" {
		t.Errorf("kind = %q, want timeout", kind)
	}
	select {
	case <-observed:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled annotator never observed cancellation")
	}
	if got := s.Registry().Counter(obs.MServeTimeout).Value(); got != 1 {
		t.Errorf("serve/timeout = %d, want 1", got)
	}
}

// TestClientDisconnectCancels proves a mid-request disconnect propagates:
// the in-flight annotation's context is cancelled and the outcome is
// recorded as a client-closed request, freeing the worker slot.
func TestClientDisconnectCancels(t *testing.T) {
	entered := make(chan struct{}, 1)
	observed := make(chan struct{}, 1)
	s, ts := newTestServer(t, nil)
	s.testHookAnnotate = func(ctx context.Context) error {
		entered <- struct{}{}
		<-ctx.Done()
		observed <- struct{}{}
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/annotate", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, rerr := http.DefaultClient.Do(req)
		if rerr == nil {
			_ = resp.Body.Close()
		}
		done <- rerr
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the annotator")
	}
	cancel() // the disconnect
	if rerr := <-done; rerr == nil {
		t.Error("client should observe its own cancellation")
	}
	select {
	case <-observed:
	case <-time.After(5 * time.Second):
		t.Fatal("server never observed the disconnect")
	}
	waitCounter(t, s.Registry(), obs.MServeCancelled, 1)
	// The worker slot must be free again: a fresh request succeeds.
	s.testHookAnnotate = nil
	resp, body := postCSV(t, ts.URL+"/v1/annotate", sampleCSV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect request failed: %d %s", resp.StatusCode, body)
	}
}

// TestHostileCorpusDeterministic drives the full hostile ingest corpus
// through HTTP twice: every file must map to a deterministic, repeatable
// status from the typed taxonomy — and never a 500.
func TestHostileCorpusDeterministic(t *testing.T) {
	_, ts := newTestServer(t, nil)
	dir := filepath.Join("..", "..", "testdata", "hostile")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("hostile corpus is empty")
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		resp1, body1 := postCSV(t, ts.URL+"/v1/annotate", string(data))
		resp2, body2 := postCSV(t, ts.URL+"/v1/annotate", string(data))
		if resp1.StatusCode != resp2.StatusCode {
			t.Errorf("%s: status flapped %d -> %d", e.Name(), resp1.StatusCode, resp2.StatusCode)
		}
		if resp1.StatusCode >= 500 {
			t.Errorf("%s: hostile input produced %d (body %s)", e.Name(), resp1.StatusCode, body1)
		}
		if resp1.StatusCode != http.StatusOK && errKind(t, body1) == "" {
			t.Errorf("%s: error response without a kind: %s", e.Name(), body1)
		}
		_ = body2
	}
	// Named expectations for the two unambiguous taxonomy mappings.
	for name, want := range map[string]struct {
		status int
		kind   string
	}{
		"binary_blob.csv": {http.StatusUnprocessableEntity, "bad_encoding"},
		"empty.csv":       {http.StatusBadRequest, "empty_input"},
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postCSV(t, ts.URL+"/v1/annotate", string(data))
		if resp.StatusCode != want.status || errKind(t, body) != want.kind {
			t.Errorf("%s: got %d/%s, want %d/%s", name, resp.StatusCode, errKind(t, body), want.status, want.kind)
		}
	}
	// The process survived the whole corpus.
	resp, _ := postCSV(t, ts.URL+"/v1/annotate", sampleCSV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after hostile corpus: %d", resp.StatusCode)
	}
}

// TestCoalescingConcurrent proves identical concurrent uploads share one
// annotation: one admission, the rest counted as coalesced.
func TestCoalescingConcurrent(t *testing.T) {
	const clients = 8
	gate := make(chan struct{})
	s, ts := newTestServer(t, func(cfg *Config) { cfg.Workers = 4 })
	s.testHookAnnotate = func(ctx context.Context) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	var wg sync.WaitGroup
	statuses := make([]int, clients)
	bodies := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postCSV(t, ts.URL+"/v1/annotate", sampleCSV)
			statuses[i] = resp.StatusCode
			bodies[i] = body
		}(i)
	}
	// All clients in flight, exactly one admitted (the flight leader).
	waitCounter(t, s.Registry(), obs.MServeRequests, clients)
	waitCounter(t, s.Registry(), obs.MServeAccepted, 1)
	time.Sleep(50 * time.Millisecond) // let the followers reach the flight
	close(gate)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d: status %d, body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("client %d received a different body", i)
		}
	}
	reg := s.Registry()
	accepted := reg.Counter(obs.MServeAccepted).Value()
	coalesced := reg.Counter(obs.MServeCoalesced).Value()
	if accepted > 2 {
		t.Errorf("serve/accepted = %d, want 1 (2 tolerated for a late joiner)", accepted)
	}
	if coalesced < clients-2 {
		t.Errorf("serve/coalesced = %d, want >= %d", coalesced, clients-2)
	}
	// A repeat upload is served from the LRU and counted coalesced.
	s.testHookAnnotate = nil
	before := reg.Counter(obs.MServeCoalesced).Value()
	resp, _ := postCSV(t, ts.URL+"/v1/annotate", sampleCSV)
	if got := resp.Header.Get("X-Strudel-Source"); got != "cache" {
		t.Errorf("repeat upload source = %q, want cache", got)
	}
	if after := reg.Counter(obs.MServeCoalesced).Value(); after != before+1 {
		t.Errorf("cache hit did not count coalesced: %d -> %d", before, after)
	}
}

// TestDrainUnderLoad proves graceful shutdown: cancelling the serve
// context stops accepting, the in-flight request completes, and Serve
// returns nil within the drain budget.
func TestDrainUnderLoad(t *testing.T) {
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	s, err := New(Config{Model: testModel(t), Workers: 2, QueueDepth: 4, DrainTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.testHookAnnotate = func(ctx context.Context) error {
		entered <- struct{}{}
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String() + "/v1/annotate"

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(url, "text/csv", strings.NewReader(sampleCSV))
		if err != nil {
			reqDone <- -1
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the annotator")
	}

	cancel() // SIGTERM equivalent: begin the drain
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !s.Draining() {
		t.Fatal("server never entered draining state")
	}
	// New connections are refused once the listener is closed.
	refused := false
	for i := 0; i < 100; i++ {
		resp, err := http.Post(url, "text/csv", strings.NewReader(sampleCSV))
		if err != nil {
			refused = true
			break
		}
		code := resp.StatusCode
		_ = resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			refused = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Error("new work was still accepted while draining")
	}

	close(gate) // let the in-flight request finish
	if code := <-reqDone; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", code)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("drain returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve never returned after drain")
	}
}

// TestDrainingRejectsWithConnectionClose checks the in-handler draining
// response for connections that are already open when the drain begins.
func TestDrainingRejectsWithConnectionClose(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.draining.Store(true)
	resp, body := postCSV(t, ts.URL+"/v1/annotate", sampleCSV)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if kind := errKind(t, body); kind != "draining" {
		t.Errorf("kind = %q, want draining", kind)
	}
	// Go's http server consumes the handler's Connection: close header and
	// closes the connection; the client sees it as resp.Close.
	if !resp.Close {
		t.Error("503 draining response did not close the connection")
	}
}

func TestOversizedUploadRejectedAt413(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) { cfg.Load.Ingest.MaxBytes = 64 })
	resp, body := postCSV(t, ts.URL+"/v1/annotate", strings.Repeat("a,b,c\n", 100))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	if kind := errKind(t, body); kind != "too_large" {
		t.Errorf("kind = %q, want too_large", kind)
	}
}

func TestPathRefSafety(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "good.csv"), []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, func(cfg *Config) { cfg.PathRoot = root })
	cases := []struct {
		path   string
		status int
	}{
		{"good.csv", http.StatusOK},
		{"missing.csv", http.StatusNotFound},
		{"../../../etc/passwd", http.StatusNotFound}, // cleaned back under root, which lacks it
	}
	for _, c := range cases {
		resp, body := postCSV(t, ts.URL+"/v1/annotate?path="+c.path, "")
		if resp.StatusCode != c.status {
			t.Errorf("path %q: status = %d, want %d (body %s)", c.path, resp.StatusCode, c.status, body)
		}
	}
	// Path refs without a configured root are refused outright.
	_, ts2 := newTestServer(t, nil)
	resp, body := postCSV(t, ts2.URL+"/v1/annotate?path=good.csv", "")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("path ref without root: status = %d, want 403 (body %s)", resp.StatusCode, body)
	}
	if kind := errKind(t, body); kind != "path_ref_disabled" {
		t.Errorf("kind = %q, want path_ref_disabled", kind)
	}
}

func TestNDJSONStreaming(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := postCSV(t, ts.URL+"/v1/annotate?format=ndjson", sampleCSV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("ndjson lines = %d, want rows + summary", len(lines))
	}
	for i, ln := range lines[:len(lines)-1] {
		var rec struct {
			Row   int    `json:"row"`
			Class string `json:"class"`
		}
		if err := json.Unmarshal(ln, &rec); err != nil {
			t.Fatalf("line %d not JSON: %v (%s)", i, err, ln)
		}
		if rec.Class == "" {
			t.Errorf("line %d has no class", i)
		}
	}
	var sum struct {
		Summary bool `json:"summary"`
		Lines   int  `json:"lines"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &sum); err != nil || !sum.Summary {
		t.Fatalf("stream did not end with a summary: %s (err %v)", lines[len(lines)-1], err)
	}
	if sum.Lines != len(lines)-1 {
		t.Errorf("summary lines = %d, emitted %d", sum.Lines, len(lines)-1)
	}
}

func TestBadParamsRejected(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, q := range []string{"?timeout=banana", "?timeout=-3s", "?format=xml", "?cells=maybe"} {
		resp, body := postCSV(t, ts.URL+"/v1/annotate"+q, sampleCSV)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", q, resp.StatusCode, body)
		}
	}
}

func TestReadyzTracksQueueAndDraining(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh server not ready: %d", resp.StatusCode)
	}
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server reported ready: %d", resp.StatusCode)
	}
}

func TestDebugObsExposesServeCounters(t *testing.T) {
	_, ts := newTestServer(t, nil)
	_, _ = postCSV(t, ts.URL+"/v1/annotate", sampleCSV)
	resp, err := http.Get(ts.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{obs.MServeRequests, obs.MServeAccepted} {
		if !bytes.Contains(body, []byte(name)) {
			t.Errorf("/debug/obs missing %s: %s", name, body)
		}
	}
}

package corpusio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strudel/internal/datagen"
	"strudel/internal/table"
)

func TestRoundTrip(t *testing.T) {
	p := datagen.SAUS()
	p.Files = 5
	files := datagen.Generate(p).Files
	dir := t.TempDir()
	if err := WriteCorpus(dir, files); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(files) {
		t.Fatalf("read %d files, want %d", len(back), len(files))
	}
	for i := range files {
		a, b := files[i], back[i]
		if a.Height() != b.Height() || a.Width() != b.Width() {
			t.Fatalf("file %d: shape %dx%d vs %dx%d", i, a.Height(), a.Width(), b.Height(), b.Width())
		}
		for r := 0; r < a.Height(); r++ {
			if a.LineClasses[r] != b.LineClasses[r] {
				t.Fatalf("file %d line %d: class %v vs %v", i, r, a.LineClasses[r], b.LineClasses[r])
			}
			for c := 0; c < a.Width(); c++ {
				if a.Cell(r, c) != b.Cell(r, c) {
					t.Fatalf("file %d cell (%d,%d): %q vs %q", i, r, c, a.Cell(r, c), b.Cell(r, c))
				}
				if a.CellClasses[r][c] != b.CellClasses[r][c] {
					t.Fatalf("file %d cell class (%d,%d) differs", i, r, c)
				}
			}
		}
	}
}

func TestReadTableWithoutLabels(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plain.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tb, err := ReadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Annotated() {
		t.Error("plain CSV should load unannotated")
	}
	if tb.Cell(1, 1) != "2" {
		t.Errorf("cell = %q", tb.Cell(1, 1))
	}
}

func TestReadTableBadLabels(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.csv")
	os.WriteFile(path, []byte("a,b\n"), 0o644)
	os.WriteFile(path+LabelExt, []byte("data\tdata,data\nextra\tdata,data\n"), 0o644)
	if _, err := ReadTable(path); err == nil {
		t.Error("label line count mismatch should error")
	}
	os.WriteFile(path+LabelExt, []byte("badclass\tdata,data\n"), 0o644)
	if _, err := ReadTable(path); err == nil {
		t.Error("unknown class should error")
	}
	os.WriteFile(path+LabelExt, []byte("data no-tab\n"), 0o644)
	if _, err := ReadTable(path); err == nil {
		t.Error("missing tab should error")
	}
}

func TestMismatchErrorCarriesBothCounts(t *testing.T) {
	dir := t.TempDir()

	// One data line, two label lines: a line-count mismatch.
	path := filepath.Join(dir, "lines.csv")
	os.WriteFile(path, []byte("a,b\n"), 0o644)
	os.WriteFile(path+LabelExt, []byte("data\tdata,data\nnotes\tdata,data\n"), 0o644)
	_, err := ReadTable(path)
	if !errors.Is(err, ErrLabelMismatch) {
		t.Fatalf("err = %v, want ErrLabelMismatch", err)
	}
	var me *MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("err = %v, want *MismatchError", err)
	}
	if me.Dim != "lines" || me.Table != 1 || me.Labels != 2 {
		t.Errorf("MismatchError = %+v, want lines 1 vs 2", me)
	}
	for _, want := range []string{"1", "2", "lines"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("message %q missing %q", err.Error(), want)
		}
	}

	// Two cells per row, three cell labels: a cell-count mismatch.
	path = filepath.Join(dir, "cells.csv")
	os.WriteFile(path, []byte("a,b\n"), 0o644)
	os.WriteFile(path+LabelExt, []byte("data\tdata,data,data\n"), 0o644)
	_, err = ReadTable(path)
	if !errors.As(err, &me) {
		t.Fatalf("err = %v, want *MismatchError", err)
	}
	if me.Dim != "cells" || me.Row != 1 || me.Table != 2 || me.Labels != 3 {
		t.Errorf("MismatchError = %+v, want cells row 1, 2 vs 3", me)
	}
}

func TestReadTableCRLFSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crlf.csv")
	os.WriteFile(path, []byte("a,b\r\n1,2\r\n"), 0o644)
	os.WriteFile(path+LabelExt, []byte("header\theader,header\r\ndata\tdata,data\r\n"), 0o644)
	tb, err := ReadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Annotated() {
		t.Error("CRLF sidecar should still annotate")
	}
	if tb.Provenance == nil || tb.Provenance.LineEndingsNormalized == 0 {
		t.Error("CSV line-ending repair not recorded in provenance")
	}
}

func TestWriteTableNoName(t *testing.T) {
	tb := table.FromRows([][]string{{"x"}})
	if err := WriteTable(t.TempDir(), tb); err == nil {
		t.Error("unnamed table should error")
	}
}

func TestReadCorpusMissingDir(t *testing.T) {
	if _, err := ReadCorpus("/nonexistent/dir"); err == nil {
		t.Error("missing dir should error")
	}
}

func TestWriteCorpusCreatesDir(t *testing.T) {
	p := datagen.SAUS()
	p.Files = 2
	files := datagen.Generate(p).Files
	dir := filepath.Join(t.TempDir(), "nested", "corpus")
	if err := WriteCorpus(dir, files); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(dir)
	if err != nil || len(back) != 2 {
		t.Fatalf("read back %d files, err %v", len(back), err)
	}
}

func TestReadCorpusSkipsNonCSV(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644)
	os.WriteFile(filepath.Join(dir, "a.csv"), []byte("x,y\n"), 0o644)
	files, err := ReadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Errorf("files = %d, want 1", len(files))
	}
}

package corpusio

import (
	"os"
	"path/filepath"
	"testing"

	"strudel/internal/datagen"
	"strudel/internal/table"
)

func TestRoundTrip(t *testing.T) {
	p := datagen.SAUS()
	p.Files = 5
	files := datagen.Generate(p).Files
	dir := t.TempDir()
	if err := WriteCorpus(dir, files); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(files) {
		t.Fatalf("read %d files, want %d", len(back), len(files))
	}
	for i := range files {
		a, b := files[i], back[i]
		if a.Height() != b.Height() || a.Width() != b.Width() {
			t.Fatalf("file %d: shape %dx%d vs %dx%d", i, a.Height(), a.Width(), b.Height(), b.Width())
		}
		for r := 0; r < a.Height(); r++ {
			if a.LineClasses[r] != b.LineClasses[r] {
				t.Fatalf("file %d line %d: class %v vs %v", i, r, a.LineClasses[r], b.LineClasses[r])
			}
			for c := 0; c < a.Width(); c++ {
				if a.Cell(r, c) != b.Cell(r, c) {
					t.Fatalf("file %d cell (%d,%d): %q vs %q", i, r, c, a.Cell(r, c), b.Cell(r, c))
				}
				if a.CellClasses[r][c] != b.CellClasses[r][c] {
					t.Fatalf("file %d cell class (%d,%d) differs", i, r, c)
				}
			}
		}
	}
}

func TestReadTableWithoutLabels(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plain.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tb, err := ReadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Annotated() {
		t.Error("plain CSV should load unannotated")
	}
	if tb.Cell(1, 1) != "2" {
		t.Errorf("cell = %q", tb.Cell(1, 1))
	}
}

func TestReadTableBadLabels(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.csv")
	os.WriteFile(path, []byte("a,b\n"), 0o644)
	os.WriteFile(path+LabelExt, []byte("data\tdata,data\nextra\tdata,data\n"), 0o644)
	if _, err := ReadTable(path); err == nil {
		t.Error("label line count mismatch should error")
	}
	os.WriteFile(path+LabelExt, []byte("badclass\tdata,data\n"), 0o644)
	if _, err := ReadTable(path); err == nil {
		t.Error("unknown class should error")
	}
	os.WriteFile(path+LabelExt, []byte("data no-tab\n"), 0o644)
	if _, err := ReadTable(path); err == nil {
		t.Error("missing tab should error")
	}
}

func TestWriteTableNoName(t *testing.T) {
	tb := table.FromRows([][]string{{"x"}})
	if err := WriteTable(t.TempDir(), tb); err == nil {
		t.Error("unnamed table should error")
	}
}

func TestReadCorpusMissingDir(t *testing.T) {
	if _, err := ReadCorpus("/nonexistent/dir"); err == nil {
		t.Error("missing dir should error")
	}
}

func TestWriteCorpusCreatesDir(t *testing.T) {
	p := datagen.SAUS()
	p.Files = 2
	files := datagen.Generate(p).Files
	dir := filepath.Join(t.TempDir(), "nested", "corpus")
	if err := WriteCorpus(dir, files); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(dir)
	if err != nil || len(back) != 2 {
		t.Fatalf("read back %d files, err %v", len(back), err)
	}
}

func TestReadCorpusSkipsNonCSV(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644)
	os.WriteFile(filepath.Join(dir, "a.csv"), []byte("x,y\n"), 0o644)
	files, err := ReadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Errorf("files = %d, want 1", len(files))
	}
}

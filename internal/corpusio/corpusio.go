// Package corpusio reads and writes annotated corpora on disk.
//
// Each table is stored as a plain CSV file (RFC 4180 dialect) plus a
// sidecar annotation file with the same name and the extension ".labels".
// The sidecar holds one line per table line: the line class, a tab, and the
// comma-separated cell classes. Empty elements use the class name "empty".
// This keeps the data files ordinary CSV that any tool can open, while the
// annotations stay human-diffable.
package corpusio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"strudel/internal/dialect"
	"strudel/internal/ingest"
	"strudel/internal/table"
)

// LabelExt is the sidecar annotation extension.
const LabelExt = ".labels"

// ErrLabelMismatch is the sentinel every label/CSV disagreement wraps;
// dispatch with errors.Is, inspect counts with errors.As on
// *MismatchError.
var ErrLabelMismatch = errors.New("corpusio: labels disagree with CSV")

// A MismatchError reports a label-sidecar whose shape disagrees with its
// CSV: the wrong number of label lines for the table height, or the wrong
// number of cell labels for the table width. Carrying both counts makes
// the misalignment diagnosable instead of silently shifting training
// labels onto the wrong rows.
type MismatchError struct {
	// Path is the CSV file the sidecar belongs to.
	Path string
	// Dim is "lines" for a row-count disagreement, "cells" for a
	// per-row width disagreement.
	Dim string
	// Row is the 1-based row of a cell mismatch (0 for line mismatches).
	Row int
	// Table and Labels are the respective counts that disagree.
	Table, Labels int
}

func (e *MismatchError) Error() string {
	if e.Dim == "lines" {
		return fmt.Sprintf("corpusio: %s: %d label lines for %d table lines", e.Path, e.Labels, e.Table)
	}
	return fmt.Sprintf("corpusio: %s line %d: %d cell labels for width %d", e.Path, e.Row, e.Labels, e.Table)
}

// Unwrap ties every MismatchError to the ErrLabelMismatch sentinel.
func (e *MismatchError) Unwrap() error { return ErrLabelMismatch }

// WriteTable writes t as CSV plus its sidecar annotations (when present)
// into dir, using t.Name's base name.
func WriteTable(dir string, t *table.Table) error {
	base := filepath.Base(t.Name)
	if base == "" || base == "." {
		return fmt.Errorf("corpusio: table has no name")
	}
	rows := make([][]string, t.Height())
	for r := range rows {
		rows[r] = t.Row(r)
	}
	csvPath := filepath.Join(dir, base)
	if err := os.WriteFile(csvPath, []byte(dialect.Join(rows, dialect.Default)), 0o644); err != nil {
		return err
	}
	if !t.Annotated() {
		return nil
	}
	var b strings.Builder
	for r := 0; r < t.Height(); r++ {
		b.WriteString(t.LineClasses[r].String())
		b.WriteByte('\t')
		for c := 0; c < t.Width(); c++ {
			if c > 0 {
				b.WriteByte(',')
			}
			b.WriteString(t.CellClasses[r][c].String())
		}
		b.WriteByte('\n')
	}
	return os.WriteFile(csvPath+LabelExt, []byte(b.String()), 0o644)
}

// WriteCorpus writes every table of files into dir, creating it if needed.
func WriteCorpus(dir string, files []*table.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range files {
		if err := WriteTable(dir, t); err != nil {
			return fmt.Errorf("corpusio: %s: %w", t.Name, err)
		}
	}
	return nil
}

// ReadTable loads one CSV file and, if present, its sidecar annotations.
// The CSV bytes pass through the hardened ingest layer (encoding repair,
// NUL stripping, resource guards), and the sidecar's shape is validated
// against the parsed table before any label is applied: a disagreement is
// a *MismatchError wrapping ErrLabelMismatch, never a silently shifted
// training label.
func ReadTable(csvPath string) (*table.Table, error) {
	res, err := ingest.ReadFile(csvPath, ingest.Options{})
	if err != nil {
		return nil, err
	}
	t := table.FromRows(dialect.Split(res.Text, dialect.Default))
	t.Name = filepath.Base(csvPath)
	t.Provenance = res.Provenance.Clone()

	labRaw, err := os.ReadFile(csvPath + LabelExt)
	if os.IsNotExist(err) {
		return t, nil
	}
	if err != nil {
		return nil, err
	}
	// Normalize the sidecar's line endings the same way the CSV's were, so
	// a CRLF-saved corpus cannot desynchronize from its labels.
	labText := strings.ReplaceAll(string(labRaw), "\r\n", "\n")
	labText = strings.ReplaceAll(labText, "\r", "\n")
	labText = strings.TrimRight(labText, "\n")
	var lines []string
	if labText != "" {
		lines = strings.Split(labText, "\n")
	}
	if len(lines) != t.Height() {
		return nil, &MismatchError{Path: csvPath, Dim: "lines", Table: t.Height(), Labels: len(lines)}
	}
	t.EnsureAnnotations()
	for r, line := range lines {
		lineCls, cellPart, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("corpusio: %s line %d: missing tab", csvPath, r+1)
		}
		cl, err := table.ParseClass(lineCls)
		if err != nil {
			return nil, fmt.Errorf("corpusio: %s line %d: %w", csvPath, r+1, err)
		}
		t.LineClasses[r] = cl
		cells := strings.Split(cellPart, ",")
		if len(cells) != t.Width() {
			return nil, &MismatchError{Path: csvPath, Dim: "cells", Row: r + 1, Table: t.Width(), Labels: len(cells)}
		}
		for c, name := range cells {
			ccl, err := table.ParseClass(name)
			if err != nil {
				return nil, fmt.Errorf("corpusio: %s line %d col %d: %w", csvPath, r+1, c+1, err)
			}
			t.CellClasses[r][c] = ccl
		}
	}
	return t, nil
}

// ReadCorpus loads every .csv file in dir (sorted by name) together with
// available annotations.
func ReadCorpus(dir string) ([]*table.Table, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var out []*table.Table
	for _, name := range names {
		t, err := ReadTable(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

package active

import (
	"testing"

	"strudel/internal/core"
	"strudel/internal/datagen"
	"strudel/internal/ml/forest"
	"strudel/internal/table"
)

func corpora() (pool, test []*table.Table) {
	p := datagen.GovUK()
	p.Files = 24
	files := datagen.Generate(p).Files
	return files[:18], files[18:]
}

func TestRunUncertainty(t *testing.T) {
	pool, test := corpora()
	res, err := Run(pool, test, Uncertainty, Options{
		InitialFiles: 3, Rounds: 3, PerRound: 2, Trees: 15, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accuracy) != 4 { // seed + 3 rounds
		t.Fatalf("accuracy points = %d, want 4", len(res.Accuracy))
	}
	if len(res.Selected) != 6 {
		t.Fatalf("selected = %d files, want 6", len(res.Selected))
	}
	if res.LabeledCounts[0] != 3 || res.LabeledCounts[3] != 9 {
		t.Errorf("labeled counts = %v", res.LabeledCounts)
	}
	for _, a := range res.Accuracy {
		if a <= 0 || a > 1 {
			t.Fatalf("accuracy out of range: %v", res.Accuracy)
		}
	}
	// More labels should help overall (final >= seed, with slack for noise).
	if res.Accuracy[3]+0.05 < res.Accuracy[0] {
		t.Errorf("accuracy degraded: %v", res.Accuracy)
	}
}

func TestRunRandomDiffersFromUncertainty(t *testing.T) {
	pool, test := corpora()
	u, err := Run(pool, test, Uncertainty, Options{Seed: 2, Rounds: 2, Trees: 10})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(pool, test, Random, Options{Seed: 2, Rounds: 2, Trees: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := len(u.Selected) == len(r.Selected)
	if same {
		for i := range u.Selected {
			if u.Selected[i] != r.Selected[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("uncertainty and random selection picked identical files")
	}
}

func TestRunPoolTooSmall(t *testing.T) {
	pool, test := corpora()
	if _, err := Run(pool[:2], test, Uncertainty, Options{InitialFiles: 3}); err == nil {
		t.Error("tiny pool should error")
	}
}

func TestFileUncertaintyRange(t *testing.T) {
	pool, _ := corpora()
	o := core.DefaultLineTrainOptions()
	o.Forest = forest.Options{NumTrees: 10, Seed: 3}
	m, err := core.TrainLine(pool[:6], o)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range pool {
		u := FileUncertainty(m, f)
		if u < 0 || u > 1 {
			t.Fatalf("uncertainty %v out of [0,1]", u)
		}
	}
	// Uncertainty on trained files should be lower on average than on a
	// structurally different corpus.
	troy := datagen.Generate(func() datagen.Profile { p := datagen.Troy(); p.Files = 6; return p }())
	trainU, troyU := 0.0, 0.0
	for _, f := range pool[:6] {
		trainU += FileUncertainty(m, f)
	}
	for _, f := range troy.Files {
		troyU += FileUncertainty(m, f)
	}
	if trainU/6 >= troyU/6 {
		t.Logf("note: in-domain uncertainty %.3f vs out-of-domain %.3f", trainU/6, troyU/6)
	}
}

func TestStrategyString(t *testing.T) {
	if Uncertainty.String() != "uncertainty" || Random.String() != "random" {
		t.Error("strategy names wrong")
	}
}

func TestMarginStrategy(t *testing.T) {
	pool, test := corpora()
	res, err := Run(pool, test, Margin, Options{Seed: 5, Rounds: 2, Trees: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != Margin || len(res.Accuracy) != 3 {
		t.Errorf("result = %+v", res)
	}
}

func TestFileMarginRange(t *testing.T) {
	pool, _ := corpora()
	o := core.DefaultLineTrainOptions()
	o.Forest = forest.Options{NumTrees: 10, Seed: 6}
	m, err := core.TrainLine(pool[:6], o)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range pool {
		v := FileMargin(m, f)
		if v < 0 || v > 1 {
			t.Fatalf("margin %v out of [0,1]", v)
		}
	}
}

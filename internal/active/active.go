// Package active implements file-level active learning for line
// classification, adapting the rule-assisted active learning idea of Chen
// et al. (2017) that the paper reviews in Section 2.2: instead of labeling
// a whole corpus, an annotator labels only the files the current model is
// most uncertain about, and the model is retrained after each round.
//
// Here the "annotator" is the gold annotation already attached to the
// synthetic corpora, so the package measures how quickly uncertainty
// sampling approaches full-corpus quality compared to random sampling.
package active

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"strudel/internal/core"
	"strudel/internal/ml/forest"
	"strudel/internal/table"
)

// Strategy selects which unlabeled files to annotate next.
type Strategy int

const (
	// Uncertainty picks the files whose lines the model is least sure
	// about (highest mean 1 - max class probability).
	Uncertainty Strategy = iota
	// Random picks files uniformly at random (the baseline).
	Random
	// Margin picks the files with the smallest mean gap between the top
	// two class probabilities — a finer-grained uncertainty notion that
	// distinguishes "confidently torn between two classes" from "diffusely
	// unsure".
	Margin
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Uncertainty:
		return "uncertainty"
	case Margin:
		return "margin"
	default:
		return "random"
	}
}

// Options configures an active learning run.
type Options struct {
	// InitialFiles seeds the labeled pool; 0 means 3.
	InitialFiles int
	// Rounds is the number of selection rounds; 0 means 5.
	Rounds int
	// PerRound is how many files are labeled each round; 0 means 2.
	PerRound int
	// Trees is the forest size for the intermediate models; 0 means 30.
	Trees int
	// Seed drives the initial selection and the Random strategy.
	Seed int64
}

// Result records the progression of one run.
type Result struct {
	Strategy Strategy
	// Accuracy[i] is the test line accuracy after round i (index 0 is the
	// seed model, before any selection).
	Accuracy []float64
	// LabeledCounts[i] is the number of labeled files behind Accuracy[i].
	LabeledCounts []int
	// Selected lists the file names chosen across rounds, in order.
	Selected []string
}

// Run executes an active learning loop: train on the labeled seed, select
// files from pool by the strategy, move them (with their gold labels) into
// the training set, retrain, and measure line accuracy on test after every
// round.
func Run(pool, test []*table.Table, strategy Strategy, opts Options) (*Result, error) {
	if opts.InitialFiles <= 0 {
		opts.InitialFiles = 3
	}
	if opts.Rounds <= 0 {
		opts.Rounds = 5
	}
	if opts.PerRound <= 0 {
		opts.PerRound = 2
	}
	if opts.Trees <= 0 {
		opts.Trees = 30
	}
	if len(pool) <= opts.InitialFiles {
		return nil, errors.New("active: pool too small for the initial seed")
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	order := rng.Perm(len(pool))
	var labeled []*table.Table
	var unlabeled []*table.Table
	for i, p := range order {
		if i < opts.InitialFiles {
			labeled = append(labeled, pool[p])
		} else {
			unlabeled = append(unlabeled, pool[p])
		}
	}

	res := &Result{Strategy: strategy}
	train := func(round int) (*core.LineModel, error) {
		o := core.DefaultLineTrainOptions()
		o.Forest = forest.Options{NumTrees: opts.Trees, Seed: opts.Seed + int64(round)}
		return core.TrainLine(labeled, o)
	}
	record := func(m *core.LineModel) {
		res.Accuracy = append(res.Accuracy, lineAccuracy(m, test))
		res.LabeledCounts = append(res.LabeledCounts, len(labeled))
	}

	model, err := train(0)
	if err != nil {
		return nil, err
	}
	record(model)

	for round := 1; round <= opts.Rounds && len(unlabeled) > 0; round++ {
		k := opts.PerRound
		if k > len(unlabeled) {
			k = len(unlabeled)
		}
		var picks []int
		switch strategy {
		case Uncertainty:
			picks = topBy(unlabeled, k, func(f *table.Table) float64 {
				return FileUncertainty(model, f)
			})
		case Margin:
			picks = topBy(unlabeled, k, func(f *table.Table) float64 {
				return -FileMargin(model, f) // smallest margin first
			})
		case Random:
			picks = rng.Perm(len(unlabeled))[:k]
			sort.Ints(picks)
		default:
			return nil, fmt.Errorf("active: unknown strategy %d", strategy)
		}
		// Move picks from unlabeled to labeled (descending removal).
		sort.Sort(sort.Reverse(sort.IntSlice(picks)))
		for _, i := range picks {
			res.Selected = append(res.Selected, unlabeled[i].Name)
			labeled = append(labeled, unlabeled[i])
			unlabeled = append(unlabeled[:i], unlabeled[i+1:]...)
		}
		if model, err = train(round); err != nil {
			return nil, err
		}
		record(model)
	}
	return res, nil
}

// topBy returns the indices of the k files with the highest score.
func topBy(files []*table.Table, k int, score func(*table.Table) float64) []int {
	type scored struct {
		idx int
		u   float64
	}
	all := make([]scored, len(files))
	for i, f := range files {
		all[i] = scored{i, score(f)}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].u > all[b].u })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].idx
	}
	return out
}

// FileMargin is the mean gap between the top two class probabilities over
// the non-empty lines of a file; small margins mean hard decisions.
func FileMargin(m *core.LineModel, f *table.Table) float64 {
	probs := m.Probabilities(f)
	sum, n := 0.0, 0
	for r := 0; r < f.Height(); r++ {
		if f.IsEmptyLine(r) {
			continue
		}
		best, second := 0.0, 0.0
		for _, p := range probs[r] {
			if p > best {
				best, second = p, best
			} else if p > second {
				second = p
			}
		}
		sum += best - second
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// FileUncertainty is the mean (1 - max class probability) over the
// non-empty lines of a file — the sheet-selection criterion.
func FileUncertainty(m *core.LineModel, f *table.Table) float64 {
	probs := m.Probabilities(f)
	sum, n := 0.0, 0
	for r := 0; r < f.Height(); r++ {
		if f.IsEmptyLine(r) {
			continue
		}
		maxP := 0.0
		for _, p := range probs[r] {
			if p > maxP {
				maxP = p
			}
		}
		sum += 1 - maxP
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// lineAccuracy is the fraction of annotated lines classified correctly.
func lineAccuracy(m *core.LineModel, files []*table.Table) float64 {
	correct, total := 0, 0
	for _, f := range files {
		pred := m.Classify(f)
		for r := 0; r < f.Height(); r++ {
			if f.LineClasses[r].Index() < 0 {
				continue
			}
			total++
			if pred[r] == f.LineClasses[r] {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

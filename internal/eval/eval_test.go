package eval

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"strudel/internal/core"
	"strudel/internal/datagen"
	"strudel/internal/ml/forest"
	"strudel/internal/table"
)

func TestCountsScoresPerfect(t *testing.T) {
	var c Counts
	for _, cl := range table.Classes {
		c.Add(cl, cl)
	}
	s := c.Scores()
	if s.Accuracy != 1 || s.MacroF1 != 1 {
		t.Errorf("accuracy=%v macro=%v, want 1", s.Accuracy, s.MacroF1)
	}
	for i := range s.F1 {
		if s.F1[i] != 1 {
			t.Errorf("F1[%d] = %v", i, s.F1[i])
		}
	}
}

func TestCountsScoresKnownValues(t *testing.T) {
	var c Counts
	// data: 3 gold, 2 predicted correctly, 1 predicted header.
	c.Add(table.ClassData, table.ClassData)
	c.Add(table.ClassData, table.ClassData)
	c.Add(table.ClassHeader, table.ClassData)
	// header: 1 gold, predicted data.
	c.Add(table.ClassData, table.ClassHeader)
	s := c.Scores()

	d := table.ClassData.Index()
	h := table.ClassHeader.Index()
	// data: P = 2/3, R = 2/3, F1 = 2/3.
	if math.Abs(s.F1[d]-2.0/3) > 1e-9 {
		t.Errorf("data F1 = %v, want 2/3", s.F1[d])
	}
	// header: P = 0, R = 0.
	if s.F1[h] != 0 {
		t.Errorf("header F1 = %v, want 0", s.F1[h])
	}
	if math.Abs(s.Accuracy-0.5) > 1e-9 {
		t.Errorf("accuracy = %v, want 0.5", s.Accuracy)
	}
	// Macro over the two supported classes: (2/3 + 0)/2 = 1/3.
	if math.Abs(s.MacroF1-1.0/3) > 1e-9 {
		t.Errorf("macro = %v, want 1/3", s.MacroF1)
	}
}

func TestCountsIgnoresEmptyGold(t *testing.T) {
	var c Counts
	c.Add(table.ClassData, table.ClassEmpty)
	if c.Total != 0 {
		t.Error("empty gold must not count")
	}
}

func TestConfusionNormalized(t *testing.T) {
	m := &Confusion{}
	m.Add(table.ClassData, table.ClassData)
	m.Add(table.ClassData, table.ClassData)
	m.Add(table.ClassHeader, table.ClassData)
	m.Add(table.ClassData, table.ClassDerived)
	norm := m.Normalized()
	d := table.ClassData.Index()
	h := table.ClassHeader.Index()
	dv := table.ClassDerived.Index()
	if math.Abs(norm[d][d]-2.0/3) > 1e-9 || math.Abs(norm[d][h]-1.0/3) > 1e-9 {
		t.Errorf("data row = %v", norm[d])
	}
	if norm[dv][d] != 1 {
		t.Errorf("derived row = %v", norm[dv])
	}
	// Row sums are 0 or 1.
	for g := range norm {
		sum := 0.0
		for _, v := range norm[g] {
			sum += v
		}
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", g, sum)
		}
	}
}

func TestMajorityVoteTieBreaksToRareClass(t *testing.T) {
	var votes [table.NumClasses]int
	votes[table.ClassData.Index()] = 5
	votes[table.ClassDerived.Index()] = 5
	var freq [table.NumClasses]int
	freq[table.ClassData.Index()] = 1000
	freq[table.ClassDerived.Index()] = 10
	got, ok := majorityVote(votes, freq)
	if !ok || got != table.ClassDerived {
		t.Errorf("tie vote = %v, want derived", got)
	}
}

func TestMajorityVoteNoVotes(t *testing.T) {
	var votes, freq [table.NumClasses]int
	if _, ok := majorityVote(votes, freq); ok {
		t.Error("no votes should report !ok")
	}
}

func TestAssignFoldsBalanced(t *testing.T) {
	rng := newRng(1)
	folds := assignFolds(25, 10, rng)
	counts := map[int]int{}
	for _, f := range folds {
		counts[f]++
	}
	if len(counts) != 10 {
		t.Fatalf("%d folds used, want 10", len(counts))
	}
	for f, n := range counts {
		if n < 2 || n > 3 {
			t.Errorf("fold %d has %d files", f, n)
		}
	}
}

func corpusFiles(n int) []*table.Table {
	p := datagen.SAUS()
	p.Files = n
	return datagen.Generate(p).Files
}

func strudelTrainer(opts core.LineTrainOptions) LineTrainer {
	return func(train []*table.Table, seed int64) (LineClassifier, error) {
		o := opts
		o.Forest.Seed = seed
		return core.TrainLine(train, o)
	}
}

func TestCrossValidateLines(t *testing.T) {
	files := corpusFiles(20)
	opts := core.DefaultLineTrainOptions()
	opts.Forest = forest.Options{NumTrees: 10}
	res, err := CrossValidateLines(files, strudelTrainer(opts), CVOptions{Folds: 4, Repeats: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Scores()
	if s.Accuracy < 0.8 {
		t.Errorf("CV accuracy = %v, want >= 0.8", s.Accuracy)
	}
	if s.F1[table.ClassData.Index()] < 0.9 {
		t.Errorf("data F1 = %v", s.F1[table.ClassData.Index()])
	}
	// Every annotated line scored in every repetition: total = 2 * lines.
	lines := 0
	for _, f := range files {
		for r := 0; r < f.Height(); r++ {
			if f.LineClasses[r].Index() >= 0 {
				lines++
			}
		}
	}
	if res.counts.Total != 2*lines {
		t.Errorf("scored %d elements, want %d", res.counts.Total, 2*lines)
	}
	conf := res.Confusion()
	norm := conf.Normalized()
	d := table.ClassData.Index()
	if norm[d][d] < 0.9 {
		t.Errorf("confusion data-data = %v", norm[d][d])
	}
}

func TestCrossValidateLinesSkipClasses(t *testing.T) {
	files := corpusFiles(12)
	opts := core.DefaultLineTrainOptions()
	opts.Forest = forest.Options{NumTrees: 5}
	res, err := CrossValidateLines(files, strudelTrainer(opts),
		CVOptions{Folds: 3, Repeats: 1, Seed: 2, SkipGoldClasses: []table.Class{table.ClassDerived}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores().Support[table.ClassDerived.Index()] != 0 {
		t.Error("derived gold lines should be excluded from scoring")
	}
}

func TestCrossValidateTooFewFiles(t *testing.T) {
	files := corpusFiles(3)
	opts := core.DefaultLineTrainOptions()
	if _, err := CrossValidateLines(files, strudelTrainer(opts), CVOptions{Folds: 10}); err == nil {
		t.Error("3 files in 10 folds should error")
	}
}

func TestCrossValidateCells(t *testing.T) {
	files := corpusFiles(12)
	trainer := func(train []*table.Table, seed int64) (CellClassifier, error) {
		o := core.DefaultCellTrainOptions()
		o.Forest = forest.Options{NumTrees: 8, Seed: seed}
		o.Line.Forest = forest.Options{NumTrees: 8, Seed: seed}
		o.MaxCellsPerFile = 150
		return core.TrainCell(train, o)
	}
	res, err := CrossValidateCells(files, trainer, CVOptions{Folds: 3, Repeats: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Scores()
	if s.Accuracy < 0.75 {
		t.Errorf("cell CV accuracy = %v, want >= 0.75", s.Accuracy)
	}
	if res.Confusion() == nil {
		t.Error("nil confusion")
	}
}

func TestEvaluateOnHeldOut(t *testing.T) {
	train := corpusFiles(15)
	testP := datagen.Troy()
	testP.Files = 5
	test := datagen.Generate(testP).Files

	opts := core.DefaultLineTrainOptions()
	opts.Forest = forest.Options{NumTrees: 10, Seed: 4}
	m, err := core.TrainLine(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := EvaluateLinesOn(m, test)
	if s.Accuracy < 0.6 {
		t.Errorf("out-of-domain accuracy = %v, want >= 0.6", s.Accuracy)
	}
}

func TestPermutationImportance(t *testing.T) {
	// Feature 0 fully determines a binary task; feature 1 is noise.
	X := make([][]float64, 200)
	y := make([]int, 200)
	rng := newRng(5)
	for i := range X {
		cls := i % 2
		X[i] = []float64{float64(cls), rng.Float64()}
		if cls == 1 {
			y[i] = table.ClassData.Index()
		} else {
			y[i] = table.ClassHeader.Index()
		}
	}
	imp, err := PermutationImportance(X, y, ImportanceOptions{
		Repeats: 3, Forest: forest.Options{NumTrees: 10}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := table.ClassData.Index()
	if imp[d][0] <= imp[d][1] {
		t.Errorf("informative feature importance %v should beat noise %v", imp[d][0], imp[d][1])
	}
	// Classes with no instances have all-zero importance.
	g := table.ClassGroup.Index()
	for f := range imp[g] {
		if imp[g][f] != 0 {
			t.Errorf("absent class has importance %v at feature %d", imp[g][f], f)
		}
	}
}

func TestNormalizeImportance(t *testing.T) {
	imp := [][]float64{{2, 2}, {0, 0}}
	norm := NormalizeImportance(imp)
	if norm[0][0] != 0.5 || norm[0][1] != 0.5 {
		t.Errorf("row 0 = %v", norm[0])
	}
	if norm[1][0] != 0 || norm[1][1] != 0 {
		t.Errorf("all-zero row should stay zero: %v", norm[1])
	}
}

func TestGroupImportance(t *testing.T) {
	imp := [][]float64{{1, 2, 3, 4}}
	names := []string{"a", "n1", "n2", "b"}
	gNames, gImp := GroupImportance(imp, names, map[string][]int{"N": {1, 2}})
	if len(gNames) != 3 {
		t.Fatalf("names = %v", gNames)
	}
	want := map[string]float64{"a": 1, "N": 5, "b": 4}
	for i, n := range gNames {
		if gImp[0][i] != want[n] {
			t.Errorf("group %s = %v, want %v", n, gImp[0][i], want[n])
		}
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestMacroF1MeanStd(t *testing.T) {
	files := corpusFiles(12)
	opts := core.DefaultLineTrainOptions()
	opts.Forest = forest.Options{NumTrees: 8}
	res, err := CrossValidateLines(files, strudelTrainer(opts), CVOptions{Folds: 3, Repeats: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mean, std := res.MacroF1MeanStd()
	if mean <= 0 || mean > 1 {
		t.Errorf("mean = %v out of (0,1]", mean)
	}
	if std < 0 || std > 0.5 {
		t.Errorf("std = %v implausible", std)
	}
	// Pooled macro should be in the vicinity of the per-repeat mean.
	pooled := res.Scores().MacroF1
	if math.Abs(pooled-mean) > 0.2 {
		t.Errorf("pooled macro %v far from repeat mean %v", pooled, mean)
	}
}

func TestMacroMeanStdEmpty(t *testing.T) {
	mean, std := macroMeanStd(nil)
	if mean != 0 || std != 0 {
		t.Errorf("empty repeats should give 0, 0; got %v, %v", mean, std)
	}
}

func TestPermutationImportanceEmpty(t *testing.T) {
	if _, err := PermutationImportance(nil, nil, DefaultImportanceOptions()); err == nil {
		t.Error("empty input should error")
	}
}

func TestScoresString(t *testing.T) {
	var c Counts
	c.Add(table.ClassData, table.ClassData)
	s := c.Scores().String()
	if !strings.Contains(s, "acc") || !strings.Contains(s, "macro") {
		t.Errorf("String() = %q", s)
	}
}

func TestConfusionString(t *testing.T) {
	m := &Confusion{}
	m.Add(table.ClassData, table.ClassData)
	out := m.String()
	if !strings.Contains(out, "data") {
		t.Errorf("String() missing class names: %q", out)
	}
}

// TestCrossValidateParallelismDeterministic runs the same CV serially and
// with eight workers; the pooled counts, per-repeat counts, and ensemble
// votes must be identical (fold assignment, per-task seeds, and score
// aggregation are all fixed in task order).
func TestCrossValidateParallelismDeterministic(t *testing.T) {
	files := corpusFiles(16)
	opts := core.DefaultLineTrainOptions()
	opts.Forest = forest.Options{NumTrees: 8, Seed: 1}

	run := func(par int) *LineCVResult {
		res, err := CrossValidateLines(files, strudelTrainer(opts),
			CVOptions{Folds: 4, Repeats: 2, Seed: 11, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)

	if serial.counts != parallel.counts {
		t.Error("pooled counts differ between serial and parallel CV")
	}
	if !reflect.DeepEqual(serial.repeatCounts, parallel.repeatCounts) {
		t.Error("per-repeat counts differ between serial and parallel CV")
	}
	if !reflect.DeepEqual(serial.votes, parallel.votes) {
		t.Error("ensemble votes differ between serial and parallel CV")
	}
	m1, m2 := serial.Scores().MacroF1, parallel.Scores().MacroF1
	if m1 != m2 {
		t.Errorf("macro F1 differs: %v vs %v", m1, m2)
	}
}

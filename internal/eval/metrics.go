// Package eval implements the paper's evaluation protocol: per-class F1 /
// accuracy / macro-average scoring, file-grouped repeated 10-fold
// cross-validation, ensemble confusion matrices (Figure 3), and one-vs-rest
// permutation feature importance (Figure 4).
package eval

import (
	"fmt"
	"strings"

	"strudel/internal/table"
)

// Counts accumulates per-class true/false positives and negatives over any
// number of predictions.
type Counts struct {
	TP, FP, FN [table.NumClasses]int
	Correct    int
	Total      int
}

// Add records one prediction against its gold class. Elements whose gold
// class is ClassEmpty are ignored (they are not elements at all).
func (c *Counts) Add(pred, gold table.Class) {
	g := gold.Index()
	if g < 0 {
		return
	}
	p := pred.Index()
	c.Total++
	if p == g {
		c.Correct++
		c.TP[g]++
		return
	}
	c.FN[g]++
	if p >= 0 {
		c.FP[p]++
	}
}

// Scores derives the final measurements from the accumulated counts.
func (c *Counts) Scores() Scores {
	var s Scores
	macro, n := 0.0, 0
	for i := 0; i < table.NumClasses; i++ {
		tp, fp, fn := float64(c.TP[i]), float64(c.FP[i]), float64(c.FN[i])
		if tp+fp > 0 {
			s.Precision[i] = tp / (tp + fp)
		}
		if tp+fn > 0 {
			s.Recall[i] = tp / (tp + fn)
		}
		if s.Precision[i]+s.Recall[i] > 0 {
			s.F1[i] = 2 * s.Precision[i] * s.Recall[i] / (s.Precision[i] + s.Recall[i])
		}
		s.Support[i] = c.TP[i] + c.FN[i]
		if s.Support[i] > 0 {
			macro += s.F1[i]
			n++
		}
	}
	if n > 0 {
		s.MacroF1 = macro / float64(n)
	}
	if c.Total > 0 {
		s.Accuracy = float64(c.Correct) / float64(c.Total)
	}
	return s
}

// Scores holds the evaluation measurements reported in the paper's tables:
// per-class F1 (plus precision/recall), overall accuracy, and the macro
// average over classes with support.
type Scores struct {
	F1        [table.NumClasses]float64
	Precision [table.NumClasses]float64
	Recall    [table.NumClasses]float64
	Support   [table.NumClasses]int
	Accuracy  float64
	MacroF1   float64
}

// String renders the scores as one table row (per-class F1, accuracy,
// macro-avg), in the column order of Table 6.
func (s Scores) String() string {
	var b strings.Builder
	for i := range s.F1 {
		fmt.Fprintf(&b, "%.3f ", s.F1[i])
	}
	fmt.Fprintf(&b, "| acc %.3f | macro %.3f", s.Accuracy, s.MacroF1)
	return b.String()
}

// Confusion is a class-by-class confusion matrix; rows are actual classes,
// columns predicted, in canonical class order.
type Confusion struct {
	Counts [table.NumClasses][table.NumClasses]int
}

// Add records one (gold, predicted) pair. Pairs whose gold class is
// ClassEmpty, or whose prediction is ClassEmpty, are ignored.
func (m *Confusion) Add(pred, gold table.Class) {
	g, p := gold.Index(), pred.Index()
	if g < 0 || p < 0 {
		return
	}
	m.Counts[g][p]++
}

// Normalized returns the matrix with each row divided by its total (the
// per-class normalization used in Figure 3). Empty rows stay zero.
func (m *Confusion) Normalized() [table.NumClasses][table.NumClasses]float64 {
	var out [table.NumClasses][table.NumClasses]float64
	for g := range m.Counts {
		total := 0
		for _, v := range m.Counts[g] {
			total += v
		}
		if total == 0 {
			continue
		}
		for p, v := range m.Counts[g] {
			out[g][p] = float64(v) / float64(total)
		}
	}
	return out
}

// String renders the normalized matrix with class names.
func (m *Confusion) String() string {
	norm := m.Normalized()
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range table.Classes {
		fmt.Fprintf(&b, "%-10s", c)
	}
	b.WriteByte('\n')
	for g, row := range norm {
		fmt.Fprintf(&b, "%-10s", table.ClassAt(g))
		for _, v := range row {
			fmt.Fprintf(&b, "%-10.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package eval

import (
	"errors"
	"math/rand"

	"strudel/internal/ml/forest"
	"strudel/internal/table"
)

// ImportanceOptions configures permutation feature importance.
type ImportanceOptions struct {
	// Repeats is how many times each feature is permuted; the paper uses 5.
	Repeats int
	// Forest configures the one-vs-rest binary forests.
	Forest forest.Options
	Seed   int64
}

// DefaultImportanceOptions mirrors the paper (5 permutation repeats).
func DefaultImportanceOptions() ImportanceOptions {
	return ImportanceOptions{Repeats: 5, Forest: forest.Options{NumTrees: 50}}
}

// PermutationImportance computes per-class permutation feature importance
// in the one-vs-rest fashion of Section 6.3.5: for every class a binary
// forest is trained, and each feature's importance is the drop in the
// positive-class F1 when that feature's column is shuffled, averaged over
// Repeats permutations. The result is indexed [class][feature]; negative
// drops are clamped to zero.
func PermutationImportance(X [][]float64, y []int, opts ImportanceOptions) ([][]float64, error) {
	if len(X) == 0 {
		return nil, errors.New("eval: no samples for importance")
	}
	if opts.Repeats <= 0 {
		opts.Repeats = 5
	}
	nf := len(X[0])
	out := make([][]float64, table.NumClasses)
	rng := rand.New(rand.NewSource(opts.Seed))

	for cls := 0; cls < table.NumClasses; cls++ {
		out[cls] = make([]float64, nf)
		// One-vs-rest labels.
		yb := make([]int, len(y))
		pos := 0
		for i, label := range y {
			if label == cls {
				yb[i] = 1
				pos++
			}
		}
		if pos == 0 || pos == len(y) {
			continue // class absent (or universal): no signal to attribute
		}
		fopts := opts.Forest
		fopts.Seed = opts.Seed + int64(cls)
		model, err := forest.Fit(X, yb, 2, fopts)
		if err != nil {
			return nil, err
		}
		base := binaryF1(model, X, yb)

		col := make([]float64, len(X))
		perm := make([]int, len(X))
		for f := 0; f < nf; f++ {
			for i := range X {
				col[i] = X[i][f]
			}
			drop := 0.0
			for rep := 0; rep < opts.Repeats; rep++ {
				copyPerm(perm, rng)
				for i := range X {
					X[i][f] = col[perm[i]]
				}
				drop += base - binaryF1(model, X, yb)
			}
			// Restore the column.
			for i := range X {
				X[i][f] = col[i]
			}
			imp := drop / float64(opts.Repeats)
			if imp > 0 {
				out[cls][f] = imp
			}
		}
	}
	return out, nil
}

func copyPerm(perm []int, rng *rand.Rand) {
	for i := range perm {
		perm[i] = i
	}
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
}

// binaryF1 is the F1 of the positive class of a binary forest on (X, y).
func binaryF1(m *forest.Forest, X [][]float64, y []int) float64 {
	pred := m.PredictBatch(X)
	tp, fp, fn := 0, 0, 0
	for i := range y {
		switch {
		case pred[i] == 1 && y[i] == 1:
			tp++
		case pred[i] == 1 && y[i] == 0:
			fp++
		case pred[i] == 0 && y[i] == 1:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}

// NormalizeImportance scales each class's importances to sum to 1 (the
// 100%-stacked-bar presentation of Figure 4). All-zero rows stay zero.
func NormalizeImportance(imp [][]float64) [][]float64 {
	out := make([][]float64, len(imp))
	for c, row := range imp {
		out[c] = make([]float64, len(row))
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		//lint:ignore floatcmp sum of clamped non-negative importances; exact zero means the all-zero sentinel row
		if sum == 0 {
			continue
		}
		for f, v := range row {
			out[c][f] = v / sum
		}
	}
	return out
}

// GroupImportance merges feature columns into named groups by summing their
// importances — used to fold the 16 neighbor-profile features into two
// groups as in Figure 4. groups maps a group name to feature indices;
// features not covered by any group keep their own name. The result is a
// parallel pair of (names, values-per-class).
func GroupImportance(imp [][]float64, featureNames []string, groups map[string][]int) ([]string, [][]float64) {
	covered := map[int]string{}
	for name, idxs := range groups {
		for _, i := range idxs {
			covered[i] = name
		}
	}
	var names []string
	index := map[string]int{}
	for f, n := range featureNames {
		name := n
		if g, ok := covered[f]; ok {
			name = g
		}
		if _, seen := index[name]; !seen {
			index[name] = len(names)
			names = append(names, name)
		}
	}
	out := make([][]float64, len(imp))
	for c, row := range imp {
		out[c] = make([]float64, len(names))
		for f, v := range row {
			name := featureNames[f]
			if g, ok := covered[f]; ok {
				name = g
			}
			out[c][index[name]] += v
		}
	}
	return names, out
}

package eval

import (
	"fmt"
	"math"
	"math/rand"

	"strudel/internal/pipeline"
	"strudel/internal/table"
)

// LineClassifier predicts one class per line of a table.
type LineClassifier interface {
	Classify(t *table.Table) []table.Class
}

// CellClassifier predicts one class per cell of a table.
type CellClassifier interface {
	Classify(t *table.Table) [][]table.Class
}

// LineTrainer builds a line classifier from a training split. The seed
// varies across CV repetitions so stochastic trainers decorrelate.
type LineTrainer func(train []*table.Table, seed int64) (LineClassifier, error)

// CellTrainer builds a cell classifier from a training split.
type CellTrainer func(train []*table.Table, seed int64) (CellClassifier, error)

// CVOptions configures cross-validation. The paper uses 10 folds repeated
// 10 times, grouping all elements of a file into the same side of the split.
type CVOptions struct {
	Folds   int // 0 means 10
	Repeats int // 0 means 10
	Seed    int64
	// SkipGoldClasses are gold classes excluded from scoring (used for
	// Pytheas^L, which has no derived class: Section 6.2.1 leaves derived
	// lines out of its measurements).
	SkipGoldClasses []table.Class
	// Parallelism bounds the worker pool running the independent
	// (repeat, fold) train/predict tasks (0 = all CPUs). Fold assignment,
	// per-task seeds, and score aggregation are fixed up front and applied
	// in task order, so every parallelism level yields identical results.
	Parallelism int
}

func (o *CVOptions) fill() {
	if o.Folds <= 0 {
		o.Folds = 10
	}
	if o.Repeats <= 0 {
		o.Repeats = 10
	}
}

// LineCVResult aggregates a repeated cross-validation run on the line task.
type LineCVResult struct {
	counts       Counts
	repeatCounts []Counts
	// votes[file][row][class] tallies the predictions of every repetition,
	// backing the ensemble confusion matrix of Figure 3.
	votes     [][][table.NumClasses]int
	files     []*table.Table
	classFreq [table.NumClasses]int
}

// CrossValidateLines runs file-grouped repeated k-fold cross-validation on
// the line classification task.
func CrossValidateLines(files []*table.Table, trainer LineTrainer, opts CVOptions) (*LineCVResult, error) {
	opts.fill()
	if len(files) < opts.Folds {
		return nil, fmt.Errorf("eval: %d files cannot fill %d folds", len(files), opts.Folds)
	}
	res := &LineCVResult{files: files}
	res.votes = make([][][table.NumClasses]int, len(files))
	for i, f := range files {
		res.votes[i] = make([][table.NumClasses]int, f.Height())
		for r := 0; r < f.Height(); r++ {
			if idx := f.LineClasses[r].Index(); idx >= 0 {
				res.classFreq[idx]++
			}
		}
	}

	skip := skipSet(opts.SkipGoldClasses)
	res.repeatCounts = make([]Counts, opts.Repeats)

	// Every (repeat, fold) pair trains and predicts independently; only the
	// scoring is order-sensitive. Fold assignments are drawn sequentially up
	// front (preserving the serial rng stream), the tasks fan out over a
	// bounded pool, and aggregation replays their predictions in task order
	// so results are identical at every parallelism level.
	type linePred struct {
		file int
		pred []table.Class
	}
	folds := drawFolds(len(files), opts)
	nTasks := opts.Repeats * opts.Folds
	taskPreds := make([][]linePred, nTasks)
	taskErrs := make([]error, nTasks)
	pipeline.ForEach(nTasks, opts.Parallelism, func(ti int) {
		rep, fold := ti/opts.Folds, ti%opts.Folds
		train, test := split(files, folds[rep], fold)
		model, err := trainer(train, opts.Seed+int64(ti))
		if err != nil {
			taskErrs[ti] = fmt.Errorf("eval: fold %d repeat %d: %w", fold, rep, err)
			return
		}
		for _, fi := range test {
			taskPreds[ti] = append(taskPreds[ti], linePred{fi, model.Classify(files[fi])})
		}
	})
	for _, err := range taskErrs {
		if err != nil {
			return nil, err
		}
	}

	for ti := 0; ti < nTasks; ti++ {
		rep := ti / opts.Folds
		for _, tp := range taskPreds[ti] {
			f := files[tp.file]
			for r := 0; r < f.Height(); r++ {
				gold := f.LineClasses[r]
				if gold.Index() < 0 || skip[gold] {
					continue
				}
				res.counts.Add(tp.pred[r], gold)
				res.repeatCounts[rep].Add(tp.pred[r], gold)
				if pi := tp.pred[r].Index(); pi >= 0 {
					res.votes[tp.file][r][pi]++
				}
			}
		}
	}
	return res, nil
}

// drawFolds pre-draws the shuffled fold assignment of every repetition from
// one sequential rng stream, exactly as the serial loop did.
func drawFolds(n int, opts CVOptions) [][]int {
	rng := rand.New(rand.NewSource(opts.Seed))
	out := make([][]int, opts.Repeats)
	for rep := range out {
		out[rep] = assignFolds(n, opts.Folds, rng)
	}
	return out
}

// MacroF1MeanStd returns the mean and standard deviation of the
// macro-average F1 across the CV repetitions, quantifying fold-split
// sensitivity.
func (r *LineCVResult) MacroF1MeanStd() (mean, std float64) {
	return macroMeanStd(r.repeatCounts)
}

// Scores returns the measurements pooled over every repetition.
func (r *LineCVResult) Scores() Scores { return r.counts.Scores() }

// Confusion builds the ensemble confusion matrix: per line, the repeated
// predictions are reduced by majority vote, with ties resolved in favor of
// the rarer class (Section 6.3.1).
func (r *LineCVResult) Confusion() *Confusion {
	m := &Confusion{}
	for fi, f := range r.files {
		for row := 0; row < f.Height(); row++ {
			gold := f.LineClasses[row]
			if gold.Index() < 0 {
				continue
			}
			if pred, ok := majorityVote(r.votes[fi][row], r.classFreq); ok {
				m.Add(pred, gold)
			}
		}
	}
	return m
}

// CellCVResult aggregates a repeated cross-validation run on the cell task.
type CellCVResult struct {
	counts       Counts
	repeatCounts []Counts
	votes        [][][table.NumClasses]int // [file][row*width+col][class]
	files        []*table.Table
	classFreq    [table.NumClasses]int
}

// CrossValidateCells runs file-grouped repeated k-fold cross-validation on
// the cell classification task.
func CrossValidateCells(files []*table.Table, trainer CellTrainer, opts CVOptions) (*CellCVResult, error) {
	opts.fill()
	if len(files) < opts.Folds {
		return nil, fmt.Errorf("eval: %d files cannot fill %d folds", len(files), opts.Folds)
	}
	res := &CellCVResult{files: files}
	res.votes = make([][][table.NumClasses]int, len(files))
	for i, f := range files {
		res.votes[i] = make([][table.NumClasses]int, f.Height()*f.Width())
		for r := 0; r < f.Height(); r++ {
			for c := 0; c < f.Width(); c++ {
				if idx := f.CellClasses[r][c].Index(); idx >= 0 && !f.IsEmptyCell(r, c) {
					res.classFreq[idx]++
				}
			}
		}
	}

	skip := skipSet(opts.SkipGoldClasses)
	res.repeatCounts = make([]Counts, opts.Repeats)

	// Same fan-out/replay scheme as CrossValidateLines: independent
	// (repeat, fold) tasks on a bounded pool, deterministic aggregation.
	type cellPred struct {
		file int
		pred [][]table.Class
	}
	folds := drawFolds(len(files), opts)
	nTasks := opts.Repeats * opts.Folds
	taskPreds := make([][]cellPred, nTasks)
	taskErrs := make([]error, nTasks)
	pipeline.ForEach(nTasks, opts.Parallelism, func(ti int) {
		rep, fold := ti/opts.Folds, ti%opts.Folds
		train, test := split(files, folds[rep], fold)
		model, err := trainer(train, opts.Seed+int64(ti))
		if err != nil {
			taskErrs[ti] = fmt.Errorf("eval: fold %d repeat %d: %w", fold, rep, err)
			return
		}
		for _, fi := range test {
			taskPreds[ti] = append(taskPreds[ti], cellPred{fi, model.Classify(files[fi])})
		}
	})
	for _, err := range taskErrs {
		if err != nil {
			return nil, err
		}
	}

	for ti := 0; ti < nTasks; ti++ {
		rep := ti / opts.Folds
		for _, tp := range taskPreds[ti] {
			f := files[tp.file]
			for row := 0; row < f.Height(); row++ {
				for col := 0; col < f.Width(); col++ {
					gold := f.CellClasses[row][col]
					if gold.Index() < 0 || f.IsEmptyCell(row, col) || skip[gold] {
						continue
					}
					res.counts.Add(tp.pred[row][col], gold)
					res.repeatCounts[rep].Add(tp.pred[row][col], gold)
					if pi := tp.pred[row][col].Index(); pi >= 0 {
						res.votes[tp.file][row*f.Width()+col][pi]++
					}
				}
			}
		}
	}
	return res, nil
}

// MacroF1MeanStd returns the mean and standard deviation of the
// macro-average F1 across the CV repetitions.
func (r *CellCVResult) MacroF1MeanStd() (mean, std float64) {
	return macroMeanStd(r.repeatCounts)
}

// macroMeanStd computes mean and population standard deviation of the
// per-repeat macro F1 values.
func macroMeanStd(repeats []Counts) (mean, std float64) {
	if len(repeats) == 0 {
		return 0, 0
	}
	vals := make([]float64, len(repeats))
	for i := range repeats {
		vals[i] = repeats[i].Scores().MacroF1
		mean += vals[i]
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(vals)))
	return mean, std
}

// Scores returns the measurements pooled over every repetition.
func (r *CellCVResult) Scores() Scores { return r.counts.Scores() }

// Confusion builds the ensemble (majority-vote) confusion matrix.
func (r *CellCVResult) Confusion() *Confusion {
	m := &Confusion{}
	for fi, f := range r.files {
		for row := 0; row < f.Height(); row++ {
			for col := 0; col < f.Width(); col++ {
				gold := f.CellClasses[row][col]
				if gold.Index() < 0 || f.IsEmptyCell(row, col) {
					continue
				}
				if pred, ok := majorityVote(r.votes[fi][row*f.Width()+col], r.classFreq); ok {
					m.Add(pred, gold)
				}
			}
		}
	}
	return m
}

// EvaluateLinesOn scores a trained line classifier on held-out files (the
// out-of-domain experiments of Tables 7 and 8).
func EvaluateLinesOn(model LineClassifier, files []*table.Table) Scores {
	var c Counts
	for _, f := range files {
		pred := model.Classify(f)
		for r := 0; r < f.Height(); r++ {
			if f.LineClasses[r].Index() < 0 {
				continue
			}
			c.Add(pred[r], f.LineClasses[r])
		}
	}
	return c.Scores()
}

// EvaluateCellsOn scores a trained cell classifier on held-out files.
func EvaluateCellsOn(model CellClassifier, files []*table.Table) Scores {
	var c Counts
	for _, f := range files {
		pred := model.Classify(f)
		for row := 0; row < f.Height(); row++ {
			for col := 0; col < f.Width(); col++ {
				if f.CellClasses[row][col].Index() < 0 || f.IsEmptyCell(row, col) {
					continue
				}
				c.Add(pred[row][col], f.CellClasses[row][col])
			}
		}
	}
	return c.Scores()
}

// assignFolds deals file indices into folds of near-equal size, shuffled.
func assignFolds(n, folds int, rng *rand.Rand) []int {
	perm := rng.Perm(n)
	out := make([]int, n)
	for i, p := range perm {
		out[p] = i % folds
	}
	return out
}

// split partitions files into a training set (copies) and the indices of
// the test files for the given fold.
func split(files []*table.Table, folds []int, fold int) (train []*table.Table, testIdx []int) {
	for i, f := range files {
		if folds[i] == fold {
			testIdx = append(testIdx, i)
		} else {
			train = append(train, f)
		}
	}
	return train, testIdx
}

// majorityVote reduces vote tallies to a single class; ties go to the class
// with fewer instances in the dataset ("the fewer instances of a class
// included in the dataset, the more prior the class", Section 6.3.1).
func majorityVote(votes [table.NumClasses]int, freq [table.NumClasses]int) (table.Class, bool) {
	best, bestVotes := -1, 0
	for i, v := range votes {
		if v == 0 {
			continue
		}
		switch {
		case v > bestVotes:
			best, bestVotes = i, v
		case v == bestVotes && freq[i] < freq[best]:
			best = i
		}
	}
	if best < 0 {
		return table.ClassEmpty, false
	}
	return table.ClassAt(best), true
}

func skipSet(classes []table.Class) map[table.Class]bool {
	if len(classes) == 0 {
		return nil
	}
	out := make(map[table.Class]bool, len(classes))
	for _, c := range classes {
		out[c] = true
	}
	return out
}

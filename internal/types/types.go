// Package types infers the data type of individual cell values.
//
// The paper's feature sets (Tables 1 and 2) rely on a four-way data type
// distinction — int, float, string, and date — plus emptiness. This package
// provides that inference together with numeric value parsing that tolerates
// the formatting commonly found in statistical tables: thousands separators,
// leading currency symbols, percent signs, accounting-style parenthesized
// negatives, and footnote markers attached to numbers.
package types

import (
	"strconv"
	"strings"
)

// Type is the inferred data type of a cell value.
type Type uint8

// The cell data types, ordered so that the integer values can be used
// directly as the ordinal feature values of Table 2 (DataType: 0..4 with
// empty, NeighborDataType: 0..5 with a -1 sentinel handled by the caller).
const (
	Empty Type = iota
	Int
	Float
	Date
	String

	// NumTypes is the number of distinct Type values.
	NumTypes = 5
)

var typeNames = [...]string{
	Empty:  "empty",
	Int:    "int",
	Float:  "float",
	Date:   "date",
	String: "string",
}

// String returns the lower-case type name.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "type(?)"
}

// IsNumeric reports whether the type carries a numeric value.
func (t Type) IsNumeric() bool { return t == Int || t == Float }

// Infer returns the data type of a raw cell value.
func Infer(v string) Type {
	s := strings.TrimSpace(v)
	if s == "" {
		return Empty
	}
	if _, ok := ParseNumber(s); ok {
		if looksIntegral(s) {
			return Int
		}
		return Float
	}
	if IsDate(s) {
		return Date
	}
	return String
}

// looksIntegral reports whether a string that parsed as a number has no
// fractional part in its written form.
func looksIntegral(s string) bool {
	return !strings.ContainsAny(s, ".eE") || isYearLike(s)
}

func isYearLike(s string) bool {
	if len(s) != 4 {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// ParseNumber parses a cell value as a number, tolerating statistical-table
// formatting. It reports ok=false for values that are not numbers.
//
// Accepted embellishments: surrounding whitespace, thousands separators
// (1,234,567), a leading currency symbol ($ £ €), a trailing percent sign,
// accounting negatives ((123) == -123), an explicit sign, and a single
// trailing footnote marker (* or †) directly attached to the number.
func ParseNumber(v string) (float64, bool) {
	s := strings.TrimSpace(v)
	if s == "" {
		return 0, false
	}

	neg := false
	// Accounting-style negative: (123.4)
	if len(s) >= 2 && s[0] == '(' && s[len(s)-1] == ')' {
		neg = true
		s = strings.TrimSpace(s[1 : len(s)-1])
	}
	// Leading currency symbol.
	for _, cur := range [...]string{"$", "£", "€"} {
		if strings.HasPrefix(s, cur) {
			s = strings.TrimSpace(s[len(cur):])
			break
		}
	}
	// Trailing footnote markers and percent.
	s = strings.TrimRight(s, "*†")
	if strings.HasSuffix(s, "%") {
		s = strings.TrimSpace(s[:len(s)-1])
	}
	if s == "" {
		return 0, false
	}

	// Thousands separators must group digits 3-by-3 to count as numeric;
	// "1,2" or "12,34" are treated as strings.
	if strings.Contains(s, ",") {
		if !validThousands(s) {
			return 0, false
		}
		s = strings.ReplaceAll(s, ",", "")
	}

	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	if neg {
		f = -f
	}
	return f, true
}

// validThousands checks that commas in s group the integer part 3-by-3.
func validThousands(s string) bool {
	body := s
	if i := strings.IndexAny(body, ".eE"); i >= 0 {
		if strings.Contains(body[i:], ",") {
			return false
		}
		body = body[:i]
	}
	body = strings.TrimLeft(body, "+-")
	groups := strings.Split(body, ",")
	if len(groups) < 2 {
		return true
	}
	if len(groups[0]) == 0 || len(groups[0]) > 3 {
		return false
	}
	if !allDigits(groups[0]) {
		return false
	}
	for _, g := range groups[1:] {
		if len(g) != 3 || !allDigits(g) {
			return false
		}
	}
	return true
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// monthNames are the month words recognized by IsDate (full and 3-letter).
var monthNames = map[string]bool{
	"january": true, "february": true, "march": true, "april": true,
	"may": true, "june": true, "july": true, "august": true,
	"september": true, "october": true, "november": true, "december": true,
	"jan": true, "feb": true, "mar": true, "apr": true, "jun": true,
	"jul": true, "aug": true, "sep": true, "sept": true, "oct": true,
	"nov": true, "dec": true,
}

// IsDate reports whether v looks like a calendar date. Recognized shapes:
//
//	2019-03-26   26/03/2019   03/26/19   26.03.2019
//	March 2019   26 March 2019   Mar-19   2019Q1   Q1 2019
func IsDate(v string) bool {
	s := strings.TrimSpace(v)
	if s == "" {
		return false
	}
	if isQuarter(s) {
		return true
	}
	// Numeric dates with separators.
	for _, sep := range [...]byte{'-', '/', '.'} {
		if ok := numericDate(s, sep); ok {
			return true
		}
	}
	// Word dates: up to three tokens, one of which is a month name.
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == '-' || r == ',' || r == '/'
	})
	if len(fields) >= 1 && len(fields) <= 3 {
		hasMonth, othersNumeric := false, true
		for _, f := range fields {
			lf := strings.ToLower(f)
			if monthNames[lf] {
				hasMonth = true
				continue
			}
			if n, err := strconv.Atoi(f); err != nil || n < 1 || n > 3000 {
				othersNumeric = false
			}
		}
		if hasMonth && othersNumeric && len(fields) >= 2 {
			return true
		}
		if hasMonth && len(fields) == 1 {
			return false // bare month name is a string, not a date
		}
	}
	return false
}

// isQuarter recognizes 2019Q1, Q1 2019, Q1-2019 and similar.
func isQuarter(s string) bool {
	u := strings.ToUpper(strings.ReplaceAll(strings.ReplaceAll(s, " ", ""), "-", ""))
	if len(u) != 6 {
		return false
	}
	switch {
	case u[0] == 'Q' && u[1] >= '1' && u[1] <= '4' && allDigits(u[2:]):
		return true
	case allDigits(u[:4]) && u[4] == 'Q' && u[5] >= '1' && u[5] <= '4':
		return true
	}
	return false
}

// numericDate checks for D<sep>M<sep>Y style dates (any ordering of a
// 4-digit year with 1–2 digit day/month, or three short groups).
func numericDate(s string, sep byte) bool {
	parts := strings.Split(s, string(sep))
	if len(parts) != 3 {
		return false
	}
	var nums [3]int
	for i, p := range parts {
		if !allDigits(p) || len(p) > 4 {
			return false
		}
		n, _ := strconv.Atoi(p)
		nums[i] = n
	}
	fourDigit := -1
	for i, p := range parts {
		if len(p) == 4 {
			if fourDigit >= 0 {
				return false // two 4-digit groups
			}
			fourDigit = i
		}
	}
	inRange := func(n, lo, hi int) bool { return n >= lo && n <= hi }
	switch fourDigit {
	case 0: // Y-M-D
		return inRange(nums[0], 1000, 2999) && inRange(nums[1], 1, 12) && inRange(nums[2], 1, 31)
	case 2: // D-M-Y or M-D-Y
		y := nums[2]
		if !inRange(y, 1000, 2999) {
			return false
		}
		return (inRange(nums[0], 1, 31) && inRange(nums[1], 1, 12)) ||
			(inRange(nums[0], 1, 12) && inRange(nums[1], 1, 31))
	case 1:
		return false
	default: // all short groups, e.g. 03/26/19
		return (inRange(nums[0], 1, 31) && inRange(nums[1], 1, 12) ||
			inRange(nums[0], 1, 12) && inRange(nums[1], 1, 31)) &&
			inRange(nums[2], 0, 99)
	}
}

// RowTypes infers the type of every cell in a row.
func RowTypes(row []string) []Type {
	out := make([]Type, len(row))
	for i, v := range row {
		out[i] = Infer(v)
	}
	return out
}

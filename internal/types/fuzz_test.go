package types

import "testing"

// FuzzInfer checks the type-inference invariants on arbitrary input: no
// panics, numeric types always parseable, empty only for blank strings.
func FuzzInfer(f *testing.F) {
	f.Add("42")
	f.Add("1,234.5")
	f.Add("(42%)")
	f.Add("2019-03-26")
	f.Add("-")
	f.Add("  ")
	f.Add("1e309")
	f.Add("£")
	f.Fuzz(func(t *testing.T, v string) {
		ty := Infer(v)
		if ty.IsNumeric() {
			if _, ok := ParseNumber(v); !ok {
				t.Fatalf("Infer(%q) = %v but ParseNumber failed", v, ty)
			}
		}
		if ty == Empty {
			for _, r := range v {
				if r != ' ' && r != '\t' && r != '\n' && r != '\r' && r != '\v' && r != '\f' &&
					r != 0x85 && r != 0xA0 && !isSpaceRune(r) {
					t.Fatalf("Infer(%q) = Empty but value has content", v)
				}
			}
		}
	})
}

func isSpaceRune(r rune) bool {
	switch r {
	case 0x1680, 0x2000, 0x2001, 0x2002, 0x2003, 0x2004, 0x2005, 0x2006,
		0x2007, 0x2008, 0x2009, 0x200A, 0x2028, 0x2029, 0x202F, 0x205F, 0x3000:
		return true
	}
	return false
}

package types

import (
	"math"
	"strings"
	"testing"
)

// FuzzInfer checks the type-inference invariants on arbitrary input: no
// panics, results in range, emptiness exactly for blank strings, numeric
// types always parseable, and agreement with the row-level helper.
func FuzzInfer(f *testing.F) {
	f.Add("42")
	f.Add("1,234.5")
	f.Add("(42%)")
	f.Add("2019-03-26")
	f.Add("26 March 2019")
	f.Add("Q1 2019")
	f.Add("-")
	f.Add("  ")
	f.Add("1e309")
	f.Add("£-3,000†")
	f.Add("NaN")
	f.Fuzz(func(t *testing.T, v string) {
		ty := Infer(v)
		if ty >= NumTypes {
			t.Fatalf("Infer(%q) = %d, outside the %d declared types", v, ty, NumTypes)
		}
		if (ty == Empty) != (strings.TrimSpace(v) == "") {
			t.Fatalf("Infer(%q) = %v but blankness is %v", v, ty, strings.TrimSpace(v) == "")
		}
		if ty.IsNumeric() {
			if _, ok := ParseNumber(v); !ok {
				t.Fatalf("Infer(%q) = %v but ParseNumber failed", v, ty)
			}
		}
		if _, ok := ParseNumber(v); ok && !ty.IsNumeric() {
			t.Fatalf("ParseNumber accepts %q but Infer says %v", v, ty)
		}
		if ty == Date && !IsDate(strings.TrimSpace(v)) {
			t.Fatalf("Infer(%q) = date but IsDate rejects it", v)
		}
		if got := RowTypes([]string{v})[0]; got != ty {
			t.Fatalf("RowTypes disagrees with Infer on %q: %v vs %v", v, got, ty)
		}
	})
}

// FuzzParseNumber checks that numeric parsing never panics, is
// deterministic, rejects blanks, and honors the documented
// accounting-negative rule.
func FuzzParseNumber(f *testing.F) {
	f.Add("0")
	f.Add("-1.5e3")
	f.Add("(123.4)")
	f.Add("$ 1,000,000")
	f.Add("99%")
	f.Add("1,23")
	f.Add("12,345")
	f.Add("+0042*")
	f.Add("€.5")
	f.Add("  (  $1,000.25% ) ")
	f.Fuzz(func(t *testing.T, v string) {
		got, ok := ParseNumber(v)
		again, ok2 := ParseNumber(v)
		if ok != ok2 || (ok && got != again && !(math.IsNaN(got) && math.IsNaN(again))) {
			t.Fatalf("ParseNumber(%q) not deterministic: (%v,%v) vs (%v,%v)", v, got, ok, again, ok2)
		}
		if !ok && got != 0 {
			t.Fatalf("ParseNumber(%q) = (%v, false); rejected values must report 0", v, got)
		}
		if ok && strings.TrimSpace(v) == "" {
			t.Fatalf("ParseNumber accepted blank input %q", v)
		}
		// Accounting negatives flip the sign of the inner value.
		s := strings.TrimSpace(v)
		if ok && !math.IsNaN(got) && len(s) >= 2 && s[0] == '(' && s[len(s)-1] == ')' {
			inner, innerOK := ParseNumber(s[1 : len(s)-1])
			if innerOK && got != -inner {
				t.Fatalf("accounting negative %q = %v, want -(%v)", v, got, inner)
			}
		}
	})
}

package types

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestInfer(t *testing.T) {
	cases := []struct {
		in   string
		want Type
	}{
		{"", Empty},
		{"   ", Empty},
		{"42", Int},
		{"-7", Int},
		{"+13", Int},
		{"1,234,567", Int},
		{"3.14", Float},
		{"-0.5", Float},
		{"1.2e3", Float},
		{"(123)", Int},
		{"(1,234.5)", Float},
		{"$400", Int},
		{"£3.50", Float},
		{"12%", Int},
		{"12.5%", Float},
		{"45*", Int},
		{"2019", Int}, // bare year counts as int, not date
		{"2019-03-26", Date},
		{"26/03/2019", Date},
		{"03/26/19", Date},
		{"26.03.2019", Date},
		{"March 2019", Date},
		{"26 March 2019", Date},
		{"Mar-19", Date},
		{"2019Q1", Date},
		{"Q1 2019", Date},
		{"hello", String},
		{"Total homicides", String},
		{"N/A", String},
		{"1,2", String},   // bad thousands grouping
		{"12,34", String}, // bad thousands grouping
		{"1..2", String},
		{"March", String}, // bare month name is a word
		{"-", String},
		{"3-4", String},
	}
	for _, c := range cases {
		if got := Infer(c.in); got != c.want {
			t.Errorf("Infer(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseNumber(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"42", 42, true},
		{" 42 ", 42, true},
		{"-7.5", -7.5, true},
		{"1,234", 1234, true},
		{"1,234,567.89", 1234567.89, true},
		{"(500)", -500, true},
		{"($1,000)", -1000, true},
		{"$3.99", 3.99, true},
		{"15%", 15, true},
		{"23*", 23, true},
		{"1e6", 1e6, true},
		{"", 0, false},
		{"abc", 0, false},
		{"12,3", 0, false},
		{"()", 0, false},
		{"$", 0, false},
		{"--5", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseNumber(c.in)
		if ok != c.ok {
			t.Errorf("ParseNumber(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ParseNumber(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseNumberIntRoundTrip(t *testing.T) {
	f := func(n int32) bool {
		got, ok := ParseNumber(fmt.Sprintf("%d", n))
		return ok && got == float64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseNumberFloatRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := fmt.Sprintf("%g", x)
		got, ok := ParseNumber(s)
		if !ok {
			return false
		}
		if x == 0 {
			return got == 0
		}
		return math.Abs(got-x) <= 1e-9*math.Abs(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumericTypesHaveParseableValues(t *testing.T) {
	// Property: whenever Infer says Int or Float, ParseNumber must succeed.
	inputs := []string{
		"5", "5.5", "(42)", "$9", "1,000", "99%", "-3", "+2.5", "7*",
	}
	for _, in := range inputs {
		if ty := Infer(in); ty.IsNumeric() {
			if _, ok := ParseNumber(in); !ok {
				t.Errorf("Infer(%q)=%v but ParseNumber failed", in, ty)
			}
		}
	}
}

func TestIsDateRejectsNumbers(t *testing.T) {
	for _, in := range []string{"42", "3.14", "1,234", "2019", "1-2-3-4"} {
		if IsDate(in) {
			t.Errorf("IsDate(%q) = true", in)
		}
	}
}

func TestIsDateRejectsBadComponents(t *testing.T) {
	cases := []string{
		"2019-13-01", // month 13
		"2019-00-10", // month 0
		"32/13/2019", // both out of range
		"2019-03-32", // day 32
		"1/2",        // only two parts
		"a/b/c",
	}
	for _, in := range cases {
		if IsDate(in) {
			t.Errorf("IsDate(%q) = true, want false", in)
		}
	}
}

func TestRowTypes(t *testing.T) {
	got := RowTypes([]string{"", "5", "x", "2020-01-01"})
	want := []Type{Empty, Int, String, Date}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RowTypes[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTypeString(t *testing.T) {
	if Int.String() != "int" || Float.String() != "float" ||
		Date.String() != "date" || String.String() != "string" || Empty.String() != "empty" {
		t.Error("type names wrong")
	}
}

// Package extract turns classified verbose CSV files into clean relational
// tables — the downstream task that motivates structure detection. Given
// per-line classes, it segments a file into regions, reconstructs each
// table region's header (merging multi-line headers), denormalizes group
// labels into an extra column, and drops derived rows.
package extract

import (
	"strings"

	"strudel/internal/table"
)

// Region is a maximal block of lines serving one purpose.
type Region struct {
	// Top and Bottom are inclusive line indices.
	Top, Bottom int
	// Kind is RegionTable for table bodies (header/group/data/derived
	// lines) or the prose class (metadata/notes) for text blocks.
	Kind Kind
}

// Kind labels a region.
type Kind uint8

// Region kinds.
const (
	RegionTable Kind = iota
	RegionMetadata
	RegionNotes
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case RegionTable:
		return "table"
	case RegionMetadata:
		return "metadata"
	default:
		return "notes"
	}
}

// kindOf maps a line class to its region kind; table-ish classes group
// together.
func kindOf(c table.Class) (Kind, bool) {
	switch c {
	case table.ClassHeader, table.ClassGroup, table.ClassData, table.ClassDerived:
		return RegionTable, true
	case table.ClassMetadata:
		return RegionMetadata, true
	case table.ClassNotes:
		return RegionNotes, true
	}
	return 0, false
}

// Segment splits a file into regions based on per-line classes. Empty
// lines never start a region; they extend the current region only when the
// same kind resumes after them.
func Segment(lines []table.Class) []Region {
	var out []Region
	cur := -1 // index into out, or -1
	for i, c := range lines {
		kind, ok := kindOf(c)
		if !ok {
			continue // empty line: decided when the next element arrives
		}
		if cur >= 0 && out[cur].Kind == kind {
			out[cur].Bottom = i
			continue
		}
		out = append(out, Region{Top: i, Bottom: i, Kind: kind})
		cur = len(out) - 1
	}
	return out
}

// Relation is a reconstructed relational table.
type Relation struct {
	// Header holds the column names; empty when the region had no header.
	Header []string
	// Rows holds the data tuples (group labels denormalized into the first
	// column when the region used group lines).
	Rows [][]string
	// SourceLines maps each row back to its line in the input file.
	SourceLines []int
	// HasGroupColumn reports whether column 0 was synthesized from group
	// labels.
	HasGroupColumn bool
}

// Tables reconstructs every table region of t under the given line
// classes. Derived lines are dropped (they repeat information); group
// labels become a leading column on the rows they scope.
func Tables(t *table.Table, lines []table.Class) []Relation {
	var out []Relation
	for _, reg := range Segment(lines) {
		if reg.Kind != RegionTable {
			continue
		}
		if rel := buildRelation(t, lines, reg); len(rel.Rows) > 0 {
			out = append(out, rel)
		}
	}
	return out
}

func buildRelation(t *table.Table, lines []table.Class, reg Region) Relation {
	var rel Relation
	var headerLines []int
	group := ""
	usedGroups := false

	// First pass: does the region use group labels at all?
	for r := reg.Top; r <= reg.Bottom; r++ {
		if lines[r] == table.ClassGroup {
			usedGroups = true
			break
		}
	}

	for r := reg.Top; r <= reg.Bottom; r++ {
		switch lines[r] {
		case table.ClassHeader:
			if len(rel.Rows) == 0 { // headers below data start a new logical table; keep it simple
				headerLines = append(headerLines, r)
			}
		case table.ClassGroup:
			group = firstNonEmpty(t, r)
		case table.ClassData:
			row := append([]string(nil), t.Row(r)...)
			if usedGroups {
				row = append([]string{strings.TrimSuffix(group, ":")}, row...)
			}
			rel.Rows = append(rel.Rows, row)
			rel.SourceLines = append(rel.SourceLines, r)
		}
	}
	rel.HasGroupColumn = usedGroups
	rel.Header = mergeHeader(t, headerLines)
	if rel.Header != nil && usedGroups {
		rel.Header = append([]string{"Group"}, rel.Header...)
	}
	return rel
}

// mergeHeader combines one or more header lines into a single row of
// column names. Multi-line headers are merged per column, joining the
// non-empty parts with " / "; spanning labels propagate rightward until
// the next non-empty cell of their line.
func mergeHeader(t *table.Table, headerLines []int) []string {
	if len(headerLines) == 0 {
		return nil
	}
	w := t.Width()
	out := make([]string, w)
	last := headerLines[len(headerLines)-1]
	for _, r := range headerLines {
		span := ""
		for c := 0; c < w; c++ {
			v := strings.TrimSpace(t.Cell(r, c))
			if r == last {
				// The bottom header line is literal: its cells are the
				// column names.
				span = v
			} else if v != "" {
				// Earlier lines are spanning labels: propagate rightward.
				span = v
			}
			if span == "" {
				continue
			}
			if out[c] == "" {
				out[c] = span
			} else if !strings.Contains(out[c], span) {
				out[c] = out[c] + " / " + span
			}
		}
	}
	return out
}

func firstNonEmpty(t *table.Table, r int) string {
	for c := 0; c < t.Width(); c++ {
		if !t.IsEmptyCell(r, c) {
			return strings.TrimSpace(t.Cell(r, c))
		}
	}
	return ""
}

// Prose collects the text of every metadata or notes region, one string
// per region, reading non-empty cells left to right, top to bottom.
func Prose(t *table.Table, lines []table.Class, kind Kind) []string {
	var out []string
	for _, reg := range Segment(lines) {
		if reg.Kind != kind {
			continue
		}
		var parts []string
		for r := reg.Top; r <= reg.Bottom; r++ {
			for c := 0; c < t.Width(); c++ {
				if !t.IsEmptyCell(r, c) {
					parts = append(parts, strings.TrimSpace(t.Cell(r, c)))
				}
			}
		}
		if len(parts) > 0 {
			out = append(out, strings.Join(parts, " "))
		}
	}
	return out
}

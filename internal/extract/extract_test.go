package extract

import (
	"reflect"
	"testing"

	"strudel/internal/table"
)

// annotated builds a table plus parallel line classes from a compact spec.
func annotated(rows [][]string, codes string) (*table.Table, []table.Class) {
	t := table.FromRows(rows)
	classes := make([]table.Class, len(codes))
	for i, c := range codes {
		switch c {
		case 'm':
			classes[i] = table.ClassMetadata
		case 'h':
			classes[i] = table.ClassHeader
		case 'g':
			classes[i] = table.ClassGroup
		case 'd':
			classes[i] = table.ClassData
		case 'v':
			classes[i] = table.ClassDerived
		case 'n':
			classes[i] = table.ClassNotes
		case '.':
			classes[i] = table.ClassEmpty
		}
	}
	return t, classes
}

func TestSegment(t *testing.T) {
	_, classes := annotated([][]string{
		{"t"}, {""}, {"h"}, {"d"}, {"d"}, {"v"}, {""}, {"n"}, {"n"},
	}, "m.hddv.nn")
	regions := Segment(classes)
	want := []Region{
		{Top: 0, Bottom: 0, Kind: RegionMetadata},
		{Top: 2, Bottom: 5, Kind: RegionTable},
		{Top: 7, Bottom: 8, Kind: RegionNotes},
	}
	if !reflect.DeepEqual(regions, want) {
		t.Errorf("regions = %+v, want %+v", regions, want)
	}
}

func TestSegmentEmptyGapWithinSameKind(t *testing.T) {
	_, classes := annotated([][]string{
		{"d"}, {""}, {"d"},
	}, "d.d")
	regions := Segment(classes)
	if len(regions) != 1 || regions[0].Top != 0 || regions[0].Bottom != 2 {
		t.Errorf("regions = %+v, want one table region spanning all", regions)
	}
}

func TestTablesBasic(t *testing.T) {
	tb, classes := annotated([][]string{
		{"Report", "", ""},
		{"Region", "A", "B"},
		{"North", "1", "2"},
		{"South", "3", "4"},
		{"Total", "4", "6"},
		{"source", "", ""},
	}, "mhddvn")
	rels := Tables(tb, classes)
	if len(rels) != 1 {
		t.Fatalf("relations = %d, want 1", len(rels))
	}
	rel := rels[0]
	if !reflect.DeepEqual(rel.Header, []string{"Region", "A", "B"}) {
		t.Errorf("header = %v", rel.Header)
	}
	if len(rel.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (derived dropped)", len(rel.Rows))
	}
	if rel.Rows[0][0] != "North" || rel.Rows[1][2] != "4" {
		t.Errorf("rows = %v", rel.Rows)
	}
	if rel.HasGroupColumn {
		t.Error("no group lines, no group column")
	}
	if !reflect.DeepEqual(rel.SourceLines, []int{2, 3}) {
		t.Errorf("source lines = %v", rel.SourceLines)
	}
}

func TestTablesGroupDenormalization(t *testing.T) {
	tb, classes := annotated([][]string{
		{"Item", "V"},
		{"Violent crime:", ""},
		{"a", "1"},
		{"b", "2"},
		{"Property crime:", ""},
		{"c", "3"},
	}, "hgddgd")
	rels := Tables(tb, classes)
	if len(rels) != 1 {
		t.Fatalf("relations = %d", len(rels))
	}
	rel := rels[0]
	if !rel.HasGroupColumn {
		t.Fatal("group column expected")
	}
	if !reflect.DeepEqual(rel.Header, []string{"Group", "Item", "V"}) {
		t.Errorf("header = %v", rel.Header)
	}
	if rel.Rows[0][0] != "Violent crime" || rel.Rows[2][0] != "Property crime" {
		t.Errorf("group labels = %v / %v", rel.Rows[0][0], rel.Rows[2][0])
	}
}

func TestTablesMultiLineHeader(t *testing.T) {
	tb, classes := annotated([][]string{
		{"", "2019", "", "2020", ""},
		{"Item", "Count", "Rate", "Count", "Rate"},
		{"a", "1", "2", "3", "4"},
	}, "hhd")
	rels := Tables(tb, classes)
	if len(rels) != 1 {
		t.Fatalf("relations = %d", len(rels))
	}
	want := []string{"Item", "2019 / Count", "2019 / Rate", "2020 / Count", "2020 / Rate"}
	if !reflect.DeepEqual(rels[0].Header, want) {
		t.Errorf("header = %v, want %v", rels[0].Header, want)
	}
}

func TestTablesMultipleStacked(t *testing.T) {
	tb, classes := annotated([][]string{
		{"h1", "h2"},
		{"a", "1"},
		{""},
		{"note", ""},
		{""},
		{"h3", "h4"},
		{"b", "2"},
	}, "hd.n.hd")
	rels := Tables(tb, classes)
	if len(rels) != 2 {
		t.Fatalf("relations = %d, want 2", len(rels))
	}
	if rels[0].Header[0] != "h1" || rels[1].Header[0] != "h3" {
		t.Errorf("headers = %v / %v", rels[0].Header, rels[1].Header)
	}
}

func TestTablesHeaderless(t *testing.T) {
	tb, classes := annotated([][]string{
		{"a", "1"},
		{"b", "2"},
	}, "dd")
	rels := Tables(tb, classes)
	if len(rels) != 1 {
		t.Fatalf("relations = %d", len(rels))
	}
	if rels[0].Header != nil {
		t.Errorf("headerless table should have nil header, got %v", rels[0].Header)
	}
	if len(rels[0].Rows) != 2 {
		t.Errorf("rows = %d", len(rels[0].Rows))
	}
}

func TestProse(t *testing.T) {
	tb, classes := annotated([][]string{
		{"Crime", "Report", ""},
		{"h", "v", ""},
		{"a", "1", ""},
		{"see", "annex", ""},
	}, "mhdn")
	meta := Prose(tb, classes, RegionMetadata)
	if len(meta) != 1 || meta[0] != "Crime Report" {
		t.Errorf("metadata prose = %v", meta)
	}
	notes := Prose(tb, classes, RegionNotes)
	if len(notes) != 1 || notes[0] != "see annex" {
		t.Errorf("notes prose = %v", notes)
	}
}

func TestKindString(t *testing.T) {
	if RegionTable.String() != "table" || RegionMetadata.String() != "metadata" || RegionNotes.String() != "notes" {
		t.Error("kind names wrong")
	}
}

// Package pytheas re-implements the rule-based line classification approach
// of Christodoulakis et al. (2020) used as the Pytheas^L baseline.
//
// The approach works in three stages, following the published structure:
//
//  1. A set of weighted fuzzy rules votes on whether each line is data or
//     non-data. Rule weights are the rules' empirical precision, learned
//     from a training corpus beforehand.
//  2. The binary data/non-data signal drives table-boundary discovery: the
//     top and bottom borders of the table regions in the file.
//  3. Class-specific rules assign one of five classes — metadata, header,
//     group, data, notes — to each line relative to the discovered table
//     areas. Pytheas has no derived class (Section 6.2.1), so derived lines
//     in gold data are simply outside its vocabulary.
package pytheas

import (
	"strudel/internal/features"
	"strudel/internal/table"
	"strudel/internal/types"
)

// rule is a fuzzy rule: a predicate over a line in its file context.
type rule struct {
	name string
	fire func(ctx *lineContext) bool
}

// lineContext bundles the per-line signals the rules consume.
type lineContext struct {
	t            *table.Table
	row          int
	nonEmpty     int
	numeric      int
	str          int
	firstValue   string
	maxCellLen   int
	hasAggWord   bool
	modalWidth   int
	typeMatch    float64 // type agreement with closest non-empty line below
	belowNumeric int     // numeric cells in the closest non-empty line below
	words        int     // words in the first non-empty cell
}

func buildContext(t *table.Table, row, modalWidth int, typeGrid [][]types.Type) *lineContext {
	ctx := &lineContext{t: t, row: row, modalWidth: modalWidth}
	for c := 0; c < t.Width(); c++ {
		v := t.Cell(row, c)
		switch typeGrid[row][c] {
		case types.Empty:
			continue
		case types.Int, types.Float:
			ctx.numeric++
		default:
			ctx.str++
		}
		ctx.nonEmpty++
		if ctx.nonEmpty == 1 {
			ctx.firstValue = v
		}
		if len(v) > ctx.maxCellLen {
			ctx.maxCellLen = len(v)
		}
		if !ctx.hasAggWord && features.ContainsAggregationWord(v) {
			ctx.hasAggWord = true
		}
	}
	if below := t.ClosestNonEmptyLineBelow(row); below >= 0 && t.Width() > 0 {
		match := 0
		for c := 0; c < t.Width(); c++ {
			if typeGrid[row][c] == typeGrid[below][c] {
				match++
			}
			if typeGrid[below][c] == types.Int || typeGrid[below][c] == types.Float {
				ctx.belowNumeric++
			}
		}
		ctx.typeMatch = float64(match) / float64(t.Width())
	}
	ctx.words = features.WordCount(ctx.firstValue)
	return ctx
}

// dataRules vote that a line belongs to a table body.
var dataRules = []rule{
	{"TwoOrMoreNumeric", func(c *lineContext) bool { return c.numeric >= 2 }},
	{"MajorityNumeric", func(c *lineContext) bool {
		return c.nonEmpty > 0 && float64(c.numeric)/float64(c.nonEmpty) >= 0.5
	}},
	{"ConsistentWithBelow", func(c *lineContext) bool { return c.typeMatch >= 0.75 && c.nonEmpty >= 2 }},
	{"KeyThenValues", func(c *lineContext) bool {
		return c.nonEmpty > 2 && c.str >= 1 && c.numeric >= c.nonEmpty-1
	}},
	{"ModalWidth", func(c *lineContext) bool { return c.nonEmpty == c.modalWidth && c.modalWidth >= 2 }},
	{"WideLine", func(c *lineContext) bool { return c.nonEmpty >= 4 }},
}

// nonDataRules vote that a line is outside a table body.
var nonDataRules = []rule{
	{"SingleCell", func(c *lineContext) bool { return c.nonEmpty == 1 }},
	{"FewAllString", func(c *lineContext) bool { return c.nonEmpty <= 2 && c.numeric == 0 }},
	{"AggregationKeyword", func(c *lineContext) bool { return c.hasAggWord }},
	{"LongProse", func(c *lineContext) bool { return c.maxCellLen > 80 }},
	{"HeaderOverNumbers", func(c *lineContext) bool {
		return c.numeric == 0 && c.str >= 2 && c.belowNumeric >= 2
	}},
	{"FirstLine", func(c *lineContext) bool { return c.t.ClosestNonEmptyLineAbove(c.row) < 0 }},
	{"LastLine", func(c *lineContext) bool { return c.t.ClosestNonEmptyLineBelow(c.row) < 0 }},
}

// Model holds the learned rule weights (empirical precisions).
type Model struct {
	DataWeights    []float64
	NonDataWeights []float64
}

// Train learns rule weights from annotated tables: each rule's weight is
// its Laplace-smoothed precision at indicating data (for data rules) or
// non-data (for non-data rules) on the training lines.
func Train(tables []*table.Table) *Model {
	dataFire := make([]float64, len(dataRules))
	dataHit := make([]float64, len(dataRules))
	nonFire := make([]float64, len(nonDataRules))
	nonHit := make([]float64, len(nonDataRules))

	for _, t := range tables {
		if t.LineClasses == nil {
			continue
		}
		modal := modalNonEmptyWidth(t)
		typeGrid := gridTypes(t)
		for r := 0; r < t.Height(); r++ {
			if t.IsEmptyLine(r) {
				continue
			}
			isData := t.LineClasses[r] == table.ClassData
			ctx := buildContext(t, r, modal, typeGrid)
			for i, rl := range dataRules {
				if rl.fire(ctx) {
					dataFire[i]++
					if isData {
						dataHit[i]++
					}
				}
			}
			for i, rl := range nonDataRules {
				if rl.fire(ctx) {
					nonFire[i]++
					if !isData {
						nonHit[i]++
					}
				}
			}
		}
	}

	m := &Model{
		DataWeights:    make([]float64, len(dataRules)),
		NonDataWeights: make([]float64, len(nonDataRules)),
	}
	for i := range dataRules {
		m.DataWeights[i] = (dataHit[i] + 0.5) / (dataFire[i] + 1)
	}
	for i := range nonDataRules {
		m.NonDataWeights[i] = (nonHit[i] + 0.5) / (nonFire[i] + 1)
	}
	return m
}

func modalNonEmptyWidth(t *table.Table) int {
	counts := map[int]int{}
	for r := 0; r < t.Height(); r++ {
		if n := t.NonEmptyCellsInLine(r); n > 0 {
			counts[n]++
		}
	}
	best, bestN := 0, 0
	for w, n := range counts {
		if n > bestN || (n == bestN && w > best) {
			best, bestN = w, n
		}
	}
	return best
}

func gridTypes(t *table.Table) [][]types.Type {
	g := make([][]types.Type, t.Height())
	for r := range g {
		g[r] = types.RowTypes(t.Row(r))
	}
	return g
}

// dataConfidence returns the fuzzy data and non-data confidences of a line:
// the maximum weight among the fired rules of each family.
func (m *Model) dataConfidence(ctx *lineContext) (data, nonData float64) {
	for i, rl := range dataRules {
		if m.DataWeights[i] > data && rl.fire(ctx) {
			data = m.DataWeights[i]
		}
	}
	for i, rl := range nonDataRules {
		if m.NonDataWeights[i] > nonData && rl.fire(ctx) {
			nonData = m.NonDataWeights[i]
		}
	}
	return data, nonData
}

// ClassifyLines assigns one of the five Pytheas classes to every non-empty
// line of t; empty lines get table.ClassEmpty.
func (m *Model) ClassifyLines(t *table.Table) []table.Class {
	h := t.Height()
	out := make([]table.Class, h)
	if h == 0 {
		return out
	}
	modal := modalNonEmptyWidth(t)
	typeGrid := gridTypes(t)

	// Stage 1: binary data/non-data decisions.
	isData := make([]bool, h)
	empty := make([]bool, h)
	for r := 0; r < h; r++ {
		if t.IsEmptyLine(r) {
			empty[r] = true
			continue
		}
		ctx := buildContext(t, r, modal, typeGrid)
		d, nd := m.dataConfidence(ctx)
		isData[r] = d > nd
	}

	// Stage 2: table boundary discovery — maximal data runs, bridging
	// single non-data lines strictly inside a run (Pytheas tolerates
	// isolated in-table irregularities).
	var tables []span
	r := 0
	for r < h {
		if !isData[r] {
			r++
			continue
		}
		top := r
		bottom := r
		for nxt := r + 1; nxt < h; nxt++ {
			if isData[nxt] {
				bottom = nxt
				continue
			}
			// Bridge one non-empty, non-data line if data resumes right after.
			if !empty[nxt] && nxt+1 < h && isData[nxt+1] {
				continue
			}
			break
		}
		tables = append(tables, span{top, bottom})
		r = bottom + 1
	}

	// Stage 3: class-specific rules relative to the table areas.
	inTable := make([]int, h) // index into tables, or -1
	for i := range inTable {
		inTable[i] = -1
	}
	for ti, sp := range tables {
		for i := sp.top; i <= sp.bottom; i++ {
			inTable[i] = ti
		}
	}

	for r := 0; r < h; r++ {
		if empty[r] {
			continue
		}
		switch {
		case inTable[r] >= 0 && isData[r]:
			out[r] = table.ClassData
		case inTable[r] >= 0:
			// Bridged non-data line inside a table: group when only the
			// leftmost area is populated, data otherwise.
			if leadingOnly(t, r) {
				out[r] = table.ClassGroup
			} else {
				out[r] = table.ClassData
			}
		default:
			out[r] = m.classifyOutside(t, r, tables, typeGrid)
		}
	}
	return out
}

// leadingOnly reports whether the non-empty cells of line r sit in the
// leftmost positions only (at most the first two columns).
func leadingOnly(t *table.Table, r int) bool {
	for c := 2; c < t.Width(); c++ {
		if !t.IsEmptyCell(r, c) {
			return false
		}
	}
	return t.NonEmptyCellsInLine(r) > 0
}

// firstNonEmpty returns the leftmost non-empty cell value of line r.
func firstNonEmpty(t *table.Table, r int) string {
	for c := 0; c < t.Width(); c++ {
		if !t.IsEmptyCell(r, c) {
			return t.Cell(r, c)
		}
	}
	return ""
}

// span is a discovered table area: the line indices of its top and bottom
// data borders.
type span struct{ top, bottom int }

// classifyOutside labels a non-data line relative to the discovered tables:
// header directly above a table top, metadata further above the first
// table, group between a header and its table, and notes below tables.
func (m *Model) classifyOutside(t *table.Table, r int, spans []span, typeGrid [][]types.Type) table.Class {
	// Find the next table below and the previous table above.
	nextTop, prevBottom := -1, -1
	for _, sp := range spans {
		if sp.top > r {
			nextTop = sp.top
			break
		}
		prevBottom = sp.bottom
	}
	if nextTop >= 0 {
		// Count the non-empty lines strictly between r and the table top.
		gap := 0
		for i := r + 1; i < nextTop; i++ {
			if !t.IsEmptyLine(i) {
				gap++
			}
		}
		stringy := true
		for c := 0; c < t.Width(); c++ {
			if typeGrid[r][c] == types.Int || typeGrid[r][c] == types.Float {
				stringy = false
				break
			}
		}
		first := firstNonEmpty(t, r)
		groupish := leadingOnly(t, r) &&
			(len(first) > 0 && first[len(first)-1] == ':' || features.WordCount(first) <= 2)
		switch {
		case gap == 0 && t.NonEmptyCellsInLine(r) >= 2 && stringy:
			return table.ClassHeader
		case gap == 0 && groupish:
			return table.ClassGroup
		case gap <= 1 && t.NonEmptyCellsInLine(r) >= 2:
			return table.ClassHeader
		default:
			if prevBottom < 0 {
				return table.ClassMetadata
			}
			// Between tables: closer to the one below reads as metadata.
			if nextTop-r <= r-prevBottom {
				return table.ClassMetadata
			}
			return table.ClassNotes
		}
	}
	if prevBottom >= 0 {
		return table.ClassNotes
	}
	// No table found at all: single-cell prose defaults to metadata.
	return table.ClassMetadata
}

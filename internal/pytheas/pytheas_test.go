package pytheas

import (
	"testing"

	"strudel/internal/table"
)

// annotatedFile builds a small verbose file with gold line labels.
func annotatedFile() *table.Table {
	t := table.FromRows([][]string{
		{"Crime Statistics 2019", "", "", ""}, // metadata
		{"", "", "", ""},
		{"Region", "Jan", "Feb", "Mar"}, // header
		{"North", "10", "20", "30"},     // data
		{"South", "15", "25", "35"},     // data
		{"East", "5", "5", "5"},         // data
		{"West", "1", "2", "3"},         // data
		{"", "", "", ""},
		{"Source: national registry", "", "", ""}, // notes
	})
	t.EnsureAnnotations()
	classes := []table.Class{
		table.ClassMetadata, table.ClassEmpty, table.ClassHeader,
		table.ClassData, table.ClassData, table.ClassData, table.ClassData,
		table.ClassEmpty, table.ClassNotes,
	}
	copy(t.LineClasses, classes)
	for r, cl := range classes {
		for c := 0; c < t.Width(); c++ {
			if !t.IsEmptyCell(r, c) {
				t.CellClasses[r][c] = cl
			}
		}
	}
	t.Name = "train.csv"
	return t
}

// trainingSet returns a few annotated files so rule precisions are
// estimated from more than a handful of lines.
func trainingSet() []*table.Table {
	return []*table.Table{annotatedFile(), annotatedFile(), annotatedFile()}
}

func TestTrainWeightsInRange(t *testing.T) {
	m := Train(trainingSet())
	for i, w := range m.DataWeights {
		if w <= 0 || w >= 1 {
			t.Errorf("data rule %d weight %v out of (0,1)", i, w)
		}
	}
	for i, w := range m.NonDataWeights {
		if w <= 0 || w >= 1 {
			t.Errorf("non-data rule %d weight %v out of (0,1)", i, w)
		}
	}
}

func TestClassifySimpleFile(t *testing.T) {
	m := Train(trainingSet())
	tb := annotatedFile()
	got := m.ClassifyLines(tb)

	if got[1] != table.ClassEmpty || got[7] != table.ClassEmpty {
		t.Error("empty lines must stay ClassEmpty")
	}
	for r := 3; r <= 6; r++ {
		if got[r] != table.ClassData {
			t.Errorf("line %d = %v, want data", r, got[r])
		}
	}
	if got[2] != table.ClassHeader {
		t.Errorf("line 2 = %v, want header", got[2])
	}
	if got[0] != table.ClassMetadata {
		t.Errorf("line 0 = %v, want metadata", got[0])
	}
	if got[8] != table.ClassNotes {
		t.Errorf("line 8 = %v, want notes", got[8])
	}
}

func TestNeverPredictsDerived(t *testing.T) {
	m := Train(trainingSet())
	tb := table.FromRows([][]string{
		{"Values", "A", "B"},
		{"x", "1", "2"},
		{"y", "3", "4"},
		{"Total", "4", "6"},
	})
	got := m.ClassifyLines(tb)
	for r, cl := range got {
		if cl == table.ClassDerived {
			t.Errorf("line %d predicted derived; Pytheas has no derived class", r)
		}
	}
}

func TestGroupInsideTable(t *testing.T) {
	m := Train(trainingSet())
	tb := table.FromRows([][]string{
		{"Region", "Jan", "Feb", "Mar"},
		{"North", "10", "20", "30"},
		{"South", "15", "25", "35"},
		{"Violent crime:", "", "", ""}, // group label bridged inside table
		{"East", "5", "5", "5"},
		{"West", "1", "2", "3"},
	})
	got := m.ClassifyLines(tb)
	if got[3] != table.ClassGroup {
		t.Errorf("line 3 = %v, want group", got[3])
	}
}

func TestNotesBelowLastTable(t *testing.T) {
	m := Train(trainingSet())
	tb := table.FromRows([][]string{
		{"h1", "h2", "h3"},
		{"a", "1", "2"},
		{"b", "3", "4"},
		{"c", "5", "6"},
		{"", "", ""},
		{"1) preliminary figure", "", ""},
		{"2) revised figure", "", ""},
	})
	got := m.ClassifyLines(tb)
	if got[5] != table.ClassNotes || got[6] != table.ClassNotes {
		t.Errorf("trailing lines = %v %v, want notes", got[5], got[6])
	}
}

func TestEmptyTable(t *testing.T) {
	m := Train(trainingSet())
	got := m.ClassifyLines(table.New(0, 0))
	if len(got) != 0 {
		t.Errorf("len = %d, want 0", len(got))
	}
}

func TestTrainIgnoresUnannotated(t *testing.T) {
	un := table.FromRows([][]string{{"a", "1"}})
	m := Train([]*table.Table{un, annotatedFile()})
	if m == nil {
		t.Fatal("Train returned nil")
	}
	// With only smoothing mass for the unannotated file, weights still valid.
	for _, w := range m.DataWeights {
		if w <= 0 || w >= 1 {
			t.Errorf("weight %v out of range", w)
		}
	}
}

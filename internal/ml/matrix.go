// Package ml holds the small numeric containers shared between the
// classifier backends and the pipeline. Its centerpiece is Matrix, the
// dense feature block the prediction hot path operates on: the pipeline
// stages fill one Matrix per table or window and the forest engines sweep
// it row by row, so a batch is classified with sequential memory access
// instead of one heap-allocated projected vector per row.
package ml

// Matrix is a dense row-major feature block: element (r, c) lives at
// Data[r*Cols+c], so Row(r) is a zero-copy contiguous view. Tree ensembles
// traverse feature vectors one sample at a time — every node of every tree
// probes the same row — which makes the row the unit of locality: storing
// by row keeps the active sample in one or two cache lines for the entire
// ensemble walk, where a column-major layout would turn both the staging
// fill and every per-node probe into Rows-strided accesses. (Column-major
// pays off only for kernels that stream one feature across the whole
// batch, e.g. vectorized linear scoring; the forest engines have no such
// sweep.)
//
// The zero value is an empty matrix ready for Reset. A Matrix is not safe
// for concurrent mutation; the prediction kernels only read it.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Reset resizes the matrix to rows×cols, reusing the backing array when it
// is large enough. This is how the pipeline's staging matrix is recycled
// across stages and files without reallocating. Element contents after
// Reset are unspecified — the staging fills (FillRows, SetRowMasked)
// overwrite every element, so zeroing here would be a second full pass
// over the block for nothing.
func (m *Matrix) Reset(rows, cols int) {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
	}
	m.Rows, m.Cols = rows, cols
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns the backing slice of row r: a length-Cols view shared with
// the matrix. This is the view the forest kernels walk, so a staged row is
// classified without any copy.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// SetRow copies the vector x into row r. Only min(len(x), Cols) components
// are written.
func (m *Matrix) SetRow(r int, x []float64) {
	row := m.Row(r)
	n := len(x)
	if n > len(row) {
		n = len(row)
	}
	copy(row[:n], x)
}

// SetRowMasked writes the selected components of x into row r: column i of
// the matrix receives x[mask[i]]. This is how feature-ablation masks are
// applied during the staging fill without allocating a projected copy of
// each row.
func (m *Matrix) SetRowMasked(r int, x []float64, mask []int) {
	row := m.Row(r)
	for c, f := range mask {
		row[c] = x[f]
	}
}

// FillRows stages a row-major batch into the matrix: row r of the matrix
// receives X[r]. The matrix must already be sized len(X)×Cols.
func (m *Matrix) FillRows(X [][]float64) {
	for r, x := range X {
		m.SetRow(r, x)
	}
}

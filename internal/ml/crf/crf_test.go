package crf

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// makeChainData builds sequences where the label is readable from a single
// emission feature, plus noisy items whose label is only inferable from the
// chain structure (label alternates 0,1,0,1,...).
func makeChainData(seed int64, n int) (seqs [][][]int, labels [][]int) {
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < n; s++ {
		T := rng.Intn(6) + 4
		seq := make([][]int, T)
		lab := make([]int, T)
		for t := 0; t < T; t++ {
			lab[t] = t % 2
			if rng.Float64() < 0.8 {
				seq[t] = []int{lab[t]} // informative feature
			} else {
				seq[t] = []int{2} // uninformative feature
			}
		}
		seqs = append(seqs, seq)
		labels = append(labels, lab)
	}
	return seqs, labels
}

func TestFitAndDecode(t *testing.T) {
	seqs, labels := makeChainData(1, 60)
	m, err := Fit(seqs, labels, 2, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for s := range seqs {
		got := m.Decode(seqs[s])
		for t2 := range got {
			total++
			if got[t2] == labels[s][t2] {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("decode accuracy = %v, want >= 0.9", acc)
	}
}

func TestTransitionsLearned(t *testing.T) {
	// Alternating labels: self-transitions must score lower than switches.
	seqs, labels := makeChainData(2, 80)
	m, err := Fit(seqs, labels, 2, 3, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.TransW[0][1] <= m.TransW[0][0] {
		t.Errorf("trans 0->1 (%v) should beat 0->0 (%v)", m.TransW[0][1], m.TransW[0][0])
	}
	if m.TransW[1][0] <= m.TransW[1][1] {
		t.Errorf("trans 1->0 (%v) should beat 1->1 (%v)", m.TransW[1][0], m.TransW[1][1])
	}
}

func TestChainDisambiguatesUninformativeItems(t *testing.T) {
	seqs, labels := makeChainData(3, 100)
	m, err := Fit(seqs, labels, 2, 3, Options{Seed: 3, Epochs: 30})
	if err != nil {
		t.Fatal(err)
	}
	// A sequence of all-uninformative middle items: informative endpoints
	// plus learned alternation should still recover the pattern.
	seq := [][]int{{0}, {2}, {2}, {2}, {1}}
	got := m.Decode(seq)
	want := []int{0, 1, 0, 1, 1}
	mismatches := 0
	for i := range want {
		if got[i] != want[i] {
			mismatches++
		}
	}
	if mismatches > 1 {
		t.Errorf("Decode = %v, want close to %v", got, want)
	}
	_ = labels
}

func TestMarginalsValid(t *testing.T) {
	seqs, labels := makeChainData(4, 40)
	m, err := Fit(seqs, labels, 2, 3, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	marg := m.Marginals(seqs[0])
	if len(marg) != len(seqs[0]) {
		t.Fatalf("marginal rows = %d", len(marg))
	}
	for t2, p := range marg {
		s := 0.0
		for _, v := range p {
			if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
				t.Fatalf("bad marginal %v", p)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("marginals at %d sum to %v", t2, s)
		}
	}
}

func TestDecodeEmpty(t *testing.T) {
	m := &Model{NumLabels: 2, NumFeatures: 1, StateW: [][]float64{{0, 0}}, TransW: [][]float64{{0, 0}, {0, 0}}}
	if got := m.Decode(nil); got != nil {
		t.Errorf("Decode(nil) = %v", got)
	}
	if got := m.Marginals(nil); got != nil {
		t.Errorf("Marginals(nil) = %v", got)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, 2, 3, Options{}); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Fit([][][]int{{{0}}}, [][]int{{0, 1}}, 2, 3, Options{}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestBinize(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 1},
		{0.75, 2},
		{0.5, 3},
		{0.3, 3},
		{0.2, 4},
		{1e-9, NumBins - 1},
	}
	for _, c := range cases {
		if got := Binize(c.v); got != c.want {
			t.Errorf("Binize(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBinizeMonotoneBuckets(t *testing.T) {
	// Smaller positive values never get smaller bins (finer near zero).
	prev := Binize(1.0)
	for v := 0.9; v > 1e-6; v *= 0.7 {
		b := Binize(v)
		if b < prev {
			t.Fatalf("binning not monotone at %v: %d < %d", v, b, prev)
		}
		prev = b
	}
}

func TestBinizeVectorIDsDistinct(t *testing.T) {
	ids := BinizeVector([]float64{0.5, 0.5, 0.5})
	if ids[0] == ids[1] || ids[1] == ids[2] {
		t.Error("same value in different positions must map to distinct IDs")
	}
	for _, id := range ids {
		if id < 0 || id >= NumFeatureIDs(3) {
			t.Errorf("id %d out of range", id)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	seqs, labels := makeChainData(9, 30)
	m, err := Fit(seqs, labels, 2, 3, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for s := range seqs[:10] {
		a, b := m.Decode(seqs[s]), m2.Decode(seqs[s])
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("decoding differs after round trip")
			}
		}
	}
	if _, err := Load(bytes.NewBufferString("{}")); err == nil {
		t.Error("corrupt model should fail to load")
	}
}

// Package crf implements a linear-chain conditional random field trained by
// stochastic gradient descent on the exact log-likelihood (forward-backward
// marginals), with Viterbi decoding.
//
// It backs the CRF^L baseline of the paper (Adelfio & Samet 2013): line
// features are discretized with logarithmic binning and the resulting
// indicator features feed the chain. Stylistic features are omitted, as in
// the paper's fair-comparison setup.
package crf

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Options configures CRF training.
type Options struct {
	// Epochs is the number of SGD passes; 0 means 20.
	Epochs int
	// LearningRate is the initial step size; 0 means 0.1. The rate decays
	// as eta0 / (1 + epoch).
	LearningRate float64
	// L2 is the L2 regularization strength; 0 means 1e-4.
	L2 float64
	// Seed drives sequence shuffling.
	Seed int64
}

// Model is a trained linear-chain CRF over items described by sets of
// discrete active feature IDs.
type Model struct {
	NumLabels   int
	NumFeatures int
	// StateW[f][y] is the weight of feature f firing under label y.
	StateW [][]float64
	// TransW[a][b] is the weight of transitioning from label a to b.
	TransW [][]float64
}

// Fit trains the CRF. seqs[s][t] lists the active feature IDs of item t of
// sequence s; labels[s][t] is its gold label in [0, numLabels).
func Fit(seqs [][][]int, labels [][]int, numLabels, numFeatures int, opts Options) (*Model, error) {
	if len(seqs) == 0 {
		return nil, errors.New("crf: no training sequences")
	}
	if len(seqs) != len(labels) {
		return nil, fmt.Errorf("crf: %d sequences but %d label sequences", len(seqs), len(labels))
	}
	for s := range seqs {
		if len(seqs[s]) != len(labels[s]) {
			return nil, fmt.Errorf("crf: sequence %d length mismatch", s)
		}
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 20
	}
	if opts.LearningRate <= 0 {
		opts.LearningRate = 0.1
	}
	if opts.L2 <= 0 {
		opts.L2 = 1e-4
	}

	m := &Model{
		NumLabels:   numLabels,
		NumFeatures: numFeatures,
		StateW:      alloc2d(numFeatures, numLabels),
		TransW:      alloc2d(numLabels, numLabels),
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	order := rng.Perm(len(seqs))
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		eta := opts.LearningRate / (1 + float64(epoch))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, s := range order {
			if len(seqs[s]) == 0 {
				continue
			}
			m.sgdStep(seqs[s], labels[s], eta, opts.L2)
		}
	}
	return m, nil
}

func alloc2d(r, c int) [][]float64 {
	out := make([][]float64, r)
	backing := make([]float64, r*c)
	for i := range out {
		out[i], backing = backing[:c:c], backing[c:]
	}
	return out
}

// scores computes the emission score matrix for a sequence.
func (m *Model) scores(seq [][]int) [][]float64 {
	S := alloc2d(len(seq), m.NumLabels)
	for t, feats := range seq {
		for _, f := range feats {
			w := m.StateW[f]
			for y := 0; y < m.NumLabels; y++ {
				S[t][y] += w[y]
			}
		}
	}
	return S
}

// sgdStep performs one gradient step on a single sequence.
func (m *Model) sgdStep(seq [][]int, gold []int, eta, l2 float64) {
	T, K := len(seq), m.NumLabels
	S := m.scores(seq)

	// Forward pass in log space.
	alpha := alloc2d(T, K)
	copy(alpha[0], S[0])
	for t := 1; t < T; t++ {
		for y := 0; y < K; y++ {
			acc := math.Inf(-1)
			for a := 0; a < K; a++ {
				acc = logAdd(acc, alpha[t-1][a]+m.TransW[a][y])
			}
			alpha[t][y] = acc + S[t][y]
		}
	}
	// Backward pass.
	beta := alloc2d(T, K)
	for t := T - 2; t >= 0; t-- {
		for y := 0; y < K; y++ {
			acc := math.Inf(-1)
			for b := 0; b < K; b++ {
				acc = logAdd(acc, m.TransW[y][b]+S[t+1][b]+beta[t+1][b])
			}
			beta[t][y] = acc
		}
	}
	logZ := math.Inf(-1)
	for y := 0; y < K; y++ {
		logZ = logAdd(logZ, alpha[T-1][y])
	}

	// State updates: w += eta * (empirical - expected).
	marg := make([]float64, K)
	for t := 0; t < T; t++ {
		for y := 0; y < K; y++ {
			marg[y] = math.Exp(alpha[t][y] + beta[t][y] - logZ)
		}
		g := gold[t]
		for _, f := range seq[t] {
			w := m.StateW[f]
			for y := 0; y < K; y++ {
				grad := -marg[y]
				if y == g {
					grad++
				}
				w[y] += eta * (grad - l2*w[y])
			}
		}
	}
	// Transition updates.
	for t := 1; t < T; t++ {
		for a := 0; a < K; a++ {
			for b := 0; b < K; b++ {
				p := math.Exp(alpha[t-1][a] + m.TransW[a][b] + S[t][b] + beta[t][b] - logZ)
				grad := -p
				if gold[t-1] == a && gold[t] == b {
					grad++
				}
				m.TransW[a][b] += eta * (grad - l2*m.TransW[a][b])
			}
		}
	}
}

// logAdd returns log(exp(a) + exp(b)) stably.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// Decode returns the Viterbi-optimal label sequence for seq.
func (m *Model) Decode(seq [][]int) []int {
	T, K := len(seq), m.NumLabels
	if T == 0 {
		return nil
	}
	S := m.scores(seq)
	delta := alloc2d(T, K)
	back := make([][]int, T)
	copy(delta[0], S[0])
	for t := 1; t < T; t++ {
		back[t] = make([]int, K)
		for y := 0; y < K; y++ {
			best, bestA := math.Inf(-1), 0
			for a := 0; a < K; a++ {
				v := delta[t-1][a] + m.TransW[a][y]
				if v > best {
					best, bestA = v, a
				}
			}
			delta[t][y] = best + S[t][y]
			back[t][y] = bestA
		}
	}
	out := make([]int, T)
	best, bestY := math.Inf(-1), 0
	for y := 0; y < K; y++ {
		if delta[T-1][y] > best {
			best, bestY = delta[T-1][y], y
		}
	}
	out[T-1] = bestY
	for t := T - 1; t > 0; t-- {
		out[t-1] = back[t][out[t]]
	}
	return out
}

// Marginals returns per-item posterior label distributions for seq,
// computed by forward-backward.
func (m *Model) Marginals(seq [][]int) [][]float64 {
	T, K := len(seq), m.NumLabels
	if T == 0 {
		return nil
	}
	S := m.scores(seq)
	alpha := alloc2d(T, K)
	copy(alpha[0], S[0])
	for t := 1; t < T; t++ {
		for y := 0; y < K; y++ {
			acc := math.Inf(-1)
			for a := 0; a < K; a++ {
				acc = logAdd(acc, alpha[t-1][a]+m.TransW[a][y])
			}
			alpha[t][y] = acc + S[t][y]
		}
	}
	beta := alloc2d(T, K)
	for t := T - 2; t >= 0; t-- {
		for y := 0; y < K; y++ {
			acc := math.Inf(-1)
			for b := 0; b < K; b++ {
				acc = logAdd(acc, m.TransW[y][b]+S[t+1][b]+beta[t+1][b])
			}
			beta[t][y] = acc
		}
	}
	logZ := math.Inf(-1)
	for y := 0; y < K; y++ {
		logZ = logAdd(logZ, alpha[T-1][y])
	}
	out := alloc2d(T, K)
	for t := 0; t < T; t++ {
		for y := 0; y < K; y++ {
			out[t][y] = math.Exp(alpha[t][y] + beta[t][y] - logZ)
		}
	}
	return out
}

// NumBins is the number of logarithmic bins used by Binize.
const NumBins = 10

// Binize maps a continuous feature value to a logarithmic bin in
// [0, NumBins): bin 0 for non-positive values, bin 1 for values >= 1, and
// increasingly fine bins approaching zero — the logarithmic binning
// technique of Adelfio & Samet that the paper reports as their best setting.
// Negative sentinel values (e.g. -1 for missing neighbors) get bin 0.
func Binize(v float64) int {
	switch {
	case v <= 0:
		return 0
	case v >= 1:
		return 1
	default:
		b := 2 + int(-math.Log2(v))
		if b >= NumBins {
			b = NumBins - 1
		}
		return b
	}
}

// FeatureID returns the discrete feature identifier of (featureIndex, bin).
func FeatureID(featureIndex, bin int) int {
	return featureIndex*NumBins + bin
}

// BinizeVector converts a continuous feature vector into the list of active
// discrete feature IDs consumed by Fit and Decode.
func BinizeVector(x []float64) []int {
	out := make([]int, len(x))
	for i, v := range x {
		out[i] = FeatureID(i, Binize(v))
	}
	return out
}

// NumFeatureIDs returns the size of the discrete feature space for vectors
// of the given length.
func NumFeatureIDs(vectorLen int) int {
	return vectorLen * NumBins
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(m)
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("crf: decode: %w", err)
	}
	if m.NumLabels <= 0 || len(m.StateW) == 0 {
		return nil, errors.New("crf: corrupt model")
	}
	return &m, nil
}

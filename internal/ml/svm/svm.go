// Package svm implements a linear support vector machine trained with the
// Pegasos stochastic sub-gradient algorithm, in a one-vs-rest arrangement
// for multi-class problems. It is one of the alternative backbones
// evaluated in Section 6.1.2.
package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Options configures SVM training.
type Options struct {
	// Lambda is the L2 regularization strength; 0 means 1e-4.
	Lambda float64
	// Epochs is the number of passes over the data; 0 means 10.
	Epochs int
	// Seed drives the sample shuffling.
	Seed int64
}

// Model is a trained one-vs-rest linear SVM.
type Model struct {
	NumClasses int
	Weights    [][]float64 // [class][feature]
	Bias       []float64
	// feature standardization parameters
	mean, scale []float64
}

// Fit trains one binary hinge-loss classifier per class. Features are
// standardized internally (SVMs are scale-sensitive).
func Fit(X [][]float64, y []int, numClasses int, opts Options) (*Model, error) {
	if len(X) == 0 {
		return nil, errors.New("svm: no training samples")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("svm: %d samples but %d labels", len(X), len(y))
	}
	if opts.Lambda <= 0 {
		opts.Lambda = 1e-4
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 10
	}
	nf := len(X[0])

	m := &Model{
		NumClasses: numClasses,
		Weights:    make([][]float64, numClasses),
		Bias:       make([]float64, numClasses),
		mean:       make([]float64, nf),
		scale:      make([]float64, nf),
	}
	// Standardize.
	for _, x := range X {
		for f, v := range x {
			m.mean[f] += v
		}
	}
	for f := range m.mean {
		m.mean[f] /= float64(len(X))
	}
	for _, x := range X {
		for f, v := range x {
			d := v - m.mean[f]
			m.scale[f] += d * d
		}
	}
	for f := range m.scale {
		m.scale[f] = math.Sqrt(m.scale[f] / float64(len(X)))
		if m.scale[f] < 1e-12 {
			m.scale[f] = 1
		}
	}
	Z := make([][]float64, len(X))
	for i, x := range X {
		z := make([]float64, nf)
		for f, v := range x {
			z[f] = (v - m.mean[f]) / m.scale[f]
		}
		Z[i] = z
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	order := rng.Perm(len(Z))
	for c := 0; c < numClasses; c++ {
		w := make([]float64, nf)
		b := 0.0
		t := 0
		for epoch := 0; epoch < opts.Epochs; epoch++ {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			for _, i := range order {
				t++
				eta := 1 / (opts.Lambda * float64(t))
				label := -1.0
				if y[i] == c {
					label = 1
				}
				margin := b
				for f, v := range Z[i] {
					margin += w[f] * v
				}
				margin *= label
				// Pegasos update: shrink, then step on hinge violation.
				shrink := 1 - eta*opts.Lambda
				for f := range w {
					w[f] *= shrink
				}
				if margin < 1 {
					for f, v := range Z[i] {
						w[f] += eta * label * v
					}
					b += eta * label * 0.1 // damped bias update
				}
			}
		}
		m.Weights[c] = w
		m.Bias[c] = b
	}
	return m, nil
}

// Decision returns the raw one-vs-rest margins for x.
func (m *Model) Decision(x []float64) []float64 {
	out := make([]float64, m.NumClasses)
	z := make([]float64, len(x))
	for f, v := range x {
		z[f] = (v - m.mean[f]) / m.scale[f]
	}
	for c := 0; c < m.NumClasses; c++ {
		s := m.Bias[c]
		for f, v := range z {
			s += m.Weights[c][f] * v
		}
		out[c] = s
	}
	return out
}

// PredictProba applies a softmax over the margins to obtain a probability
// vector (Platt-style calibration is unnecessary for the ablation).
func (m *Model) PredictProba(x []float64) []float64 {
	d := m.Decision(x)
	maxd := math.Inf(-1)
	for _, v := range d {
		if v > maxd {
			maxd = v
		}
	}
	sum := 0.0
	for c := range d {
		d[c] = math.Exp(d[c] - maxd)
		sum += d[c]
	}
	for c := range d {
		d[c] /= sum
	}
	return d
}

// Predict returns the class with the largest margin.
func (m *Model) Predict(x []float64) int {
	d := m.Decision(x)
	best := 0
	for i := 1; i < len(d); i++ {
		if d[i] > d[best] {
			best = i
		}
	}
	return best
}

package svm

import (
	"math"
	"math/rand"
	"testing"
)

func blobs(seed int64, k, perClass int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var X [][]float64
	var y []int
	for c := 0; c < k; c++ {
		cx, cy := float64(c*10), float64((c%2)*10)
		for i := 0; i < perClass; i++ {
			X = append(X, []float64{cx + rng.NormFloat64(), cy + rng.NormFloat64()})
			y = append(y, c)
		}
	}
	return X, y
}

func TestBinarySeparable(t *testing.T) {
	X, y := blobs(1, 2, 50)
	m, err := Fit(X, y, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.97 {
		t.Errorf("accuracy = %v, want >= 0.97", acc)
	}
}

func TestMulticlass(t *testing.T) {
	X, y := blobs(2, 3, 50)
	m, err := Fit(X, y, 3, Options{Seed: 2, Epochs: 20})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.9 {
		t.Errorf("accuracy = %v, want >= 0.9", acc)
	}
}

func TestPredictProbaValid(t *testing.T) {
	X, y := blobs(3, 2, 30)
	m, err := Fit(X, y, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		p := m.PredictProba(x)
		s := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("bad probability vector %v", p)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("probs sum to %v", s)
		}
	}
}

func TestScaleInvariance(t *testing.T) {
	// Internal standardization should let wildly scaled features still work.
	rng := rand.New(rand.NewSource(4))
	var X [][]float64
	var y []int
	for i := 0; i < 60; i++ {
		c := i % 2
		X = append(X, []float64{float64(c)*1e6 + rng.NormFloat64()*1e4, rng.NormFloat64() * 1e-6})
		y = append(y, c)
	}
	m, err := Fit(X, y, 2, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Errorf("accuracy = %v on scaled data", acc)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, 2, Options{}); err == nil {
		t.Error("empty X should error")
	}
	if _, err := Fit([][]float64{{1}}, []int{0, 1}, 2, Options{}); err == nil {
		t.Error("length mismatch should error")
	}
}

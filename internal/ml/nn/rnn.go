// Package nn implements a bidirectional Elman recurrent network trained
// with backpropagation through time. It backs the RNN^C baseline: the
// cell-classification approach of Ghasemi-Gol et al. (2019) runs a
// recurrent network over embedded cell contexts; here the embedding is a
// trained input projection and the recurrence runs over the cells of each
// line, with stylistic features omitted exactly as in the paper's
// fair-comparison configuration.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Options configures network training.
type Options struct {
	// Hidden is the hidden state width per direction; 0 means 32.
	Hidden int
	// Epochs is the number of training passes; 0 means 15.
	Epochs int
	// LearningRate is the SGD step size; 0 means 0.05 (decays per epoch).
	LearningRate float64
	// Seed drives initialization and shuffling.
	Seed int64
	// ClipNorm bounds the per-sequence gradient norm; 0 means 5.
	ClipNorm float64
}

// Model is a trained bidirectional Elman network.
type Model struct {
	D, H, K int // input, hidden (per direction), classes

	WxF, WhF []float64 // forward cell: H*D, H*H
	BF       []float64 // H
	WxB, WhB []float64 // backward cell
	BB       []float64
	Wo       []float64 // K * 2H
	Bo       []float64 // K
}

// Fit trains the network on sequences of feature vectors with one label per
// item. All vectors must share one dimensionality.
func Fit(seqs [][][]float64, labels [][]int, numClasses int, opts Options) (*Model, error) {
	if len(seqs) == 0 {
		return nil, errors.New("nn: no training sequences")
	}
	if len(seqs) != len(labels) {
		return nil, fmt.Errorf("nn: %d sequences but %d label sequences", len(seqs), len(labels))
	}
	d := -1
	for s := range seqs {
		if len(seqs[s]) != len(labels[s]) {
			return nil, fmt.Errorf("nn: sequence %d length mismatch", s)
		}
		for _, x := range seqs[s] {
			if d < 0 {
				d = len(x)
			} else if len(x) != d {
				return nil, errors.New("nn: inconsistent feature dimensionality")
			}
		}
	}
	if d <= 0 {
		return nil, errors.New("nn: empty sequences")
	}
	if opts.Hidden <= 0 {
		opts.Hidden = 32
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 15
	}
	if opts.LearningRate <= 0 {
		opts.LearningRate = 0.05
	}
	if opts.ClipNorm <= 0 {
		opts.ClipNorm = 5
	}

	h, k := opts.Hidden, numClasses
	rng := rand.New(rand.NewSource(opts.Seed))
	m := &Model{
		D: d, H: h, K: k,
		WxF: initW(rng, h*d, d), WhF: initW(rng, h*h, h), BF: make([]float64, h),
		WxB: initW(rng, h*d, d), WhB: initW(rng, h*h, h), BB: make([]float64, h),
		Wo: initW(rng, k*2*h, 2*h), Bo: make([]float64, k),
	}

	g := newGrads(m)
	order := rng.Perm(len(seqs))
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		eta := opts.LearningRate / (1 + 0.3*float64(epoch))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, s := range order {
			if len(seqs[s]) == 0 {
				continue
			}
			g.zero()
			m.backprop(seqs[s], labels[s], g)
			g.clip(opts.ClipNorm)
			m.apply(g, eta)
		}
	}
	return m, nil
}

func initW(rng *rand.Rand, n, fanIn int) []float64 {
	r := 1 / math.Sqrt(float64(fanIn))
	w := make([]float64, n)
	for i := range w {
		w[i] = (rng.Float64()*2 - 1) * r
	}
	return w
}

type grads struct {
	wxF, whF, bF []float64
	wxB, whB, bB []float64
	wo, bo       []float64
	all          [][]float64
}

func newGrads(m *Model) *grads {
	g := &grads{
		wxF: make([]float64, len(m.WxF)), whF: make([]float64, len(m.WhF)), bF: make([]float64, len(m.BF)),
		wxB: make([]float64, len(m.WxB)), whB: make([]float64, len(m.WhB)), bB: make([]float64, len(m.BB)),
		wo: make([]float64, len(m.Wo)), bo: make([]float64, len(m.Bo)),
	}
	g.all = [][]float64{g.wxF, g.whF, g.bF, g.wxB, g.whB, g.bB, g.wo, g.bo}
	return g
}

func (g *grads) zero() {
	for _, a := range g.all {
		for i := range a {
			a[i] = 0
		}
	}
}

func (g *grads) clip(maxNorm float64) {
	n := 0.0
	for _, a := range g.all {
		for _, v := range a {
			n += v * v
		}
	}
	n = math.Sqrt(n)
	if n <= maxNorm {
		return
	}
	s := maxNorm / n
	for _, a := range g.all {
		for i := range a {
			a[i] *= s
		}
	}
}

func (m *Model) apply(g *grads, eta float64) {
	params := [][]float64{m.WxF, m.WhF, m.BF, m.WxB, m.WhB, m.BB, m.Wo, m.Bo}
	for p, a := range g.all {
		w := params[p]
		for i := range w {
			w[i] -= eta * a[i]
		}
	}
}

// forward runs both directions and returns hidden states and class
// probabilities per item.
func (m *Model) forward(seq [][]float64) (hf, hb, probs [][]float64) {
	T := len(seq)
	hf = alloc2d(T, m.H)
	hb = alloc2d(T, m.H)
	probs = alloc2d(T, m.K)
	prev := make([]float64, m.H)
	for t := 0; t < T; t++ {
		cellStep(m.WxF, m.WhF, m.BF, seq[t], prev, hf[t], m.H, m.D)
		prev = hf[t]
	}
	prev = make([]float64, m.H)
	for t := T - 1; t >= 0; t-- {
		cellStep(m.WxB, m.WhB, m.BB, seq[t], prev, hb[t], m.H, m.D)
		prev = hb[t]
	}
	for t := 0; t < T; t++ {
		logits := probs[t]
		for c := 0; c < m.K; c++ {
			s := m.Bo[c]
			row := m.Wo[c*2*m.H : (c+1)*2*m.H]
			for j := 0; j < m.H; j++ {
				s += row[j]*hf[t][j] + row[m.H+j]*hb[t][j]
			}
			logits[c] = s
		}
		softmaxInPlace(logits)
	}
	return hf, hb, probs
}

func cellStep(wx, wh, b, x, prev, out []float64, h, d int) {
	for j := 0; j < h; j++ {
		s := b[j]
		rowX := wx[j*d : (j+1)*d]
		for i, v := range x {
			s += rowX[i] * v
		}
		rowH := wh[j*h : (j+1)*h]
		for i, v := range prev {
			s += rowH[i] * v
		}
		out[j] = math.Tanh(s)
	}
}

func softmaxInPlace(v []float64) {
	maxv := math.Inf(-1)
	for _, x := range v {
		if x > maxv {
			maxv = x
		}
	}
	sum := 0.0
	for i := range v {
		v[i] = math.Exp(v[i] - maxv)
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
}

// backprop accumulates gradients for one sequence (cross-entropy loss).
func (m *Model) backprop(seq [][]float64, gold []int, g *grads) {
	T := len(seq)
	hf, hb, probs := m.forward(seq)

	dhf := alloc2d(T, m.H)
	dhb := alloc2d(T, m.H)
	for t := 0; t < T; t++ {
		for c := 0; c < m.K; c++ {
			dl := probs[t][c]
			if c == gold[t] {
				dl--
			}
			g.bo[c] += dl
			row := m.Wo[c*2*m.H : (c+1)*2*m.H]
			growRow := g.wo[c*2*m.H : (c+1)*2*m.H]
			for j := 0; j < m.H; j++ {
				growRow[j] += dl * hf[t][j]
				growRow[m.H+j] += dl * hb[t][j]
				dhf[t][j] += dl * row[j]
				dhb[t][j] += dl * row[m.H+j]
			}
		}
	}

	// BPTT over the forward chain (t descending).
	carry := make([]float64, m.H)
	dpre := make([]float64, m.H)
	for t := T - 1; t >= 0; t-- {
		for j := 0; j < m.H; j++ {
			dh := dhf[t][j] + carry[j]
			dpre[j] = dh * (1 - hf[t][j]*hf[t][j])
		}
		var prev []float64
		if t > 0 {
			prev = hf[t-1]
		}
		accumCell(g.wxF, g.whF, g.bF, seq[t], prev, dpre, m.H, m.D)
		nextCarry(carry, m.WhF, dpre, m.H)
	}
	// BPTT over the backward chain (t ascending).
	for j := range carry {
		carry[j] = 0
	}
	for t := 0; t < T; t++ {
		for j := 0; j < m.H; j++ {
			dh := dhb[t][j] + carry[j]
			dpre[j] = dh * (1 - hb[t][j]*hb[t][j])
		}
		var prev []float64
		if t < T-1 {
			prev = hb[t+1]
		}
		accumCell(g.wxB, g.whB, g.bB, seq[t], prev, dpre, m.H, m.D)
		nextCarry(carry, m.WhB, dpre, m.H)
	}
}

func accumCell(gwx, gwh, gb, x, prev, dpre []float64, h, d int) {
	for j := 0; j < h; j++ {
		gb[j] += dpre[j]
		rowX := gwx[j*d : (j+1)*d]
		for i, v := range x {
			rowX[i] += dpre[j] * v
		}
		if prev != nil {
			rowH := gwh[j*h : (j+1)*h]
			for i, v := range prev {
				rowH[i] += dpre[j] * v
			}
		}
	}
}

// nextCarry computes Wh^T * dpre into carry.
func nextCarry(carry, wh, dpre []float64, h int) {
	for i := 0; i < h; i++ {
		carry[i] = 0
	}
	for j := 0; j < h; j++ {
		row := wh[j*h : (j+1)*h]
		for i := 0; i < h; i++ {
			carry[i] += row[i] * dpre[j]
		}
	}
}

func alloc2d(r, c int) [][]float64 {
	out := make([][]float64, r)
	backing := make([]float64, r*c)
	for i := range out {
		out[i], backing = backing[:c:c], backing[c:]
	}
	return out
}

// PredictProbaSeq returns per-item class probabilities for a sequence.
func (m *Model) PredictProbaSeq(seq [][]float64) [][]float64 {
	if len(seq) == 0 {
		return nil
	}
	_, _, probs := m.forward(seq)
	return probs
}

// PredictSeq returns per-item class labels for a sequence.
func (m *Model) PredictSeq(seq [][]float64) []int {
	probs := m.PredictProbaSeq(seq)
	if probs == nil {
		return nil
	}
	out := make([]int, len(probs))
	for t, p := range probs {
		best := 0
		for c := 1; c < len(p); c++ {
			if p[c] > p[best] {
				best = c
			}
		}
		out[t] = best
	}
	return out
}

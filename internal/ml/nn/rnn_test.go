package nn

import (
	"math"
	"math/rand"
	"testing"
)

// emissionData: the label is directly encoded in the input vector.
func emissionData(seed int64, n, k int) (seqs [][][]float64, labels [][]int) {
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < n; s++ {
		T := rng.Intn(5) + 3
		seq := make([][]float64, T)
		lab := make([]int, T)
		for t := 0; t < T; t++ {
			c := rng.Intn(k)
			x := make([]float64, k)
			x[c] = 1
			x = append(x, rng.NormFloat64()*0.1)
			seq[t] = x
			lab[t] = c
		}
		seqs = append(seqs, seq)
		labels = append(labels, lab)
	}
	return seqs, labels
}

func accuracy(m *Model, seqs [][][]float64, labels [][]int) float64 {
	correct, total := 0, 0
	for s := range seqs {
		got := m.PredictSeq(seqs[s])
		for t := range got {
			total++
			if got[t] == labels[s][t] {
				correct++
			}
		}
	}
	return float64(correct) / float64(total)
}

func TestFitEmission(t *testing.T) {
	seqs, labels := emissionData(1, 80, 3)
	m, err := Fit(seqs, labels, 3, Options{Hidden: 8, Epochs: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, seqs, labels); acc < 0.95 {
		t.Errorf("training accuracy = %v, want >= 0.95", acc)
	}
}

// contextData: the label of every item is the value of its LEFT neighbor's
// input bit; only a recurrent model can solve this.
func contextData(seed int64, n int) (seqs [][][]float64, labels [][]int) {
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < n; s++ {
		T := rng.Intn(5) + 4
		seq := make([][]float64, T)
		lab := make([]int, T)
		prevBit := 0
		for t := 0; t < T; t++ {
			bit := rng.Intn(2)
			seq[t] = []float64{float64(bit), 1}
			lab[t] = prevBit
			prevBit = bit
		}
		seqs = append(seqs, seq)
		labels = append(labels, lab)
	}
	return seqs, labels
}

func TestRecurrenceCarriesContext(t *testing.T) {
	seqs, labels := contextData(2, 200)
	m, err := Fit(seqs, labels, 2, Options{Hidden: 12, Epochs: 40, LearningRate: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, seqs, labels); acc < 0.9 {
		t.Errorf("context accuracy = %v, want >= 0.9 (recurrence not learning)", acc)
	}
}

func TestPredictProbaValid(t *testing.T) {
	seqs, labels := emissionData(3, 30, 3)
	m, err := Fit(seqs, labels, 3, Options{Hidden: 6, Epochs: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range seqs[:10] {
		probs := m.PredictProbaSeq(seq)
		if len(probs) != len(seq) {
			t.Fatalf("prob rows = %d, want %d", len(probs), len(seq))
		}
		for _, p := range probs {
			s := 0.0
			for _, v := range p {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("bad prob %v", p)
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("probs sum to %v", s)
			}
		}
	}
}

func TestEmptySeq(t *testing.T) {
	seqs, labels := emissionData(4, 10, 2)
	m, err := Fit(seqs, labels, 2, Options{Hidden: 4, Epochs: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PredictSeq(nil); got != nil {
		t.Errorf("PredictSeq(nil) = %v", got)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, 2, Options{}); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Fit([][][]float64{{{1}}}, [][]int{{0, 1}}, 2, Options{}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Fit([][][]float64{{{1}, {1, 2}}}, [][]int{{0, 0}}, 2, Options{}); err == nil {
		t.Error("inconsistent dimensionality should error")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	seqs, labels := emissionData(5, 20, 2)
	m1, _ := Fit(seqs, labels, 2, Options{Hidden: 4, Epochs: 3, Seed: 7})
	m2, _ := Fit(seqs, labels, 2, Options{Hidden: 4, Epochs: 3, Seed: 7})
	for i := range m1.Wo {
		if m1.Wo[i] != m2.Wo[i] {
			t.Fatal("same seed must produce identical models")
		}
	}
}

// Package knn implements a k-nearest-neighbors classifier (brute-force
// Euclidean), one of the alternative backbones evaluated in Section 6.1.2.
package knn

import (
	"errors"
	"fmt"
	"sort"
)

// Model is a fitted KNN classifier (which simply memorizes the data).
type Model struct {
	K          int
	NumClasses int
	X          [][]float64
	Y          []int
}

// Fit stores the training data. k values < 1 default to 5 (the
// scikit-learn default).
func Fit(X [][]float64, y []int, numClasses, k int) (*Model, error) {
	if len(X) == 0 {
		return nil, errors.New("knn: no training samples")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("knn: %d samples but %d labels", len(X), len(y))
	}
	if k < 1 {
		k = 5
	}
	if k > len(X) {
		k = len(X)
	}
	return &Model{K: k, NumClasses: numClasses, X: X, Y: y}, nil
}

// PredictProba returns the class distribution among the k nearest
// neighbors of x.
func (m *Model) PredictProba(x []float64) []float64 {
	type cand struct {
		d2 float64
		y  int
	}
	cands := make([]cand, len(m.X))
	for i, xi := range m.X {
		d2 := 0.0
		for f := range x {
			d := x[f] - xi[f]
			d2 += d * d
		}
		cands[i] = cand{d2, m.Y[i]}
	}
	// Partial selection of the K nearest.
	sort.Slice(cands, func(a, b int) bool { return cands[a].d2 < cands[b].d2 })
	probs := make([]float64, m.NumClasses)
	for _, c := range cands[:m.K] {
		probs[c.y]++
	}
	for i := range probs {
		probs[i] /= float64(m.K)
	}
	return probs
}

// Predict returns the majority class among the k nearest neighbors,
// breaking ties toward the nearest neighbor's class.
func (m *Model) Predict(x []float64) int {
	p := m.PredictProba(x)
	best := 0
	for i := 1; i < len(p); i++ {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

package knn

import (
	"math"
	"math/rand"
	"testing"
)

func blobs(seed int64, k, perClass int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var X [][]float64
	var y []int
	for c := 0; c < k; c++ {
		cx := float64(c * 8)
		for i := 0; i < perClass; i++ {
			X = append(X, []float64{cx + rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, c)
		}
	}
	return X, y
}

func TestPredict(t *testing.T) {
	X, y := blobs(1, 3, 30)
	m, err := Fit(X, y, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Errorf("accuracy = %v", acc)
	}
	if m.Predict([]float64{16.2, 0}) != 2 {
		t.Error("point near third blob should be class 2")
	}
}

func TestK1MemorizesTraining(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []int{0, 1, 0, 1}
	m, err := Fit(X, y, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if m.Predict(x) != y[i] {
			t.Errorf("k=1 must reproduce training labels at %v", x)
		}
	}
}

func TestKClampedToDataSize(t *testing.T) {
	X := [][]float64{{0}, {1}}
	y := []int{0, 1}
	m, err := Fit(X, y, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 2 {
		t.Errorf("K = %d, want 2", m.K)
	}
}

func TestProbaCounts(t *testing.T) {
	X := [][]float64{{0}, {0.1}, {0.2}, {10}}
	y := []int{0, 0, 1, 1}
	m, err := Fit(X, y, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := m.PredictProba([]float64{0})
	if math.Abs(p[0]-2.0/3) > 1e-12 || math.Abs(p[1]-1.0/3) > 1e-12 {
		t.Errorf("probs = %v, want [2/3 1/3]", p)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, 2, 3); err == nil {
		t.Error("empty X should error")
	}
	if _, err := Fit([][]float64{{1}}, []int{0, 1}, 2, 3); err == nil {
		t.Error("mismatch should error")
	}
}

package forest

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// encodeToBytes is the test-side shorthand for one binary encoding.
func encodeToBytes(t *testing.T, f *Forest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// jsonBytes renders a forest through the canonical JSON writer.
func jsonBytes(t *testing.T, f *Forest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryRoundTripValidCorpus proves every valid_* fixture survives
// JSON → binary → JSON bit-exactly: the binary form carries every field,
// so the re-rendered JSON is byte-identical to the original rendering.
func TestBinaryRoundTripValidCorpus(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join(modelsDir, "valid_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no valid fixtures found")
	}
	for _, path := range matches {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := Load(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			bin := encodeToBytes(t, f)
			got, err := DecodeBinary(bytes.NewReader(bin))
			if err != nil {
				t.Fatalf("binary decode failed: %v", err)
			}
			if !bytes.Equal(jsonBytes(t, f), jsonBytes(t, got)) {
				t.Error("binary round trip changed the JSON rendering")
			}
			// Load must auto-detect the binary form and agree with it.
			auto, err := Load(bytes.NewReader(bin))
			if err != nil {
				t.Fatalf("auto-detecting Load rejected binary: %v", err)
			}
			if !bytes.Equal(jsonBytes(t, got), jsonBytes(t, auto)) {
				t.Error("auto-detected load differs from DecodeBinary")
			}
		})
	}
}

// TestBinaryRoundTripTrainedForest does the same for a real trained
// ensemble (probability leaves with non-trivial fractions, importance
// vectors) and checks predictions survive.
func TestBinaryRoundTripTrainedForest(t *testing.T) {
	f, X := trainedForest(t, 17, 4, 40, 12)
	got, err := DecodeBinary(bytes.NewReader(encodeToBytes(t, f)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonBytes(t, f), jsonBytes(t, got)) {
		t.Error("binary round trip changed the JSON rendering")
	}
	for i, x := range X[:20] {
		if !bitsEqual(f.PredictProba(x), got.PredictProba(x)) {
			t.Fatalf("row %d: decoded forest predicts differently", i)
		}
	}
	// Determinism: encoding twice yields identical bytes.
	if !bytes.Equal(encodeToBytes(t, f), encodeToBytes(t, f)) {
		t.Error("binary encoding is not deterministic")
	}
}

// TestBinaryRejectsCorruptCorpus re-encodes every corrupt_* fixture that
// still parses as JSON (the deliberately unparseable ones cannot reach the
// encoder) and demands the binary load rejects it too: the structural
// invariants are format-independent.
func TestBinaryRejectsCorruptCorpus(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join(modelsDir, "corrupt_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 10 {
		t.Fatalf("corrupt corpus too small: %d files", len(matches))
	}
	reencoded := 0
	for _, path := range matches {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Lenient decode: Load would already reject these, but the
			// invariant under test is that the *binary* form is rejected
			// as well, so the corrupt structure must first be smuggled
			// through the encoder.
			var f Forest
			if err := json.Unmarshal(data, &f); err != nil {
				t.Skipf("not JSON-decodable (%v): nothing to re-encode", err)
			}
			bin, err := f.AppendBinary(nil)
			if err != nil {
				// Counts beyond the 32-bit fields cannot be encoded at
				// all — rejection at encode time is rejection too.
				return
			}
			reencoded++
			if _, _, err := DecodeBinaryBytes(bin); !errors.Is(err, ErrInvalidModel) {
				t.Errorf("binary load of corrupt artifact returned %v, want ErrInvalidModel", err)
			}
		})
	}
	if reencoded < 8 {
		t.Errorf("only %d corrupt fixtures exercised the binary decoder", reencoded)
	}
}

// TestBinaryRejectsTruncation chops a valid encoding at every length and
// demands a typed error — never a success, never a panic.
func TestBinaryRejectsTruncation(t *testing.T) {
	f, _ := trainedForest(t, 19, 2, 20, 3)
	bin := encodeToBytes(t, f)
	step := len(bin)/64 + 1
	for n := 0; n < len(bin); n += step {
		if _, _, err := DecodeBinaryBytes(bin[:n]); !errors.Is(err, ErrInvalidModel) {
			t.Fatalf("truncation at %d/%d bytes returned %v, want ErrInvalidModel", n, len(bin), err)
		}
	}
	// Trailing garbage after a complete artifact is equally invalid for the
	// single-artifact reader.
	if _, err := DecodeBinary(bytes.NewReader(append(bin, 0xFF))); !errors.Is(err, ErrInvalidModel) {
		t.Error("trailing bytes accepted by DecodeBinary")
	}
}

func TestBinaryRejectsBadMagicAndVersion(t *testing.T) {
	f, _ := trainedForest(t, 23, 2, 20, 3)
	bin := encodeToBytes(t, f)

	bad := append([]byte(nil), bin...)
	bad[0] = 'X'
	if _, _, err := DecodeBinaryBytes(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic returned %v, want ErrBadMagic", err)
	}

	wrongVer := append([]byte(nil), bin...)
	binary.LittleEndian.PutUint32(wrongVer[4:], 999)
	if _, _, err := DecodeBinaryBytes(wrongVer); !errors.Is(err, ErrBadVersion) {
		t.Errorf("wrong version returned %v, want ErrBadVersion", err)
	}

	if !errors.Is(ErrBadMagic, ErrInvalidModel) || !errors.Is(ErrBadVersion, ErrInvalidModel) ||
		!errors.Is(ErrTruncated, ErrInvalidModel) {
		t.Error("binary sentinels must wrap ErrInvalidModel")
	}
}

// TestBinaryAllocationGuard hand-builds a header that declares an absurd
// tree count with almost no payload: the decoder must fail on the count
// check instead of attempting the allocation.
func TestBinaryAllocationGuard(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(ForestMagic[:])
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], binaryForestVersion)
	binary.LittleEndian.PutUint32(hdr[4:], 2)           // num_classes
	binary.LittleEndian.PutUint32(hdr[8:], 2)           // num_features
	binary.LittleEndian.PutUint32(hdr[12:], 0xFFFFFFF0) // num_trees
	buf.Write(hdr)
	if _, _, err := DecodeBinaryBytes(buf.Bytes()); !errors.Is(err, ErrTruncated) {
		t.Fatalf("hostile tree count returned %v, want ErrTruncated", err)
	}
}

package forest

import (
	"bytes"
	"testing"

	"strudel/internal/ml"
)

// benchSetup trains one mid-sized ensemble and stages a feature matrix of
// the given row count for the predict-path benchmarks.
func benchSetup(b *testing.B, rows int) (*Forest, *Compiled, *ml.Matrix) {
	b.Helper()
	X, y := blobs(1, 6, 400)
	f, err := Fit(X, y, 6, Options{NumTrees: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	c, err := f.Compile()
	if err != nil {
		b.Fatal(err)
	}
	m := ml.NewMatrix(rows, f.NumFeats)
	for r := 0; r < rows; r++ {
		m.SetRow(r, X[r%len(X)])
	}
	return f, c, m
}

// BenchmarkPredictMatrix compares the flattened SoA kernel against the
// pointer-walking forest on the same staged feature block. `make
// bench-predict` runs this pair; strudel-perf records the compiled/pointer
// rows-per-second ratio in the BENCH snapshot.
func BenchmarkPredictMatrix(b *testing.B) {
	const rows = 4096
	f, c, m := benchSetup(b, rows)
	out := make([]float64, rows*f.NumClasses)
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.PredictProbaMatrix(m, out)
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.PredictProbaMatrix(m, out)
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkPredictRow measures the single-row path both ways: the shape
// the streaming annotator hits when a window holds only a few lines.
func BenchmarkPredictRow(b *testing.B) {
	f, c, m := benchSetup(b, 1)
	row := make([]float64, f.NumFeats)
	for j := 0; j < f.NumFeats; j++ {
		row[j] = m.At(0, j)
	}
	probs := make([]float64, f.NumClasses)
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.PredictProba(row)
		}
	})
	b.Run("pointer_into", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.PredictProbaInto(row, probs)
		}
	})
}

// BenchmarkForestDecode compares cold-start decoding of the two model
// serializations for one ensemble: the motivation for the binary format.
func BenchmarkForestDecode(b *testing.B) {
	X, y := blobs(2, 6, 400)
	f, err := Fit(X, y, 6, Options{NumTrees: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var jsonBuf, binBuf bytes.Buffer
	if err := f.Save(&jsonBuf); err != nil {
		b.Fatal(err)
	}
	if err := f.EncodeBinary(&binBuf); err != nil {
		b.Fatal(err)
	}
	b.Run("json", func(b *testing.B) {
		b.SetBytes(int64(jsonBuf.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := Load(bytes.NewReader(jsonBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		b.SetBytes(int64(binBuf.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := Load(bytes.NewReader(binBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package forest

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strudel/internal/ml/tree"
)

// modelsDir is the committed artifact fixture corpus shared with
// strudel-lint's -models mode.
const modelsDir = "../../../testdata/models"

func TestValidateAcceptsTrainedForest(t *testing.T) {
	X := [][]float64{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {4, 5}, {5, 4}, {6, 7}, {7, 6}}
	y := []int{0, 1, 0, 1, 0, 1, 0, 1}
	f, err := Fit(X, y, 2, Options{NumTrees: 7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("freshly trained forest rejected: %v", err)
	}
}

func TestValidateNamesTreeIndex(t *testing.T) {
	f := &Forest{
		Trees: []*tree.Tree{
			{Nodes: []tree.Node{{Feature: -1, Probs: []float64{1, 0}}}, NumClasses: 2},
			{Nodes: []tree.Node{{Feature: -1, Probs: []float64{0.6, 0.6}}}, NumClasses: 2},
		},
		NumClasses: 2,
		NumFeats:   1,
	}
	err := f.Validate()
	if !errors.Is(err, tree.ErrBadLeafProbs) {
		t.Fatalf("got %v, want ErrBadLeafProbs", err)
	}
	if !strings.Contains(err.Error(), "trees[1]") {
		t.Errorf("error %v does not name the corrupt tree", err)
	}
}

func TestValidateNilTree(t *testing.T) {
	f := &Forest{Trees: []*tree.Tree{nil}, NumClasses: 2, NumFeats: 1}
	if err := f.Validate(); !errors.Is(err, ErrNoTrees) {
		t.Fatalf("got %v, want ErrNoTrees", err)
	}
}

// TestLoadRejectsCorruptCorpus drives forest.Load over every committed
// corrupt_*.json fixture: each must fail with an ErrInvalidModel-wrapped
// error — never succeed, never panic.
func TestLoadRejectsCorruptCorpus(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join(modelsDir, "corrupt_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 10 {
		t.Fatalf("corrupt corpus too small: %d files", len(matches))
	}
	for _, path := range matches {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := Load(bytes.NewReader(data))
			if err == nil {
				t.Fatalf("corrupt artifact loaded successfully: %+v", f)
			}
			if !errors.Is(err, ErrInvalidModel) {
				t.Errorf("error %v does not wrap ErrInvalidModel", err)
			}
		})
	}
}

// TestLoadAcceptsValidCorpus pins the valid fixtures: they load, validate,
// and predict without error.
func TestLoadAcceptsValidCorpus(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join(modelsDir, "valid_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no valid fixtures found")
	}
	for _, path := range matches {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := Load(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("valid artifact rejected: %v", err)
			}
			probs := f.PredictProba(make([]float64, f.NumFeats))
			if len(probs) != f.NumClasses {
				t.Errorf("predicted %d probabilities, want %d", len(probs), f.NumClasses)
			}
		})
	}
}

// TestSaveLoadRoundTripStillValid guards the Save→Load→Validate loop on a
// real trained model.
func TestSaveLoadRoundTripStillValid(t *testing.T) {
	X := [][]float64{{0, 1, 2}, {1, 0, 3}, {2, 3, 0}, {3, 2, 1}, {4, 5, 2}, {5, 4, 3}}
	y := []int{0, 1, 0, 1, 0, 1}
	f, err := Fit(X, y, 2, Options{NumTrees: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("round-trip load failed: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped forest invalid: %v", err)
	}
}

package forest

import (
	"runtime"
	"sync"

	"strudel/internal/ml"
	"strudel/internal/ml/tree"
)

// Predictor is the consolidated prediction surface: both the
// pointer-walking *Forest and the flattened *Compiled implement it, so the
// pipeline scores feature blocks without knowing which engine is behind
// them. PredictProbaMatrix is the primary entry point — one staged
// block in, one caller-owned probability slab out; PredictProba is the
// single-row convenience the baselines and tools use.
//
// The class-count method is named Classes (not NumClasses as on the
// serialized Forest struct) because Go forbids a field and a method sharing
// a name; Classes/NumFeatures are the interface spellings of the
// NumClasses/NumFeats fields.
type Predictor interface {
	// Classes returns the number of classes, i.e. the length of every
	// probability vector the predictor produces.
	Classes() int
	// NumFeatures returns the feature-vector width the predictor was
	// trained on.
	NumFeatures() int
	// PredictProba returns the class probability vector for one row.
	PredictProba(x []float64) []float64
	// PredictProbaMatrix classifies every row of the staged feature block x,
	// writing row r's probabilities into out[r*Classes() : (r+1)*Classes()].
	// out must have length at least x.Rows*Classes(). Rows are independent,
	// so implementations parallelize over disjoint row ranges with output
	// identical to a serial sweep.
	PredictProbaMatrix(x *ml.Matrix, out []float64)
}

var (
	_ Predictor = (*Forest)(nil)
	_ Predictor = (*Compiled)(nil)
)

// PredictorBatch adapts the row-oriented batch API onto any Predictor: the
// rows are staged into one feature block, classified in a single
// PredictProbaMatrix pass, and returned as per-row views into one shared
// probability slab. All rows must have the same length (the predictor's
// feature width); the returned vectors are capacity-capped so appending to
// one cannot bleed into its neighbor.
func PredictorBatch(p Predictor, X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	if len(X) == 0 {
		return out
	}
	m := ml.NewMatrix(len(X), p.NumFeatures())
	m.FillRows(X)
	k := p.Classes()
	slab := make([]float64, len(X)*k)
	p.PredictProbaMatrix(m, slab)
	for i := range out {
		out[i] = slab[i*k : (i+1)*k : (i+1)*k]
	}
	return out
}

// PredictorClasses is PredictorBatch reduced to hard labels.
func PredictorClasses(p Predictor, X [][]float64) []int {
	probs := PredictorBatch(p, X)
	out := make([]int, len(X))
	for i, pr := range probs {
		out[i] = tree.ArgMax(pr)
	}
	return out
}

// rowPredictor is the internal kernel contract behind the shared parallel
// driver: predict rows [lo, hi) of x into the matching region of out.
type rowPredictor interface {
	predictRows(x *ml.Matrix, out []float64, lo, hi int)
}

// minParallelRows is the batch size below which fanning out goroutines
// costs more than the prediction work they would split.
const minParallelRows = 32

// runMatrix drives a kernel over x, splitting the rows into contiguous
// chunks across GOMAXPROCS goroutines. Each chunk writes a disjoint region
// of out and per-row arithmetic is independent of the chunking, so the
// result is bit-identical at every parallelism level.
func runMatrix(p rowPredictor, x *ml.Matrix, out []float64) {
	rows := x.Rows
	if rows == 0 {
		return
	}
	jobs := runtime.GOMAXPROCS(0)
	if jobs > rows {
		jobs = rows
	}
	if jobs <= 1 || rows < minParallelRows {
		p.predictRows(x, out, 0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + jobs - 1) / jobs
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go runChunk(&wg, p, x, out, lo, hi)
	}
	wg.Wait()
}

// runChunk is the named goroutine body of runMatrix (no captured loop
// state: every per-chunk value arrives as an argument).
func runChunk(wg *sync.WaitGroup, p rowPredictor, x *ml.Matrix, out []float64, lo, hi int) {
	defer wg.Done()
	p.predictRows(x, out, lo, hi)
}

package forest

import (
	"fmt"

	"strudel/internal/ml/tree"
)

// ErrInvalidModel is the shared root sentinel for structural violations in
// serialized model artifacts; every forest- and tree-level invariant error
// wraps it. It is the same value as tree.ErrInvalidModel, so a single
// errors.Is check covers both layers.
var ErrInvalidModel = tree.ErrInvalidModel

// ErrNoTrees marks an ensemble with no trees: averaging over zero trees
// divides by zero and every prediction would be NaN.
var ErrNoTrees = fmt.Errorf("%w: ensemble has no trees", ErrInvalidModel)

// ErrBadDims marks a forest whose declared class or feature counts are not
// positive, making every downstream shape check meaningless.
var ErrBadDims = fmt.Errorf("%w: non-positive class or feature count", ErrInvalidModel)

// A ModelError locates an invariant violation inside an artifact; it is the
// tree package's type re-exported so forest callers need only one import.
type ModelError = tree.ModelError

// Validate proves the ensemble invariants prediction relies on: at least
// one tree, positive class and feature counts, and every tree individually
// valid (see tree.Validate) against the forest's declared dimensions. The
// first violation is returned as a *ModelError wrapping the specific
// sentinel, with the tree's index on the path.
func (f *Forest) Validate() error {
	if f.NumClasses <= 0 || f.NumFeats <= 0 {
		return &ModelError{
			Path: "num_classes/num_features",
			Err:  fmt.Errorf("%w: %d classes, %d features", ErrBadDims, f.NumClasses, f.NumFeats),
		}
	}
	if len(f.Trees) == 0 {
		return &ModelError{Path: "trees", Err: ErrNoTrees}
	}
	for i, t := range f.Trees {
		path := fmt.Sprintf("trees[%d]", i)
		if t == nil {
			return &ModelError{Path: path, Err: fmt.Errorf("%w: missing tree", ErrNoTrees)}
		}
		if err := t.Validate(f.NumFeats, f.NumClasses); err != nil {
			return &ModelError{Path: path, Err: err}
		}
	}
	return nil
}

package forest

import (
	"encoding/binary"
	"fmt"
	"math"

	"strudel/internal/ml"
)

// Compiled is a forest flattened for the prediction hot path. Every tree's
// nodes are concatenated into one contiguous node array — a flat slab of
// 16-byte packed records indexed by a global node id — and all leaf
// probability vectors are pooled into a single shared slab, deduplicated,
// and referenced by offset. The layout carries zero per-node pointers:
// traversal is integer index chasing through one flat array, and identical
// leaves (pure leaves dominate a trained forest) share one slab entry, so
// the whole ensemble's working set is a few cache-resident slices instead
// of thousands of heap objects.
//
// Each packed record folds the node's feature index and child/leaf offset
// into one word next to its threshold, and the flattener renumbers nodes
// so every internal node's children are adjacent (right = left+1). A walk
// step therefore reads exactly one 16-byte record — one cache line —
// where the pointer path reads a 48-byte tree.Node and the naive
// four-parallel-arrays layout touched three lines per step.
//
// A Compiled value is immutable after Compile and safe for concurrent use.
// Its predictions are float-identical to the source forest's: the matrix
// kernel accumulates trees in the same order and divides by the same count
// as Forest.PredictProba.
type Compiled struct {
	classes int
	feats   int
	trees   int
	// roots[t] is the flat index of tree t's root node.
	roots []int32
	// nodes is the flattened node slab (see packedNode).
	nodes []packedNode
	// probs is the pooled leaf-probability slab: a leaf's vector is
	// probs[off : off+classes] where off is the leaf record's low word.
	// Identical vectors are stored once.
	probs []float64
}

// packedNode is one flattened tree node. bits holds the split feature in
// the high 32 bits (leafSentinel for a leaf) and in the low 32 bits the
// flat index of the left child — the right child is always left+1 by
// construction — or, for a leaf, the node's offset into the probability
// slab. thresh is the split threshold (unused for leaves).
type packedNode struct {
	bits   uint64
	thresh float64
}

func packNode(feature, leftOrOff int32) uint64 {
	return uint64(uint32(feature))<<32 | uint64(uint32(leftOrOff))
}

// leafSentinel marks a leaf in the packed feature word (mirroring the
// Feature == -1 convention of tree.Node).
const leafSentinel = int32(-1)

// Compile flattens the forest into its packed prediction form. The forest
// is validated first — the flattener trusts node links and leaf shapes —
// so a corrupt ensemble fails here with a typed ErrInvalidModel error
// rather than compiling into an engine that walks out of bounds.
func (f *Forest) Compile() (*Compiled, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("forest: compile: %w", err)
	}
	total := 0
	for _, t := range f.Trees {
		total += len(t.Nodes)
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("forest: compile: %d nodes exceed the flat index range", total)
	}
	c := &Compiled{
		classes: f.NumClasses,
		feats:   f.NumFeats,
		trees:   len(f.Trees),
		roots:   make([]int32, len(f.Trees)),
		nodes:   make([]packedNode, total),
	}
	// Leaf probability pooling: the dedup map only answers "seen before?";
	// slab layout is decided by deterministic node order, so compiling the
	// same forest always produces the same arrays.
	pool := make(map[string]int32)
	key := make([]byte, 8*f.NumClasses)
	base := int32(0)
	for ti, t := range f.Trees {
		c.roots[ti] = base
		// order maps the tree's original node indices to flat slots. Nodes
		// are renumbered breadth-first with sibling pairs placed adjacently,
		// which is what lets a record store only the left-child index.
		order := make([]int32, len(t.Nodes))
		// BFS pair allocation: slot 0 is the root; every dequeued internal
		// node claims the next two slots for its children.
		queue := make([]int32, 0, len(t.Nodes))
		queue = append(queue, 0)
		order[0] = 0
		next := int32(1)
		for qi := 0; qi < len(queue); qi++ {
			oi := queue[qi]
			n := &t.Nodes[oi]
			if n.Feature < 0 {
				continue
			}
			order[n.Left] = next
			order[n.Right] = next + 1
			next += 2
			queue = append(queue, n.Left, n.Right)
		}
		for qi := 0; qi < len(queue); qi++ {
			oi := queue[qi]
			n := &t.Nodes[oi]
			i := base + order[oi]
			if n.Feature < 0 {
				for j, p := range n.Probs {
					binary.LittleEndian.PutUint64(key[8*j:], math.Float64bits(p))
				}
				off, ok := pool[string(key)]
				if !ok {
					off = int32(len(c.probs))
					pool[string(key)] = off
					c.probs = append(c.probs, n.Probs...)
				}
				c.nodes[i] = packedNode{bits: packNode(leafSentinel, off)}
				continue
			}
			c.nodes[i] = packedNode{
				bits:   packNode(int32(n.Feature), base+order[n.Left]),
				thresh: n.Threshold,
			}
		}
		base += int32(len(t.Nodes))
	}
	return c, nil
}

// Classes returns the number of classes.
func (c *Compiled) Classes() int { return c.classes }

// NumFeatures returns the feature-vector width the forest was trained on.
func (c *Compiled) NumFeatures() int { return c.feats }

// NumTrees returns the ensemble size.
func (c *Compiled) NumTrees() int { return c.trees }

// NumNodes returns the total node count across all flattened trees.
func (c *Compiled) NumNodes() int { return len(c.nodes) }

// SlabLen returns the pooled probability slab length — with deduplication
// this is typically far below leaves×classes.
func (c *Compiled) SlabLen() int { return len(c.probs) }

// PredictProba returns the class probability vector for one row, averaged
// over all trees. Float-identical to Forest.PredictProba.
func (c *Compiled) PredictProba(x []float64) []float64 {
	out := make([]float64, c.classes)
	c.accumulate(x, out)
	n := float64(c.trees)
	for j := range out {
		out[j] /= n
	}
	return out
}

// accumulate adds every tree's leaf vector for x into acc (no divide).
func (c *Compiled) accumulate(x []float64, acc []float64) {
	nodes := c.nodes
	for _, root := range c.roots {
		ni := int(root)
		for uint(ni) < uint(len(nodes)) { // always true: Compile validates links
			nd := nodes[ni]
			f := int(int32(nd.bits >> 32))
			if f < 0 {
				off := int(uint32(nd.bits))
				p := c.probs[off : off+c.classes]
				p = p[:len(acc)]
				for j := range acc {
					acc[j] += p[j]
				}
				break
			}
			if uint(f) >= uint(len(x)) { // always false: features validated
				break
			}
			ni = int(uint32(nd.bits))
			if x[f] > nd.thresh {
				ni++
			}
		}
	}
}

// PredictProbaMatrix classifies every row of the staged feature block x
// into the caller-owned slab out (length ≥ x.Rows*Classes()), fanning
// contiguous row chunks across GOMAXPROCS goroutines. Chunks write disjoint
// output regions and per-row arithmetic never crosses rows, so the slab is
// bit-identical at every parallelism level.
func (c *Compiled) PredictProbaMatrix(x *ml.Matrix, out []float64) {
	runMatrix(c, x, out)
}

// predictRows is the serial kernel over rows [lo, hi). Each row is a
// zero-copy contiguous view into the row-major block that stays L1-resident
// across every tree walk; trees accumulate in ascending index order —
// matching the pointer path's averaging order exactly — and the final
// divide uses the same ensemble count, so the output is float-identical to
// Forest.PredictProba.
func (c *Compiled) predictRows(x *ml.Matrix, out []float64, lo, hi int) {
	k := c.classes
	nTrees := float64(c.trees)
	for r := lo; r < hi; r++ {
		o := out[r*k : r*k+k]
		for j := range o {
			o[j] = 0
		}
		c.accumulate(x.Row(r), o)
		for j := range o {
			o[j] /= nTrees
		}
	}
}

package forest

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// blobs generates k well-separated clusters.
func blobs(seed int64, k, perClass int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var X [][]float64
	var y []int
	for c := 0; c < k; c++ {
		cx, cy := float64(c*6), float64((c%2)*6)
		for i := 0; i < perClass; i++ {
			X = append(X, []float64{cx + rng.NormFloat64()*0.5, cy + rng.NormFloat64()*0.5})
			y = append(y, c)
		}
	}
	return X, y
}

func TestFitAndPredict(t *testing.T) {
	X, y := blobs(1, 3, 50)
	f, err := Fit(X, y, 3, Options{NumTrees: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range X {
		if f.Predict(x) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.98 {
		t.Errorf("training accuracy = %v, want >= 0.98", acc)
	}
}

func TestPredictProbaValid(t *testing.T) {
	X, y := blobs(2, 4, 30)
	f, err := Fit(X, y, 4, Options{NumTrees: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X[:20] {
		p := f.PredictProba(x)
		if len(p) != 4 {
			t.Fatalf("len(probs) = %d", len(p))
		}
		s := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("prob out of range: %v", p)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("probs sum to %v", s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	X, y := blobs(3, 3, 40)
	f1, err := Fit(X, y, 3, Options{NumTrees: 10, Seed: 99, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fit(X, y, 3, Options{NumTrees: 10, Seed: 99, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1.Trees {
		a, b := f1.Trees[i], f2.Trees[i]
		if len(a.Nodes) != len(b.Nodes) {
			t.Fatalf("tree %d sizes differ (parallel vs serial)", i)
		}
		for j := range a.Nodes {
			if a.Nodes[j].Feature != b.Nodes[j].Feature || a.Nodes[j].Threshold != b.Nodes[j].Threshold {
				t.Fatalf("tree %d node %d differs", i, j)
			}
		}
	}
}

func TestSeedChangesForest(t *testing.T) {
	X, y := blobs(4, 2, 40)
	f1, _ := Fit(X, y, 2, Options{NumTrees: 5, Seed: 1})
	f2, _ := Fit(X, y, 2, Options{NumTrees: 5, Seed: 2})
	same := true
	for i := range f1.Trees {
		if len(f1.Trees[i].Nodes) != len(f2.Trees[i].Nodes) {
			same = false
			break
		}
	}
	if same {
		// Sizes matching is possible; compare thresholds of first tree.
		a, b := f1.Trees[0].Nodes, f2.Trees[0].Nodes
		identical := len(a) == len(b)
		if identical {
			for i := range a {
				if a[i].Threshold != b[i].Threshold {
					identical = false
					break
				}
			}
		}
		if identical {
			t.Error("different seeds produced identical forests")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	X, y := blobs(5, 3, 30)
	f, err := Fit(X, y, 3, Options{NumTrees: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X[:15] {
		pa, pb := f.PredictProba(x), g.PredictProba(x)
		for c := range pa {
			if math.Abs(pa[c]-pb[c]) > 1e-12 {
				t.Fatalf("probabilities differ after round trip: %v vs %v", pa, pb)
			}
		}
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{}")); err == nil {
		t.Error("loading an empty model should fail")
	}
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("loading junk should fail")
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, 2, Options{}); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := Fit([][]float64{{1}}, []int{0, 1}, 2, Options{}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Fit([][]float64{{1}}, []int{5}, 2, Options{}); err == nil {
		t.Error("out-of-range label should error")
	}
}

func TestBatchMatchesSingle(t *testing.T) {
	X, y := blobs(6, 3, 30)
	f, err := Fit(X, y, 3, Options{NumTrees: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	batch := f.PredictProbaBatch(X)
	for i, x := range X {
		single := f.PredictProba(x)
		for c := range single {
			if math.Abs(single[c]-batch[i][c]) > 1e-12 {
				t.Fatalf("batch differs from single at row %d", i)
			}
		}
	}
	labels := f.PredictBatch(X)
	correct := 0
	for i := range labels {
		if labels[i] == y[i] {
			correct++
		}
	}
	if float64(correct)/float64(len(y)) < 0.95 {
		t.Error("batch accuracy too low")
	}
}

func TestMaxSamples(t *testing.T) {
	X, y := blobs(7, 2, 100)
	f, err := Fit(X, y, 2, Options{NumTrees: 5, Seed: 7, MaxSamples: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Trees trained on 20% subsamples are much smaller than full trees.
	full, _ := Fit(X, y, 2, Options{NumTrees: 5, Seed: 7})
	small, big := 0, 0
	for i := range f.Trees {
		small += len(f.Trees[i].Nodes)
		big += len(full.Trees[i].Nodes)
	}
	if small > big {
		t.Errorf("subsampled forest (%d nodes) bigger than full (%d)", small, big)
	}
}

func TestGiniImportance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X := make([][]float64, 200)
	y := make([]int, 200)
	for i := range X {
		c := i % 2
		X[i] = []float64{rng.Float64(), float64(c)*4 + rng.NormFloat64()*0.2}
		y[i] = c
	}
	f, err := Fit(X, y, 2, Options{NumTrees: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	imp := f.GiniImportance()
	if imp[1] <= imp[0] {
		t.Errorf("importance = %v, informative feature should dominate", imp)
	}
	if s := imp[0] + imp[1]; s < 0.999 || s > 1.001 {
		t.Errorf("importance sums to %v", s)
	}
}

func TestFitWithOOB(t *testing.T) {
	X, y := blobs(11, 3, 60)
	f, oob, err := FitWithOOB(X, y, 3, Options{NumTrees: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("nil forest")
	}
	if oob < 0.9 {
		t.Errorf("OOB accuracy = %v on separable blobs, want >= 0.9", oob)
	}
	if oob > 1 {
		t.Errorf("OOB accuracy = %v > 1", oob)
	}
}

func TestFitWithOOBMatchesFitForest(t *testing.T) {
	X, y := blobs(12, 2, 40)
	f1, _, err := FitWithOOB(X, y, 2, Options{NumTrees: 8, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fit(X, y, 2, Options{NumTrees: 8, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1.Trees {
		if len(f1.Trees[i].Nodes) != len(f2.Trees[i].Nodes) {
			t.Fatal("FitWithOOB must train the same forest as Fit")
		}
	}
}

package forest

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"strudel/internal/ml"
	"strudel/internal/ml/tree"
)

// bitsEqual compares two probability vectors for exact bit identity —
// the contract between the pointer and compiled paths is float-identical,
// not merely close.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func trainedForest(t *testing.T, seed int64, classes, perClass, trees int) (*Forest, [][]float64) {
	t.Helper()
	X, y := blobs(seed, classes, perClass)
	f, err := Fit(X, y, classes, Options{NumTrees: trees, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f, X
}

func TestCompileMatchesPointerPredictions(t *testing.T) {
	f, X := trainedForest(t, 7, 4, 40, 25)
	c, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Classes() != f.NumClasses || c.NumFeatures() != f.NumFeats || c.NumTrees() != len(f.Trees) {
		t.Fatalf("compiled dims (%d,%d,%d) != forest (%d,%d,%d)",
			c.Classes(), c.NumFeatures(), c.NumTrees(), f.NumClasses, f.NumFeats, len(f.Trees))
	}
	for i, x := range X {
		want := f.PredictProba(x)
		got := c.PredictProba(x)
		if !bitsEqual(want, got) {
			t.Fatalf("row %d: compiled %v != pointer %v", i, got, want)
		}
	}
}

func TestCompiledMatrixMatchesRowPath(t *testing.T) {
	f, X := trainedForest(t, 3, 3, 60, 15) // 180 rows: well past the parallel threshold
	c, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	m := ml.NewMatrix(len(X), f.NumFeats)
	m.FillRows(X)
	k := f.NumClasses

	compiled := make([]float64, len(X)*k)
	c.PredictProbaMatrix(m, compiled)
	pointer := make([]float64, len(X)*k)
	f.PredictProbaMatrix(m, pointer)
	serial := make([]float64, len(X)*k)
	c.predictRows(m, serial, 0, len(X))

	if !bitsEqual(compiled, pointer) {
		t.Error("compiled matrix kernel differs from pointer matrix kernel")
	}
	if !bitsEqual(compiled, serial) {
		t.Error("parallel matrix kernel differs from the serial sweep")
	}
	for i, x := range X {
		if !bitsEqual(compiled[i*k:(i+1)*k], f.PredictProba(x)) {
			t.Fatalf("row %d: matrix path differs from row-at-a-time PredictProba", i)
		}
	}
}

func TestPredictorBatchWrappersEquivalent(t *testing.T) {
	f, X := trainedForest(t, 11, 3, 30, 10)
	c, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	viaForest := f.PredictProbaBatch(X)
	viaCompiled := PredictorBatch(c, X)
	for i := range X {
		if !bitsEqual(viaForest[i], viaCompiled[i]) {
			t.Fatalf("row %d: PredictProbaBatch %v != compiled batch %v", i, viaForest[i], viaCompiled[i])
		}
	}
	if !reflect.DeepEqual(f.PredictBatch(X), PredictorClasses(c, X)) {
		t.Error("PredictBatch labels differ between engines")
	}
	if got := PredictorBatch(c, nil); len(got) != 0 {
		t.Errorf("empty batch produced %d rows", len(got))
	}
}

// TestCompileDedupsLeafSlab pins the slab pooling: a trained forest has
// many identical (mostly pure) leaves, so the pooled slab must be strictly
// smaller than leaves×classes, and compiling twice must produce identical
// arrays (deterministic layout).
func TestCompileDedupsLeafSlab(t *testing.T) {
	f, _ := trainedForest(t, 5, 3, 50, 20)
	leaves := 0
	for _, tr := range f.Trees {
		leaves += tr.NumLeaves()
	}
	c1, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c1.SlabLen() >= leaves*f.NumClasses {
		t.Errorf("slab %d floats for %d leaves × %d classes: no deduplication happened",
			c1.SlabLen(), leaves, f.NumClasses)
	}
	c2, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Error("compiling the same forest twice produced different layouts")
	}
	if c1.NumNodes() == 0 {
		t.Error("compiled forest reports zero nodes")
	}
}

func TestCompileRejectsInvalidForest(t *testing.T) {
	bad := &Forest{
		Trees:      []*tree.Tree{{Nodes: []tree.Node{{Feature: 9, Left: 0, Right: 0}}, NumClasses: 2}},
		NumClasses: 2,
		NumFeats:   2,
	}
	if _, err := bad.Compile(); !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("compiling a corrupt forest returned %v, want ErrInvalidModel", err)
	}
	empty := &Forest{NumClasses: 2, NumFeats: 2}
	if _, err := empty.Compile(); !errors.Is(err, ErrNoTrees) {
		t.Fatalf("compiling an empty ensemble returned %v, want ErrNoTrees", err)
	}
}

// TestPredictProbaIntoNoAlloc pins the satellite fix: the pointer path
// accumulates into the caller's buffer with zero allocations per call.
func TestPredictProbaIntoNoAlloc(t *testing.T) {
	f, X := trainedForest(t, 13, 3, 30, 10)
	probs := make([]float64, f.NumClasses)
	x := X[0]
	allocs := testing.AllocsPerRun(100, func() {
		f.PredictProbaInto(x, probs)
	})
	if allocs != 0 {
		t.Errorf("PredictProbaInto allocates %v times per call, want 0", allocs)
	}
}

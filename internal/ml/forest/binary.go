package forest

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"strudel/internal/ml/tree"
)

// Binary forest encoding. JSON stays the interchange format; the binary
// form exists for fast cold start — decoding is a single linear scan with
// no tokenizer — and is validated by the same structural verifier as JSON
// on every load. Layout (all integers little-endian):
//
//	magic   "SBF1" (4 bytes)
//	u32     format version (binaryForestVersion)
//	i32     num_classes
//	i32     num_features
//	u32     num_trees
//	per tree:
//	  i32   tree num_classes
//	  u32   num_nodes
//	  u32   importance length
//	  per node: i32 feature, f64 threshold, i32 left, i32 right,
//	            u32 prob length, f64×len probs
//	  f64×len importance
//
// Every field of the in-memory model is carried verbatim (signed counts
// included), so any JSON artifact that decodes — valid or structurally
// corrupt — re-encodes to binary losslessly and trips the same validator
// invariant on load. Encoding is deterministic: the same forest always
// produces the same bytes.

// ForestMagic is the 4-byte prefix of a binary forest artifact.
var ForestMagic = [4]byte{'S', 'B', 'F', '1'}

const binaryForestVersion = 1

// Binary-format rejection sentinels. All wrap ErrInvalidModel so one
// errors.Is check covers JSON and binary artifacts alike.
var (
	// ErrBadMagic marks a blob that does not start with the expected magic.
	ErrBadMagic = fmt.Errorf("%w: bad binary magic", ErrInvalidModel)
	// ErrBadVersion marks a binary artifact with an unsupported format
	// version.
	ErrBadVersion = fmt.Errorf("%w: unsupported binary format version", ErrInvalidModel)
	// ErrTruncated marks a binary artifact that ends before its declared
	// contents do (or declares more contents than its bytes could hold).
	ErrTruncated = fmt.Errorf("%w: truncated binary artifact", ErrInvalidModel)
)

// binarySize returns the exact encoded size in bytes, so AppendBinary
// allocates once.
func (f *Forest) binarySize() int {
	n := 4 + 4 + 4 + 4 + 4 // magic, version, classes, features, numTrees
	for _, t := range f.Trees {
		n += 4 + 4 + 4 // tree classes, numNodes, importanceLen
		for i := range t.Nodes {
			n += 4 + 8 + 4 + 4 + 4 + 8*len(t.Nodes[i].Probs)
		}
		n += 8 * len(t.Importance)
	}
	return n
}

// AppendBinary appends the forest's binary encoding to buf and returns the
// extended slice. It fails only when a count falls outside the format's
// 32-bit fields.
func (f *Forest) AppendBinary(buf []byte) ([]byte, error) {
	if err := checkI32("num_classes", f.NumClasses); err != nil {
		return nil, err
	}
	if err := checkI32("num_features", f.NumFeats); err != nil {
		return nil, err
	}
	buf = append(buf, ForestMagic[:]...)
	buf = appendU32(buf, binaryForestVersion)
	buf = appendU32(buf, uint32(int32(f.NumClasses)))
	buf = appendU32(buf, uint32(int32(f.NumFeats)))
	buf = appendU32(buf, uint32(len(f.Trees)))
	for ti, t := range f.Trees {
		if t == nil {
			return nil, fmt.Errorf("forest: encode: trees[%d] is nil", ti)
		}
		if err := checkI32("tree num_classes", t.NumClasses); err != nil {
			return nil, err
		}
		buf = appendU32(buf, uint32(int32(t.NumClasses)))
		buf = appendU32(buf, uint32(len(t.Nodes)))
		buf = appendU32(buf, uint32(len(t.Importance)))
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if err := checkI32("node feature", n.Feature); err != nil {
				return nil, err
			}
			buf = appendU32(buf, uint32(int32(n.Feature)))
			buf = appendU64(buf, math.Float64bits(n.Threshold))
			buf = appendU32(buf, uint32(n.Left))
			buf = appendU32(buf, uint32(n.Right))
			buf = appendU32(buf, uint32(len(n.Probs)))
			for _, p := range n.Probs {
				buf = appendU64(buf, math.Float64bits(p))
			}
		}
		for _, v := range t.Importance {
			buf = appendU64(buf, math.Float64bits(v))
		}
	}
	return buf, nil
}

// EncodeBinary writes the forest's binary encoding to w. Unlike Save (the
// JSON interchange writer) the output is a fixed-layout blob; pair it with
// DecodeBinary or the auto-detecting Load.
func (f *Forest) EncodeBinary(w io.Writer) error {
	buf, err := f.AppendBinary(make([]byte, 0, f.binarySize()))
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// DecodeBinary reads a binary forest from r, requiring the reader to hold
// exactly one artifact. The decoded forest is validated like a JSON load:
// corrupt artifacts fail with a typed ErrInvalidModel-wrapped error.
func DecodeBinary(r io.Reader) (*Forest, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("forest: decode binary: %w", err)
	}
	f, rest, err := DecodeBinaryBytes(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("forest: decode binary: %w: %d trailing bytes", ErrInvalidModel, len(rest))
	}
	return f, nil
}

// DecodeBinaryBytes decodes one binary forest from the front of data and
// returns the remaining bytes — the container formats concatenate several
// forests after one header. Declared counts are bounds-checked against the
// bytes actually present before any allocation, so a hostile header cannot
// force a huge allocation; the decoded forest is then run through Validate.
func DecodeBinaryBytes(data []byte) (*Forest, []byte, error) {
	c := &bcur{data: data}
	magic, err := c.take(4)
	if err != nil {
		return nil, nil, err
	}
	if [4]byte(magic) != ForestMagic {
		return nil, nil, fmt.Errorf("forest: decode binary: %w", ErrBadMagic)
	}
	version, err := c.u32()
	if err != nil {
		return nil, nil, err
	}
	if version != binaryForestVersion {
		return nil, nil, fmt.Errorf("forest: decode binary: %w: got version %d", ErrBadVersion, version)
	}
	f := &Forest{}
	if f.NumClasses, err = c.i32(); err != nil {
		return nil, nil, err
	}
	if f.NumFeats, err = c.i32(); err != nil {
		return nil, nil, err
	}
	numTrees, err := c.count(minTreeBytes)
	if err != nil {
		return nil, nil, err
	}
	f.Trees = make([]*tree.Tree, 0, numTrees)
	for ti := 0; ti < numTrees; ti++ {
		t, err := c.decodeTree()
		if err != nil {
			return nil, nil, fmt.Errorf("trees[%d]: %w", ti, err)
		}
		f.Trees = append(f.Trees, t)
	}
	if err := f.Validate(); err != nil {
		return nil, nil, fmt.Errorf("forest: %w", err)
	}
	return f, c.data[c.off:], nil
}

// minTreeBytes and minNodeBytes are the smallest possible encodings of a
// tree/node — the divisors that cap how many elements a declared count may
// promise given the bytes remaining.
const (
	minTreeBytes = 12
	minNodeBytes = 24
)

// bcur is a bounds-checked cursor over a binary artifact. Every read that
// would pass the end returns ErrTruncated instead of panicking.
type bcur struct {
	data []byte
	off  int
}

func (c *bcur) take(n int) ([]byte, error) {
	if n < 0 || len(c.data)-c.off < n {
		return nil, fmt.Errorf("forest: decode binary: %w", ErrTruncated)
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *bcur) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// i32 reads a signed 32-bit count (negative values survive the round trip
// so the validator sees exactly what the source artifact declared).
func (c *bcur) i32() (int, error) {
	v, err := c.u32()
	if err != nil {
		return 0, err
	}
	return int(int32(v)), nil
}

// count reads an element count and verifies the remaining bytes could hold
// that many elements of at least minBytes each — the pre-allocation guard.
func (c *bcur) count(minBytes int) (int, error) {
	v, err := c.u32()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n > (len(c.data)-c.off)/minBytes {
		return 0, fmt.Errorf("forest: decode binary: %w: %d elements declared with %d bytes left",
			ErrTruncated, n, len(c.data)-c.off)
	}
	return n, nil
}

func (c *bcur) f64s(n int) ([]float64, error) {
	if n == 0 {
		return nil, nil // keep nil so JSON re-encoding (omitempty) is byte-identical
	}
	b, err := c.take(8 * n)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

func (c *bcur) decodeTree() (*tree.Tree, error) {
	t := &tree.Tree{}
	var err error
	if t.NumClasses, err = c.i32(); err != nil {
		return nil, err
	}
	numNodes, err := c.count(minNodeBytes)
	if err != nil {
		return nil, err
	}
	importanceLen, err := c.count(8)
	if err != nil {
		return nil, err
	}
	if numNodes > 0 {
		t.Nodes = make([]tree.Node, numNodes)
	}
	for i := 0; i < numNodes; i++ {
		n := &t.Nodes[i]
		feature, err := c.i32()
		if err != nil {
			return nil, err
		}
		n.Feature = feature
		thr, err := c.take(8)
		if err != nil {
			return nil, err
		}
		n.Threshold = math.Float64frombits(binary.LittleEndian.Uint64(thr))
		left, err := c.u32()
		if err != nil {
			return nil, err
		}
		n.Left = int32(left)
		right, err := c.u32()
		if err != nil {
			return nil, err
		}
		n.Right = int32(right)
		probLen, err := c.count(8)
		if err != nil {
			return nil, err
		}
		if n.Probs, err = c.f64s(probLen); err != nil {
			return nil, err
		}
	}
	if t.Importance, err = c.f64s(importanceLen); err != nil {
		return nil, err
	}
	return t, nil
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func checkI32(what string, v int) error {
	if v < math.MinInt32 || v > math.MaxInt32 {
		return fmt.Errorf("forest: encode: %s %d outside the format's 32-bit range", what, v)
	}
	return nil
}

// Package forest implements a multi-class random forest classifier with
// probability averaging, mirroring the scikit-learn defaults the paper uses
// as Strudel's backbone (100 Gini trees, sqrt(p) features per split,
// bootstrap sampling).
package forest

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"strudel/internal/ml"
	"strudel/internal/ml/tree"
)

// Options configures forest training.
type Options struct {
	// NumTrees is the ensemble size; 0 means 100 (the scikit-learn default).
	NumTrees int
	// MaxFeatures is the per-split feature budget; 0 means floor(sqrt(p)).
	MaxFeatures int
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinSamplesLeaf is the minimum samples per leaf; 0 means 1.
	MinSamplesLeaf int
	// MaxSamples caps the bootstrap sample size as a fraction of the
	// training set; 0 or >=1 means a full-size bootstrap.
	MaxSamples float64
	// Seed makes training deterministic. The same seed always yields the
	// same forest.
	Seed int64
	// Jobs is the number of goroutines used to grow trees; 0 means
	// GOMAXPROCS.
	Jobs int
}

// DefaultOptions returns the paper's configuration (scikit-learn defaults).
func DefaultOptions() Options { return Options{NumTrees: 100} }

// Forest is a trained random forest.
type Forest struct {
	Trees      []*tree.Tree `json:"trees"`
	NumClasses int          `json:"num_classes"`
	NumFeats   int          `json:"num_features"`
}

// Fit trains a forest on rows X with labels y in [0, numClasses).
func Fit(X [][]float64, y []int, numClasses int, opts Options) (*Forest, error) {
	// context.Background is never cancelled, so this is plain fitting.
	return FitContext(context.Background(), X, y, numClasses, opts)
}

// FitContext is Fit with cooperative cancellation: workers check ctx
// between trees, so a cancelled context stops the fit after the trees
// currently growing finish, and ctx's error is returned. A nil ctx behaves
// like context.Background.
func FitContext(ctx context.Context, X [][]float64, y []int, numClasses int, opts Options) (*Forest, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(X) == 0 {
		return nil, errors.New("forest: no training samples")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("forest: %d samples but %d labels", len(X), len(y))
	}
	for _, label := range y {
		if label < 0 || label >= numClasses {
			return nil, fmt.Errorf("forest: label %d out of range [0,%d)", label, numClasses)
		}
	}
	if opts.NumTrees <= 0 {
		opts.NumTrees = 100
	}
	nf := len(X[0])
	mtry := opts.MaxFeatures
	if mtry <= 0 {
		mtry = int(math.Sqrt(float64(nf)))
		if mtry < 1 {
			mtry = 1
		}
	}
	sampleSize := len(X)
	if opts.MaxSamples > 0 && opts.MaxSamples < 1 {
		sampleSize = int(opts.MaxSamples * float64(len(X)))
		if sampleSize < 1 {
			sampleSize = 1
		}
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > opts.NumTrees {
		jobs = opts.NumTrees
	}

	f := &Forest{
		Trees:      make([]*tree.Tree, opts.NumTrees),
		NumClasses: numClasses,
		NumFeats:   nf,
	}

	// Pre-draw one seed per tree from the master seed so the result does
	// not depend on goroutine scheduling.
	master := rand.New(rand.NewSource(opts.Seed))
	seeds := make([]int64, opts.NumTrees)
	for i := range seeds {
		seeds[i] = master.Int63()
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan int, opts.NumTrees)
	for i := 0; i < opts.NumTrees; i++ {
		next <- i
	}
	close(next)

	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					return // cancelled: stop picking up trees
				}
				rng := rand.New(rand.NewSource(seeds[i]))
				idx := make([]int, sampleSize)
				for j := range idx {
					idx[j] = rng.Intn(len(X))
				}
				t, err := tree.Fit(X, y, numClasses, idx, tree.Options{
					MaxDepth:       opts.MaxDepth,
					MinSamplesLeaf: opts.MinSamplesLeaf,
					MaxFeatures:    mtry,
					Rand:           rng,
				})
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				f.Trees[i] = t
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return f, nil
}

// Classes returns the number of classes (the Predictor spelling of the
// serialized NumClasses field).
func (f *Forest) Classes() int { return f.NumClasses }

// NumFeatures returns the feature-vector width the forest was trained on
// (the Predictor spelling of the serialized NumFeats field).
func (f *Forest) NumFeatures() int { return f.NumFeats }

// PredictProba returns the class probability vector for x, averaged over
// all trees.
func (f *Forest) PredictProba(x []float64) []float64 {
	probs := make([]float64, f.NumClasses)
	f.predictProbaInto(x, probs)
	return probs
}

// PredictProbaInto writes the class probability vector for x into probs
// (length NumClasses) without allocating.
func (f *Forest) PredictProbaInto(x []float64, probs []float64) {
	f.predictProbaInto(x, probs)
}

// predictProbaInto accumulates every tree's leaf vector directly into the
// caller's buffer (tree.AccumulateProba), then divides once — no per-tree
// temporaries on the pointer path either.
func (f *Forest) predictProbaInto(x []float64, probs []float64) {
	for i := range probs {
		probs[i] = 0
	}
	for _, t := range f.Trees {
		t.AccumulateProba(x, probs)
	}
	n := float64(len(f.Trees))
	for c := range probs {
		probs[c] /= n
	}
}

// Predict returns the most probable class for x.
func (f *Forest) Predict(x []float64) int {
	return tree.ArgMax(f.PredictProba(x))
}

// PredictProbaMatrix classifies every row of the staged feature block x
// into the caller-owned slab out (length ≥ x.Rows*NumClasses), walking the
// pointer trees row by row with contiguous row chunks spread across
// GOMAXPROCS goroutines. This is the pointer-path implementation of the
// Predictor surface; Compile() yields the flattened engine with the same
// (float-identical) contract.
func (f *Forest) PredictProbaMatrix(x *ml.Matrix, out []float64) {
	runMatrix(f, x, out)
}

// predictRows predicts each staged row — a zero-copy contiguous view in
// the row-major block — into the row's slab region.
func (f *Forest) predictRows(x *ml.Matrix, out []float64, lo, hi int) {
	k := f.NumClasses
	for r := lo; r < hi; r++ {
		f.predictProbaInto(x.Row(r), out[r*k:r*k+k])
	}
}

// PredictProbaBatch predicts probability vectors for many rows. It is a
// thin wrapper over the Predictor surface: rows are staged into one
// feature block and classified in a single PredictProbaMatrix pass.
func (f *Forest) PredictProbaBatch(X [][]float64) [][]float64 {
	return PredictorBatch(f, X)
}

// PredictBatch predicts class labels for many rows (a thin wrapper over
// PredictorClasses).
func (f *Forest) PredictBatch(X [][]float64) []int {
	return PredictorClasses(f, X)
}

// Save writes the forest as JSON.
func (f *Forest) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(f)
}

// Load reads a forest saved by Save or EncodeBinary, auto-detecting the
// format from the leading bytes (binary artifacts start with ForestMagic;
// JSON cannot). Either way the decoded artifact is verified against the
// structural invariants prediction relies on (see Validate), so a corrupt
// or truncated file is a typed ErrInvalidModel-wrapped error instead of a
// silent mispredictor or a panic at first Predict.
func Load(r io.Reader) (*Forest, error) {
	br := bufio.NewReader(r)
	if head, err := br.Peek(4); err == nil && [4]byte(head) == ForestMagic {
		return DecodeBinary(br)
	}
	var f Forest
	if err := json.NewDecoder(br).Decode(&f); err != nil {
		return nil, fmt.Errorf("forest: decode: %w: %w", ErrInvalidModel, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("forest: %w", err)
	}
	return &f, nil
}

// GiniImportance returns the mean decrease in Gini impurity per feature,
// averaged over the ensemble and normalized to sum to 1. This is the
// classical forest importance measure; the paper prefers permutation
// importance for its Figure 4 because Gini importance favors
// high-cardinality features — both are exposed so that choice can be
// reproduced.
func (f *Forest) GiniImportance() []float64 {
	out := make([]float64, f.NumFeats)
	for _, t := range f.Trees {
		for i, v := range t.Importance {
			out[i] += v
		}
	}
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}

// FitWithOOB trains a forest and additionally returns its out-of-bag
// accuracy estimate: each sample is predicted by the trees whose bootstrap
// missed it, giving an unbiased generalization estimate without a holdout
// split. Samples never out of bag (possible in tiny ensembles) are skipped.
func FitWithOOB(X [][]float64, y []int, numClasses int, opts Options) (*Forest, float64, error) {
	f, err := Fit(X, y, numClasses, opts)
	if err != nil {
		return nil, 0, err
	}

	// Reconstruct each tree's bootstrap from the same seed stream Fit used.
	if opts.NumTrees <= 0 {
		opts.NumTrees = 100
	}
	sampleSize := len(X)
	if opts.MaxSamples > 0 && opts.MaxSamples < 1 {
		sampleSize = int(opts.MaxSamples * float64(len(X)))
		if sampleSize < 1 {
			sampleSize = 1
		}
	}
	master := rand.New(rand.NewSource(opts.Seed))
	votes := make([][]float64, len(X))
	for i := range votes {
		votes[i] = make([]float64, numClasses)
	}
	inBag := make([]bool, len(X))
	for t := 0; t < opts.NumTrees; t++ {
		rng := rand.New(rand.NewSource(master.Int63()))
		for i := range inBag {
			inBag[i] = false
		}
		for j := 0; j < sampleSize; j++ {
			inBag[rng.Intn(len(X))] = true
		}
		for i := range X {
			if inBag[i] {
				continue
			}
			p := f.Trees[t].PredictProba(X[i])
			for c := range p {
				votes[i][c] += p[c]
			}
		}
	}
	correct, total := 0, 0
	for i := range X {
		sum := 0.0
		for _, v := range votes[i] {
			sum += v
		}
		//lint:ignore floatcmp votes hold small integral counts, exactly representable; zero means never out-of-bag
		if sum == 0 {
			continue // never out of bag
		}
		total++
		if tree.ArgMax(votes[i]) == y[i] {
			correct++
		}
	}
	if total == 0 {
		return f, 0, nil
	}
	return f, float64(correct) / float64(total), nil
}

package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// xorData builds a dataset a single axis-aligned split cannot separate but
// a depth-2 tree can.
func xorData() ([][]float64, []int) {
	X := [][]float64{
		{0, 0}, {0, 1}, {1, 0}, {1, 1},
		{0.1, 0.1}, {0.1, 0.9}, {0.9, 0.1}, {0.9, 0.9},
	}
	y := []int{0, 1, 1, 0, 0, 1, 1, 0}
	return X, y
}

func TestFitPerfectSeparation(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {10}, {11}, {12}}
	y := []int{0, 0, 0, 1, 1, 1}
	tr, err := Fit(X, y, 2, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if got := tr.Predict(x); got != y[i] {
			t.Errorf("Predict(%v) = %d, want %d", x, got, y[i])
		}
	}
	if got := tr.Predict([]float64{100}); got != 1 {
		t.Errorf("extrapolation = %d, want 1", got)
	}
}

func TestFitXOR(t *testing.T) {
	X, y := xorData()
	tr, err := Fit(X, y, 2, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if got := tr.Predict(x); got != y[i] {
			t.Errorf("xor Predict(%v) = %d, want %d", x, got, y[i])
		}
	}
	if tr.Depth() < 2 {
		t.Errorf("xor needs depth >= 2, got %d", tr.Depth())
	}
}

func TestMaxDepth(t *testing.T) {
	X, y := xorData()
	tr, err := Fit(X, y, 2, nil, Options{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 1 {
		t.Errorf("depth = %d, want <= 1", tr.Depth())
	}
}

func TestPureNodeIsLeaf(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	tr, err := Fit(X, y, 2, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 1 || tr.NumLeaves() != 1 {
		t.Errorf("pure data should give a single leaf, got %d nodes", len(tr.Nodes))
	}
	p := tr.PredictProba([]float64{5})
	if p[1] != 1 || p[0] != 0 {
		t.Errorf("probs = %v, want [0 1]", p)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 5
		k := rng.Intn(3) + 2
		X := make([][]float64, n)
		y := make([]int, n)
		for i := range X {
			X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			y[i] = rng.Intn(k)
		}
		tr, err := Fit(X, y, k, nil, Options{MaxDepth: 4})
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			p := tr.PredictProba([]float64{rng.Float64(), rng.Float64(), rng.Float64()})
			s := 0.0
			for _, v := range p {
				if v < 0 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTrainingAccuracyOnSeparableData(t *testing.T) {
	// Three Gaussian-ish blobs; an unconstrained tree must memorize them.
	rng := rand.New(rand.NewSource(7))
	var X [][]float64
	var y []int
	centers := [][2]float64{{0, 0}, {5, 5}, {0, 5}}
	for c, ctr := range centers {
		for i := 0; i < 40; i++ {
			X = append(X, []float64{ctr[0] + rng.NormFloat64()*0.3, ctr[1] + rng.NormFloat64()*0.3})
			y = append(y, c)
		}
	}
	tr, err := Fit(X, y, 3, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range X {
		if tr.Predict(x) == y[i] {
			correct++
		}
	}
	if correct != len(X) {
		t.Errorf("training accuracy = %d/%d, want perfect", correct, len(X))
	}
}

func TestIdxSubsetOnlyUsesSelectedRows(t *testing.T) {
	X := [][]float64{{0}, {1}, {100}, {101}}
	y := []int{0, 0, 1, 1}
	// Train only on the class-0 rows: the tree must be a pure class-0 leaf.
	tr, err := Fit(X, y, 2, []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p := tr.PredictProba([]float64{100}); p[0] != 1 {
		t.Errorf("probs = %v, want class 0 certain", p)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, 2, nil, Options{}); err == nil {
		t.Error("empty X should error")
	}
	if _, err := Fit([][]float64{{1}}, []int{0}, 2, []int{}, Options{}); err == nil {
		t.Error("empty idx should error")
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []int{0, 0, 0, 1}
	tr, err := Fit(X, y, 2, nil, Options{MinSamplesLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The only useful split (3|4) leaves a 1-sample leaf, so it is vetoed.
	if tr.NumLeaves() != 1 {
		t.Errorf("leaves = %d, want 1 (split vetoed by MinSamplesLeaf)", tr.NumLeaves())
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{0.1, 0.7, 0.2}) != 1 {
		t.Error("ArgMax wrong")
	}
	if ArgMax([]float64{0.5, 0.5}) != 0 {
		t.Error("ArgMax tie should pick lowest index")
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	rngData := rand.New(rand.NewSource(3))
	X := make([][]float64, 60)
	y := make([]int, 60)
	for i := range X {
		X[i] = []float64{rngData.Float64(), rngData.Float64(), rngData.Float64(), rngData.Float64()}
		y[i] = rngData.Intn(3)
	}
	fit := func() *Tree {
		tr, err := Fit(X, y, 3, nil, Options{MaxFeatures: 2, Rand: rand.New(rand.NewSource(42))})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := fit(), fit()
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		if a.Nodes[i].Feature != b.Nodes[i].Feature || a.Nodes[i].Threshold != b.Nodes[i].Threshold {
			t.Fatalf("node %d differs", i)
		}
	}
}

func TestGiniImportanceIdentifiesInformativeFeature(t *testing.T) {
	// Feature 1 separates the classes; feature 0 is constant.
	X := [][]float64{{5, 0}, {5, 1}, {5, 10}, {5, 11}}
	y := []int{0, 0, 1, 1}
	tr, err := Fit(X, y, 2, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Importance[1] <= tr.Importance[0] {
		t.Errorf("importance = %v, feature 1 should dominate", tr.Importance)
	}
	sum := tr.Importance[0] + tr.Importance[1]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importance sums to %v", sum)
	}
}

func TestGiniImportanceSingleLeaf(t *testing.T) {
	X := [][]float64{{1}, {2}}
	y := []int{0, 0}
	tr, err := Fit(X, y, 2, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Importance[0] != 0 {
		t.Errorf("pure tree should have zero importance, got %v", tr.Importance)
	}
}

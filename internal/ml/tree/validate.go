package tree

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidModel is the root sentinel for every structural violation a
// serialized tree or forest artifact can carry. Specific violations wrap it,
// mirroring the ingest package's guard-error taxonomy, so callers can test
// errors.Is(err, ErrInvalidModel) for the whole class or match the precise
// invariant.
var ErrInvalidModel = errors.New("invalid model artifact")

// The per-invariant sentinels. Each wraps ErrInvalidModel.
var (
	// ErrNoNodes marks a tree with an empty node slice (prediction would
	// have no root to start from).
	ErrNoNodes = invalid("tree has no nodes")
	// ErrBadLink marks child indices that are out of range, form a cycle,
	// share a subtree, or leave nodes unreachable from the root.
	ErrBadLink = invalid("broken tree links")
	// ErrFeatureRange marks a split on a feature index outside
	// [0, NumFeats).
	ErrFeatureRange = invalid("split feature index out of range")
	// ErrBadThreshold marks a non-finite split threshold.
	ErrBadThreshold = invalid("non-finite split threshold")
	// ErrBadLeafProbs marks a leaf probability vector that is missing,
	// non-finite, negative, or does not sum to 1 within 1e-9.
	ErrBadLeafProbs = invalid("bad leaf probabilities")
	// ErrClassDim marks a class-dimension mismatch between a tree (or a
	// leaf vector) and the declared class count.
	ErrClassDim = invalid("class dimension mismatch")
	// ErrImportanceDim marks an importance vector whose length differs
	// from the declared feature count.
	ErrImportanceDim = invalid("importance vector length mismatch")
)

func invalid(msg string) error { return fmt.Errorf("%w: %s", ErrInvalidModel, msg) }

// A ModelError wraps an invariant violation with the path of the offending
// element inside the artifact (e.g. "trees[3]: nodes[7]"). Unwrap exposes
// the sentinel chain, so errors.Is works through any nesting depth.
type ModelError struct {
	// Path locates the violation inside the serialized artifact.
	Path string
	// Err is the violated invariant, wrapping ErrInvalidModel.
	Err error
}

func (e *ModelError) Error() string { return e.Path + ": " + e.Err.Error() }

func (e *ModelError) Unwrap() error { return e.Err }

// probSumTolerance bounds how far a leaf probability vector may drift from
// summing to exactly 1 before it is considered corrupt.
const probSumTolerance = 1e-9

// Validate proves the structural invariants prediction relies on: every
// split feature is inside [0, numFeats), every threshold is finite, the
// Left/Right links form a single binary tree rooted at node 0 (acyclic, no
// sharing, no unreachable nodes), every leaf carries a finite non-negative
// probability vector of length numClasses summing to 1±1e-9, and the
// declared class and importance dimensions are consistent. It returns the
// first violation in deterministic node order, wrapped in a *ModelError.
func (t *Tree) Validate(numFeats, numClasses int) error {
	if numClasses <= 0 {
		return &ModelError{Path: "num_classes", Err: ErrClassDim}
	}
	if len(t.Nodes) == 0 {
		return &ModelError{Path: "nodes", Err: ErrNoNodes}
	}
	if t.NumClasses != numClasses {
		return &ModelError{
			Path: "num_classes",
			Err:  fmt.Errorf("%w: tree declares %d classes, ensemble %d", ErrClassDim, t.NumClasses, numClasses),
		}
	}
	if len(t.Importance) != 0 && len(t.Importance) != numFeats {
		return &ModelError{
			Path: "importance",
			Err:  fmt.Errorf("%w: %d entries for %d features", ErrImportanceDim, len(t.Importance), numFeats),
		}
	}

	// Iterative DFS from the root: a node reached twice is a cycle or a
	// shared subtree; either breaks the "flat slice encodes one binary
	// tree" contract, and a hostile depth must not overflow the stack.
	n := len(t.Nodes)
	visited := make([]bool, n)
	stack := []int32{0}
	visitedCount := 0
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[i] {
			return &ModelError{
				Path: fmt.Sprintf("nodes[%d]", i),
				Err:  fmt.Errorf("%w: node reached by more than one path (cycle or shared subtree)", ErrBadLink),
			}
		}
		visited[i] = true
		visitedCount++

		node := &t.Nodes[i]
		path := fmt.Sprintf("nodes[%d]", i)
		if node.Feature < 0 {
			if err := validateLeafProbs(node.Probs, numClasses); err != nil {
				return &ModelError{Path: path, Err: err}
			}
			continue
		}
		if node.Feature >= numFeats {
			return &ModelError{
				Path: path,
				Err:  fmt.Errorf("%w: feature %d with %d features", ErrFeatureRange, node.Feature, numFeats),
			}
		}
		if math.IsNaN(node.Threshold) || math.IsInf(node.Threshold, 0) {
			return &ModelError{
				Path: path,
				Err:  fmt.Errorf("%w: threshold %v", ErrBadThreshold, node.Threshold),
			}
		}
		for _, child := range [2]int32{node.Left, node.Right} {
			if child < 0 || int(child) >= n {
				return &ModelError{
					Path: path,
					Err:  fmt.Errorf("%w: child index %d outside [0,%d)", ErrBadLink, child, n),
				}
			}
		}
		// Push right first so the left subtree is visited first and the
		// first violation found is deterministic in node order.
		stack = append(stack, node.Right, node.Left)
	}
	if visitedCount != n {
		for i := range visited {
			if !visited[i] {
				return &ModelError{
					Path: fmt.Sprintf("nodes[%d]", i),
					Err:  fmt.Errorf("%w: node unreachable from the root", ErrBadLink),
				}
			}
		}
	}
	return nil
}

// validateLeafProbs checks one leaf probability vector: right length, every
// entry finite and non-negative, total within probSumTolerance of 1.
func validateLeafProbs(probs []float64, numClasses int) error {
	if len(probs) != numClasses {
		return fmt.Errorf("%w: leaf has %d probabilities for %d classes", ErrClassDim, len(probs), numClasses)
	}
	sum := 0.0
	for c, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("%w: class %d probability %v is not finite", ErrBadLeafProbs, c, p)
		}
		if p < 0 {
			return fmt.Errorf("%w: class %d probability %v is negative", ErrBadLeafProbs, c, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > probSumTolerance {
		return fmt.Errorf("%w: probabilities sum to %v, want 1", ErrBadLeafProbs, sum)
	}
	return nil
}

// Package tree implements CART-style classification trees with Gini
// impurity, probability leaves, and per-split random feature subsampling.
// It is the base learner for the random forest in strudel/internal/ml/forest.
package tree

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Options configures tree induction. The zero value means: unlimited depth,
// split nodes with at least two samples, consider every feature at every
// split — the scikit-learn DecisionTreeClassifier defaults the paper relies
// on (Section 6.1.2 "default settings").
type Options struct {
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinSamplesSplit is the minimum number of samples required to split an
	// internal node; values < 2 are treated as 2.
	MinSamplesSplit int
	// MinSamplesLeaf is the minimum number of samples in a leaf; values < 1
	// are treated as 1.
	MinSamplesLeaf int
	// MaxFeatures is the number of features examined per split; 0 means all.
	// Random forests pass sqrt(p).
	MaxFeatures int
	// Rand supplies randomness for feature subsampling. Nil means features
	// are taken in order (deterministic, exhaustive).
	Rand *rand.Rand
}

// Node is a single tree node. Leaves have Feature == -1 and carry class
// probabilities; internal nodes route samples with x[Feature] <= Threshold
// to Left and the rest to Right.
type Node struct {
	Feature   int       `json:"f"`
	Threshold float64   `json:"t"`
	Left      int32     `json:"l"`
	Right     int32     `json:"r"`
	Probs     []float64 `json:"p,omitempty"`
}

// Tree is a trained classification tree. Nodes are stored in a flat slice
// (index 0 is the root) so trees serialize compactly.
type Tree struct {
	Nodes      []Node `json:"nodes"`
	NumClasses int    `json:"num_classes"`
	// Importance is the per-feature mean decrease in Gini impurity
	// accumulated while growing the tree, normalized to sum to 1 (all
	// zeros for a single-leaf tree). This is the importance measure the
	// paper chose NOT to use for Figure 4 because it favors
	// high-cardinality features; both are provided so the choice can be
	// compared.
	Importance []float64 `json:"importance,omitempty"`
}

// ErrNoData is returned when fitting on an empty dataset.
var ErrNoData = errors.New("tree: no training samples")

// Fit trains a tree on rows X with class labels y (values in
// [0, numClasses)). The idx slice selects which rows participate (nil means
// all rows); forests pass bootstrap samples this way without copying X.
func Fit(X [][]float64, y []int, numClasses int, idx []int, opts Options) (*Tree, error) {
	if len(X) == 0 || numClasses <= 0 {
		return nil, ErrNoData
	}
	if idx == nil {
		idx = make([]int, len(X))
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return nil, ErrNoData
	}
	if opts.MinSamplesSplit < 2 {
		opts.MinSamplesSplit = 2
	}
	if opts.MinSamplesLeaf < 1 {
		opts.MinSamplesLeaf = 1
	}
	nf := len(X[0])
	if opts.MaxFeatures <= 0 || opts.MaxFeatures > nf {
		opts.MaxFeatures = nf
	}

	b := &builder{
		X: X, y: y, k: numClasses, opts: opts,
		features:   make([]int, nf),
		sortBuf:    make([]int, 0, len(idx)),
		importance: make([]float64, nf),
		total:      float64(len(idx)),
	}
	for i := range b.features {
		b.features[i] = i
	}
	work := append([]int(nil), idx...)
	b.build(work, 0)
	sum := 0.0
	for _, v := range b.importance {
		sum += v
	}
	if sum > 0 {
		for i := range b.importance {
			b.importance[i] /= sum
		}
	}
	return &Tree{Nodes: b.nodes, NumClasses: numClasses, Importance: b.importance}, nil
}

type builder struct {
	X          [][]float64
	y          []int
	k          int
	opts       Options
	nodes      []Node
	features   []int
	sortBuf    []int
	importance []float64
	total      float64
}

// build grows the subtree over samples idx and returns its node index.
func (b *builder) build(idx []int, depth int) int32 {
	counts := make([]float64, b.k)
	for _, i := range idx {
		counts[b.y[i]]++
	}
	node := int32(len(b.nodes))
	b.nodes = append(b.nodes, Node{Feature: -1})

	total := float64(len(idx))
	pure := false
	for _, c := range counts {
		//lint:ignore floatcmp class counts are integral floats; equality with the total detects a pure node exactly
		if c == total {
			pure = true
		}
	}
	stop := pure ||
		len(idx) < b.opts.MinSamplesSplit ||
		(b.opts.MaxDepth > 0 && depth >= b.opts.MaxDepth)

	if !stop {
		feat, thr, gain, ok := b.bestSplit(idx, counts)
		if ok {
			left, right := partition(b.X, idx, feat, thr)
			if len(left) >= b.opts.MinSamplesLeaf && len(right) >= b.opts.MinSamplesLeaf {
				b.importance[feat] += gain * float64(len(idx)) / b.total
				l := b.build(left, depth+1)
				r := b.build(right, depth+1)
				b.nodes[node].Feature = feat
				b.nodes[node].Threshold = thr
				b.nodes[node].Left = l
				b.nodes[node].Right = r
				return node
			}
		}
	}

	probs := make([]float64, b.k)
	for c := range counts {
		probs[c] = counts[c] / total
	}
	b.nodes[node].Probs = probs
	return node
}

// bestSplit scans a random subset of features for the Gini-optimal split.
func (b *builder) bestSplit(idx []int, counts []float64) (feature int, threshold float64, bestGainOut float64, ok bool) {
	n := float64(len(idx))
	parentGini := giniFromCounts(counts, n)
	// Zero-gain splits are allowed (scikit-learn's min_impurity_decrease=0
	// default); recursion still terminates because each side is non-empty.
	bestGain := -1.0
	feature = -1

	// Choose the feature subset. With a Rand we sample without replacement
	// (Fisher–Yates prefix); otherwise take all features.
	feats := b.features
	if b.opts.Rand != nil && b.opts.MaxFeatures < len(feats) {
		for i := 0; i < b.opts.MaxFeatures; i++ {
			j := i + b.opts.Rand.Intn(len(feats)-i)
			feats[i], feats[j] = feats[j], feats[i]
		}
		feats = feats[:b.opts.MaxFeatures]
	}

	order := append(b.sortBuf[:0], idx...)
	leftCounts := make([]float64, b.k)

	for _, f := range feats {
		sort.Slice(order, func(a, c int) bool {
			return b.X[order[a]][f] < b.X[order[c]][f]
		})
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		for i := 0; i < len(order)-1; i++ {
			leftCounts[b.y[order[i]]]++
			v, next := b.X[order[i]][f], b.X[order[i+1]][f]
			//lint:ignore floatcmp deliberate exact compare: only a zero-width gap between sorted neighbors is skipped
			if v == next {
				continue
			}
			nl := float64(i + 1)
			nr := n - nl
			gl := giniFromLeft(leftCounts, nl)
			gr := giniFromComplement(counts, leftCounts, nr)
			gain := parentGini - (nl/n)*gl - (nr/n)*gr
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = v + (next-v)/2
				//lint:ignore floatcmp deliberate exact compare detecting midpoint rounding onto the right neighbor
				if threshold == next { // midpoint rounding on tiny gaps
					threshold = v
				}
			}
		}
	}
	if bestGain < 0 {
		bestGain = 0
	}
	return feature, threshold, bestGain, feature >= 0
}

func giniFromCounts(counts []float64, n float64) float64 {
	//lint:ignore floatcmp sample counts are integral floats; exact zero guards the empty partition
	if n == 0 {
		return 0
	}
	s := 0.0
	for _, c := range counts {
		p := c / n
		s += p * p
	}
	return 1 - s
}

func giniFromLeft(left []float64, n float64) float64 {
	return giniFromCounts(left, n)
}

func giniFromComplement(total, left []float64, n float64) float64 {
	//lint:ignore floatcmp sample counts are integral floats; exact zero guards the empty partition
	if n == 0 {
		return 0
	}
	s := 0.0
	for i := range total {
		p := (total[i] - left[i]) / n
		s += p * p
	}
	return 1 - s
}

// partition splits idx in place by the threshold test and returns the two
// halves (<= goes left).
func partition(X [][]float64, idx []int, feature int, threshold float64) (left, right []int) {
	i, j := 0, len(idx)
	for i < j {
		if X[idx[i]][feature] <= threshold {
			i++
		} else {
			j--
			idx[i], idx[j] = idx[j], idx[i]
		}
	}
	return idx[:i], idx[i:]
}

// PredictProba returns the class probability vector for x.
func (t *Tree) PredictProba(x []float64) []float64 {
	n := int32(0)
	for {
		node := &t.Nodes[n]
		if node.Feature < 0 {
			return node.Probs
		}
		if x[node.Feature] <= node.Threshold {
			n = node.Left
		} else {
			n = node.Right
		}
	}
}

// AccumulateProba adds the probability vector of the leaf reached by x
// into acc, which must have length NumClasses. The forest's averaging loop
// accumulates every tree into one caller-owned buffer this way, so the
// pointer-walking prediction path allocates nothing per tree.
func (t *Tree) AccumulateProba(x []float64, acc []float64) {
	n := int32(0)
	for {
		node := &t.Nodes[n]
		if node.Feature < 0 {
			for c, p := range node.Probs {
				acc[c] += p
			}
			return
		}
		if x[node.Feature] <= node.Threshold {
			n = node.Left
		} else {
			n = node.Right
		}
	}
}

// Predict returns the most probable class for x.
func (t *Tree) Predict(x []float64) int {
	return ArgMax(t.PredictProba(x))
}

// Depth returns the depth of the tree (a lone leaf has depth 0).
func (t *Tree) Depth() int {
	if len(t.Nodes) == 0 {
		return 0
	}
	var walk func(n int32) int
	walk = func(n int32) int {
		node := &t.Nodes[n]
		if node.Feature < 0 {
			return 0
		}
		return 1 + max(walk(node.Left), walk(node.Right))
	}
	return walk(0)
}

// NumLeaves counts the leaves of the tree.
func (t *Tree) NumLeaves() int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].Feature < 0 {
			n++
		}
	}
	return n
}

// ArgMax returns the index of the largest element, preferring the lowest
// index on ties. It panics on empty input.
func ArgMax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	if math.IsNaN(v[best]) {
		return 0
	}
	return best
}

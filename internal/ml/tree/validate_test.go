package tree

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func leaf(probs ...float64) Node { return Node{Feature: -1, Probs: probs} }

func validTree() *Tree {
	return &Tree{
		Nodes: []Node{
			{Feature: 0, Threshold: 0.5, Left: 1, Right: 2},
			leaf(1, 0),
			leaf(0.25, 0.75),
		},
		NumClasses: 2,
	}
}

func TestValidateAcceptsWellFormedTree(t *testing.T) {
	if err := validTree().Validate(3, 2); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
}

func TestValidateAcceptsTrainedTree(t *testing.T) {
	X := [][]float64{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {4, 5}, {5, 4}}
	y := []int{0, 1, 0, 1, 0, 1}
	tr, err := Fit(X, y, 2, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(2, 2); err != nil {
		t.Fatalf("freshly trained tree rejected: %v", err)
	}
}

func TestValidateViolations(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*Tree)
		numFeats int
		sentinel error
	}{
		{"no nodes", func(tr *Tree) { tr.Nodes = nil }, 3, ErrNoNodes},
		{"class mismatch", func(tr *Tree) { tr.NumClasses = 5 }, 3, ErrClassDim},
		{"feature out of range", func(tr *Tree) { tr.Nodes[0].Feature = 3 }, 3, ErrFeatureRange},
		{"nan threshold", func(tr *Tree) { tr.Nodes[0].Threshold = math.NaN() }, 3, ErrBadThreshold},
		{"inf threshold", func(tr *Tree) { tr.Nodes[0].Threshold = math.Inf(1) }, 3, ErrBadThreshold},
		{"child out of range", func(tr *Tree) { tr.Nodes[0].Right = 9 }, 3, ErrBadLink},
		{"negative child", func(tr *Tree) { tr.Nodes[0].Left = -1 }, 3, ErrBadLink},
		{"cycle", func(tr *Tree) { tr.Nodes[0].Right = 0 }, 3, ErrBadLink},
		{"shared subtree", func(tr *Tree) { tr.Nodes[0].Right = 1 }, 3, ErrBadLink},
		{"unreachable node", func(tr *Tree) {
			tr.Nodes[0] = leaf(1, 0) // nodes 1 and 2 become orphans
		}, 3, ErrBadLink},
		{"short leaf vector", func(tr *Tree) { tr.Nodes[1].Probs = []float64{1} }, 3, ErrClassDim},
		{"nan prob", func(tr *Tree) { tr.Nodes[1].Probs = []float64{math.NaN(), 1} }, 3, ErrBadLeafProbs},
		{"negative prob", func(tr *Tree) { tr.Nodes[1].Probs = []float64{-0.5, 1.5} }, 3, ErrBadLeafProbs},
		{"bad sum", func(tr *Tree) { tr.Nodes[1].Probs = []float64{0.7, 0.7} }, 3, ErrBadLeafProbs},
		{"importance length", func(tr *Tree) { tr.Importance = []float64{1, 0} }, 3, ErrImportanceDim},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := validTree()
			tc.mutate(tr)
			err := tr.Validate(tc.numFeats, 2)
			if err == nil {
				t.Fatal("corrupt tree accepted")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Errorf("error %v does not wrap the expected sentinel", err)
			}
			if !errors.Is(err, ErrInvalidModel) {
				t.Errorf("error %v does not wrap ErrInvalidModel", err)
			}
			var me *ModelError
			if !errors.As(err, &me) {
				t.Errorf("error %v carries no *ModelError path", err)
			}
		})
	}
}

func TestValidateRejectsZeroClasses(t *testing.T) {
	err := validTree().Validate(3, 0)
	if !errors.Is(err, ErrClassDim) {
		t.Fatalf("got %v, want ErrClassDim", err)
	}
}

// TestValidateDeepTreeNoOverflow proves the link walk is iterative: a
// pathological left-spine tree deeper than any goroutine stack must
// validate without recursing.
func TestValidateDeepTreeNoOverflow(t *testing.T) {
	const depth = 200000
	nodes := make([]Node, 2*depth+1)
	for i := 0; i < depth; i++ {
		nodes[2*i] = Node{Feature: 0, Threshold: 0.5, Left: int32(2*i + 2), Right: int32(2*i + 1)}
		nodes[2*i+1] = leaf(1, 0)
	}
	nodes[2*depth] = leaf(0, 1)
	tr := &Tree{Nodes: nodes, NumClasses: 2}
	if err := tr.Validate(1, 2); err != nil {
		t.Fatalf("deep tree rejected: %v", err)
	}
}

func TestModelErrorPathNesting(t *testing.T) {
	tr := validTree()
	tr.Nodes[2].Probs = []float64{2, 0}
	err := tr.Validate(3, 2)
	if err == nil || !strings.Contains(err.Error(), "nodes[2]") {
		t.Fatalf("error %v does not name the offending node", err)
	}
}

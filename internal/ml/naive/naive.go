// Package naive implements a Gaussian naive Bayes classifier, one of the
// alternative backbones evaluated in the classifier bake-off of Section
// 6.1.2 (which random forest won).
package naive

import (
	"errors"
	"fmt"
	"math"
)

// Model is a trained Gaussian naive Bayes classifier.
type Model struct {
	NumClasses int
	NumFeats   int
	Priors     []float64   // log prior per class
	Means      [][]float64 // [class][feature]
	Vars       [][]float64 // [class][feature], smoothed
}

// Fit trains the model. Per-class feature likelihoods are Gaussian with a
// small variance floor (1e-9 times the largest feature variance) to keep
// degenerate features finite, following scikit-learn's var_smoothing.
func Fit(X [][]float64, y []int, numClasses int) (*Model, error) {
	if len(X) == 0 {
		return nil, errors.New("naive: no training samples")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("naive: %d samples but %d labels", len(X), len(y))
	}
	nf := len(X[0])
	m := &Model{
		NumClasses: numClasses,
		NumFeats:   nf,
		Priors:     make([]float64, numClasses),
		Means:      alloc2d(numClasses, nf),
		Vars:       alloc2d(numClasses, nf),
	}
	counts := make([]float64, numClasses)
	for i, x := range X {
		c := y[i]
		if c < 0 || c >= numClasses {
			return nil, fmt.Errorf("naive: label %d out of range", c)
		}
		counts[c]++
		for f, v := range x {
			m.Means[c][f] += v
		}
	}
	for c := 0; c < numClasses; c++ {
		//lint:ignore floatcmp class counts are integral floats; exact zero means the class is absent
		if counts[c] == 0 {
			m.Priors[c] = math.Inf(-1)
			continue
		}
		m.Priors[c] = math.Log(counts[c] / float64(len(X)))
		for f := range m.Means[c] {
			m.Means[c][f] /= counts[c]
		}
	}
	maxVar := 0.0
	for i, x := range X {
		c := y[i]
		for f, v := range x {
			d := v - m.Means[c][f]
			m.Vars[c][f] += d * d
		}
	}
	for c := 0; c < numClasses; c++ {
		//lint:ignore floatcmp class counts are integral floats; exact zero means the class is absent
		if counts[c] == 0 {
			continue
		}
		for f := range m.Vars[c] {
			m.Vars[c][f] /= counts[c]
			if m.Vars[c][f] > maxVar {
				maxVar = m.Vars[c][f]
			}
		}
	}
	smooth := 1e-9 * maxVar
	if smooth <= 0 {
		smooth = 1e-9
	}
	for c := 0; c < numClasses; c++ {
		for f := range m.Vars[c] {
			m.Vars[c][f] += smooth
		}
	}
	return m, nil
}

func alloc2d(r, c int) [][]float64 {
	out := make([][]float64, r)
	backing := make([]float64, r*c)
	for i := range out {
		out[i], backing = backing[:c:c], backing[c:]
	}
	return out
}

// PredictProba returns normalized class probabilities for x.
func (m *Model) PredictProba(x []float64) []float64 {
	logp := make([]float64, m.NumClasses)
	maxLog := math.Inf(-1)
	for c := 0; c < m.NumClasses; c++ {
		lp := m.Priors[c]
		if !math.IsInf(lp, -1) {
			for f, v := range x {
				d := v - m.Means[c][f]
				lp += -0.5*math.Log(2*math.Pi*m.Vars[c][f]) - d*d/(2*m.Vars[c][f])
			}
		}
		logp[c] = lp
		if lp > maxLog {
			maxLog = lp
		}
	}
	sum := 0.0
	for c := range logp {
		logp[c] = math.Exp(logp[c] - maxLog)
		sum += logp[c]
	}
	for c := range logp {
		logp[c] /= sum
	}
	return logp
}

// Predict returns the most probable class for x.
func (m *Model) Predict(x []float64) int {
	p := m.PredictProba(x)
	best := 0
	for i := 1; i < len(p); i++ {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

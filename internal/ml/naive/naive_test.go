package naive

import (
	"math"
	"math/rand"
	"testing"
)

func blobs(seed int64, k, perClass int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var X [][]float64
	var y []int
	for c := 0; c < k; c++ {
		cx := float64(c * 8)
		for i := 0; i < perClass; i++ {
			X = append(X, []float64{cx + rng.NormFloat64(), rng.NormFloat64()})
			y = append(y, c)
		}
	}
	return X, y
}

func TestFitPredict(t *testing.T) {
	X, y := blobs(1, 3, 60)
	m, err := Fit(X, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Errorf("accuracy = %v, want >= 0.95", acc)
	}
}

func TestPredictProbaValid(t *testing.T) {
	X, y := blobs(2, 2, 40)
	m, err := Fit(X, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		p := m.PredictProba(x)
		s := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("bad prob %v", p)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("probs sum to %v", s)
		}
	}
}

func TestEmptyClassGetsZeroProb(t *testing.T) {
	X := [][]float64{{0}, {1}, {0.5}}
	y := []int{0, 0, 0}
	m, err := Fit(X, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := m.PredictProba([]float64{0.2})
	if p[1] != 0 || p[2] != 0 {
		t.Errorf("unseen classes should have zero probability: %v", p)
	}
	if p[0] < 0.99 {
		t.Errorf("seen class should dominate: %v", p)
	}
}

func TestConstantFeatureDoesNotBlowUp(t *testing.T) {
	X := [][]float64{{1, 0}, {1, 1}, {1, 10}, {1, 11}}
	y := []int{0, 0, 1, 1}
	m, err := Fit(X, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{1, 0.5}); got != 0 {
		t.Errorf("Predict = %d, want 0", got)
	}
	if got := m.Predict([]float64{1, 10.5}); got != 1 {
		t.Errorf("Predict = %d, want 1", got)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, 2); err == nil {
		t.Error("empty X should error")
	}
	if _, err := Fit([][]float64{{1}}, []int{0, 1}, 2); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Fit([][]float64{{1}}, []int{9}, 2); err == nil {
		t.Error("bad label should error")
	}
}

package core

import (
	"errors"
	"fmt"

	"strudel/internal/features"
	"strudel/internal/ml/crf"
	"strudel/internal/ml/knn"
	"strudel/internal/ml/naive"
	"strudel/internal/ml/nn"
	"strudel/internal/ml/svm"
	"strudel/internal/table"
)

// CRFLineModel adapts the linear-chain CRF to the line classification task:
// the CRF^L baseline (Adelfio & Samet). Line features are discretized with
// logarithmic binning; the chain runs over the non-empty lines of a file.
// The computational DerivedCoverage feature is excluded, since the original
// approach has no derived-cell arithmetic.
type CRFLineModel struct {
	M    *crf.Model
	Opts features.LineOptions
	Mask []int
}

// CRFLineFeatureMask is the feature subset used by CRF^L: content plus
// contextual features (Adelfio & Samet's families, minus the stylistic ones
// unavailable in CSV files).
func CRFLineFeatureMask() []int {
	mask := append([]int(nil), features.LineContentFeatures...)
	return append(mask, features.LineContextualFeatures...)
}

// TrainCRFLine fits the CRF^L baseline on annotated tables.
func TrainCRFLine(tables []*table.Table, fopts features.LineOptions, copts crf.Options) (*CRFLineModel, error) {
	mask := CRFLineFeatureMask()
	var seqs [][][]int
	var labels [][]int
	for _, t := range tables {
		if t.LineClasses == nil {
			continue
		}
		seq, lab, _ := crfSequence(t, fopts, mask)
		if len(seq) == 0 {
			continue
		}
		seqs = append(seqs, seq)
		labels = append(labels, lab)
	}
	if len(seqs) == 0 {
		return nil, errors.New("core: no annotated files for CRF training")
	}
	m, err := crf.Fit(seqs, labels, table.NumClasses, crf.NumFeatureIDs(len(mask)), copts)
	if err != nil {
		return nil, err
	}
	return &CRFLineModel{M: m, Opts: fopts, Mask: mask}, nil
}

// crfSequence converts a table into the CRF's discrete representation:
// one item per non-empty line. rows maps sequence positions back to line
// indices.
func crfSequence(t *table.Table, fopts features.LineOptions, mask []int) (seq [][]int, labels []int, rows []int) {
	fs := features.LineFeatures(t, fopts)
	for r := 0; r < t.Height(); r++ {
		if t.IsEmptyLine(r) {
			continue
		}
		seq = append(seq, crf.BinizeVector(maskVector(fs[r], mask)))
		if t.LineClasses != nil {
			idx := t.LineClasses[r].Index()
			if idx < 0 {
				idx = table.ClassData.Index() // defensive: unlabeled non-empty line
			}
			labels = append(labels, idx)
		}
		rows = append(rows, r)
	}
	return seq, labels, rows
}

// Classify predicts one class per line via Viterbi decoding.
func (m *CRFLineModel) Classify(t *table.Table) []table.Class {
	out := make([]table.Class, t.Height())
	seq, _, rows := crfSequence(t, m.Opts, m.Mask)
	if len(seq) == 0 {
		return out
	}
	pred := m.M.Decode(seq)
	for i, r := range rows {
		out[r] = table.ClassAt(pred[i])
	}
	return out
}

// RNNCellModel adapts the recurrent network to the cell classification
// task: the RNN^C baseline (Ghasemi-Gol et al.). The network runs over the
// non-empty cells of each line; inputs are the Table 2 cell features minus
// the Strudel-specific LineClassProbability and IsAggregation components
// (the original approach has neither).
type RNNCellModel struct {
	M    *nn.Model
	Opts features.CellOptions
	Mask []int
}

// RNNCellFeatureMask is the cell feature subset visible to RNN^C.
func RNNCellFeatureMask() []int {
	var mask []int
	mask = append(mask, features.CellContentFeatures...)
	mask = append(mask, features.CellContextualFeatures...)
	return mask
}

// TrainRNNCell fits the RNN^C baseline on annotated tables.
func TrainRNNCell(tables []*table.Table, fopts features.CellOptions, nopts nn.Options) (*RNNCellModel, error) {
	mask := RNNCellFeatureMask()
	var seqs [][][]float64
	var labels [][]int
	for _, t := range tables {
		if t.CellClasses == nil {
			continue
		}
		fs := features.CellFeatures(t, nil, fopts)
		for r := 0; r < t.Height(); r++ {
			var seq [][]float64
			var lab []int
			for c := 0; c < t.Width(); c++ {
				idx := t.CellClasses[r][c].Index()
				if idx < 0 || t.IsEmptyCell(r, c) {
					continue
				}
				seq = append(seq, maskVector(fs[r][c], mask))
				lab = append(lab, idx)
			}
			if len(seq) > 0 {
				seqs = append(seqs, seq)
				labels = append(labels, lab)
			}
		}
	}
	if len(seqs) == 0 {
		return nil, errors.New("core: no annotated cells for RNN training")
	}
	m, err := nn.Fit(seqs, labels, table.NumClasses, nopts)
	if err != nil {
		return nil, err
	}
	return &RNNCellModel{M: m, Opts: fopts, Mask: mask}, nil
}

// Classify predicts one class per cell; empty cells get ClassEmpty.
func (m *RNNCellModel) Classify(t *table.Table) [][]table.Class {
	fs := features.CellFeatures(t, nil, m.Opts)
	out := make([][]table.Class, t.Height())
	for r := 0; r < t.Height(); r++ {
		out[r] = make([]table.Class, t.Width())
		var seq [][]float64
		var cols []int
		for c := 0; c < t.Width(); c++ {
			if t.IsEmptyCell(r, c) {
				continue
			}
			seq = append(seq, maskVector(fs[r][c], m.Mask))
			cols = append(cols, c)
		}
		if len(seq) == 0 {
			continue
		}
		pred := m.M.PredictSeq(seq)
		for i, c := range cols {
			out[r][c] = table.ClassAt(pred[i])
		}
	}
	return out
}

// probaClassifier is the common surface of the interchangeable flat
// classifiers used in the Section 6.1.2 backbone ablation.
type probaClassifier interface {
	PredictProba(x []float64) []float64
}

// AltLineModel wraps an alternative flat classifier (naive Bayes, KNN,
// linear SVM) behind the Strudel^L feature pipeline, for the classifier
// bake-off of Section 6.1.2.
type AltLineModel struct {
	C    probaClassifier
	Name string
	Opts features.LineOptions
}

// TrainAltLine fits one of the alternative backbones on the Strudel^L
// features. kind is one of "naive", "knn", "svm".
func TrainAltLine(tables []*table.Table, kind string, fopts features.LineOptions, seed int64) (*AltLineModel, error) {
	var X [][]float64
	var y []int
	for _, t := range tables {
		if t.LineClasses == nil {
			continue
		}
		fs := features.LineFeatures(t, fopts)
		for r := 0; r < t.Height(); r++ {
			idx := t.LineClasses[r].Index()
			if idx < 0 || t.IsEmptyLine(r) {
				continue
			}
			X = append(X, maskVector(fs[r], nil))
			y = append(y, idx)
		}
	}
	if len(X) == 0 {
		return nil, errors.New("core: no annotated lines to train on")
	}
	var c probaClassifier
	var err error
	switch kind {
	case "naive":
		c, err = naive.Fit(X, y, table.NumClasses)
	case "knn":
		c, err = knn.Fit(X, y, table.NumClasses, 5)
	case "svm":
		c, err = svm.Fit(X, y, table.NumClasses, svm.Options{Seed: seed})
	default:
		return nil, fmt.Errorf("core: unknown classifier kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	return &AltLineModel{C: c, Name: kind, Opts: fopts}, nil
}

// Classify predicts one class per line of t; empty lines get ClassEmpty.
func (m *AltLineModel) Classify(t *table.Table) []table.Class {
	fs := features.LineFeatures(t, m.Opts)
	out := make([]table.Class, t.Height())
	for r := 0; r < t.Height(); r++ {
		if t.IsEmptyLine(r) {
			continue
		}
		out[r] = table.ClassAt(argMax(m.C.PredictProba(fs[r])))
	}
	return out
}

package core

import (
	"strudel/internal/ml/forest"
	"strudel/internal/pipeline"
)

// predictRows is the one columnar scoring path every core stage funnels
// through: the raw feature rows are staged (mask applied in place) into the
// artifact's reusable feature block, classified in a single
// PredictProbaMatrix pass, and returned as per-row views into one freshly
// allocated probability slab. The slab is long-lived — stages cache and
// publish these vectors — so only the staging matrix is recycled.
//
// A nil mask stages each row verbatim; a non-nil mask projects the
// selected feature indices during the fill, so ablation models pay no
// per-row projection copies.
func predictRows(a *pipeline.Artifacts, p forest.Predictor, rows [][]float64, mask []int) [][]float64 {
	out := make([][]float64, len(rows))
	if len(rows) == 0 {
		return out
	}
	cols := len(rows[0])
	if mask != nil {
		cols = len(mask)
	}
	m := a.FeatureMatrix(len(rows), cols)
	if mask == nil {
		m.FillRows(rows)
	} else {
		for r, x := range rows {
			m.SetRowMasked(r, x, mask)
		}
	}
	k := p.Classes()
	slab := make([]float64, len(rows)*k)
	p.PredictProbaMatrix(m, slab)
	for r := range out {
		out[r] = slab[r*k : (r+1)*k : (r+1)*k]
	}
	return out
}

// predictor returns the model's compiled inference engine when one has
// been built (training and LoadModel compile eagerly) and otherwise the
// pointer-walking forest — same Predictor contract, float-identical
// output, just slower.
func (m *LineModel) predictor() forest.Predictor {
	if m.compiled != nil {
		return m.compiled
	}
	return m.Forest
}

// Compile builds the flattened SoA inference engine for the model's
// forest. Training and model loading call it eagerly so every prediction
// after construction runs the compiled path.
func (m *LineModel) Compile() error {
	c, err := m.Forest.Compile()
	if err != nil {
		return err
	}
	m.compiled = c
	return nil
}

// ClearCompiled drops the compiled engine, forcing predictions back onto
// the pointer-walking path — the lever the float-identity equivalence
// tests pull to compare both engines on identical inputs.
func (m *LineModel) ClearCompiled() { m.compiled = nil }

func (m *CellModel) predictor() forest.Predictor {
	if m.compiled != nil {
		return m.compiled
	}
	return m.Forest
}

// Compile builds the flattened inference engines for the cell forest and,
// when column probabilities are enabled, the column forest. The embedded
// line model compiles separately (it is stored once per model file).
func (m *CellModel) Compile() error {
	c, err := m.Forest.Compile()
	if err != nil {
		return err
	}
	m.compiled = c
	if m.Column != nil {
		return m.Column.Compile()
	}
	return nil
}

// ClearCompiled drops the compiled engines of the cell forest and the
// optional column forest (not the embedded line model's).
func (m *CellModel) ClearCompiled() {
	m.compiled = nil
	if m.Column != nil {
		m.Column.ClearCompiled()
	}
}

func (m *ColumnModel) predictor() forest.Predictor {
	if m.compiled != nil {
		return m.compiled
	}
	return m.Forest
}

// Compile builds the flattened SoA inference engine for the column forest.
func (m *ColumnModel) Compile() error {
	c, err := m.Forest.Compile()
	if err != nil {
		return err
	}
	m.compiled = c
	return nil
}

// ClearCompiled drops the compiled engine (see LineModel.ClearCompiled).
func (m *ColumnModel) ClearCompiled() { m.compiled = nil }

package core

import (
	"testing"

	"strudel/internal/features"
	"strudel/internal/ml/forest"
	"strudel/internal/table"
)

func TestColumnGold(t *testing.T) {
	tb := table.FromRows([][]string{
		{"Item", "Q1", "Total"},
		{"a", "1", "1"},
		{"b", "2", "2"},
	})
	tb.EnsureAnnotations()
	tb.CellClasses[0][0] = table.ClassHeader
	tb.CellClasses[0][1] = table.ClassHeader
	tb.CellClasses[0][2] = table.ClassHeader
	for r := 1; r <= 2; r++ {
		tb.CellClasses[r][0] = table.ClassData
		tb.CellClasses[r][1] = table.ClassData
		tb.CellClasses[r][2] = table.ClassDerived
	}
	gold := ColumnGold(tb)
	if gold[0] != table.ClassData || gold[1] != table.ClassData {
		t.Errorf("label/data column gold = %v %v, want data", gold[0], gold[1])
	}
	if gold[2] != table.ClassDerived {
		t.Errorf("total column gold = %v, want derived", gold[2])
	}
}

func TestColumnGoldUnannotated(t *testing.T) {
	tb := table.FromRows([][]string{{"a", "b"}})
	gold := ColumnGold(tb)
	for _, g := range gold {
		if g != table.ClassEmpty {
			t.Error("unannotated table should yield empty column gold")
		}
	}
}

func TestColumnFeaturesShape(t *testing.T) {
	tb := smallCorpus[0]
	fs := features.ColumnFeatures(tb, features.DefaultCellOptions())
	if len(fs) != tb.Width() {
		t.Fatalf("%d column vectors for width %d", len(fs), tb.Width())
	}
	for c, f := range fs {
		if len(f) != features.NumColumnFeatures {
			t.Fatalf("column %d: %d features", c, len(f))
		}
	}
}

func TestTrainColumnAndClassify(t *testing.T) {
	m, err := TrainColumn(smallCorpus, features.DefaultCellOptions(), forest.Options{NumTrees: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, f := range smallCorpus[:10] {
		pred := m.Classify(f)
		gold := ColumnGold(f)
		for c := range pred {
			if gold[c].Index() < 0 {
				continue
			}
			total++
			if pred[c] == gold[c] {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Errorf("column training accuracy = %v, want >= 0.85", acc)
	}
}

func TestCellModelWithColumnProbs(t *testing.T) {
	opts := DefaultCellTrainOptions()
	opts.Forest = fastForest(10)
	opts.Line.Forest = fastForest(10)
	opts.MaxCellsPerFile = 200
	opts.UseColumnProbs = true
	m, err := TrainCell(smallCorpus[:12], opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Column == nil {
		t.Fatal("column model not trained")
	}
	// The forest must see base + column probability features.
	want := features.NumCellFeatures + table.NumClasses
	if m.Forest.NumFeats != want {
		t.Errorf("forest features = %d, want %d", m.Forest.NumFeats, want)
	}
	pred := m.Classify(smallCorpus[0])
	if len(pred) != smallCorpus[0].Height() {
		t.Error("prediction shape wrong")
	}
}

func TestCellModelWithColumnProbsAndMask(t *testing.T) {
	opts := DefaultCellTrainOptions()
	opts.Forest = fastForest(11)
	opts.Line.Forest = fastForest(11)
	opts.MaxCellsPerFile = 150
	opts.UseColumnProbs = true
	opts.FeatureMask = []int{0, 1, 2, 3}
	m, err := TrainCell(smallCorpus[:8], opts)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 + table.NumClasses // masked base + appended column probs
	if m.Forest.NumFeats != want {
		t.Errorf("forest features = %d, want %d", m.Forest.NumFeats, want)
	}
	_ = m.Classify(smallCorpus[0]) // must not panic on dimension mismatch
}

func TestCellModelPostProcess(t *testing.T) {
	opts := DefaultCellTrainOptions()
	opts.Forest = fastForest(12)
	opts.Line.Forest = fastForest(12)
	opts.MaxCellsPerFile = 150
	opts.PostProcess = true
	m, err := TrainCell(smallCorpus[:10], opts)
	if err != nil {
		t.Fatal(err)
	}
	f := smallCorpus[0]
	pred := m.Classify(f)
	// Repair may only relabel non-empty cells.
	for r := 0; r < f.Height(); r++ {
		for c := 0; c < f.Width(); c++ {
			if f.IsEmptyCell(r, c) && pred[r][c] != table.ClassEmpty {
				t.Fatal("post-processing touched an empty cell")
			}
		}
	}
}

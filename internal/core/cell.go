package core

import (
	"errors"
	"math/rand"

	"strudel/internal/features"
	"strudel/internal/ml/forest"
	"strudel/internal/postprocess"
	"strudel/internal/table"
)

// CellModel is a trained Strudel^C classifier. It embeds the Strudel^L
// model whose class probabilities feed the LineClassProbability features.
type CellModel struct {
	Forest *forest.Forest
	Line   *LineModel
	Opts   features.CellOptions
	// Mask selects a subset of cell features (for ablations); nil = all.
	Mask []int
	// Column, when non-nil, appends per-column class probabilities to each
	// cell's feature vector (the future-work extension of the paper's
	// conclusion).
	Column *ColumnModel
	// PostProcess applies the Koci-style misclassification repair to
	// Classify results.
	PostProcess bool
}

// CellTrainOptions configures Strudel^C training.
type CellTrainOptions struct {
	Forest   forest.Options
	Features features.CellOptions
	// Line configures the embedded Strudel^L model. Leave zero for
	// defaults; the forest seed is reused.
	Line LineTrainOptions
	// FeatureMask restricts training to these cell feature indices.
	FeatureMask []int
	// MaxCellsPerFile caps the training cells sampled from each file
	// (0 = use every cell). Sampling is deterministic in Forest.Seed and
	// always keeps minority-class cells, which are the scarce signal.
	MaxCellsPerFile int
	// UseColumnProbs trains a column classifier alongside Strudel^C and
	// appends its per-column probability vectors to the cell features.
	UseColumnProbs bool
	// PostProcess enables the Koci-style misclassification repair on
	// predictions.
	PostProcess bool
}

// DefaultCellTrainOptions mirrors the paper's setup.
func DefaultCellTrainOptions() CellTrainOptions {
	return CellTrainOptions{
		Forest:   forest.DefaultOptions(),
		Features: features.DefaultCellOptions(),
		Line:     DefaultLineTrainOptions(),
	}
}

// TrainCell fits Strudel^C on annotated tables: it first trains the
// embedded Strudel^L, then uses its per-line probability vectors as cell
// features (Section 5.4).
func TrainCell(tables []*table.Table, opts CellTrainOptions) (*CellModel, error) {
	if opts.Line.Forest.NumTrees == 0 {
		opts.Line = DefaultLineTrainOptions()
	}
	opts.Line.Forest.Seed = opts.Forest.Seed
	lineModel, err := TrainLine(tables, opts.Line)
	if err != nil {
		return nil, err
	}

	var colModel *ColumnModel
	if opts.UseColumnProbs {
		colModel, err = TrainColumn(tables, opts.Features, opts.Forest)
		if err != nil {
			return nil, err
		}
	}

	rng := rand.New(rand.NewSource(opts.Forest.Seed + 1))
	var X [][]float64
	var y []int
	for _, t := range tables {
		if t.CellClasses == nil {
			continue
		}
		probs := lineModel.Probabilities(t)
		fs := features.CellFeatures(t, probs, opts.Features)
		if colModel != nil {
			appendColumnProbs(t, fs, colModel)
		}
		fileX, fileY := collectCells(t, fs, opts.FeatureMask)
		if opts.MaxCellsPerFile > 0 && len(fileX) > opts.MaxCellsPerFile {
			fileX, fileY = subsampleCells(fileX, fileY, opts.MaxCellsPerFile, rng)
		}
		X = append(X, fileX...)
		y = append(y, fileY...)
	}
	if len(X) == 0 {
		return nil, errors.New("core: no annotated cells to train on")
	}
	f, err := forest.Fit(X, y, table.NumClasses, opts.Forest)
	if err != nil {
		return nil, err
	}
	return &CellModel{
		Forest: f, Line: lineModel, Opts: opts.Features, Mask: opts.FeatureMask,
		Column: colModel, PostProcess: opts.PostProcess,
	}, nil
}

// appendColumnProbs extends every cell's feature vector with its column's
// class probability vector. FeatureMask indices keep referring to the base
// features; the appended components are always retained.
func appendColumnProbs(t *table.Table, fs [][][]float64, colModel *ColumnModel) {
	colProbs := colModel.Probabilities(t)
	for r := range fs {
		for c := range fs[r] {
			fs[r][c] = append(fs[r][c], colProbs[c]...)
		}
	}
}

func collectCells(t *table.Table, fs [][][]float64, mask []int) ([][]float64, []int) {
	mask = extendMask(mask, fs)
	var X [][]float64
	var y []int
	for r := 0; r < t.Height(); r++ {
		for c := 0; c < t.Width(); c++ {
			idx := t.CellClasses[r][c].Index()
			if idx < 0 || t.IsEmptyCell(r, c) {
				continue
			}
			X = append(X, maskVector(fs[r][c], mask))
			y = append(y, idx)
		}
	}
	return X, y
}

// extendMask widens a feature mask to cover components appended beyond the
// base cell feature set (column probabilities), which are always kept.
func extendMask(mask []int, fs [][][]float64) []int {
	if mask == nil || len(fs) == 0 || len(fs[0]) == 0 {
		return mask
	}
	total := len(fs[0][0])
	if total <= features.NumCellFeatures {
		return mask
	}
	out := append([]int(nil), mask...)
	for i := features.NumCellFeatures; i < total; i++ {
		out = append(out, i)
	}
	return out
}

// subsampleCells keeps every non-data cell (the scarce classes) and fills
// the remaining budget with a uniform sample of data cells.
func subsampleCells(X [][]float64, y []int, cap int, rng *rand.Rand) ([][]float64, []int) {
	dataIdx := table.ClassData.Index()
	var keep []int
	var data []int
	for i, label := range y {
		if label == dataIdx {
			data = append(data, i)
		} else {
			keep = append(keep, i)
		}
	}
	budget := cap - len(keep)
	if budget < 0 {
		budget = 0
	}
	rng.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	if budget > len(data) {
		budget = len(data)
	}
	keep = append(keep, data[:budget]...)
	outX := make([][]float64, len(keep))
	outY := make([]int, len(keep))
	for i, idx := range keep {
		outX[i], outY[i] = X[idx], y[idx]
	}
	return outX, outY
}

// Probabilities returns one class probability vector per cell. Empty cells
// get all-zero vectors.
func (m *CellModel) Probabilities(t *table.Table) [][][]float64 {
	lineProbs := m.Line.Probabilities(t)
	fs := features.CellFeatures(t, lineProbs, m.Opts)
	if m.Column != nil {
		appendColumnProbs(t, fs, m.Column)
	}
	out := make([][][]float64, t.Height())
	mask := extendMask(m.Mask, fs)
	var batch [][]float64
	type pos struct{ r, c int }
	var cells []pos
	for r := 0; r < t.Height(); r++ {
		out[r] = make([][]float64, t.Width())
		for c := 0; c < t.Width(); c++ {
			if t.IsEmptyCell(r, c) {
				out[r][c] = make([]float64, table.NumClasses)
				continue
			}
			batch = append(batch, maskVector(fs[r][c], mask))
			cells = append(cells, pos{r, c})
		}
	}
	probs := m.Forest.PredictProbaBatch(batch)
	for i, p := range cells {
		out[p.r][p.c] = probs[i]
	}
	return out
}

// Classify predicts one class per cell of t; empty cells get ClassEmpty.
// When PostProcess is set, the Koci-style misclassification repair runs on
// the raw predictions.
func (m *CellModel) Classify(t *table.Table) [][]table.Class {
	probs := m.Probabilities(t)
	out := make([][]table.Class, t.Height())
	for r := 0; r < t.Height(); r++ {
		out[r] = make([]table.Class, t.Width())
		for c := 0; c < t.Width(); c++ {
			if t.IsEmptyCell(r, c) {
				continue
			}
			out[r][c] = table.ClassAt(argMax(probs[r][c]))
		}
	}
	if m.PostProcess {
		out = postprocess.Repair(t, out, postprocess.Options{})
	}
	return out
}

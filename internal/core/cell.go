package core

import (
	"context"
	"errors"
	"math/rand"

	"strudel/internal/features"
	"strudel/internal/ml/forest"
	"strudel/internal/pipeline"
	"strudel/internal/postprocess"
	"strudel/internal/table"
)

// CellModel is a trained Strudel^C classifier. It embeds the Strudel^L
// model whose class probabilities feed the LineClassProbability features.
type CellModel struct {
	Forest *forest.Forest
	Line   *LineModel
	Opts   features.CellOptions
	// Mask selects a subset of cell features (for ablations); nil = all.
	Mask []int
	// Column, when non-nil, appends per-column class probabilities to each
	// cell's feature vector (the future-work extension of the paper's
	// conclusion).
	Column *ColumnModel
	// PostProcess applies the Koci-style misclassification repair to
	// Classify results.
	PostProcess bool

	// compiled is the flattened SoA inference engine built from Forest;
	// unexported so it never serializes (see LineModel.compiled).
	compiled *forest.Compiled
}

// CellTrainOptions configures Strudel^C training.
type CellTrainOptions struct {
	Forest   forest.Options
	Features features.CellOptions
	// Line configures the embedded Strudel^L model. Unset pieces (a zero
	// tree count, a zero-value feature configuration) are defaulted
	// individually, so a caller's custom Features or FeatureMask survive;
	// the forest seed is reused.
	Line LineTrainOptions
	// FeatureMask restricts training to these cell feature indices.
	FeatureMask []int
	// MaxCellsPerFile caps the training cells sampled from each file
	// (0 = use every cell). Sampling is deterministic in Forest.Seed and
	// the file's position, and always keeps minority-class cells, which
	// are the scarce signal.
	MaxCellsPerFile int
	// UseColumnProbs trains a column classifier alongside Strudel^C and
	// appends its per-column probability vectors to the cell features.
	UseColumnProbs bool
	// PostProcess enables the Koci-style misclassification repair on
	// predictions.
	PostProcess bool
	// Parallelism bounds the worker pool extracting per-file training
	// cells (0 = GOMAXPROCS). The trained model is independent of the
	// setting.
	Parallelism int
}

// DefaultCellTrainOptions mirrors the paper's setup.
func DefaultCellTrainOptions() CellTrainOptions {
	return CellTrainOptions{
		Forest:   forest.DefaultOptions(),
		Features: features.DefaultCellOptions(),
		Line:     DefaultLineTrainOptions(),
	}
}

// TrainCell fits Strudel^C on annotated tables: it first trains the
// embedded Strudel^L, then uses its per-line probability vectors as cell
// features (Section 5.4). Per-file extraction runs on a bounded worker
// pool; the assembled training matrix is identical at every parallelism
// level.
func TrainCell(tables []*table.Table, opts CellTrainOptions) (*CellModel, error) {
	// context.Background is never cancelled, so this is plain training.
	return TrainCellContext(context.Background(), tables, opts)
}

// TrainCellContext is TrainCell with cooperative cancellation: the
// embedded line model, the per-file cell feature extraction, and the cell
// forest each stop at the next file or tree boundary once ctx is
// cancelled, returning ctx's error. A nil ctx behaves like
// context.Background.
func TrainCellContext(ctx context.Context, tables []*table.Table, opts CellTrainOptions) (*CellModel, error) {
	// Default only the unset pieces of the embedded line configuration: a
	// caller that customizes Line.Features or Line.FeatureMask but leaves
	// the forest zero must not have those choices silently discarded.
	if opts.Line.Forest.NumTrees == 0 {
		opts.Line.Forest.NumTrees = forest.DefaultOptions().NumTrees
	}
	if opts.Line.Features == (features.LineOptions{}) {
		opts.Line.Features = features.DefaultLineOptions()
	}
	opts.Line.Forest.Seed = opts.Forest.Seed
	if opts.Line.Parallelism == 0 {
		opts.Line.Parallelism = opts.Parallelism
	}
	lineModel, err := TrainLineContext(ctx, tables, opts.Line)
	if err != nil {
		return nil, err
	}

	var colModel *ColumnModel
	if opts.UseColumnProbs {
		colModel, err = TrainColumn(tables, opts.Features, opts.Forest)
		if err != nil {
			return nil, err
		}
	}

	type fileData struct {
		X [][]float64
		y []int
	}
	perFile := make([]fileData, len(tables))
	err = pipeline.ForEachContext(ctx, len(tables), opts.Parallelism, func(i int) {
		t := tables[i]
		if t.CellClasses == nil {
			return
		}
		a := pipeline.New(t)
		probs := lineModel.ProbabilitiesWithArtifacts(a)
		fs := features.CellFeatures(t, probs, opts.Features)
		if colModel != nil {
			appendColumnProbs(a, fs, colModel)
		}
		fileX, fileY := collectCells(t, fs, opts.FeatureMask)
		if opts.MaxCellsPerFile > 0 && len(fileX) > opts.MaxCellsPerFile {
			// A per-file rng (instead of one shared sequential stream)
			// keeps sampling deterministic under parallel extraction.
			rng := rand.New(rand.NewSource(sampleSeed(opts.Forest.Seed, i)))
			fileX, fileY = subsampleCells(fileX, fileY, opts.MaxCellsPerFile, rng)
		}
		perFile[i] = fileData{X: fileX, y: fileY}
	})
	if err != nil {
		return nil, err
	}
	var X [][]float64
	var y []int
	for i := range perFile {
		X = append(X, perFile[i].X...)
		y = append(y, perFile[i].y...)
	}
	if len(X) == 0 {
		return nil, errors.New("core: no annotated cells to train on")
	}
	f, err := forest.FitContext(ctx, X, y, table.NumClasses, opts.Forest)
	if err != nil {
		return nil, err
	}
	m := &CellModel{
		Forest: f, Line: lineModel, Opts: opts.Features, Mask: opts.FeatureMask,
		Column: colModel, PostProcess: opts.PostProcess,
	}
	if err := m.Compile(); err != nil {
		return nil, err
	}
	return m, nil
}

// sampleSeed derives a decorrelated per-file sampling seed from the master
// seed (splitmix-style multiplicative mixing).
func sampleSeed(seed int64, file int) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(file+1)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	return int64(x)
}

// appendColumnProbs extends every cell's feature vector with its column's
// class probability vector. FeatureMask indices keep referring to the base
// features; the appended components are always retained.
func appendColumnProbs(a *pipeline.Artifacts, fs [][][]float64, colModel *ColumnModel) {
	colProbs := colModel.ProbabilitiesWithArtifacts(a)
	for r := range fs {
		for c := range fs[r] {
			fs[r][c] = append(fs[r][c], colProbs[c]...)
		}
	}
}

func collectCells(t *table.Table, fs [][][]float64, mask []int) ([][]float64, []int) {
	mask = extendMask(mask, fs)
	var X [][]float64
	var y []int
	for r := 0; r < t.Height(); r++ {
		for c := 0; c < t.Width(); c++ {
			idx := t.CellClasses[r][c].Index()
			if idx < 0 || t.IsEmptyCell(r, c) {
				continue
			}
			X = append(X, maskVectorCopy(fs[r][c], mask))
			y = append(y, idx)
		}
	}
	return X, y
}

// extendMask widens a feature mask to cover components appended beyond the
// base cell feature set (column probabilities), which are always kept.
func extendMask(mask []int, fs [][][]float64) []int {
	if mask == nil || len(fs) == 0 || len(fs[0]) == 0 {
		return mask
	}
	total := len(fs[0][0])
	if total <= features.NumCellFeatures {
		return mask
	}
	out := append([]int(nil), mask...)
	for i := features.NumCellFeatures; i < total; i++ {
		out = append(out, i)
	}
	return out
}

// subsampleCells keeps every non-data cell (the scarce classes) and fills
// the remaining budget with a uniform sample of data cells.
func subsampleCells(X [][]float64, y []int, cap int, rng *rand.Rand) ([][]float64, []int) {
	dataIdx := table.ClassData.Index()
	var keep []int
	var data []int
	for i, label := range y {
		if label == dataIdx {
			data = append(data, i)
		} else {
			keep = append(keep, i)
		}
	}
	budget := cap - len(keep)
	if budget < 0 {
		budget = 0
	}
	rng.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	if budget > len(data) {
		budget = len(data)
	}
	keep = append(keep, data[:budget]...)
	outX := make([][]float64, len(keep))
	outY := make([]int, len(keep))
	for i, idx := range keep {
		outX[i], outY[i] = X[idx], y[idx]
	}
	return outX, outY
}

// Probabilities returns one class probability vector per cell. Empty cells
// get all-zero vectors.
func (m *CellModel) Probabilities(t *table.Table) [][][]float64 {
	return m.ProbabilitiesWithArtifacts(pipeline.New(t))
}

// ProbabilitiesWithArtifacts is Probabilities against a shared artifact
// object: the Strudel^L probabilities and cell feature tensor are computed
// at most once per artifact, so a caller that has already run line
// classification on the same artifact pays no line-model work here.
func (m *CellModel) ProbabilitiesWithArtifacts(a *pipeline.Artifacts) [][][]float64 {
	t := a.Table
	fs := a.CellFeatures(m, m.computeCellFeatures)
	out := make([][][]float64, t.Height())
	mask := extendMask(m.Mask, fs)
	batch := make([][]float64, 0, t.Height()*t.Width())
	type pos struct{ r, c int }
	cells := make([]pos, 0, t.Height()*t.Width())
	for r := 0; r < t.Height(); r++ {
		out[r] = make([][]float64, t.Width())
		for c := 0; c < t.Width(); c++ {
			if t.IsEmptyCell(r, c) {
				out[r][c] = make([]float64, table.NumClasses)
				continue
			}
			batch = append(batch, fs[r][c])
			cells = append(cells, pos{r, c})
		}
	}
	probs := predictRows(a, m.predictor(), batch, mask)
	for i, p := range cells {
		out[p.r][p.c] = probs[i]
	}
	return out
}

// computeCellFeatures builds the Table 2 feature tensor, including the
// LineClassProbability components from the embedded Strudel^L and optional
// column probabilities.
func (m *CellModel) computeCellFeatures(a *pipeline.Artifacts) [][][]float64 {
	lineProbs := m.Line.ProbabilitiesWithArtifacts(a)
	fs := a.Shared().CellFeatures(lineProbs, m.Opts)
	if m.Column != nil {
		appendColumnProbs(a, fs, m.Column)
	}
	return fs
}

// Classify predicts one class per cell of t; empty cells get ClassEmpty.
// When PostProcess is set, the Koci-style misclassification repair runs on
// the raw predictions.
func (m *CellModel) Classify(t *table.Table) [][]table.Class {
	return m.ClassifyWithArtifacts(pipeline.New(t))
}

// ClassifyWithArtifacts is Classify against a shared artifact object.
func (m *CellModel) ClassifyWithArtifacts(a *pipeline.Artifacts) [][]table.Class {
	t := a.Table
	probs := m.ProbabilitiesWithArtifacts(a)
	out := make([][]table.Class, t.Height())
	for r := 0; r < t.Height(); r++ {
		out[r] = make([]table.Class, t.Width())
		for c := 0; c < t.Width(); c++ {
			if t.IsEmptyCell(r, c) {
				continue
			}
			out[r][c] = table.ClassAt(argMax(probs[r][c]))
		}
	}
	if m.PostProcess {
		out = postprocess.Repair(t, out, postprocess.Options{})
	}
	return out
}

package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"strudel/internal/datagen"
	"strudel/internal/features"
	"strudel/internal/ml/crf"
	"strudel/internal/ml/forest"
	"strudel/internal/ml/nn"
	"strudel/internal/pipeline"
	"strudel/internal/table"
)

// smallCorpus generates a compact training corpus once per test binary.
var smallCorpus = func() []*table.Table {
	p := datagen.SAUS()
	p.Files = 25
	return datagen.Generate(p).Files
}()

// fastForest keeps unit tests quick.
func fastForest(seed int64) forest.Options {
	return forest.Options{NumTrees: 15, Seed: seed}
}

func lineAccuracy(pred, gold []table.Class) (int, int) {
	correct, total := 0, 0
	for i := range gold {
		if gold[i].Index() < 0 {
			continue
		}
		total++
		if pred[i] == gold[i] {
			correct++
		}
	}
	return correct, total
}

func TestTrainLineAndClassify(t *testing.T) {
	opts := DefaultLineTrainOptions()
	opts.Forest = fastForest(1)
	m, err := TrainLine(smallCorpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, f := range smallCorpus {
		pred := m.Classify(f)
		c, n := lineAccuracy(pred, f.LineClasses)
		correct += c
		total += n
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("line training accuracy = %v, want >= 0.9", acc)
	}
}

func TestLineProbabilitiesShape(t *testing.T) {
	opts := DefaultLineTrainOptions()
	opts.Forest = fastForest(2)
	m, err := TrainLine(smallCorpus[:10], opts)
	if err != nil {
		t.Fatal(err)
	}
	f := smallCorpus[0]
	probs := m.Probabilities(f)
	if len(probs) != f.Height() {
		t.Fatalf("prob rows = %d, want %d", len(probs), f.Height())
	}
	for r, p := range probs {
		if len(p) != table.NumClasses {
			t.Fatalf("row %d: %d probs", r, len(p))
		}
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		if f.IsEmptyLine(r) {
			if sum != 0 {
				t.Errorf("empty line %d should have zero probs", r)
			}
		} else if sum < 0.999 || sum > 1.001 {
			t.Errorf("line %d probs sum to %v", r, sum)
		}
	}
}

func TestClassifyEmptyLinesStayEmpty(t *testing.T) {
	opts := DefaultLineTrainOptions()
	opts.Forest = fastForest(3)
	m, err := TrainLine(smallCorpus[:10], opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range smallCorpus[:5] {
		pred := m.Classify(f)
		for r := range pred {
			if f.IsEmptyLine(r) && pred[r] != table.ClassEmpty {
				t.Fatalf("empty line %d predicted %v", r, pred[r])
			}
		}
	}
}

func TestFeatureMaskReducesDimensions(t *testing.T) {
	opts := DefaultLineTrainOptions()
	opts.Forest = fastForest(4)
	opts.FeatureMask = []int{0, 1, 2}
	m, err := TrainLine(smallCorpus[:10], opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Forest.NumFeats != 3 {
		t.Errorf("masked model has %d features, want 3", m.Forest.NumFeats)
	}
	// Must still classify without panicking.
	_ = m.Classify(smallCorpus[0])
}

func TestTrainLineNoData(t *testing.T) {
	un := table.FromRows([][]string{{"a"}})
	if _, err := TrainLine([]*table.Table{un}, DefaultLineTrainOptions()); err == nil {
		t.Error("training on unannotated tables should error")
	}
}

func TestTrainCellAndClassify(t *testing.T) {
	opts := DefaultCellTrainOptions()
	opts.Forest = fastForest(5)
	opts.Line.Forest = fastForest(5)
	opts.MaxCellsPerFile = 300
	m, err := TrainCell(smallCorpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, f := range smallCorpus[:10] {
		pred := m.Classify(f)
		for r := 0; r < f.Height(); r++ {
			for c := 0; c < f.Width(); c++ {
				if f.CellClasses[r][c].Index() < 0 || f.IsEmptyCell(r, c) {
					continue
				}
				total++
				if pred[r][c] == f.CellClasses[r][c] {
					correct++
				}
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Errorf("cell training accuracy = %v, want >= 0.85", acc)
	}
}

func TestCellModelEmptyCellsStayEmpty(t *testing.T) {
	opts := DefaultCellTrainOptions()
	opts.Forest = fastForest(6)
	opts.Line.Forest = fastForest(6)
	opts.MaxCellsPerFile = 200
	m, err := TrainCell(smallCorpus[:8], opts)
	if err != nil {
		t.Fatal(err)
	}
	f := smallCorpus[0]
	pred := m.Classify(f)
	for r := 0; r < f.Height(); r++ {
		for c := 0; c < f.Width(); c++ {
			if f.IsEmptyCell(r, c) && pred[r][c] != table.ClassEmpty {
				t.Fatalf("empty cell (%d,%d) predicted %v", r, c, pred[r][c])
			}
		}
	}
}

func TestLineCBaseline(t *testing.T) {
	opts := DefaultLineTrainOptions()
	opts.Forest = fastForest(7)
	m, err := TrainLine(smallCorpus[:10], opts)
	if err != nil {
		t.Fatal(err)
	}
	f := smallCorpus[0]
	lines := m.Classify(f)
	cells := m.ClassifyCells(f)
	for r := 0; r < f.Height(); r++ {
		for c := 0; c < f.Width(); c++ {
			want := table.ClassEmpty
			if !f.IsEmptyCell(r, c) {
				want = lines[r]
			}
			if cells[r][c] != want {
				t.Fatalf("Line^C cell (%d,%d) = %v, want %v", r, c, cells[r][c], want)
			}
		}
	}
}

func TestTrainCRFLine(t *testing.T) {
	m, err := TrainCRFLine(smallCorpus[:15], DefaultLineTrainOptions().Features, crf.Options{Epochs: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for _, f := range smallCorpus[:15] {
		pred := m.Classify(f)
		c, n := lineAccuracy(pred, f.LineClasses)
		correct += c
		total += n
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Errorf("CRF training accuracy = %v, want >= 0.8", acc)
	}
}

func TestTrainRNNCell(t *testing.T) {
	m, err := TrainRNNCell(smallCorpus[:6], DefaultCellTrainOptions().Features,
		nn.Options{Hidden: 12, Epochs: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := smallCorpus[0]
	pred := m.Classify(f)
	correct, total := 0, 0
	for r := 0; r < f.Height(); r++ {
		for c := 0; c < f.Width(); c++ {
			if f.CellClasses[r][c].Index() < 0 || f.IsEmptyCell(r, c) {
				continue
			}
			total++
			if pred[r][c] == f.CellClasses[r][c] {
				correct++
			}
		}
	}
	// The RNN only needs to beat chance comfortably here; full training is
	// exercised by the benchmark harness.
	if acc := float64(correct) / float64(total); acc < 0.6 {
		t.Errorf("RNN training accuracy = %v, want >= 0.6", acc)
	}
}

func TestTrainAltLineKinds(t *testing.T) {
	for _, kind := range []string{"naive", "knn", "svm"} {
		m, err := TrainAltLine(smallCorpus[:10], kind, DefaultLineTrainOptions().Features, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		pred := m.Classify(smallCorpus[0])
		if len(pred) != smallCorpus[0].Height() {
			t.Fatalf("%s: prediction length mismatch", kind)
		}
	}
	if _, err := TrainAltLine(smallCorpus[:5], "bogus", DefaultLineTrainOptions().Features, 1); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestSubsampleKeepsMinorityCells(t *testing.T) {
	X := make([][]float64, 100)
	y := make([]int, 100)
	dataIdx := table.ClassData.Index()
	hdrIdx := table.ClassHeader.Index()
	for i := range X {
		X[i] = []float64{float64(i)}
		if i < 90 {
			y[i] = dataIdx
		} else {
			y[i] = hdrIdx
		}
	}
	opts := DefaultCellTrainOptions()
	_ = opts
	outX, outY := subsampleCells(X, y, 20, newTestRng())
	if len(outX) != 20 {
		t.Fatalf("kept %d cells, want 20", len(outX))
	}
	minority := 0
	for _, label := range outY {
		if label == hdrIdx {
			minority++
		}
	}
	if minority != 10 {
		t.Errorf("kept %d minority cells, want all 10", minority)
	}
}

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(1)) }

// TestTrainCellKeepsCustomLineConfig is the regression test for the option
// bug where any opts.Line with a zero tree count was replaced wholesale by
// DefaultLineTrainOptions, silently discarding a caller's custom
// Line.Features and Line.FeatureMask.
func TestTrainCellKeepsCustomLineConfig(t *testing.T) {
	custom := features.DefaultLineOptions()
	custom.StrictAdjacency = true
	custom.NeighborWindow = 3
	mask := append([]int(nil), features.LineContentFeatures...)

	opts := DefaultCellTrainOptions()
	opts.Forest = fastForest(3)
	opts.Line.Forest.NumTrees = 0 // unset: must be defaulted without clobbering the rest
	opts.Line.Features = custom
	opts.Line.FeatureMask = mask
	opts.MaxCellsPerFile = 150

	m, err := TrainCell(smallCorpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Line.Opts != custom {
		t.Errorf("custom line feature options discarded: got %+v", m.Line.Opts)
	}
	if len(m.Line.Mask) != len(mask) {
		t.Fatalf("custom feature mask discarded: got %v", m.Line.Mask)
	}
	for i := range mask {
		if m.Line.Mask[i] != mask[i] {
			t.Fatalf("custom feature mask altered: got %v want %v", m.Line.Mask, mask)
		}
	}
	if got := m.Line.Forest.Trees; len(got) != forest.DefaultOptions().NumTrees {
		t.Errorf("unset tree count not defaulted: got %d trees", len(got))
	}
}

// TestArtifactSharedAcrossStages checks that classifying lines and cells on
// one artifact matches the independent per-call results while running the
// line stage only once.
func TestArtifactSharedAcrossStages(t *testing.T) {
	opts := DefaultCellTrainOptions()
	opts.Forest = fastForest(5)
	opts.Line.Forest = fastForest(5)
	opts.MaxCellsPerFile = 150
	m, err := TrainCell(smallCorpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	f := smallCorpus[0]

	wantLines := m.Line.Classify(f)
	wantProbs := m.Line.Probabilities(f)
	wantCells := m.Classify(f)

	a := pipeline.New(f)
	gotLines := m.Line.ClassifyWithArtifacts(a)
	gotCells := m.ClassifyWithArtifacts(a)
	gotProbs := m.Line.ProbabilitiesWithArtifacts(a)

	for r := range wantLines {
		if gotLines[r] != wantLines[r] {
			t.Fatalf("line %d: artifact path %v, direct path %v", r, gotLines[r], wantLines[r])
		}
		for c := range wantCells[r] {
			if gotCells[r][c] != wantCells[r][c] {
				t.Fatalf("cell %d,%d: artifact path %v, direct path %v", r, c, gotCells[r][c], wantCells[r][c])
			}
		}
		for k := range wantProbs[r] {
			if gotProbs[r][k] != wantProbs[r][k] {
				t.Fatalf("prob %d,%d: artifact path %v, direct path %v", r, k, gotProbs[r][k], wantProbs[r][k])
			}
		}
	}
}

// TestTrainParallelismDeterministic trains the same corpus serially and
// with eight workers; the forests must be identical.
func TestTrainParallelismDeterministic(t *testing.T) {
	for _, train := range []struct {
		name string
		fit  func(par int) (*forest.Forest, error)
	}{
		{"line", func(par int) (*forest.Forest, error) {
			opts := DefaultLineTrainOptions()
			opts.Forest = fastForest(9)
			opts.Parallelism = par
			m, err := TrainLine(smallCorpus, opts)
			if err != nil {
				return nil, err
			}
			return m.Forest, nil
		}},
		{"cell", func(par int) (*forest.Forest, error) {
			opts := DefaultCellTrainOptions()
			opts.Forest = fastForest(9)
			opts.Line.Forest = fastForest(9)
			opts.MaxCellsPerFile = 120
			opts.Parallelism = par
			m, err := TrainCell(smallCorpus, opts)
			if err != nil {
				return nil, err
			}
			return m.Forest, nil
		}},
	} {
		serial, err := train.fit(1)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := train.fit(8)
		if err != nil {
			t.Fatal(err)
		}
		a, err := json.Marshal(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: serial and 8-worker training produced different forests", train.name)
		}
	}
}

// Package core implements the paper's contribution: the Strudel^L line
// classifier (Section 4), the Strudel^C cell classifier (Section 5) with
// its line-class-probability feature, and the Line^C baseline, plus
// table-level adapters for the CRF^L and RNN^C reference approaches.
//
// Prediction flows through pipeline.Artifacts: every entry point has a
// *WithArtifacts variant that memoizes the per-table feature matrices and
// Strudel^L probabilities so stacked stages (line → cell → reporting)
// compute each exactly once. The artifact-free methods are thin wrappers
// that allocate a fresh artifact per call.
package core

import (
	"context"
	"errors"

	"strudel/internal/features"
	"strudel/internal/ml/forest"
	"strudel/internal/pipeline"
	"strudel/internal/table"
)

// LineModel is a trained Strudel^L classifier.
type LineModel struct {
	Forest *forest.Forest
	// Opts is the feature extraction configuration used at train time; it
	// must be reused at prediction time.
	Opts features.LineOptions
	// Mask selects a subset of line features (for ablations); nil = all.
	Mask []int

	// compiled is the flattened SoA inference engine built from Forest
	// (see forest.Compiled). Unexported so it never serializes; Compile
	// populates it and predictor() falls back to Forest when it is nil.
	compiled *forest.Compiled
}

// LineTrainOptions configures Strudel^L training.
type LineTrainOptions struct {
	Forest   forest.Options
	Features features.LineOptions
	// FeatureMask restricts training to these feature indices; nil = all.
	FeatureMask []int
	// Parallelism bounds the worker pool extracting per-file features
	// (0 = GOMAXPROCS). The trained model is independent of the setting:
	// per-file results are assembled in file order before fitting.
	Parallelism int
}

// DefaultLineTrainOptions mirrors the paper's setup: scikit-learn-default
// random forest over the full Table 1 feature set.
func DefaultLineTrainOptions() LineTrainOptions {
	return LineTrainOptions{
		Forest:   forest.DefaultOptions(),
		Features: features.DefaultLineOptions(),
	}
}

// TrainLine fits Strudel^L on annotated tables. Only non-empty lines with a
// semantic class participate. Per-file feature extraction runs on a bounded
// worker pool; the assembled training matrix (and therefore the forest,
// given a fixed seed) is identical at every parallelism level.
func TrainLine(tables []*table.Table, opts LineTrainOptions) (*LineModel, error) {
	// context.Background is never cancelled, so this is plain training.
	return TrainLineContext(context.Background(), tables, opts)
}

// TrainLineContext is TrainLine with cooperative cancellation: feature
// extraction stops dispatching files and the forest stops growing trees
// once ctx is cancelled, returning ctx's error. A nil ctx behaves like
// context.Background.
func TrainLineContext(ctx context.Context, tables []*table.Table, opts LineTrainOptions) (*LineModel, error) {
	type fileData struct {
		X [][]float64
		y []int
	}
	perFile := make([]fileData, len(tables))
	err := pipeline.ForEachContext(ctx, len(tables), opts.Parallelism, func(i int) {
		t := tables[i]
		if t.LineClasses == nil {
			return
		}
		fs := features.LineFeatures(t, opts.Features)
		for r := 0; r < t.Height(); r++ {
			idx := t.LineClasses[r].Index()
			if idx < 0 || t.IsEmptyLine(r) {
				continue
			}
			perFile[i].X = append(perFile[i].X, maskVectorCopy(fs[r], opts.FeatureMask))
			perFile[i].y = append(perFile[i].y, idx)
		}
	})
	if err != nil {
		return nil, err
	}
	var X [][]float64
	var y []int
	for i := range perFile {
		X = append(X, perFile[i].X...)
		y = append(y, perFile[i].y...)
	}
	if len(X) == 0 {
		return nil, errors.New("core: no annotated lines to train on")
	}
	f, err := forest.FitContext(ctx, X, y, table.NumClasses, opts.Forest)
	if err != nil {
		return nil, err
	}
	m := &LineModel{Forest: f, Opts: opts.Features, Mask: opts.FeatureMask}
	if err := m.Compile(); err != nil {
		return nil, err
	}
	return m, nil
}

// Probabilities returns one class probability vector per line of t. Empty
// lines get all-zero vectors. This is the LineClassProbability feature
// source for Strudel^C (Section 5.4).
func (m *LineModel) Probabilities(t *table.Table) [][]float64 {
	return m.ProbabilitiesWithArtifacts(pipeline.New(t))
}

// ProbabilitiesWithArtifacts is Probabilities against a shared artifact
// object: the line feature matrix and the resulting probability vectors are
// computed at most once per artifact and reused by every later stage that
// consumes the same artifact (cell classification, Annotate's confidence
// report, ...). The result is owned by the artifact; treat it as read-only.
func (m *LineModel) ProbabilitiesWithArtifacts(a *pipeline.Artifacts) [][]float64 {
	return a.LineProbabilities(m, m.computeProbabilities)
}

func (m *LineModel) computeProbabilities(a *pipeline.Artifacts) [][]float64 {
	t := a.Table
	fs := a.LineFeatures(m.Opts)
	out := make([][]float64, t.Height())
	batch := make([][]float64, 0, t.Height())
	rows := make([]int, 0, t.Height())
	for r := 0; r < t.Height(); r++ {
		if t.IsEmptyLine(r) {
			out[r] = make([]float64, table.NumClasses)
			continue
		}
		batch = append(batch, fs[r])
		rows = append(rows, r)
	}
	probs := predictRows(a, m.predictor(), batch, m.Mask)
	for i, r := range rows {
		out[r] = probs[i]
	}
	return out
}

// Classify predicts one class per line of t; empty lines get ClassEmpty.
func (m *LineModel) Classify(t *table.Table) []table.Class {
	return m.ClassifyWithArtifacts(pipeline.New(t))
}

// ClassifyWithArtifacts is Classify against a shared artifact object.
func (m *LineModel) ClassifyWithArtifacts(a *pipeline.Artifacts) []table.Class {
	t := a.Table
	probs := m.ProbabilitiesWithArtifacts(a)
	out := make([]table.Class, t.Height())
	for r := 0; r < t.Height(); r++ {
		if t.IsEmptyLine(r) {
			continue
		}
		out[r] = table.ClassAt(argMax(probs[r]))
	}
	return out
}

// ClassifyCells is the Line^C baseline (Section 6.1.2): the predicted line
// class is extended to every non-empty cell of the line.
func (m *LineModel) ClassifyCells(t *table.Table) [][]table.Class {
	return m.ClassifyCellsWithArtifacts(pipeline.New(t))
}

// ClassifyCellsWithArtifacts is ClassifyCells against a shared artifact
// object.
func (m *LineModel) ClassifyCellsWithArtifacts(a *pipeline.Artifacts) [][]table.Class {
	t := a.Table
	lines := m.ClassifyWithArtifacts(a)
	out := make([][]table.Class, t.Height())
	for r := 0; r < t.Height(); r++ {
		out[r] = make([]table.Class, t.Width())
		for c := 0; c < t.Width(); c++ {
			if !t.IsEmptyCell(r, c) {
				out[r][c] = lines[r]
			}
		}
	}
	return out
}

// maskVector projects x onto the selected feature indices on the
// prediction path. A nil mask returns x itself — no copy — because the
// forest only reads prediction rows; callers must not mutate the feature
// matrix while the returned slice is in use.
func maskVector(x []float64, mask []int) []float64 {
	if mask == nil {
		return x
	}
	out := make([]float64, len(mask))
	for i, f := range mask {
		out[i] = x[f]
	}
	return out
}

// maskVectorCopy is the training-path variant of maskVector: it always
// allocates, even for a nil mask. Ownership contract: training rows are
// accumulated across files and handed to forest.Fit, so they must not
// alias the per-table feature backing arrays (which would pin every file's
// full feature matrix — empty lines included — in memory for the whole
// fit).
func maskVectorCopy(x []float64, mask []int) []float64 {
	if mask == nil {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	return maskVector(x, mask)
}

func argMax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Package core implements the paper's contribution: the Strudel^L line
// classifier (Section 4), the Strudel^C cell classifier (Section 5) with
// its line-class-probability feature, and the Line^C baseline, plus
// table-level adapters for the CRF^L and RNN^C reference approaches.
package core

import (
	"errors"

	"strudel/internal/features"
	"strudel/internal/ml/forest"
	"strudel/internal/table"
)

// LineModel is a trained Strudel^L classifier.
type LineModel struct {
	Forest *forest.Forest
	// Opts is the feature extraction configuration used at train time; it
	// must be reused at prediction time.
	Opts features.LineOptions
	// Mask selects a subset of line features (for ablations); nil = all.
	Mask []int
}

// LineTrainOptions configures Strudel^L training.
type LineTrainOptions struct {
	Forest   forest.Options
	Features features.LineOptions
	// FeatureMask restricts training to these feature indices; nil = all.
	FeatureMask []int
}

// DefaultLineTrainOptions mirrors the paper's setup: scikit-learn-default
// random forest over the full Table 1 feature set.
func DefaultLineTrainOptions() LineTrainOptions {
	return LineTrainOptions{
		Forest:   forest.DefaultOptions(),
		Features: features.DefaultLineOptions(),
	}
}

// TrainLine fits Strudel^L on annotated tables. Only non-empty lines with a
// semantic class participate.
func TrainLine(tables []*table.Table, opts LineTrainOptions) (*LineModel, error) {
	var X [][]float64
	var y []int
	for _, t := range tables {
		if t.LineClasses == nil {
			continue
		}
		fs := features.LineFeatures(t, opts.Features)
		for r := 0; r < t.Height(); r++ {
			idx := t.LineClasses[r].Index()
			if idx < 0 || t.IsEmptyLine(r) {
				continue
			}
			X = append(X, maskVector(fs[r], opts.FeatureMask))
			y = append(y, idx)
		}
	}
	if len(X) == 0 {
		return nil, errors.New("core: no annotated lines to train on")
	}
	f, err := forest.Fit(X, y, table.NumClasses, opts.Forest)
	if err != nil {
		return nil, err
	}
	return &LineModel{Forest: f, Opts: opts.Features, Mask: opts.FeatureMask}, nil
}

// Probabilities returns one class probability vector per line of t. Empty
// lines get all-zero vectors. This is the LineClassProbability feature
// source for Strudel^C (Section 5.4).
func (m *LineModel) Probabilities(t *table.Table) [][]float64 {
	fs := features.LineFeatures(t, m.Opts)
	out := make([][]float64, t.Height())
	var batch [][]float64
	var rows []int
	for r := 0; r < t.Height(); r++ {
		if t.IsEmptyLine(r) {
			out[r] = make([]float64, table.NumClasses)
			continue
		}
		batch = append(batch, maskVector(fs[r], m.Mask))
		rows = append(rows, r)
	}
	probs := m.Forest.PredictProbaBatch(batch)
	for i, r := range rows {
		out[r] = probs[i]
	}
	return out
}

// Classify predicts one class per line of t; empty lines get ClassEmpty.
func (m *LineModel) Classify(t *table.Table) []table.Class {
	probs := m.Probabilities(t)
	out := make([]table.Class, t.Height())
	for r := 0; r < t.Height(); r++ {
		if t.IsEmptyLine(r) {
			continue
		}
		out[r] = table.ClassAt(argMax(probs[r]))
	}
	return out
}

// ClassifyCells is the Line^C baseline (Section 6.1.2): the predicted line
// class is extended to every non-empty cell of the line.
func (m *LineModel) ClassifyCells(t *table.Table) [][]table.Class {
	lines := m.Classify(t)
	out := make([][]table.Class, t.Height())
	for r := 0; r < t.Height(); r++ {
		out[r] = make([]table.Class, t.Width())
		for c := 0; c < t.Width(); c++ {
			if !t.IsEmptyCell(r, c) {
				out[r][c] = lines[r]
			}
		}
	}
	return out
}

// maskVector projects x onto the selected feature indices. A nil mask
// returns a copy of x.
func maskVector(x []float64, mask []int) []float64 {
	if mask == nil {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	out := make([]float64, len(mask))
	for i, f := range mask {
		out[i] = x[f]
	}
	return out
}

func argMax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

package core

import (
	"errors"

	"strudel/internal/features"
	"strudel/internal/ml/forest"
	"strudel/internal/pipeline"
	"strudel/internal/table"
)

// ColumnModel classifies whole columns — the paper's future-work direction
// (iii). A column's gold class is the majority class of its non-empty
// cells; the model's probability vectors can be appended to Strudel^C's
// cell features (CellTrainOptions.UseColumnProbs) to test whether column
// context boosts cell quality.
type ColumnModel struct {
	Forest *forest.Forest
	Opts   features.CellOptions

	// compiled is the flattened SoA inference engine built from Forest;
	// unexported so it never serializes (see LineModel.compiled).
	compiled *forest.Compiled
}

// ColumnGold returns the majority cell class per column of an annotated
// table (ClassEmpty for columns without classified cells).
func ColumnGold(t *table.Table) []table.Class {
	w := t.Width()
	out := make([]table.Class, w)
	if t.CellClasses == nil {
		return out
	}
	for c := 0; c < w; c++ {
		var counts [table.NumClasses]int
		for r := 0; r < t.Height(); r++ {
			if t.IsEmptyCell(r, c) {
				continue
			}
			if idx := t.CellClasses[r][c].Index(); idx >= 0 {
				counts[idx]++
			}
		}
		best, bestN := -1, 0
		for i, n := range counts {
			if n > bestN {
				best, bestN = i, n
			}
		}
		if best >= 0 {
			out[c] = table.ClassAt(best)
		}
	}
	return out
}

// TrainColumn fits a column classifier on annotated tables.
func TrainColumn(tables []*table.Table, fopts features.CellOptions, forestOpts forest.Options) (*ColumnModel, error) {
	var X [][]float64
	var y []int
	for _, t := range tables {
		if t.CellClasses == nil {
			continue
		}
		fs := features.ColumnFeatures(t, fopts)
		gold := ColumnGold(t)
		for c := 0; c < t.Width(); c++ {
			if idx := gold[c].Index(); idx >= 0 {
				X = append(X, fs[c])
				y = append(y, idx)
			}
		}
	}
	if len(X) == 0 {
		return nil, errors.New("core: no annotated columns to train on")
	}
	f, err := forest.Fit(X, y, table.NumClasses, forestOpts)
	if err != nil {
		return nil, err
	}
	m := &ColumnModel{Forest: f, Opts: fopts}
	if err := m.Compile(); err != nil {
		return nil, err
	}
	return m, nil
}

// Probabilities returns one class probability vector per column.
func (m *ColumnModel) Probabilities(t *table.Table) [][]float64 {
	return m.ProbabilitiesWithArtifacts(pipeline.New(t))
}

// ProbabilitiesWithArtifacts is Probabilities against a shared artifact
// object: the per-column probability matrix is computed at most once per
// artifact (Strudel^C consults it for every cell of the table).
func (m *ColumnModel) ProbabilitiesWithArtifacts(a *pipeline.Artifacts) [][]float64 {
	return a.ColumnProbabilities(m, func(a *pipeline.Artifacts) [][]float64 {
		fs := a.Shared().ColumnFeatures(m.Opts)
		return predictRows(a, m.predictor(), fs, nil)
	})
}

// Classify predicts one class per column.
func (m *ColumnModel) Classify(t *table.Table) []table.Class {
	probs := m.Probabilities(t)
	out := make([]table.Class, t.Width())
	for c := range probs {
		out[c] = table.ClassAt(argMax(probs[c]))
	}
	return out
}

package datagen

// Word lists used to synthesize realistic verbose CSV content. The
// vocabulary deliberately echoes the administrative/business domains of the
// paper's corpora (SAUS and CIUS are administrative, DeEx is business data,
// GovUK is open government data).

var titleWords = []string{
	"Crime", "Population", "Revenue", "Expenditure", "Employment", "Health",
	"Education", "Transport", "Housing", "Energy", "Trade", "Agriculture",
	"Tourism", "Migration", "Income", "Production", "Sales", "Investment",
}

var titleSuffixes = []string{
	"in the United States", "by Region", "by Sector", "Annual Report",
	"Quarterly Summary", "Statistical Overview", "by Local Authority",
	"per Capita", "Historical Series", "Key Indicators",
}

var rowLabels = []string{
	"Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
	"Connecticut", "Delaware", "Florida", "Georgia", "Hawaii", "Idaho",
	"Illinois", "Indiana", "Iowa", "Kansas", "Kentucky", "Louisiana",
	"Maine", "Maryland", "Michigan", "Minnesota", "Missouri", "Montana",
	"Nebraska", "Nevada", "Ohio", "Oregon", "Texas", "Utah", "Vermont",
	"Virginia", "Washington", "Wisconsin", "Wyoming",
}

var entityLabels = []string{
	"Manufacturing", "Construction", "Retail trade", "Wholesale trade",
	"Transportation", "Information", "Finance", "Real estate",
	"Professional services", "Administration", "Public services",
	"Arts and recreation", "Accommodation", "Mining", "Utilities",
	"Forestry", "Fishing", "Warehousing", "Telecommunications", "Insurance",
	"Transportation, air", "Food, beverage and tobacco", "Arts, entertainment",
}

var columnLabels = []string{
	"Count", "Rate", "Share", "Amount", "Value", "Index", "Change",
	"Level", "Volume", "Price", "Cost", "Balance", "Ratio", "Score",
}

var groupLabels = []string{
	"Violent crime:", "Property crime:", "Sale/Manufacturing:",
	"Possession:", "Northeast", "Midwest", "South", "West",
	"Public sector:", "Private sector:", "Goods:", "Services:",
	"Urban areas:", "Rural areas:",
}

var noteTexts = []string{
	"Source: national statistics office",
	"Note: figures may not add to totals due to rounding",
	"1) preliminary figure, subject to revision",
	"2) excludes territories and dependencies",
	"Data collected through the annual establishment survey",
	"Rates are per 100,000 inhabitants",
	"See methodology annex for definitions",
	"(c) Crown copyright",
	"Values in thousands unless otherwise stated",
	"* estimate based on partial returns",
}

var metadataExtras = []string{
	"Released under the Open Government Licence",
	"Figures are seasonally adjusted",
	"Reference period: calendar year",
	"Compiled from administrative records",
	"Last updated in the spring publication cycle",
}

var aggregateLabels = []string{
	"Total", "Total, all items", "All sectors, total", "Sum",
	"Average", "Mean value", "Grand total",
}

// unanchoredAggLabels lead derived lines without any aggregation keyword —
// the hard case that defeats the anchor-based Algorithm 2 (Section 6.3.3).
var unanchoredAggLabels = []string{
	"United States", "Nationwide", "Whole economy", "Both sexes",
	"England and Wales", "Combined",
}

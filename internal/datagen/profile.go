// Package datagen synthesizes annotated verbose CSV corpora.
//
// The paper evaluates on six hand-annotated corpora (GovUK, SAUS, CIUS,
// DeEx, Mendeley, Troy) that are not redistributable. This package stands in
// for them: each Profile encodes the structural statistics the paper reports
// for one corpus — class mix, header complexity, group usage, derived-line
// anchoring, multi-table stacking, template reuse, prose splitting — and the
// generator emits deterministic, fully labeled tables with those
// characteristics. Ground-truth line and cell classes come for free, so the
// evaluation harness exercises exactly the pipeline of the paper.
package datagen

// Profile describes the structural distribution of one synthetic corpus.
// Probabilities are in [0, 1]; ranges are inclusive.
type Profile struct {
	// Name identifies the corpus (used in file names and reports).
	Name string
	// Files is the number of files to generate.
	Files int
	// Seed makes generation deterministic.
	Seed int64

	// DataRows bounds the data lines per table fraction.
	DataRows [2]int
	// Cols bounds the number of value columns (excluding the label column).
	Cols [2]int

	// PMultiTable is the chance a file stacks more than one table;
	// MaxTables bounds how many.
	PMultiTable float64
	MaxTables   int

	// PGroups is the chance a table is split into labeled fractions;
	// MaxFractions bounds how many.
	PGroups      float64
	MaxFractions int

	// PDerivedLine is the chance a table (or fraction) ends with an
	// aggregation line; PUnanchored is the chance that line carries no
	// aggregation keyword (the hard case for Algorithm 2); PMeanAgg is the
	// chance the aggregation is a mean rather than a sum.
	PDerivedLine float64
	PUnanchored  float64
	PMeanAgg     float64

	// PDerivedCol is the chance the table carries a rightmost derived
	// (row-total) column.
	PDerivedCol float64

	// PNumericHeader is the chance column headers are years rather than
	// words (the "header as data" hard case); PTwoRowHeader is the chance
	// of a two-line header.
	PNumericHeader float64
	PTwoRowHeader  float64

	// PSeparators is the chance blocks are separated by blank lines.
	PSeparators float64

	// MetaLines and NoteLines bound the metadata and notes blocks.
	MetaLines [2]int
	NoteLines [2]int

	// PMissing is the chance a data cell is empty.
	PMissing float64

	// PNotesAsTable / PMetaAsTable are the chances that the notes /
	// metadata area is organized as a small table (DeEx's hard case).
	PNotesAsTable float64
	PMetaAsTable  float64

	// PSplitProse is the chance a prose (metadata/notes) line is split
	// across several cells by the table delimiter — the Mendeley
	// "delimiter dilemma" of Section 6.3.4.
	PSplitProse float64

	// Structural hard cases described in the paper's error analysis
	// (Sections 3.2 and 6.3.6):

	// PNoMeta is the chance a file starts directly with its table.
	PNoMeta float64
	// PNoHeader is the chance a table has no header line at all.
	PNoHeader float64
	// PGroupAboveHeader is the chance the first group label appears above
	// the header block rather than below it.
	PGroupAboveHeader float64
	// PDerivedTop is the chance a fraction's derived line sits between the
	// header and the data area ("derived as header" errors).
	PDerivedTop float64
	// PNotesRight is the chance note text is placed to the right of the
	// table's data rows ("notes as data" errors).
	PNotesRight float64
	// PInterNotes is the chance note lines appear between stacked tables.
	PInterNotes float64
	// PNumericMeta is the chance metadata lines embed years or dates.
	PNumericMeta float64

	// Templates, when positive, fixes the corpus to this many structural
	// templates: every file instantiates one of them with fresh values
	// (CIUS consists of yearly reports sharing templates).
	Templates int

	// PFloatValues is the chance a table uses float rather than integer
	// values; PThousands is the chance integers carry thousands separators.
	PFloatValues float64
	PThousands   float64
}

// Profiles returns the six per-corpus profiles, keyed by the paper's
// dataset names. Files counts are scaled-down versions of the real corpora
// (scale factor applies uniformly); Scale adjusts them.
func Profiles() map[string]Profile {
	return map[string]Profile{
		"govuk":    GovUK(),
		"saus":     SAUS(),
		"cius":     CIUS(),
		"deex":     DeEx(),
		"mendeley": Mendeley(),
		"troy":     Troy(),
	}
}

// GovUK models the heterogeneous open-data spreadsheets of data.gov.uk:
// varied widths, frequent groups and multi-table stacking, moderate derived
// usage.
func GovUK() Profile {
	return Profile{
		Name: "govuk", Files: 60, Seed: 101,
		DataRows: [2]int{6, 40}, Cols: [2]int{2, 9},
		PMultiTable: 0.30, MaxTables: 3,
		PGroups: 0.45, MaxFractions: 3,
		PDerivedLine: 0.40, PUnanchored: 0.30, PMeanAgg: 0.15,
		PDerivedCol:    0.25,
		PNumericHeader: 0.30, PTwoRowHeader: 0.25,
		PSeparators: 0.70,
		MetaLines:   [2]int{1, 3}, NoteLines: [2]int{0, 3},
		PMissing:     0.08,
		PFloatValues: 0.35, PThousands: 0.30,
		PNoMeta: 0.20, PNoHeader: 0.15, PGroupAboveHeader: 0.20,
		PDerivedTop: 0.20, PNotesRight: 0.15, PInterNotes: 0.20,
		PNumericMeta: 0.40,
	}
}

// SAUS models the Statistical Abstract of the United States: groups and
// simple one-line headers, but many unanchored derived lines (the paper
// reports poor derived F1 here for exactly that reason).
func SAUS() Profile {
	return Profile{
		Name: "saus", Files: 55, Seed: 202,
		DataRows: [2]int{5, 20}, Cols: [2]int{3, 8},
		PMultiTable: 0.10, MaxTables: 2,
		PGroups: 0.55, MaxFractions: 3,
		PDerivedLine: 0.55, PUnanchored: 0.55, PMeanAgg: 0.10,
		PDerivedCol:    0.20,
		PNumericHeader: 0.35, PTwoRowHeader: 0.15,
		PSeparators: 0.60,
		MetaLines:   [2]int{1, 3}, NoteLines: [2]int{1, 3},
		PMissing:     0.05,
		PFloatValues: 0.30, PThousands: 0.45,
		PNoMeta: 0.10, PNoHeader: 0.10, PGroupAboveHeader: 0.15,
		PDerivedTop: 0.15, PNotesRight: 0.10, PInterNotes: 0.10,
		PNumericMeta: 0.35,
	}
}

// CIUS models Crime in the United States: yearly reports instantiated from
// a small set of shared templates (few structural outliers — the easiest
// corpus in the paper), heavy group usage, derived lines often without
// keywords in the schema.
func CIUS() Profile {
	return Profile{
		Name: "cius", Files: 65, Seed: 303,
		DataRows: [2]int{6, 25}, Cols: [2]int{3, 7},
		PMultiTable: 0.05, MaxTables: 2,
		PGroups: 0.70, MaxFractions: 4,
		PDerivedLine: 0.45, PUnanchored: 0.45, PMeanAgg: 0.05,
		PDerivedCol:    0.15,
		PNumericHeader: 0.25, PTwoRowHeader: 0.30,
		PSeparators: 0.50,
		MetaLines:   [2]int{2, 3}, NoteLines: [2]int{1, 2},
		PMissing:     0.04,
		Templates:    10,
		PFloatValues: 0.15, PThousands: 0.50,
		PNoHeader: 0.05, PGroupAboveHeader: 0.20, PDerivedTop: 0.10,
		PNumericMeta: 0.30,
	}
}

// DeEx models the DeExcelerator business corpus: complicated structures,
// notes and metadata organized as small tables, numeric headers, frequent
// stacking (the hardest corpus for every approach in the paper).
func DeEx() Profile {
	return Profile{
		Name: "deex", Files: 80, Seed: 404,
		DataRows: [2]int{5, 35}, Cols: [2]int{2, 10},
		PMultiTable: 0.45, MaxTables: 4,
		PGroups: 0.35, MaxFractions: 3,
		PDerivedLine: 0.35, PUnanchored: 0.40, PMeanAgg: 0.20,
		PDerivedCol:    0.30,
		PNumericHeader: 0.45, PTwoRowHeader: 0.30,
		PSeparators: 0.55,
		MetaLines:   [2]int{1, 4}, NoteLines: [2]int{0, 4},
		PMissing:      0.10,
		PNotesAsTable: 0.35, PMetaAsTable: 0.20,
		PFloatValues: 0.45, PThousands: 0.20,
		PNoMeta: 0.30, PNoHeader: 0.25, PGroupAboveHeader: 0.25,
		PDerivedTop: 0.25, PNotesRight: 0.30, PInterNotes: 0.30,
		PNumericMeta: 0.50,
	}
}

// Mendeley models plain-text research data files: tall, almost entirely
// data, with prose lines mangled by the table delimiter (the "delimiter
// dilemma"). Used only for testing, never training, as in the paper.
func Mendeley() Profile {
	return Profile{
		Name: "mendeley", Files: 20, Seed: 505,
		DataRows: [2]int{150, 900}, Cols: [2]int{3, 12},
		PMultiTable: 0.05, MaxTables: 2,
		PGroups: 0.05, MaxFractions: 2,
		PDerivedLine: 0.05, PUnanchored: 0.50, PMeanAgg: 0.10,
		PDerivedCol:    0.05,
		PNumericHeader: 0.20, PTwoRowHeader: 0.05,
		PSeparators: 0.40,
		MetaLines:   [2]int{1, 5}, NoteLines: [2]int{0, 3},
		PMissing:     0.03,
		PSplitProse:  0.60,
		PFloatValues: 0.70, PThousands: 0.05,
		PNoMeta: 0.25, PNoHeader: 0.20, PNumericMeta: 0.60,
	}
}

// Troy models the Troy_200 statistical web tables: small international
// statistics files kept unseen during design; most derived lines carry no
// anchoring keyword, which is what breaks Algorithm 2 out of domain
// (Table 7 of the paper).
func Troy() Profile {
	return Profile{
		Name: "troy", Files: 50, Seed: 606,
		DataRows: [2]int{4, 15}, Cols: [2]int{2, 6},
		PMultiTable: 0.10, MaxTables: 2,
		PGroups: 0.30, MaxFractions: 2,
		PDerivedLine: 0.60, PUnanchored: 0.80, PMeanAgg: 0.10,
		PDerivedCol:    0.20,
		PNumericHeader: 0.40, PTwoRowHeader: 0.20,
		PSeparators: 0.50,
		MetaLines:   [2]int{1, 2}, NoteLines: [2]int{1, 3},
		PMissing:     0.06,
		PFloatValues: 0.40, PThousands: 0.25,
		PNoMeta: 0.15, PNoHeader: 0.20, PGroupAboveHeader: 0.20,
		PDerivedTop: 0.25, PNotesRight: 0.20, PInterNotes: 0.15,
		PNumericMeta: 0.45,
	}
}

// Scale returns a copy of p with the file count multiplied by f (minimum 1
// file). Benchmarks use small scales; the CLI can run the full corpora.
func (p Profile) Scale(f float64) Profile {
	n := int(float64(p.Files) * f)
	if n < 1 {
		n = 1
	}
	p.Files = n
	return p
}

package datagen

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseSize(t *testing.T) {
	good := map[string]int64{
		"0":     0,
		"65536": 65536,
		"64K":   64 << 10,
		"100M":  100 << 20,
		"1G":    1 << 30,
		"2GiB":  2 << 30,
		"512kb": 512 << 10,
		" 16M ": 16 << 20,
		"1024B": 1024,
	}
	for in, want := range good {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "-1", "1.5G", "10X", "G", "9999999999G"} {
		if _, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) succeeded", in)
		}
	}
}

func TestWriteSized(t *testing.T) {
	p := SAUS()
	var buf bytes.Buffer
	const target = 200 << 10
	n, files, err := WriteSized(&buf, p, target)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	if n < target {
		t.Errorf("wrote %d bytes, target %d", n, target)
	}
	if files < 2 {
		t.Errorf("stacked only %d files", files)
	}
	// Stacked files are separated by blank lines.
	if !strings.Contains(buf.String(), "\n\n") {
		t.Error("no blank-line separator between stacked files")
	}

	// Deterministic in (profile, target).
	var again bytes.Buffer
	n2, files2, err := WriteSized(&again, p, target)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n || files2 != files || !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("WriteSized is not deterministic")
	}
}

func TestWriteSizedRejectsBadTarget(t *testing.T) {
	var buf bytes.Buffer
	if _, _, err := WriteSized(&buf, SAUS(), 0); err == nil {
		t.Error("zero target accepted")
	}
}

package datagen

import (
	"testing"

	"strudel/internal/features"
	"strudel/internal/table"
	"strudel/internal/types"
)

func TestGenerateDeterministic(t *testing.T) {
	p := SAUS()
	p.Files = 5
	a := Generate(p)
	b := Generate(p)
	if len(a.Files) != len(b.Files) {
		t.Fatal("file counts differ")
	}
	for i := range a.Files {
		if a.Files[i].String() != b.Files[i].String() {
			t.Fatalf("file %d differs between runs", i)
		}
	}
}

func TestGenerateAllProfiles(t *testing.T) {
	for name, p := range Profiles() {
		p.Files = 3
		if name == "mendeley" {
			p.DataRows = [2]int{30, 60} // keep the test fast
		}
		c := Generate(p)
		if len(c.Files) != 3 {
			t.Errorf("%s: %d files, want 3", name, len(c.Files))
		}
		for _, f := range c.Files {
			if f.Height() == 0 || f.Width() == 0 {
				t.Errorf("%s: empty file generated", name)
			}
			if !f.Annotated() {
				t.Errorf("%s: file lacks annotations", name)
			}
		}
	}
}

func TestAnnotationsConsistent(t *testing.T) {
	p := GovUK()
	p.Files = 8
	c := Generate(p)
	for _, f := range c.Files {
		for r := 0; r < f.Height(); r++ {
			lineCls := f.LineClasses[r]
			if f.IsEmptyLine(r) {
				if lineCls != table.ClassEmpty {
					t.Fatalf("%s line %d: empty line labeled %v", f.Name, r, lineCls)
				}
				continue
			}
			if lineCls == table.ClassEmpty {
				t.Fatalf("%s line %d: non-empty line has no class", f.Name, r)
			}
			for col := 0; col < f.Width(); col++ {
				cellCls := f.CellClasses[r][col]
				if f.IsEmptyCell(r, col) {
					if cellCls != table.ClassEmpty {
						t.Fatalf("%s (%d,%d): empty cell labeled %v", f.Name, r, col, cellCls)
					}
				} else if cellCls == table.ClassEmpty {
					t.Fatalf("%s (%d,%d): non-empty cell unlabeled", f.Name, r, col)
				}
			}
		}
	}
}

func TestAllClassesPresent(t *testing.T) {
	p := GovUK()
	p.Files = 30
	cc := CountClasses(Generate(p))
	for i, cl := range table.Classes {
		if cc.Lines[i] == 0 && cl != table.ClassDerived {
			t.Errorf("class %v has no lines in a 30-file GovUK corpus", cl)
		}
		if cc.Cells[i] == 0 {
			t.Errorf("class %v has no cells", cl)
		}
	}
	// Data must dominate, as in every corpus of the paper.
	if cc.Lines[table.ClassData.Index()] < cc.TotalLines()/2 {
		t.Error("data lines should be the majority class")
	}
}

// TestDerivedLinesActuallyAggregate verifies the generated arithmetic: for
// anchored derived lines, Algorithm 2 must rediscover most derived cells.
func TestDerivedLinesActuallyAggregate(t *testing.T) {
	p := CIUS()
	p.Files = 20
	p.PUnanchored = 0 // every derived line anchored
	p.PNoHeader = 0   // headerless tables would leave derived columns unanchored
	p.PMissing = 0
	c := Generate(p)

	found, totalCells := 0, 0
	for _, f := range c.Files {
		det := features.DetectDerived(f, features.DefaultDerivedOptions())
		for r := 0; r < f.Height(); r++ {
			for col := 0; col < f.Width(); col++ {
				if f.CellClasses[r][col] == table.ClassDerived {
					totalCells++
					if det[r][col] {
						found++
					}
				}
			}
		}
	}
	if totalCells == 0 {
		t.Fatal("no derived cells generated")
	}
	if recall := float64(found) / float64(totalCells); recall < 0.7 {
		t.Errorf("Algorithm 2 recall on anchored synthetic data = %v, want >= 0.7", recall)
	}
}

func TestUnanchoredDerivedMostlyMissed(t *testing.T) {
	p := Troy()
	p.Files = 15
	p.PUnanchored = 1 // nothing anchored
	p.PDerivedCol = 0 // "Total" column headers would anchor columns
	c := Generate(p)
	found, totalCells := 0, 0
	for _, f := range c.Files {
		det := features.DetectDerived(f, features.DefaultDerivedOptions())
		for r := 0; r < f.Height(); r++ {
			for col := 0; col < f.Width(); col++ {
				if f.CellClasses[r][col] == table.ClassDerived {
					totalCells++
					if det[r][col] {
						found++
					}
				}
			}
		}
	}
	if totalCells == 0 {
		t.Skip("no derived cells in this draw")
	}
	if recall := float64(found) / float64(totalCells); recall > 0.3 {
		t.Errorf("unanchored derived recall = %v; keyword anchoring should miss these", recall)
	}
}

func TestTemplateCorpusSharesStructure(t *testing.T) {
	p := CIUS()
	p.Files = p.Templates * 2
	c := Generate(p)
	for i := 0; i < p.Templates; i++ {
		a, b := c.Files[i], c.Files[i+p.Templates]
		if a.Height() != b.Height() || a.Width() != b.Width() {
			t.Errorf("template %d: instances differ in shape (%dx%d vs %dx%d)",
				i, a.Height(), a.Width(), b.Height(), b.Width())
		}
		for r := 0; r < a.Height(); r++ {
			if a.LineClasses[r] != b.LineClasses[r] {
				t.Errorf("template %d line %d: class drift", i, r)
				break
			}
		}
	}
}

func TestSummarize(t *testing.T) {
	p := SAUS()
	p.Files = 4
	c := Generate(p)
	s := c.Summarize()
	if s.Files != 4 || s.Lines == 0 || s.Cells == 0 {
		t.Errorf("summary = %+v", s)
	}
	if s.Cells < s.Lines {
		t.Error("cells should outnumber lines")
	}
}

func TestDiversityDistribution(t *testing.T) {
	p := SAUS()
	p.Files = 15
	c := Generate(p)
	d := DiversityDistribution(c)
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("distribution sums to %v", sum)
	}
	// Most lines are homogeneous (Table 3: >= 86% at degree 1).
	if d[0] < 0.7 {
		t.Errorf("degree-1 fraction = %v, want >= 0.7", d[0])
	}
	// Degrees beyond 2 are rare.
	if d[2]+d[3]+d[4]+d[5] > 0.05 {
		t.Errorf("degrees 3+ fraction = %v, want tiny", d[2]+d[3]+d[4]+d[5])
	}
}

func TestGenerateDataset(t *testing.T) {
	c, err := GenerateDataset("saus", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Files) == 0 {
		t.Error("no files")
	}
	if _, err := GenerateDataset("bogus", 1); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestMendeleyDelimiterDilemma(t *testing.T) {
	p := Mendeley()
	p.Files = 5
	p.DataRows = [2]int{30, 60}
	p.PSplitProse = 1
	c := Generate(p)
	split := false
	for _, f := range c.Files {
		for r := 0; r < f.Height(); r++ {
			cls := f.LineClasses[r]
			if (cls == table.ClassMetadata || cls == table.ClassNotes) && f.NonEmptyCellsInLine(r) > 1 {
				split = true
			}
		}
	}
	if !split {
		t.Error("split prose lines expected in Mendeley profile")
	}
}

func TestThousandsFormatting(t *testing.T) {
	cases := map[string]string{
		"1":        "1",
		"12":       "12",
		"123":      "123",
		"1234":     "1,234",
		"1234567":  "1,234,567",
		"-9876543": "-9,876,543",
	}
	for in, want := range cases {
		if got := addThousands(in); got != want {
			t.Errorf("addThousands(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestGeneratedNumbersParse(t *testing.T) {
	p := SAUS()
	p.Files = 5
	c := Generate(p)
	for _, f := range c.Files {
		for r := 0; r < f.Height(); r++ {
			for col := 0; col < f.Width(); col++ {
				if f.CellClasses[r][col] == table.ClassDerived {
					if _, ok := types.ParseNumber(f.Cell(r, col)); !ok {
						t.Fatalf("derived cell %q does not parse as a number", f.Cell(r, col))
					}
				}
			}
		}
	}
}

func TestScale(t *testing.T) {
	p := SAUS()
	if got := p.Scale(0.5).Files; got != p.Files/2 {
		t.Errorf("Scale(0.5) files = %d", got)
	}
	if got := p.Scale(0.0001).Files; got != 1 {
		t.Errorf("tiny scale should clamp to 1 file, got %d", got)
	}
}

package datagen

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"strudel/internal/dialect"
)

// ParseSize parses a human-readable byte size: a plain integer, or an
// integer with a K, M, or G suffix (powers of 1024), optionally followed by
// "B" or "iB" — "65536", "64K", "100M", "1GiB".
func ParseSize(s string) (int64, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	t = strings.TrimSuffix(t, "IB")
	t = strings.TrimSuffix(t, "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "K"):
		mult, t = 1<<10, t[:len(t)-1]
	case strings.HasSuffix(t, "M"):
		mult, t = 1<<20, t[:len(t)-1]
	case strings.HasSuffix(t, "G"):
		mult, t = 1<<30, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("datagen: bad size %q", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("datagen: size %q overflows", s)
	}
	return n * mult, nil
}

// WriteSized streams one verbose CSV of at least target bytes to w: files
// drawn from p are rendered under the default dialect and stacked with
// blank-line separators, exactly the shape AnnotateStream's windowed path
// is built for. Generation is incremental — one file is materialized at a
// time — so the writer, not this function, decides the memory footprint.
// It returns the bytes written and the number of stacked files, and is
// deterministic in (p, target).
func WriteSized(w io.Writer, p Profile, target int64) (int64, int, error) {
	if target <= 0 {
		return 0, 0, errors.New("datagen: size target must be positive")
	}
	structRng := rand.New(rand.NewSource(p.Seed))
	valueRng := rand.New(rand.NewSource(p.Seed ^ 0x5DEECE66D))
	bw := bufio.NewWriter(w)
	var written int64
	files := 0
	for written < target {
		spec := genSpec(p, structRng)
		t := genFile(p, spec, valueRng, fmt.Sprintf("%s_%06d.csv", p.Name, files))
		rows := make([][]string, t.Height())
		for r := range rows {
			rows[r] = t.Row(r)
		}
		if files > 0 {
			if err := bw.WriteByte('\n'); err != nil {
				return written, files, err
			}
			written++
		}
		n, err := bw.WriteString(dialect.Join(rows, dialect.Default))
		written += int64(n)
		if err != nil {
			return written, files, err
		}
		files++
	}
	return written, files, bw.Flush()
}

package datagen

import "strudel/internal/table"

// Summary holds the per-corpus counts of Table 4 of the paper (non-empty
// lines and cells only, as in the paper).
type Summary struct {
	Name  string
	Files int
	Lines int
	Cells int
}

// Summarize computes a corpus summary.
func (c *Corpus) Summarize() Summary {
	s := Summary{Name: c.Name, Files: len(c.Files)}
	for _, t := range c.Files {
		s.Lines += t.NonEmptyLines()
		s.Cells += t.NonEmptyCells()
	}
	return s
}

// ClassCounts holds per-class element counts (Table 5 of the paper).
type ClassCounts struct {
	Lines [table.NumClasses]int
	Cells [table.NumClasses]int
}

// CellsPerLine returns the average number of cells per line for a class, or
// 0 when the class has no lines.
func (cc ClassCounts) CellsPerLine(classIdx int) float64 {
	if cc.Lines[classIdx] == 0 {
		return 0
	}
	return float64(cc.Cells[classIdx]) / float64(cc.Lines[classIdx])
}

// TotalLines is the number of classified lines.
func (cc ClassCounts) TotalLines() int {
	n := 0
	for _, v := range cc.Lines {
		n += v
	}
	return n
}

// TotalCells is the number of classified cells.
func (cc ClassCounts) TotalCells() int {
	n := 0
	for _, v := range cc.Cells {
		n += v
	}
	return n
}

// CountClasses tallies the gold line and cell classes of one or more
// corpora.
func CountClasses(corpora ...*Corpus) ClassCounts {
	var cc ClassCounts
	for _, c := range corpora {
		for _, t := range c.Files {
			for r := 0; r < t.Height(); r++ {
				if idx := t.LineClasses[r].Index(); idx >= 0 {
					cc.Lines[idx]++
				}
				for col := 0; col < t.Width(); col++ {
					if t.IsEmptyCell(r, col) {
						continue
					}
					if idx := t.CellClasses[r][col].Index(); idx >= 0 {
						cc.Cells[idx]++
					}
				}
			}
		}
	}
	return cc
}

// DiversityDistribution returns the fraction of non-empty lines having each
// cell-class diversity degree 1..NumClasses (Table 3 of the paper). Index 0
// of the result corresponds to degree 1.
func DiversityDistribution(c *Corpus) [table.NumClasses]float64 {
	var counts [table.NumClasses]float64
	total := 0.0
	for _, t := range c.Files {
		for r := 0; r < t.Height(); r++ {
			d := t.DiversityDegree(r)
			if d == 0 {
				continue
			}
			if d > table.NumClasses {
				d = table.NumClasses
			}
			counts[d-1]++
			total++
		}
	}
	if total > 0 {
		for i := range counts {
			counts[i] /= total
		}
	}
	return counts
}

package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"strudel/internal/table"
)

// Corpus is a generated set of annotated verbose CSV files.
type Corpus struct {
	Name  string
	Files []*table.Table
}

// Generate produces the corpus described by p, deterministically from
// p.Seed.
func Generate(p Profile) *Corpus {
	structRng := rand.New(rand.NewSource(p.Seed))
	valueRng := rand.New(rand.NewSource(p.Seed ^ 0x5DEECE66D))

	var specs []fileSpec
	if p.Templates > 0 {
		specs = make([]fileSpec, p.Templates)
		for i := range specs {
			specs[i] = genSpec(p, structRng)
		}
	}

	c := &Corpus{Name: p.Name}
	for i := 0; i < p.Files; i++ {
		var spec fileSpec
		if p.Templates > 0 {
			spec = specs[i%p.Templates]
		} else {
			spec = genSpec(p, structRng)
		}
		name := fmt.Sprintf("%s_%04d.csv", p.Name, i)
		c.Files = append(c.Files, genFile(p, spec, valueRng, name))
	}
	return c
}

// GenerateDataset generates the named standard corpus ("govuk", "saus",
// "cius", "deex", "mendeley", "troy") at the given scale (1.0 = the
// default file counts of Profiles).
func GenerateDataset(name string, scale float64) (*Corpus, error) {
	p, ok := Profiles()[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
	//lint:ignore floatcmp exact compare against the no-op scale 1.0, which is representable
	if scale > 0 && scale != 1 {
		p = p.Scale(scale)
	}
	return Generate(p), nil
}

// fileSpec fixes the structural choices of one file; template corpora share
// specs across files.
type fileSpec struct {
	metaLines, noteLines      int
	metaAsTable, notesAsTable bool
	separators                bool
	noMeta                    bool
	interNotes                bool
	numericMeta               bool
	tables                    []tableSpec
}

type tableSpec struct {
	cols             int // value columns, excluding the label column
	twoRowHeader     bool
	numericHeader    bool
	noHeader         bool
	groupAboveHeader bool
	notesRight       bool
	notesRightRows   int
	fractions        int
	rowsPerFraction  []int
	derivedLine      []bool
	derivedTop       []bool
	derivedTopGap    []bool
	unanchored       []bool
	meanAgg          []bool
	grandTotal       bool
	derivedCol       bool
	floats           bool
	thousands        bool
	entityRows       bool // entity labels instead of state names
	baseYear         int
	magnitude        float64
}

func genSpec(p Profile, rng *rand.Rand) fileSpec {
	spec := fileSpec{
		metaLines:    randRange(rng, p.MetaLines),
		noteLines:    randRange(rng, p.NoteLines),
		metaAsTable:  rng.Float64() < p.PMetaAsTable,
		notesAsTable: rng.Float64() < p.PNotesAsTable,
		separators:   rng.Float64() < p.PSeparators,
		noMeta:       rng.Float64() < p.PNoMeta,
		interNotes:   rng.Float64() < p.PInterNotes,
		numericMeta:  rng.Float64() < p.PNumericMeta,
	}
	nTables := 1
	if rng.Float64() < p.PMultiTable && p.MaxTables > 1 {
		nTables = 2 + rng.Intn(p.MaxTables-1)
	}
	for t := 0; t < nTables; t++ {
		ts := tableSpec{
			cols:             randRange(rng, p.Cols),
			twoRowHeader:     rng.Float64() < p.PTwoRowHeader,
			numericHeader:    rng.Float64() < p.PNumericHeader,
			noHeader:         rng.Float64() < p.PNoHeader,
			groupAboveHeader: rng.Float64() < p.PGroupAboveHeader,
			notesRight:       rng.Float64() < p.PNotesRight,
			notesRightRows:   1 + rng.Intn(2),
			fractions:        1,
			derivedCol:       rng.Float64() < p.PDerivedCol,
			floats:           rng.Float64() < p.PFloatValues,
			thousands:        rng.Float64() < p.PThousands,
			entityRows:       rng.Float64() < 0.5,
			baseYear:         1995 + rng.Intn(25),
			magnitude:        math.Pow(10, 1+rng.Float64()*4),
		}
		if rng.Float64() < p.PGroups && p.MaxFractions > 1 {
			ts.fractions = 2 + rng.Intn(p.MaxFractions-1)
		}
		for f := 0; f < ts.fractions; f++ {
			ts.rowsPerFraction = append(ts.rowsPerFraction, randRange(rng, p.DataRows))
			ts.derivedLine = append(ts.derivedLine, rng.Float64() < p.PDerivedLine)
			ts.derivedTop = append(ts.derivedTop, rng.Float64() < p.PDerivedTop)
			ts.derivedTopGap = append(ts.derivedTopGap, rng.Intn(2) == 0)
			ts.unanchored = append(ts.unanchored, rng.Float64() < p.PUnanchored)
			ts.meanAgg = append(ts.meanAgg, rng.Float64() < p.PMeanAgg)
		}
		ts.grandTotal = ts.fractions > 1 && rng.Float64() < p.PDerivedLine*0.5
		spec.tables = append(spec.tables, ts)
	}
	return spec
}

func randRange(rng *rand.Rand, bounds [2]int) int {
	if bounds[1] <= bounds[0] {
		return bounds[0]
	}
	return bounds[0] + rng.Intn(bounds[1]-bounds[0]+1)
}

// fileBuilder accumulates annotated rows of varying widths.
type fileBuilder struct {
	rows    [][]string
	rowCls  [][]table.Class
	lineCls []table.Class
	width   int
}

func (b *fileBuilder) add(cells []string, classes []table.Class, line table.Class) {
	b.rows = append(b.rows, cells)
	b.rowCls = append(b.rowCls, classes)
	b.lineCls = append(b.lineCls, line)
	if len(cells) > b.width {
		b.width = len(cells)
	}
}

func (b *fileBuilder) blank() {
	b.add(nil, nil, table.ClassEmpty)
}

func (b *fileBuilder) build(name string) *table.Table {
	t := table.FromRows(b.rows)
	t.Name = name
	t.EnsureAnnotations()
	copy(t.LineClasses, b.lineCls)
	for r, cls := range b.rowCls {
		copy(t.CellClasses[r], cls)
	}
	return t
}

// prose emits a free-text line: a single leading cell, or — under the
// delimiter dilemma — the text split across several cells.
func (b *fileBuilder) prose(text string, cls table.Class, split bool, rng *rand.Rand) {
	if !split {
		b.add([]string{text}, []table.Class{cls}, cls)
		return
	}
	words := strings.Fields(text)
	var cells []string
	var classes []table.Class
	for len(words) > 0 {
		n := 1 + rng.Intn(3)
		if n > len(words) {
			n = len(words)
		}
		cells = append(cells, strings.Join(words[:n], " "))
		classes = append(classes, cls)
		words = words[n:]
	}
	b.add(cells, classes, cls)
}

// attachRight appends an empty spacer cell and a classified text cell to an
// already-emitted line.
func (b *fileBuilder) attachRight(line int, text string, cls table.Class) {
	b.rows[line] = append(b.rows[line], "", text)
	b.rowCls[line] = append(b.rowCls[line], table.ClassEmpty, cls)
	if len(b.rows[line]) > b.width {
		b.width = len(b.rows[line])
	}
}

func genFile(p Profile, spec fileSpec, rng *rand.Rand, name string) *table.Table {
	b := &fileBuilder{}

	// Metadata block.
	if !spec.noMeta {
		title := pick(rng, titleWords) + " " + pick(rng, titleSuffixes)
		if spec.numericMeta {
			title += fmt.Sprintf(" %d", 1995+rng.Intn(25))
		}
		if spec.metaAsTable {
			metaTable(b, rng, spec.metaLines+1, table.ClassMetadata)
		} else {
			b.prose(title, table.ClassMetadata, rng.Float64() < p.PSplitProse, rng)
			for i := 1; i < spec.metaLines; i++ {
				extra := pick(rng, metadataExtras)
				if spec.numericMeta && rng.Intn(2) == 0 {
					extra += fmt.Sprintf(", %d-%02d-%02d", 2000+rng.Intn(20), 1+rng.Intn(12), 1+rng.Intn(28))
				}
				b.prose(extra, table.ClassMetadata, rng.Float64() < p.PSplitProse, rng)
			}
		}
		if spec.separators {
			b.blank()
		}
	}

	for ti, ts := range spec.tables {
		if ti > 0 {
			if spec.separators {
				b.blank()
			}
			if spec.interNotes {
				b.prose(pick(rng, noteTexts), table.ClassNotes, false, rng)
			}
			b.prose(pick(rng, titleWords)+" — continued", table.ClassMetadata, false, rng)
		}
		dataLines := emitTable(b, p, ts, rng)
		if ts.notesRight && len(dataLines) > 0 {
			// Place note text to the right of the first data rows — the
			// "notes as data" hard case of Section 6.3.6.
			n := ts.notesRightRows
			for i := 0; i < n && i < len(dataLines); i++ {
				b.attachRight(dataLines[i], pick(rng, noteTexts), table.ClassNotes)
			}
		}
	}

	// Notes block.
	if spec.noteLines > 0 || spec.notesAsTable {
		if spec.separators {
			b.blank()
		}
		if spec.notesAsTable {
			metaTable(b, rng, maxInt(spec.noteLines, 2), table.ClassNotes)
		} else {
			for i := 0; i < spec.noteLines; i++ {
				b.prose(pick(rng, noteTexts), table.ClassNotes, rng.Float64() < p.PSplitProse, rng)
			}
		}
	}
	return b.build(name)
}

// metaTable emits a small key/value table whose cells all carry the given
// prose class (DeEx organizes metadata and notes as small tables).
func metaTable(b *fileBuilder, rng *rand.Rand, rows int, cls table.Class) {
	keys := []string{"Source", "Unit", "Period", "Coverage", "Contact", "Revision"}
	vals := []string{"registry", "thousands", "annual", "national", "statistics office", "final"}
	for i := 0; i < rows; i++ {
		k := keys[rng.Intn(len(keys))]
		v := vals[rng.Intn(len(vals))]
		b.add([]string{k, v}, []table.Class{cls, cls}, cls)
	}
}

// emitTable renders one table: headers, fractions with group labels, data
// rows, derived lines and columns — all with consistent arithmetic so that
// derived cells really aggregate their fraction. It returns the builder
// line indices of the emitted data rows.
func emitTable(b *fileBuilder, p Profile, ts tableSpec, rng *rand.Rand) (dataLines []int) {
	width := 1 + ts.cols
	if ts.derivedCol {
		width++
	}

	// Optional group label above the header block (Section 3.2 allows both
	// positions).
	if ts.groupAboveHeader {
		g := make([]string, width)
		gCls := make([]table.Class, width)
		g[0] = groupLabels[rng.Intn(len(groupLabels))]
		gCls[0] = table.ClassGroup
		b.add(g, gCls, table.ClassGroup)
	}

	// Header block.
	if !ts.noHeader {
		if ts.twoRowHeader {
			span := make([]string, width)
			spanCls := make([]table.Class, width)
			for c := 1; c < width; c += 2 {
				span[c] = pick(rng, titleWords)
				spanCls[c] = table.ClassHeader
			}
			b.add(span, spanCls, table.ClassHeader)
		}
		hdr := make([]string, width)
		hdrCls := make([]table.Class, width)
		hdr[0] = "Item"
		hdrCls[0] = table.ClassHeader
		for c := 1; c <= ts.cols; c++ {
			if ts.numericHeader {
				hdr[c] = fmt.Sprintf("%d", ts.baseYear+c-1)
			} else {
				hdr[c] = pick(rng, columnLabels)
			}
			hdrCls[c] = table.ClassHeader
		}
		if ts.derivedCol {
			hdr[width-1] = "Total"
			hdrCls[width-1] = table.ClassHeader
		}
		b.add(hdr, hdrCls, table.ClassHeader)
	}

	labels := rowLabels
	if ts.entityRows {
		labels = entityLabels
	}

	grand := make([]float64, ts.cols)
	grandRows := 0
	for f := 0; f < ts.fractions; f++ {
		if ts.fractions > 1 && !(f == 0 && ts.groupAboveHeader) {
			g := make([]string, width)
			gCls := make([]table.Class, width)
			g[0] = groupLabels[(f+rng.Intn(3))%len(groupLabels)]
			gCls[0] = table.ClassGroup
			b.add(g, gCls, table.ClassGroup)
		}

		// Pre-generate the fraction's values so derived lines can be
		// emitted above or below the data with consistent sums.
		rows := ts.rowsPerFraction[f]
		sums := make([]float64, ts.cols)
		cellsByRow := make([][]string, rows)
		clsByRow := make([][]table.Class, rows)
		for r := 0; r < rows; r++ {
			cells := make([]string, width)
			cls := make([]table.Class, width)
			cells[0] = labels[(f*rows+r)%len(labels)]
			cls[0] = table.ClassData
			rowTotal := 0.0
			for c := 0; c < ts.cols; c++ {
				if rng.Float64() < p.PMissing {
					continue // missing value: empty cell
				}
				v := genValue(rng, ts)
				sums[c] += v
				rowTotal += v
				cells[c+1] = formatValue(v, ts)
				cls[c+1] = table.ClassData
			}
			if ts.derivedCol {
				cells[width-1] = formatValue(rowTotal, ts)
				cls[width-1] = table.ClassDerived
			}
			cellsByRow[r], clsByRow[r] = cells, cls
		}

		derivedAtTop := ts.derivedLine[f] && ts.derivedTop[f]
		if derivedAtTop {
			emitDerivedLine(b, ts, rng, width, sums, rows, ts.meanAgg[f], ts.unanchored[f])
			if ts.derivedTopGap[f] {
				b.blank() // the "derived as header" trap: separated by empty lines
			}
		}
		for r := 0; r < rows; r++ {
			dataLines = append(dataLines, len(b.rows))
			b.add(cellsByRow[r], clsByRow[r], table.ClassData)
		}
		for c := range grand {
			grand[c] += sums[c]
		}
		grandRows += rows

		if ts.derivedLine[f] && !derivedAtTop {
			emitDerivedLine(b, ts, rng, width, sums, rows, ts.meanAgg[f], ts.unanchored[f])
		}
	}

	if ts.grandTotal {
		emitDerivedLine(b, ts, rng, width, grand, grandRows, false, false)
	}
	return dataLines
}

// emitDerivedLine renders an aggregation line: a leading textual cell
// (annotated group, per the paper's reforged labels) followed by derived
// numeric cells. Unanchored lines use labels with no aggregation keyword.
func emitDerivedLine(b *fileBuilder, ts tableSpec, rng *rand.Rand, width int, sums []float64, rows int, mean, unanchored bool) {
	cells := make([]string, width)
	cls := make([]table.Class, width)
	label := pick(rng, aggregateLabels)
	if unanchored {
		label = pick(rng, unanchoredAggLabels)
	}
	if mean && !unanchored {
		label = "Average"
	}
	cells[0] = label
	cls[0] = table.ClassGroup
	total := 0.0
	for c := 0; c < len(sums); c++ {
		v := sums[c]
		if mean && rows > 0 {
			v = sums[c] / float64(rows)
		}
		total += v
		cells[c+1] = formatValue(v, ts)
		cls[c+1] = table.ClassDerived
	}
	if ts.derivedCol {
		cells[width-1] = formatValue(total, ts)
		cls[width-1] = table.ClassDerived
	}
	b.add(cells, cls, table.ClassDerived)
}

// genValue draws one data value, already rounded to its display precision
// so that sums of displayed values stay exact.
func genValue(rng *rand.Rand, ts tableSpec) float64 {
	v := rng.Float64() * ts.magnitude
	if ts.floats {
		return math.Round(v*100) / 100
	}
	return math.Round(v)
}

func formatValue(v float64, ts tableSpec) string {
	if ts.floats {
		return fmt.Sprintf("%.2f", v)
	}
	s := fmt.Sprintf("%.0f", v)
	if ts.thousands {
		return addThousands(s)
	}
	return s
}

func addThousands(s string) string {
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	pre := len(s) % 3
	if pre > 0 {
		b.WriteString(s[:pre])
		if len(s) > pre {
			b.WriteByte(',')
		}
	}
	for i := pre; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	return b.String()
}

func pick(rng *rand.Rand, list []string) string {
	return list[rng.Intn(len(list))]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

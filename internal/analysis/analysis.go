// Package analysis is a small static-analysis framework built on the
// standard library only (go/ast, go/parser, go/token, go/types, go/importer
// — no go/packages, no x/tools). It exists to enforce the project-specific
// contracts that ordinary vet checks cannot see: the determinism guarantees
// the annotation pipeline makes (byte-identical output at any worker
// count) and the feature-parity invariants between the Table 1 / Table 2
// feature-name lists and their extractors.
//
// A diagnostic can be silenced at the site with
//
//	//lint:ignore <check> <reason>
//
// placed on the offending line or the line directly above it. The reason is
// mandatory; an ignore directive without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the check identifier used in diagnostics and ignore
	// directives, e.g. "nondeterminism".
	Name string
	// Doc is a one-paragraph description of what the check enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// All is the registry of project analyzers, in reporting order.
var All = []*Analyzer{
	Nondeterminism,
	FloatCmp,
	ErrCheck,
	PanicPath,
	LockCheck,
	GoroutineCapture,
	SharedWrite,
	CtxFlow,
	ErrFlow,
	HotAlloc,
	RescLeak,
	LostCancel,
	GoroLeak,
	FeatureParity,
	Deprecated,
}

// Names returns the registered check names in reporting order (the valid
// values for a -checks filter).
func Names() []string {
	out := make([]string, len(All))
	for i, a := range All {
		out[i] = a.Name
	}
	return out
}

// Lookup returns the registered analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Diagnostic is one finding, positioned for file:line:col display.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Loader grants read access to dependency packages already loaded
	// while type-checking Pkg (used by featureparity to resolve
	// cross-package literals).
	Loader *Loader

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Check:   p.Analyzer.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// calleeFunc resolves the *types.Func a call invokes, looking through
// selector and plain identifiers. It returns nil for builtins, conversions,
// and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (not a method).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// pkgOfFunc returns the import path of the package declaring fn ("" for
// nil or builtin).
func pkgOfFunc(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file   string
	line   int
	check  string
	reason string
	used   bool
}

var ignoreRE = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s*(.*)$`)

// collectIgnores parses the //lint:ignore directives of a package and
// reports malformed ones (missing reason) through report.
func collectIgnores(fset *token.FileSet, pkg *Package, report func(Diagnostic)) []*ignoreDirective {
	var out []*ignoreDirective
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				check, reason := m[1], strings.TrimSpace(m[2])
				if reason == "" {
					report(Diagnostic{
						Check: "ignore", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("lint:ignore %s directive needs a reason", check),
					})
					continue
				}
				out = append(out, &ignoreDirective{file: pos.Filename, line: pos.Line, check: check, reason: reason})
			}
		}
	}
	return out
}

// suppressed reports whether a diagnostic is covered by an ignore directive
// on its own line or the line directly above.
func suppressed(d Diagnostic, ignores []*ignoreDirective) bool {
	for _, ig := range ignores {
		if ig.file == d.File && ig.check == d.Check && (ig.line == d.Line || ig.line == d.Line-1) {
			ig.used = true
			return true
		}
	}
	return false
}

// Run loads every package named by importPaths and applies the analyzers,
// returning the surviving (unsuppressed) diagnostics sorted by position.
// Ignore directives that match no diagnostic are reported as "ignore"
// findings so stale suppressions cannot accumulate.
func Run(l *Loader, importPaths []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	// Preload every requested package (their module-internal dependencies
	// load transitively) BEFORE any analyzer runs, so the first
	// Pass.CallGraph() call sees the whole load set and the memoized graph
	// is never built over a partial module.
	for _, path := range importPaths {
		if _, err := l.Load(path); err != nil {
			return nil, err
		}
	}

	var all []Diagnostic
	for _, path := range importPaths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}

		var raw []Diagnostic
		collect := func(d Diagnostic) { raw = append(raw, d) }
		ignores := collectIgnores(l.Fset, pkg, func(d Diagnostic) { all = append(all, d) })
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: l.Fset, Pkg: pkg, Loader: l, report: collect}
			a.Run(pass)
		}
		for _, d := range raw {
			if !suppressed(d, ignores) {
				all = append(all, d)
			}
		}
		for _, ig := range ignores {
			if ig.used {
				continue
			}
			if Lookup(ig.check) == nil {
				all = append(all, Diagnostic{
					Check: "ignore", File: ig.file, Line: ig.line,
					Message: fmt.Sprintf("lint:ignore names unknown check %q", ig.check),
				})
				continue
			}
			// Only warn about stale directives when the named check
			// actually ran; a filtered -checks run must not flag them.
			for _, a := range analyzers {
				if a.Name == ig.check {
					all = append(all, Diagnostic{
						Check: "ignore", File: ig.file, Line: ig.line,
						Message: fmt.Sprintf("lint:ignore %s suppresses nothing (stale directive)", ig.check),
					})
					break
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return all, nil
}

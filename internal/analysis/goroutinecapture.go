package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineCapture audits the variables a concurrently-executed function
// literal closes over. A literal runs concurrently when it is launched with
// a go statement or handed to the pipeline worker pool (pipeline.ForEach /
// ForEachContext / ForEachContextObs). Three capture patterns are flagged:
//
//   - loop variables: an enclosing for/range iteration variable referenced
//     inside the literal. Per-iteration semantics make the read safe since
//     Go 1.22, but the determinism contract wants iteration identity passed
//     as an argument, where the data flow is visible;
//   - unsynchronized writes: an assignment (or ++/--) whose target is a
//     captured outer variable, or a field/deref chain rooted at one. Writes
//     through an index expression (out[i] = ...) are the blessed
//     disjoint-slot pattern and stay silent, as does any literal whose body
//     takes a mutex;
//   - unsafe shared state: capturing a pipeline.Artifacts or analysis.Pass
//     value (both documented as not concurrency-safe), however it is used.
//
// Suppress a deliberate share with //lint:ignore goroutinecapture <why>.
var GoroutineCapture = &Analyzer{
	Name: "goroutinecapture",
	Doc: "flags loop variables and unsynchronized shared state captured by " +
		"go-statement or pipeline.ForEach function literals",
	Run: runGoroutineCapture,
}

func runGoroutineCapture(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		// Loop-variable objects of the file, each mapped to its loop
		// statement, so capture checks can ask "is this object the
		// iteration variable of a loop enclosing the launch site?".
		loopVars := collectLoopVars(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkConcurrentLiteral(pass, lit, "go statement", loopVars)
				}
			case *ast.CallExpr:
				if !isForEachCall(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkConcurrentLiteral(pass, lit, "pipeline.ForEach closure", loopVars)
					}
				}
			}
			return true
		})
	}
}

// collectLoopVars maps every iteration-variable object of a file to the
// loop statement that declares it: range keys/values declared with :=, and
// variables initialized in a for statement's init clause.
func collectLoopVars(pass *Pass, file *ast.File) map[types.Object]ast.Node {
	out := map[types.Object]ast.Node{}
	def := func(e ast.Expr, loop ast.Node) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if obj := pass.Pkg.Info.Defs[id]; obj != nil {
			out[obj] = loop
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if n.Key != nil {
					def(n.Key, n)
				}
				if n.Value != nil {
					def(n.Value, n)
				}
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					def(lhs, n)
				}
			}
		}
		return true
	})
	return out
}

// isForEachCall reports whether a call invokes ForEach, ForEachContext, or
// ForEachContextObs of a package named pipeline (the project worker pool;
// matching by package name keeps the fixture module honest too).
func isForEachCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "pipeline" {
		return false
	}
	switch fn.Name() {
	case "ForEach", "ForEachContext", "ForEachContextObs":
		return true
	}
	return false
}

// checkConcurrentLiteral inspects one concurrently-executed literal.
func checkConcurrentLiteral(pass *Pass, lit *ast.FuncLit, how string, loopVars map[types.Object]ast.Node) {
	synced := bodyTakesLock(pass, lit.Body)
	reported := map[types.Object]bool{}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if synced {
				return true
			}
			for _, lhs := range n.Lhs {
				checkCapturedWrite(pass, lit, lhs, how)
			}
		case *ast.IncDecStmt:
			if synced {
				return true
			}
			checkCapturedWrite(pass, lit, n.X, how)
		case *ast.Ident:
			obj := pass.Pkg.Info.Uses[n]
			if obj == nil || reported[obj] || !capturedBy(lit, obj) {
				return true
			}
			if loop, ok := loopVars[obj]; ok && encloses(loop, lit) {
				reported[obj] = true
				pass.Reportf(n.Pos(), "loop variable %s captured by %s; pass it as an argument so each worker gets its own copy", n.Name, how)
				return true
			}
			if kind := unsafeSharedType(obj.Type()); kind != "" {
				reported[obj] = true
				pass.Reportf(n.Pos(), "%s (%s) captured by %s is not safe for concurrent use; create one per goroutine", n.Name, kind, how)
			}
		}
		return true
	})
}

// checkCapturedWrite flags a write whose target is a captured outer
// variable or a selector/deref chain rooted at one. A chain through an
// index expression stays silent: writing disjoint slots of a shared slice
// is the pipeline's per-index output contract.
func checkCapturedWrite(pass *Pass, lit *ast.FuncLit, lhs ast.Expr, how string) {
	root := lhs
	for {
		switch e := root.(type) {
		case *ast.SelectorExpr:
			root = e.X
		case *ast.StarExpr:
			root = e.X
		case *ast.ParenExpr:
			root = e.X
		case *ast.IndexExpr:
			return // per-index slot write: the blessed pattern
		default:
			id, ok := e.(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil || !capturedBy(lit, obj) {
				return
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return
			}
			pass.Reportf(lhs.Pos(), "write to captured variable %s inside %s races with the enclosing function; synchronize it or make it a per-worker value", id.Name, how)
			return
		}
	}
}

// capturedBy reports whether obj is a variable declared outside lit but
// referenced inside it (a true capture, not a package-level object).
func capturedBy(lit *ast.FuncLit, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Package-level state is sharedwrite's domain; captures are locals.
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// encloses reports whether node outer lexically contains inner.
func encloses(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// unsafeSharedType recognizes the project types documented as not safe for
// concurrent use: pipeline.Artifacts and analysis.Pass (matched by package
// name so the fixture module is covered by the same rule). The returned
// string names the type for the diagnostic; "" means safe.
func unsafeSharedType(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	pkg, name := named.Obj().Pkg().Name(), named.Obj().Name()
	if (pkg == "pipeline" && name == "Artifacts") || (pkg == "analysis" && name == "Pass") {
		return "*" + pkg + "." + name
	}
	return ""
}

// bodyTakesLock reports whether a literal's body acquires any sync mutex —
// the signal that its shared-state writes are deliberately synchronized.
func bodyTakesLock(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := mutexCall(pass, call); ok && op.acquire {
			found = true
			return false
		}
		return true
	})
	return found
}

// Package resxp exercises the cross-package half of rescleak: ownership
// transfer summaries are computed on the module-wide call graph, so a
// release delegated to another package discharges the caller's obligation.
package resxp

import (
	"os"

	"fixture/ressub"
)

// Discharged: ressub.CloseIt's summary releases parameter 0.
func delegated(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return ressub.CloseIt(f)
}

// Discharged two hops down: CloseBoth → CloseIt, proven by the fixpoint.
func twoHops(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return ressub.CloseBoth(f)
}

// ressub.Hold inspects but does not release: the leak survives and the
// diagnostic names the non-discharging call.
func heldNotReleased(path string) int64 {
	f, err := os.Open(path) // want rescleak
	if err != nil {
		return 0
	}
	return ressub.Hold(f)
}

// Package lostcancel is a want-marker fixture for the lostcancel analyzer.
package lostcancel

import (
	"context"
	"errors"
	"time"
)

var errStop = errors.New("stop")

func work(ctx context.Context) { _ = ctx }

// The early return skips the cancel: the timeout's resources leak until
// the deadline fires.
func leakOnError(ctx context.Context, ok bool) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second) // want lostcancel
	if !ok {
		return errStop
	}
	work(ctx)
	cancel()
	return nil
}

// Deferring the cancel covers every exit.
func deferred(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	work(ctx)
}

// Handing the cancel to a callee that invokes it discharges the
// obligation interprocedurally (vet's lostcancel cannot see this).
func delegated(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	work(ctx)
	finish(cancel)
}

func finish(cancel context.CancelFunc) { cancel() }

// Storing the cancel in a struct whose stop method invokes it transfers
// the obligation to the struct's release path.
type session struct {
	cancel context.CancelFunc
}

func (s *session) stop() { s.cancel() }

func start(ctx context.Context) *session {
	ctx, cancel := context.WithCancel(ctx)
	work(ctx)
	return &session{cancel: cancel}
}

// Never calling the cancel at all leaks on every path.
func deadlineLeak(ctx context.Context, t time.Time) context.Context {
	d, cancel := context.WithDeadline(ctx, t) // want lostcancel
	_ = cancel
	return d
}

// Discarding the cancel func outright: the derived context can never be
// released.
func discard(ctx context.Context) context.Context {
	ctx, _ = context.WithCancel(ctx) // want lostcancel
	return ctx
}

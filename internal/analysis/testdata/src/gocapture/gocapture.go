// Package gocapture is a want-marker fixture for the goroutinecapture
// analyzer.
package gocapture

import (
	"sync"

	"fixture/pipeline"
)

// Loop variable captured by a go literal.
func loopVarGo(xs []int) {
	for i := range xs {
		go func() {
			_ = i // want goroutinecapture
		}()
	}
}

// Loop variable passed as an argument: clean.
func loopVarArg(xs []int) {
	for i := range xs {
		go func(i int) {
			_ = i
		}(i)
	}
}

// Unsynchronized write to a captured accumulator.
func capturedWrite(xs []int) int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, x := range xs {
			total += x // want goroutinecapture
		}
	}()
	wg.Wait()
	return total
}

// Mutex-guarded write to a captured accumulator: clean.
func guardedWrite(xs []int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		for _, x := range xs {
			total += x
		}
		mu.Unlock()
	}()
	wg.Wait()
	return total
}

// Per-index slot writes through a captured slice: the blessed ForEach
// output pattern, clean.
func slotWrites(xs []int) []int {
	out := make([]int, len(xs))
	pipeline.ForEach(len(xs), 2, func(i int) {
		out[i] = xs[i] * 2
	})
	return out
}

// Write to a captured scalar from a ForEach closure.
func forEachWrite(xs []int) int {
	sum := 0
	pipeline.ForEach(len(xs), 2, func(i int) {
		sum += xs[i] // want goroutinecapture
	})
	return sum
}

// ForEachContext closures are workers too.
func forEachContextWrite(xs []int) int {
	sum := 0
	_ = pipeline.ForEachContext(nil, len(xs), 2, func(i int) {
		sum += xs[i] // want goroutinecapture
	})
	return sum
}

// ForEachContextObs closures are workers too.
func forEachContextObsWrite(xs []int) int {
	sum := 0
	_ = pipeline.ForEachContextObs(nil, len(xs), 2, nil, func(i int) {
		sum += xs[i] // want goroutinecapture
	})
	return sum
}

// A captured *pipeline.Artifacts is unsafe however it is used.
func sharedArtifacts() {
	a := pipeline.New()
	done := make(chan struct{})
	go func() {
		a.Touch() // want goroutinecapture
		close(done)
	}()
	<-done
}

// One artifact per worker, created inside the closure: clean.
func perWorkerArtifacts(n int) {
	pipeline.ForEach(n, 2, func(i int) {
		a := pipeline.New()
		a.Touch()
	})
}

// Loop variable captured by a ForEach closure launched inside the loop.
func loopVarForEach(batches [][]int) {
	for _, batch := range batches {
		pipeline.ForEach(len(batch), 2, func(i int) {
			_ = batch[i] // want goroutinecapture
		})
	}
}

// A suppressed deliberate share.
func suppressedShare() {
	a := pipeline.New()
	done := make(chan struct{})
	go func() {
		//lint:ignore goroutinecapture single goroutine owns the artifact until done closes
		a.Touch()
		close(done)
	}()
	<-done
}

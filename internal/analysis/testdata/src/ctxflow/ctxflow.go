// Package ctxflow is a want-marker fixture for the ctxflow analyzer.
package ctxflow

import "context"

// A context stored in a struct field outlives its request.
type holder struct {
	ctx context.Context // want ctxflow
	n   int
}

// Assignments into a context-typed field are flagged independently of the
// field declaration.
func (h *holder) capture(ctx context.Context) {
	h.ctx = ctx // want ctxflow
	h.n++
}

// Minting a fresh root while already holding a context severs the caller's
// cancellation.
func Refresh(ctx context.Context) {
	c := context.Background() // want ctxflow
	_ = c
	_ = ctx
}

// The nil-guard normalization of the function's own parameter is the one
// blessed Background() inside a context holder.
func Normalize(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// step is ctx-less and reachable from context-accepting Process: re-rooting
// mid-chain is flagged with the entry point as witness.
func Process(ctx context.Context) error {
	_ = ctx
	return step()
}

func step() error {
	ctx := context.TODO() // want ctxflow
	_ = ctx
	return nil
}

// Exported ctx-less convenience wrappers are the legitimate root adapters:
// minting here is how they are supposed to work.
func ProcessAll() error {
	return ProcessWith(context.Background())
}

func ProcessWith(ctx context.Context) error {
	_ = ctx
	return nil
}

// A ctx-less helper no context-accepting export reaches: clean.
func orphan() {
	_ = context.Background()
}

// Package errcheck is a fixture (under internal/ so the check applies).
package errcheck

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

// Bad discards errors three ways.
func Bad(f *os.File) {
	f.Close()           // want errcheck
	fmt.Fprintf(f, "x") // want errcheck
	defer f.Sync()      // want errcheck
}

// Good handles or is allowlisted.
func Good(f *os.File) error {
	fmt.Println("progress")       // stdout is best-effort
	fmt.Fprintln(os.Stderr, "eh") // stderr is best-effort
	var b strings.Builder
	fmt.Fprintf(&b, "y") // strings.Builder never fails
	b.WriteString("z")   // method allowlist
	var buf bytes.Buffer
	fmt.Fprint(&buf, "w") // bytes.Buffer never fails
	if _, err := fmt.Fprintf(f, "real"); err != nil {
		return err
	}
	return f.Close()
}

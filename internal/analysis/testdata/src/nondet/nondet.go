// Package nondet is a fixture: library code with and without
// reproducibility violations.
package nondet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Bad reads the wall clock in library code.
func Bad() time.Time {
	return time.Now() // want nondeterminism
}

// BadRand draws from the global source.
func BadRand() int {
	return rand.Intn(6) // want nondeterminism
}

// BadSeed reseeds the global source.
func BadSeed() {
	rand.Seed(42) // want nondeterminism
}

// BadMapAppend leaks map order into a slice.
func BadMapAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want nondeterminism
		out = append(out, k)
	}
	return out
}

// BadMapPrint leaks map order into printed output.
func BadMapPrint(m map[string]int) {
	for k, v := range m { // want nondeterminism
		fmt.Println(k, v)
	}
}

// GoodRand owns a seeded source.
func GoodRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// GoodMapSorted collects then sorts, restoring determinism.
func GoodMapSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// GoodMapCount aggregates order-insensitively.
func GoodMapCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Suppressed demonstrates the escape hatch.
func Suppressed() time.Time {
	//lint:ignore nondeterminism fixture demonstrating an accepted wall-clock read
	return time.Now()
}

// Package panicpath is a fixture: library code with bare panics, an
// excused panic, and panic-free error returns.
package panicpath

import "errors"

// Bad panics on input it did not construct.
func Bad(n int) int {
	if n < 0 {
		panic("negative") // want panicpath
	}
	return n
}

// BadValue panics with a non-string value.
func BadValue(err error) {
	panic(err) // want panicpath
}

// Excused carries an invariant argument and is suppressed.
func Excused(i int) int {
	if i >= 8 {
		//lint:ignore panicpath index is produced by a modulo above, never from input
		panic("impossible")
	}
	return i
}

// Good returns a typed error instead.
func Good(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n, nil
}

// shadowed is a local function named panic-like; only the builtin counts.
func shadowed() {
	recoverIsh := func() {}
	recoverIsh()
}

// Package rescleak is a want-marker fixture for the rescleak analyzer:
// every way an obligation leaks, and every way it is discharged.
package rescleak

import (
	"net"
	"net/http"
	"os"
	"time"
)

// The success path forgets the file: leaked at the final return.
func leakOnSuccess(path string) (int64, error) {
	f, err := os.Open(path) // want rescleak
	if err != nil {
		return 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// The error arm of the acquisition's own check is NOT a leak: the resource
// is nil there (branch refinement), and the happy path closes.
func closedBothPaths(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 16)
	if _, err := f.Read(buf); err != nil {
		f.Close()
		return nil, err
	}
	return buf, f.Close()
}

// A deferred close runs at every exit.
func deferClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return inspect(f)
}

// Returning the resource hands ownership to the caller.
func openLog(dir string) (*os.File, error) {
	f, err := os.Create(dir + "/log")
	if err != nil {
		return nil, err
	}
	return f, nil
}

// inspect looks at the file but does not release it: its summary must stay
// empty, so passing a file here is no discharge.
func inspect(f *os.File) error {
	_, err := f.Stat()
	return err
}

// Passing the listener to a non-consuming helper does not discharge: the
// diagnostic names the call.
func listenPeek(addr string) error {
	ln, err := net.Listen("tcp", addr) // want rescleak
	if err != nil {
		return err
	}
	logAddr(ln)
	return nil
}

func logAddr(ln net.Listener) { _ = ln.Addr() }

// Storing into a field with a module-reachable Close transfers ownership.
type server struct {
	ln net.Listener
}

func (s *server) Close() error { return s.ln.Close() }

func newServer(addr string) (*server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &server{}
	s.ln = ln
	return s, nil
}

// Sending the resource on a channel hands ownership to the receiver.
func sendOff(path string, out chan<- *os.File) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	out <- f
	return nil
}

// A close inside a goroutine the resource is handed to is credited (the
// async-cleanup idiom).
func closeAsync(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	go func() {
		_ = f.Close()
	}()
	return nil
}

// An un-stopped timer leaks at the fall-off-the-end exit.
func tickOnce(d time.Duration) {
	t := time.NewTimer(d) // want rescleak
	<-t.C
}

// Stop deferred: clean.
func tick(d time.Duration, n int) {
	tk := time.NewTicker(d)
	defer tk.Stop()
	for i := 0; i < n; i++ {
		<-tk.C
	}
}

// The response body must be closed, not the response.
func fetchLeak(url string) (int, error) {
	resp, err := http.Get(url) // want rescleak
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

func fetchOK(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// Discarding the resource outright can never be released.
func drop(path string) {
	_, _ = os.Open(path) // want rescleak
}

// Package main exercises the ctxflow main-package exemptions: a binary
// owns its root context, but storing one in a field is wrong everywhere.
package main

import "context"

type app struct {
	ctx context.Context // want ctxflow
}

func run(ctx context.Context) {
	// Clean: main packages may re-root at will.
	c := context.Background()
	_ = c
	_ = ctx
	_ = app{}
}

func main() {
	run(context.Background())
}

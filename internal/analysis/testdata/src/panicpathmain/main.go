// Package main is a fixture: binaries may panic; the check must stay
// silent here.
package main

func main() {
	if len(parse()) == 0 {
		panic("no input") // binaries own their process; allowed
	}
}

func parse() []string { return []string{"x"} }

// Package goroleak is a want-marker fixture for the goroleak analyzer:
// goroutines parked forever on unbuffered channels, and unbounded
// per-element fan-out.
package goroleak

import "context"

func work() int     { return 1 }
func process(x int) { _ = x }

// The classic abandonment bug: the result channel is unbuffered and the
// parent can take ctx.Done() and walk away, stranding the sender.
func abandoned(ctx context.Context) int {
	ch := make(chan int)
	go func() {
		ch <- work() // want goroleak
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return -1
	}
}

// Buffering the channel lets the sender complete and be collected even
// when the parent abandons the result.
func buffered(ctx context.Context) int {
	ch := make(chan int, 1)
	go func() {
		ch <- work()
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return -1
	}
}

// A committed receive keeps the sender safe.
func committed() int {
	ch := make(chan int)
	go func() {
		ch <- work()
	}()
	return <-ch
}

// No receive at all: the sender blocks forever.
func noReceiver() {
	ch := make(chan int)
	go func() {
		ch <- work() // want goroleak
	}()
}

// A select escape inside the goroutine is the fix the diagnostic suggests.
func guardedSend(ctx context.Context) {
	ch := make(chan int)
	go func() {
		select {
		case ch <- work():
		case <-ctx.Done():
		}
	}()
	select {
	case <-ch:
	case <-ctx.Done():
	}
}

// Ranging over a channel nobody closes never terminates.
func rangeNoClose() {
	ch := make(chan int)
	go func() {
		for v := range ch { // want goroleak
			_ = v
		}
	}()
	ch <- 1
}

// A reachable close ends the range: feed then close is the worker idiom.
func rangeClosed(xs []int) {
	ch := make(chan int)
	go func() {
		for v := range ch {
			_ = v
		}
	}()
	for _, x := range xs {
		ch <- x
	}
	close(ch)
}

// The close may live one callee hop away.
func rangeClosedByHelper(xs []int) {
	ch := make(chan int)
	go func() {
		for v := range ch {
			_ = v
		}
	}()
	feed(ch, xs)
}

func feed(ch chan int, xs []int) {
	for _, x := range xs {
		ch <- x
	}
	close(ch)
}

// Receiving from a channel nobody sends on or closes.
func recvNothing() {
	ch := make(chan struct{})
	go func() {
		<-ch // want goroleak
	}()
}

// Per-element fan-out with no bound on in-flight goroutines.
func fanOut(xs []int) {
	for _, x := range xs {
		go process(x) // want goroleak
	}
}

// A counter-bounded worker pool over a shared channel is the blessed shape.
func workers(n int, ch chan int) {
	for w := 0; w < n; w++ {
		go func() {
			for v := range ch {
				_ = v
			}
		}()
	}
}

// Package paritybad is a fixture with deliberately desynchronized feature
// machinery: a fourth name ("Phantom") was added to the list, but neither
// the ablation groups nor the extractor learned about it, NumLineFeatures
// was hard-coded, and the neighbor name/offset tables disagree.
package paritybad

var LineFeatureNames = []string{"Alpha", "Beta", "Gamma", "Phantom"}

// Hard-coded count: must be len(LineFeatureNames).
var NumLineFeatures = 4 // want featureparity

var (
	LineContentFeatures       = []int{0, 1}
	LineContextualFeatures    = []int{2}
	LineComputationalFeatures = []int{} // want featureparity: Phantom belongs to no group
)

// LineFeatures never writes slot 3.
func LineFeatures(vals []float64) []float64 { // want featureparity
	f := make([]float64, NumLineFeatures)
	f[0] = vals[0]
	f[1] = vals[1]
	f[2] = 1
	return f
}

// Four offsets, three names: the neighbor profile would mislabel.
var neighborOffsets = [4][2]int{{0, 1}, {1, 0}, {0, -1}, {-1, 0}}

var neighborNames = [3]string{"E", "S", "W"} // want featureparity

// A literal cell list with no groups or extractor: only the neighbor
// mismatch above should fire on the cell side.
var CellFeatureNames = []string{"OnlyOne"}

// Package callgraph exercises the call-graph builder's edge cases: mutual
// recursion, deferred closures, callback parameters, and method values.
package callgraph

// Mutually recursive pair: the builder must close over the cycle without
// spinning, and reachability from either must include both.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

// A deferred closure calling back into the package: the literal flattens
// into Work, so Work→cleanup is a plain edge.
func Work() {
	defer func() {
		cleanup()
	}()
}

func cleanup() {}

// forEach invokes its function-typed parameter: one-level callback
// resolution binds every value statically passed at its call sites.
func forEach(xs []int, f func(int)) {
	for _, x := range xs {
		f(x)
	}
}

func Sum(xs []int) {
	forEach(xs, add)
}

func add(int) {}

// A method value is a dynamic function value: the caller is marked Hairy
// rather than given a guessed edge.
type Box struct{ n int }

func (b *Box) Incr() { b.n++ }

func Dynamic(b *Box) {
	m := b.Incr
	m()
}

// Package paritybadcell desynchronizes the cell side: the builder yields
// three names, but a group set reaches past the list and the extractor
// fills a fourth slot.
package paritybadcell

var classes = [2]string{"data", "header"}

var CellFeatureNames = buildCellFeatureNames()

var NumCellFeatures = len(CellFeatureNames)

func buildCellFeatureNames() []string {
	names := []string{"ValueLength"}
	for _, c := range classes {
		names = append(names, "Prob_"+c)
	}
	return names
}

var (
	CellContentFeatures       = indexRange(0, 1)
	CellLineProbFeatures      = indexRange(1, 4) // want featureparity: slot 3 is out of range
	CellComputationalFeatures = []int{}
)

func indexRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// CellFeatures writes four slots against three names.
func CellFeatures(probs []float64) []float64 { // want featureparity
	f := make([]float64, NumCellFeatures)
	i := 0
	f[i] = 1
	i++
	copy(f[i:i+2], probs)
	i += 2
	f[i] = 9
	return f
}

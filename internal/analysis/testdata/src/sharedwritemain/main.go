// Package main proves the sharedwrite exemption: a binary owns its globals
// for its process lifetime, so flag-style package state stays silent.
package main

var verbose bool
var runs int

func main() {
	verbose = true
	runs++
	helper()
}

func helper() {
	runs += 2
}

// Package pipeline mirrors the real worker-pool surface (ForEach and the
// non-concurrency-safe Artifacts type) so the goroutinecapture fixtures
// exercise the same matching rules as the production module.
package pipeline

// ForEach runs fn(i) for each i in [0, n) on a bounded worker pool.
func ForEach(n, parallelism int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// ForEachContext is ForEach with a cancellation hook.
func ForEachContext(ctx any, n, parallelism int, fn func(int)) error {
	ForEach(n, parallelism, fn)
	return nil
}

// ForEachContextObs is ForEachContext with observability hooks.
func ForEachContextObs(ctx any, n, parallelism int, h any, fn func(int)) error {
	ForEach(n, parallelism, fn)
	return nil
}

// Artifacts stands in for the per-table cache that is NOT safe for
// concurrent use.
type Artifacts struct{ hits int }

// New returns an empty artifact object.
func New() *Artifacts { return &Artifacts{} }

// Touch mutates the artifact.
func (a *Artifacts) Touch() { a.hits++ }

// Package lockxp exercises the cross-package half of the interprocedural
// lockcheck: the callee's summary lives in another package entirely.
package lockxp

import "fixture/locksub"

// Calling locksub.Touch while holding s.Mu deadlocks: Touch re-locks it.
func Bad(s *locksub.Store) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	locksub.Touch(s) // want lockcheck
}

// Without the held lock the same call is clean.
func Good(s *locksub.Store) {
	locksub.Touch(s)
}

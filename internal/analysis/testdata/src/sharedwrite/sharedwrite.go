// Package sharedwrite is a want-marker fixture for the sharedwrite
// analyzer.
package sharedwrite

import "sync"

var counter int
var registry = map[string]int{}
var limits = []int{1, 2, 3}
var config struct{ verbose bool }
var setupOnce sync.Once
var vocab []string

// Writes in init are the blessed initialization pattern: clean.
func init() {
	counter = 1
	registry["seed"] = 0
}

// Direct write from an exported function.
func Bump() {
	counter++ // want sharedwrite
}

// Map and slice element writes are shared-state writes too.
func Register(k string, v int) {
	registry[k] = v // want sharedwrite
}

func Tune(i, v int) {
	limits[i] = v // want sharedwrite
}

// Field write through a package-level struct.
func SetVerbose(v bool) {
	config.verbose = v // want sharedwrite
}

// A write reached through an unexported helper is still reachable from the
// exported surface.
func Reset() {
	clearAll()
}

func clearAll() {
	counter = 0 // want sharedwrite
}

// sync.Once bodies are init-equivalent: clean.
func Vocab() []string {
	setupOnce.Do(func() {
		vocab = []string{"alpha", "beta"}
	})
	return vocab
}

// A named loader reached only through once.Do stays clean too.
var loadOnce sync.Once

func Load() {
	loadOnce.Do(fill)
}

func fill() {
	vocab = append(vocab, "gamma")
}

// Writes in a helper no exported function reaches: clean (dead state, but
// not an API-reachability hazard).
func orphanReset() {
	counter = -1
}

// Local shadows are not globals: clean.
func Sum(xs []int) int {
	counter := 0
	for _, x := range xs {
		counter += x
	}
	return counter
}

// A write in a helper reached only as a callback is still reachable: the
// graph's one-level function-value tracking closes the old blind spot.
func ForAll(f func()) { f() }

func Drive() { ForAll(bumpHidden) }

func bumpHidden() {
	counter = 2 // want sharedwrite
}

// A deliberately guarded global, kept with a reasoned suppression.
var statsMu sync.Mutex
var stats map[string]int

func Observe(k string) {
	statsMu.Lock()
	defer statsMu.Unlock()
	if stats == nil {
		//lint:ignore sharedwrite statsMu serializes every access to stats
		stats = map[string]int{}
	}
	//lint:ignore sharedwrite statsMu serializes every access to stats
	stats[k]++
}

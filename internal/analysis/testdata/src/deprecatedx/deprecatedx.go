// Package deprecatedx calls a deprecated function across a package
// boundary, proving the deprecation note resolves through the loader's view
// of the dependency's syntax.
package deprecatedx

import "fixture/deprecated"

// CrossCaller still uses the old cross-package spelling.
func CrossCaller() int {
	return deprecated.OldWay(2) // want deprecated
}

// CrossClean uses the replacement.
func CrossClean() int { return deprecated.NewWay(2) }

// Package errcheckout sits outside internal/ and cmd/, so errcheck does
// not apply (clean case for the scoping rule).
package errcheckout

import "os"

// Unchecked would be a finding inside internal/.
func Unchecked(f *os.File) {
	f.Close()
}

// Package ignores is a fixture for the suppression mechanics themselves.
package ignores

import "time"

// Suppressed is correctly silenced.
func Suppressed() time.Time {
	//lint:ignore nondeterminism fixture: suppression with a reason works
	return time.Now()
}

// MissingReason is reported: the reason is mandatory.
func MissingReason() int {
	//lint:ignore nondeterminism
	return 1
}

// Stale is reported: it suppresses nothing.
func Stale() int {
	//lint:ignore floatcmp nothing on this line compares floats
	return 2
}

// UnknownCheck is reported: no such analyzer.
func UnknownCheck() int {
	//lint:ignore bogus this check does not exist
	return 3
}

// Package ingest mirrors the streaming hot-path shape: Scanner.Scan
// matches the hotalloc root table by (package name, receiver, method), so
// everything it reaches over the call graph is judged hot.
package ingest

import "fmt"

type Scanner struct {
	rows []string
	out  []string
}

// Scan is a hot root.
func (s *Scanner) Scan() bool {
	var acc []string
	for _, r := range s.rows {
		acc = append(acc, r) // want hotalloc
		b := []byte(r)       // want hotalloc
		_ = string(b)        // want hotalloc
	}
	s.out = acc
	msg := fmt.Sprintf("scanned %d", len(s.rows)) // want hotalloc
	_ = msg
	s.collect()
	_ = s.header("h")
	return perRow(s.rows)
}

// perRow is unexported but reachable from Scan: still hot. The closure
// captures the loop variable, so each iteration allocates.
func perRow(rows []string) bool {
	for i := range rows {
		each(func() int { return i }) // want hotalloc
	}
	return true
}

func each(f func() int) int { return f() }

// Preallocated append is the blessed shape: clean.
func (s *Scanner) collect() {
	out := make([]string, 0, len(s.rows))
	for _, r := range s.rows {
		out = append(out, r)
	}
	s.out = out
}

// Conversions outside loops are one-shot, not per-row: clean.
func (s *Scanner) header(r string) []byte {
	return []byte(r)
}

// Describe is reachable from no hot root: its Sprintf is clean.
func Describe() string {
	return fmt.Sprintf("scanner of %d rows", 0)
}

// Package errflow is a want-marker fixture for the errflow analyzer.
package errflow

import (
	"errors"
	"fmt"
	"io"
)

var ErrStop = errors.New("stop")

type ParseError struct{ Line int }

func (e *ParseError) Error() string { return fmt.Sprintf("line %d", e.Line) }

// Sentinel comparison with == misses wrapped chains.
func Classify(err error) string {
	if err == ErrStop { // want errflow
		return "stop"
	}
	if err != nil { // nil checks are not sentinel matching: clean
		return "other"
	}
	return "ok"
}

// errors.Is is the blessed form: clean.
func ClassifyIs(err error) bool {
	return errors.Is(err, io.EOF)
}

// Type assertion to a concrete error type misses wrapped chains.
func Line(err error) int {
	if pe, ok := err.(*ParseError); ok { // want errflow
		return pe.Line
	}
	return -1
}

// Asserting to an interface probes behavior, not identity: clean.
func IsTimeout(err error) bool {
	t, ok := err.(interface{ Timeout() bool })
	return ok && t.Timeout()
}

// A type switch on an error misses wrapped chains too.
func Kind(err error) string {
	switch err.(type) { // want errflow
	case *ParseError:
		return "parse"
	default:
		return "other"
	}
}

// fmt.Errorf without %w on the exported surface flattens the chain.
func Wrap(err error) error {
	return fmt.Errorf("annotate: %v", err) // want errflow
}

// %w preserves it: clean.
func WrapW(err error) error {
	return fmt.Errorf("annotate: %w", err)
}

// The %w rule follows module-wide reachability: wrapInner is unexported
// but reachable from exported WrapDeep.
func WrapDeep(err error) error {
	return wrapInner(err)
}

func wrapInner(err error) error {
	return fmt.Errorf("inner: %v", err) // want errflow
}

// An unexported helper nothing exported reaches may flatten: clean.
func logLine(err error) string {
	return fmt.Errorf("log: %v", err).Error()
}

// Stringifying an error destroys the chain no matter where it happens.
func Stringify(err error) error {
	return errors.New(err.Error()) // want errflow
}

func StringifyF(err error) error {
	return fmt.Errorf("failed: %s", err.Error()) // want errflow
}

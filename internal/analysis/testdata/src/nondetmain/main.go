// Package main is a fixture: binaries are exempt from the nondeterminism
// check and may default to wall clock.
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	fmt.Println(time.Now(), rand.Intn(6))
}

// Package ressub provides the release helpers the resxp fixture delegates
// to: the summary builder must prove CloseIt and CloseBoth release their
// parameter on every path, and that Hold does not.
package ressub

import "os"

// CloseIt releases its file on every path: summary {0}.
func CloseIt(f *os.File) error {
	return f.Close()
}

// CloseBoth delegates the release another hop down; the fixpoint must
// propagate CloseIt's summary into this one.
func CloseBoth(f *os.File) error {
	return CloseIt(f)
}

// Hold inspects the file but never releases it: empty summary.
func Hold(f *os.File) int64 {
	fi, err := f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

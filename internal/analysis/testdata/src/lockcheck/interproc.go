// Interprocedural cases: a call made while the caller provably holds a
// mutex the callee's transitive summary acquires is a deadlock at the call
// site.
package lockcheck

// lockedIncr locks the receiver's mutex for the duration of the call.
func (s *S) lockedIncr() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// Calling a self-locking helper without holding the lock: clean.
func (s *S) DelegatedIncr() {
	s.lockedIncr()
}

// Calling it while holding the same lock deadlocks.
func (s *S) HeldCall() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockedIncr() // want lockcheck
}

// Summaries are transitive: two hops away still deadlocks.
func (s *S) hop() {
	s.lockedIncr()
}

func (s *S) HeldHopCall() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hop() // want lockcheck
}

// A write lock requested while a read lock is held blocks forever too.
func (s *S) writeLocked() int {
	s.rw.Lock()
	defer s.rw.Unlock()
	return s.n
}

func (s *S) HeldReadCall() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.writeLocked() // want lockcheck
}

// Free functions compose through their first parameter.
func bumpLocked(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func (s *S) HeldFreeCall() {
	s.mu.Lock()
	defer s.mu.Unlock()
	bumpLocked(s) // want lockcheck
}

// Holding a DIFFERENT instance's lock is fine.
func pair(a, b *S) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.lockedIncr()
}

// Package lockcheck is a want-marker fixture for the lockcheck analyzer.
package lockcheck

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Deferred unlock: clean.
func (s *S) Deferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// Explicit balanced unlock: clean.
func (s *S) Balanced() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// Both branches unlock before returning: clean.
func (s *S) BranchesBalanced(c bool) int {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}

// Early return leaks the lock.
func (s *S) LeakOnEarlyReturn(c bool) {
	s.mu.Lock() // want lockcheck
	if c {
		return
	}
	s.mu.Unlock()
}

// Lock at the end of a branch is never released.
func (s *S) LeakOnBranch(c bool) {
	if c {
		s.mu.Lock() // want lockcheck
	}
}

// Double Lock of a mutex already held on every path: deadlock.
func (s *S) DoubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want lockcheck
	s.mu.Unlock()
	s.mu.Unlock()
}

// Read lock with deferred release: clean.
func (s *S) ReadPath() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

// Write lock leaked on the error path of a read-locked section.
func (s *S) MixedLeak(c bool) int {
	s.rw.Lock() // want lockcheck
	if c {
		return -1
	}
	s.rw.Unlock()
	return s.n
}

// Unlock inside a deferred literal counts as released on every exit: clean.
func (s *S) DeferredLiteral() {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
	s.n++
}

// Lock inside a loop, unlocked in the same iteration: clean.
func (s *S) LoopBalanced(xs []int) {
	for _, x := range xs {
		s.mu.Lock()
		s.n += x
		s.mu.Unlock()
	}
}

// Conditional lock inside a loop escapes the iteration still held.
func (s *S) LoopLeak(xs []int) {
	for _, x := range xs {
		if x > 0 {
			s.mu.Lock() // want lockcheck
		}
	}
}

// A goroutine body is its own execution context: the literal's balanced
// lock is clean, and the launcher holds nothing.
func (s *S) Launcher() {
	go func() {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}()
}

// TryLock may fail, so a conditional unlock under the success branch is
// clean, and no double-lock fires.
func (s *S) TryPath() {
	if s.mu.TryLock() {
		s.n++
		s.mu.Unlock()
	}
}

// Distinct receivers are distinct locks: clean.
func transfer(a, b *S) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// A suppressed handoff: the lock deliberately outlives the call.
func (s *S) Acquire() {
	//lint:ignore lockcheck deliberate handoff; Release unlocks
	s.mu.Lock()
}

func (s *S) Release() {
	s.mu.Unlock()
}

// Package floatcmp is a fixture for the float-equality check.
package floatcmp

// Bad compares floats exactly.
func Bad(a, b float64) bool {
	return a == b // want floatcmp
}

// BadZero compares a computed float against zero.
func BadZero(sum float64) bool {
	return sum != 0 // want floatcmp
}

// BadF32 applies to float32 too.
func BadF32(a float32) bool {
	return a == 1.5 // want floatcmp
}

// GoodOrder uses ordering, which is fine.
func GoodOrder(a, b float64) bool { return a < b }

// GoodInt compares integers.
func GoodInt(a, b int) bool { return a == b }

// GoodConst is folded by the compiler: both operands constant.
const half = 0.5

var GoodConstCmp = half == 0.5

// GoodSuppressed documents a deliberate sentinel.
func GoodSuppressed(count float64) bool {
	//lint:ignore floatcmp counts are integral floats in this fixture
	return count == 0
}

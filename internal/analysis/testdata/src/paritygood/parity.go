// Package paritygood is a fixture mirroring the internal/features layout
// with every cross-cutting invariant intact: name lists, group index sets,
// and extractors all agree.
package paritygood

// Line side: three named features.
var LineFeatureNames = []string{"Alpha", "Beta", "Gamma"}

// NumLineFeatures derives from the list, as required.
var NumLineFeatures = len(LineFeatureNames)

var (
	LineContentFeatures       = []int{0, 1}
	LineContextualFeatures    = []int{2}
	LineComputationalFeatures = []int{}
)

// LineFeatures writes every slot.
func LineFeatures(vals []float64) []float64 {
	f := make([]float64, NumLineFeatures)
	f[0] = vals[0]
	if vals[1] > 0 {
		f[1] = vals[1]
	}
	f[2] = 1
	return f
}

// Cell side: 2 content + 2 class probs + 4 neighbors + 1 computational = 9.
var classes = [2]string{"data", "header"}

var neighborOffsets = [4][2]int{{0, 1}, {1, 0}, {0, -1}, {-1, 0}}

var neighborNames = [4]string{"E", "S", "W", "N"}

var CellFeatureNames = buildCellFeatureNames()

var NumCellFeatures = len(CellFeatureNames)

func buildCellFeatureNames() []string {
	names := []string{"ValueLength", "DataType"}
	for _, c := range classes {
		names = append(names, "Prob_"+c)
	}
	for _, n := range neighborNames {
		names = append(names, "Neighbor_"+n)
	}
	names = append(names, "IsAggregation")
	return names
}

var (
	CellContentFeatures       = indexRange(0, 2)
	CellLineProbFeatures      = indexRange(2, 4)
	CellContextualFeatures    = indexRange(4, 4+4)
	CellComputationalFeatures = []int{NumCellFeatures - 1}
)

func indexRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// CellFeatures fills the vector cursor-style, like the real extractor.
func CellFeatures(probs []float64, inBounds bool) []float64 {
	f := make([]float64, NumCellFeatures)
	i := 0
	f[i] = 1
	i++
	f[i] = 2
	i++
	copy(f[i:i+2], probs)
	i += 2
	for range neighborOffsets {
		if !inBounds {
			f[i] = -1
		} else {
			f[i] = 0.5
		}
		i++
	}
	f[i] = 1
	return f
}

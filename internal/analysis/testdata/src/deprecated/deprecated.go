// Package deprecated is a fixture for the deprecated-call check.
package deprecated

// NewWay is the supported entry point.
func NewWay(x int) int { return x + 1 }

// OldWay is kept for source compatibility.
//
// Deprecated: Use NewWay.
func OldWay(x int) int { return NewWay(x) }

// OlderWay delegates to another shim, which is allowed: deprecated code may
// call deprecated code.
//
// Deprecated: Use NewWay.
func OlderWay(x int) int { return OldWay(x) }

// Caller still uses the old spelling.
func Caller() int {
	return OldWay(1) // want deprecated
}

// CleanCaller uses the replacement.
func CleanCaller() int { return NewWay(1) }

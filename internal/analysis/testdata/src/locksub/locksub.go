// Package locksub is the callee side of the cross-package lockcheck
// fixture: Touch's lock summary must be visible to importing packages.
package locksub

import "sync"

type Store struct {
	Mu sync.Mutex
	N  int
}

// Touch locks the store for the duration of the call.
func Touch(s *Store) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	s.N++
}

package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the intraprocedural dataflow engine the concurrency
// analyzers build on: a per-function control-flow graph of basic blocks
// (covering if/for/range/switch/select/defer and the break/continue/return
// jumps between them) plus a forward reaching-facts solver over a small
// map lattice. It is deliberately intraprocedural — calls are opaque, defers
// are approximated as running at every exit, and functions using goto are
// marked Hairy so clients can skip them instead of reasoning wrongly.

// A CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block; Exit is a synthetic empty block every return (and the fall
// off the end of the body) jumps to.
type CFG struct {
	Blocks []*Block
	Exit   *Block
	// Defers lists every deferred call in the function, in source order.
	// The builder records them function-wide: a defer executed on any path
	// runs at every subsequent exit, and treating all of them as reaching
	// every exit is the approximation that avoids false positives from
	// conditional defers.
	Defers []*ast.CallExpr
	// Hairy marks control flow the builder does not model (goto). Dataflow
	// clients should skip hairy functions rather than trust their graphs.
	Hairy bool
}

// A Block is one basic block: statements and control expressions that
// execute in order, followed by a jump to one of Succs.
type Block struct {
	Index int
	// Nodes holds the block's statements (and for conditions, the bare
	// expression) in execution order. Function-literal bodies inside a node
	// are NOT part of this function's flow; clients must not descend into
	// them when transferring facts.
	Nodes []ast.Node
	Succs []*Block

	// Cond is the branching condition this block ends with, when the block
	// ends in a two-way test the builder models (an if condition or a for
	// loop's head check). TrueSucc and FalseSucc are the successors taken
	// when Cond evaluates true resp. false; both are also present in Succs.
	// Blocks ending in switch/select dispatch or plain fallthrough leave all
	// three nil. ForwardEdges clients use these for path-sensitive
	// refinement (e.g. dropping a resource obligation on the err != nil arm).
	Cond      ast.Expr
	TrueSucc  *Block
	FalseSucc *Block

	preds []*Block
}

// Entry returns the function's entry block.
func (c *CFG) Entry() *Block { return c.Blocks[0] }

// cfgBuilder incrementally grows a CFG while walking one function body.
type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// breakTargets / continueTargets stack the jump destinations of the
	// enclosing loops and switches; label is "" for unlabeled frames.
	breakTargets    []jumpTarget
	continueTargets []jumpTarget
}

type jumpTarget struct {
	label string
	block *Block
}

// buildCFG constructs the control-flow graph of one function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	entry := b.newBlock()
	exit := b.newBlock()
	b.cfg.Exit = exit
	b.cur = entry
	b.stmtList(body.List, "")
	b.edge(b.cur, exit)
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.preds = append(s.preds, blk)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// jumpTo ends the current block with an edge to target and continues
// building in a fresh, unreachable block (statements after a jump).
func (b *cfgBuilder) jumpTo(target *Block) {
	b.edge(b.cur, target)
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, label string) {
	for i, s := range list {
		// Only the statement a label is attached to sees it; a label is
		// consumed by the first loop/switch it wraps.
		if i == 0 {
			b.stmt(s, label)
		} else {
			b.stmt(s, "")
		}
	}
}

func findTarget(stack []jumpTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List, "")

	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		cond := b.cur
		join := b.newBlock()

		then := b.newBlock()
		b.edge(cond, then)
		cond.Cond = s.Cond
		cond.TrueSucc = then
		b.cur = then
		b.stmtList(s.Body.List, "")
		b.edge(b.cur, join)

		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			cond.FalseSucc = els
			b.cur = els
			b.stmt(s.Else, "")
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
			cond.FalseSucc = join
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
			head.Cond = s.Cond
			head.FalseSucc = after
		}
		// continue jumps to the post statement when there is one, else to
		// the condition check.
		contTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			contTo = post
		}
		b.pushLoop(label, after, contTo)
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			head.TrueSucc = body
		}
		b.cur = body
		b.stmtList(s.Body.List, "")
		b.edge(b.cur, contTo)
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		// The range expression is evaluated once, before the loop; only the
		// per-iteration variables sit in the head block (the RangeStmt node
		// itself would drag its whole body subtree into the head).
		b.cur.Nodes = append(b.cur.Nodes, s.X)
		head := b.newBlock()
		if s.Key != nil {
			head.Nodes = append(head.Nodes, s.Key)
		}
		if s.Value != nil {
			head.Nodes = append(head.Nodes, s.Value)
		}
		b.edge(b.cur, head)
		after := b.newBlock()
		b.edge(head, after)
		b.pushLoop(label, after, head)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmtList(s.Body.List, "")
		b.edge(b.cur, head)
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchClauses(s.Body.List, label, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchClauses(s.Body.List, label, false)

	case *ast.SelectStmt:
		b.switchClauses(s.Body.List, label, true)

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.jumpTo(b.cfg.Exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breakTargets, labelName(s)); t != nil {
				b.jumpTo(t)
			} else {
				b.cfg.Hairy = true
			}
		case token.CONTINUE:
			if t := findTarget(b.continueTargets, labelName(s)); t != nil {
				b.jumpTo(t)
			} else {
				b.cfg.Hairy = true
			}
		case token.GOTO:
			b.cfg.Hairy = true
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// Handled by switchClauses; reaching here means a malformed
			// tree, which the type checker already rejected.
		}

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s.Call)
		b.cur.Nodes = append(b.cur.Nodes, s)

	default:
		// Straight-line statements: assignments, declarations, expression
		// statements, go statements, sends, increments.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func labelName(s *ast.BranchStmt) string {
	if s.Label == nil {
		return ""
	}
	return s.Label.Name
}

// switchClauses builds the branch structure shared by switch, type switch,
// and select: the dispatching block fans out to one block per clause, every
// clause ends at the after block, and (for switches) a missing default adds
// a direct dispatch→after edge. Fallthrough chains a case block into the
// next clause's block.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, isSelect bool) {
	dispatch := b.cur
	after := b.newBlock()
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		blocks[i] = b.newBlock()
		b.edge(dispatch, blocks[i])
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
		}
	}
	if !isSelect && !hasDefault {
		b.edge(dispatch, after)
	}
	if isSelect && len(clauses) == 0 {
		// `select {}` blocks forever; no edge to after.
		b.cur = after
		return
	}

	// break inside a clause exits the switch/select.
	b.breakTargets = append(b.breakTargets, jumpTarget{label: label, block: after})
	if label != "" {
		b.breakTargets = append(b.breakTargets, jumpTarget{label: "", block: after})
	}
	for i, clause := range clauses {
		b.cur = blocks[i]
		var body []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				b.cur.Nodes = append(b.cur.Nodes, e)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				b.stmt(c.Comm, "")
			}
			body = c.Body
		}
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		b.stmtList(body, "")
		if fallsThrough && i+1 < len(clauses) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	if label != "" {
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.cur = after
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, jumpTarget{label: "", block: brk})
	b.continueTargets = append(b.continueTargets, jumpTarget{label: "", block: cont})
	if label != "" {
		b.breakTargets = append(b.breakTargets, jumpTarget{label: label, block: brk})
		b.continueTargets = append(b.continueTargets, jumpTarget{label: label, block: cont})
	}
}

func (b *cfgBuilder) popLoop() {
	n := len(b.breakTargets)
	// pushLoop added either one or two frames; pop until the unlabeled
	// frame for this loop is gone. Labeled frames sit on top.
	if n >= 2 && b.breakTargets[n-1].label != "" {
		b.breakTargets = b.breakTargets[:n-2]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-2]
		return
	}
	b.breakTargets = b.breakTargets[:n-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

// CFG returns the control-flow graph of fn's body, building and memoizing
// it on first use. fn may be an *ast.FuncDecl or an *ast.FuncLit; a nil
// body (external declaration) returns nil. The cache lives on the package,
// so every analyzer in a run shares one graph per function.
func (p *Pass) CFG(fn ast.Node) *CFG {
	return p.Pkg.funcCFG(fn)
}

// funcCFG is the package-level CFG cache behind Pass.CFG. It is also
// callable without a Pass, which the interprocedural summary builders need:
// they walk call-graph nodes across every loaded package, not just the one
// the current Pass is analyzing.
func (p *Package) funcCFG(fn ast.Node) *CFG {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return nil
	}
	if p.cfgs == nil {
		p.cfgs = make(map[ast.Node]*CFG)
	}
	if c, ok := p.cfgs[fn]; ok {
		return c
	}
	c := buildCFG(body)
	p.cfgs[fn] = c
	return c
}

// FactState is the per-key lattice of the reaching-facts analysis:
// a fact either holds on every path reaching a point (FactMust) or on at
// least one but not all (FactMay). Absence from the map means the fact
// holds on no path. Join degrades Must to May when the other side lacks
// the fact.
type FactState uint8

const (
	// FactMay marks a fact holding on some but not necessarily all paths.
	FactMay FactState = iota + 1
	// FactMust marks a fact holding on every path to this point.
	FactMust
)

// Facts maps fact keys (analyzer-chosen strings, e.g. a canonical mutex
// expression) to their lattice state.
type Facts map[string]FactState

// Clone returns an independent copy of f.
func (f Facts) Clone() Facts {
	out := make(Facts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// join merges two predecessor fact maps: present-in-both as Must stays
// Must, anything else present becomes May.
func join(a, b Facts) Facts {
	out := make(Facts, len(a)+len(b))
	for k, v := range a {
		if v == FactMust && b[k] == FactMust {
			out[k] = FactMust
		} else {
			out[k] = FactMay
		}
	}
	for k := range b {
		if _, ok := out[k]; !ok {
			out[k] = FactMay
		}
	}
	return out
}

func factsEqual(a, b Facts) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Forward runs a forward reaching-facts analysis over the CFG to fixpoint
// and returns the facts holding at the ENTRY of each reachable block.
// transfer must be pure: it receives a private copy of the incoming facts
// and returns the outgoing facts of the block. Unreachable blocks get no
// entry (nil is not in the map). The lattice is finite (keys are introduced
// only by transfer, states only degrade Must→May across joins), so the
// iteration terminates.
func (c *CFG) Forward(transfer func(b *Block, in Facts) Facts) map[*Block]Facts {
	return c.ForwardEdges(transfer, nil)
}

// ForwardEdges is Forward with per-edge refinement: before the facts
// flowing out of a predecessor are joined into a successor, refine may
// rewrite them for that specific edge. It receives the edge's endpoints and
// a private copy of the predecessor's outgoing facts, and returns the facts
// that flow along the edge — typically consulting from.Cond/TrueSucc/
// FalseSucc to apply branch conditions (e.g. deleting an obligation on the
// branch where its paired error is non-nil). refine must only remove or
// downgrade facts, never introduce new keys, or termination is forfeit.
// A nil refine makes this identical to Forward.
func (c *CFG) ForwardEdges(transfer func(b *Block, in Facts) Facts, refine func(from, to *Block, f Facts) Facts) map[*Block]Facts {
	in := make(map[*Block]Facts, len(c.Blocks))
	out := make(map[*Block]Facts, len(c.Blocks))
	in[c.Entry()] = Facts{}

	for changed := true; changed; {
		changed = false
		for _, blk := range c.Blocks {
			var inF Facts
			if blk == c.Entry() {
				inF = Facts{}
			} else {
				reached := false
				for _, p := range blk.preds {
					o, ok := out[p]
					if !ok {
						continue
					}
					edgeF := o.Clone()
					if refine != nil {
						edgeF = refine(p, blk, edgeF)
					}
					if !reached {
						inF = edgeF
						reached = true
					} else {
						inF = join(inF, edgeF)
					}
				}
				if !reached {
					continue // unreachable so far
				}
			}
			if prev, ok := in[blk]; !ok || !factsEqual(prev, inF) {
				in[blk] = inF
				changed = true
			}
			o := transfer(blk, in[blk].Clone())
			if prev, ok := out[blk]; !ok || !factsEqual(prev, o) {
				out[blk] = o
				changed = true
			}
		}
	}
	return in
}

package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// graphFixture loads the callgraph fixture package and returns its graph.
func graphFixture(t *testing.T) (*Loader, *CallGraph) {
	t.Helper()
	l := fixtureLoader(t)
	if _, err := l.Load("fixture/callgraph"); err != nil {
		t.Fatal(err)
	}
	return l, l.CallGraph()
}

// nodeByName finds the unique fixture node with the given function name.
func nodeByName(t *testing.T, g *CallGraph, name string) *CallNode {
	t.Helper()
	var found *CallNode
	g.Nodes(func(n *CallNode) {
		if n.Func.Name() == name && strings.HasPrefix(n.Pkg.Path, "fixture/") {
			if found != nil {
				t.Fatalf("two fixture nodes named %s", name)
			}
			found = n
		}
	})
	if found == nil {
		t.Fatalf("no fixture node named %s", name)
	}
	return found
}

// edgeTo returns the edge from n to callee, or nil.
func edgeTo(n *CallNode, callee *CallNode) *CallEdge {
	for i := range n.Callees {
		if n.Callees[i].Callee == callee {
			return &n.Callees[i]
		}
	}
	return nil
}

func TestCallGraphMutualRecursion(t *testing.T) {
	_, g := graphFixture(t)
	even, odd := nodeByName(t, g, "Even"), nodeByName(t, g, "Odd")
	if edgeTo(even, odd) == nil || edgeTo(odd, even) == nil {
		t.Fatal("mutual recursion edges missing")
	}
	reach := g.Reachable([]*CallNode{even}, ReachOptions{})
	if reach[even] != even || reach[odd] != even {
		t.Errorf("reachability over the Even<->Odd cycle: got %v/%v, want both witnessed by Even", reach[even], reach[odd])
	}
}

func TestCallGraphDeferredClosureFlattens(t *testing.T) {
	_, g := graphFixture(t)
	work, cleanup := nodeByName(t, g, "Work"), nodeByName(t, g, "cleanup")
	e := edgeTo(work, cleanup)
	if e == nil {
		t.Fatal("deferred closure's call did not flatten into Work")
	}
	if e.Callback || e.Once {
		t.Errorf("Work->cleanup should be a plain edge, got callback=%v once=%v", e.Callback, e.Once)
	}
}

func TestCallGraphCallbackResolution(t *testing.T) {
	_, g := graphFixture(t)
	forEach, add, sum := nodeByName(t, g, "forEach"), nodeByName(t, g, "add"), nodeByName(t, g, "Sum")
	e := edgeTo(forEach, add)
	if e == nil {
		t.Fatal("callback edge forEach->add missing: one-level parameter tracking broken")
	}
	if !e.Callback {
		t.Error("forEach->add should be marked Callback")
	}
	// The payoff: add is reachable from Sum through the callback edge.
	reach := g.Reachable([]*CallNode{sum}, ReachOptions{})
	if reach[add] != sum {
		t.Errorf("add not reachable from Sum via callback edge (witness %v)", reach[add])
	}
}

func TestCallGraphMethodValueIsHairy(t *testing.T) {
	_, g := graphFixture(t)
	dyn := nodeByName(t, g, "Dynamic")
	if !dyn.Hairy {
		t.Fatal("Dynamic calls a method value but is not marked Hairy")
	}
	if !strings.Contains(dyn.HairyReason, "dynamic function value") {
		t.Errorf("HairyReason = %q", dyn.HairyReason)
	}
	// No guessed edge to Incr.
	if edgeTo(dyn, nodeByName(t, g, "Incr")) != nil {
		t.Error("Dynamic has a guessed edge to Incr; dynamic dispatch must stay unresolved")
	}
}

func TestCallGraphMemoizedAndInvalidated(t *testing.T) {
	l, g := graphFixture(t)
	if l.CallGraph() != g {
		t.Fatal("CallGraph not memoized across calls")
	}
	if _, err := l.Load("fixture/locksub"); err != nil {
		t.Fatal(err)
	}
	g2 := l.CallGraph()
	if g2 == g {
		t.Fatal("CallGraph memo not invalidated by a new Load")
	}
	// The rebuilt graph covers the new package.
	found := false
	g2.Nodes(func(n *CallNode) {
		if n.Pkg.Path == "fixture/locksub" {
			found = true
		}
	})
	if !found {
		t.Error("rebuilt graph missing the newly loaded package")
	}
}

func TestCallGraphDeterministicOrder(t *testing.T) {
	_, g := graphFixture(t)
	var prev *types.Func
	for _, fn := range g.Funcs() {
		if prev != nil {
			a, b := g.Node(prev), g.Node(fn)
			if !nodeLess(a, b) && nodeLess(b, a) {
				t.Fatalf("Funcs() out of order: %s before %s", prev.Name(), fn.Name())
			}
		}
		prev = fn
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// SharedWrite hunts the root cause class behind nondeterministic
// annotation: package-level mutable state written on paths reachable from
// the exported API. A library whose exported functions mutate globals
// cannot promise byte-identical output at arbitrary worker counts — two
// concurrent batch calls interleave those writes.
//
// Reachability is MODULE-WIDE: the walk runs over the shared call graph,
// rooted at every exported function of every loaded non-main package, with
// one-level function-value (callback) edges included. A helper that only
// becomes reachable because another package's exported entry point calls
// into this one — or because it is handed around as a callback — is no
// longer a blind spot (both were documented limits of the old per-package
// graph).
//
// A write is allowed when it happens in an init function or inside a
// function literal passed to (*sync.Once).Do (once-edges are excluded from
// the reachability walk, and once.Do literal bodies are skipped at the
// write site too). Package main is exempt: a binary owns its globals for
// its process lifetime. A deliberately guarded global can be kept with
// //lint:ignore sharedwrite <the invariant that makes it safe>.
//
// Known limits: writes through a pointer previously taken from a global
// are not seen, and dynamic call shapes beyond one-level callbacks
// (stored function fields, interface dispatch) contribute no edges — see
// the Hairy marking on the call graph.
var SharedWrite = &Analyzer{
	Name: "sharedwrite",
	Doc: "flags writes to package-level vars reachable from exported " +
		"functions outside init/sync.Once",
	Run: runSharedWrite,
}

func runSharedWrite(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		return
	}

	// The package-level mutable vars.
	globals := map[types.Object]bool{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if obj := pass.Pkg.Info.Defs[name]; obj != nil {
						if _, isVar := obj.(*types.Var); isVar {
							globals[obj] = true
						}
					}
				}
			}
		}
	}
	if len(globals) == 0 {
		return
	}

	// Module-wide reachability from every exported function of every
	// loaded non-main package, memoized on the graph so the walk runs once
	// per lint invocation, not once per package.
	graph := pass.CallGraph()
	reach := graph.Memo("sharedwrite.reach", func() any {
		var roots []*CallNode
		graph.Nodes(func(n *CallNode) {
			if n.Func.Exported() && n.Pkg.Types.Name() != "main" {
				roots = append(roots, n)
			}
		})
		return graph.Reachable(roots, ReachOptions{SkipOnce: true})
	}).(map[*CallNode]*CallNode)

	// Judge every write site of this package's reachable functions.
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "init" && fd.Recv == nil {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			node := graph.Node(fn)
			if node == nil {
				continue
			}
			root := reach[node]
			if root == nil {
				continue
			}
			witness := root.Func.Name()
			if root.Pkg.Path != pass.Pkg.Path {
				witness = root.Pkg.Types.Name() + "." + witness
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isOnceDo(pass, call) {
					return false // once.Do literals are init-equivalent
				}
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						reportGlobalWrite(pass, globals, lhs, witness)
					}
				case *ast.IncDecStmt:
					reportGlobalWrite(pass, globals, n.X, witness)
				}
				return true
			})
		}
	}
}

// reportGlobalWrite flags lhs when it writes a package-level var or
// anything rooted at one (field, element, deref).
func reportGlobalWrite(pass *Pass, globals map[types.Object]bool, lhs ast.Expr, witness string) {
	root := lhs
	for {
		switch e := root.(type) {
		case *ast.SelectorExpr:
			root = e.X
		case *ast.IndexExpr:
			root = e.X
		case *ast.StarExpr:
			root = e.X
		case *ast.ParenExpr:
			root = e.X
		default:
			id, ok := e.(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil || !globals[obj] {
				return
			}
			pass.Reportf(lhs.Pos(), "package-level var %s is written on a path reachable from exported %s; shared mutable state breaks reproducible annotation — localize it, guard it, or lint:ignore with the invariant", id.Name, witness)
			return
		}
	}
}

// isOnceDo reports whether a call is (*sync.Once).Do.
func isOnceDo(pass *Pass, call *ast.CallExpr) bool {
	return isOnceDoCall(pass.Pkg.Info, call)
}

package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// SharedWrite hunts the root cause class behind nondeterministic
// annotation: package-level mutable state written on paths reachable from
// the exported API. A library whose exported functions mutate globals
// cannot promise byte-identical output at arbitrary worker counts — two
// concurrent batch calls interleave those writes.
//
// A write is allowed when it happens in an init function, inside a
// function literal passed to (*sync.Once).Do, or in a function not
// reachable (by the package-internal static call graph) from any exported
// function or method. Package main is exempt: a binary owns its globals
// for its process lifetime. A deliberately guarded global can be kept with
// //lint:ignore sharedwrite <the invariant that makes it safe>.
//
// Known limits: reachability is per-package and purely static — a helper
// passed around as a function value is not traced, and writes through a
// pointer previously taken from a global are not seen.
var SharedWrite = &Analyzer{
	Name: "sharedwrite",
	Doc: "flags writes to package-level vars reachable from exported " +
		"functions outside init/sync.Once",
	Run: runSharedWrite,
}

func runSharedWrite(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		return
	}

	// The package-level mutable vars.
	globals := map[types.Object]bool{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if obj := pass.Pkg.Info.Defs[name]; obj != nil {
						if _, isVar := obj.(*types.Var); isVar {
							globals[obj] = true
						}
					}
				}
			}
		}
	}
	if len(globals) == 0 {
		return
	}

	// The package-internal static call graph and the set of declared
	// functions, keyed by their *types.Func objects.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	calls := map[*types.Func][]*types.Func{}
	for fn, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isOnceDo(pass, call) {
				// Calls made through once.Do run exactly once; they do not
				// propagate exported reachability.
				return false
			}
			callee := calleeFunc(pass.Pkg.Info, call)
			if callee != nil && decls[callee] != nil {
				calls[fn] = append(calls[fn], callee)
			}
			return true
		})
	}

	// Functions reachable from the exported surface. Exported names seed
	// the walk in sorted order so the witness recorded for each function
	// is deterministic.
	type mark struct{ root *types.Func }
	reachable := map[*types.Func]mark{}
	var roots []*types.Func
	for fn := range decls {
		if fn.Exported() {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })
	var walk func(fn, root *types.Func)
	walk = func(fn, root *types.Func) {
		if _, ok := reachable[fn]; ok {
			return
		}
		reachable[fn] = mark{root: root}
		for _, callee := range calls[fn] {
			walk(callee, root)
		}
	}
	for _, r := range roots {
		walk(r, r)
	}

	// Now judge every write site.
	for fn, fd := range decls {
		if fd.Name.Name == "init" && fd.Recv == nil {
			continue
		}
		m, isReachable := reachable[fn]
		if !isReachable {
			continue
		}
		witness := m.root.Name()
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isOnceDo(pass, call) {
				return false // once.Do literals are init-equivalent
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					reportGlobalWrite(pass, globals, lhs, witness)
				}
			case *ast.IncDecStmt:
				reportGlobalWrite(pass, globals, n.X, witness)
			}
			return true
		})
	}
}

// reportGlobalWrite flags lhs when it writes a package-level var or
// anything rooted at one (field, element, deref).
func reportGlobalWrite(pass *Pass, globals map[types.Object]bool, lhs ast.Expr, witness string) {
	root := lhs
	for {
		switch e := root.(type) {
		case *ast.SelectorExpr:
			root = e.X
		case *ast.IndexExpr:
			root = e.X
		case *ast.StarExpr:
			root = e.X
		case *ast.ParenExpr:
			root = e.X
		default:
			id, ok := e.(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil || !globals[obj] {
				return
			}
			pass.Reportf(lhs.Pos(), "package-level var %s is written on a path reachable from exported %s; shared mutable state breaks reproducible annotation — localize it, guard it, or lint:ignore with the invariant", id.Name, witness)
			return
		}
	}
}

// isOnceDo reports whether a call is (*sync.Once).Do.
func isOnceDo(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" {
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Once"
}

package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrFlow enforces the typed-error taxonomy across package boundaries: the
// ingest GuardError chain and the model-verifier ModelError chain only work
// if every layer between the error's birth and the caller's errors.Is/As
// preserves wrapping. Four rules:
//
//   - sentinel comparisons use errors.Is, never == or !=: a wrapped
//     ErrTooLarge compares unequal to the sentinel even though errors.Is
//     matches it. Comparisons against nil (and between two nils) stay
//     silent — nil-checking is not sentinel matching;
//   - concrete error types are extracted with errors.As, never a type
//     assertion or type switch: err.(*GuardError) fails on a wrapped chain
//     that errors.As would unwrap;
//   - fmt.Errorf that formats an error must wrap it with %w when the
//     enclosing function is exported or reachable (module call graph) from
//     an exported function: %v/%s flattens the chain to text right where a
//     caller downstream might still need errors.Is to work;
//   - errors.New(err.Error()) and fmt.Errorf with an err.Error() argument
//     are flagged unconditionally: stringifying an error destroys its
//     chain no matter where it happens.
//
// Deliberate chain cuts at a process boundary can be kept with
// //lint:ignore errflow <why the chain must not escape here>.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "flags ==/type-assert sentinel matching (use errors.Is/As) and " +
		"fmt.Errorf error wrapping that drops %w on exported-reachable paths",
	Run: runErrFlow,
}

func runErrFlow(pass *Pass) {
	// Reachable-from-exported set for the %w rule. Main packages have no
	// exported surface worth rooting; their own top-level handling is where
	// chains legitimately end, so the %w rule only applies to libraries.
	graph := pass.CallGraph()
	reach := graph.Memo("errflow.reach", func() any {
		var roots []*CallNode
		graph.Nodes(func(n *CallNode) {
			if n.Func.Exported() && n.Pkg.Types.Name() != "main" {
				roots = append(roots, n)
			}
		})
		return graph.Reachable(roots, ReachOptions{})
	}).(map[*CallNode]*CallNode)

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			exportedPath := false
			if fn != nil && pass.Pkg.Types.Name() != "main" {
				if fn.Exported() {
					exportedPath = true
				} else if node := graph.Node(fn); node != nil && reach[node] != nil {
					exportedPath = true
				}
			}
			checkErrFlowFunc(pass, fd, exportedPath)
		}
	}
}

func checkErrFlowFunc(pass *Pass, fd *ast.FuncDecl, exportedPath bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if isNilIdent(pass, n.X) || isNilIdent(pass, n.Y) {
				return true
			}
			if isErrorExpr(pass, n.X) || isErrorExpr(pass, n.Y) {
				pass.Reportf(n.OpPos, "error compared with %s misses wrapped chains; use errors.Is", n.Op)
			}
		case *ast.TypeAssertExpr:
			if n.Type == nil {
				return true // x.(type) inside a type switch: handled below
			}
			if isErrorExpr(pass, n.X) && !isErrorInterfaceAssert(pass, n.Type) {
				pass.Reportf(n.Lparen, "type assertion on an error misses wrapped chains; use errors.As")
			}
		case *ast.TypeSwitchStmt:
			if x := typeSwitchSubject(n); x != nil && isErrorExpr(pass, x) {
				pass.Reportf(n.Switch, "type switch on an error misses wrapped chains; use errors.As per target type")
			}
		case *ast.CallExpr:
			checkErrWrapCall(pass, n, exportedPath)
		}
		return true
	})
}

// checkErrWrapCall applies the fmt.Errorf %w rule and the err.Error()
// stringification rule to one call.
func checkErrWrapCall(pass *Pass, call *ast.CallExpr, exportedPath bool) {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	full := fn.Pkg().Path() + "." + fn.Name()
	switch full {
	case "errors.New":
		if len(call.Args) == 1 && mentionsErrorString(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "errors.New over err.Error() discards the error chain; wrap with fmt.Errorf(\"...: %%w\", err) instead")
		}
	case "fmt.Errorf":
		if len(call.Args) == 0 {
			return
		}
		for _, arg := range call.Args[1:] {
			if mentionsErrorString(pass, arg) {
				pass.Reportf(call.Pos(), "fmt.Errorf over err.Error() discards the error chain; pass the error itself with %%w")
				return
			}
		}
		format, ok := constantString(pass, call.Args[0])
		hasErrArg := false
		for _, arg := range call.Args[1:] {
			if isErrorExpr(pass, arg) {
				hasErrArg = true
				break
			}
		}
		if !hasErrArg || !exportedPath {
			return
		}
		if ok && !strings.Contains(format, "%w") {
			pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w on a path reachable from the exported API; callers lose errors.Is/As on the chain")
		}
	}
}

// mentionsErrorString reports whether an expression contains a call to the
// Error() method of an error value (the chain-destroying stringification).
func mentionsErrorString(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
			return true
		}
		if isErrorExpr(pass, sel.X) {
			found = true
			return false
		}
		return true
	})
	return found
}

// typeSwitchSubject extracts the switched-on expression of a type switch:
// either `x.(type)` or `v := x.(type)`.
func typeSwitchSubject(n *ast.TypeSwitchStmt) ast.Expr {
	var assert *ast.TypeAssertExpr
	switch s := n.Assign.(type) {
	case *ast.ExprStmt:
		assert, _ = s.X.(*ast.TypeAssertExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			assert, _ = s.Rhs[0].(*ast.TypeAssertExpr)
		}
	}
	if assert == nil {
		return nil
	}
	return assert.X
}

// isErrorExpr reports whether an expression's static type is exactly the
// error interface.
func isErrorExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	return t != nil && isErrorType(t)
}

// isErrorInterfaceAssert reports whether an assertion target is itself an
// interface type (err.(interface{ Timeout() bool }) and err.(error) probe
// behavior, not concrete identity, and errors.As handles them the same way
// only for concrete targets — asserting to an interface is legitimate).
func isErrorInterfaceAssert(pass *Pass, t ast.Expr) bool {
	tt := pass.TypeOf(t)
	if tt == nil {
		return false
	}
	_, ok := tt.Underlying().(*types.Interface)
	return ok
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Pkg.Info.Uses[id].(*types.Nil)
	return isNil
}

// constantString evaluates e as a constant string when possible.
func constantString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

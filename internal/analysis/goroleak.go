package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak flags goroutines that can park forever on a channel nobody will
// service, and unbounded per-element fan-out. The rules, deliberately
// scoped to channels MADE in the spawning function (ownership is local and
// provable; parameters and fields are someone else's contract):
//
//   - a `go func(){...}` SEND on an unbuffered local channel is flagged
//     when the send has no select escape (a default case or a receive from
//     an external event source like ctx.Done()) and the parent function
//     either never receives from the channel or only receives inside a
//     multi-case select it can abandon — the FileTimeout shape
//     `select { case <-ch: case <-ctx.Done(): }` strands the sender unless
//     the channel is buffered;
//   - a `go func(){...}` RECEIVE (<-ch or range ch) on an unbuffered local
//     channel is flagged when no close of the channel is reachable (in the
//     spawning function or one callee hop down) and the parent never sends:
//     the goroutine blocks forever; `range ch` additionally requires a
//     reachable close even when sends exist, or it never terminates;
//   - a `go` statement lexically inside a `range` loop body is per-element
//     fan-out with no bound; route it through the bounded worker pool
//     (pipeline.ForEach*) instead. Counter-bounded worker loops
//     (`for w := 0; w < n; w++ { go ... }`) stay silent.
//
// Buffered channels are never flagged. A deliberate detached goroutine can
// be suppressed with //lint:ignore goroleak <why it terminates>.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "flags goroutines that block forever on unbuffered local channels " +
		"(send nobody commits to receiving, receive with no reachable " +
		"close or send) and unbounded go-per-element fan-out in range loops",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	closers := paramClosers(pass.CallGraph())
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoroLeaks(pass, fd, closers)
		}
	}
}

// chanUse aggregates what the spawning function does with one locally-made
// channel, outside the goroutine under scrutiny.
type chanUse struct {
	unbuffered bool
	closed     bool // close(ch) anywhere in the function, or a callee that closes its param
	plainRecv  bool // a committed receive: <-ch as a statement/assignment or range ch
	selectRecv bool // a receive inside a multi-case select (abandonable)
	send       bool // any send outside the goroutine
}

func checkGoroLeaks(pass *Pass, fd *ast.FuncDecl, closers map[*types.Func]map[int]bool) {
	info := pass.Pkg.Info

	// Pass 1: find channels made in this function and whether they are
	// unbuffered. Literal function bodies count: a channel made anywhere in
	// the lexical function is locally owned.
	chans := map[types.Object]*chanUse{}
	ast.Inspect(fd.Body, func(nn ast.Node) bool {
		var lhs []ast.Expr
		var rhs []ast.Expr
		switch s := nn.(type) {
		case *ast.AssignStmt:
			lhs, rhs = s.Lhs, s.Rhs
		case *ast.ValueSpec:
			lhs = make([]ast.Expr, len(s.Names))
			for i, n := range s.Names {
				lhs[i] = n
			}
			rhs = s.Values
		default:
			return true
		}
		for i, r := range rhs {
			call, ok := ast.Unparen(r).(*ast.CallExpr)
			if !ok || i >= len(lhs) {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				continue
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			if len(call.Args) == 0 {
				continue
			}
			if _, isChan := info.TypeOf(call.Args[0]).(*types.Chan); !isChan {
				continue
			}
			obj := identObj(info, lhs[i])
			if obj == nil {
				continue
			}
			unbuffered := true
			if len(call.Args) > 1 {
				// A constant 0 capacity is still unbuffered; anything else
				// (constant or not) we treat as buffered.
				if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil {
					unbuffered = tv.Value.String() == "0"
				} else {
					unbuffered = false
				}
			}
			chans[obj] = &chanUse{unbuffered: unbuffered}
		}
		return true
	})

	chanOf := func(e ast.Expr) *chanUse {
		obj := identObj(info, e)
		if obj == nil {
			return nil
		}
		return chans[obj]
	}

	// Pass 2: collect the go statements, then record how the REST of the
	// function uses each channel (sends, receives, closes).
	var gos []*ast.GoStmt
	ast.Inspect(fd.Body, func(nn ast.Node) bool {
		if g, ok := nn.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
		return true
	})
	inAnyGo := func(n ast.Node) bool {
		for _, g := range gos {
			if g.Pos() <= n.Pos() && n.End() <= g.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.SendStmt:
			if cu := chanOf(nn.Chan); cu != nil && !inAnyGo(nn) {
				cu.send = true
			}
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				if cu := chanOf(nn.X); cu != nil && !inAnyGo(nn) {
					cu.plainRecv = true // refined to selectRecv below
				}
			}
		case *ast.RangeStmt:
			if cu := chanOf(nn.X); cu != nil && !inAnyGo(nn) {
				cu.plainRecv = true
			}
		case *ast.SelectStmt:
			if inAnyGo(nn) {
				return true
			}
			multi := len(nn.Body.List) > 1
			for _, clause := range nn.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				for _, e := range commChans(cc.Comm) {
					if cu := chanOf(e); cu != nil && multi {
						cu.selectRecv = true
					}
				}
			}
		case *ast.CallExpr:
			// close(ch), or g(ch) where g closes that parameter.
			if id, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(nn.Args) == 1 {
					if cu := chanOf(nn.Args[0]); cu != nil {
						cu.closed = true
					}
					return true
				}
			}
			if callee := calleeFunc(info, nn); callee != nil {
				for i, arg := range nn.Args {
					if cu := chanOf(arg); cu != nil && closers[callee][i] {
						cu.closed = true
					}
				}
			}
		}
		return true
	})
	// A receive that sits inside a multi-case select was counted as plain
	// by the UnaryExpr walk above; demote it when the ONLY receives are
	// select ones. The walk cannot tell the two apart in place, so re-scan:
	// a plain receive is one not enclosed by any multi-case select clause.
	for obj, cu := range chans {
		if !cu.plainRecv {
			continue
		}
		cu.plainRecv = hasCommittedRecv(info, fd.Body, obj, gos)
	}

	// Pass 3: judge each goroutine literal's blocking operations, and flag
	// per-element fan-out.
	for _, g := range gos {
		if insideRangeBody(fd.Body, g) {
			pass.Reportf(g.Pos(), "goroutine started per range element with no bound on in-flight work; route the fan-out through the bounded worker pool (pipeline.ForEach*) or a fixed set of workers")
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			continue
		}
		checkGoroBody(pass, lit.Body, chanOf)
	}
}

// commChans extracts the channel expressions a select comm statement
// touches (send target or receive source).
func commChans(comm ast.Stmt) []ast.Expr {
	var out []ast.Expr
	switch s := comm.(type) {
	case *ast.SendStmt:
		out = append(out, s.Chan)
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			out = append(out, u.X)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				out = append(out, u.X)
			}
		}
	}
	return out
}

// hasCommittedRecv reports whether body contains a receive from obj's
// channel, outside every goroutine in gos, that is NOT the comm of a
// multi-case select clause (i.e. one the function cannot abandon).
func hasCommittedRecv(info *types.Info, body ast.Node, obj types.Object, gos []*ast.GoStmt) bool {
	inAnyGo := func(n ast.Node) bool {
		for _, g := range gos {
			if g.Pos() <= n.Pos() && n.End() <= g.End() {
				return true
			}
		}
		return false
	}
	var abandonable []ast.Stmt // comm statements of multi-case selects
	ast.Inspect(body, func(nn ast.Node) bool {
		if sel, ok := nn.(*ast.SelectStmt); ok && len(sel.Body.List) > 1 {
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					abandonable = append(abandonable, cc.Comm)
				}
			}
		}
		return true
	})
	inAbandonable := func(n ast.Node) bool {
		for _, c := range abandonable {
			if c.Pos() <= n.Pos() && n.End() <= c.End() {
				return true
			}
		}
		return false
	}
	committed := false
	ast.Inspect(body, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW && identObj(info, nn.X) == obj &&
				!inAnyGo(nn) && !inAbandonable(nn) {
				committed = true
			}
		case *ast.RangeStmt:
			if identObj(info, nn.X) == obj && !inAnyGo(nn) {
				committed = true
			}
		}
		return true
	})
	return committed
}

// insideRangeBody reports whether g sits lexically inside a RangeStmt body
// within container, with no function literal boundary in between (a literal
// may be invoked once; only direct per-element spawning is fan-out).
func insideRangeBody(container ast.Node, g *ast.GoStmt) bool {
	found := false
	var walk func(n ast.Node, inRange bool)
	walk = func(n ast.Node, inRange bool) {
		ast.Inspect(n, func(nn ast.Node) bool {
			if found || nn == nil {
				return false
			}
			switch nn := nn.(type) {
			case *ast.FuncLit:
				walk(nn.Body, false)
				return false
			case *ast.RangeStmt:
				if nn.Body != nil {
					walk(nn.Body, true)
				}
				return false
			case *ast.GoStmt:
				if nn == g && inRange {
					found = true
					return false
				}
			}
			return true
		})
	}
	walk(container, false)
	return found
}

// checkGoroBody flags blocking operations on unbuffered local channels in
// one goroutine body. Nested literals are skipped (they are further
// goroutines or callbacks with their own context).
func checkGoroBody(pass *Pass, body ast.Node, chanOf func(ast.Expr) *chanUse) {
	// Select statements with an escape hatch guard their comm operations: a
	// default case, or a receive from an external event source (a call
	// result like ctx.Done() or time.After).
	var guarded []ast.Stmt
	ast.Inspect(body, func(nn ast.Node) bool {
		if _, ok := nn.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := nn.(*ast.SelectStmt)
		if !ok {
			return true
		}
		escape := false
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				escape = true // default case
				continue
			}
			for _, e := range commChans(cc.Comm) {
				if _, isCall := ast.Unparen(e).(*ast.CallExpr); isCall {
					escape = true // <-ctx.Done(), <-time.After(...)
				}
			}
		}
		if escape {
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					guarded = append(guarded, cc.Comm)
				}
			}
		}
		return true
	})
	isGuarded := func(n ast.Node) bool {
		for _, c := range guarded {
			if c.Pos() <= n.Pos() && n.End() <= c.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			cu := chanOf(nn.Chan)
			if cu == nil || !cu.unbuffered || isGuarded(nn) {
				return true
			}
			if cu.plainRecv {
				return true // somebody commits to receiving
			}
			if cu.selectRecv {
				pass.Reportf(nn.Pos(), "goroutine sends on unbuffered channel %s but the only receive sits in a multi-case select that can abandon it; the sender parks forever once the select takes another case — buffer the channel or add a ctx.Done()/default escape to this send", chanName(nn.Chan))
			} else {
				pass.Reportf(nn.Pos(), "goroutine sends on unbuffered channel %s but the spawning function never receives from it; the sender blocks forever — buffer the channel, receive from it, or add a select escape", chanName(nn.Chan))
			}
		case *ast.UnaryExpr:
			if nn.Op != token.ARROW {
				return true
			}
			cu := chanOf(nn.X)
			if cu == nil || !cu.unbuffered || isGuarded(nn) {
				return true
			}
			if cu.closed || cu.send {
				return true
			}
			pass.Reportf(nn.Pos(), "goroutine receives from unbuffered channel %s but the spawning function never sends on or closes it; the receiver blocks forever", chanName(nn.X))
		case *ast.RangeStmt:
			cu := chanOf(nn.X)
			if cu == nil || !cu.unbuffered {
				return true
			}
			if cu.closed {
				return true
			}
			pass.Reportf(nn.Pos(), "goroutine ranges over channel %s with no reachable close; the loop never terminates and the goroutine leaks — close the channel when the producers finish", chanName(nn.X))
		}
		return true
	})
}

func chanName(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "chan"
}

// paramClosers records, per module function, the channel-typed parameter
// indices it closes (one level, no fixpoint: enough to credit the
// `feed(next); close(next)`-via-helper shape without chasing chains).
func paramClosers(graph *CallGraph) map[*types.Func]map[int]bool {
	return graph.Memo("goroleak.closers", func() any {
		out := map[*types.Func]map[int]bool{}
		graph.Nodes(func(n *CallNode) {
			info := n.Pkg.Info
			sig, ok := n.Func.Type().(*types.Signature)
			if !ok {
				return
			}
			paramIdx := map[types.Object]int{}
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if _, isChan := p.Type().Underlying().(*types.Chan); isChan {
					paramIdx[p] = i
				}
			}
			if len(paramIdx) == 0 {
				return
			}
			ast.Inspect(n.Decl.Body, func(nn ast.Node) bool {
				call, ok := nn.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "close" || len(call.Args) != 1 {
					return true
				}
				if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if obj := identObj(info, call.Args[0]); obj != nil {
					if i, ok := paramIdx[obj]; ok {
						if out[n.Func] == nil {
							out[n.Func] = map[int]bool{}
						}
						out[n.Func][i] = true
					}
				}
				return true
			})
		})
		return out
	}).(map[*types.Func]map[int]bool)
}

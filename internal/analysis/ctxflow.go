package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the cancellation contract the batch and streaming entry
// points promise (and the serve tier will stake its latency guarantees on):
// a context handed to the library flows, unbroken, to every blocking callee.
// Three rules, checked module-wide with the call graph:
//
//   - a function that receives a context.Context must not mint a fresh one:
//     calling context.Background() or context.TODO() there severs the
//     caller's deadline and cancellation. The one blessed shape is the
//     nil-guard `if ctx == nil { ctx = context.Background() }` normalizing
//     the function's own parameter;
//   - an unexported function without a context parameter that is reachable
//     (per the module call graph) from an exported function that accepts
//     one must not call Background/TODO either — the context should have
//     been threaded down instead of re-rooted mid-chain. Exported ctx-less
//     convenience wrappers are the legitimate root adapters and stay
//     silent; so do main packages, which own their process lifetime;
//   - a context must not be stored: struct fields of type context.Context
//     and assignments of a context into a field are flagged. A stored
//     context outlives the request that created it, which is exactly the
//     bug class request-scoped cancellation exists to prevent.
//
// Suppress a deliberate re-root with //lint:ignore ctxflow <why the new
// root is correct>.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "flags context.Background/TODO calls that sever an in-scope or " +
		"threadable context, and contexts stored in struct fields",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	isMain := pass.Pkg.Types.Name() == "main"

	// Rule 3 (type level): no context-typed struct fields. Applies to main
	// packages too — a stored context is wrong regardless of who stores it.
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				if n.Fields == nil {
					return true
				}
				for _, f := range n.Fields.List {
					if isContextType(pass.TypeOf(f.Type)) {
						pass.Reportf(f.Pos(), "struct field of type context.Context outlives the request that created it; pass the context as a parameter instead")
					}
				}
			case *ast.AssignStmt:
				// The declaration may live in another package, so the
				// assignment form is flagged independently.
				if rhs, ok := ctxStoredInField(pass, n); ok {
					pass.Reportf(rhs.Pos(), "context stored in a struct field outlives the request that created it; pass the context as a parameter instead")
				}
			}
			return true
		})
	}

	if isMain {
		return // a binary owns its root context
	}

	// Reachability for rule 2: functions reachable from exported functions
	// that accept a context. The witness names the entry point whose
	// cancellation the re-root severs.
	graph := pass.CallGraph()
	reach := graph.Memo("ctxflow.reach", func() any {
		var roots []*CallNode
		graph.Nodes(func(n *CallNode) {
			if n.Func.Exported() && n.Pkg.Types.Name() != "main" && contextParam(n.Func) != nil {
				roots = append(roots, n)
			}
		})
		return graph.Reachable(roots, ReachOptions{})
	}).(map[*CallNode]*CallNode)

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ctxParam := contextParam(fn)
			node := graph.Node(fn)

			switch {
			case ctxParam != nil:
				checkCtxHolder(pass, fd, ctxParam)
			case fn.Exported():
				// Exported ctx-less functions are root adapters: minting
				// Background() here is how AnnotateAll-style convenience
				// wrappers are supposed to work.
			default:
				root := reachWitness(reach, node)
				if root == nil {
					continue
				}
				checkCtxMint(pass, fd, root)
			}
		}
	}
}

// reachWitness returns the root that reaches node, or nil.
func reachWitness(reach map[*CallNode]*CallNode, node *CallNode) *CallNode {
	if node == nil {
		return nil
	}
	return reach[node]
}

// checkCtxHolder inspects a function that has a context parameter: any
// Background/TODO call other than the nil-guard normalization of that very
// parameter is reported.
func checkCtxHolder(pass *Pass, fd *ast.FuncDecl, ctxParam *types.Var) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// The blessed shape: `ctx = context.Background()` whose sole target
		// is the context parameter itself (the nil-default idiom).
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == ctxParam {
				if isCtxMint(pass, as.Rhs[0]) != "" {
					return false // skip the RHS
				}
			}
		}
		if name := isCtxMint(pass, n); name != "" {
			pass.Reportf(n.(*ast.CallExpr).Pos(), "context.%s() inside a function that already receives a context severs %s's cancellation; pass %s down instead", name, ctxParam.Name(), ctxParam.Name())
		}
		return true
	})
}

// checkCtxMint reports Background/TODO calls in an unexported ctx-less
// function reachable from a context-accepting entry point.
func checkCtxMint(pass *Pass, fd *ast.FuncDecl, root *CallNode) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if name := isCtxMint(pass, n); name != "" {
			pass.Reportf(n.(*ast.CallExpr).Pos(), "context.%s() in %s, which is reachable from context-accepting %s; thread the caller's context here instead of re-rooting", name, fd.Name.Name, root.Func.Name())
		}
		return true
	})
}

// isCtxMint reports whether n is a call to context.Background or
// context.TODO, returning the function name ("" otherwise).
func isCtxMint(pass *Pass, n ast.Node) string {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// contextParam returns the first context.Context parameter of fn, or nil.
func contextParam(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isContextType(p.Type()) {
			return p
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// ctxStoredInField reports assignments of a context value into a struct
// field (rule 3, statement level), returning the offending expression.
func ctxStoredInField(pass *Pass, as *ast.AssignStmt) (ast.Expr, bool) {
	for i, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if sel.Sel == nil {
			continue
		}
		if obj := pass.Pkg.Info.Uses[sel.Sel]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.IsField() && isContextType(v.Type()) {
				if i < len(as.Rhs) {
					return as.Rhs[i], true
				}
				return lhs, true
			}
		}
	}
	return nil, false
}

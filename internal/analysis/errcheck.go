package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck flags call statements that discard a returned error inside the
// module's internal/ and cmd/ trees. A small allowlist keeps human-facing
// console output ergonomic:
//
//   - fmt.Print / Printf / Println (stdout, best-effort output)
//   - fmt.Fprint* when the writer is os.Stdout, os.Stderr, a
//     *strings.Builder, or a *bytes.Buffer (the latter two document that
//     writes never fail)
//   - methods of *strings.Builder and *bytes.Buffer
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flags discarded error returns in internal/ and cmd/ packages",
	Run:  runErrCheck,
}

func runErrCheck(pass *Pass) {
	path := pass.Pkg.Path
	if !strings.Contains(path, "/internal/") && !strings.Contains(path, "/cmd/") {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			verb := ""
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call, verb = n.Call, "defer "
			case *ast.GoStmt:
				call, verb = n.Call, "go "
			}
			if call == nil {
				return true
			}
			if !returnsError(pass, call) || allowedUnchecked(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "%s%s discards its error result; handle it or assign to _ deliberately", verb, calleeLabel(pass, call))
			return true
		})
	}
}

// returnsError reports whether any result of the call has type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// allowedUnchecked implements the allowlist documented on ErrCheck.
func allowedUnchecked(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil {
		return false
	}
	switch pkgOfFunc(fn) {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) == 0 {
				return false
			}
			return isStdStream(pass, call.Args[0]) || isInfallibleWriter(pass, call.Args[0])
		}
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
			full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			return full == "strings.Builder" || full == "bytes.Buffer"
		}
	}
	return false
}

// isInfallibleWriter reports whether an expression's type is
// *strings.Builder or *bytes.Buffer, whose Write methods never return a
// non-nil error, making the enclosing Fprint's error statically nil.
func isInfallibleWriter(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// isStdStream reports whether an expression is os.Stdout or os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}

// calleeLabel renders a short human name for the called function.
func calleeLabel(pass *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

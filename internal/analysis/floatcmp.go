package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands. Gini/impurity
// and metric code accumulate rounding error, so exact equality is almost
// always a latent bug; the few deliberate sentinel comparisons (exact zero
// set by initialization, never computed) carry a lint:ignore with a reason.
// Comparisons where both operands are compile-time constants are exempt —
// they are folded deterministically.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= on float operands outside test files",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(bin.X)) && !isFloat(pass.TypeOf(bin.Y)) {
				return true
			}
			if isConstExpr(pass, bin.X) && isConstExpr(pass, bin.Y) {
				return true
			}
			pass.Reportf(bin.OpPos, "%s on float operands is exact-equality on inexact arithmetic; compare against a tolerance or document the sentinel", bin.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.(*types.Basic)
	if !ok {
		basic, ok2 := t.Underlying().(*types.Basic)
		if !ok2 {
			return false
		}
		b = basic
	}
	return b.Info()&types.IsFloat != 0
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc polices the allocation budget of the annotation hot path. The
// hot set is not a hand-kept list: it is computed per run as everything
// transitively reachable — over the module-wide call graph, callback edges
// included — from the inference and streaming roots:
//
//	(*Model).annotate               the per-file annotation pass
//	(*Forest).PredictProba          \
//	(*Tree).PredictProba            | per-row tree inference
//	(*Compiled).PredictProbaMatrix  /  (flattened matrix kernel)
//	(*Scanner).Scan            the per-line streaming ingest step
//	(*Splitter).Write/Next     the per-line incremental tokenizer
//
// (matched by receiver/function name and package name, so the fixture
// module exercises the same rule). Inside hot functions four allocation
// shapes are flagged:
//
//   - fmt.Sprintf: formatting allocates its result and boxes every operand;
//     hot-path strings should be built with append/copy or precomputed;
//   - string⇄[]byte conversions inside loops: each one copies the payload;
//     per-row loops should pick one representation and keep it;
//   - append to a slice declared without capacity in the same function,
//     inside a loop: the growth doublings dominate small-row profiles;
//     preallocate with make(T, 0, n);
//   - function literals capturing outer variables inside loops: each
//     iteration allocates a closure; hoist the literal or pass state as
//     arguments.
//
// A deliberate allocation (cold error path, once-per-file setup) is kept
// with //lint:ignore hotalloc <why the allocation is off the per-row path>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags Sprintf, loop string<->[]byte conversions, un-preallocated " +
		"append, and loop closures in functions reachable from the " +
		"inference/streaming hot path",
	Run: runHotAlloc,
}

// hotRoot names one hot-path entry point: package name (not path, so the
// fixture module can mirror the shape), receiver type name ("" for free
// functions), and function name.
type hotRoot struct {
	pkg  string
	recv string
	name string
}

// hotRoots is the root set the reachable hot region grows from.
var hotRoots = []hotRoot{
	{"strudel", "Model", "annotate"},
	{"forest", "Forest", "PredictProba"},
	{"forest", "Forest", "PredictProbaBatch"},
	{"forest", "Compiled", "PredictProbaMatrix"},
	{"tree", "Tree", "PredictProba"},
	{"ingest", "Scanner", "Scan"},
	{"dialect", "Splitter", "Write"},
	{"dialect", "Splitter", "Next"},
}

func runHotAlloc(pass *Pass) {
	graph := pass.CallGraph()
	reach := graph.Memo("hotalloc.reach", func() any {
		var roots []*CallNode
		graph.Nodes(func(n *CallNode) {
			if isHotRoot(n) {
				roots = append(roots, n)
			}
		})
		return graph.Reachable(roots, ReachOptions{})
	}).(map[*CallNode]*CallNode)
	if len(reach) == 0 {
		return
	}

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			node := graph.Node(fn)
			if node == nil {
				continue
			}
			root := reach[node]
			if root == nil {
				continue
			}
			checkHotFunc(pass, fd, root)
		}
	}
}

// isHotRoot matches a node against the root table.
func isHotRoot(n *CallNode) bool {
	pkg := n.Pkg.Types.Name()
	name := n.Func.Name()
	recv := receiverTypeName(n.Func)
	for _, r := range hotRoots {
		if r.pkg == pkg && r.name == name && r.recv == recv {
			return true
		}
	}
	return false
}

// receiverTypeName returns the bare receiver type name of a method ("" for
// a free function).
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// checkHotFunc applies the four allocation rules to one hot function. The
// witness names the hot root that reaches it so the report explains WHY the
// function is considered hot.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl, root *CallNode) {
	hot := hotLabel(root)
	// Slices declared in this function without capacity: var s []T,
	// s := []T{}, s := make([]T, 0) / make([]T) — the append rule's targets.
	bare := bareSlices(pass, fd)

	// loopDepth tracks enclosing for/range statements during the walk.
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(nn ast.Node) bool {
			switch nn := nn.(type) {
			case *ast.ForStmt:
				if nn.Init != nil {
					walk(nn.Init, inLoop)
				}
				if nn.Cond != nil {
					walk(nn.Cond, inLoop)
				}
				if nn.Post != nil {
					walk(nn.Post, true)
				}
				walk(nn.Body, true)
				return false
			case *ast.RangeStmt:
				if nn.X != nil {
					walk(nn.X, inLoop)
				}
				walk(nn.Body, true)
				return false
			case *ast.FuncLit:
				if inLoop && capturesOuter(pass, nn) {
					pass.Reportf(nn.Pos(), "closure capturing outer variables allocates every loop iteration on the %s hot path; hoist it or pass state as arguments", hot)
				}
				// The literal body shares the hot context (flattened).
				walk(nn.Body, inLoop)
				return false
			case *ast.CallExpr:
				checkHotCall(pass, nn, bare, inLoop, hot)
			}
			return true
		})
	}
	walk(fd.Body, false)
}

// checkHotCall applies the call-shaped rules: Sprintf, conversions, append.
func checkHotCall(pass *Pass, call *ast.CallExpr, bare map[types.Object]bool, inLoop bool, hot string) {
	// fmt.Sprintf anywhere in a hot function.
	if fn := calleeFunc(pass.Pkg.Info, call); fn != nil && isPkgFunc(fn, "fmt", "Sprintf") {
		pass.Reportf(call.Pos(), "fmt.Sprintf allocates on the %s hot path; build with append/copy or precompute the string", hot)
		return
	}

	// append(s, ...) in a loop to a slice declared here without capacity.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin && inLoop && len(call.Args) > 0 {
			if target, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if obj := pass.Pkg.Info.Uses[target]; obj != nil && bare[obj] {
					pass.Reportf(call.Pos(), "append in a loop to %s, declared without capacity, reallocates on the %s hot path; preallocate with make(..., 0, n)", target.Name, hot)
				}
			}
		}
		return
	}

	// string(b) / []byte(s) conversions in loops.
	if !inLoop || len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	to := tv.Type
	from := pass.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if isStringType(to) && isByteSlice(from) {
		pass.Reportf(call.Pos(), "string([]byte) conversion copies every loop iteration on the %s hot path; keep one representation", hot)
	} else if isByteSlice(to) && isStringType(from) {
		pass.Reportf(call.Pos(), "[]byte(string) conversion copies every loop iteration on the %s hot path; keep one representation", hot)
	}
}

// hotLabel renders a short name for the hot root reaching this function.
func hotLabel(root *CallNode) string {
	if recv := receiverTypeName(root.Func); recv != "" {
		return recv + "." + root.Func.Name()
	}
	return root.Func.Name()
}

// bareSlices collects the slice variables a function declares without
// capacity: `var s []T`, `s := []T{}`, and `s := make([]T, 0)` (or any
// make with a constant-zero length and no capacity).
func bareSlices(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	note := func(id *ast.Ident) {
		if obj := pass.Pkg.Info.Defs[id]; obj != nil {
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				out[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					note(name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if bareSliceValue(pass, n.Rhs[i]) {
					note(id)
				}
			}
		}
		return true
	})
	return out
}

// bareSliceValue reports whether e builds an empty, capacity-free slice.
func bareSliceValue(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return false
		}
		if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return false
		}
		switch len(e.Args) {
		case 1:
			return true // make([]T) is invalid for slices, but be safe
		case 2:
			tv, ok := pass.Pkg.Info.Types[e.Args[1]]
			return ok && tv.Value != nil && tv.Value.String() == "0"
		}
		return false
	}
	return false
}

// capturesOuter reports whether a literal references at least one variable
// declared outside it (excluding package-level objects).
func capturesOuter(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if capturedBy(lit, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

// isByteSlice reports whether t's underlying type is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
